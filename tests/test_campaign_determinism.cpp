// Campaign determinism regression: a seeded campaign is a pure function of
// (app, seed, fault list, config). Running it twice must stream byte-
// identical canonical JSONL records (host-timing fields excluded); replaying
// one experiment in isolation from its (seed, index) — the gemfi_cli
// --replay path — must reproduce its record; and the predecoded-instruction
// cache must not perturb any of it: the same campaign with predecode off
// yields the very same bytes.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "campaign/observer.hpp"
#include "campaign/runner.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::campaign;

/// Collects the canonical (host-timing-free) JSON line of every record.
class CanonicalCollector final : public CampaignObserver {
 public:
  void on_experiment(const ExperimentRecord& rec) override {
    std::lock_guard lock(mutex_);
    if (rec.index >= lines_.size()) lines_.resize(rec.index + 1);
    lines_[rec.index] = experiment_record_to_json(rec, /*include_host_timing=*/false);
  }
  [[nodiscard]] const std::vector<std::string>& lines() const noexcept { return lines_; }

 private:
  std::mutex mutex_;
  std::vector<std::string> lines_;
};

constexpr std::uint64_t kSeed = 12345;
constexpr std::size_t kExperiments = 6;

CampaignConfig base_config(bool predecode) {
  CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.workers = 1;  // record order and worker ids are part of the bytes
  cfg.campaign_seed = kSeed;
  // Full restore per experiment so the in-campaign records carry the same
  // checkpoint telemetry as the isolated --replay path.
  cfg.shared_baseline = false;
  cfg.predecode = predecode;
  return cfg;
}

std::vector<std::string> run_campaign_canonical(const CalibratedApp& ca,
                                                const CampaignConfig& base) {
  CanonicalCollector collector;
  CampaignConfig cfg = base;
  cfg.observer = &collector;
  const auto faults = seeded_fault_set(kSeed, kExperiments, ca.kernel_fetches);
  const CampaignReport report = run_campaign(ca, faults, cfg);
  EXPECT_EQ(report.total(), kExperiments);
  return collector.lines();
}

TEST(CampaignDeterminism, SeededCampaignIsByteIdenticalAcrossRunsAndReplay) {
  const CampaignConfig cfg = base_config(/*predecode=*/true);
  const CalibratedApp ca = calibrate(apps::build_app("pi"), cfg);

  const std::vector<std::string> first = run_campaign_canonical(ca, cfg);
  const std::vector<std::string> second = run_campaign_canonical(ca, cfg);
  ASSERT_EQ(first.size(), kExperiments);
  ASSERT_EQ(second.size(), kExperiments);
  for (std::size_t i = 0; i < kExperiments; ++i)
    EXPECT_EQ(first[i], second[i]) << "record " << i << " drifted between runs";

  // The gemfi_cli --replay path: regenerate experiment i's fault from
  // (campaign_seed, i) alone and run it in isolation; its canonical record
  // must match the in-campaign bytes.
  for (const std::size_t index : {std::size_t(0), kExperiments - 1}) {
    const fi::Fault f = seeded_fault_any(kSeed, index, ca.kernel_fetches);
    const ExperimentResult er = run_experiment_with_retry(ca, f, cfg);
    const ExperimentRecord rec{index, 0, experiment_seed(kSeed, index), er};
    EXPECT_EQ(experiment_record_to_json(rec, /*include_host_timing=*/false), first[index])
        << "replay of experiment " << index << " diverged from the campaign record";
  }
}

TEST(CampaignDeterminism, SyscallFaultCampaignIsByteIdenticalAcrossRunsAndReplay) {
  // Syscall plans ride the same determinism contract: a campaign mixing a
  // fixed plan with per-experiment seeded random plans must stream identical
  // canonical records run over run, and the --replay path must rebuild the
  // exact plan set for an index from (campaign_seed, index) alone.
  CampaignConfig cfg = base_config(/*predecode=*/true);
  cfg.syscall_plans.push_back(fi::parse_syscall_plan("write@idx:3 errno:EIO"));
  cfg.random_syscall_faults = true;
  const CalibratedApp ca = calibrate(apps::build_app("logwriter"), cfg);

  const std::vector<std::string> first = run_campaign_canonical(ca, cfg);
  const std::vector<std::string> second = run_campaign_canonical(ca, cfg);
  ASSERT_EQ(first.size(), kExperiments);
  ASSERT_EQ(second.size(), kExperiments);
  for (std::size_t i = 0; i < kExperiments; ++i)
    EXPECT_EQ(first[i], second[i]) << "record " << i << " drifted between runs";
  // The plans actually reached the records (the run wasn't vacuously golden).
  for (std::size_t i = 0; i < kExperiments; ++i)
    EXPECT_NE(first[i].find("\"syscall_plan\""), std::string::npos)
        << "record " << i << " carries no syscall plan";

  for (const std::size_t index : {std::size_t(0), kExperiments - 1}) {
    const fi::Fault f = seeded_fault_any(kSeed, index, ca.kernel_fetches);
    const std::vector<fi::SyscallFaultPlan> plans = plans_for_experiment(cfg, index);
    ASSERT_EQ(plans.size(), 2u);  // the fixed plan + the seeded random draw
    const ExperimentResult er = run_experiment_with_retry(ca, f, cfg, &plans);
    const ExperimentRecord rec{index, 0, experiment_seed(kSeed, index), er};
    EXPECT_EQ(experiment_record_to_json(rec, /*include_host_timing=*/false), first[index])
        << "replay of experiment " << index << " diverged from the campaign record";
  }
}

TEST(CampaignDeterminism, PredecodeDoesNotChangeCampaignRecords) {
  // The fast path must be invisible in every simulated-state field:
  // outcomes, classification metrics, sim_ticks, applied flags — the whole
  // canonical record, byte for byte.
  const CalibratedApp ca = calibrate(apps::build_app("pi"), base_config(true));
  const std::vector<std::string> on = run_campaign_canonical(ca, base_config(true));
  const std::vector<std::string> off = run_campaign_canonical(ca, base_config(false));
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i)
    EXPECT_EQ(on[i], off[i]) << "record " << i << " differs with --no-predecode";
}

}  // namespace
