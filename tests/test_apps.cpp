// Paper Sec. IV-A validation: in the absence of faults, the guest benchmarks
// must produce output bit-identical to their golden models on every CPU
// model, and GemFI machinery (enabled but idle) must not perturb the
// simulation results.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "apps/image.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;

struct Case {
  std::string app;
  sim::CpuKind cpu;
};

class GoldenEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(GoldenEquivalence, FaultFreeOutputMatchesGoldenModel) {
  const Case& c = GetParam();
  const apps::App app = apps::build_app(c.app);
  sim::SimConfig cfg;
  cfg.cpu = c.cpu;
  cfg.fi_enabled = true;  // FI machinery active, no faults loaded
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(2'000'000'000ull);
  ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited)
      << "trap: " << cpu::trap_name(rr.trap.kind) << " at pc=0x" << std::hex
      << rr.crash_pc;
  EXPECT_EQ(s.output(0), app.golden_output);
  // The FI window (between the fi_activate_inst calls) must be non-empty.
  EXPECT_GT(s.fault_manager().last_deactivated_fetched(), 0u);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& name : apps::app_names())
    for (const auto cpu : {sim::CpuKind::AtomicSimple, sim::CpuKind::Pipelined})
      cases.push_back({name, cpu});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Apps, GoldenEquivalence, ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           return info.param.app + "_" +
                                  (info.param.cpu == sim::CpuKind::AtomicSimple
                                       ? "Atomic"
                                       : "Pipelined");
                         });

// FI-disabled ("unmodified gem5") and FI-enabled simulations must produce
// identical outputs and identical committed instruction counts — the paper's
// Sec. IV-A check that GemFI does not corrupt the simulation process.
TEST(GemFiNeutrality, EnabledVsDisabledIdentical) {
  for (const auto& name : apps::app_names()) {
    const apps::App app = apps::build_app(name);
    std::string outputs[2];
    std::uint64_t committed[2];
    for (const bool fi : {false, true}) {
      sim::SimConfig cfg;
      cfg.cpu = sim::CpuKind::Pipelined;
      cfg.fi_enabled = fi;
      sim::Simulation s(cfg, app.program);
      s.spawn_main_thread();
      const sim::RunResult rr = s.run(2'000'000'000ull);
      ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited) << name;
      outputs[fi ? 1 : 0] = s.output(0);
      committed[fi ? 1 : 0] = rr.committed;
    }
    EXPECT_EQ(outputs[0], outputs[1]) << name;
    EXPECT_EQ(committed[0], committed[1]) << name;
  }
}

// The deblocking filter is the paper's no-FP benchmark (100% strict
// correctness under FP-register faults hinges on this property).
TEST(AppProperties, DeblockUsesNoFpInstructions) {
  const apps::App app = apps::build_app("deblock");
  for (const isa::Word w : app.program.code) {
    const isa::Decoded d = isa::decode(w);
    EXPECT_NE(d.klass, isa::InstClass::FpOp);
    EXPECT_NE(d.klass, isa::InstClass::FpMove);
    EXPECT_NE(d.klass, isa::InstClass::FpLoad);
    EXPECT_NE(d.klass, isa::InstClass::FpStore);
  }
}

TEST(AppProperties, AcceptableAcceptsGoldenOutput) {
  for (const auto& name : apps::app_names()) {
    const apps::App app = apps::build_app(name);
    double metric = 0.0;
    EXPECT_TRUE(app.acceptable(app.golden_output, metric)) << name;
  }
}

TEST(AppProperties, AcceptableRejectsGarbage) {
  for (const auto& name : apps::app_names()) {
    const apps::App app = apps::build_app(name);
    double metric = 0.0;
    EXPECT_FALSE(app.acceptable("garbage\n###\n", metric)) << name;
    EXPECT_FALSE(app.acceptable("", metric)) << name;
  }
}

}  // namespace
