// CPU-model tests beyond the end-to-end suite: the tournament predictor in
// isolation, pipeline timing properties (IPC, misprediction penalty, memory
// stalls), and the co-simulation property — randomly generated programs must
// produce bit-identical architectural results on the atomic, timing and
// pipelined models.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "cpu/branch_predictor.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

// ---------------- predictor ----------------

TEST(Predictor, LearnsAlwaysTaken) {
  cpu::TournamentPredictor p;
  const std::uint64_t pc = 0x2000;
  for (int i = 0; i < 32; ++i) {
    const auto pred = p.predict(pc);
    p.update(pc, true, 0x3000, pred.taken != true);
  }
  EXPECT_TRUE(p.predict(pc).taken);
  EXPECT_TRUE(p.predict(pc).btb_hit);
  EXPECT_EQ(p.predict(pc).target, 0x3000u);
}

TEST(Predictor, LearnsAlternatingPatternViaLocalHistory) {
  cpu::TournamentPredictor p;
  const std::uint64_t pc = 0x2000;
  // Train on a strict T/NT alternation; the 10-bit local history should
  // drive mispredictions to ~zero after warm-up.
  bool taken = false;
  for (int i = 0; i < 200; ++i) {
    taken = !taken;
    const auto pred = p.predict(pc);
    p.update(pc, taken, 0x3000, pred.taken != taken);
  }
  unsigned wrong = 0;
  for (int i = 0; i < 100; ++i) {
    taken = !taken;
    const auto pred = p.predict(pc);
    if (pred.taken != taken) ++wrong;
    p.update(pc, taken, 0x3000, pred.taken != taken);
  }
  EXPECT_LE(wrong, 2u);
}

TEST(Predictor, RasPushPopNesting) {
  cpu::TournamentPredictor p;
  p.ras_push(0x100);
  p.ras_push(0x200);
  p.ras_push(0x300);
  EXPECT_EQ(p.ras_pop(), 0x300u);
  EXPECT_EQ(p.ras_pop(), 0x200u);
  p.ras_push(0x400);
  EXPECT_EQ(p.ras_pop(), 0x400u);
  EXPECT_EQ(p.ras_pop(), 0x100u);
  EXPECT_EQ(p.ras_pop(), 0u);  // empty
}

TEST(Predictor, SerializationRoundTrip) {
  cpu::TournamentPredictor p;
  util::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t pc = 0x2000 + (rng.below(256) << 2);
    const bool taken = rng.chance(0.7);
    const auto pred = p.predict(pc);
    p.update(pc, taken, pc + 40, pred.taken != taken);
  }
  util::ByteWriter w;
  p.serialize(w);
  cpu::TournamentPredictor q;
  util::ByteReader r(w.bytes());
  q.deserialize(r);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t pc = 0x2000 + (std::uint64_t(i) << 2);
    const auto a = p.predict(pc);
    const auto b = q.predict(pc);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.btb_hit, b.btb_hit);
    EXPECT_EQ(a.target, b.target);
  }
}

// ---------------- pipeline timing ----------------

std::uint64_t pipelined_ticks(const Program& prog) {
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.fi_enabled = false;
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread();
  const auto rr = s.run(100'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  return rr.ticks;
}

TEST(PipelineTiming, WarmLoopApproachesOneIpc) {
  // A loop keeps the I-cache warm after the first iteration, so the
  // steady-state rate should approach 1 instruction per cycle.
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::s0, 200);
  const Label loop = as.here("loop");
  for (int i = 0; i < 48; ++i) as.addq_i(reg::t0, 1, reg::t0);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.mov_i(0, reg::a0);
  as.exit_();
  const std::uint64_t ticks = pipelined_ticks(as.finalize(entry));
  const std::uint64_t insts = 200 * 50 + 4;
  EXPECT_LT(double(ticks), double(insts) * 1.25);
  EXPECT_GT(ticks, insts);
}

TEST(PipelineTiming, MispredictionsCostCycles) {
  // A data-dependent unpredictable branch pattern vs an always-taken loop.
  const auto build = [](bool random_branch) {
    Assembler as;
    const Label entry = as.here("main");
    as.li_u(reg::s1, 0x123456789);
    as.li(reg::s0, 4000);
    const Label loop = as.here("loop");
    const Label skip = as.make_label("skip");
    if (random_branch) {
      // LCG parity branch: ~50% taken, unlearnable.
      as.li_u(reg::t1, 6364136223846793005ull);
      as.mulq(reg::s1, reg::t1, reg::s1);
      as.srl_i(reg::s1, 33, reg::t0);
      as.blbs(reg::t0, skip);
    } else {
      as.li_u(reg::t1, 6364136223846793005ull);
      as.mulq(reg::s1, reg::t1, reg::s1);
      as.srl_i(reg::s1, 33, reg::t0);
      as.blbs(reg::zero, skip);  // never taken: perfectly predictable
    }
    as.addq_i(reg::t2, 1, reg::t2);
    as.bind(skip);
    as.subq_i(reg::s0, 1, reg::s0);
    as.bne(reg::s0, loop);
    as.mov_i(0, reg::a0);
    as.exit_();
    return as.finalize(entry);
  };
  // Committed instruction counts differ (the taken path skips one add), so
  // compare cycles-per-instruction: mispredictions must cost real cycles.
  const auto run = [](const Program& prog) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::Pipelined;
    cfg.fi_enabled = false;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    const auto rr = s.run(100'000'000);
    EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
    return double(rr.ticks) / double(rr.committed);
  };
  const double cpi_predictable = run(build(false));
  const double cpi_unpredictable = run(build(true));
  EXPECT_GT(cpi_unpredictable, cpi_predictable + 0.05);
}

TEST(PipelineTiming, CacheMissesStallThePipeline) {
  // Stride through 1 MiB (every access a fresh line, mostly L2/DRAM) vs
  // hammering one line.
  const auto build = [](std::int32_t stride_lines) {
    Assembler as;
    const DataRef buf = as.data_zeros(1 << 20);
    const Label entry = as.here("main");
    as.la(reg::s2, buf);
    as.mov(reg::s2, reg::t5);
    as.li(reg::s0, 4000);
    const Label loop = as.here("loop");
    as.ldq(reg::t0, 0, reg::t5);
    as.lda(reg::t5, stride_lines * 64, reg::t5);
    as.subq_i(reg::s0, 1, reg::s0);
    as.bne(reg::s0, loop);
    as.mov_i(0, reg::a0);
    as.exit_();
    return as.finalize(entry);
  };
  const std::uint64_t hot = pipelined_ticks(build(0));
  const std::uint64_t cold = pipelined_ticks(build(4));
  EXPECT_GT(cold, hot * 3);
}

TEST(PipelineTiming, TimingSimpleSlowerThanAtomic) {
  Assembler as;
  const DataRef buf = as.data_zeros(1 << 16);
  const Label entry = as.here("main");
  as.la(reg::t5, buf);
  as.li(reg::s0, 1000);
  const Label loop = as.here("loop");
  as.ldq(reg::t0, 0, reg::t5);
  as.lda(reg::t5, 64, reg::t5);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  std::uint64_t ticks[2];
  int i = 0;
  for (const auto kind : {sim::CpuKind::AtomicSimple, sim::CpuKind::TimingSimple}) {
    sim::SimConfig cfg;
    cfg.cpu = kind;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    ticks[i++] = s.run(100'000'000).ticks;
  }
  EXPECT_GT(ticks[1], ticks[0] * 2);  // timing model charges memory latency
}

// ---------------- co-simulation property ----------------

/// Generate a structured random program: a bounded loop whose body mixes
/// ALU ops, CMOVs, shifts, multiplies, loads/stores into a scratch buffer
/// and an occasional unpredictable forward branch; prints a register hash.
Program random_program(std::uint64_t seed) {
  util::Rng rng(seed);
  Assembler as;
  const DataRef buf = as.data_zeros(4096);
  const Label entry = as.here("main");
  as.la(reg::s2, buf);
  as.li_u(reg::s1, seed | 1);
  as.li(reg::s0, std::int64_t(20 + rng.below(60)));  // iterations

  const Label loop = as.here("loop");
  const unsigned body = 8 + unsigned(rng.below(16));
  for (unsigned i = 0; i < body; ++i) {
    const unsigned a = 1 + unsigned(rng.below(8));   // t0..t7
    const unsigned b = 1 + unsigned(rng.below(8));
    const unsigned c = 1 + unsigned(rng.below(8));
    switch (rng.below(10)) {
      case 0: as.addq(a, b, c); break;
      case 1: as.subq(a, b, c); break;
      case 2: as.xor_(a, b, c); break;
      case 3: as.and_i(a, unsigned(rng.below(256)), c); break;
      case 4: as.sll_i(a, unsigned(rng.below(63)), c); break;
      case 5: as.mulq(a, b, c); break;
      case 6: as.cmovne(a, b, c); break;
      case 7: as.cmplt(a, b, c); break;
      case 8: {  // store then load back within the scratch buffer
        as.and_i(a, 0xf8, reg::t9);
        as.addq(reg::t9, reg::s2, reg::t9);
        as.stq(b, 0, reg::t9);
        as.ldq(c, 0, reg::t9);
        break;
      }
      case 9: {  // unpredictable short forward skip
        const Label skip = as.make_label();
        as.li_u(reg::t9, 6364136223846793005ull);
        as.mulq(reg::s1, reg::t9, reg::s1);
        as.srl_i(reg::s1, 40, reg::t9);
        as.blbs(reg::t9, skip);
        as.addq_i(a, 3, a);
        as.bind(skip);
        break;
      }
    }
  }
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);

  // Hash t0..t7 into v0 and print.
  as.li(reg::v0, 0);
  for (unsigned r = 1; r <= 8; ++r) {
    as.sll_i(reg::v0, 7, reg::t9);
    as.xor_(reg::t9, reg::v0, reg::v0);
    as.addq(reg::v0, r, reg::v0);
  }
  as.print_int_r(reg::v0);
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

class CoSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoSim, AllModelsProduceIdenticalResults) {
  const Program prog = random_program(GetParam());
  std::string outputs[3];
  std::uint64_t committed[3];
  int i = 0;
  for (const auto kind :
       {sim::CpuKind::AtomicSimple, sim::CpuKind::TimingSimple, sim::CpuKind::Pipelined}) {
    sim::SimConfig cfg;
    cfg.cpu = kind;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    const auto rr = s.run(100'000'000);
    ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited) << "seed " << GetParam();
    outputs[i] = s.output(0);
    committed[i] = rr.committed;
    ++i;
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
  EXPECT_EQ(committed[0], committed[1]);
  EXPECT_EQ(committed[0], committed[2]);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, CoSim,
                         ::testing::Range(std::uint64_t(1), std::uint64_t(21)));

}  // namespace
