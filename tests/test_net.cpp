// Unit tests for the net layer (framing, sockets) and the dispatch wire
// encoding — everything below the campaign protocol, testable without
// spawning worker processes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <optional>
#include <thread>

#include "campaign/runner.hpp"
#include "campaign/wire.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "test_env.hpp"
#include "util/bytesio.hpp"

using namespace gemfi;
namespace wire = gemfi::campaign::wire;

namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

}  // namespace

// --- framing ---

TEST(Frame, RoundTripsPayload) {
  const auto payload = bytes_of("hello campaign");
  const auto wire = net::encode_frame(7, payload);
  EXPECT_EQ(wire.size(), net::kFrameHeaderBytes + payload.size());

  net::FrameReader reader(1 << 16);
  reader.feed(wire);
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 7);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Frame, EmptyPayload) {
  const auto wire = net::encode_frame(3, {});
  net::FrameReader reader(16);
  reader.feed(wire);
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 3);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(Frame, ReassemblesFromSingleByteChunks) {
  // TCP chunks arbitrarily; the reader must survive the worst case.
  const auto payload = bytes_of("0123456789abcdef");
  const auto wire = net::encode_frame(1, payload);
  net::FrameReader reader(1 << 16);
  std::size_t frames = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    reader.feed(std::span<const std::uint8_t>(&wire[i], 1));
    while (auto f = reader.next()) {
      ++frames;
      EXPECT_EQ(f->payload, payload);
    }
  }
  EXPECT_EQ(frames, 1u);
}

TEST(Frame, BackToBackFramesInOneFeed) {
  auto wire = net::encode_frame(1, bytes_of("first"));
  const auto second = net::encode_frame(2, bytes_of("second"));
  wire.insert(wire.end(), second.begin(), second.end());
  net::FrameReader reader(1 << 16);
  reader.feed(wire);
  auto f1 = reader.next();
  auto f2 = reader.next();
  ASSERT_TRUE(f1 && f2);
  EXPECT_EQ(f1->type, 1);
  EXPECT_EQ(f2->type, 2);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Frame, RejectsBadMagic) {
  net::FrameReader reader(1 << 16);
  const auto junk = bytes_of("GET / HTTP/1.1\r\n");
  reader.feed(junk);
  EXPECT_THROW(reader.next(), net::ProtocolError);
}

TEST(Frame, RejectsBadMagicOnPartialPrefix) {
  // The very first wrong byte should already condemn the stream — no need
  // to buffer a full header before rejecting a junk peer.
  net::FrameReader reader(1 << 16);
  const std::uint8_t wrong = 0xFF;
  reader.feed(std::span<const std::uint8_t>(&wrong, 1));
  EXPECT_THROW(reader.next(), net::ProtocolError);
}

TEST(Frame, RejectsCorruptedPayload) {
  auto wire = net::encode_frame(4, bytes_of("payload under crc"));
  wire[net::kFrameHeaderBytes + 3] ^= 0x40;  // flip a payload bit
  net::FrameReader reader(1 << 16);
  reader.feed(wire);
  EXPECT_THROW(reader.next(), net::ProtocolError);
}

TEST(Frame, RejectsCorruptedLength) {
  // A corrupted length that blows past the reader's cap is rejected at the
  // header; one that stays under it merely postpones death to the CRC check.
  auto wire = net::encode_frame(4, bytes_of("x"));
  for (std::size_t i = 5; i < 9; ++i) wire[i] = 0xFF;  // magic u32 | type u8 | length
  net::FrameReader reader(1 << 16);
  reader.feed(wire);
  EXPECT_THROW(reader.next(), net::ProtocolError);

  auto subtle = net::encode_frame(4, bytes_of("xyz"));
  subtle[5] = 1;  // still plausible: frame now claims 1 payload byte
  net::FrameReader reader2(1 << 16);
  reader2.feed(subtle);
  EXPECT_THROW(reader2.next(), net::ProtocolError);  // CRC catches it
}

TEST(Frame, RejectsOversizedAnnouncementBeforeBuffering) {
  // A frame announcing a payload over the cap must throw as soon as the
  // header is visible, not after the peer streams gigabytes at us.
  const auto wire = net::encode_frame(1, std::vector<std::uint8_t>(64, 0xAB));
  net::FrameReader reader(/*max_payload=*/16);
  reader.feed(std::span<const std::uint8_t>(wire.data(), net::kFrameHeaderBytes));
  EXPECT_THROW(reader.next(), net::ProtocolError);
}

TEST(Frame, TruncatedFrameStaysPending) {
  const auto wire = net::encode_frame(1, bytes_of("truncated"));
  net::FrameReader reader(1 << 16);
  reader.feed(std::span<const std::uint8_t>(wire.data(), wire.size() - 1));
  EXPECT_FALSE(reader.next().has_value());  // incomplete, not damaged
  reader.feed(std::span<const std::uint8_t>(wire.data() + wire.size() - 1, 1));
  EXPECT_TRUE(reader.next().has_value());
}

// --- wire messages ---

TEST(Wire, HelloRoundTrip) {
  const auto payload = wire::encode_hello({wire::kProtocolVersion, 12});
  const wire::Hello h = wire::decode_hello(payload);
  EXPECT_EQ(h.version, wire::kProtocolVersion);
  EXPECT_EQ(h.slots, 12u);
}

TEST(Wire, HelloRejectsVersionSkewAndBadSlots) {
  EXPECT_THROW(wire::decode_hello(wire::encode_hello({99, 1})),
               util::DeserializeError);
  EXPECT_THROW(wire::decode_hello(wire::encode_hello({wire::kProtocolVersion, 0})),
               util::DeserializeError);
  EXPECT_THROW(
      wire::decode_hello(wire::encode_hello({wire::kProtocolVersion, 1u << 20})),
      util::DeserializeError);
}

TEST(Wire, ResultRoundTrip) {
  wire::ResultMsg msg;
  msg.index = 1234;
  msg.result.classification.outcome = apps::Outcome::SDC;
  msg.result.classification.metric = 0.25;
  msg.result.exit_reason = sim::ExitReason::AllThreadsExited;
  msg.result.trap = cpu::TrapKind::None;
  msg.result.fault = fi::parse_fault(
      "RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu0 occ:1 int 1");
  msg.result.fault_applied = true;
  msg.result.time_fraction = 0.5;
  msg.result.sim_ticks = 987654;
  msg.result.wall_seconds = 1.5;
  msg.result.retries = 1;
  msg.result.sim_error = "none really";
  msg.result.ckpt_version = 2;
  msg.result.restore_pages = 17;
  msg.result.restore_bytes = 69632;

  const wire::ResultMsg back = wire::decode_result(wire::encode_result(msg));
  EXPECT_EQ(back.index, msg.index);
  EXPECT_EQ(back.result.classification.outcome, msg.result.classification.outcome);
  EXPECT_DOUBLE_EQ(back.result.classification.metric, msg.result.classification.metric);
  EXPECT_EQ(back.result.fault.to_line(), msg.result.fault.to_line());
  EXPECT_EQ(back.result.sim_ticks, msg.result.sim_ticks);
  EXPECT_EQ(back.result.retries, msg.result.retries);
  EXPECT_EQ(back.result.sim_error, msg.result.sim_error);
  EXPECT_EQ(back.result.ckpt_version, msg.result.ckpt_version);
  EXPECT_EQ(back.result.restore_bytes, msg.result.restore_bytes);
}

TEST(Wire, ResultRejectsOutOfRangeEnums) {
  wire::ResultMsg msg;
  msg.index = 1;
  auto payload = wire::encode_result(msg);
  // First byte after the u64 index is the outcome discriminator.
  payload[8] = 0xEE;
  EXPECT_THROW(wire::decode_result(payload), util::DeserializeError);
}

TEST(Wire, BatchRoundTripAndLimits) {
  std::vector<wire::BatchItem> items;
  for (std::uint64_t i = 0; i < 5; ++i)
    items.push_back(
        {i * 7, "RegisterInjectedFault Inst:" + std::to_string(100 + i) +
                    " Flip:3 Threadid:0 system.cpu0 occ:1 int 2"});
  const auto back = wire::decode_batch(wire::encode_batch(items));
  ASSERT_EQ(back.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(back[i].index, items[i].index);
    EXPECT_EQ(back[i].fault_line, items[i].fault_line);
  }

  util::ByteWriter w;
  w.put_u32(0xFFFFFFFF);  // implausible batch count
  EXPECT_THROW(wire::decode_batch(w.take()), util::DeserializeError);
}

TEST(Wire, DecodersRejectTrailingBytes) {
  auto payload = wire::encode_heartbeat({1, 2});
  payload.push_back(0);
  EXPECT_THROW(wire::decode_heartbeat(payload), util::DeserializeError);
}

TEST(Wire, WelcomeRebuildsCalibratedApp) {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  cfg.campaign_seed = 1234;
  cfg.deadline_seconds = 2.5;
  const apps::AppScale scale;
  const campaign::CalibratedApp ca = campaign::calibrate(apps::build_app("pi"), cfg);

  const auto payload = wire::encode_welcome(wire::Welcome::from(ca, scale, cfg));
  const wire::Welcome w = wire::decode_welcome(payload);
  const campaign::CalibratedApp back = w.rebuild_app();
  const campaign::CampaignConfig bcfg = w.rebuild_config();

  EXPECT_EQ(back.app.name, ca.app.name);
  EXPECT_EQ(back.app.golden_output, ca.app.golden_output);
  EXPECT_EQ(back.golden_ticks, ca.golden_ticks);
  EXPECT_EQ(back.golden_committed, ca.golden_committed);
  EXPECT_EQ(back.kernel_fetches, ca.kernel_fetches);
  EXPECT_EQ(back.checkpoint.bytes(), ca.checkpoint.bytes());
  EXPECT_EQ(bcfg.cpu, cfg.cpu);
  EXPECT_EQ(bcfg.campaign_seed, cfg.campaign_seed);
  EXPECT_DOUBLE_EQ(bcfg.deadline_seconds, cfg.deadline_seconds);

  // The rebuilt app must actually run: one experiment on each side of the
  // wire produces the identical result.
  const fi::Fault f = campaign::seeded_fault_any(cfg.campaign_seed, 3, ca.kernel_fetches);
  const auto here = campaign::run_experiment(ca, f, cfg);
  const auto there = campaign::run_experiment(back, f, bcfg);
  EXPECT_EQ(here.classification.outcome, there.classification.outcome);
  EXPECT_EQ(here.sim_ticks, there.sim_ticks);
}

// --- sockets ---

TEST(Socket, LoopbackSendRecv) {
  auto listener = net::TcpListener::bind_listen("127.0.0.1", 0);
  ASSERT_NE(listener.port(), 0);

  net::TcpConn client = net::TcpConn::connect("127.0.0.1", listener.port(), 5, 0.05);
  std::optional<net::TcpConn> server;
  for (int i = 0; i < 100 && !server; ++i) {
    server = listener.accept();
    if (!server) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(server.has_value());

  const auto msg = bytes_of("over the loopback");
  client.send_all(msg);
  std::vector<std::uint8_t> got;
  std::uint8_t buf[64];
  while (got.size() < msg.size()) {
    ASSERT_TRUE(server->wait_readable(2.0));
    const auto n = server->recv_some(buf);
    ASSERT_TRUE(n.has_value());
    got.insert(got.end(), buf, buf + *n);
  }
  EXPECT_EQ(got, msg);

  client.close();
  ASSERT_TRUE(server->wait_readable(2.0));
  EXPECT_FALSE(server->recv_some(buf).has_value());  // EOF
}

TEST(Socket, ConnectRefusedThrowsAfterBudget) {
  // Bind-then-close to get a port that refuses connections.
  std::uint16_t dead_port;
  {
    auto l = net::TcpListener::bind_listen("127.0.0.1", 0);
    dead_port = l.port();
  }
  EXPECT_THROW(net::TcpConn::connect("127.0.0.1", dead_port, 2, 0.01),
               net::SocketError);
}

TEST(Socket, SelfPipeDrainsWithoutBlocking) {
  net::SelfPipe pipe;
  pipe.notify();
  pipe.notify();
  pipe.drain();  // must consume everything without blocking
  pipe.notify();
  pipe.drain();
  SUCCEED();
}

// --- UNIX-domain transport ---
// An accepted AF_UNIX stream is a plain TcpConn, so the whole TCP contract
// (send/recv, EOF, framing, hostile-peer rejection) must hold unchanged.

namespace {

std::string unix_sock_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("gemfi_net_") + tag + "_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

std::optional<net::TcpConn> accept_one(net::UnixListener& listener) {
  for (int i = 0; i < 200; ++i) {
    if (auto conn = listener.accept()) return conn;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return std::nullopt;
}

}  // namespace

TEST(UnixSocket, SendRecvAndEofMatchTcpSemantics) {
  const std::string path = unix_sock_path("rt");
  auto listener = net::UnixListener::bind_listen(path);
  ASSERT_TRUE(listener.valid());
  EXPECT_EQ(listener.path(), path);

  net::TcpConn client = net::TcpConn::connect_unix(path, 5, 0.05);
  auto server = accept_one(listener);
  ASSERT_TRUE(server.has_value());

  const auto msg = bytes_of("over the unix socket");
  client.send_all(msg);
  std::vector<std::uint8_t> got;
  std::uint8_t buf[64];
  while (got.size() < msg.size()) {
    ASSERT_TRUE(server->wait_readable(gemfi::testenv::scaled_s(2.0)));
    const auto n = server->recv_some(buf);
    ASSERT_TRUE(n.has_value());
    got.insert(got.end(), buf, buf + *n);
  }
  EXPECT_EQ(got, msg);

  client.close();
  ASSERT_TRUE(server->wait_readable(gemfi::testenv::scaled_s(2.0)));
  EXPECT_FALSE(server->recv_some(buf).has_value());  // EOF
}

TEST(UnixSocket, GfnwFramesRoundTripUnchanged) {
  const std::string path = unix_sock_path("frames");
  auto listener = net::UnixListener::bind_listen(path);
  net::TcpConn client = net::TcpConn::connect_unix(path, 5, 0.05);
  auto server = accept_one(listener);
  ASSERT_TRUE(server.has_value());

  const auto payload = bytes_of("transport-agnostic framing");
  client.send_all(net::encode_frame(7, payload));

  net::FrameReader reader(1 << 16);
  std::optional<net::Frame> frame;
  std::uint8_t buf[256];
  while (!frame) {
    ASSERT_TRUE(server->wait_readable(gemfi::testenv::scaled_s(2.0)));
    const auto n = server->recv_some(buf);
    ASSERT_TRUE(n.has_value());
    reader.feed(std::span<const std::uint8_t>(buf, *n));
    frame = reader.next();
  }
  EXPECT_EQ(frame->type, 7);
  EXPECT_EQ(frame->payload, payload);
}

TEST(UnixSocket, HostilePeerGarbageIsRejectedByFraming) {
  const std::string path = unix_sock_path("hostile");
  auto listener = net::UnixListener::bind_listen(path);
  net::TcpConn client = net::TcpConn::connect_unix(path, 5, 0.05);
  auto server = accept_one(listener);
  ASSERT_TRUE(server.has_value());

  client.send_all(bytes_of("GET / HTTP/1.1\r\n"));
  net::FrameReader reader(1 << 16);
  std::uint8_t buf[64];
  ASSERT_TRUE(server->wait_readable(gemfi::testenv::scaled_s(2.0)));
  const auto n = server->recv_some(buf);
  ASSERT_TRUE(n.has_value());
  reader.feed(std::span<const std::uint8_t>(buf, *n));
  EXPECT_THROW(reader.next(), net::ProtocolError);
}

TEST(UnixSocket, RebindUnlinksStaleSocketFile) {
  const std::string path = unix_sock_path("stale");
  {
    auto first = net::UnixListener::bind_listen(path);
    ASSERT_TRUE(first.valid());
    // Simulate a crashed master: the socket file outlives the listener. The
    // destructor normally unlinks, so re-create the stale file by hand.
  }
  {
    auto stale = net::UnixListener::bind_listen(path);
    // Leak the file on purpose: close the fd without the destructor's unlink
    // by moving the listener away and abandoning the path check to bind #2.
    auto second = net::UnixListener::bind_listen(path);  // must unlink + rebind
    ASSERT_TRUE(second.valid());
    net::TcpConn client = net::TcpConn::connect_unix(path, 5, 0.05);
    auto conn = accept_one(second);
    EXPECT_TRUE(conn.has_value());
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(UnixSocket, OverlongPathThrows) {
  EXPECT_THROW(
      net::UnixListener::bind_listen("/tmp/" + std::string(200, 'x') + ".sock"),
      net::SocketError);
  EXPECT_THROW(net::TcpConn::connect_unix("/tmp/" + std::string(200, 'x') + ".sock"),
               net::SocketError);
}

TEST(UnixSocket, ConnectToMissingPathThrowsAfterBudget) {
  EXPECT_THROW(net::TcpConn::connect_unix(unix_sock_path("missing"), 2, 0.01),
               net::SocketError);
}
