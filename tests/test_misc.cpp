// Cross-cutting edge cases: checkpoint/config mismatches, assembler link
// errors, paper-scale app builds, injection-log contents, and watchdog
// behavior under fault-induced livelock.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "assembler/assembler.hpp"
#include "chkpt/checkpoint.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

TEST(CheckpointMismatch, RestoreIntoDifferentMemoryGeometryThrows) {
  const apps::App app = apps::build_app("pi");
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation a(cfg, app.program);
  a.spawn_main_thread();
  chkpt::Checkpoint ckpt;
  a.set_checkpoint_handler(
      [&](sim::Simulation& s) { ckpt = chkpt::Checkpoint::capture(s); });
  ASSERT_EQ(a.run(2'000'000'000ull).reason, sim::ExitReason::AllThreadsExited);

  sim::SimConfig other = cfg;
  other.mem.phys_bytes = 2 * 1024 * 1024;  // different geometry
  sim::Simulation b(other, app.program);
  b.spawn_main_thread();
  EXPECT_THROW(ckpt.restore_into(b), util::DeserializeError);
}

TEST(CheckpointMismatch, RestoreIntoDifferentCpuModelStillWorks) {
  // The checkpoint records the active CPU kind; restoring into a simulation
  // constructed with another kind re-instantiates the captured one.
  const apps::App app = apps::build_app("pi");
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation a(cfg, app.program);
  a.spawn_main_thread();
  chkpt::Checkpoint ckpt;
  a.set_checkpoint_handler(
      [&](sim::Simulation& s) { ckpt = chkpt::Checkpoint::capture(s); });
  ASSERT_EQ(a.run(2'000'000'000ull).reason, sim::ExitReason::AllThreadsExited);

  sim::SimConfig cfg2;
  cfg2.cpu = sim::CpuKind::Pipelined;
  sim::Simulation b(cfg2, app.program);
  b.spawn_main_thread();
  ckpt.restore_into(b);
  EXPECT_EQ(b.active_cpu_kind(), sim::CpuKind::AtomicSimple);
  const auto rr = b.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(b.output(0), app.golden_output);
}

TEST(AssemblerLimits, BranchDisplacementOverflowIsLinkError) {
  Assembler as;
  const Label entry = as.here("main");
  const Label far = as.make_label("far");
  as.br(far);
  // 2^20 + slack instructions of padding puts the target out of the 21-bit
  // signed displacement range.
  for (int i = 0; i < (1 << 20) + 16; ++i) as.emit(isa::encode_operate(
      isa::Opcode::INTA, 0x20, 31, 31, 31));
  as.bind(far);
  as.exit_();
  EXPECT_THROW((void)as.finalize(entry), std::runtime_error);
}

TEST(PaperScale, AppsBuildAndValidateAtPaperInputs) {
  // Golden-equivalence at paper-scale inputs for the cheaper kernels
  // (the full six at paper scale run in the --full benches).
  apps::AppScale scale;
  scale.paper = true;
  for (const auto& name : {"dct", "deblock", "knapsack"}) {
    const apps::App app = apps::build_app(name, scale);
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::AtomicSimple;
    sim::Simulation s(cfg, app.program);
    s.spawn_main_thread();
    const auto rr = s.run(4'000'000'000ull);
    ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited) << name;
    EXPECT_EQ(s.output(0), app.golden_output) << name;
    double metric = 0.0;
    EXPECT_TRUE(app.acceptable(app.golden_output, metric)) << name;
  }
}

TEST(InjectionLog, RecordsDisassemblyAndValues) {
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::t1, 3);
  as.addq(reg::t1, reg::t1, reg::t0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "ExecutionStageInjectedFault Inst:2 Flip:4 Threadid:0 system.cpu0 occ:1")});
  (void)s.run(1'000'000);
  ASSERT_EQ(s.fault_manager().injection_log().size(), 1u);
  const std::string& line = s.fault_manager().injection_log()[0];
  // Post-mortem record: stage, affected assembly, before/after values.
  EXPECT_NE(line.find("ExecutionStageInjectedFault"), std::string::npos) << line;
  EXPECT_NE(line.find("addq t1, t1, t0"), std::string::npos) << line;
  EXPECT_NE(line.find("0x6 -> 0x16"), std::string::npos) << line;
  const auto& st = s.fault_manager().states()[0];
  EXPECT_EQ(st.original_value, 6u);
  EXPECT_EQ(st.corrupted_value, 0x16u);
}

TEST(Watchdog, FaultInducedLivelockIsCaughtAsCrash) {
  // Corrupt the loop counter of a countdown so it never reaches zero
  // (bne keeps spinning); the campaign watchdog must classify it crashed.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::s0, 10);
  const Label loop = as.here("loop");
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  // Set a high bit in the counter: it stays nonzero for ~2^62 iterations.
  s.fault_manager().load_faults({fi::parse_fault(
      "RegisterInjectedFault Inst:3 Flip:62 Threadid:0 system.cpu0 occ:1 int 9")});
  const auto rr = s.run(100'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::Watchdog);
}

TEST(Outputs, MultiFaultFileInjectsAll) {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::s0, 0);
  as.li(reg::s1, 0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (int i = 0; i < 30; ++i) as.addq_i(reg::t0, 1, reg::t0);
  as.mov(reg::s0, reg::a0);
  as.print_int();
  as.print_str(" ");
  as.mov(reg::s1, reg::a0);
  as.print_int();
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  s.fault_manager().load_faults(fi::parse_fault_file(
      "# two faults in one experiment (multi-bit upset)\n"
      "RegisterInjectedFault Inst:2 Flip:0 Threadid:0 system.cpu0 occ:1 int 9\n"
      "RegisterInjectedFault Inst:4 Flip:1 Threadid:0 system.cpu0 occ:1 int 10\n"));
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "1 2");
}

TEST(Outputs, PrintsAreCapturedOutsideFiWindowToo) {
  Assembler as;
  const Label entry = as.here("main");
  as.print_str("pre ");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_str("mid ");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_str("post");
  as.mov_i(0, reg::a0);
  as.exit_();
  sim::SimConfig cfg;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  (void)s.run(1'000'000);
  EXPECT_EQ(s.output(0), "pre mid post");
}

}  // namespace
