// Syscall fault-injection tests: the plan grammar, the deterministic
// injector, the failure-propagation classifier, the OS-layer injection
// mechanics, and — the core differential — golden-vs-injected runs across
// all three CPU models:
//   * every errno:/latency:/partial:/corrupt: plan armed with probability 0
//     must leave the run bit-identical to golden (commit-trace digest, final
//     memory image, output, ticks, cache counters, FI log);
//   * a firing latency: plan must change ticks and nothing else — the
//     architectural trace, the guest output and the FI log stay identical.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "apps/app.hpp"
#include "campaign/classify.hpp"
#include "fi/syscall_fault.hpp"
#include "mem/physmem.hpp"
#include "os/syscall.hpp"
#include "sim/simulation.hpp"
#include "util/bytesio.hpp"
#include "util/rng.hpp"

namespace {

using namespace gemfi;

// ---------------------------------------------------------------- grammar --

// Canonical lines: to_line() output must parse back to an identical line.
const char* const kCanonicalLines[] = {
    "write errno:EIO",
    "write@idx:3 errno:EIO",
    "read@idx:2-5 tid:0 partial:0.5",
    "* p:0.01@0x1234 latency:2000",
    "recv corrupt:3@0xbeef",
    "write@idx:4 latency:500 partial:0.25",
    "open@idx:2 errno:ENOENT",
    "alloc errno:ENOMEM",
    "send tid:3 p:0.5@0xdeadbeef errno:EMSGSIZE",
    "close@idx:1-7 errno:EIO latency:12 partial:0.125 corrupt:1@0x1",
    "* errno:ENOSYS",
    "free p:0@0x0 errno:EINVAL",
};

TEST(SyscallPlanGrammar, RoundTripByteIdentity) {
  for (const char* line : kCanonicalLines) {
    const fi::SyscallFaultPlan p1 = fi::parse_syscall_plan(line);
    const std::string rendered = p1.to_line();
    EXPECT_EQ(rendered, line) << "not canonical";
    const fi::SyscallFaultPlan p2 = fi::parse_syscall_plan(rendered);
    EXPECT_EQ(p2.to_line(), rendered) << "parse -> render not a fixed point";
  }
}

TEST(SyscallPlanGrammar, ParsedFieldsMatchSpec) {
  const fi::SyscallFaultPlan p =
      fi::parse_syscall_plan("read@idx:2-5 tid:0 p:0.25@0xabc partial:0.5");
  EXPECT_EQ(p.target, os::Sysno::Read);
  EXPECT_EQ(p.idx_lo, 2u);
  EXPECT_EQ(p.idx_hi, 5u);
  EXPECT_EQ(p.tid, 0);
  EXPECT_EQ(p.prob_ppm, 250'000u);
  EXPECT_EQ(p.prob_seed, 0xabcu);
  EXPECT_TRUE(p.has_partial);
  EXPECT_EQ(p.partial_ppm, 500'000u);
  EXPECT_FALSE(p.has_errno);
  EXPECT_FALSE(p.has_latency);
  EXPECT_FALSE(p.has_corrupt);

  const fi::SyscallFaultPlan any = fi::parse_syscall_plan("* errno:EIO");
  EXPECT_TRUE(any.matches_any_syscall());
  EXPECT_EQ(any.idx_lo, 1u);
  EXPECT_EQ(any.idx_hi, ~0ull);
  EXPECT_EQ(any.tid, -1);
  EXPECT_EQ(any.prob_ppm, 1'000'000u);
  EXPECT_TRUE(any.has_errno);
  EXPECT_EQ(any.errno_code, os::kEIO);
}

TEST(SyscallPlanGrammar, RejectsMalformedInput) {
  const char* const kBad[] = {
      "",                            // empty
      "write",                       // no behavior clause
      "chdir errno:EIO",             // unknown syscall
      "write errno:EWOULDBLOCK",     // unknown errno name
      "write errno:",                // empty errno
      "write partial:1.5",           // fraction out of [0, 1]
      "write partial:-0.5",          // negative fraction
      "write p:2 errno:EIO",         // probability out of range
      "write p:0.5@1234 errno:EIO",  // seed must be 0x-hex
      "write@idx: errno:EIO",        // empty index window
      "write@idx:5-2 errno:EIO",     // inverted window
      "write@idx:abc errno:EIO",     // non-numeric index
      "write latency:abc",           // non-numeric latency
      "write corrupt:0x2 errno:EIO", // corrupt count is decimal
      "write bogus:1",               // unknown clause
      "write errno:EIO trailing",    // trailing junk
  };
  for (const char* line : kBad)
    EXPECT_THROW((void)fi::parse_syscall_plan(line), std::invalid_argument)
        << "accepted: '" << line << "'";
}

// Every prefix of a valid line must either parse cleanly or throw
// std::invalid_argument — never crash, never throw anything else.
TEST(SyscallPlanGrammar, TruncationFuzzNeverCrashes) {
  for (const char* line : kCanonicalLines) {
    const std::string full(line);
    for (std::size_t n = 0; n <= full.size(); ++n) {
      const std::string prefix = full.substr(0, n);
      try {
        const fi::SyscallFaultPlan p = fi::parse_syscall_plan(prefix);
        // Accepted prefixes must still round-trip.
        EXPECT_EQ(fi::parse_syscall_plan(p.to_line()).to_line(), p.to_line());
      } catch (const std::invalid_argument&) {
        // Expected for malformed prefixes.
      }
    }
  }
}

// Seeded hostile mutations: splice random bytes into valid lines. The parser
// must stay total (parse or invalid_argument), and accepted mutants must
// round-trip through their canonical rendering.
TEST(SyscallPlanGrammar, MutationFuzzNeverCrashes) {
  util::Rng rng(0xfeedfacecafeull);
  const char kCharset[] = "abcdefghijklmnopqrstuvwxyz0123456789:@-.*% \t";
  for (int iter = 0; iter < 4000; ++iter) {
    std::string s = kCanonicalLines[rng.below(std::size(kCanonicalLines))];
    const unsigned edits = 1 + unsigned(rng.below(4));
    for (unsigned e = 0; e < edits; ++e) {
      const std::size_t pos = s.empty() ? 0 : rng.below(s.size());
      switch (rng.below(3)) {
        case 0:  // overwrite
          if (!s.empty()) s[pos] = kCharset[rng.below(std::size(kCharset) - 1)];
          break;
        case 1:  // insert
          s.insert(s.begin() + pos, kCharset[rng.below(std::size(kCharset) - 1)]);
          break;
        default:  // delete
          if (!s.empty()) s.erase(s.begin() + pos);
          break;
      }
    }
    try {
      const fi::SyscallFaultPlan p = fi::parse_syscall_plan(s);
      EXPECT_EQ(fi::parse_syscall_plan(p.to_line()).to_line(), p.to_line())
          << "mutant '" << s << "' broke round-trip";
    } catch (const std::invalid_argument&) {
    }
  }
}

// --------------------------------------------------------------- injector --

TEST(SyscallInjector, DecisionsArePureFunctionsOfThePlan) {
  const char* const kPlans[] = {
      "write@idx:3 errno:EIO",
      "read p:0.3@0x77 partial:0.5",
      "* p:0.01@0x1234 latency:2000",
  };
  fi::SyscallFaultInjector a, b;
  for (const char* line : kPlans) {
    a.add_plan(fi::parse_syscall_plan(line));
    b.add_plan(fi::parse_syscall_plan(line));
  }
  std::uint64_t fired = 0;
  for (std::uint64_t tid = 0; tid < 3; ++tid) {
    for (unsigned sn = 1; sn < os::kNumSysnos; ++sn) {
      for (std::uint64_t idx = 1; idx <= 40; ++idx) {
        const auto s = static_cast<os::Sysno>(sn);
        const os::SyscallInjection ia = a.decide(s, idx, tid);
        const os::SyscallInjection ib = b.decide(s, idx, tid);
        EXPECT_EQ(ia.fired, ib.fired);
        EXPECT_EQ(ia.force_errno, ib.force_errno);
        EXPECT_EQ(ia.latency, ib.latency);
        EXPECT_EQ(ia.has_partial, ib.has_partial);
        EXPECT_EQ(ia.partial_ppm, ib.partial_ppm);
        EXPECT_EQ(ia.corrupt_bits, ib.corrupt_bits);
        EXPECT_EQ(ia.corrupt_seed, ib.corrupt_seed);
        if (ia.fired) ++fired;
      }
    }
  }
  // The deterministic windowed plan alone guarantees some activity, and the
  // probabilistic plans must not fire on (nearly) everything.
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 3u * (os::kNumSysnos - 1) * 40u);
  EXPECT_EQ(a.total_applied(), b.total_applied());
}

TEST(SyscallInjector, ProbabilityZeroNeverFiresProbabilityOneAlwaysFires) {
  fi::SyscallFaultInjector never, always;
  never.add_plan(fi::parse_syscall_plan("write p:0 errno:EIO"));
  always.add_plan(fi::parse_syscall_plan("write errno:EIO"));
  for (std::uint64_t idx = 1; idx <= 1000; ++idx) {
    EXPECT_FALSE(never.decide(os::Sysno::Write, idx, 0).fired);
    EXPECT_TRUE(always.decide(os::Sysno::Write, idx, 0).fired);
  }
  EXPECT_EQ(never.total_applied(), 0u);
  EXPECT_EQ(always.total_applied(), 1000u);
}

TEST(SyscallInjector, WindowThreadAndTargetFiltersSelect) {
  fi::SyscallFaultInjector inj;
  inj.add_plan(fi::parse_syscall_plan("write@idx:3-5 tid:1 errno:EIO"));
  EXPECT_FALSE(inj.decide(os::Sysno::Write, 2, 1).fired);  // below window
  EXPECT_TRUE(inj.decide(os::Sysno::Write, 3, 1).fired);
  EXPECT_TRUE(inj.decide(os::Sysno::Write, 5, 1).fired);
  EXPECT_FALSE(inj.decide(os::Sysno::Write, 6, 1).fired);  // above window
  EXPECT_FALSE(inj.decide(os::Sysno::Write, 4, 0).fired);  // wrong thread
  EXPECT_FALSE(inj.decide(os::Sysno::Read, 4, 1).fired);   // wrong syscall
}

TEST(SyscallInjector, MatchingPlansCombine) {
  fi::SyscallFaultInjector inj;
  inj.add_plan(fi::parse_syscall_plan("write latency:100"));
  inj.add_plan(fi::parse_syscall_plan("write latency:700 partial:0.5"));
  inj.add_plan(fi::parse_syscall_plan("* errno:EIO"));
  const os::SyscallInjection d = inj.decide(os::Sysno::Write, 1, 0);
  EXPECT_TRUE(d.fired);
  EXPECT_EQ(d.latency, 700u);  // max of the latencies
  EXPECT_TRUE(d.has_partial);
  EXPECT_EQ(d.partial_ppm, 500'000u);
  EXPECT_EQ(d.force_errno, os::kEIO);
}

// ------------------------------------------------------------- classifier --

using TraceVec = std::vector<std::pair<std::uint64_t, os::SyscallTraceEntry>>;

os::SyscallTraceEntry entry(os::Sysno s, std::uint16_t err, bool injected,
                            std::uint64_t idx) {
  os::SyscallTraceEntry e;
  e.sysno = std::uint8_t(s);
  e.err = err;
  e.injected = injected;
  e.call_index = idx;
  return e;
}

TEST(SyscallClassifier, NoInjectionIsNoneEvenWhenUnhandled) {
  const TraceVec empty;
  EXPECT_EQ(campaign::classify_syscalls(empty, false).outcome,
            campaign::SyscallOutcome::None);
  // A crash without any injection is an architectural-fault story, not a
  // syscall-fault one.
  EXPECT_EQ(campaign::classify_syscalls(empty, true).outcome,
            campaign::SyscallOutcome::None);

  const TraceVec errors_only = {
      {0, entry(os::Sysno::Write, os::kENOSPC, false, 1)},
      {0, entry(os::Sysno::Write, os::kENOSPC, false, 2)},
  };
  const auto c = campaign::classify_syscalls(errors_only, true);
  EXPECT_EQ(c.outcome, campaign::SyscallOutcome::None);
  EXPECT_FALSE(c.injected);
  EXPECT_EQ(c.cascade_len, 0u);
}

TEST(SyscallClassifier, InjectedWithNoLaterFailureIsMasked) {
  const TraceVec t = {
      {0, entry(os::Sysno::Write, os::kEIO, true, 3)},
      {0, entry(os::Sysno::Write, 0, false, 4)},  // the retry succeeded
  };
  const auto c = campaign::classify_syscalls(t, false);
  EXPECT_EQ(c.outcome, campaign::SyscallOutcome::MaskedByHandler);
  EXPECT_TRUE(c.injected);
  EXPECT_EQ(c.cascade_len, 0u);  // the N = 0 side of the boundary
  EXPECT_FALSE(c.unrealistic);
}

TEST(SyscallClassifier, SingleLaterFailureIsCascadeOfExactlyOne) {
  const TraceVec t = {
      {0, entry(os::Sysno::Write, 0, true, 2)},  // injected partial, err 0
      {0, entry(os::Sysno::Write, os::kENOSPC, false, 3)},
  };
  const auto c = campaign::classify_syscalls(t, false);
  EXPECT_EQ(c.outcome, campaign::SyscallOutcome::Cascade);
  EXPECT_EQ(c.cascade_len, 1u);  // the N = 1 side of the boundary
}

TEST(SyscallClassifier, PreInjectionErrorsDoNotCount) {
  const TraceVec t = {
      {0, entry(os::Sysno::Open, os::kENOENT, false, 1)},  // before injection
      {0, entry(os::Sysno::Write, os::kEIO, true, 1)},
      {0, entry(os::Sysno::Write, os::kENOSPC, false, 2)},
      {0, entry(os::Sysno::Write, os::kENOSPC, false, 3)},
  };
  const auto c = campaign::classify_syscalls(t, false);
  EXPECT_EQ(c.outcome, campaign::SyscallOutcome::Cascade);
  EXPECT_EQ(c.cascade_len, 2u);
}

TEST(SyscallClassifier, LaterInjectedEntriesDoNotExtendTheChain) {
  const TraceVec t = {
      {0, entry(os::Sysno::Write, os::kEIO, true, 1)},
      {0, entry(os::Sysno::Write, os::kENOSPC, false, 2)},
      {0, entry(os::Sysno::Write, os::kEIO, true, 3)},  // injector activity
      {0, entry(os::Sysno::Write, os::kENOSPC, false, 4)},
  };
  const auto c = campaign::classify_syscalls(t, false);
  EXPECT_EQ(c.outcome, campaign::SyscallOutcome::Cascade);
  EXPECT_EQ(c.cascade_len, 2u);
}

TEST(SyscallClassifier, ChainsAreProperlyPerThread) {
  // tid 1's errors must not chain onto tid 0's injection; the run reports
  // the longest chain across threads.
  const TraceVec t = {
      {0, entry(os::Sysno::Write, os::kEIO, true, 1)},
      {1, entry(os::Sysno::Write, os::kENOSPC, false, 1)},
      {1, entry(os::Sysno::Write, os::kENOSPC, false, 2)},
      {2, entry(os::Sysno::Read, os::kEIO, true, 1)},
      {2, entry(os::Sysno::Read, os::kEIO, false, 2)},
  };
  const auto c = campaign::classify_syscalls(t, false);
  EXPECT_EQ(c.outcome, campaign::SyscallOutcome::Cascade);
  EXPECT_EQ(c.cascade_len, 1u);  // tid 2's chain; tid 1 never chains
}

TEST(SyscallClassifier, UnhandledTakesPrecedenceOverCascade) {
  const TraceVec t = {
      {0, entry(os::Sysno::Write, os::kEIO, true, 1)},
      {0, entry(os::Sysno::Write, os::kENOSPC, false, 2)},
  };
  const auto c = campaign::classify_syscalls(t, true);
  EXPECT_EQ(c.outcome, campaign::SyscallOutcome::UnhandledError);
  EXPECT_EQ(c.cascade_len, 1u);  // the chain length is still reported
}

TEST(SyscallClassifier, UnrealisticErrnoIsFlagged) {
  // ENOSPC out of sys_recv: no real execution reaches that path.
  const TraceVec unreal = {{0, entry(os::Sysno::Recv, os::kENOSPC, true, 1)}};
  EXPECT_TRUE(campaign::classify_syscalls(unreal, false).unrealistic);

  // ENOSPC out of sys_write is in the real table.
  const TraceVec real = {{0, entry(os::Sysno::Write, os::kENOSPC, true, 1)}};
  EXPECT_FALSE(campaign::classify_syscalls(real, false).unrealistic);

  // A successful injected call (latency-only) carries no errno to judge.
  const TraceVec latency = {{0, entry(os::Sysno::Recv, 0, true, 1)}};
  EXPECT_FALSE(campaign::classify_syscalls(latency, false).unrealistic);
}

TEST(SyscallClassifier, OutcomeNamesAreStable) {
  EXPECT_STREQ(campaign::syscall_outcome_name(campaign::SyscallOutcome::None), "none");
  EXPECT_STREQ(campaign::syscall_outcome_name(campaign::SyscallOutcome::MaskedByHandler),
               "masked-by-handler");
  EXPECT_STREQ(campaign::syscall_outcome_name(campaign::SyscallOutcome::Cascade),
               "cascade");
  EXPECT_STREQ(campaign::syscall_outcome_name(campaign::SyscallOutcome::UnhandledError),
               "unhandled-error");
}

// --------------------------------------------------------- OS-layer mechanics --

TEST(SyscallLayerInjection, PartialWriteAppliesExactlyOnce) {
  os::SyscallLayer sys;
  mem::PhysMem pm(64 * 1024);
  const std::uint64_t buf = 4096;
  for (unsigned i = 0; i < 8; ++i) pm.raw()[buf + i] = std::uint8_t('a' + i);

  const std::uint64_t open_args[3] = {7, os::kOpenWrite | os::kOpenCreate, 0};
  const std::int64_t fd =
      sys.execute(0, os::Sysno::Open, open_args,
                  sys.next_call_index(0, os::Sysno::Open), {}, pm);
  ASSERT_GE(fd, 0);

  os::SyscallInjection inj;
  inj.fired = true;
  inj.has_partial = true;
  inj.partial_ppm = 500'000;  // half of the requested length
  const std::uint64_t wargs[3] = {std::uint64_t(fd), buf, 8};
  const std::int64_t wrote =
      sys.execute(0, os::Sysno::Write, wargs,
                  sys.next_call_index(0, os::Sysno::Write), inj, pm);
  EXPECT_EQ(wrote, 4);  // a short write, not an error
  const auto content = sys.file_content(7);
  ASSERT_EQ(content.size(), 4u);
  EXPECT_EQ(0, std::memcmp(content.data(), "abcd", 4));

  // The short transfer is a success at the ABI level; the entry still
  // carries the injected mark the classifier keys on.
  const auto& trace = sys.trace(0);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].err, 0u);
  EXPECT_TRUE(trace[1].injected);
  EXPECT_EQ(sys.injected_calls(), 1u);
}

TEST(SyscallLayerInjection, ParkedCallCompletesOnceWithStoredDecisions) {
  os::SyscallLayer sys;
  mem::PhysMem pm(64 * 1024);
  const std::uint64_t buf = 4096;
  for (unsigned i = 0; i < 8; ++i) pm.raw()[buf + i] = std::uint8_t('0' + i);

  const std::uint64_t open_args[3] = {3, os::kOpenWrite | os::kOpenCreate, 0};
  const std::int64_t fd =
      sys.execute(0, os::Sysno::Open, open_args,
                  sys.next_call_index(0, os::Sysno::Open), {}, pm);
  ASSERT_GE(fd, 0);

  // A latency+partial injection parks at dispatch (decisions resolved once)
  // and completes later with the stored decisions — the sequence a thread
  // preempted or slept mid-call goes through.
  os::SyscallInjection inj;
  inj.fired = true;
  inj.latency = 500;
  inj.has_partial = true;
  inj.partial_ppm = 250'000;
  const std::uint64_t wargs[3] = {std::uint64_t(fd), buf, 8};
  const std::uint64_t idx = sys.next_call_index(0, os::Sysno::Write);
  sys.park(0, os::Sysno::Write, wargs, idx, inj);
  EXPECT_TRUE(sys.has_pending(0));
  EXPECT_TRUE(sys.file_content(3).empty());  // nothing applied at park time

  const std::int64_t wrote = sys.complete_pending(0, pm);
  EXPECT_EQ(wrote, 2);  // 8 * 0.25
  EXPECT_FALSE(sys.has_pending(0));
  EXPECT_EQ(sys.file_content(3).size(), 2u);
  EXPECT_EQ(sys.trace(0).size(), 2u);  // open + exactly one write entry

  // The next logical write gets the next index: the once-per-call counter
  // advanced exactly once through the park/complete round trip.
  EXPECT_EQ(sys.next_call_index(0, os::Sysno::Write), idx + 1);
}

TEST(SyscallLayerInjection, CallIndicesArePerThreadPerSyscall) {
  os::SyscallLayer sys;
  EXPECT_EQ(sys.next_call_index(0, os::Sysno::Write), 1u);
  EXPECT_EQ(sys.next_call_index(0, os::Sysno::Write), 2u);
  EXPECT_EQ(sys.next_call_index(0, os::Sysno::Read), 1u);  // separate stream
  EXPECT_EQ(sys.next_call_index(1, os::Sysno::Write), 1u); // separate thread
  EXPECT_EQ(sys.next_call_index(0, os::Sysno::Write), 3u);
}

// ------------------------------------- golden-vs-injected differential --

constexpr std::uint64_t kFoldMul = 6364136223846793005ull;
constexpr std::uint64_t kFoldAdd = 1442695040888963407ull;

std::uint64_t fold(std::uint64_t h, std::uint64_t v) noexcept {
  return (h ^ v) * kFoldMul + kFoldAdd;
}

/// Everything a run can observably produce, digested for equality checks
/// (the lockstep harness shape, plus the syscall-layer counters).
struct Trace {
  std::uint64_t commits = 0;
  std::uint64_t state_hash = 0;  // per-commit fold of PC + all registers
  std::uint32_t mem_crc = 0;     // final physical-memory image
  std::string output;
  sim::ExitReason reason = sim::ExitReason::AllThreadsExited;
  std::uint64_t ticks = 0;
  std::array<std::uint64_t, 9> cache{};  // hits/misses/writebacks × L1I,L1D,L2
  std::vector<std::string> fi_log;
  std::uint64_t syscalls = 0;
  std::uint64_t syscall_errors = 0;
  std::uint64_t injected = 0;
};

Trace run_with_plans(const assembler::Program& prog, sim::CpuKind cpu,
                     const std::vector<fi::SyscallFaultPlan>& plans) {
  sim::SimConfig cfg;
  cfg.cpu = cpu;
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread();
  for (const fi::SyscallFaultPlan& p : plans) s.syscall_injector().add_plan(p);

  Trace t;
  s.set_commit_observer([&t](const cpu::CommitEvent& ev, const cpu::ArchState& arch) {
    ++t.commits;
    std::uint64_t h = t.state_hash;
    h = fold(h, ev.pc);
    h = fold(h, arch.pc());
    for (unsigned r = 0; r < 31; ++r) h = fold(h, arch.ireg(r));
    for (unsigned r = 0; r < 31; ++r) h = fold(h, arch.freg_bits(r));
    t.state_hash = h;
  });

  const sim::RunResult rr = s.run(500'000'000ull);
  t.mem_crc = util::crc32(s.memsys().phys().raw());
  t.output = s.output(0);
  t.reason = rr.reason;
  t.ticks = rr.ticks;
  const mem::CacheStats* cs[3] = {&s.memsys().l1i_stats(), &s.memsys().l1d_stats(),
                                  &s.memsys().l2_stats()};
  for (std::size_t i = 0; i < 3; ++i) {
    t.cache[i * 3 + 0] = cs[i]->hits;
    t.cache[i * 3 + 1] = cs[i]->misses;
    t.cache[i * 3 + 2] = cs[i]->writebacks;
  }
  t.fi_log = s.fault_manager().injection_log();
  t.syscalls = s.syscalls().total_calls();
  t.syscall_errors = s.syscalls().total_errors();
  t.injected = s.syscalls().injected_calls();
  return t;
}

/// Bit-identity across everything, ticks and cache counters included.
void expect_identical(const Trace& a, const Trace& b, const std::string& label) {
  EXPECT_EQ(a.commits, b.commits) << label;
  EXPECT_EQ(a.state_hash, b.state_hash) << label << ": commit digest diverged";
  EXPECT_EQ(a.mem_crc, b.mem_crc) << label << ": memory image diverged";
  EXPECT_EQ(a.output, b.output) << label << ": guest output diverged";
  EXPECT_EQ(a.reason, b.reason) << label;
  EXPECT_EQ(a.ticks, b.ticks) << label << ": tick count diverged";
  EXPECT_EQ(a.cache, b.cache) << label << ": cache counters diverged";
  EXPECT_EQ(a.fi_log, b.fi_log) << label << ": FI log diverged";
  EXPECT_EQ(a.syscalls, b.syscalls) << label;
  EXPECT_EQ(a.syscall_errors, b.syscall_errors) << label;
}

constexpr sim::CpuKind kModels[] = {sim::CpuKind::AtomicSimple, sim::CpuKind::TimingSimple,
                                    sim::CpuKind::Pipelined};

// Probability-0 plans of every behavior family: armed but never firing, the
// run must be bit-identical to golden on every CPU model — the FI layer's
// observe-without-perturb contract at the syscall boundary.
TEST(SyscallGoldenDifferential, ProbabilityZeroPlansAreBitIdenticalToGolden) {
  const char* const kNeverFire[] = {
      "write p:0@0x1 errno:EIO",
      "write p:0@0x2 latency:2000",
      "write p:0@0x3 partial:0.5",
      "read p:0@0x4 corrupt:2@0xbeef",
      "* p:0@0x5 errno:ENOSYS",
  };
  const apps::App app = apps::build_app("logwriter");
  for (const sim::CpuKind cpu : kModels) {
    const Trace golden = run_with_plans(app.program, cpu, {});
    ASSERT_EQ(golden.reason, sim::ExitReason::AllThreadsExited)
        << sim::cpu_kind_name(cpu);
    ASSERT_GT(golden.syscalls, 0u) << "logwriter must exercise the syscall ABI";
    for (const char* line : kNeverFire) {
      const Trace t =
          run_with_plans(app.program, cpu, {fi::parse_syscall_plan(line)});
      expect_identical(t, golden,
                       std::string(sim::cpu_kind_name(cpu)) + " / " + line);
      EXPECT_EQ(t.injected, 0u) << line << ": a p:0 plan fired";
    }
  }
}

// A firing latency: plan changes the tick count and nothing else — commits,
// memory, output, FI log and the syscall error trace all stay golden.
TEST(SyscallGoldenDifferential, LatencyPlansChangeTicksOnly) {
  const apps::App app = apps::build_app("logwriter");
  const std::vector<fi::SyscallFaultPlan> plans = {
      fi::parse_syscall_plan("write@idx:3 latency:2000")};
  for (const sim::CpuKind cpu : kModels) {
    const Trace golden = run_with_plans(app.program, cpu, {});
    const Trace t = run_with_plans(app.program, cpu, plans);
    const std::string label = sim::cpu_kind_name(cpu);
    EXPECT_EQ(t.commits, golden.commits) << label;
    EXPECT_EQ(t.state_hash, golden.state_hash) << label << ": commit digest diverged";
    EXPECT_EQ(t.mem_crc, golden.mem_crc) << label << ": memory image diverged";
    EXPECT_EQ(t.output, golden.output) << label << ": guest output diverged";
    EXPECT_EQ(t.reason, golden.reason) << label;
    EXPECT_EQ(t.fi_log, golden.fi_log) << label << ": FI log diverged";
    EXPECT_EQ(t.syscalls, golden.syscalls) << label;
    EXPECT_EQ(t.syscall_errors, golden.syscall_errors) << label;
    EXPECT_EQ(t.injected, 1u) << label << ": the latency plan must fire once";
    EXPECT_GT(t.ticks, golden.ticks) << label << ": latency must cost ticks";
  }
}

// A forced one-shot errno on the retrying writer is absorbed by its bounded
// retry loop: output identical to golden, classified masked-by-handler.
TEST(SyscallGoldenDifferential, ForcedErrnoIsMaskedByTheRetryHandler) {
  const apps::App app = apps::build_app("logwriter");
  const std::vector<fi::SyscallFaultPlan> plans = {
      fi::parse_syscall_plan("write@idx:3 errno:EIO")};
  for (const sim::CpuKind cpu : kModels) {
    sim::SimConfig cfg;
    cfg.cpu = cpu;
    sim::Simulation s(cfg, app.program);
    s.spawn_main_thread();
    for (const fi::SyscallFaultPlan& p : plans) s.syscall_injector().add_plan(p);
    const sim::RunResult rr = s.run(500'000'000ull);
    const std::string label = sim::cpu_kind_name(cpu);
    ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited) << label;
    EXPECT_EQ(s.scheduler().thread(0).exit_code, 0u) << label;
    EXPECT_EQ(s.syscalls().injected_calls(), 1u) << label;
    const auto c = campaign::classify_syscalls(s.syscalls().full_trace(), false);
    EXPECT_EQ(c.outcome, campaign::SyscallOutcome::MaskedByHandler) << label;
    EXPECT_FALSE(c.unrealistic) << label;
  }
}

}  // namespace
