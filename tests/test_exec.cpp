// Execution-engine semantics tests: every ALU operation, branch condition,
// conversion, memory width, and trap path of exec.cpp, directly against the
// pure execute()/do_mem()/writeback() phases.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "cpu/exec.hpp"
#include "isa/disasm.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::cpu;
using namespace gemfi::isa;

std::uint64_t run_op(Opcode op, unsigned func, std::uint64_t a, std::uint64_t b,
                     std::uint64_t old_dst = 0) {
  const Decoded d = decode(encode_operate(op, func, 1, 2, 3));
  Operands ops{a, b, old_dst};
  const ExecOut out = execute(d, ops, 0x2000);
  EXPECT_FALSE(out.trap.pending());
  EXPECT_TRUE(out.writes_dst);
  return out.value;
}

double run_fop(unsigned func, double a, double b) {
  const Decoded d = decode(encode_fp(Opcode::FLTI, func, 1, 2, 3));
  Operands ops{std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b), 0};
  const ExecOut out = execute(d, ops, 0x2000);
  return std::bit_cast<double>(out.value);
}

TEST(IntAlu, ArithmeticSemantics) {
  EXPECT_EQ(run_op(Opcode::INTA, 0x20, 3, 4), 7u);                       // addq
  EXPECT_EQ(run_op(Opcode::INTA, 0x29, 3, 4), std::uint64_t(-1));        // subq
  EXPECT_EQ(run_op(Opcode::INTA, 0x22, 3, 4), 16u);                      // s4addq
  EXPECT_EQ(run_op(Opcode::INTA, 0x32, 3, 4), 28u);                      // s8addq
  // addl: 32-bit wrap with sign extension.
  EXPECT_EQ(run_op(Opcode::INTA, 0x00, 0x7fffffff, 1),
            std::uint64_t(std::int64_t(std::int32_t(0x80000000))));
  EXPECT_EQ(run_op(Opcode::INTA, 0x09, 0, 1), std::uint64_t(-1));        // subl
}

TEST(IntAlu, Comparisons) {
  EXPECT_EQ(run_op(Opcode::INTA, 0x2D, 5, 5), 1u);                        // cmpeq
  EXPECT_EQ(run_op(Opcode::INTA, 0x2D, 5, 6), 0u);
  EXPECT_EQ(run_op(Opcode::INTA, 0x4D, std::uint64_t(-1), 0), 1u);        // cmplt signed
  EXPECT_EQ(run_op(Opcode::INTA, 0x1D, std::uint64_t(-1), 0), 0u);        // cmpult unsigned
  EXPECT_EQ(run_op(Opcode::INTA, 0x6D, 7, 7), 1u);                        // cmple
  EXPECT_EQ(run_op(Opcode::INTA, 0x3D, 8, 7), 0u);                        // cmpule
}

TEST(IntAlu, LogicAndConditionalMoves) {
  EXPECT_EQ(run_op(Opcode::INTL, 0x00, 0xf0f0, 0xff00), 0xf000u);         // and
  EXPECT_EQ(run_op(Opcode::INTL, 0x08, 0xf0f0, 0xff00), 0x00f0u);         // bic
  EXPECT_EQ(run_op(Opcode::INTL, 0x20, 0xf0f0, 0x0f0f), 0xffffu);         // bis
  EXPECT_EQ(run_op(Opcode::INTL, 0x40, 0xff, 0x0f), 0xf0u);               // xor
  EXPECT_EQ(run_op(Opcode::INTL, 0x28, 0, 0), ~0ull);                     // ornot
  EXPECT_EQ(run_op(Opcode::INTL, 0x48, 5, 5), ~0ull);                     // eqv
  // cmoveq: dst = b if a == 0 else old.
  EXPECT_EQ(run_op(Opcode::INTL, 0x24, 0, 42, 7), 42u);
  EXPECT_EQ(run_op(Opcode::INTL, 0x24, 1, 42, 7), 7u);
  EXPECT_EQ(run_op(Opcode::INTL, 0x26, 1, 42, 7), 42u);                   // cmovne
  EXPECT_EQ(run_op(Opcode::INTL, 0x44, std::uint64_t(-2), 42, 7), 42u);   // cmovlt
  EXPECT_EQ(run_op(Opcode::INTL, 0x46, 2, 42, 7), 42u);                   // cmovge
  EXPECT_EQ(run_op(Opcode::INTL, 0x64, 0, 42, 7), 42u);                   // cmovle
  EXPECT_EQ(run_op(Opcode::INTL, 0x66, 0, 42, 7), 7u);                    // cmovgt
  EXPECT_EQ(run_op(Opcode::INTL, 0x14, 3, 42, 7), 42u);                   // cmovlbs
  EXPECT_EQ(run_op(Opcode::INTL, 0x16, 3, 42, 7), 7u);                    // cmovlbc
}

TEST(IntAlu, ShiftsUseLowSixBits) {
  EXPECT_EQ(run_op(Opcode::INTS, 0x39, 1, 8), 256u);                      // sll
  EXPECT_EQ(run_op(Opcode::INTS, 0x39, 1, 64), 1u);                       // shift & 63
  EXPECT_EQ(run_op(Opcode::INTS, 0x34, 0x8000000000000000ull, 63), 1u);   // srl
  EXPECT_EQ(run_op(Opcode::INTS, 0x3C, 0x8000000000000000ull, 63), ~0ull);  // sra
}

TEST(IntAlu, MultiplyAndDivide) {
  EXPECT_EQ(run_op(Opcode::INTM, 0x20, 7, 6), 42u);                       // mulq
  EXPECT_EQ(run_op(Opcode::INTM, 0x00, 0x10000, 0x10000), 0u);            // mull wraps 32
  // umulh: high half of 2^32 * 2^32 = 2^64 -> 1.
  EXPECT_EQ(run_op(Opcode::INTM, 0x30, 1ull << 32, 1ull << 32), 1u);
  EXPECT_EQ(run_op(Opcode::INTM, 0x40, std::uint64_t(-7), 2), std::uint64_t(-3));  // divq
  EXPECT_EQ(run_op(Opcode::INTM, 0x41, std::uint64_t(-7), 2), std::uint64_t(-1));  // remq
  // INT64_MIN / -1 wraps without trapping.
  EXPECT_EQ(run_op(Opcode::INTM, 0x40, std::uint64_t(INT64_MIN), std::uint64_t(-1)),
            std::uint64_t(INT64_MIN));
  EXPECT_EQ(run_op(Opcode::INTM, 0x41, std::uint64_t(INT64_MIN), std::uint64_t(-1)), 0u);
}

TEST(IntAlu, DivideByZeroTraps) {
  const Decoded d = decode(encode_operate(Opcode::INTM, 0x40, 1, 2, 3));
  const ExecOut out = execute(d, {5, 0, 0}, 0x2000);
  EXPECT_EQ(out.trap.kind, TrapKind::Arithmetic);
}

TEST(FpAlu, ArithmeticAndCompares) {
  EXPECT_DOUBLE_EQ(run_fop(0x0A0, 1.5, 2.25), 3.75);
  EXPECT_DOUBLE_EQ(run_fop(0x0A1, 1.5, 2.25), -0.75);
  EXPECT_DOUBLE_EQ(run_fop(0x0A2, 1.5, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(run_fop(0x0A3, 1.0, 4.0), 0.25);
  EXPECT_DOUBLE_EQ(run_fop(0x0A5, 2.0, 2.0), 2.0);   // cmpteq true -> 2.0
  EXPECT_DOUBLE_EQ(run_fop(0x0A5, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(run_fop(0x0A6, 1.0, 2.0), 2.0);   // cmptlt
  EXPECT_DOUBLE_EQ(run_fop(0x0A7, 2.0, 2.0), 2.0);   // cmptle
  const double nan = std::nan("");
  EXPECT_DOUBLE_EQ(run_fop(0x0A4, nan, 1.0), 2.0);   // cmptun on NaN
  EXPECT_DOUBLE_EQ(run_fop(0x0A4, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(run_fop(0x0A5, nan, nan), 0.0);   // NaN == NaN is false
}

TEST(FpAlu, SqrtAndConversions) {
  EXPECT_DOUBLE_EQ(run_fop(0x0AB, 0.0, 16.0), 4.0);  // sqrtt uses Fb
  EXPECT_TRUE(std::isnan(run_fop(0x0AB, 0.0, -1.0)));

  // cvttq: trunc toward zero, result is an int64 bit pattern.
  const Decoded cvt = decode(encode_fp(Opcode::FLTI, 0x0AF, 31, 2, 3));
  ExecOut out = execute(cvt, {0, std::bit_cast<std::uint64_t>(-2.7), 0}, 0);
  EXPECT_EQ(std::int64_t(out.value), -2);
  // Out-of-range and NaN produce a defined value (INT64_MIN), never UB.
  out = execute(cvt, {0, std::bit_cast<std::uint64_t>(1e300), 0}, 0);
  EXPECT_EQ(std::int64_t(out.value), INT64_MIN);
  out = execute(cvt, {0, std::bit_cast<std::uint64_t>(std::nan("")), 0}, 0);
  EXPECT_EQ(std::int64_t(out.value), INT64_MIN);

  // cvtqt: int64 bits -> double.
  const Decoded cq = decode(encode_fp(Opcode::FLTI, 0x0BE, 31, 2, 3));
  out = execute(cq, {0, std::uint64_t(-5), 0}, 0);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.value), -5.0);
}

TEST(FpAlu, CopySignFamily) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  const Decoded cpys = decode(encode_fp(Opcode::FLTL, 0x020, 1, 2, 3));
  ExecOut out = execute(cpys, {bits(-1.0), bits(3.5), 0}, 0);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.value), -3.5);
  const Decoded cpysn = decode(encode_fp(Opcode::FLTL, 0x021, 1, 2, 3));
  out = execute(cpysn, {bits(-1.0), bits(3.5), 0}, 0);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.value), 3.5);
  const Decoded fcmoveq = decode(encode_fp(Opcode::FLTL, 0x02A, 1, 2, 3));
  out = execute(fcmoveq, {bits(0.0), bits(9.0), bits(7.0)}, 0);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.value), 9.0);
  out = execute(fcmoveq, {bits(1.0), bits(9.0), bits(7.0)}, 0);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.value), 7.0);
}

TEST(Control, BranchConditionsAndTargets) {
  struct Case {
    Opcode op;
    std::uint64_t s1;
    bool taken;
  };
  const Case cases[] = {
      {Opcode::BEQ, 0, true},        {Opcode::BEQ, 1, false},
      {Opcode::BNE, 1, true},        {Opcode::BLT, std::uint64_t(-1), true},
      {Opcode::BLT, 1, false},       {Opcode::BLE, 0, true},
      {Opcode::BGT, 1, true},        {Opcode::BGE, 0, true},
      {Opcode::BLBS, 3, true},       {Opcode::BLBC, 2, true},
      {Opcode::FBEQ, std::bit_cast<std::uint64_t>(0.0), true},
      {Opcode::FBEQ, std::bit_cast<std::uint64_t>(-0.0), true},
      {Opcode::FBNE, std::bit_cast<std::uint64_t>(1.0), true},
      {Opcode::FBLT, std::bit_cast<std::uint64_t>(-2.0), true},
      {Opcode::FBGE, std::bit_cast<std::uint64_t>(2.0), true},
      {Opcode::FBLE, std::bit_cast<std::uint64_t>(std::nan("")), false},
  };
  for (const Case& c : cases) {
    const Decoded d = decode(encode_branch(c.op, 1, 10));
    const ExecOut out = execute(d, {c.s1, 0, 0}, 0x2000);
    EXPECT_EQ(out.branch_taken, c.taken) << mnemonic(d) << " s1=" << c.s1;
    EXPECT_EQ(out.next_pc, c.taken ? 0x2000 + 4 + 40 : 0x2004u);
  }
}

TEST(Control, UnconditionalAndJumps) {
  const Decoded bsr = decode(encode_branch(Opcode::BSR, 26, -4));
  ExecOut out = execute(bsr, {0, 0, 0}, 0x2000);
  EXPECT_TRUE(out.branch_taken);
  EXPECT_EQ(out.next_pc, 0x2000u + 4 - 16);
  EXPECT_EQ(out.value, 0x2004u);  // link
  EXPECT_TRUE(out.writes_dst);

  const Decoded jmp = decode(encode_jump(JumpKind::JMP, 26, 5));
  out = execute(jmp, {0x30007, 0, 0}, 0x2000);
  EXPECT_EQ(out.next_pc, 0x30004u);  // low bits cleared
  EXPECT_EQ(out.value, 0x2004u);
}

TEST(Memory, WidthsSignExtensionAndFloatConversion) {
  mem::MemSystem ms;
  // LDL sign-extends.
  ASSERT_EQ(ms.write(0x4000, 4, 0xfffffff6u), mem::AccessError::None);
  Decoded ld = decode(encode_mem(Opcode::LDL, 1, 2, 0));
  ExecOut out = execute(ld, {0x4000, 0, 0}, 0);
  ASSERT_FALSE(do_mem(ld, out, ms).pending());
  EXPECT_EQ(std::int64_t(out.value), -10);

  // STL stores the low 32 bits.
  Decoded st = decode(encode_mem(Opcode::STL, 1, 2, 8));
  out = execute(st, {0x4000, 0x1122334455667788ull, 0}, 0);
  ASSERT_FALSE(do_mem(st, out, ms).pending());
  std::uint64_t v = 0;
  ASSERT_EQ(ms.read(0x4008, 4, v), mem::AccessError::None);
  EXPECT_EQ(v, 0x55667788u);

  // LDS converts binary32 to binary64 register format.
  const float f = 2.5f;
  ASSERT_EQ(ms.write(0x4010, 4, std::bit_cast<std::uint32_t>(f)), mem::AccessError::None);
  Decoded lds = decode(encode_mem(Opcode::LDS, 1, 2, 0));
  out = execute(lds, {0x4010, 0, 0}, 0);
  ASSERT_FALSE(do_mem(lds, out, ms).pending());
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.value), 2.5);

  // STS converts back down to binary32.
  Decoded sts = decode(encode_mem(Opcode::STS, 1, 2, 4));
  out = execute(sts, {0x4010, std::bit_cast<std::uint64_t>(1.75), 0}, 0);
  ASSERT_FALSE(do_mem(sts, out, ms).pending());
  ASSERT_EQ(ms.read(0x4014, 4, v), mem::AccessError::None);
  EXPECT_FLOAT_EQ(std::bit_cast<float>(std::uint32_t(v)), 1.75f);
}

TEST(Memory, TrapsSurfaceThroughDoMem) {
  mem::MemSystem ms;
  Decoded ld = decode(encode_mem(Opcode::LDQ, 1, 2, 0));
  ExecOut out = execute(ld, {1, 0, 0}, 0);  // misaligned AND in the null page
  const TrapInfo t = do_mem(ld, out, ms);
  EXPECT_EQ(t.kind, TrapKind::MemFault);
  EXPECT_EQ(t.mem_error, mem::AccessError::NullPage);

  out = execute(ld, {ms.phys().size(), 0, 0}, 0);
  EXPECT_EQ(do_mem(ld, out, ms).mem_error, mem::AccessError::OutOfBounds);

  out = execute(ld, {0x4001, 0, 0}, 0);
  EXPECT_EQ(do_mem(ld, out, ms).mem_error, mem::AccessError::Misaligned);
}

TEST(Writeback, ZeroRegisterStaysZero) {
  ArchState st;
  const Decoded d = decode(encode_operate(Opcode::INTA, 0x20, 1, 2, 31));
  const ExecOut out = execute(d, {3, 4, 0}, 0x2000);
  writeback(d, out, st);
  EXPECT_EQ(st.ireg(31), 0u);
  EXPECT_EQ(st.pc(), 0x2004u);
}

TEST(Writeback, LdaAndLdah) {
  const Decoded lda = decode(encode_mem(Opcode::LDA, 1, 2, -16));
  ExecOut out = execute(lda, {0x100, 0, 0}, 0);
  EXPECT_EQ(out.value, 0xf0u);
  const Decoded ldah = decode(encode_mem(Opcode::LDAH, 1, 2, 2));
  out = execute(ldah, {0x100, 0, 0}, 0);
  EXPECT_EQ(out.value, 0x100u + 0x20000u);
}

TEST(Pseudo, HaltAndPseudoClassification) {
  const Decoded halt = decode(encode_pal(Opcode::CALL_PAL, 0));
  EXPECT_EQ(execute(halt, {}, 0).trap.kind, TrapKind::Halt);
  const Decoded fi = decode(encode_pal(Opcode::PSEUDO, 0));
  const ExecOut out = execute(fi, {}, 0x2000);
  EXPECT_TRUE(out.is_pseudo);
  EXPECT_EQ(out.next_pc, 0x2004u);
}

}  // namespace
