// Utility-layer tests: deterministic RNG, bit helpers, statistics (CIs and
// the Leveugle sample-size formula), and byte-stream serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "util/bits.hpp"
#include "util/bytesio.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace gemfi::util;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(43);
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowIsUnbiasedEnoughAndInRange) {
  Rng rng(7);
  unsigned counts[10] = {};
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (const unsigned c : counts) {
    EXPECT_GT(c, 9300u);
    EXPECT_LT(c, 10700u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeAndUniform) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Bits, ExtractInsertSignExtend) {
  EXPECT_EQ(bits(0xABCD, 4, 8), 0xBCu);
  EXPECT_EQ(insert_bits(0xFFFF, 4, 8, 0x12), 0xF12Fu);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0xFFFFF, 21), std::int64_t(0xFFFFF));
  EXPECT_EQ(sign_extend(0x1FFFFF, 21), -1);
  EXPECT_EQ(flip_bit(0, 63), 0x8000000000000000ull);
  EXPECT_EQ(flip_bit(1, 64), 1u);  // out-of-range flips are no-ops
  EXPECT_TRUE(get_bit(8, 3));
  EXPECT_FALSE(get_bit(8, 2));
}

TEST(Stats, SummaryAndConfidence) {
  const double xs[] = {2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  const double hw = ci_half_width(s, 0.95);
  EXPECT_NEAR(hw, 2.3645 * 2.138 / std::sqrt(8.0), 0.02);

  EXPECT_EQ(summarize({}).count, 0u);
  EXPECT_EQ(ci_half_width(summarize({}), 0.95), 0.0);
}

TEST(Stats, CriticalValues) {
  EXPECT_NEAR(normal_critical(0.95), 1.95996, 1e-3);
  EXPECT_NEAR(normal_critical(0.99), 2.57583, 1e-3);
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-2);
  EXPECT_NEAR(student_t_critical(10, 0.95), 2.228, 0.02);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.042, 0.01);
  EXPECT_NEAR(student_t_critical(1000, 0.95), 1.962, 0.005);
}

TEST(Stats, PercentOverhead) {
  EXPECT_NEAR(percent_overhead(103.3, 100.0), 3.3, 1e-9);
  EXPECT_NEAR(percent_overhead(99.9, 100.0), -0.1, 1e-9);
  EXPECT_DOUBLE_EQ(percent_overhead(1.0, 0.0), 0.0);
}

TEST(BytesIo, ScalarRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(3.14159);
  w.put_bool(true);
  w.put_string("gemfi");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_string(), "gemfi");
  EXPECT_TRUE(r.at_end());
}

TEST(Rle, ZeroAndConstantPagesCompressToNearNothing) {
  const std::vector<std::uint8_t> zeros(4096, 0);
  const auto enc = rle_compress(zeros);
  // 4096 bytes = 32 full repeat runs of 130 + remainder: a few dozen bytes.
  EXPECT_LT(enc.size(), 80u);
  std::vector<std::uint8_t> out(4096, 0xff);
  rle_decompress(enc, out);
  EXPECT_EQ(out, zeros);
}

TEST(Rle, RoundTripsArbitraryData) {
  Rng rng(2024);
  for (const std::size_t len : {std::size_t(0), std::size_t(1), std::size_t(130),
                                std::size_t(131), std::size_t(4096)}) {
    // Mix of runs and noise.
    std::vector<std::uint8_t> data(len);
    for (std::size_t i = 0; i < len; ++i)
      data[i] = (i / 7) % 3 == 0 ? 0xaa : std::uint8_t(rng.next());
    const auto enc = rle_compress(data);
    std::vector<std::uint8_t> out(len, 0x5c);
    rle_decompress(enc, out);
    EXPECT_EQ(out, data) << "len=" << len;
  }
}

TEST(Rle, IncompressibleDataGrowsByAtMostOneIn128) {
  Rng rng(7);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = std::uint8_t(rng.next());
  const auto enc = rle_compress(data);
  EXPECT_LE(enc.size(), data.size() + data.size() / 128 + 1);
}

TEST(Rle, MalformedStreamsThrowInsteadOfOverrunning) {
  const std::vector<std::uint8_t> page(256, 7);
  const auto enc = rle_compress(page);

  // Truncated stream.
  std::vector<std::uint8_t> out(256);
  auto cut = enc;
  cut.resize(cut.size() / 2);
  EXPECT_THROW(rle_decompress(cut, out), DeserializeError);

  // Decodes to more bytes than the output has room for.
  std::vector<std::uint8_t> small(8);
  EXPECT_THROW(rle_decompress(enc, small), DeserializeError);

  // Decodes to fewer bytes than expected.
  std::vector<std::uint8_t> big(1024);
  EXPECT_THROW(rle_decompress(enc, big), DeserializeError);

  // Literal run header promising bytes the stream does not contain.
  const std::vector<std::uint8_t> lit_trunc = {0x7f, 1, 2, 3};
  EXPECT_THROW(rle_decompress(lit_trunc, out), DeserializeError);

  // Repeat run header with no value byte.
  const std::vector<std::uint8_t> rep_trunc = {0x80};
  EXPECT_THROW(rle_decompress(rep_trunc, out), DeserializeError);
}

TEST(BytesIo, GetSpanConsumesAndValidates) {
  ByteWriter w;
  w.put_u32(0xdeadbeef);
  w.put_u32(0x11223344);
  ByteReader r(w.bytes());
  const auto s = r.get_span(4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 0xef);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_THROW((void)r.get_span(5), DeserializeError);
  (void)r.get_span(4);
  EXPECT_TRUE(r.at_end());
}

TEST(BytesIo, TruncationThrows) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(w.bytes());
  (void)r.get_u16();
  (void)r.get_u16();
  EXPECT_THROW((void)r.get_u8(), DeserializeError);

  ByteWriter w2;
  w2.put_u64(1000);  // blob length way beyond the stream
  ByteReader r2(w2.bytes());
  EXPECT_THROW((void)r2.get_blob(), DeserializeError);
}

TEST(BytesIo, Crc32KnownVectors) {
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);  // standard CRC-32 check value
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(BytesIo, BlobRoundTrip) {
  ByteWriter w;
  std::vector<std::uint8_t> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = std::uint8_t(i * 7);
  w.put_blob(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_blob(), payload);
}

}  // namespace
