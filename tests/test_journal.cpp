// Unit tests for the campaign-service building blocks that need no sockets:
// the crash-recovery journal (including truncated-tail repair), CampaignSpec
// JSON round-trips, the v2 control-plane codecs, and the pure fair-share
// scheduler functions.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "campaign/jsonl.hpp"
#include "campaign/service/control.hpp"
#include "campaign/service/journal.hpp"
#include "campaign/service/scheduler.hpp"
#include "campaign/service/spec.hpp"
#include "util/bytesio.hpp"

using namespace gemfi;
namespace service = gemfi::campaign::service;
namespace fs = std::filesystem;

namespace {

/// A fresh per-test journal directory under the system temp root.
fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("gemfi_journal_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

service::CampaignSpec sample_spec() {
  service::CampaignSpec s;
  s.tenant = "alice";
  s.name = "sweep-7";
  s.app_name = "pi";
  s.paper_scale = true;
  s.app_scale_seed = 0xabcdef;
  s.experiments = 250;
  s.campaign_seed = 9001;
  s.weight = 3;
  s.max_workers = 5;
  s.cpu = std::uint8_t(sim::CpuKind::AtomicSimple);
  s.watchdog_mult = 12;
  s.deadline_seconds = 1.5;
  s.max_retries = 4;
  s.retry_backoff = 3.0;
  s.predecode = false;
  s.fastpath = false;
  return s;
}

void append_raw(const fs::path& p, const std::string& bytes) {
  std::ofstream f(p, std::ios::app | std::ios::binary);
  f << bytes;
}

}  // namespace

// --- CampaignSpec ---

TEST(Spec, JsonRoundTripPreservesEveryField) {
  const service::CampaignSpec s = sample_spec();
  const service::CampaignSpec r =
      service::CampaignSpec::from_json(campaign::jsonl::parse(s.to_json()));
  EXPECT_EQ(r.tenant, s.tenant);
  EXPECT_EQ(r.name, s.name);
  EXPECT_EQ(r.app_name, s.app_name);
  EXPECT_EQ(r.paper_scale, s.paper_scale);
  EXPECT_EQ(r.app_scale_seed, s.app_scale_seed);
  EXPECT_EQ(r.experiments, s.experiments);
  EXPECT_EQ(r.campaign_seed, s.campaign_seed);
  EXPECT_EQ(r.weight, s.weight);
  EXPECT_EQ(r.max_workers, s.max_workers);
  EXPECT_EQ(r.cpu, s.cpu);
  EXPECT_EQ(r.watchdog_mult, s.watchdog_mult);
  EXPECT_EQ(r.deadline_seconds, s.deadline_seconds);
  EXPECT_EQ(r.max_retries, s.max_retries);
  EXPECT_EQ(r.retry_backoff, s.retry_backoff);
  EXPECT_EQ(r.predecode, s.predecode);
  EXPECT_EQ(r.fastpath, s.fastpath);
}

TEST(Spec, MissingOptionalFieldsKeepDefaults) {
  // An old journal line carrying only the required fields must still load.
  const auto v = campaign::jsonl::parse(
      R"({"tenant":"default","app":"pi","experiments":10,"seed":42})");
  const service::CampaignSpec r = service::CampaignSpec::from_json(v);
  EXPECT_EQ(r.app_name, "pi");
  EXPECT_EQ(r.experiments, 10u);
  EXPECT_EQ(r.tenant, "default");
  EXPECT_EQ(r.weight, 1u);
  EXPECT_EQ(r.cpu, std::uint8_t(sim::CpuKind::Pipelined));
}

TEST(Spec, ValidateRejectsUnusableSpecs) {
  auto reject = [](auto mutate) {
    service::CampaignSpec s = sample_spec();
    mutate(s);
    EXPECT_THROW(s.validate(), std::invalid_argument);
  };
  reject([](auto& s) { s.app_name.clear(); });
  reject([](auto& s) { s.experiments = 0; });
  reject([](auto& s) { s.tenant.clear(); });
  reject([](auto& s) { s.weight = 0; });
  reject([](auto& s) { s.cpu = 99; });
  EXPECT_NO_THROW(sample_spec().validate());
}

// --- Journal ---

TEST(Journal, RoundTripRecoversLiveCampaignsAndResults) {
  const fs::path dir = fresh_dir("roundtrip");
  {
    service::Journal j(dir.string());
    EXPECT_EQ(j.recovered().live.size(), 0u);
    EXPECT_EQ(j.recovered().next_campaign_id, 1u);

    j.record_submit(1, sample_spec());
    service::CampaignSpec other = sample_spec();
    other.tenant = "bob";
    other.campaign_seed = 7;
    j.record_submit(2, other);
    j.record_submit(3, sample_spec());

    j.append_result(1, R"({"index":0,"outcome":"Masked"})");
    j.append_result(1, R"({"index":5,"outcome":"SDC"})");
    j.append_result(2, R"({"index":3,"outcome":"Crash"})");
    j.record_terminal(3, service::CampaignState::Cancelled, "");
  }
  service::Journal j(dir.string());
  const service::RecoveredJournal& rec = j.recovered();
  ASSERT_EQ(rec.live.size(), 2u);  // campaign 3 reached a terminal state
  EXPECT_EQ(rec.next_campaign_id, 4u);
  EXPECT_EQ(rec.repaired_files, 0u);
  EXPECT_EQ(rec.skipped_lines, 0u);

  EXPECT_EQ(rec.live[0].id, 1u);
  EXPECT_EQ(rec.live[0].spec.tenant, "alice");
  EXPECT_EQ(rec.live[0].done_indices, (std::vector<std::uint64_t>{0, 5}));
  EXPECT_EQ(rec.live[1].id, 2u);
  EXPECT_EQ(rec.live[1].spec.tenant, "bob");
  EXPECT_EQ(rec.live[1].spec.campaign_seed, 7u);
  EXPECT_EQ(rec.live[1].done_indices, (std::vector<std::uint64_t>{3}));

  const auto lines = j.read_result_lines(1);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], R"({"index":0,"outcome":"Masked"})");
  fs::remove_all(dir);
}

TEST(Journal, TruncatedTailsAreRepairedOnRecovery) {
  const fs::path dir = fresh_dir("truncated");
  {
    service::Journal j(dir.string());
    j.record_submit(1, sample_spec());
    j.append_result(1, R"({"index":0,"outcome":"Masked"})");
    j.append_result(1, R"({"index":1,"outcome":"Masked"})");
  }
  // Simulate a SIGKILL mid-write: both files end in a partial line.
  append_raw(dir / "campaigns.jsonl", R"({"event":"submit","id":2,"app":"p)");
  append_raw(dir / "c1.results.jsonl", R"({"index":2,"outc)");

  service::Journal j(dir.string());
  EXPECT_GE(j.recovered().repaired_files, 1u);
  ASSERT_EQ(j.recovered().live.size(), 1u);
  EXPECT_EQ(j.recovered().live[0].done_indices,
            (std::vector<std::uint64_t>{0, 1}));  // the partial index 2 is gone
  EXPECT_EQ(j.recovered().next_campaign_id, 2u);  // partial submit dropped

  // The journal stays appendable after repair: the next write begins a
  // fresh, complete line.
  j.append_result(1, R"({"index":2,"outcome":"SDC"})");
  const auto lines = j.read_result_lines(1);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines.back(), R"({"index":2,"outcome":"SDC"})");
  fs::remove_all(dir);
}

TEST(Journal, DuplicateResultLinesAreCountedOnce) {
  const fs::path dir = fresh_dir("dups");
  {
    service::Journal j(dir.string());
    j.record_submit(1, sample_spec());
    j.append_result(1, R"({"index":4,"outcome":"Masked"})");
    j.append_result(1, R"({"index":4,"outcome":"Masked"})");
  }
  service::Journal j(dir.string());
  ASSERT_EQ(j.recovered().live.size(), 1u);
  EXPECT_EQ(j.recovered().live[0].done_indices, (std::vector<std::uint64_t>{4}));
  EXPECT_EQ(j.recovered().live[0].duplicate_result_lines, 1u);
  fs::remove_all(dir);
}

// --- control-plane codecs ---

TEST(Control, SubmitRoundTrip) {
  const service::CampaignSpec s = sample_spec();
  const service::CampaignSpec r = service::decode_submit(service::encode_submit(s));
  EXPECT_EQ(r.tenant, s.tenant);
  EXPECT_EQ(r.app_name, s.app_name);
  EXPECT_EQ(r.experiments, s.experiments);
  EXPECT_EQ(r.campaign_seed, s.campaign_seed);
  EXPECT_EQ(r.weight, s.weight);
  EXPECT_EQ(r.max_workers, s.max_workers);
  EXPECT_EQ(r.cpu, s.cpu);
  EXPECT_EQ(r.deadline_seconds, s.deadline_seconds);
  EXPECT_EQ(r.fastpath, s.fastpath);
}

TEST(Control, RepliesRoundTrip) {
  const auto sr = service::decode_submit_reply(
      service::encode_submit_reply({true, 42, ""}));
  EXPECT_TRUE(sr.ok);
  EXPECT_EQ(sr.id, 42u);

  const auto rej = service::decode_submit_reply(
      service::encode_submit_reply({false, 0, "unknown app 'nope'"}));
  EXPECT_FALSE(rej.ok);
  EXPECT_EQ(rej.error, "unknown app 'nope'");

  const auto cr = service::decode_cancel_reply(
      service::encode_cancel_reply({false, "campaign 9 already done"}));
  EXPECT_FALSE(cr.ok);
  EXPECT_EQ(cr.error, "campaign 9 already done");

  EXPECT_EQ(service::decode_status_request(
                service::encode_status_request({17})).id, 17u);
  EXPECT_EQ(service::decode_cancel(service::encode_cancel({3})).id, 3u);
  EXPECT_EQ(service::decode_stream_results(
                service::encode_stream_results({8})).id, 8u);
}

TEST(Control, StatusReplyRoundTrip) {
  service::CampaignStatus a;
  a.id = 1;
  a.tenant = "alice";
  a.name = "n1";
  a.app_name = "pi";
  a.state = service::CampaignState::Running;
  a.total = 100;
  a.completed = 40;
  a.inflight = 6;
  a.dispatched = 46;
  a.workers = 2;
  a.weight = 3;
  a.counts[0] = 30;
  a.counts[1] = 10;
  a.age_seconds = 2.5;
  service::CampaignStatus b;
  b.id = 2;
  b.state = service::CampaignState::Failed;
  b.error = "unknown app";

  const auto out =
      service::decode_status_reply(service::encode_status_reply({a, b}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].tenant, "alice");
  EXPECT_EQ(out[0].state, service::CampaignState::Running);
  EXPECT_EQ(out[0].completed, 40u);
  EXPECT_EQ(out[0].counts[0], 30u);
  EXPECT_EQ(out[0].workers, 2u);
  EXPECT_EQ(out[0].age_seconds, 2.5);
  EXPECT_EQ(out[1].state, service::CampaignState::Failed);
  EXPECT_EQ(out[1].error, "unknown app");
}

TEST(Control, StreamMessagesRoundTrip) {
  service::ResultLines rl;
  rl.id = 5;
  rl.lines = {R"({"index":0})", R"({"index":1})"};
  const auto out = service::decode_result_lines(service::encode_result_lines(rl));
  EXPECT_EQ(out.id, 5u);
  EXPECT_EQ(out.lines, rl.lines);

  const auto end = service::decode_stream_end(service::encode_stream_end(
      {5, service::CampaignState::Cancelled, ""}));
  EXPECT_EQ(end.id, 5u);
  EXPECT_EQ(end.state, service::CampaignState::Cancelled);
}

TEST(Control, DecodersRejectMalformedPayloads) {
  // Trailing bytes after a complete message.
  auto bytes = service::encode_cancel({3});
  bytes.push_back(0);
  EXPECT_THROW(service::decode_cancel(bytes), util::DeserializeError);

  // Truncation.
  auto sub = service::encode_submit(sample_spec());
  sub.resize(sub.size() - 1);
  EXPECT_THROW(service::decode_submit(sub), util::DeserializeError);

  // Out-of-range CampaignState discriminator.
  auto end = service::encode_stream_end({1, service::CampaignState::Done, ""});
  end[sizeof(std::uint64_t)] = 0xEE;  // state byte follows the u64 id
  EXPECT_THROW(service::decode_stream_end(end), util::DeserializeError);

  // A structurally valid submit carrying an unusable spec is a polite
  // rejection (invalid_argument), not a protocol error.
  service::CampaignSpec bad = sample_spec();
  bad.experiments = 0;
  EXPECT_THROW(service::decode_submit(service::encode_submit(bad)),
               std::invalid_argument);
}

// --- fair-share scheduler ---

TEST(Scheduler, FreeWorkerGoesToLeastLoadedTenant) {
  // alice already holds 2 workers, bob holds 0 — bob wins regardless of ids.
  const std::vector<service::SchedEntry> entries = {
      {1, "alice", 1, 0, /*pending=*/50, /*workers=*/2},
      {2, "bob", 1, 0, /*pending=*/50, /*workers=*/0},
  };
  EXPECT_EQ(service::pick_campaign_for_worker(entries), 2u);
}

TEST(Scheduler, WeightTiltsTheShare) {
  // alice weight 3 vs bob weight 1: with 3 vs 1 workers the scores tie
  // (3/3 == 1/1) and the tie breaks toward the campaign with fewer workers.
  const std::vector<service::SchedEntry> tied = {
      {1, "alice", 3, 0, 50, 3},
      {2, "bob", 1, 0, 50, 1},
  };
  EXPECT_EQ(service::pick_campaign_for_worker(tied), 2u);

  // With 2 vs 1 workers, alice's score 2/3 < bob's 1/1 — alice wins.
  const std::vector<service::SchedEntry> skewed = {
      {1, "alice", 3, 0, 50, 2},
      {2, "bob", 1, 0, 50, 1},
  };
  EXPECT_EQ(service::pick_campaign_for_worker(skewed), 1u);
}

TEST(Scheduler, QuotaAndPendingFilterEligibility) {
  const std::vector<service::SchedEntry> entries = {
      {1, "alice", 1, /*max_workers=*/2, /*pending=*/50, /*workers=*/2},  // at quota
      {2, "bob", 1, 0, /*pending=*/0, /*workers=*/0},                     // no work
      {3, "carol", 1, 0, /*pending=*/10, /*workers=*/1},
  };
  EXPECT_EQ(service::pick_campaign_for_worker(entries), 3u);

  // Nothing runnable: the worker stays parked.
  const std::vector<service::SchedEntry> none = {
      {1, "alice", 1, 2, 50, 2},
      {2, "bob", 1, 0, 0, 0},
  };
  EXPECT_EQ(service::pick_campaign_for_worker(none), 0u);
}

TEST(Scheduler, WithinTenantFewestWorkersThenLowestId) {
  const std::vector<service::SchedEntry> entries = {
      {4, "alice", 1, 0, 50, 1},
      {2, "alice", 1, 0, 50, 0},
      {3, "alice", 1, 0, 50, 0},
  };
  EXPECT_EQ(service::pick_campaign_for_worker(entries), 2u);
}

TEST(Scheduler, RebalanceDonorSparesTheRichest) {
  const std::vector<service::SchedEntry> entries = {
      {1, "alice", 1, 0, /*pending=*/50, /*workers=*/3},
      {2, "bob", 1, 0, /*pending=*/50, /*workers=*/1},   // cannot spare its only one
      {3, "carol", 1, 0, /*pending=*/50, /*workers=*/0},  // starved
  };
  EXPECT_TRUE(service::has_starved_campaign(entries));
  EXPECT_EQ(service::pick_rebalance_donor(entries), 1u);

  // A campaign with one worker but no pending work can donate it.
  const std::vector<service::SchedEntry> idle_donor = {
      {1, "alice", 1, 0, /*pending=*/0, /*workers=*/1},
      {2, "bob", 1, 0, /*pending=*/50, /*workers=*/0},
  };
  EXPECT_EQ(service::pick_rebalance_donor(idle_donor), 1u);

  // Nobody can spare a worker: the starved campaign waits.
  const std::vector<service::SchedEntry> stuck = {
      {1, "alice", 1, 0, 50, 1},
      {2, "bob", 1, 0, 50, 0},
  };
  EXPECT_EQ(service::pick_rebalance_donor(stuck), 0u);
  EXPECT_FALSE(service::has_starved_campaign({{1, "alice", 1, 0, 0, 0}}));
}
