// Campaign machinery tests: calibration, random fault generation,
// experiment execution with checkpoint fast-forwarding, outcome
// classification invariants, parallel local campaigns and the NoW runner.
#include <gtest/gtest.h>

#include "campaign/now_runner.hpp"
#include "campaign/runner.hpp"
#include "util/stats.hpp"

namespace {

using namespace gemfi;
using campaign::CampaignConfig;

CampaignConfig quick_config() {
  CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.switch_to_atomic_after_fault = true;
  cfg.use_checkpoint = true;
  cfg.workers = 4;
  return cfg;
}

TEST(Calibration, ProducesCheckpointAndCosts) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  EXPECT_FALSE(ca.checkpoint.empty());
  EXPECT_GT(ca.golden_ticks, 0u);
  EXPECT_GT(ca.kernel_fetches, 0u);
  EXPECT_GT(ca.ticks_to_checkpoint, 0u);
  EXPECT_LT(ca.ticks_to_checkpoint, ca.golden_ticks);
  EXPECT_EQ(ca.app.golden_kernel_insts, ca.kernel_fetches);
}

TEST(RandomFaults, RespectLocationAndRanges) {
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto f = campaign::random_fault_any(rng, 1000);
    EXPECT_GE(f.time, 1u);
    EXPECT_LE(f.time, 1000u);
    EXPECT_EQ(f.occurrences, 1u);
    EXPECT_EQ(f.behavior, fi::FaultBehavior::Flip);
    if (f.location == fi::FaultLocation::IntReg || f.location == fi::FaultLocation::FpReg)
      EXPECT_LT(f.reg, 32u);
    if (f.location == fi::FaultLocation::Fetch) EXPECT_LT(f.operand, 32u);
    if (f.location == fi::FaultLocation::Decode) EXPECT_LT(f.operand, 5u);
  }
}

TEST(Experiments, FaultFreeExperimentIsNonPropagated) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  // A fault far beyond the kernel never applies => NonPropagated.
  fi::Fault f;
  f.location = fi::FaultLocation::IntReg;
  f.reg = 9;
  f.time = ca.kernel_fetches * 1000;
  f.behavior = fi::FaultBehavior::Flip;
  f.operand = 5;
  const auto er = campaign::run_experiment(ca, f, quick_config());
  EXPECT_EQ(er.classification.outcome, apps::Outcome::NonPropagated);
  EXPECT_FALSE(er.fault_applied);
}

TEST(Experiments, CheckpointFastForwardSkipsInitTicks) {
  const auto ca = campaign::calibrate(apps::build_app("jacobi"), quick_config());
  fi::Fault f;
  f.location = fi::FaultLocation::FpReg;
  f.reg = 25;  // unused FP register: harmless
  f.time = 1;
  f.behavior = fi::FaultBehavior::Flip;
  f.operand = 0;

  CampaignConfig with = quick_config();
  CampaignConfig without = quick_config();
  without.use_checkpoint = false;
  const auto er_with = campaign::run_experiment(ca, f, with);
  const auto er_without = campaign::run_experiment(ca, f, without);
  EXPECT_EQ(er_with.classification.outcome, er_without.classification.outcome);
  // The checkpointed run simulates strictly fewer ticks (skips init).
  EXPECT_LT(er_with.sim_ticks, er_without.sim_ticks);
  EXPECT_NEAR(double(er_without.sim_ticks - er_with.sim_ticks),
              double(ca.ticks_to_checkpoint),
              0.05 * double(ca.ticks_to_checkpoint) + 1000.0);
}

TEST(Campaigns, SmallCampaignCoversOutcomeSpace) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  util::Rng rng(42);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 120; ++i)
    faults.push_back(campaign::random_fault_any(rng, ca.kernel_fetches));
  const auto report = campaign::run_campaign(ca, faults, quick_config());
  EXPECT_EQ(report.total(), faults.size());
  EXPECT_EQ(report.results.size(), faults.size());
  // A uniform SEU campaign over all locations must produce both benign and
  // malignant outcomes.
  EXPECT_GT(report.counts[std::size_t(apps::Outcome::Crashed)], 0u);
  EXPECT_GT(report.counts[std::size_t(apps::Outcome::NonPropagated)] +
                report.counts[std::size_t(apps::Outcome::StrictlyCorrect)],
            0u);
  double frac_sum = 0;
  for (unsigned o = 0; o < apps::kNumOutcomes; ++o)
    frac_sum += report.fraction(static_cast<apps::Outcome>(o));
  EXPECT_NEAR(frac_sum, 1.0, 1e-9);
}

TEST(Campaigns, DeterministicGivenSameFaults) {
  const auto ca = campaign::calibrate(apps::build_app("deblock"), quick_config());
  util::Rng rng(13);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 20; ++i)
    faults.push_back(campaign::random_fault_any(rng, ca.kernel_fetches));
  const auto r1 = campaign::run_campaign(ca, faults, quick_config());
  const auto r2 = campaign::run_campaign(ca, faults, quick_config());
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(r1.results[i].classification.outcome, r2.results[i].classification.outcome)
        << i;
}

TEST(Campaigns, NowRunnerMatchesLocalOutcomes) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  util::Rng rng(99);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 40; ++i)
    faults.push_back(campaign::random_fault_any(rng, ca.kernel_fetches));

  auto cfg = quick_config();
  cfg.workers = 1;
  const auto local = campaign::run_campaign(ca, faults, cfg);

  campaign::NowConfig now;
  now.workstations = 4;
  now.slots_per_workstation = 2;
  const auto dist = campaign::run_campaign_now(ca, faults, cfg, now);
  EXPECT_EQ(dist.campaign.total(), faults.size());
  EXPECT_GT(dist.modeled_makespan_seconds, 0.0);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(local.results[i].classification.outcome,
              dist.campaign.results[i].classification.outcome)
        << i;
}

TEST(SampleSize, LeveugleFormulaMatchesPaperScale) {
  // Infinite-population limit at 99%/1% is (t/2e)^2 ~ 16588.
  const std::size_t inf = util::required_sample_size(4'000'000'000ull, 0.01, 0.99);
  EXPECT_NEAR(double(inf), 16588.0, 120.0);
  // The paper reports 2501-2504 runs per campaign at 99%/1%; the formula
  // yields that sample size for a finite fault population of ~2.94k.
  const std::size_t n = util::required_sample_size(2944, 0.01, 0.99);
  EXPECT_GE(n, 2490u);
  EXPECT_LE(n, 2510u);
  // Monotonicity and clamping.
  EXPECT_LE(util::required_sample_size(1000, 0.01, 0.99), 1000u);
  EXPECT_LT(util::required_sample_size(10'000, 0.01, 0.99),
            util::required_sample_size(100'000, 0.01, 0.99));
  EXPECT_EQ(util::required_sample_size(0, 0.01, 0.99), 0u);
  // Relaxing the margin shrinks the sample (the quick-mode default).
  EXPECT_LT(util::required_sample_size(1'000'000, 0.05, 0.95),
            util::required_sample_size(1'000'000, 0.01, 0.99));
}

}  // namespace
