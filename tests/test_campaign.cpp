// Campaign machinery tests: calibration, random fault generation,
// experiment execution with checkpoint fast-forwarding, outcome
// classification invariants, parallel local campaigns, the NoW runner, and
// the telemetry/robustness layer (JSONL streaming, wall-clock deadlines,
// retry, per-experiment seeding, concurrent campaigns).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "assembler/assembler.hpp"
#include "campaign/jsonl.hpp"
#include "campaign/now_runner.hpp"
#include "campaign/observer.hpp"
#include "campaign/runner.hpp"
#include "util/stats.hpp"

namespace {

using namespace gemfi;
using campaign::CampaignConfig;

CampaignConfig quick_config() {
  CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.switch_to_atomic_after_fault = true;
  cfg.use_checkpoint = true;
  cfg.workers = 4;
  return cfg;
}

TEST(Calibration, ProducesCheckpointAndCosts) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  EXPECT_FALSE(ca.checkpoint.empty());
  EXPECT_GT(ca.golden_ticks, 0u);
  EXPECT_GT(ca.kernel_fetches, 0u);
  EXPECT_GT(ca.ticks_to_checkpoint, 0u);
  EXPECT_LT(ca.ticks_to_checkpoint, ca.golden_ticks);
  EXPECT_EQ(ca.app.golden_kernel_insts, ca.kernel_fetches);
}

TEST(RandomFaults, RespectLocationAndRanges) {
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto f = campaign::random_fault_any(rng, 1000);
    EXPECT_GE(f.time, 1u);
    EXPECT_LE(f.time, 1000u);
    EXPECT_EQ(f.occurrences, 1u);
    EXPECT_EQ(f.behavior, fi::FaultBehavior::Flip);
    if (f.location == fi::FaultLocation::IntReg || f.location == fi::FaultLocation::FpReg)
      EXPECT_LT(f.reg, 32u);
    if (f.location == fi::FaultLocation::Fetch) EXPECT_LT(f.operand, 32u);
    if (f.location == fi::FaultLocation::Decode) EXPECT_LT(f.operand, 5u);
  }
}

TEST(Experiments, FaultFreeExperimentIsNonPropagated) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  // A fault far beyond the kernel never applies => NonPropagated.
  fi::Fault f;
  f.location = fi::FaultLocation::IntReg;
  f.reg = 9;
  f.time = ca.kernel_fetches * 1000;
  f.behavior = fi::FaultBehavior::Flip;
  f.operand = 5;
  const auto er = campaign::run_experiment(ca, f, quick_config());
  EXPECT_EQ(er.classification.outcome, apps::Outcome::NonPropagated);
  EXPECT_FALSE(er.fault_applied);
}

TEST(Experiments, CheckpointFastForwardSkipsInitTicks) {
  const auto ca = campaign::calibrate(apps::build_app("jacobi"), quick_config());
  fi::Fault f;
  f.location = fi::FaultLocation::FpReg;
  f.reg = 25;  // unused FP register: harmless
  f.time = 1;
  f.behavior = fi::FaultBehavior::Flip;
  f.operand = 0;

  CampaignConfig with = quick_config();
  CampaignConfig without = quick_config();
  without.use_checkpoint = false;
  const auto er_with = campaign::run_experiment(ca, f, with);
  const auto er_without = campaign::run_experiment(ca, f, without);
  EXPECT_EQ(er_with.classification.outcome, er_without.classification.outcome);
  // The checkpointed run simulates strictly fewer ticks (skips init).
  EXPECT_LT(er_with.sim_ticks, er_without.sim_ticks);
  EXPECT_NEAR(double(er_without.sim_ticks - er_with.sim_ticks),
              double(ca.ticks_to_checkpoint),
              0.05 * double(ca.ticks_to_checkpoint) + 1000.0);
}

TEST(Campaigns, SmallCampaignCoversOutcomeSpace) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  util::Rng rng(42);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 120; ++i)
    faults.push_back(campaign::random_fault_any(rng, ca.kernel_fetches));
  const auto report = campaign::run_campaign(ca, faults, quick_config());
  EXPECT_EQ(report.total(), faults.size());
  EXPECT_EQ(report.results.size(), faults.size());
  // A uniform SEU campaign over all locations must produce both benign and
  // malignant outcomes.
  EXPECT_GT(report.counts[std::size_t(apps::Outcome::Crashed)], 0u);
  EXPECT_GT(report.counts[std::size_t(apps::Outcome::NonPropagated)] +
                report.counts[std::size_t(apps::Outcome::StrictlyCorrect)],
            0u);
  double frac_sum = 0;
  for (unsigned o = 0; o < apps::kNumOutcomes; ++o)
    frac_sum += report.fraction(static_cast<apps::Outcome>(o));
  EXPECT_NEAR(frac_sum, 1.0, 1e-9);
}

TEST(Campaigns, DeterministicGivenSameFaults) {
  const auto ca = campaign::calibrate(apps::build_app("deblock"), quick_config());
  util::Rng rng(13);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 20; ++i)
    faults.push_back(campaign::random_fault_any(rng, ca.kernel_fetches));
  const auto r1 = campaign::run_campaign(ca, faults, quick_config());
  const auto r2 = campaign::run_campaign(ca, faults, quick_config());
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(r1.results[i].classification.outcome, r2.results[i].classification.outcome)
        << i;
}

TEST(Campaigns, SharedBaselineMatchesFullRestoreOutcomes) {
  // The dirty-page fast restore must be invisible in campaign results: same
  // faults, same outcomes, experiment by experiment.
  const auto ca = campaign::calibrate(apps::build_app("jacobi"), quick_config());
  const auto faults = campaign::seeded_fault_set(21, 24, ca.kernel_fetches);

  auto shared_cfg = quick_config();
  shared_cfg.shared_baseline = true;
  auto full_cfg = quick_config();
  full_cfg.shared_baseline = false;

  const auto shared = campaign::run_campaign(ca, faults, shared_cfg);
  const auto full = campaign::run_campaign(ca, faults, full_cfg);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(shared.results[i].classification.outcome,
              full.results[i].classification.outcome)
        << i;
    EXPECT_EQ(shared.results[i].sim_ticks, full.results[i].sim_ticks) << i;
  }
}

TEST(Experiments, WorkerDirtyRestoreMatchesPerExperimentRestore) {
  const auto cfg = quick_config();
  const auto ca = campaign::calibrate(apps::build_app("jacobi"), cfg);
  const auto faults = campaign::seeded_fault_set(5, 6, ca.kernel_fetches);

  const auto image = chkpt::CheckpointImage::parse(ca.checkpoint);
  campaign::ExperimentWorker worker(ca, image, cfg);
  for (const auto& f : faults) {
    const auto from_worker = worker.run(f);
    const auto standalone = campaign::run_experiment(ca, f, cfg);
    EXPECT_EQ(from_worker.classification.outcome, standalone.classification.outcome);
    EXPECT_EQ(from_worker.sim_ticks, standalone.sim_ticks);
    EXPECT_EQ(from_worker.exit_reason, standalone.exit_reason);
    EXPECT_EQ(from_worker.ckpt_version, std::uint8_t(chkpt::CheckpointFormat::V2));
  }
}

TEST(Campaigns, NowRunnerMatchesLocalOutcomes) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  util::Rng rng(99);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 40; ++i)
    faults.push_back(campaign::random_fault_any(rng, ca.kernel_fetches));

  auto cfg = quick_config();
  cfg.workers = 1;
  const auto local = campaign::run_campaign(ca, faults, cfg);

  campaign::NowConfig now;
  now.workstations = 4;
  now.slots_per_workstation = 2;
  const auto dist = campaign::run_campaign_now(ca, faults, cfg, now);
  EXPECT_EQ(dist.campaign.total(), faults.size());
  EXPECT_GT(dist.modeled_makespan_seconds, 0.0);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(local.results[i].classification.outcome,
              dist.campaign.results[i].classification.outcome)
        << i;
}

// ---- telemetry / robustness layer ----

TEST(RandomFaults, NeverTargetTheZeroRegister) {
  // R31/F31 are architecturally zero: a flip there is a guaranteed no-op
  // that inflates the Masked fraction (paper Fig. 5 methodology excludes
  // it). Regression for the rng.below(32) draw.
  util::Rng rng(123);
  std::set<unsigned> seen;
  for (int i = 0; i < 4000; ++i) {
    const auto loc = (i % 2) ? fi::FaultLocation::IntReg : fi::FaultLocation::FpReg;
    const auto f = campaign::random_fault(rng, loc, 1000);
    ASSERT_NE(f.reg, 31u) << "fault targets the hardwired zero register";
    seen.insert(f.reg);
  }
  // All 31 writable registers remain reachable.
  EXPECT_EQ(seen.size(), 31u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(30));
}

TEST(Seeding, ExperimentSeedsRegenerateFaultsInIsolation) {
  const std::uint64_t campaign_seed = 0xfeedface;
  const auto set = campaign::seeded_fault_set(campaign_seed, 50, 1000);
  ASSERT_EQ(set.size(), 50u);
  // Any single experiment regenerates bit-for-bit from (seed, index) alone,
  // independent of draw order.
  for (const std::size_t i : {0u, 17u, 49u})
    EXPECT_EQ(campaign::seeded_fault_any(campaign_seed, i, 1000).to_line(),
              set[i].to_line());
  // Distinct indices and distinct campaign seeds give distinct streams.
  EXPECT_NE(campaign::experiment_seed(campaign_seed, 3),
            campaign::experiment_seed(campaign_seed, 4));
  EXPECT_NE(campaign::experiment_seed(campaign_seed, 3),
            campaign::experiment_seed(campaign_seed + 1, 3));
}

TEST(Jsonl, WriterAndParserRoundTrip) {
  campaign::jsonl::ObjectWriter w;
  w.field("s", "a\"b\\c\nd").field("n", std::uint64_t(18446744073709551615ull))
      .field("d", 0.25).field("b", true);
  const auto v = campaign::jsonl::parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(v.at("n").as_u64(), 18446744073709551615ull);  // no double rounding
  EXPECT_DOUBLE_EQ(v.at("d").as_double(), 0.25);
  EXPECT_TRUE(v.at("b").as_bool());
  EXPECT_THROW(campaign::jsonl::parse("{\"k\":}"), std::invalid_argument);
  EXPECT_THROW(campaign::jsonl::parse("{} trailing"), std::invalid_argument);
}

TEST(Jsonl, NonFiniteDoublesBecomeNull) {
  // "%.17g" renders nan/inf verbatim, which is not JSON; the writer must
  // emit null instead so one weird metric cannot corrupt a record.
  campaign::jsonl::ObjectWriter w;
  w.field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .field("fine", 1.5);
  const std::string line = w.str();
  EXPECT_EQ(line, "{\"nan\":null,\"inf\":null,\"ninf\":null,\"fine\":1.5}");
  const auto v = campaign::jsonl::parse(line);  // must parse as valid JSON
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("fine").as_double(), 1.5);
}

TEST(Observers, JsonlStreamsOneValidRecordPerExperiment) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  auto cfg = quick_config();
  cfg.campaign_seed = 2026;
  const std::size_t n = 24;
  const auto faults = campaign::seeded_fault_set(cfg.campaign_seed, n, ca.kernel_fetches);

  std::ostringstream out;
  campaign::JsonlSink sink(out);
  cfg.observer = &sink;
  const auto report = campaign::run_campaign(ca, faults, cfg);
  EXPECT_EQ(sink.lines_written(), n);

  // Every line parses as a standalone JSON object with the full schema.
  std::istringstream lines(out.str());
  std::string line;
  std::size_t parsed = 0;
  std::set<std::uint64_t> indices;
  while (std::getline(lines, line)) {
    const auto v = campaign::jsonl::parse(line);
    ASSERT_TRUE(v.is_object());
    for (const char* key : {"index", "worker", "seed", "fault", "location", "outcome",
                            "exit", "trap", "applied", "time_fraction", "sim_ticks",
                            "wall_seconds", "retries", "ckpt_format", "restore_pages",
                            "restore_bytes"})
      EXPECT_TRUE(v.has(key)) << "missing key " << key << " in: " << line;
    EXPECT_EQ(v.at("ckpt_format").as_string(), "v2");
    const std::uint64_t idx = v.at("index").as_u64();
    indices.insert(idx);
    ASSERT_LT(idx, n);
    EXPECT_EQ(v.at("seed").as_u64(), campaign::experiment_seed(cfg.campaign_seed, idx));
    // sim_ticks underflow canary: an underflowed uint64 would be ~1.8e19.
    EXPECT_LT(v.at("sim_ticks").as_u64(), std::uint64_t(1) << 62);
    // The record alone is enough to re-run the experiment deterministically,
    // both from its fault line and from (seed, index).
    const fi::Fault replayed = fi::parse_fault(v.at("fault").as_string());
    EXPECT_EQ(replayed.to_line(), faults[idx].to_line());
    EXPECT_EQ(campaign::seeded_fault_any(cfg.campaign_seed, idx, ca.kernel_fetches)
                  .to_line(),
              replayed.to_line());
    EXPECT_EQ(v.at("outcome").as_string(),
              apps::outcome_name(report.results[idx].classification.outcome));
    ++parsed;
  }
  EXPECT_EQ(parsed, n);
  EXPECT_EQ(indices.size(), n);  // exactly one record per experiment

  // Spot-replay one experiment from its record and compare the outcome.
  const auto er = campaign::run_experiment(ca, faults[7], quick_config());
  EXPECT_EQ(er.classification.outcome, report.results[7].classification.outcome);
}

TEST(Observers, ProgressPrinterCountsEveryExperiment) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  auto cfg = quick_config();
  const auto faults = campaign::seeded_fault_set(5, 10, ca.kernel_fetches);
  campaign::ProgressPrinter progress(stderr, /*min_interval_seconds=*/3600.0);
  campaign::TeeObserver tee;
  tee.add(&progress);
  cfg.observer = &tee;
  // Throttled to one line (the final one); mainly exercises the locking and
  // histogram paths under the 4-worker pool.
  const auto report = campaign::run_campaign(ca, faults, cfg);
  EXPECT_EQ(report.total(), faults.size());
}

TEST(Deadline, InfiniteLoopIsCutByTheWallClock) {
  using namespace gemfi::assembler;
  Assembler as;
  const Label entry = as.here("main");
  const Label loop = as.here("loop");
  as.addq_i(reg::t0, 1, reg::t0);
  as.br(loop);

  sim::SimConfig scfg;
  scfg.cpu = sim::CpuKind::Pipelined;
  sim::Simulation s(scfg, as.finalize(entry));
  s.spawn_main_thread();
  // No tick watchdog at all: only the wall-clock deadline can end this run.
  const auto rr = s.run(0, /*wall_deadline_seconds=*/0.05);
  EXPECT_EQ(rr.reason, sim::ExitReason::Deadline);
}

TEST(Deadline, HungExperimentsClassifyAsTimeoutWithoutStallingWorkers) {
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  auto cfg = quick_config();
  cfg.workers = 3;
  cfg.watchdog_mult = 1'000'000;     // tick watchdog far out of reach
  cfg.deadline_seconds = 1e-6;       // every experiment "hangs" past this
  cfg.max_retries = 1;               // one backed-off retry, then Timeout
  // Harmless faults (unused FP register, trigger at the end of the kernel):
  // the runs would terminate cleanly if the deadline didn't cut them first,
  // and they can never trap before the first wall-clock check.
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 12; ++i) {
    fi::Fault f;
    f.location = fi::FaultLocation::FpReg;
    f.reg = 25;
    f.time = ca.kernel_fetches;
    f.behavior = fi::FaultBehavior::Flip;
    f.operand = 0;
    faults.push_back(f);
  }
  const auto report = campaign::run_campaign(ca, faults, cfg);
  // The campaign completes: no worker stalls on a cut-off experiment.
  EXPECT_EQ(report.total(), faults.size());
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::Timeout)], faults.size());
  for (const auto& er : report.results) {
    EXPECT_EQ(er.exit_reason, sim::ExitReason::Deadline);
    EXPECT_EQ(er.retries, 1u);  // deadline exits consume the retry budget
  }
}

TEST(Retry, SimulatorInternalErrorIsBoundedAndReported) {
  const auto good = campaign::calibrate(apps::build_app("pi"), quick_config());
  campaign::CalibratedApp bad = good;
  // Damage the checkpoint: every restore now throws DeserializeError — a
  // substrate failure, not an effect of the injected fault.
  auto bytes = good.checkpoint.bytes();
  bytes[bytes.size() / 2] ^= 0xff;
  bad.checkpoint = chkpt::Checkpoint::from_bytes(std::move(bytes));

  auto cfg = quick_config();
  cfg.max_retries = 2;
  const auto f = campaign::seeded_fault_any(1, 0, good.kernel_fetches);
  EXPECT_THROW(campaign::run_experiment(bad, f, cfg), std::exception);
  const auto er = campaign::run_experiment_with_retry(bad, f, cfg);
  EXPECT_EQ(er.retries, 2u);
  EXPECT_FALSE(er.sim_error.empty());
  EXPECT_EQ(er.classification.outcome, apps::Outcome::Crashed);

  // A campaign over the damaged app still completes and reports every
  // experiment instead of tearing down the worker pool.
  const auto faults = campaign::seeded_fault_set(2, 6, good.kernel_fetches);
  const auto report = campaign::run_campaign(bad, faults, cfg);
  EXPECT_EQ(report.total(), faults.size());
}

TEST(Concurrency, ParallelNowCampaignsMatchTheirGoldenRuns) {
  // Two run_campaign_now() instances in flight simultaneously, distinct
  // seeds: each must match its own single-threaded golden run bit-for-bit.
  // Guards the per-campaign checkpoint-copy synchronization (the old
  // function-local static mutex was shared across campaigns) and the
  // order-independent per-experiment seeding.
  const auto ca = campaign::calibrate(apps::build_app("pi"), quick_config());
  auto cfg = quick_config();
  cfg.workers = 1;

  const auto faults_a = campaign::seeded_fault_set(101, 16, ca.kernel_fetches);
  const auto faults_b = campaign::seeded_fault_set(202, 16, ca.kernel_fetches);
  const auto golden_a = campaign::run_campaign(ca, faults_a, cfg);
  const auto golden_b = campaign::run_campaign(ca, faults_b, cfg);

  campaign::NowConfig now;
  now.workstations = 3;
  now.slots_per_workstation = 2;
  campaign::NowReport dist_a, dist_b;
  std::thread ta([&] { dist_a = campaign::run_campaign_now(ca, faults_a, cfg, now); });
  std::thread tb([&] { dist_b = campaign::run_campaign_now(ca, faults_b, cfg, now); });
  ta.join();
  tb.join();

  const auto expect_bit_identical = [](const campaign::CampaignReport& golden,
                                       const campaign::NowReport& dist) {
    ASSERT_EQ(dist.campaign.results.size(), golden.results.size());
    for (std::size_t i = 0; i < golden.results.size(); ++i) {
      const auto& g = golden.results[i];
      const auto& d = dist.campaign.results[i];
      EXPECT_EQ(d.classification.outcome, g.classification.outcome) << i;
      EXPECT_DOUBLE_EQ(d.classification.metric, g.classification.metric) << i;
      EXPECT_EQ(d.exit_reason, g.exit_reason) << i;
      EXPECT_EQ(d.fault_applied, g.fault_applied) << i;
      EXPECT_EQ(d.sim_ticks, g.sim_ticks) << i;
      EXPECT_EQ(d.fault.to_line(), g.fault.to_line()) << i;
    }
  };
  expect_bit_identical(golden_a, dist_a);
  expect_bit_identical(golden_b, dist_b);
}

TEST(SampleSize, LeveugleFormulaMatchesPaperScale) {
  // Infinite-population limit at 99%/1% is (t/2e)^2 ~ 16588.
  const std::size_t inf = util::required_sample_size(4'000'000'000ull, 0.01, 0.99);
  EXPECT_NEAR(double(inf), 16588.0, 120.0);
  // The paper reports 2501-2504 runs per campaign at 99%/1%; the formula
  // yields that sample size for a finite fault population of ~2.94k.
  const std::size_t n = util::required_sample_size(2944, 0.01, 0.99);
  EXPECT_GE(n, 2490u);
  EXPECT_LE(n, 2510u);
  // Monotonicity and clamping.
  EXPECT_LE(util::required_sample_size(1000, 0.01, 0.99), 1000u);
  EXPECT_LT(util::required_sample_size(10'000, 0.01, 0.99),
            util::required_sample_size(100'000, 0.01, 0.99));
  EXPECT_EQ(util::required_sample_size(0, 0.01, 0.99), 0u);
  // Relaxing the margin shrinks the sample (the quick-mode default).
  EXPECT_LT(util::required_sample_size(1'000'000, 0.05, 0.95),
            util::required_sample_size(1'000'000, 0.01, 0.99));
}

}  // namespace
