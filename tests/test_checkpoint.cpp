// Checkpoint/restore tests — the paper's Sec. III-D contract:
//   * determinism: run-to-end == capture at fi_read_init_all + restore + run;
//   * one checkpoint seeds many differently-configured experiments (FI state
//     is re-armed on restore);
//   * damage (truncation, bit corruption) is detected, never silently used;
//   * file round-trip works (the NoW "network share" path).
#include <gtest/gtest.h>

#include <cstdio>

#include "apps/app.hpp"
#include "chkpt/checkpoint.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;

struct CkptRun {
  chkpt::Checkpoint ckpt;
  std::string full_output;
  std::uint64_t full_ticks = 0;
};

CkptRun run_and_capture(const apps::App& app, sim::CpuKind cpu,
                        const chkpt::CaptureOptions& opts = {}) {
  sim::SimConfig cfg;
  cfg.cpu = cpu;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  CkptRun r;
  s.set_checkpoint_handler(
      [&](sim::Simulation& sim) { r.ckpt = chkpt::Checkpoint::capture(sim, opts); });
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  r.full_output = s.output(0);
  r.full_ticks = rr.ticks;
  return r;
}

class CkptModels : public ::testing::TestWithParam<sim::CpuKind> {};

TEST_P(CkptModels, RestoreThenRunReproducesFullRunExactly) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, GetParam());
  ASSERT_FALSE(base.ckpt.empty());

  sim::SimConfig cfg;
  cfg.cpu = GetParam();
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  base.ckpt.restore_into(s);
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), base.full_output);
  EXPECT_EQ(rr.ticks, base.full_ticks);  // tick-exact determinism
}

TEST_P(CkptModels, OneCheckpointSeedsDifferentExperiments) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, GetParam());

  std::string outputs[2];
  const char* faults[2] = {
      // Different faults from the same checkpoint.
      "RegisterInjectedFault Inst:50 Flip:62 Threadid:0 system.cpu0 occ:1 float 10",
      nullptr,  // fault-free restore
  };
  for (int i = 0; i < 2; ++i) {
    sim::SimConfig cfg;
    cfg.cpu = GetParam();
    sim::Simulation s(cfg, app.program);
    s.spawn_main_thread();
    base.ckpt.restore_into(s);
    if (faults[i] != nullptr)
      s.fault_manager().load_faults({fi::parse_fault(faults[i])});
    const auto rr = s.run(2'000'000'000ull);
    EXPECT_NE(rr.reason, sim::ExitReason::Watchdog);
    outputs[i] = s.output(0);
  }
  // The f10 fault flips the 2^-53 constant's exponent: PI diverges.
  EXPECT_NE(outputs[0], base.full_output);
  EXPECT_EQ(outputs[1], base.full_output);
}

TEST_P(CkptModels, V1FormatRoundTripsLikeV2) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base =
      run_and_capture(app, GetParam(), {chkpt::CheckpointFormat::V1});
  ASSERT_FALSE(base.ckpt.empty());
  EXPECT_EQ(base.ckpt.format(), chkpt::CheckpointFormat::V1);

  sim::SimConfig cfg;
  cfg.cpu = GetParam();
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  base.ckpt.restore_into(s);
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), base.full_output);
  EXPECT_EQ(rr.ticks, base.full_ticks);
}

INSTANTIATE_TEST_SUITE_P(Models, CkptModels,
                         ::testing::Values(sim::CpuKind::AtomicSimple,
                                           sim::CpuKind::TimingSimple,
                                           sim::CpuKind::Pipelined),
                         [](const auto& info) {
                           switch (info.param) {
                             case sim::CpuKind::AtomicSimple: return "Atomic";
                             case sim::CpuKind::TimingSimple: return "Timing";
                             default: return "Pipelined";
                           }
                         });

TEST(Checkpoint, CorruptionIsDetected) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple);

  // Flip one payload byte.
  auto bytes = base.ckpt.bytes();
  bytes[bytes.size() / 2] ^= 0x40;
  const auto damaged = chkpt::Checkpoint::from_bytes(std::move(bytes));
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  EXPECT_THROW(damaged.restore_into(s), util::DeserializeError);

  // Truncate.
  auto short_bytes = base.ckpt.bytes();
  short_bytes.resize(short_bytes.size() - 7);
  const auto truncated = chkpt::Checkpoint::from_bytes(std::move(short_bytes));
  EXPECT_THROW(truncated.restore_into(s), util::DeserializeError);

  // Bad magic.
  auto magic_bytes = base.ckpt.bytes();
  magic_bytes[0] ^= 0xff;
  const auto bad_magic = chkpt::Checkpoint::from_bytes(std::move(magic_bytes));
  EXPECT_THROW(bad_magic.restore_into(s), util::DeserializeError);
}

TEST(Checkpoint, FileRoundTrip) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple);

  const std::string path = ::testing::TempDir() + "/gemfi_ckpt_test.bin";
  base.ckpt.save_file(path);
  const auto loaded = chkpt::Checkpoint::load_file(path);
  EXPECT_EQ(loaded.bytes(), base.ckpt.bytes());
  std::remove(path.c_str());

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  loaded.restore_into(s);
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), base.full_output);
}

TEST(Checkpoint, V2ImageIsSparseAndMuchSmallerThanV1) {
  const apps::App app = apps::build_app("pi");
  const CkptRun v2 = run_and_capture(app, sim::CpuKind::AtomicSimple);
  const CkptRun v1 =
      run_and_capture(app, sim::CpuKind::AtomicSimple, {chkpt::CheckpointFormat::V1});

  EXPECT_EQ(v2.ckpt.format(), chkpt::CheckpointFormat::V2);
  const auto st = v2.ckpt.stats();
  EXPECT_EQ(st.format, chkpt::CheckpointFormat::V2);
  EXPECT_LT(st.pages_stored, st.pages_total);  // most of the 4 MiB is zero
  EXPECT_LT(st.encoded_bytes, st.raw_bytes);
  EXPECT_LT(v2.ckpt.size_bytes(), v1.ckpt.size_bytes() / 4);

  const auto v1st = v1.ckpt.stats();
  EXPECT_EQ(v1st.format, chkpt::CheckpointFormat::V1);
  EXPECT_EQ(v1st.pages_stored, v1st.pages_total);  // flat image
}

TEST(Checkpoint, UncompressedV2RoundTrips) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple,
                                       {chkpt::CheckpointFormat::V2, false});
  EXPECT_EQ(base.ckpt.stats().pages_rle, 0u);

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  base.ckpt.restore_into(s);
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), base.full_output);
}

TEST(Checkpoint, V1LoadsThroughCheckpointImage) {
  // Cross-load: a legacy v1 blob parsed by the v2 shared-baseline machinery
  // must restore exactly like Checkpoint::restore_into does.
  const apps::App app = apps::build_app("pi");
  const CkptRun base =
      run_and_capture(app, sim::CpuKind::AtomicSimple, {chkpt::CheckpointFormat::V1});

  const auto image = chkpt::CheckpointImage::parse(base.ckpt);
  EXPECT_EQ(image.stats().format, chkpt::CheckpointFormat::V1);

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  image.restore_into(s);
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), base.full_output);
  EXPECT_EQ(rr.ticks, base.full_ticks);
}

TEST(Checkpoint, DirtyPageRestoreIsEquivalentToFullRestore) {
  // Jacobi, not PI: the kernel must actually store to memory so the dirty
  // bitmap has pages to copy back (PI's kernel is register-only).
  const apps::App app = apps::build_app("jacobi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple);
  const auto image = chkpt::CheckpointImage::parse(base.ckpt);

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  image.restore_into(s);

  // Experiment 1: run with a fault injected mid-kernel (dirties state).
  s.fault_manager().load_faults({fi::parse_fault(
      "RegisterInjectedFault Inst:50 Flip:62 Threadid:0 system.cpu0 occ:1 float 10")});
  (void)s.run(2'000'000'000ull);

  // Experiment 2: dirty-page restore, then a fault-free run must reproduce
  // the golden output tick-exactly — proof the restore is bit-equivalent.
  // The restore re-arms FI state (the fi_read_init contract), so the next
  // experiment's fault list must be loaded afterwards — here, none.
  const std::uint64_t copied = image.restore_dirty_into(s);
  s.fault_manager().load_faults({});
  EXPECT_GT(copied, 0u);
  EXPECT_LT(copied, image.stats().pages_total);  // only dirtied pages move
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), base.full_output);
  EXPECT_EQ(rr.ticks, base.full_ticks);
}

TEST(Checkpoint, BitFlipsInEachV2SectionAreDetected) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple);
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();

  // Header (the mem_bytes size field): must fail on the header CRC instead
  // of attempting an absurd allocation.
  auto header_flip = base.ckpt.bytes();
  header_flip[16 + 7] ^= 0x40;  // top byte of mem_bytes
  EXPECT_THROW(
      chkpt::CheckpointImage::parse(chkpt::Checkpoint::from_bytes(std::move(header_flip))),
      util::DeserializeError);

  // Memory section (early in the blob).
  auto mem_flip = base.ckpt.bytes();
  mem_flip[64] ^= 0x01;
  EXPECT_THROW(chkpt::Checkpoint::from_bytes(std::move(mem_flip)).restore_into(s),
               util::DeserializeError);

  // Machine-state section (just before the trailing CRC).
  auto state_flip = base.ckpt.bytes();
  state_flip[state_flip.size() - 6] ^= 0x01;
  EXPECT_THROW(chkpt::Checkpoint::from_bytes(std::move(state_flip)).restore_into(s),
               util::DeserializeError);
}

TEST(Checkpoint, MalformedPageIndexIsRejectedNotOom) {
  // Hand-craft a v2 blob whose CRCs are all valid but whose single page
  // record points far outside the image: must throw, not write wild.
  util::ByteWriter records;
  records.put_u64(1);                  // one stored page
  records.put_u64(1ull << 40);         // absurd page index
  records.put_u8(0);                   // raw
  records.put_u32(4096);
  records.put_bytes(std::vector<std::uint8_t>(4096, 0xab));

  util::ByteWriter out;
  out.put_u32(0x47464943);
  out.put_u32(2);
  out.put_u32(4096);
  out.put_u32(0);
  out.put_u64(4ull * 1024 * 1024);     // mem_bytes
  out.put_u64(records.size());
  out.put_u32(util::crc32(out.bytes()));
  out.put_bytes(records.bytes());
  out.put_u32(util::crc32(records.bytes()));
  out.put_u64(0);                      // empty state section
  out.put_u32(util::crc32({}));

  EXPECT_THROW(chkpt::CheckpointImage::parse(chkpt::Checkpoint::from_bytes(out.take())),
               util::DeserializeError);
}

TEST(Checkpoint, WrongGeometryImageIsRejected) {
  const apps::App app = apps::build_app("pi");
  for (const auto fmt : {chkpt::CheckpointFormat::V1, chkpt::CheckpointFormat::V2}) {
    const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple, {fmt});
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::AtomicSimple;
    cfg.mem.phys_bytes = 2ull * 1024 * 1024;  // checkpoint was taken on 4 MiB
    sim::Simulation s(cfg, app.program);
    s.spawn_main_thread();
    EXPECT_THROW(base.ckpt.restore_into(s), util::DeserializeError);
    EXPECT_THROW(chkpt::CheckpointImage::parse(base.ckpt).restore_into(s),
                 util::DeserializeError);
  }
}

TEST(Checkpoint, TruncatedFileIsRejected) {
  const std::string path = ::testing::TempDir() + "/gemfi_ckpt_trunc.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("GFIC\x02\0\0\0stub", 1, 12, f);  // 12 bytes < 20-byte header
  std::fclose(f);
  EXPECT_THROW(chkpt::Checkpoint::load_file(path), util::DeserializeError);
  std::remove(path.c_str());
  EXPECT_THROW(chkpt::Checkpoint::load_file(path), std::runtime_error);  // missing
}

TEST(Checkpoint, RestoreResetsFaultInjectionState) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple);

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "RegisterInjectedFault Inst:5 Flip:1 Threadid:0 system.cpu0 occ:1 int 1")});
  base.ckpt.restore_into(s);
  // The paper: restore resets all internal FI information.
  EXPECT_TRUE(s.fault_manager().states().empty() ||
              !s.fault_manager().any_applied());
  EXPECT_EQ(s.fault_manager().enabled_thread_count(), 0u);
}

}  // namespace
