// Checkpoint/restore tests — the paper's Sec. III-D contract:
//   * determinism: run-to-end == capture at fi_read_init_all + restore + run;
//   * one checkpoint seeds many differently-configured experiments (FI state
//     is re-armed on restore);
//   * damage (truncation, bit corruption) is detected, never silently used;
//   * file round-trip works (the NoW "network share" path).
#include <gtest/gtest.h>

#include <cstdio>

#include "apps/app.hpp"
#include "chkpt/checkpoint.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;

struct CkptRun {
  chkpt::Checkpoint ckpt;
  std::string full_output;
  std::uint64_t full_ticks = 0;
};

CkptRun run_and_capture(const apps::App& app, sim::CpuKind cpu) {
  sim::SimConfig cfg;
  cfg.cpu = cpu;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  CkptRun r;
  s.set_checkpoint_handler(
      [&](sim::Simulation& sim) { r.ckpt = chkpt::Checkpoint::capture(sim); });
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  r.full_output = s.output(0);
  r.full_ticks = rr.ticks;
  return r;
}

class CkptModels : public ::testing::TestWithParam<sim::CpuKind> {};

TEST_P(CkptModels, RestoreThenRunReproducesFullRunExactly) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, GetParam());
  ASSERT_FALSE(base.ckpt.empty());

  sim::SimConfig cfg;
  cfg.cpu = GetParam();
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  base.ckpt.restore_into(s);
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), base.full_output);
  EXPECT_EQ(rr.ticks, base.full_ticks);  // tick-exact determinism
}

TEST_P(CkptModels, OneCheckpointSeedsDifferentExperiments) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, GetParam());

  std::string outputs[2];
  const char* faults[2] = {
      // Different faults from the same checkpoint.
      "RegisterInjectedFault Inst:50 Flip:62 Threadid:0 system.cpu0 occ:1 float 10",
      nullptr,  // fault-free restore
  };
  for (int i = 0; i < 2; ++i) {
    sim::SimConfig cfg;
    cfg.cpu = GetParam();
    sim::Simulation s(cfg, app.program);
    s.spawn_main_thread();
    base.ckpt.restore_into(s);
    if (faults[i] != nullptr)
      s.fault_manager().load_faults({fi::parse_fault(faults[i])});
    const auto rr = s.run(2'000'000'000ull);
    EXPECT_NE(rr.reason, sim::ExitReason::Watchdog);
    outputs[i] = s.output(0);
  }
  // The f10 fault flips the 2^-53 constant's exponent: PI diverges.
  EXPECT_NE(outputs[0], base.full_output);
  EXPECT_EQ(outputs[1], base.full_output);
}

INSTANTIATE_TEST_SUITE_P(Models, CkptModels,
                         ::testing::Values(sim::CpuKind::AtomicSimple,
                                           sim::CpuKind::Pipelined),
                         [](const auto& info) {
                           return info.param == sim::CpuKind::AtomicSimple ? "Atomic"
                                                                           : "Pipelined";
                         });

TEST(Checkpoint, CorruptionIsDetected) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple);

  // Flip one payload byte.
  auto bytes = base.ckpt.bytes();
  bytes[bytes.size() / 2] ^= 0x40;
  const auto damaged = chkpt::Checkpoint::from_bytes(std::move(bytes));
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  EXPECT_THROW(damaged.restore_into(s), util::DeserializeError);

  // Truncate.
  auto short_bytes = base.ckpt.bytes();
  short_bytes.resize(short_bytes.size() - 7);
  const auto truncated = chkpt::Checkpoint::from_bytes(std::move(short_bytes));
  EXPECT_THROW(truncated.restore_into(s), util::DeserializeError);

  // Bad magic.
  auto magic_bytes = base.ckpt.bytes();
  magic_bytes[0] ^= 0xff;
  const auto bad_magic = chkpt::Checkpoint::from_bytes(std::move(magic_bytes));
  EXPECT_THROW(bad_magic.restore_into(s), util::DeserializeError);
}

TEST(Checkpoint, FileRoundTrip) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple);

  const std::string path = ::testing::TempDir() + "/gemfi_ckpt_test.bin";
  base.ckpt.save_file(path);
  const auto loaded = chkpt::Checkpoint::load_file(path);
  EXPECT_EQ(loaded.bytes(), base.ckpt.bytes());
  std::remove(path.c_str());

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  loaded.restore_into(s);
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), base.full_output);
}

TEST(Checkpoint, RestoreResetsFaultInjectionState) {
  const apps::App app = apps::build_app("pi");
  const CkptRun base = run_and_capture(app, sim::CpuKind::AtomicSimple);

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "RegisterInjectedFault Inst:5 Flip:1 Threadid:0 system.cpu0 occ:1 int 1")});
  base.ckpt.restore_into(s);
  // The paper: restore resets all internal FI information.
  EXPECT_TRUE(s.fault_manager().states().empty() ||
              !s.fault_manager().any_applied());
  EXPECT_EQ(s.fault_manager().enabled_thread_count(), 0u);
}

}  // namespace
