// Macro-assembler tests: labels and fixups, data section layout, literal
// pool interning, constant materialization strategies, address loading,
// image layout invariants and loader behavior.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "isa/disasm.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

/// Assemble a fragment that computes a value into v0 and exits; return v0
/// by running it on the atomic model.
std::uint64_t run_fragment(const std::function<void(Assembler&)>& body) {
  Assembler as;
  const Label entry = as.here("main");
  body(as);
  as.mov(reg::v0, reg::a0);
  as.print_int();
  as.mov_i(0, reg::a0);
  as.exit_();
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  const auto rr = s.run(10'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  return std::stoull(s.output(0));
}

TEST(Li, MaterializationCoversAllRanges) {
  // 8-bit literal, 16-bit, 32-bit, and pool-backed 64-bit constants.
  for (const std::int64_t v :
       {std::int64_t(0), std::int64_t(255), std::int64_t(256), std::int64_t(-1),
        std::int64_t(-32768), std::int64_t(32767), std::int64_t(0x12345678),
        std::int64_t(-0x12345678), std::int64_t(0x7fffffff), std::int64_t(-2147483648ll),
        std::int64_t(0x123456789abcdef0ll), std::int64_t(-0x123456789abcdef0ll),
        INT64_MAX, INT64_MIN}) {
    const auto got = run_fragment([&](Assembler& as) { as.li(reg::v0, v); });
    EXPECT_EQ(std::int64_t(got), v);
  }
}

TEST(Li, SmallConstantsDoNotTouchThePool) {
  Assembler as;
  const Label entry = as.here("e");
  as.li(reg::t0, 100);
  as.li(reg::t1, 30000);
  as.li(reg::t2, 0x1234567);
  as.exit_();
  const Program p = as.finalize(entry);
  EXPECT_TRUE(p.pool.empty());
}

TEST(Li, PoolInternsDuplicates) {
  Assembler as;
  const Label entry = as.here("e");
  as.li_u(reg::t0, 0xdeadbeefcafebabeull);
  as.li_u(reg::t1, 0xdeadbeefcafebabeull);
  as.fli(1, 3.14159);
  as.fli(2, 3.14159);
  as.exit_();
  const Program p = as.finalize(entry);
  EXPECT_EQ(p.pool.size(), 2u);  // one integer + one double constant
}

TEST(Labels, BackwardAndForwardBranches) {
  const auto got = run_fragment([](Assembler& as) {
    const Label fwd = as.make_label("fwd");
    as.li(reg::v0, 1);
    as.br(fwd);
    as.li(reg::v0, 2);  // skipped
    as.bind(fwd);
    as.li(reg::t0, 3);
    const Label back = as.here("back");
    as.addq(reg::v0, reg::t0, reg::v0);
    as.subq_i(reg::t0, 1, reg::t0);
    as.bne(reg::t0, back);  // backward
  });
  EXPECT_EQ(got, 1u + 3 + 2 + 1);
}

TEST(Labels, ErrorsAreDiagnosed) {
  Assembler as;
  const Label entry = as.here("main");
  const Label never_bound = as.make_label("nb");
  as.br(never_bound);
  EXPECT_THROW((void)as.finalize(entry), std::logic_error);

  Assembler as2;
  const Label l = as2.here("x");
  EXPECT_THROW(as2.bind(l), std::logic_error);  // bound twice

  Assembler as3;
  EXPECT_THROW((void)as3.finalize(Label{}), std::logic_error);  // invalid entry
}

TEST(Data, AlignmentAndOffsets) {
  Assembler as;
  const std::uint8_t bytes[] = {1, 2, 3};
  const DataRef a = as.data_bytes(bytes, 1);
  const DataRef b = as.data_u64(0x1122334455667788ull);  // aligns to 8
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 8u);
  const DataRef c = as.data_zeros(4, 4);
  EXPECT_EQ(c.offset % 4, 0u);
}

TEST(Data, LaLoadsAbsoluteAddressAndMemoryHoldsData) {
  Assembler as;
  const DataRef cell = as.data_u64(0xfeedfacecafef00dull);
  const Label entry = as.here("main");
  as.la(reg::t0, cell);
  as.ldq(reg::v0, 0, reg::t0);
  as.mov(reg::v0, reg::a0);
  as.print_int();
  as.mov_i(0, reg::a0);
  as.exit_();
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  (void)s.run(1'000'000);
  EXPECT_EQ(std::stoull(s.output(0)), 0xfeedfacecafef00dull);
}

TEST(Data, NamedSymbolsResolve) {
  Assembler as;
  const DataRef cell = as.data_u64(std::uint64_t(7));
  as.name_data("the_cell", cell);
  const Label entry = as.here("main");
  as.exit_();
  const Program p = as.finalize(entry);
  EXPECT_EQ(p.symbol("the_cell"), p.data_base() + p.pool.size() * 8 + cell.offset);
  EXPECT_EQ(p.symbol("main"), p.entry);
  EXPECT_THROW((void)p.symbol("missing"), std::out_of_range);
}

TEST(Layout, RegionsAreOrderedAndAligned) {
  Assembler as;
  (void)as.data_zeros(1000);
  const Label entry = as.here("main");
  for (int i = 0; i < 100; ++i) as.addq_i(reg::t0, 1, reg::t0);
  as.exit_();
  const Program p = as.finalize(entry);
  EXPECT_LT(p.code_base, p.code_end());
  EXPECT_LE(p.code_end(), p.data_base());
  EXPECT_EQ(p.data_base() % 4096, 0u);
  EXPECT_EQ(p.heap_base() % 4096, 0u);
  EXPECT_LE(p.data_end(), p.heap_base());
}

TEST(Loader, CodeIsReadOnlyAfterLoad) {
  Assembler as;
  const Label entry = as.here("main");
  as.exit_();
  const Program p = as.finalize(entry);
  mem::MemSystem ms;
  p.load_into(ms);
  EXPECT_EQ(ms.code_base(), p.code_base);
  EXPECT_EQ(ms.code_end(), p.code_end());
  std::uint64_t word = 0;
  ASSERT_EQ(ms.read(p.entry, 4, word), mem::AccessError::None);
  EXPECT_EQ(ms.write(p.entry, 4, 0), mem::AccessError::ReadOnly);
}

TEST(Loader, RejectsOversizedImages) {
  Assembler as;
  (void)as.data_zeros(1 << 20);
  const Label entry = as.here("main");
  as.exit_();
  const Program p = as.finalize(entry);
  mem::MemSysConfig small;
  small.phys_bytes = 64 * 1024;
  mem::MemSystem ms(small);
  EXPECT_THROW(p.load_into(ms), std::runtime_error);
}

TEST(Emit, RangeChecks) {
  Assembler as;
  EXPECT_THROW(as.addq_i(1, 256, 2), std::invalid_argument);   // literal > 8 bits
  EXPECT_THROW(as.ldq(1, 40000, 2), std::invalid_argument);    // disp > 16 bits
  const Label entry = as.here("main");
  (void)entry;
}

TEST(Emit, PrintStrEmitsPerCharacter) {
  Assembler as;
  const Label entry = as.here("main");
  as.print_str("hi!");
  as.mov_i(0, reg::a0);
  as.exit_();
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  (void)s.run(1'000'000);
  EXPECT_EQ(s.output(0), "hi!");
}

}  // namespace
