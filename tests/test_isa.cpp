// ISA tests: Table I field layouts, exhaustive encode/decode round-trips
// (parameterized), validity rules, register-usage metadata, and the
// disassembler renderings the injection log depends on.
#include <gtest/gtest.h>

#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "util/rng.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::isa;

TEST(Fields, TableOneBoundaries) {
  // opcode[31:26] | Ra[25:21] | Rb[20:16] | disp[15:0]
  const Word w = encode_mem(Opcode::LDQ, 5, 30, -8);
  EXPECT_EQ(field_opcode(w), 0x29u);
  EXPECT_EQ(field_ra(w), 5u);
  EXPECT_EQ(field_rb(w), 30u);
  EXPECT_EQ(field_mem_disp(w), -8);

  const Word b = encode_branch(Opcode::BEQ, 9, -100);
  EXPECT_EQ(field_opcode(b), 0x39u);
  EXPECT_EQ(field_ra(b), 9u);
  EXPECT_EQ(field_branch_disp(b), -100);

  const Word p = encode_pal(Opcode::PSEUDO, 0x123456);
  EXPECT_EQ(field_opcode(p), 0x01u);
  EXPECT_EQ(field_palcode(p), 0x123456u);

  const Word o = encode_operate(Opcode::INTA, 0x20, 1, 2, 3);
  EXPECT_FALSE(field_is_literal(o));
  EXPECT_EQ(field_int_func(o), 0x20u);
  EXPECT_EQ(field_rc(o), 3u);

  const Word ol = encode_operate_lit(Opcode::INTA, 0x20, 1, 255, 3);
  EXPECT_TRUE(field_is_literal(ol));
  EXPECT_EQ(field_literal(ol), 255u);
}

struct OperateCase {
  Opcode op;
  unsigned func;
  const char* mnem;
};

class OperateRoundTrip : public ::testing::TestWithParam<OperateCase> {};

TEST_P(OperateRoundTrip, RegisterForm) {
  const auto& c = GetParam();
  const Word w = encode_operate(c.op, c.func, 7, 11, 13);
  const Decoded d = decode(w);
  ASSERT_TRUE(d.valid) << c.mnem;
  EXPECT_EQ(d.opcode, c.op);
  EXPECT_EQ(d.func, c.func);
  EXPECT_EQ(d.ra, 7);
  EXPECT_EQ(d.rb, 11);
  EXPECT_EQ(d.rc, 13);
  EXPECT_FALSE(d.is_literal);
  EXPECT_EQ(mnemonic(d), c.mnem);
  EXPECT_EQ(d.src1, 7);
  EXPECT_EQ(d.src2, 11);
  EXPECT_EQ(d.dst, 13);
}

TEST_P(OperateRoundTrip, LiteralForm) {
  const auto& c = GetParam();
  const Word w = encode_operate_lit(c.op, c.func, 7, 0xAB, 13);
  const Decoded d = decode(w);
  ASSERT_TRUE(d.valid) << c.mnem;
  EXPECT_TRUE(d.is_literal);
  EXPECT_EQ(d.literal, 0xAB);
  EXPECT_EQ(d.src2, 32) << "literal form reads no second register";
}

INSTANTIATE_TEST_SUITE_P(
    AllIntOps, OperateRoundTrip,
    ::testing::Values(
        OperateCase{Opcode::INTA, 0x00, "addl"}, OperateCase{Opcode::INTA, 0x20, "addq"},
        OperateCase{Opcode::INTA, 0x22, "s4addq"}, OperateCase{Opcode::INTA, 0x09, "subl"},
        OperateCase{Opcode::INTA, 0x32, "s8addq"}, OperateCase{Opcode::INTA, 0x29, "subq"},
        OperateCase{Opcode::INTA, 0x1D, "cmpult"}, OperateCase{Opcode::INTA, 0x2D, "cmpeq"},
        OperateCase{Opcode::INTA, 0x3D, "cmpule"}, OperateCase{Opcode::INTA, 0x4D, "cmplt"},
        OperateCase{Opcode::INTA, 0x6D, "cmple"}, OperateCase{Opcode::INTL, 0x00, "and"},
        OperateCase{Opcode::INTL, 0x08, "bic"}, OperateCase{Opcode::INTL, 0x20, "bis"},
        OperateCase{Opcode::INTL, 0x28, "ornot"}, OperateCase{Opcode::INTL, 0x40, "xor"},
        OperateCase{Opcode::INTL, 0x48, "eqv"}, OperateCase{Opcode::INTL, 0x24, "cmoveq"},
        OperateCase{Opcode::INTL, 0x26, "cmovne"}, OperateCase{Opcode::INTL, 0x44, "cmovlt"},
        OperateCase{Opcode::INTL, 0x46, "cmovge"}, OperateCase{Opcode::INTL, 0x64, "cmovle"},
        OperateCase{Opcode::INTL, 0x66, "cmovgt"}, OperateCase{Opcode::INTL, 0x14, "cmovlbs"},
        OperateCase{Opcode::INTL, 0x16, "cmovlbc"}, OperateCase{Opcode::INTS, 0x34, "srl"},
        OperateCase{Opcode::INTS, 0x39, "sll"}, OperateCase{Opcode::INTS, 0x3C, "sra"},
        OperateCase{Opcode::INTM, 0x00, "mull"}, OperateCase{Opcode::INTM, 0x20, "mulq"},
        OperateCase{Opcode::INTM, 0x30, "umulh"}, OperateCase{Opcode::INTM, 0x40, "divq"},
        OperateCase{Opcode::INTM, 0x41, "remq"}),
    [](const auto& info) { return std::string(info.param.mnem); });

struct FpCase {
  unsigned func;
  const char* mnem;
};

class FpRoundTrip : public ::testing::TestWithParam<FpCase> {};

TEST_P(FpRoundTrip, FltiEncodings) {
  const auto& c = GetParam();
  const Word w = encode_fp(Opcode::FLTI, c.func, 4, 5, 6);
  const Decoded d = decode(w);
  ASSERT_TRUE(d.valid);
  EXPECT_EQ(d.func, c.func);
  EXPECT_EQ(mnemonic(d), c.mnem);
  EXPECT_TRUE(d.src1_fp);
  EXPECT_TRUE(d.src2_fp);
  EXPECT_TRUE(d.dst_fp);
}

INSTANTIATE_TEST_SUITE_P(
    AllFpOps, FpRoundTrip,
    ::testing::Values(FpCase{0x0A0, "addt"}, FpCase{0x0A1, "subt"}, FpCase{0x0A2, "mult"},
                      FpCase{0x0A3, "divt"}, FpCase{0x0A4, "cmptun"},
                      FpCase{0x0A5, "cmpteq"}, FpCase{0x0A6, "cmptlt"},
                      FpCase{0x0A7, "cmptle"}, FpCase{0x0AB, "sqrtt"},
                      FpCase{0x0AF, "cvttq"}, FpCase{0x0BE, "cvtqt"}),
    [](const auto& info) { return std::string(info.param.mnem); });

TEST(Validity, UndefinedFunctionCodesAreIllegal) {
  EXPECT_FALSE(decode(encode_operate(Opcode::INTA, 0x7F, 0, 0, 0)).valid);
  EXPECT_FALSE(decode(encode_operate(Opcode::INTS, 0x00, 0, 0, 0)).valid);
  EXPECT_FALSE(decode(encode_fp(Opcode::FLTI, 0x7FF, 0, 0, 0)).valid);
  EXPECT_FALSE(decode(encode_fp(Opcode::ITOF, 0x000, 0, 0, 0)).valid);
  EXPECT_FALSE(decode(encode_pal(Opcode::CALL_PAL, 0x3FFFFFF)).valid);
}

TEST(Validity, UnassignedOpcodesAreIllegal) {
  for (const unsigned op : {0x02u, 0x03u, 0x04u, 0x07u, 0x0Au, 0x0Fu, 0x15u, 0x18u,
                            0x19u, 0x1Bu, 0x1Du, 0x1Fu, 0x20u, 0x21u, 0x24u, 0x25u,
                            0x2Au, 0x2Bu, 0x2Eu, 0x2Fu}) {
    const Word w = Word(op) << 26;
    EXPECT_FALSE(decode(w).valid) << "opcode 0x" << std::hex << op;
  }
}

TEST(Validity, ZeroRegisterNormalization) {
  // R31 sources/destinations are normalized to "none" (index 32).
  const Decoded d = decode(encode_operate(Opcode::INTA, 0x20, 31, 31, 31));
  EXPECT_EQ(d.src1, 32);
  EXPECT_EQ(d.src2, 32);
  EXPECT_EQ(d.dst, 32);
}

TEST(RegisterUsage, LoadsStoresAndBranches) {
  const Decoded ld = decode(encode_mem(Opcode::LDQ, 1, 2, 16));
  EXPECT_EQ(ld.dst, 1);
  EXPECT_EQ(ld.src1, 2);
  EXPECT_TRUE(ld.is_load());
  EXPECT_EQ(ld.mem_bytes(), 8u);

  const Decoded st = decode(encode_mem(Opcode::STL, 1, 2, 16));
  EXPECT_EQ(st.src2, 1);  // value
  EXPECT_EQ(st.src1, 2);  // base
  EXPECT_TRUE(st.is_store());
  EXPECT_EQ(st.mem_bytes(), 4u);

  const Decoded fst = decode(encode_mem(Opcode::STT, 7, 2, 0));
  EXPECT_TRUE(fst.src2_fp);
  EXPECT_FALSE(fst.src1_fp);

  const Decoded br = decode(encode_branch(Opcode::FBLT, 3, 10));
  EXPECT_TRUE(br.src1_fp);
  EXPECT_EQ(br.src1, 3);
  EXPECT_TRUE(br.is_control());

  const Decoded jsr = decode(encode_jump(JumpKind::JSR, 26, 27));
  EXPECT_EQ(jsr.dst, 26);
  EXPECT_EQ(jsr.src1, 27);
  EXPECT_EQ(mnemonic(jsr), "jsr");
  EXPECT_EQ(mnemonic(decode(encode_jump(JumpKind::RET, 31, 26))), "ret");
}

TEST(Disasm, RendersOperandsAndTargets) {
  EXPECT_EQ(disassemble(decode(encode_operate(Opcode::INTA, 0x20, 1, 2, 3))),
            "addq t0, t1, t2");
  EXPECT_EQ(disassemble(decode(encode_operate_lit(Opcode::INTA, 0x20, 1, 8, 3))),
            "addq t0, 0x8, t2");
  EXPECT_EQ(disassemble(decode(encode_mem(Opcode::LDQ, 16, 30, 16))), "ldq a0, 16(sp)");
  // Branch target: pc + 4 + 4*disp = 0x1000 + 4 + 40 = 0x102c.
  EXPECT_EQ(disassemble(decode(encode_branch(Opcode::BEQ, 0, 10)), 0x1000),
            "beq v0, 0x102c");
  // 0xffffffff = BGT zero with disp -1: target = 0 + 4 + 4*(-1) = 0.
  EXPECT_EQ(disassemble(decode(0xffffffffu), 0), "bgt zero, 0x0");
}

TEST(Disasm, FuzzNeverCrashesAndInvalidIsMarked) {
  util::Rng rng(0xd15a);
  unsigned valid = 0;
  for (int i = 0; i < 200000; ++i) {
    const Word w = Word(rng.next());
    const Decoded d = decode(w);
    const std::string text = disassemble(d, 0x2000);
    EXPECT_FALSE(text.empty());
    if (d.valid) {
      ++valid;
      EXPECT_EQ(text.find("<illegal"), std::string::npos);
    }
  }
  // A meaningful share of random words decode (branch/memory formats are
  // dense), but far from all of them.
  EXPECT_GT(valid, 100000u / 2);
  EXPECT_LT(valid, 190000u);
}

}  // namespace
