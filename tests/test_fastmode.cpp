// Lockstep differential tests for the golden-path fast mode: the threaded-
// code superblock tier above the atomic interpreter (`cfg.fastmode`). The
// tier may only change host wall time — never a single simulated observable.
// Every test runs the same workload with the tier on and off and demands
// bit-identical results: exit reason, tick and commit counts, guest output,
// the physical-memory image, the injection log, and the FI window's fetch
// accounting (which fast mode maintains in bulk per batch).
//
// The hard cases get their own fuzz sweeps: self-modifying code rewriting a
// word inside an already-stitched trace (page-version invalidation),
// checkpoint restores over a warm trace cache (full and dirty-page restore),
// armed faults of every location (the tier must provably disengage while a
// fault is live — equality under a permanent stuck-at is only possible if
// every in-window fetch went through the interpreter), preemption quanta
// across all three CPU models, and the campaign/replay JSONL byte-identity
// contract.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "assembler/assembler.hpp"
#include "campaign/observer.hpp"
#include "campaign/runner.hpp"
#include "chkpt/checkpoint.hpp"
#include "fi/fault.hpp"
#include "sim/simulation.hpp"
#include "util/bytesio.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

/// Everything a fault-armed observer-free run can observably produce. Unlike
/// the predecode lockstep suite there is no commit observer here — attaching
/// one disengages the trace tier by design — so the digest is the final
/// architectural outcome plus the tick-embedded injection log, which together
/// pin every intermediate commit that could have drifted.
struct GoldenRun {
  sim::ExitReason reason = sim::ExitReason::AllThreadsExited;
  cpu::TrapKind trap = cpu::TrapKind::None;
  std::uint64_t ticks = 0;
  std::uint64_t committed = 0;
  std::uint32_t mem_crc = 0;
  std::uint64_t window_fetches = 0;  // FI-window accounting (bulk-updated)
  std::string output;
  std::vector<std::string> fi_log;
  isa::SuperblockStats sb{};
};

struct GoldenSpec {
  sim::CpuKind cpu = sim::CpuKind::AtomicSimple;
  bool fastmode = true;
  bool fi_enabled = true;
  std::uint64_t watchdog = 500'000'000ull;
  std::vector<fi::Fault> faults;
  sim::Simulation::CheckpointHandler on_checkpoint;  // may be null
};

GoldenRun run_golden(const assembler::Program& prog, const GoldenSpec& spec) {
  sim::SimConfig cfg;
  cfg.cpu = spec.cpu;
  cfg.fi_enabled = spec.fi_enabled;
  cfg.fastmode = spec.fastmode;
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread();
  if (spec.on_checkpoint) s.set_checkpoint_handler(spec.on_checkpoint);
  if (!spec.faults.empty()) s.fault_manager().load_faults(spec.faults);

  const sim::RunResult rr = s.run(spec.watchdog);
  GoldenRun g;
  g.reason = rr.reason;
  g.trap = rr.trap.kind;
  g.ticks = rr.ticks;
  g.committed = rr.committed;
  g.mem_crc = util::crc32(s.memsys().phys().raw());
  g.window_fetches = s.fault_manager().last_deactivated_fetched();
  g.output = s.output(0);
  g.fi_log = s.fault_manager().injection_log();
  g.sb = s.memsys().superblock_stats();
  return g;
}

/// The full fast-mode contract: every simulated observable identical.
void expect_identical(const GoldenRun& fast, const GoldenRun& slow, const std::string& label) {
  EXPECT_EQ(fast.reason, slow.reason) << label;
  EXPECT_EQ(fast.trap, slow.trap) << label;
  EXPECT_EQ(fast.ticks, slow.ticks) << label << ": tick count diverged";
  EXPECT_EQ(fast.committed, slow.committed) << label << ": commit count diverged";
  EXPECT_EQ(fast.mem_crc, slow.mem_crc) << label << ": memory image diverged";
  EXPECT_EQ(fast.window_fetches, slow.window_fetches)
      << label << ": FI-window fetch accounting diverged";
  EXPECT_EQ(fast.output, slow.output) << label;
  EXPECT_EQ(fast.fi_log, slow.fi_log) << label << ": injection log diverged";
}

constexpr sim::CpuKind kModels[] = {sim::CpuKind::AtomicSimple, sim::CpuKind::TimingSimple,
                                    sim::CpuKind::Pipelined};

// ---------------- golden runs: all apps, fi armed, traces engaged ----------

class FastmodeApps : public ::testing::TestWithParam<std::string> {};

TEST_P(FastmodeApps, GoldenRunBitIdenticalAndTierEngaged) {
  // fi_enabled with no faults loaded is the golden-campaign configuration:
  // the fault manager is quiescent, so fast mode stitches traces while the
  // baseline (`--no-fastmode`) walks the per-tick hook loop — the exact A/B
  // that bench_golden_rate measures. Everything simulated must match,
  // including the per-window fetch counts fast mode accumulates in bulk.
  const apps::App app = apps::build_app(GetParam());
  const GoldenRun fast = run_golden(app.program, {.fastmode = true});
  const GoldenRun slow = run_golden(app.program, {.fastmode = false});
  ASSERT_EQ(fast.reason, sim::ExitReason::AllThreadsExited) << app.name;
  expect_identical(fast, slow, app.name);
  // The speedup claim is only honest if the tier actually ran the kernel.
  EXPECT_GT(fast.sb.exec_insts, 0u) << app.name << ": trace tier never engaged";
  EXPECT_GT(fast.sb.hits, 0u) << app.name;
  EXPECT_EQ(slow.sb.exec_insts, 0u) << app.name << ": --no-fastmode still ran traces";
  EXPECT_EQ(slow.sb.builds, 0u) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, FastmodeApps, ::testing::ValuesIn(apps::app_names()),
                         [](const auto& info) { return info.param; });

// ---------------- armed faults: the tier must disengage, not approximate ---

TEST(FastmodeFaults, EveryFaultLocationBitIdentical) {
  // Faults of every location, including the sticky Tick Imm occ:3 (re-applies
  // on consecutive ticks) and a permanent stuck-at (live for the whole FI
  // window). For the permanent case, equality is itself the proof that fast
  // mode was bypassed in-window: a stuck-at must be re-applied at every
  // fetch, which a stitched trace cannot do.
  struct Case {
    const char* app;
    const char* line;
  };
  const Case cases[] = {
      {"pi", "FetchStageInjectedFault Inst:50 Flip:3 Threadid:0 system.cpu0 occ:1"},
      {"pi", "FetchStageInjectedFault Inst:400 Flip:26 Threadid:0 system.cpu0 occ:2"},
      {"pi", "ExecutionStageInjectedFault Inst:300 Xor:0xff Threadid:0 system.cpu0 occ:1"},
      {"jacobi", "LoadStoreInjectedFault Inst:120 Flip:7 Threadid:0 system.cpu0 occ:1"},
      {"pi", "RegisterInjectedFault Inst:200 Flip:21 Threadid:0 system.cpu0 occ:1 int 9"},
      {"pi", "RegisterInjectedFault Tick:1234 Imm:0xfeed Threadid:0 system.cpu0 occ:3 int 5"},
      {"pi", "PCInjectedFault Inst:400 Flip:4 Threadid:0 system.cpu0 occ:1"},
      {"pi", "RegisterInjectedFault Inst:100 StuckAt1:0x200000 Threadid:0 system.cpu0 "
             "occ:perm int 1"},
  };
  for (const auto& [app_name, line] : cases) {
    const apps::App app = apps::build_app(app_name);
    const fi::Fault f = fi::parse_fault(line);
    GoldenSpec spec;
    spec.watchdog = 8'000'000ull;  // fault-induced loops must not dominate
    spec.faults = {f};
    const GoldenRun fast = run_golden(app.program, spec);
    spec.fastmode = false;
    const GoldenRun slow = run_golden(app.program, spec);
    expect_identical(fast, slow, line);
    EXPECT_FALSE(fast.fi_log.empty()) << line << ": fault never applied";
  }
}

// ---------------- preemption quanta across all three models ----------------

struct PlainRun {
  sim::RunResult rr;
  std::vector<std::string> outputs;
  std::uint32_t mem_crc = 0;
  std::uint64_t exec_insts = 0;  // instructions retired inside traces
};

PlainRun run_plain(const assembler::Program& prog, sim::CpuKind cpu, bool fastmode,
                   std::uint64_t quantum, const std::vector<std::uint64_t>& thread_args) {
  sim::SimConfig cfg;
  cfg.cpu = cpu;
  cfg.fi_enabled = false;
  cfg.fastmode = fastmode;
  cfg.quantum_insts = quantum;
  sim::Simulation s(cfg, prog);
  for (const std::uint64_t arg : thread_args) s.spawn_thread(prog.entry, {arg});
  PlainRun pr;
  pr.rr = s.run(500'000'000ull);
  for (std::size_t t = 0; t < thread_args.size(); ++t) pr.outputs.push_back(s.output(t));
  pr.mem_crc = util::crc32(s.memsys().phys().raw());
  pr.exec_insts = s.memsys().superblock_stats().exec_insts;
  return pr;
}

/// Three threads hammer one shared counter under a preemption quantum; the
/// printed values are a direct function of where every context switch landed,
/// so a trace batch that overruns its scheduling bound by even one commit
/// diverges architecturally. Same program as the predecode lockstep suite.
assembler::Program shared_counter_program() {
  Assembler as;
  const DataRef cell = as.data_u64(std::uint64_t(0));
  const Label entry = as.here("main");
  as.la(reg::s2, cell);
  as.li(reg::s0, 40);
  const Label loop = as.here("loop");
  as.ldq(reg::t0, 0, reg::s2);
  as.addq(reg::t0, reg::a0, reg::t0);
  as.stq(reg::t0, 0, reg::s2);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.ldq(reg::t1, 0, reg::s2);
  as.print_int_r(reg::t1);
  as.instret();
  as.print_int_r(reg::v0);
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

TEST(FastmodeDispatch, PreemptsOnTheExactSameInstructionOnAllModels) {
  const assembler::Program prog = shared_counter_program();
  for (const sim::CpuKind cpu : kModels) {
    for (const std::uint64_t quantum : {7ull, 50ull, 333ull}) {
      const std::string label =
          std::string(sim::cpu_kind_name(cpu)) + " q=" + std::to_string(quantum);
      const PlainRun fast = run_plain(prog, cpu, true, quantum, {1, 2, 3});
      const PlainRun slow = run_plain(prog, cpu, false, quantum, {1, 2, 3});
      ASSERT_EQ(fast.rr.reason, sim::ExitReason::AllThreadsExited) << label;
      EXPECT_EQ(fast.rr.ticks, slow.rr.ticks) << label;
      EXPECT_EQ(fast.rr.committed, slow.rr.committed) << label;
      EXPECT_EQ(fast.outputs, slow.outputs) << label;
      EXPECT_EQ(fast.mem_crc, slow.mem_crc) << label;
      // The tier is atomic-only; on the timing models the flag is a no-op.
      if (cpu != sim::CpuKind::AtomicSimple) EXPECT_EQ(fast.exec_insts, 0u) << label;
      EXPECT_EQ(slow.exec_insts, 0u) << label;
    }
  }
}

TEST(FastmodeDispatch, WatchdogFiresAtTheSameTick) {
  // An infinite loop is the best case for trace stitching (one hot block,
  // hit forever); the batch must still consume its watchdog budget in
  // exactly as many ticks/commits as the per-tick loop.
  Assembler as;
  const Label entry = as.here("main");
  const Label spin = as.here("spin");
  as.addq_i(reg::t0, 1, reg::t0);
  as.br(spin);
  const assembler::Program prog = as.finalize(entry);

  const PlainRun fast = run_plain(prog, sim::CpuKind::AtomicSimple, true, 50000, {0});
  const PlainRun slow = run_plain(prog, sim::CpuKind::AtomicSimple, false, 50000, {0});
  EXPECT_EQ(fast.rr.reason, sim::ExitReason::Watchdog);
  EXPECT_EQ(slow.rr.reason, sim::ExitReason::Watchdog);
  EXPECT_EQ(fast.rr.ticks, slow.rr.ticks);
  EXPECT_EQ(fast.rr.committed, slow.rr.committed);
  EXPECT_GT(fast.exec_insts, 0u) << "spin loop never entered the trace tier";
}

// ---------------- SMC fuzz: stores into stitched traces --------------------

/// A loop whose body word is patched mid-run by the checkpoint handler (the
/// host-side stand-in for a store into the code segment). With kIters
/// iterations and a patch arriving at fi_read_init call `patch_call`, the
/// counter accumulates (patch_call - 1) ones plus the remaining iterations
/// at the patched delta. The loop is hot from iteration one, so the patched
/// word sits inside an already-stitched superblock: a trace cache that
/// misses the page-version bump keeps replaying the stale body.
constexpr int kSmcIters = 6;

assembler::Program smc_program() {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::s0, kSmcIters);
  as.li(reg::t0, 0);
  const Label loop = as.here("loop");
  as.fi_read_init();  // host handler patches the next instruction
  as.here("patchme");
  as.addq_i(reg::t0, 1, reg::t0);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.print_int_r(reg::t0);
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

isa::Word addq_delta_word(std::int64_t delta) {
  Assembler as;
  const Label entry = as.here("main");
  as.addq_i(reg::t0, delta, reg::t0);
  return as.finalize(entry).code.at(0);
}

TEST(FastmodeSmc, PatchTimingAndValueFuzzBitIdentical) {
  const assembler::Program prog = smc_program();
  const std::uint64_t patch_addr = prog.symbol("patchme");
  for (const std::int64_t delta : {5ll, 9ll}) {
    const isa::Word new_word = addq_delta_word(delta);
    for (int patch_call = 1; patch_call <= kSmcIters; ++patch_call) {
      const std::string label =
          "delta=" + std::to_string(delta) + " call=" + std::to_string(patch_call);
      GoldenRun runs[2];
      int i = 0;
      for (const bool fastmode : {true, false}) {
        int calls = 0;
        GoldenSpec spec;
        spec.fastmode = fastmode;
        spec.on_checkpoint = [&calls, patch_call, patch_addr, new_word](sim::Simulation& s) {
          if (++calls == patch_call)
            ASSERT_EQ(s.memsys().phys().store(patch_addr, 4, new_word),
                      mem::AccessError::None);
        };
        runs[i++] = run_golden(prog, spec);
      }
      expect_identical(runs[0], runs[1], label);
      // The patch lands at iteration patch_call's fi_read_init, before that
      // iteration's add: (patch_call - 1) old increments, the rest patched.
      const std::int64_t expect =
          (patch_call - 1) + std::int64_t(kSmcIters - patch_call + 1) * delta;
      EXPECT_EQ(runs[0].output, std::to_string(expect))
          << label << ": stale stitched trace executed after rewrite";
      EXPECT_GT(runs[0].sb.exec_insts, 0u) << label << ": trace tier never engaged";
    }
  }
}

TEST(FastmodeSmc, FaultingStoreInsideTraceTrapsAtTheSameCommit) {
  // A guest store aimed at the trace's own code page: the memory system
  // write-protects [code_base, code_end), so the store faults ReadOnly —
  // from the middle of a stitched trace. The trace must abandon the batch at
  // exactly that commit and surface the identical trap, tick and commit
  // count as the interpreter. (Pure-guest SMC is architecturally impossible
  // here; real SMC arrives via host-side stores, covered by the fuzz above.)
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::s0, 4);
  as.li(reg::t0, 0);
  const Label loop = as.here("loop");
  const Label next = as.make_label("next");
  as.bsr(reg::t3, next);  // t3 = address of `next` (PC-relative anchor)
  as.bind(next);
  as.addq_i(reg::t0, 1, reg::t0);  // warm the trace before the bad store
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.stl(reg::t0, 4, reg::t3);  // store into the code page: ReadOnly trap
  as.print_int_r(reg::t0);
  as.mov_i(0, reg::a0);
  as.exit_();
  const assembler::Program prog = as.finalize(entry);

  const GoldenRun fast = run_golden(prog, {.fastmode = true});
  const GoldenRun slow = run_golden(prog, {.fastmode = false});
  expect_identical(fast, slow, "faulting store inside a trace");
  EXPECT_NE(fast.trap, cpu::TrapKind::None) << "code-page store did not trap";
  EXPECT_GT(fast.sb.exec_insts, 0u) << "trace tier never engaged before the trap";
}

// ---------------- checkpoint restores over a warm trace cache --------------

TEST(FastmodeCheckpoint, FullAndDirtyRestoreOverWarmTracesBitIdentical) {
  // The campaign worker lifecycle: restore, run to completion, restore the
  // same image again (full, then dirty-page) into the *same* simulation and
  // re-run. Each restore rewrites memory under the stitched traces of the
  // previous run; stale traces must be detected (full restore bumps every
  // page version) or correctly retained (dirty restore leaves clean code
  // pages alone). Every run must reproduce the golden output and every
  // fast/slow pair must agree tick for tick.
  campaign::CampaignConfig ccfg;
  ccfg.cpu = sim::CpuKind::AtomicSimple;
  const campaign::CalibratedApp ca = campaign::calibrate(apps::build_app("pi"), ccfg);
  const chkpt::CheckpointImage image = chkpt::CheckpointImage::parse(ca.checkpoint);
  const std::uint64_t watchdog = 8 * ca.golden_ticks + 1'000'000;

  struct Cycle {
    std::vector<std::uint64_t> ticks;
    std::vector<std::string> outputs;
    std::vector<std::uint32_t> crcs;
    isa::SuperblockStats sb{};
  };
  Cycle cycles[2];
  int ci = 0;
  for (const bool fastmode : {true, false}) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::AtomicSimple;
    cfg.fastmode = fastmode;
    sim::Simulation s(cfg, ca.app.program);
    s.spawn_main_thread();

    Cycle& c = cycles[ci++];
    auto run_once = [&](const char* phase) {
      const sim::RunResult rr = s.run(watchdog);
      ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited) << phase;
      c.ticks.push_back(rr.ticks);
      c.outputs.push_back(s.output(0));
      c.crcs.push_back(util::crc32(s.memsys().phys().raw()));
    };
    image.restore_into(s);
    run_once("first full restore");
    image.restore_into(s);  // full restore over run 1's warm trace cache
    run_once("second full restore");
    image.restore_dirty_into(s);  // dirty-page restore over run 2's cache
    run_once("dirty restore");
    c.sb = s.memsys().superblock_stats();
  }

  const Cycle& fast = cycles[0];
  const Cycle& slow = cycles[1];
  ASSERT_EQ(fast.ticks.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(fast.ticks[r], slow.ticks[r]) << "run " << r;
    EXPECT_EQ(fast.outputs[r], slow.outputs[r]) << "run " << r;
    EXPECT_EQ(fast.crcs[r], slow.crcs[r]) << "run " << r;
    EXPECT_EQ(fast.outputs[r], ca.app.golden_output) << "run " << r << ": output not golden";
  }
  // All three runs resume from the same image: identical trajectories.
  EXPECT_EQ(fast.ticks[1], fast.ticks[0]);
  EXPECT_EQ(fast.ticks[2], fast.ticks[0]);
  EXPECT_GT(fast.sb.exec_insts, 0u) << "trace tier never engaged across the cycle";
  // The second full restore bumped every page version, so run 2's lookups
  // found run 1's traces stale — the invalidation the test exists to prove.
  EXPECT_GT(fast.sb.stale, 0u) << "full restore left stale traces undetected";
}

// ---------------- campaign records and replay ------------------------------

/// Collects the canonical (host-timing-free) JSON line of every record.
class CanonicalCollector final : public campaign::CampaignObserver {
 public:
  void on_experiment(const campaign::ExperimentRecord& rec) override {
    std::lock_guard lock(mutex_);
    if (rec.index >= lines_.size()) lines_.resize(rec.index + 1);
    lines_[rec.index] =
        campaign::experiment_record_to_json(rec, /*include_host_timing=*/false);
  }
  [[nodiscard]] const std::vector<std::string>& lines() const noexcept { return lines_; }

 private:
  std::mutex mutex_;
  std::vector<std::string> lines_;
};

TEST(FastmodeCampaign, CanonicalRecordsByteIdenticalAndReplayForcesTier) {
  // The JSONL determinism contract extended to the trace tier: the same
  // seeded campaign on the atomic model — where fast mode actually engages —
  // streams byte-identical canonical records with the tier on and off, and
  // the full record names the tier so --replay can force the identical
  // engagement decision.
  constexpr std::uint64_t kSeed = 20260809;
  constexpr std::size_t kExperiments = 6;
  campaign::CampaignConfig base;
  base.cpu = sim::CpuKind::AtomicSimple;
  base.workers = 1;
  base.campaign_seed = kSeed;
  // Full restore per experiment so the in-campaign records carry the same
  // checkpoint telemetry (restore_bytes) as the isolated --replay path.
  base.shared_baseline = false;
  const campaign::CalibratedApp ca = campaign::calibrate(apps::build_app("pi"), base);
  EXPECT_GT(ca.calib_wall_seconds, 0.0) << "calibration wall time not measured";

  const auto faults = campaign::seeded_fault_set(kSeed, kExperiments, ca.kernel_fetches);
  std::vector<std::string> lines[2];
  int i = 0;
  for (const bool fastmode : {true, false}) {
    CanonicalCollector collector;
    campaign::CampaignConfig cfg = base;
    cfg.fastmode = fastmode;
    cfg.observer = &collector;
    const campaign::CampaignReport report = campaign::run_campaign(ca, faults, cfg);
    EXPECT_EQ(report.total(), kExperiments);
    lines[i++] = collector.lines();
  }
  ASSERT_EQ(lines[0].size(), kExperiments);
  ASSERT_EQ(lines[1].size(), kExperiments);
  for (std::size_t r = 0; r < kExperiments; ++r)
    EXPECT_EQ(lines[0][r], lines[1][r]) << "record " << r << " differs with --no-fastmode";

  // The --replay contract: the isolated re-run reproduces the canonical
  // bytes, the result records which tier ran it, and the full JSONL form
  // carries the flag (the canonical form must not).
  for (const bool fastmode : {true, false}) {
    campaign::CampaignConfig cfg = base;
    cfg.fastmode = fastmode;
    const campaign::ExperimentResult er =
        campaign::run_experiment_with_retry(ca, faults[0], cfg);
    EXPECT_EQ(er.fastmode, fastmode) << "result does not record its engine tier";
    const campaign::ExperimentRecord rec{0, 0, campaign::experiment_seed(kSeed, 0), er};
    EXPECT_EQ(campaign::experiment_record_to_json(rec, /*include_host_timing=*/false),
              lines[0][0])
        << "replay with fastmode=" << fastmode << " diverged from the campaign record";
    const std::string full = campaign::experiment_record_to_json(rec);
    EXPECT_NE(full.find("\"fastmode\""), std::string::npos);
    EXPECT_EQ(lines[0][0].find("\"fastmode\""), std::string::npos)
        << "canonical record leaks the host-side tier flag";
  }

  // The calibration header record carries the golden-run costs and the tier.
  const std::string header = campaign::calibration_record_to_json("pi", ca, true);
  for (const char* key : {"\"event\":\"calibrated\"", "\"app\":\"pi\"", "\"golden_insts\"",
                          "\"kernel_fetches\"", "\"calib_wall_seconds\"", "\"fastmode\""})
    EXPECT_NE(header.find(key), std::string::npos) << key << " missing from " << header;
}

}  // namespace
