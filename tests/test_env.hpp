// Shared timing knobs for the networked test suites (test_net, test_dispatch,
// test_service).
//
// These tests pick short liveness timeouts so the chaos scenarios (worker
// reaping, drip-feed peers, first-worker deadlines) finish in seconds on a
// developer machine — but a loaded CI runner can stall a healthy worker past
// a 2.5 s heartbeat deadline and flake the suite. GEMFI_TEST_TIMEOUT_MS, when
// set, is a floor (in milliseconds) for the suite's base liveness timeout of
// 2500 ms; every timing knob below derives from the same scale factor, so the
// relative order the scenarios depend on — heartbeat < reap point < campaign
// length — survives any slowdown. Unset or smaller than the base, the tests
// run at their fast defaults. CI sets GEMFI_TEST_TIMEOUT_MS=10000.
#pragma once

#include <chrono>
#include <cstdlib>

namespace gemfi::testenv {

/// Base liveness timeout the scale is expressed against, milliseconds.
inline constexpr double kBaseTimeoutMs = 2500.0;

/// Multiplier applied to every timing knob: 1.0 by default, larger when
/// GEMFI_TEST_TIMEOUT_MS asks for a slower (more load-tolerant) suite.
inline double timeout_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("GEMFI_TEST_TIMEOUT_MS")) {
      const double ms = std::atof(env);
      if (ms > kBaseTimeoutMs) return ms / kBaseTimeoutMs;
    }
    return 1.0;
  }();
  return scale;
}

/// A timeout in seconds, scaled.
inline double scaled_s(double dflt_s) { return dflt_s * timeout_scale(); }

/// A delay in milliseconds, scaled (for pacing sleeps that must keep their
/// ratio to the scaled timeouts).
inline std::chrono::milliseconds scaled_ms(long dflt_ms) {
  return std::chrono::milliseconds(static_cast<long>(dflt_ms * timeout_scale()));
}

}  // namespace gemfi::testenv
