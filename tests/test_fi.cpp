// Fault-injection layer tests: input-file parsing (Listing 1 format),
// corruption behaviors, per-location injection observable in guest results,
// propagation tracking (non-propagated classes), and the FI toggle protocol.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "fi/fault.hpp"
#include "fi/fault_manager.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

// ---------- parser ----------

TEST(FaultParser, PaperListing1RoundTrips) {
  const std::string line =
      "RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1";
  const fi::Fault f = fi::parse_fault(line);
  EXPECT_EQ(f.location, fi::FaultLocation::IntReg);
  EXPECT_EQ(f.reg, 1u);
  EXPECT_EQ(f.time_kind, fi::FaultTimeKind::Instruction);
  EXPECT_EQ(f.time, 2457u);
  EXPECT_EQ(f.behavior, fi::FaultBehavior::Flip);
  EXPECT_EQ(f.operand, 21u);
  EXPECT_EQ(f.thread_id, 0);
  EXPECT_EQ(f.core, 1u);
  EXPECT_EQ(f.occurrences, 1u);
  EXPECT_EQ(fi::parse_fault(f.to_line()).to_line(), f.to_line());
}

TEST(FaultParser, AllFaultTypesParse) {
  const char* lines[] = {
      "PCInjectedFault Inst:10 Flip:2 Threadid:0 system.cpu0 occ:1",
      "FetchStageInjectedFault Tick:500 Xor:0xff Threadid:1 system.cpu0 occ:3",
      "DecodeStageInjectedFault Inst:7 Flip:4 Threadid:0 system.cpu0 occ:1 field rb",
      "ExecutionStageInjectedFault Inst:9 AllOne Threadid:0 system.cpu0 occ:perm",
      "LoadStoreInjectedFault Inst:11 Imm:0xdead Threadid:0 system.cpu0 occ:2",
      "RegisterInjectedFault Inst:3 AllZero Threadid:0 system.cpu0 occ:1 float 7",
  };
  for (const char* line : lines) {
    const fi::Fault f = fi::parse_fault(line);
    EXPECT_EQ(fi::parse_fault(f.to_line()).to_line(), f.to_line()) << line;
  }
}

TEST(FaultParser, RejectsMalformedInput) {
  EXPECT_THROW(fi::parse_fault(""), std::invalid_argument);
  EXPECT_THROW(fi::parse_fault("BogusFault Inst:1 Flip:0"), std::invalid_argument);
  EXPECT_THROW(fi::parse_fault("RegisterInjectedFault Flip:0 Threadid:0 int 1"),
               std::invalid_argument);  // missing time
  EXPECT_THROW(fi::parse_fault("RegisterInjectedFault Inst:1 Threadid:0 int 1"),
               std::invalid_argument);  // missing behavior
  EXPECT_THROW(fi::parse_fault("RegisterInjectedFault Inst:1 Flip:0 Threadid:0"),
               std::invalid_argument);  // missing register
  EXPECT_THROW(fi::parse_fault("RegisterInjectedFault Inst:1 Flip:0 int 99"),
               std::invalid_argument);  // register out of range
  EXPECT_THROW(fi::parse_fault("PCInjectedFault Inst:1 Flip:0 occ:0"),
               std::invalid_argument);  // occ must be >= 1
}

TEST(FaultParser, FileParserSkipsCommentsAndBlanks) {
  const std::string body =
      "# a comment\n\n"
      "RegisterInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:1 int 1\n"
      "   # indented comment\n"
      "PCInjectedFault Inst:2 Flip:1 Threadid:0 system.cpu0 occ:1\n";
  const auto faults = fi::parse_fault_file(body);
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].location, fi::FaultLocation::IntReg);
  EXPECT_EQ(faults[1].location, fi::FaultLocation::PC);
}

// ---------- extended grammar ----------

TEST(FaultParser, ExtendedModelLinesParse) {
  const char* lines[] = {
      "RegisterInjectedFault Inst:100 StuckAt1:0x200000 Threadid:0 system.cpu0 "
      "occ:perm int 1",
      "RegisterInjectedFault Inst:100 StuckAt0:0x1 Threadid:0 system.cpu0 occ:perm int 2",
      "FetchStageInjectedFault Inst:50 Burst:4+3 Threadid:0 system.cpu0 occ:1",
      "RegisterInjectedFault Inst:10 RandK:3@0x1234 Threadid:0 system.cpu0 occ:1 int 5",
      "RegisterInjectedFault Inst:10 Flip:21 Threadid:0 system.cpu0 occ:perm int 1 "
      "duty:2/16",
      "SkipInjectedFault Inst:500 Threadid:0 system.cpu0 occ:3",
      "OpcodeInjectedFault Inst:1 Xor:0x3f Threadid:0 system.cpu0 occ:1 "
      "pcwin:0x2000-0x2040",
  };
  for (const char* line : lines) {
    const fi::Fault f = fi::parse_fault(line);
    EXPECT_EQ(fi::parse_fault(f.to_line()).to_line(), f.to_line()) << line;
  }
  const fi::Fault stuck = fi::parse_fault(lines[0]);
  EXPECT_EQ(stuck.behavior, fi::FaultBehavior::StuckOne);
  EXPECT_EQ(stuck.operand, 0x200000u);
  EXPECT_EQ(stuck.occurrences, fi::kPermanent);
  const fi::Fault duty = fi::parse_fault(lines[4]);
  EXPECT_EQ(duty.duty_active, 2u);
  EXPECT_EQ(duty.duty_period, 16u);
  EXPECT_TRUE(duty.duty_cycled());
  const fi::Fault skip = fi::parse_fault(lines[5]);
  EXPECT_EQ(skip.location, fi::FaultLocation::Skip);
  EXPECT_EQ(skip.behavior, fi::FaultBehavior::Flip);  // normalized
  EXPECT_EQ(skip.occurrences, 3u);
  const fi::Fault opc = fi::parse_fault(lines[6]);
  EXPECT_EQ(opc.location, fi::FaultLocation::Opcode);
  EXPECT_EQ(opc.pc_lo, 0x2000u);
  EXPECT_EQ(opc.pc_hi, 0x2040u);
  EXPECT_TRUE(opc.has_pc_window());
}

TEST(FaultParser, ExtendedGrammarValidation) {
  // duty: active must satisfy 1 <= active <= period.
  EXPECT_THROW(fi::parse_fault("PCInjectedFault Inst:1 Flip:0 Threadid:0 "
                               "system.cpu0 occ:1 duty:0/8"),
               std::invalid_argument);
  EXPECT_THROW(fi::parse_fault("PCInjectedFault Inst:1 Flip:0 Threadid:0 "
                               "system.cpu0 occ:1 duty:9/8"),
               std::invalid_argument);
  // pcwin: fetch-path locations only, and lo <= hi with hi > 0.
  EXPECT_THROW(fi::parse_fault("RegisterInjectedFault Inst:1 Flip:0 Threadid:0 "
                               "system.cpu0 occ:1 int 1 pcwin:0x10-0x20"),
               std::invalid_argument);
  EXPECT_THROW(fi::parse_fault("FetchStageInjectedFault Inst:1 Flip:0 Threadid:0 "
                               "system.cpu0 occ:1 pcwin:0x20-0x10"),
               std::invalid_argument);
  // Burst start/length are byte-sized.
  EXPECT_THROW(fi::parse_fault("FetchStageInjectedFault Inst:1 Burst:300+2 "
                               "Threadid:0 system.cpu0 occ:1"),
               std::invalid_argument);
}

TEST(FaultParser, EveryLocationBehaviorTimeKindRoundTrips) {
  // Serialize -> parse -> serialize must be byte-identical for the whole
  // fault-model cross product (Skip carries no behavior token and is pinned
  // to its normalized Flip/0 form).
  for (unsigned li = 0; li < fi::kNumFaultLocations; ++li) {
    for (unsigned bi = 0; bi < fi::kNumFaultBehaviors; ++bi) {
      for (const auto tk : {fi::FaultTimeKind::Instruction, fi::FaultTimeKind::Tick}) {
        for (const std::uint64_t occ : {std::uint64_t(1), fi::kPermanent}) {
          fi::Fault f;
          f.location = static_cast<fi::FaultLocation>(li);
          f.behavior = static_cast<fi::FaultBehavior>(bi);
          f.time_kind = tk;
          f.time = 123;
          f.occurrences = occ;
          f.thread_id = 1;
          f.core = 2;
          if (f.location == fi::FaultLocation::IntReg ||
              f.location == fi::FaultLocation::FpReg)
            f.reg = 5;
          switch (f.behavior) {
            case fi::FaultBehavior::Flip: f.operand = 4; break;
            case fi::FaultBehavior::Xor:
            case fi::FaultBehavior::Imm:
            case fi::FaultBehavior::StuckZero:
            case fi::FaultBehavior::StuckOne: f.operand = 0x21; break;
            case fi::FaultBehavior::AllZero:
            case fi::FaultBehavior::AllOne: f.operand = 0; break;
            case fi::FaultBehavior::Burst:
              f.operand = fi::Fault::burst_operand(2, 3);
              break;
            case fi::FaultBehavior::RandK:
              f.operand = fi::Fault::randk_operand(3, 0x5eed);
              break;
          }
          if (f.location == fi::FaultLocation::Skip) {
            f.behavior = fi::FaultBehavior::Flip;  // the only canonical form
            f.operand = 0;
          }
          // Exercise the optional suffixes on half the cross product.
          if (bi % 2 == 0) {
            f.duty_period = 16;
            f.duty_active = 4;
          }
          if (li >= unsigned(fi::FaultLocation::Fetch) &&
              (f.location == fi::FaultLocation::Fetch ||
               f.location == fi::FaultLocation::Skip ||
               f.location == fi::FaultLocation::Opcode)) {
            f.pc_lo = 0x2000;
            f.pc_hi = 0x3000;
          }
          const std::string once = f.to_line();
          const std::string twice = fi::parse_fault(once).to_line();
          EXPECT_EQ(once, twice) << once;
        }
      }
    }
  }
}

TEST(FaultParser, TruncatedLinesNeverCrash) {
  // Fuzz every prefix of representative lines (including mid-token cuts of
  // "occ:perm" and the duty/pcwin suffixes): each prefix must either parse
  // or throw std::invalid_argument — nothing else.
  const char* lines[] = {
      "RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1",
      "RegisterInjectedFault Inst:100 StuckAt1:0x200000 Threadid:0 system.cpu0 "
      "occ:perm int 1",
      "FetchStageInjectedFault Inst:50 Burst:4+3 Threadid:0 system.cpu0 occ:perm",
      "RegisterInjectedFault Inst:10 RandK:3@0x1234 Threadid:0 system.cpu0 occ:1 int 5",
      "SkipInjectedFault Inst:500 Threadid:0 system.cpu0 occ:3",
      "OpcodeInjectedFault Inst:1 Xor:0x3f Threadid:0 system.cpu0 occ:1 "
      "pcwin:0x2000-0x2040",
      "PCInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:perm duty:2/16",
  };
  for (const char* full : lines) {
    const std::string line = full;
    for (std::size_t cut = 0; cut <= line.size(); ++cut) {
      try {
        (void)fi::parse_fault(line.substr(0, cut));
      } catch (const std::invalid_argument&) {
        // expected for most prefixes
      }
    }
  }
}

// ---------- behaviors ----------

TEST(FaultBehavior, CorruptSemantics) {
  fi::Fault f;
  f.behavior = fi::FaultBehavior::Flip;
  f.operand = 3;
  EXPECT_EQ(f.corrupt(0, 64), 8u);
  EXPECT_EQ(f.corrupt(8, 64), 0u);
  f.behavior = fi::FaultBehavior::Xor;
  f.operand = 0xff;
  EXPECT_EQ(f.corrupt(0x0f, 64), 0xf0u);
  f.behavior = fi::FaultBehavior::Imm;
  f.operand = 42;
  EXPECT_EQ(f.corrupt(999, 64), 42u);
  f.behavior = fi::FaultBehavior::AllZero;
  EXPECT_EQ(f.corrupt(~0ull, 64), 0u);
  f.behavior = fi::FaultBehavior::AllOne;
  EXPECT_EQ(f.corrupt(0, 32), 0xffffffffull);
  // Width masking: a flip beyond the width wraps into it.
  f.behavior = fi::FaultBehavior::Flip;
  f.operand = 35;
  EXPECT_EQ(f.corrupt(0, 32), 1ull << 3);
}

TEST(FaultBehavior, StuckAtSemantics) {
  fi::Fault f;
  f.behavior = fi::FaultBehavior::StuckZero;
  f.operand = 0x0f;
  EXPECT_EQ(f.corrupt(0xff, 64), 0xf0u);
  EXPECT_EQ(f.corrupt(0xf0, 64), 0xf0u);  // idempotent
  f.behavior = fi::FaultBehavior::StuckOne;
  f.operand = 0x0f;
  EXPECT_EQ(f.corrupt(0x00, 64), 0x0fu);
  EXPECT_EQ(f.corrupt(0x0f, 64), 0x0fu);  // idempotent
  EXPECT_TRUE(fi::Fault::sticky_behavior(fi::FaultBehavior::StuckZero));
  EXPECT_TRUE(fi::Fault::sticky_behavior(fi::FaultBehavior::StuckOne));
  EXPECT_FALSE(fi::Fault::sticky_behavior(fi::FaultBehavior::Flip));
  EXPECT_FALSE(fi::Fault::sticky_behavior(fi::FaultBehavior::Burst));
}

TEST(FaultBehavior, BurstSemantics) {
  fi::Fault f;
  f.behavior = fi::FaultBehavior::Burst;
  f.operand = fi::Fault::burst_operand(4, 3);
  EXPECT_EQ(f.corrupt(0, 64), 0x70u);  // bits 4..6 flipped
  EXPECT_EQ(f.corrupt(0x70, 64), 0u);  // self-inverting
  // Runs clamp at the target width, including the full-width edge cases
  // (shift-by-64 must not be evaluated).
  f.operand = fi::Fault::burst_operand(30, 10);
  EXPECT_EQ(f.corrupt(0, 32), 0xc0000000u);  // clamped to bits 30..31
  f.operand = fi::Fault::burst_operand(0, 64);
  EXPECT_EQ(f.corrupt(0, 64), ~0ull);
  f.operand = fi::Fault::burst_operand(0, 255);
  EXPECT_EQ(f.corrupt(0, 64), ~0ull);
  // Start wraps into the width like Flip does.
  f.operand = fi::Fault::burst_operand(33, 2);
  EXPECT_EQ(f.corrupt(0, 32), 0x6u);
}

TEST(FaultBehavior, RandKFlipsExactlyKDistinctBits) {
  for (unsigned k = 1; k <= 8; ++k) {
    fi::Fault f;
    f.behavior = fi::FaultBehavior::RandK;
    f.operand = fi::Fault::randk_operand(k, 0x1234 + k);
    const std::uint64_t mask = f.corrupt(0, 64);
    EXPECT_EQ(unsigned(__builtin_popcountll(mask)), k) << "k=" << k;
    // Deterministic: the same (k, seed) always produces the same mask, and
    // re-application undoes it.
    EXPECT_EQ(f.corrupt(0, 64), mask);
    EXPECT_EQ(f.corrupt(mask, 64), 0u);
  }
  // k clamps to the target width.
  fi::Fault f;
  f.behavior = fi::FaultBehavior::RandK;
  f.operand = fi::Fault::randk_operand(200, 7);
  EXPECT_EQ(unsigned(__builtin_popcountll(f.corrupt(0, 32))), 32u);
}

// ---------- guest-visible injection ----------

/// Guest: s0 = 100; fi on; `nops` filler adds; v = s0; fi off; print v.
Program make_reg_probe(unsigned filler) {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::s0, 100);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (unsigned i = 0; i < filler; ++i) as.addq_i(reg::t0, 1, reg::t0);
  as.mov(reg::s0, reg::s1);  // the read that consumes the fault
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s1);
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

struct RunOut {
  std::string output;
  sim::RunResult rr;
  bool propagated;
  bool applied;
};

RunOut run_with_fault(const Program& prog, const std::string& fault_line,
                      sim::CpuKind cpu = sim::CpuKind::AtomicSimple) {
  sim::SimConfig cfg;
  cfg.cpu = cpu;
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(fault_line)});
  RunOut out;
  out.rr = s.run(10'000'000);
  out.output = s.output(0);
  out.propagated = s.fault_manager().any_propagated();
  out.applied = s.fault_manager().any_applied();
  return out;
}

class FiBothModels : public ::testing::TestWithParam<sim::CpuKind> {};

TEST_P(FiBothModels, RegisterFlipChangesObservedValue) {
  // Flip bit 3 of s0 (=R9) early in the FI window: 100 ^ 8 = 108.
  const auto out = run_with_fault(
      make_reg_probe(20),
      "RegisterInjectedFault Inst:2 Flip:3 Threadid:0 system.cpu0 occ:1 int 9",
      GetParam());
  EXPECT_EQ(out.rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(out.output, "108");
  EXPECT_TRUE(out.propagated);
}

TEST_P(FiBothModels, FaultOnDeadRegisterDoesNotPropagate) {
  // s5 (=R14) is never used by the probe program.
  const auto out = run_with_fault(
      make_reg_probe(20),
      "RegisterInjectedFault Inst:2 Flip:3 Threadid:0 system.cpu0 occ:1 int 14",
      GetParam());
  EXPECT_EQ(out.rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(out.output, "100");
  EXPECT_TRUE(out.applied);
  EXPECT_FALSE(out.propagated);
}

TEST_P(FiBothModels, OverwrittenRegisterDoesNotPropagate) {
  // t0 is rewritten by the filler adds... use a register written before read:
  // inject into s1, which is overwritten by `mov s0, s1` before any read.
  const auto out = run_with_fault(
      make_reg_probe(20),
      "RegisterInjectedFault Inst:2 Flip:60 Threadid:0 system.cpu0 occ:1 int 10",
      GetParam());
  EXPECT_EQ(out.rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(out.output, "100");
  EXPECT_TRUE(out.applied);
  EXPECT_FALSE(out.propagated);
}

TEST_P(FiBothModels, FaultOutsideWindowNeverApplies) {
  const auto out = run_with_fault(
      make_reg_probe(5),
      "RegisterInjectedFault Inst:100000 Flip:3 Threadid:0 system.cpu0 occ:1 int 9",
      GetParam());
  EXPECT_EQ(out.rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(out.output, "100");
  EXPECT_FALSE(out.applied);
}

TEST_P(FiBothModels, WrongThreadIdNeverApplies) {
  const auto out = run_with_fault(
      make_reg_probe(5),
      "RegisterInjectedFault Inst:2 Flip:3 Threadid:7 system.cpu0 occ:1 int 9",
      GetParam());
  EXPECT_EQ(out.output, "100");
  EXPECT_FALSE(out.applied);
}

TEST_P(FiBothModels, PcFaultUsuallyFatal) {
  // Flipping a high PC bit lands far outside mapped memory.
  const auto out = run_with_fault(
      make_reg_probe(20),
      "PCInjectedFault Inst:2 Flip:40 Threadid:0 system.cpu0 occ:1", GetParam());
  EXPECT_EQ(out.rr.reason, sim::ExitReason::Crashed);
  EXPECT_TRUE(out.applied);
}

TEST_P(FiBothModels, FpRegisterFaultHitsFpResult) {
  Assembler as;
  const Label entry = as.here("main");
  as.fli(10, 1.0);  // f10 lives across the window
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (unsigned i = 0; i < 10; ++i) as.addq_i(reg::t0, 1, reg::t0);
  as.fmov(10, 16);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_fp();
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = GetParam();
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  // Flip the sign bit of f10: prints -1 instead of 1.
  s.fault_manager().load_faults({fi::parse_fault(
      "RegisterInjectedFault Inst:2 Flip:63 Threadid:0 system.cpu0 occ:1 float 10")});
  const auto rr = s.run(10'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "-1");
}

INSTANTIATE_TEST_SUITE_P(Models, FiBothModels,
                         ::testing::Values(sim::CpuKind::AtomicSimple,
                                           sim::CpuKind::Pipelined),
                         [](const auto& info) {
                           return info.param == sim::CpuKind::AtomicSimple ? "Atomic"
                                                                           : "Pipelined";
                         });

// ---------- stage faults ----------

TEST(StageFaults, ExecuteStageFaultCorruptsAluResult) {
  // Program: fi on; t0 = 5 + 6 (the 2nd fetched instruction); print.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.mov_i(5, reg::t0);
  as.addq_i(reg::t0, 6, reg::t0);
  as.mov(reg::t0, reg::s0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  // Fetched seq 1 = mov 5; seq 2 = addq: flip bit 4 of its result: 11^16=27.
  s.fault_manager().load_faults({fi::parse_fault(
      "ExecutionStageInjectedFault Inst:2 Flip:4 Threadid:0 system.cpu0 occ:1")});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "27");
  EXPECT_TRUE(s.fault_manager().any_propagated());
}

TEST(StageFaults, FetchFaultOnUnusedBitIsHarmless) {
  // Memory-format displacement bit on an LDA with disp 0 -> changes result;
  // instead corrupt the unused high literal bits of an operate-literal:
  // flip bit 31 of "bis zero, 5, t0": that's the opcode field -> harmful.
  // The architecturally unused SBZ bits [15:13] of a register-form operate
  // are the paper's "unused bits always strictly correct" case.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::t1, 3);
  as.addq(reg::t1, reg::t1, reg::t0);  // register form: SBZ bits present
  as.mov(reg::t0, reg::s0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  // seq 2 = the addq; bit 13 is SBZ in the register-form operate format.
  s.fault_manager().load_faults({fi::parse_fault(
      "FetchStageInjectedFault Inst:2 Flip:13 Threadid:0 system.cpu0 occ:1")});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "6");
}

TEST(StageFaults, LoadDataFaultCorruptsLoadedValue) {
  Assembler as;
  const DataRef cell = as.data_u64(std::uint64_t(1000));
  const Label entry = as.here("main");
  as.la(reg::s2, cell);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.ldq(reg::s0, 0, reg::s2);  // seq 2... (la was before activation)
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "LoadStoreInjectedFault Inst:1 Flip:3 Threadid:0 system.cpu0 occ:1")});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  // The ldq is the first instruction fetched inside the FI window; flipping
  // bit 3 of the loaded value: 1000 (bit 3 set) -> 992.
  EXPECT_TRUE(s.fault_manager().any_applied());
  EXPECT_EQ(s.output(0), "992");
}

TEST(StageFaults, DecodeFaultRedirectsRegisterSelection) {
  // addq t1, t1, t0 with rc corrupted towards another register.
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::t1, 3);
  as.li(reg::s0, 7);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.addq(reg::t1, reg::t1, reg::t0);  // seq 1: t0 (=R1) <- 6
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::t0);
  as.print_str(" ");
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  // Flip bit 3 of rc: R1 -> R9 (= s0). The result lands in s0 instead of t0.
  s.fault_manager().load_faults({fi::parse_fault(
      "DecodeStageInjectedFault Inst:1 Flip:3 Threadid:0 system.cpu0 occ:1 field rc")});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "0 6");  // t0 untouched (still 0), s0 clobbered with 6
}

// ---------- toggle protocol ----------

TEST(FiProtocol, SecondActivateDisablesInjection) {
  fi::FaultManager fm;
  EXPECT_TRUE(fm.on_fi_activate(0x1000, 0));
  EXPECT_TRUE(fm.fi_active());
  EXPECT_FALSE(fm.on_fi_activate(0x1000, 0));
  EXPECT_FALSE(fm.fi_active());
  EXPECT_EQ(fm.enabled_thread_count(), 0u);
}

TEST(FiProtocol, ContextSwitchRebindsCorePointer) {
  fi::FaultManager fm;
  fm.on_fi_activate(0x1000, 0);
  fm.on_context_switch(0x2000);  // thread without FI
  EXPECT_FALSE(fm.fi_active());
  fm.on_context_switch(0x1000);
  EXPECT_TRUE(fm.fi_active());
  ASSERT_NE(fm.current_thread(), nullptr);
  EXPECT_EQ(fm.current_thread()->pcb, 0x1000u);
}

TEST(FiProtocol, ResetRearmsFaults) {
  fi::FaultManager fm;
  fm.load_faults({fi::parse_fault(
      "RegisterInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:1 int 1")});
  fm.on_fi_activate(0x1000, 0);
  cpu::ArchState st;
  // Advance the thread's fetch counter past the trigger.
  (void)fm.on_fetch(0x2000, 0);
  fm.apply_direct_faults(st);
  EXPECT_TRUE(fm.any_applied());
  fm.reset_campaign_state();
  EXPECT_FALSE(fm.any_applied());
  EXPECT_FALSE(fm.fi_active());
  EXPECT_TRUE(fm.injection_log().empty());
}

}  // namespace
