// Simulator-statistics tests: the paper's Sec. IV-A check — GemFI enabled
// (no faults) vs the unmodified simulator must produce identical statistical
// results — plus sanity on the report's contents and the core attribute.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "assembler/assembler.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

std::string run_stats(const Program& prog, sim::CpuKind kind, bool fi) {
  sim::SimConfig cfg;
  cfg.cpu = kind;
  cfg.fi_enabled = fi;
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread();
  const auto rr = s.run(2'000'000'000ull);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  return s.stats_report();
}

TEST(Stats, GemFiEnabledMatchesUnmodifiedSimulatorExactly) {
  // Paper Sec. IV-A: "For all benchmarks the results were identical. This
  // indicates that GemFI does not corrupt the simulation process."
  for (const auto& name : {"pi", "deblock"}) {
    const apps::App app = apps::build_app(name);
    for (const auto kind : {sim::CpuKind::AtomicSimple, sim::CpuKind::Pipelined}) {
      const std::string base = run_stats(app.program, kind, false);
      const std::string gemfi = run_stats(app.program, kind, true);
      EXPECT_EQ(base, gemfi) << name << " on " << sim::cpu_kind_name(kind);
    }
  }
}

TEST(Stats, ReportContainsExpectedCountersAndValues) {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::t0, 50);
  const Label loop = as.here("loop");
  as.subq_i(reg::t0, 1, reg::t0);
  as.bne(reg::t0, loop);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  const auto rr = s.run(1'000'000);
  ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);

  const std::string report = s.stats_report();
  for (const char* key :
       {"sim.ticks", "sim.insts", "cpu.model", "cpu.ipc", "cpu.branch.lookups",
        "cpu.branch.mispredict_rate", "mem.l1i.miss_rate", "mem.l1d.hits",
        "mem.l2.misses", "thread.0.committed", "thread.0.finished"}) {
    EXPECT_NE(report.find(key), std::string::npos) << key << "\n" << report;
  }
  // The loop commits ~104 instructions; spot-check the counter rendering.
  char line[64];
  std::snprintf(line, sizeof line, "%-40s %20llu", "sim.insts",
                static_cast<unsigned long long>(rr.committed));
  EXPECT_NE(report.find(line), std::string::npos) << report;
}

TEST(Stats, AtomicModelReportsNoPredictor) {
  const apps::App app = apps::build_app("pi");
  const std::string report = run_stats(app.program, sim::CpuKind::AtomicSimple, false);
  EXPECT_EQ(report.find("cpu.branch.lookups"), std::string::npos);
  EXPECT_NE(report.find("atomic-simple"), std::string::npos);
}

TEST(CoreAttribute, FaultOnOtherCoreNeverTriggers) {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::s0, 100);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (int i = 0; i < 20; ++i) as.addq_i(reg::t0, 1, reg::t0);
  as.mov(reg::s0, reg::s1);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s1);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  for (const unsigned core : {0u, 1u}) {
    sim::SimConfig cfg;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    char line[160];
    std::snprintf(line, sizeof line,
                  "RegisterInjectedFault Inst:2 Flip:3 Threadid:0 system.cpu%u "
                  "occ:1 int 9",
                  core);
    s.fault_manager().load_faults({fi::parse_fault(line)});
    (void)s.run(10'000'000);
    if (core == 0) {
      EXPECT_EQ(s.output(0), "108");  // this simulation's single core is cpu0
    } else {
      EXPECT_EQ(s.output(0), "100");  // cpu1 fault: armed but never triggers
      EXPECT_FALSE(s.fault_manager().any_applied());
    }
  }
}

}  // namespace
