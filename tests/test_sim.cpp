// End-to-end simulation tests: small hand-written guest programs running on
// all three CPU models, pseudo-op dispatch, trap handling, and the
// atomic/pipelined co-simulation property (same program => same
// architectural results and output on every model).
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

sim::SimConfig config_for(sim::CpuKind kind, bool fi = true) {
  sim::SimConfig cfg;
  cfg.cpu = kind;
  cfg.fi_enabled = fi;
  return cfg;
}

/// Tiny program: compute 6*7, print it, exit.
Program make_mul_program() {
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(6, reg::t0);
  as.mulq_i(reg::t0, 7, reg::t1);
  as.print_int_r(reg::t1);
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

class AllCpuModels : public ::testing::TestWithParam<sim::CpuKind> {};

TEST_P(AllCpuModels, MultiplyAndPrint) {
  sim::Simulation s(config_for(GetParam()), make_mul_program());
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "42");
}

TEST_P(AllCpuModels, LoopSumMatchesClosedForm) {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::t0, 0);    // sum
  as.li(reg::t1, 1);    // i
  const Label loop = as.here("loop");
  as.addq(reg::t0, reg::t1, reg::t0);
  as.addq_i(reg::t1, 1, reg::t1);
  as.cmple_i(reg::t1, 100, reg::t2);
  as.bne(reg::t2, loop);
  as.print_int_r(reg::t0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::Simulation s(config_for(GetParam()), as.finalize(entry));
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "5050");
}

TEST_P(AllCpuModels, FunctionCallAndMemory) {
  Assembler as;
  const DataRef buf = as.data_zeros(8 * 8);
  const Label entry = as.make_label("main");
  const Label fn = as.make_label("store_fn");

  // store_fn(a0=index, a1=value): buf[index] = value
  as.bind(fn);
  as.la(reg::t0, buf);
  as.s8addq(reg::a0, reg::t0, reg::t0);
  as.stq(reg::a1, 0, reg::t0);
  as.ret();

  as.bind(entry);
  as.li(reg::s0, 0);
  const Label loop = as.here("loop");
  as.mov(reg::s0, reg::a0);
  as.mulq_i(reg::s0, 3, reg::a1);
  as.call(fn);
  as.addq_i(reg::s0, 1, reg::s0);
  as.cmplt_i(reg::s0, 8, reg::t0);
  as.bne(reg::t0, loop);
  // print buf[5]
  as.la(reg::t0, buf);
  as.ldq(reg::a0, 5 * 8, reg::t0);
  as.print_int();
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::Simulation s(config_for(GetParam()), as.finalize(entry));
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "15");
}

TEST_P(AllCpuModels, FloatingPoint) {
  Assembler as;
  const Label entry = as.here("main");
  as.fli(1, 1.5);
  as.fli(2, 2.25);
  as.addt(1, 2, 3);    // 3.75
  as.mult(3, 3, 3);    // 14.0625
  as.sqrtt(3, 3);      // 3.75
  as.fmov(3, 16);
  as.print_fp();
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::Simulation s(config_for(GetParam()), as.finalize(entry));
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "3.75");
}

TEST_P(AllCpuModels, NullPointerLoadCrashes) {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::t0, 0);
  as.ldq(reg::t1, 16, reg::t0);  // load from 0x10: null page
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::Simulation s(config_for(GetParam()), as.finalize(entry));
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(1'000'000);
  ASSERT_EQ(rr.reason, sim::ExitReason::Crashed);
  EXPECT_EQ(rr.trap.kind, cpu::TrapKind::MemFault);
  EXPECT_EQ(rr.trap.mem_error, mem::AccessError::NullPage);
}

TEST_P(AllCpuModels, IllegalInstructionCrashes) {
  Assembler as;
  const Label entry = as.here("main");
  as.emit(0xffffffffu);  // opcode 0x3f is BGT; use a truly invalid encoding
  as.emit(isa::encode_operate(isa::Opcode::INTA, 0x7f, 0, 0, 0));  // bad func
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::Simulation s(config_for(GetParam()), as.finalize(entry));
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(1'000'000);
  // 0xffffffff decodes as BGT zero (valid, not taken); the INTA with an
  // undefined function code must trap.
  ASSERT_EQ(rr.reason, sim::ExitReason::Crashed);
  EXPECT_EQ(rr.trap.kind, cpu::TrapKind::IllegalInstruction);
}

TEST_P(AllCpuModels, DivideByZeroTraps) {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::t0, 5);
  as.li(reg::t1, 0);
  as.divq(reg::t0, reg::t1, reg::t2);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::Simulation s(config_for(GetParam()), as.finalize(entry));
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(1'000'000);
  ASSERT_EQ(rr.reason, sim::ExitReason::Crashed);
  EXPECT_EQ(rr.trap.kind, cpu::TrapKind::Arithmetic);
}

TEST_P(AllCpuModels, WatchdogCatchesInfiniteLoop) {
  Assembler as;
  const Label entry = as.here("main");
  const Label loop = as.here("loop");
  as.br(loop);

  sim::Simulation s(config_for(GetParam()), as.finalize(entry));
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(10'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::Watchdog);
}

TEST_P(AllCpuModels, StoreToCodeSegmentFaults) {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::t0, 0x2000);  // code base
  as.stq(reg::t1, 0, reg::t0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::Simulation s(config_for(GetParam()), as.finalize(entry));
  s.spawn_main_thread();
  const sim::RunResult rr = s.run(1'000'000);
  ASSERT_EQ(rr.reason, sim::ExitReason::Crashed);
  EXPECT_EQ(rr.trap.mem_error, mem::AccessError::ReadOnly);
}

TEST_P(AllCpuModels, TwoThreadsInterleave) {
  Assembler as;
  const DataRef cells = as.data_zeros(16);
  const Label entry = as.here("main");
  // a0 = thread index; spins incrementing its own cell, prints final value.
  as.li(reg::s0, 0);
  const Label loop = as.here("loop");
  as.la(reg::t0, cells);
  as.s8addq(reg::a0, reg::t0, reg::t0);
  as.ldq(reg::t1, 0, reg::t0);
  as.addq_i(reg::t1, 1, reg::t1);
  as.stq(reg::t1, 0, reg::t0);
  as.addq_i(reg::s0, 1, reg::s0);
  as.cmplt_i(reg::s0, 200, reg::t1);
  as.bne(reg::t1, loop);
  as.la(reg::t0, cells);
  as.s8addq(reg::a0, reg::t0, reg::t0);
  as.ldq(reg::a0, 0, reg::t0);
  as.print_int();
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg = config_for(GetParam());
  cfg.quantum_insts = 100;  // force many context switches
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread({0});
  s.spawn_thread(s.program().entry, {1});
  const sim::RunResult rr = s.run(10'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "200");
  EXPECT_EQ(s.output(1), "200");
}

INSTANTIATE_TEST_SUITE_P(Models, AllCpuModels,
                         ::testing::Values(sim::CpuKind::AtomicSimple,
                                           sim::CpuKind::TimingSimple,
                                           sim::CpuKind::Pipelined),
                         [](const auto& info) {
                           return std::string(sim::cpu_kind_name(info.param)) == "atomic-simple"
                                      ? "Atomic"
                                      : sim::cpu_kind_name(info.param) == std::string("timing-simple")
                                            ? "Timing"
                                            : "Pipelined";
                         });

}  // namespace
