// Kernel-layer tests: thread creation, PCB uniqueness, round-robin
// preemption, context-switch events, yield/exit semantics, and scheduler
// serialization.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "os/scheduler.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

TEST(Scheduler, PcbAddressesAreUniqueAndStable) {
  os::Scheduler sched;
  cpu::ArchState ctx;
  const auto t0 = sched.add_thread(ctx);
  const auto t1 = sched.add_thread(ctx);
  const auto t2 = sched.add_thread(ctx);
  EXPECT_NE(sched.thread(t0).pcb_addr, sched.thread(t1).pcb_addr);
  EXPECT_NE(sched.thread(t1).pcb_addr, sched.thread(t2).pcb_addr);
  EXPECT_EQ(sched.thread(t0).pcb_addr, os::kPcbBase);
}

TEST(Scheduler, RoundRobinSkipsFinishedThreads) {
  os::Scheduler sched(10);
  mem::MemSystem ms;
  cpu::SimpleCpu cpu(ms, false);
  cpu::ArchState ctx;
  ctx.set_pc(0x2000);
  sched.add_thread(ctx);
  sched.add_thread(ctx);
  sched.add_thread(ctx);

  auto ev = sched.switch_to_next(cpu);
  EXPECT_EQ(ev.new_tid, 0u);
  ev = sched.switch_to_next(cpu);
  EXPECT_EQ(ev.new_tid, 1u);
  sched.finish_current(0);  // thread 1 done
  ev = sched.switch_to_next(cpu);
  EXPECT_EQ(ev.new_tid, 2u);
  ev = sched.switch_to_next(cpu);
  EXPECT_EQ(ev.new_tid, 0u);  // wraps, skipping 1
  EXPECT_EQ(ev.old_pcb, sched.thread(2).pcb_addr);
}

TEST(Scheduler, QuantumExpiryOnlyWithOtherRunnables) {
  os::Scheduler solo(3);
  mem::MemSystem ms;
  cpu::SimpleCpu cpu(ms, false);
  cpu::ArchState ctx;
  solo.add_thread(ctx);
  solo.switch_to_next(cpu);
  // Single thread: never requests a switch, no matter how stale the quantum.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(solo.on_commit());

  os::Scheduler duo(3);
  duo.add_thread(ctx);
  duo.add_thread(ctx);
  duo.switch_to_next(cpu);
  EXPECT_FALSE(duo.on_commit());
  EXPECT_FALSE(duo.on_commit());
  EXPECT_TRUE(duo.on_commit());  // quantum (3) exhausted, 2 runnable
  duo.switch_to_next(cpu);       // resets the quantum accounting
  EXPECT_FALSE(duo.on_commit());
}

TEST(Scheduler, ContextIsSavedAndRestoredAcrossSwitches) {
  os::Scheduler sched(100);
  mem::MemSystem ms;
  cpu::SimpleCpu cpu(ms, false);
  cpu::ArchState a;
  a.set_pc(0x2000);
  a.set_ireg(9, 111);
  cpu::ArchState b;
  b.set_pc(0x3000);
  b.set_ireg(9, 222);
  sched.add_thread(a);
  sched.add_thread(b);

  sched.switch_to_next(cpu);  // -> thread 0
  EXPECT_EQ(cpu.arch().ireg(9), 111u);
  cpu.arch().set_ireg(9, 123);  // thread 0 mutates its state
  sched.switch_to_next(cpu);    // -> thread 1
  EXPECT_EQ(cpu.arch().ireg(9), 222u);
  EXPECT_EQ(cpu.arch().pc(), 0x3000u);
  sched.switch_to_next(cpu);  // -> thread 0 again
  EXPECT_EQ(cpu.arch().ireg(9), 123u);  // mutation survived
}

TEST(Scheduler, SerializationRoundTrip) {
  os::Scheduler sched(7);
  cpu::ArchState ctx;
  ctx.set_ireg(5, 55);
  sched.add_thread(ctx);
  sched.add_thread(ctx);
  sched.thread(0).output = "hello";
  sched.thread(1).finished = true;
  sched.thread(1).exit_code = 3;

  util::ByteWriter w;
  sched.serialize(w);
  os::Scheduler sched2(1);
  util::ByteReader r(w.bytes());
  sched2.deserialize(r);
  EXPECT_EQ(sched2.thread_count(), 2u);
  EXPECT_EQ(sched2.thread(0).output, "hello");
  EXPECT_TRUE(sched2.thread(1).finished);
  EXPECT_EQ(sched2.thread(1).exit_code, 3);
  EXPECT_EQ(sched2.thread(0).ctx.ireg(5), 55u);
}

// Guest-level: yield rotates threads cooperatively.
TEST(GuestThreads, YieldInterleavesDeterministically) {
  Assembler as;
  const Label entry = as.here("main");
  // Each thread prints its id three times, yielding in between.
  for (int round = 0; round < 3; ++round) {
    as.print_int();  // a0 still holds the id: yields preserve the context
    as.yield();
  }
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  cfg.quantum_insts = 1'000'000;  // only yields cause switches
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread({7});
  s.spawn_thread(prog.entry, {8});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "777");
  EXPECT_EQ(s.output(1), "888");
}

TEST(GuestThreads, ExitCodePropagates) {
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(17, reg::a0);
  as.exit_();
  sim::SimConfig cfg;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  (void)s.run(100'000);
  EXPECT_TRUE(s.scheduler().thread(0).finished);
  EXPECT_EQ(s.scheduler().thread(0).exit_code, 17);
}

TEST(GuestThreads, StacksAreDisjoint) {
  Assembler as;
  const Label entry = as.here("main");
  // Push the thread id, spin a bit, pop it back and print.
  as.push(reg::a0);
  as.li(reg::t0, 100);
  const Label spin = as.here("spin");
  as.subq_i(reg::t0, 1, reg::t0);
  as.bne(reg::t0, spin);
  as.pop(reg::a0);
  as.print_int();
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  sim::SimConfig cfg;
  cfg.quantum_insts = 13;  // interleave aggressively
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread({1});
  s.spawn_thread(prog.entry, {2});
  s.spawn_thread(prog.entry, {3});
  const auto rr = s.run(10'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "1");
  EXPECT_EQ(s.output(1), "2");
  EXPECT_EQ(s.output(2), "3");
}

}  // namespace
