// Kernel-layer tests: thread creation, PCB uniqueness, round-robin
// preemption, context-switch events, yield/exit semantics, scheduler
// serialization, and the preemption-during-syscall contract — a thread
// preempted or parked in the middle of an injected sys_write must not
// double-apply the injection when it resumes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "assembler/assembler.hpp"
#include "fi/syscall_fault.hpp"
#include "os/scheduler.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

TEST(Scheduler, PcbAddressesAreUniqueAndStable) {
  os::Scheduler sched;
  cpu::ArchState ctx;
  const auto t0 = sched.add_thread(ctx);
  const auto t1 = sched.add_thread(ctx);
  const auto t2 = sched.add_thread(ctx);
  EXPECT_NE(sched.thread(t0).pcb_addr, sched.thread(t1).pcb_addr);
  EXPECT_NE(sched.thread(t1).pcb_addr, sched.thread(t2).pcb_addr);
  EXPECT_EQ(sched.thread(t0).pcb_addr, os::kPcbBase);
}

TEST(Scheduler, RoundRobinSkipsFinishedThreads) {
  os::Scheduler sched(10);
  mem::MemSystem ms;
  cpu::SimpleCpu cpu(ms, false);
  cpu::ArchState ctx;
  ctx.set_pc(0x2000);
  sched.add_thread(ctx);
  sched.add_thread(ctx);
  sched.add_thread(ctx);

  auto ev = sched.switch_to_next(cpu);
  EXPECT_EQ(ev.new_tid, 0u);
  ev = sched.switch_to_next(cpu);
  EXPECT_EQ(ev.new_tid, 1u);
  sched.finish_current(0);  // thread 1 done
  ev = sched.switch_to_next(cpu);
  EXPECT_EQ(ev.new_tid, 2u);
  ev = sched.switch_to_next(cpu);
  EXPECT_EQ(ev.new_tid, 0u);  // wraps, skipping 1
  EXPECT_EQ(ev.old_pcb, sched.thread(2).pcb_addr);
}

TEST(Scheduler, QuantumExpiryOnlyWithOtherRunnables) {
  os::Scheduler solo(3);
  mem::MemSystem ms;
  cpu::SimpleCpu cpu(ms, false);
  cpu::ArchState ctx;
  solo.add_thread(ctx);
  solo.switch_to_next(cpu);
  // Single thread: never requests a switch, no matter how stale the quantum.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(solo.on_commit());

  os::Scheduler duo(3);
  duo.add_thread(ctx);
  duo.add_thread(ctx);
  duo.switch_to_next(cpu);
  EXPECT_FALSE(duo.on_commit());
  EXPECT_FALSE(duo.on_commit());
  EXPECT_TRUE(duo.on_commit());  // quantum (3) exhausted, 2 runnable
  duo.switch_to_next(cpu);       // resets the quantum accounting
  EXPECT_FALSE(duo.on_commit());
}

TEST(Scheduler, ContextIsSavedAndRestoredAcrossSwitches) {
  os::Scheduler sched(100);
  mem::MemSystem ms;
  cpu::SimpleCpu cpu(ms, false);
  cpu::ArchState a;
  a.set_pc(0x2000);
  a.set_ireg(9, 111);
  cpu::ArchState b;
  b.set_pc(0x3000);
  b.set_ireg(9, 222);
  sched.add_thread(a);
  sched.add_thread(b);

  sched.switch_to_next(cpu);  // -> thread 0
  EXPECT_EQ(cpu.arch().ireg(9), 111u);
  cpu.arch().set_ireg(9, 123);  // thread 0 mutates its state
  sched.switch_to_next(cpu);    // -> thread 1
  EXPECT_EQ(cpu.arch().ireg(9), 222u);
  EXPECT_EQ(cpu.arch().pc(), 0x3000u);
  sched.switch_to_next(cpu);  // -> thread 0 again
  EXPECT_EQ(cpu.arch().ireg(9), 123u);  // mutation survived
}

TEST(Scheduler, SerializationRoundTrip) {
  os::Scheduler sched(7);
  cpu::ArchState ctx;
  ctx.set_ireg(5, 55);
  sched.add_thread(ctx);
  sched.add_thread(ctx);
  sched.thread(0).output = "hello";
  sched.thread(1).finished = true;
  sched.thread(1).exit_code = 3;

  util::ByteWriter w;
  sched.serialize(w);
  os::Scheduler sched2(1);
  util::ByteReader r(w.bytes());
  sched2.deserialize(r);
  EXPECT_EQ(sched2.thread_count(), 2u);
  EXPECT_EQ(sched2.thread(0).output, "hello");
  EXPECT_TRUE(sched2.thread(1).finished);
  EXPECT_EQ(sched2.thread(1).exit_code, 3);
  EXPECT_EQ(sched2.thread(0).ctx.ireg(5), 55u);
}

// Guest-level: yield rotates threads cooperatively.
TEST(GuestThreads, YieldInterleavesDeterministically) {
  Assembler as;
  const Label entry = as.here("main");
  // Each thread prints its id three times, yielding in between.
  for (int round = 0; round < 3; ++round) {
    as.print_int();  // a0 still holds the id: yields preserve the context
    as.yield();
  }
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  cfg.quantum_insts = 1'000'000;  // only yields cause switches
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread({7});
  s.spawn_thread(prog.entry, {8});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "777");
  EXPECT_EQ(s.output(1), "888");
}

TEST(GuestThreads, ExitCodePropagates) {
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(17, reg::a0);
  as.exit_();
  sim::SimConfig cfg;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  (void)s.run(100'000);
  EXPECT_TRUE(s.scheduler().thread(0).finished);
  EXPECT_EQ(s.scheduler().thread(0).exit_code, 17);
}

TEST(GuestThreads, StacksAreDisjoint) {
  Assembler as;
  const Label entry = as.here("main");
  // Push the thread id, spin a bit, pop it back and print.
  as.push(reg::a0);
  as.li(reg::t0, 100);
  const Label spin = as.here("spin");
  as.subq_i(reg::t0, 1, reg::t0);
  as.bne(reg::t0, spin);
  as.pop(reg::a0);
  as.print_int();
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  sim::SimConfig cfg;
  cfg.quantum_insts = 13;  // interleave aggressively
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread({1});
  s.spawn_thread(prog.entry, {2});
  s.spawn_thread(prog.entry, {3});
  const auto rr = s.run(10'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "1");
  EXPECT_EQ(s.output(1), "2");
  EXPECT_EQ(s.output(2), "3");
}

// A two-thread guest where thread 0 appends three 8-byte records through
// sys_write while thread 1 spins under an aggressive preemption quantum.
// Shared by the regression tests below.
Program make_writer_spinner() {
  Assembler as;
  const Label entry = as.here("main");
  const Label spin = as.make_label("spin");
  const Label fail = as.make_label("fail");
  as.bne(reg::a0, spin);  // a0 = role: 0 writes, nonzero spins

  // Writer: alloc an 8-byte staging buffer, open file 0, write it 3 times,
  // printing each sys_write result — the observable record of how many
  // bytes each *logical* call transferred.
  as.li(reg::a0, 8);
  as.li(reg::v0, 1);  // sys_alloc
  as.syscall_();
  as.blt(reg::v0, fail);
  as.mov(reg::v0, reg::s2);
  as.li_u(reg::t0, 0x0807060504030201ull);
  as.stq(reg::t0, 0, reg::s2);

  as.li(reg::a0, 0);          // file id 0
  as.li(reg::a1, 1 | 2 | 4);  // write|create|trunc
  as.li(reg::v0, 3);          // sys_open
  as.syscall_();
  as.blt(reg::v0, fail);
  as.mov(reg::v0, reg::s0);

  for (int i = 0; i < 3; ++i) {
    as.mov(reg::s0, reg::a0);
    as.mov(reg::s2, reg::a1);
    as.li(reg::a2, 8);
    as.li(reg::v0, 5);  // sys_write
    as.syscall_();
    as.print_int_r(reg::v0);
  }
  as.mov(reg::s0, reg::a0);
  as.li(reg::v0, 6);  // sys_close
  as.syscall_();
  as.mov_i(0, reg::a0);
  as.exit_();

  // Spinner: enough work to stay runnable across the writer's parked call.
  as.bind(spin);
  as.li(reg::t0, 400);
  const Label loop = as.here("loop");
  as.subq_i(reg::t0, 1, reg::t0);
  as.bne(reg::t0, loop);
  as.mov_i(0, reg::a0);
  as.exit_();

  as.bind(fail);
  as.mov_i(1, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

// The double-apply regression: write call #2 gets latency + a half-length
// partial, so the call parks mid-quantum, the spinner (and the round-robin
// quantum) preempt the writer, and the parked call completes on wakeup.
// The injection must land exactly once: one short result, one torn record's
// worth of missing bytes, one trace entry — not a re-rolled decision or a
// second application on resume.
TEST(GuestThreads, PreemptedInjectedWriteAppliesExactlyOnce) {
  const Program prog = make_writer_spinner();
  sim::SimConfig cfg;
  cfg.quantum_insts = 3;  // preempt constantly, including around syscalls
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread({0});
  s.spawn_thread(prog.entry, {1});
  s.syscall_injector().add_plan(
      fi::parse_syscall_plan("write@idx:2 latency:600 partial:0.5"));

  const auto rr = s.run(10'000'000);
  ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.scheduler().thread(0).exit_code, 0);
  EXPECT_EQ(s.scheduler().thread(1).exit_code, 0);

  // Results as the guest saw them: full, half, full.
  EXPECT_EQ(s.output(0), "848");
  // Bytes as the file saw them: 8 + 4 + 8. A double-applied partial (or a
  // replayed write) would change the total.
  EXPECT_EQ(s.syscalls().file_content(0).size(), 20u);
  EXPECT_EQ(s.syscalls().injected_calls(), 1u);

  // Exactly one trace entry per logical write, with sequential call indices
  // — the once-per-call counter did not advance across park/resume.
  std::vector<os::SyscallTraceEntry> writes;
  for (const auto& e : s.syscalls().trace(0))
    if (e.sysno == std::uint8_t(os::Sysno::Write)) writes.push_back(e);
  ASSERT_EQ(writes.size(), 3u);
  for (std::size_t i = 0; i < writes.size(); ++i) {
    EXPECT_EQ(writes[i].call_index, i + 1);
    EXPECT_EQ(writes[i].err, 0u);  // a short write is not an error
    EXPECT_EQ(writes[i].injected, i == 1);
  }
}

// The same interleaving with a latency-only plan: preemption around a parked
// call must not change what the guest or the file observes — only ticks.
TEST(GuestThreads, PreemptedLatencyOnlyWriteIsTransparent) {
  const Program prog = make_writer_spinner();
  const auto run = [&](bool inject) {
    sim::SimConfig cfg;
    cfg.quantum_insts = 3;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread({0});
    s.spawn_thread(prog.entry, {1});
    if (inject)
      s.syscall_injector().add_plan(
          fi::parse_syscall_plan("write@idx:2 latency:900"));
    const auto rr = s.run(10'000'000);
    EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
    return std::tuple(s.output(0), s.syscalls().file_content(0).size(),
                      s.syscalls().total_errors(), rr.ticks);
  };
  const auto [golden_out, golden_size, golden_errs, golden_ticks] = run(false);
  const auto [out, size, errs, ticks] = run(true);
  EXPECT_EQ(golden_out, "888");
  EXPECT_EQ(out, golden_out);
  EXPECT_EQ(size, golden_size);
  EXPECT_EQ(errs, golden_errs);
  EXPECT_GT(ticks, golden_ticks);
}

}  // namespace
