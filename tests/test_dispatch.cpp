// Chaos and correctness tests for the NoW dispatch service: a real master
// socket, real forked worker processes over the loopback, and deliberately
// hostile peers. The invariants under test are the tentpole's promises —
// exactly-once experiment completion, bit-equivalent results to a local
// run_campaign, and a master that survives worker death and protocol damage.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/analytics/aggregator.hpp"
#include "campaign/dispatch.hpp"
#include "campaign/observer.hpp"
#include "campaign/runner.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "test_env.hpp"

using namespace gemfi;
using testenv::scaled_ms;
using testenv::scaled_s;

// Sanitized builds run every experiment several times slower, and the forked
// worker processes are sanitized too — on an oversubscribed runner they
// serialize with the master. The early-stop and autoscale tests scale their
// campaign length down under a sanitizer (the invariants are unchanged; the
// stop rule still fires well before the end at the smaller n).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define GEMFI_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define GEMFI_SANITIZED 1
#endif
#endif
#ifndef GEMFI_SANITIZED
#define GEMFI_SANITIZED 0
#endif

namespace {

/// Collects records and forwards each one to an optional hook (which runs on
/// the master's event-loop thread — where chaos is injected mid-campaign).
class CollectingObserver final : public campaign::CampaignObserver {
 public:
  std::function<void(const campaign::ExperimentRecord&)> hook;

  void on_experiment(const campaign::ExperimentRecord& rec) override {
    {
      std::lock_guard lock(mutex_);
      records_.push_back(rec);
    }
    if (hook) hook(rec);  // outside the lock: hooks may call count()
  }

  [[nodiscard]] std::vector<campaign::ExperimentRecord> records() const {
    std::lock_guard lock(mutex_);
    return records_;
  }
  [[nodiscard]] std::size_t count() const {
    std::lock_guard lock(mutex_);
    return records_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<campaign::ExperimentRecord> records_;
};

/// One record, stripped of everything host- or scheduling-dependent (which
/// worker ran it, wall time, full-vs-dirty restore telemetry) and rendered
/// as the deterministic JSON line the determinism suite compares.
std::string normalized_json(campaign::ExperimentRecord rec) {
  rec.worker = 0;
  rec.result.wall_seconds = 0.0;
  rec.result.restore_pages = 0;
  rec.result.restore_bytes = 0;
  return campaign::experiment_record_to_json(rec, /*include_host_timing=*/false);
}

std::vector<std::string> normalized_sorted(std::vector<campaign::ExperimentRecord> recs) {
  std::sort(recs.begin(), recs.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const auto& r : recs) lines.push_back(normalized_json(r));
  return lines;
}

/// Shared calibration (atomic model for speed): calibrate is the expensive
/// part of every dispatch test, so do it once per binary.
struct Calibrated {
  campaign::CampaignConfig cfg;
  apps::AppScale scale;
  campaign::CalibratedApp ca;
};

const Calibrated& calibrated() {
  static const Calibrated c = [] {
    Calibrated c;
    c.cfg.cpu = sim::CpuKind::AtomicSimple;
    c.cfg.campaign_seed = 1234;
    c.ca = campaign::calibrate(apps::build_app("pi"), c.cfg);
    return c;
  }();
  return c;
}

}  // namespace

// The acceptance-criteria test: a 4-worker multi-process campaign over 200
// experiments produces the same records as the in-process runner, modulo
// ordering and host telemetry, with zero lost or duplicated experiments.
TEST(Dispatch, FourWorkerGoldenEquivalence) {
  const Calibrated& c = calibrated();
  const std::size_t n = 200;
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  // Reference: the in-process parallel runner.
  campaign::CampaignConfig local_cfg = c.cfg;
  CollectingObserver local_obs;
  local_cfg.observer = &local_obs;
  local_cfg.workers = 2;
  const auto local_report = campaign::run_campaign(c.ca, faults, local_cfg);
  ASSERT_EQ(local_report.total(), n);

  // Subject: master + 4 forked loopback worker processes.
  campaign::CampaignConfig now_cfg = c.cfg;
  CollectingObserver now_obs;
  now_cfg.observer = &now_obs;
  const auto dr = campaign::run_campaign_service_local(c.ca, c.scale, faults, now_cfg,
                                                       /*workers=*/4, /*slots=*/1);

  EXPECT_EQ(dr.completed, n);
  EXPECT_EQ(dr.workers_joined, 4u);
  EXPECT_EQ(dr.workers_lost, 0u);
  EXPECT_EQ(dr.duplicate_results, 0u);
  EXPECT_FALSE(dr.drained_early);
  EXPECT_GT(dr.checkpoint_bytes_shipped, 0u);
  EXPECT_EQ(std::count(dr.done.begin(), dr.done.end(), 1), std::ptrdiff_t(n));
  EXPECT_EQ(dr.campaign.total(), n);
  EXPECT_EQ(now_obs.count(), n);

  // Exactly-once: every index observed exactly once.
  std::vector<unsigned> seen(n, 0);
  for (const auto& rec : now_obs.records()) ++seen.at(rec.index);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](unsigned k) { return k == 1; }));

  // Record equivalence after sorting by experiment id.
  EXPECT_EQ(normalized_sorted(local_obs.records()), normalized_sorted(now_obs.records()));
  EXPECT_EQ(local_report.counts, dr.campaign.counts);
}

// A worker SIGKILLed mid-campaign: its in-flight experiments are requeued to
// the survivors and every experiment still completes exactly once, with
// records identical to an undisturbed run.
TEST(Dispatch, WorkerSigkillMidCampaignLosesNothing) {
  const Calibrated& c = calibrated();
  const std::size_t n = 120;
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  campaign::CampaignConfig ref_cfg = c.cfg;
  CollectingObserver ref_obs;
  ref_cfg.observer = &ref_obs;
  ref_cfg.workers = 2;
  campaign::run_campaign(c.ca, faults, ref_cfg);

  campaign::CampaignConfig now_cfg = c.cfg;
  CollectingObserver now_obs;
  now_cfg.observer = &now_obs;

  campaign::DispatchConfig dcfg;
  dcfg.worker_timeout_s = scaled_s(10.0);  // EOF detection should beat this by far

  campaign::Master master(c.ca, c.scale, faults, now_cfg, dcfg);
  auto pool = campaign::LocalWorkerPool::spawn(2, master.port(), /*slots=*/1);

  // Kill worker 0 from the master's own loop thread once results are
  // provably flowing — it dies with experiments in flight.
  std::atomic<bool> killed{false};
  now_obs.hook = [&](const campaign::ExperimentRecord&) {
    if (!killed.exchange(true)) pool.kill_worker(0, SIGKILL);
  };

  const auto dr = master.run();
  pool.wait_all();  // reaps the corpse too; its nonzero exit is expected

  EXPECT_TRUE(killed.load());
  EXPECT_EQ(dr.completed, n);
  EXPECT_EQ(dr.workers_lost, 1u);
  EXPECT_GE(dr.workers_joined, 2u);
  EXPECT_EQ(std::count(dr.done.begin(), dr.done.end(), 1), std::ptrdiff_t(n));

  std::vector<unsigned> seen(n, 0);
  for (const auto& rec : now_obs.records()) ++seen.at(rec.index);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](unsigned k) { return k == 1; }));

  EXPECT_EQ(normalized_sorted(ref_obs.records()), normalized_sorted(now_obs.records()));
}

// Hostile peers: raw garbage and a truncated-then-abandoned frame. The
// master must drop them and still finish the campaign with a real worker.
TEST(Dispatch, GarbageAndTruncatedPeersDontCrashMaster) {
  const Calibrated& c = calibrated();
  const std::size_t n = 30;
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  campaign::CampaignConfig now_cfg = c.cfg;
  CollectingObserver now_obs;
  now_cfg.observer = &now_obs;

  campaign::Master master(c.ca, c.scale, faults, now_cfg, {});
  // Fork before starting any threads in this process.
  auto pool = campaign::LocalWorkerPool::spawn(1, master.port(), /*slots=*/1);

  const std::uint16_t port = master.port();
  std::thread hostiles([port] {
    try {
      // Peer 1: pure garbage — rejected at the first bad magic byte.
      auto garbage = net::TcpConn::connect("127.0.0.1", port, 10, 0.05);
      const char junk[] = "GET /experiments HTTP/1.1\r\nHost: not-a-worker\r\n\r\n";
      garbage.send_all(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(junk), sizeof junk - 1));

      // Peer 2: a valid Hello frame truncated mid-payload, then EOF.
      auto truncated = net::TcpConn::connect("127.0.0.1", port, 10, 0.05);
      const auto hello = net::encode_frame(
          1, std::vector<std::uint8_t>{1, 0, 0, 0, 1, 0, 0, 0});
      truncated.send_all(
          std::span<const std::uint8_t>(hello.data(), hello.size() - 3));
      truncated.close();

      // Peer 3: a frame whose announced length exceeds the master's cap.
      auto oversized = net::TcpConn::connect("127.0.0.1", port, 10, 0.05);
      std::vector<std::uint8_t> header = {'W', 'N', 'F', 'G'};  // magic, LE
      header.push_back(1);                                      // type
      for (const std::uint8_t b : {0xFF, 0xFF, 0xFF, 0x7F}) header.push_back(b);
      for (int i = 0; i < 4; ++i) header.push_back(0);  // crc
      oversized.send_all(header);
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } catch (const std::exception&) {
      // A hostile peer being dropped mid-send is the master working.
    }
  });

  const auto dr = master.run();
  hostiles.join();
  pool.wait_all();

  EXPECT_EQ(dr.completed, n);
  EXPECT_GE(dr.frames_rejected, 1u);  // the garbage peer at minimum
  EXPECT_EQ(now_obs.count(), n);
}

// request_drain(): the master stops dispatching, collects what is in
// flight, shuts workers down cleanly, and reports a partial campaign.
TEST(Dispatch, DrainStopsEarlyAndWorkersExitCleanly) {
  const Calibrated& c = calibrated();
  const std::size_t n = 100;
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  campaign::CampaignConfig now_cfg = c.cfg;
  CollectingObserver now_obs;
  now_cfg.observer = &now_obs;

  campaign::Master master(c.ca, c.scale, faults, now_cfg, {});
  auto pool = campaign::LocalWorkerPool::spawn(2, master.port(), /*slots=*/1);

  std::atomic<std::size_t> observed{0};
  now_obs.hook = [&](const campaign::ExperimentRecord&) {
    if (observed.fetch_add(1) + 1 == 3) master.request_drain();
  };

  const auto dr = master.run();
  EXPECT_EQ(pool.wait_all(), 0);  // both workers got Shutdown and exited 0

  EXPECT_TRUE(dr.drained_early);
  EXPECT_GE(dr.completed, 3u);
  EXPECT_LT(dr.completed, n);
  EXPECT_EQ(std::count(dr.done.begin(), dr.done.end(), 1),
            std::ptrdiff_t(dr.completed));
  // Partial but still exactly-once and deterministic per record.
  std::vector<unsigned> seen(n, 0);
  for (const auto& rec : now_obs.records()) ++seen.at(rec.index);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](unsigned k) { return k <= 1; }));
}

// A trickling peer — one valid Hello, then a frame header dripped one byte
// at a time forever — used to reset the master's idle clock on every byte
// and squat a connection indefinitely. With frame-level liveness the drip
// only buys the bounded partial-frame grace: the peer is reaped, counted in
// peers_timed_out, and the campaign still completes with the real worker.
TEST(Dispatch, DripFeedingPeerIsReapedNotImmortal) {
  const Calibrated& c = calibrated();
  const std::size_t n = 40;
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  campaign::CampaignConfig now_cfg = c.cfg;
  CollectingObserver now_obs;
  now_cfg.observer = &now_obs;

  // Workers heartbeat every 1s, so 2.5s of idle means a dead (or hostile)
  // peer; the dripped partial frame only adds the 0.5s grace. The observer
  // hook below paces the campaign so it always outlives the ~3s reap point.
  campaign::DispatchConfig dcfg;
  dcfg.worker_timeout_s = scaled_s(2.5);
  dcfg.frame_grace_s = scaled_s(0.5);
  now_obs.hook = [](const campaign::ExperimentRecord&) {
    std::this_thread::sleep_for(scaled_ms(100));
  };

  campaign::Master master(c.ca, c.scale, faults, now_cfg, dcfg);
  auto pool = campaign::LocalWorkerPool::spawn(1, master.port(), /*slots=*/1);

  const std::uint16_t port = master.port();
  std::atomic<bool> dripping{true};
  std::thread dripper([port, &dripping] {
    try {
      auto conn = net::TcpConn::connect("127.0.0.1", port, 10, 0.05);
      // A complete, valid Hello: the peer is now a bona fide worker whose
      // silence would be measured — then a valid Heartbeat frame dripped one
      // byte at a time, never finished, to hold a partial frame in flight.
      const auto hello = net::encode_frame(
          1, std::vector<std::uint8_t>{2, 0, 0, 0, 1, 0, 0, 0});
      conn.send_all(hello);
      const auto drip = net::encode_frame(5, std::vector<std::uint8_t>(12, 0));
      std::size_t sent = 0;
      while (dripping.load()) {
        if (sent + 1 < drip.size())  // never complete the frame
          conn.send_all(std::span<const std::uint8_t>(&drip[sent++], 1));
        std::this_thread::sleep_for(scaled_ms(150));
      }
    } catch (const std::exception&) {
      // The master closing the drip-feed connection is the fix working.
    }
  });

  const auto dr = master.run();
  dripping.store(false);
  dripper.join();
  pool.wait_all();

  EXPECT_EQ(dr.completed, n);
  EXPECT_GE(dr.peers_timed_out, 1u);
  EXPECT_EQ(now_obs.count(), n);
}

// Two masters in one process, both with handle_sigint: one SIGINT must
// drain BOTH loops (the old single-global handler slot let the second
// registration clobber the first, leaving one master uninterruptible).
TEST(Dispatch, SigintDrainsEveryConcurrentMaster) {
  const Calibrated& c = calibrated();
  const std::size_t n = 400;  // big enough that neither finishes first
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  campaign::CampaignConfig cfg_a = c.cfg;
  campaign::CampaignConfig cfg_b = c.cfg;
  CollectingObserver obs_a, obs_b;
  cfg_a.observer = &obs_a;
  cfg_b.observer = &obs_b;
  campaign::DispatchConfig dcfg;
  dcfg.handle_sigint = true;

  campaign::Master master_a(c.ca, c.scale, faults, cfg_a, dcfg);
  campaign::Master master_b(c.ca, c.scale, faults, cfg_b, dcfg);
  // Fork every worker before this process spawns threads.
  auto pool_a = campaign::LocalWorkerPool::spawn(1, master_a.port(), /*slots=*/1);
  auto pool_b = campaign::LocalWorkerPool::spawn(1, master_b.port(), /*slots=*/1);

  campaign::DispatchReport dr_a, dr_b;
  std::thread run_a([&] { dr_a = master_a.run(); });
  std::thread run_b([&] { dr_b = master_b.run(); });

  // Interrupt once both campaigns are provably mid-flight.
  while (obs_a.count() < 3 || obs_b.count() < 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  raise(SIGINT);

  run_a.join();
  run_b.join();
  EXPECT_EQ(pool_a.wait_all(), 0);
  EXPECT_EQ(pool_b.wait_all(), 0);

  EXPECT_TRUE(dr_a.drained_early);
  EXPECT_TRUE(dr_b.drained_early);
  EXPECT_LT(dr_a.completed, n);
  EXPECT_LT(dr_b.completed, n);
}

// The same campaign over the AF_UNIX transport: identical records, identical
// exactly-once guarantees — 'gfnw' framing is transport-agnostic.
TEST(Dispatch, UnixTransportGoldenEquivalence) {
  const Calibrated& c = calibrated();
  const std::size_t n = 60;
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  campaign::CampaignConfig tcp_cfg = c.cfg;
  CollectingObserver tcp_obs;
  tcp_cfg.observer = &tcp_obs;
  const auto tcp_dr = campaign::run_campaign_service_local(c.ca, c.scale, faults,
                                                           tcp_cfg, 2, /*slots=*/1);
  ASSERT_EQ(tcp_dr.completed, n);

  campaign::CampaignConfig ux_cfg = c.cfg;
  CollectingObserver ux_obs;
  ux_cfg.observer = &ux_obs;
  campaign::DispatchConfig dcfg;
  dcfg.unix_path = (std::filesystem::temp_directory_path() /
                    ("gemfi_dispatch_ux_" + std::to_string(::getpid()) + ".sock"))
                       .string();
  const auto ux_dr = campaign::run_campaign_service_local(c.ca, c.scale, faults,
                                                          ux_cfg, 2, /*slots=*/1, dcfg);

  EXPECT_EQ(ux_dr.completed, n);
  EXPECT_EQ(ux_dr.workers_lost, 0u);
  EXPECT_EQ(ux_dr.duplicate_results, 0u);
  EXPECT_EQ(ux_obs.count(), n);
  EXPECT_EQ(normalized_sorted(tcp_obs.records()), normalized_sorted(ux_obs.records()));
  EXPECT_EQ(tcp_dr.campaign.counts, ux_dr.campaign.counts);
  // The listener's socket file is unlinked when the master goes away.
  EXPECT_FALSE(std::filesystem::exists(dcfg.unix_path));
}

// The load-bearing property of the sequential stop rule: the stop index and
// the stopped_early summary are byte-identical across worker counts,
// schedulings and transports, because the rule is evaluated on index-ordered
// prefixes — not arrival order.
TEST(Dispatch, EarlyStopDeterministicAcrossWorkerCountsAndTransports) {
  const Calibrated& c = calibrated();
  const std::size_t n = GEMFI_SANITIZED ? 120 : 300;
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  const auto run_with = [&](unsigned workers, const std::string& unix_path) {
    campaign::CampaignConfig cfg = c.cfg;
    campaign::DispatchConfig dcfg;
    dcfg.stop = campaign::parse_stop_ci("0.08@0.95");
    dcfg.unix_path = unix_path;
    return campaign::run_campaign_service_local(c.ca, c.scale, faults, cfg, workers,
                                                /*slots=*/1, dcfg);
  };

  const auto one = run_with(1, "");
  const auto three = run_with(3, "");
  const auto ux = run_with(2, (std::filesystem::temp_directory_path() /
                               ("gemfi_dispatch_stop_" + std::to_string(::getpid()) +
                                ".sock"))
                                  .string());

  ASSERT_TRUE(one.stopped_early);
  ASSERT_TRUE(three.stopped_early);
  ASSERT_TRUE(ux.stopped_early);
  EXPECT_TRUE(one.drained_early);
  EXPECT_GT(one.stop_index, 0u);
  EXPECT_LT(one.stop_index, n);
  EXPECT_EQ(one.stop_index, three.stop_index);
  EXPECT_EQ(one.stop_index, ux.stop_index);
  EXPECT_FALSE(one.aggregate_summary.empty());
  EXPECT_EQ(one.aggregate_summary, three.aggregate_summary);
  EXPECT_EQ(one.aggregate_summary, ux.aggregate_summary);

  // The stop saves real dispatch work: completions cover the prefix plus the
  // drained in-flight tail, and the cancelled queue accounts for the rest.
  EXPECT_GE(one.completed, one.stop_index);
  EXPECT_LT(one.completed, n);
  EXPECT_EQ(one.completed + one.cancelled, n);
}

// Elastic fleet: a queue-heavy campaign starting from one worker grows the
// fleet through the spawn callback, completes exactly once, and reports the
// scaling actions. Hysteresis (no spawn/retire oscillation) is unit-tested
// in test_analytics; this is the end-to-end growth path.
TEST(Dispatch, AutoscaleGrowsFleetAndCampaignCompletes) {
  const Calibrated& c = calibrated();
  const std::size_t n = GEMFI_SANITIZED ? 100 : 200;
  const auto faults =
      campaign::seeded_fault_set(c.cfg.campaign_seed, n, c.ca.kernel_fetches);

  campaign::CampaignConfig cfg = c.cfg;
  CollectingObserver obs;
  cfg.observer = &obs;
  campaign::DispatchConfig dcfg;
  dcfg.autoscale.min_workers = 1;
  dcfg.autoscale.max_workers = 3;
  dcfg.autoscale.high_watermark = 2.0;  // a 200-deep queue on 1 slot: grow fast
  dcfg.autoscale.cooldown_s = 0.1;
  const auto dr = campaign::run_campaign_service_local(c.ca, c.scale, faults, cfg,
                                                       /*workers=*/1, /*slots=*/1, dcfg);

  EXPECT_EQ(dr.completed, n);
  EXPECT_GE(dr.workers_spawned, 1u);
  EXPECT_GE(dr.workers_joined, 2u);
  EXPECT_EQ(dr.duplicate_results, 0u);
  EXPECT_EQ(obs.count(), n);
  std::vector<unsigned> seen(n, 0);
  for (const auto& rec : obs.records()) ++seen.at(rec.index);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](unsigned k) { return k == 1; }));
}

// The master gives up with a clear error if no worker ever joins.
TEST(Dispatch, NoWorkerEverJoinsThrows) {
  const Calibrated& c = calibrated();
  const auto faults = campaign::seeded_fault_set(c.cfg.campaign_seed, 4,
                                                 c.ca.kernel_fetches);
  campaign::DispatchConfig dcfg;
  dcfg.first_worker_timeout_s = scaled_s(0.3);
  campaign::CampaignConfig cfg = c.cfg;
  campaign::Master master(c.ca, c.scale, faults, cfg, dcfg);
  EXPECT_THROW(master.run(), std::runtime_error);
}
