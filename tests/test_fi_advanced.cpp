// Advanced fault-injection behavior: interplay with speculation (squashed
// wrong-path faults), the detailed->atomic model-switch equivalence, armed
// memory-transaction faults, intermittent/permanent faults, multithreaded
// thread-targeting, and paper-expected per-app invariants (Sec. IV-B).
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "campaign/runner.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

// ---- mem-transaction fault arming ----

TEST(MemFaults, ArmAtNonMemoryInstructionHitNextTransaction) {
  // The trigger instruction is an ALU op; the fault must fire on the next
  // load that follows it.
  Assembler as;
  const DataRef cell = as.data_u64(std::uint64_t(64));
  const Label entry = as.here("main");
  as.la(reg::s2, cell);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (int i = 0; i < 9; ++i) as.addq_i(reg::t0, 1, reg::t0);  // seq 1..9: ALU
  as.ldq(reg::s0, 0, reg::s2);                                 // seq 10: the load
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "LoadStoreInjectedFault Inst:3 Flip:0 Threadid:0 system.cpu0 occ:1")});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "65");  // 64 ^ 1
  ASSERT_EQ(s.fault_manager().states().size(), 1u);
  EXPECT_EQ(s.fault_manager().states()[0].affected_seq, 10u);
}

TEST(MemFaults, OccurrenceCountLimitsTransactions) {
  Assembler as;
  const DataRef cells = as.data_zeros(4 * 8);
  const Label entry = as.here("main");
  as.la(reg::s2, cells);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  // Four stores of value 10 to separate cells.
  as.mov_i(10, reg::t1);
  for (int i = 0; i < 4; ++i) as.stq(reg::t1, i * 8, reg::s2);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (int i = 0; i < 4; ++i) {
    as.ldq(reg::a0, i * 8, reg::s2);
    as.print_int();
    as.print_str(" ");
  }
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  // occ:2 from the first store: first two stores corrupted (10^4=14).
  s.fault_manager().load_faults({fi::parse_fault(
      "LoadStoreInjectedFault Inst:1 Flip:2 Threadid:0 system.cpu0 occ:2")});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "14 14 10 10 ");
}

// ---- intermittent / permanent register faults ----

TEST(PersistentFaults, PermanentStuckAtDominatesTransient) {
  // Guest: accumulate s0 += 1 in a loop; s3 is stuck at all-ones from the
  // midpoint, and s3 is added once at the end.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::s0, 0);
  as.li(reg::s3, 5);
  as.li(reg::s1, 100);
  const Label loop = as.here("loop");
  as.addq_i(reg::s0, 1, reg::s0);
  as.subq_i(reg::s1, 1, reg::s1);
  as.bne(reg::s1, loop);
  as.addq(reg::s0, reg::s3, reg::s0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  // Transient flip of s3 bit 1 early: 5 -> 7, result 107.
  {
    sim::SimConfig cfg;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    s.fault_manager().load_faults({fi::parse_fault(
        "RegisterInjectedFault Inst:10 Flip:1 Threadid:0 system.cpu0 occ:1 int 12")});
    (void)s.run(10'000'000);
    EXPECT_EQ(s.output(0), "107");
  }
  // Permanent stuck-at-one of s3: result 100 + (-1) = 99.
  {
    sim::SimConfig cfg;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    s.fault_manager().load_faults({fi::parse_fault(
        "RegisterInjectedFault Inst:10 AllOne Threadid:0 system.cpu0 occ:perm int 12")});
    (void)s.run(10'000'000);
    EXPECT_EQ(s.output(0), "99");
  }
}

// ---- model-switch equivalence (Sec. IV-B-1 methodology) ----

TEST(ModelSwitch, SwitchToAtomicPreservesOutcomes) {
  campaign::CampaignConfig base;
  base.cpu = sim::CpuKind::Pipelined;
  base.workers = 1;
  base.use_checkpoint = true;

  auto with_switch = base;
  with_switch.switch_to_atomic_after_fault = true;
  auto without_switch = base;
  without_switch.switch_to_atomic_after_fault = false;

  const auto ca = campaign::calibrate(apps::build_app("pi"), base);
  util::Rng rng(321);
  unsigned switched_runs = 0;
  for (int i = 0; i < 25; ++i) {
    const fi::Fault f = campaign::random_fault_any(rng, ca.kernel_fetches);
    const auto a = campaign::run_experiment(ca, f, with_switch);
    const auto b = campaign::run_experiment(ca, f, without_switch);
    EXPECT_EQ(a.classification.outcome, b.classification.outcome) << f.to_line();
    // The switch only saves time; simulated work must not grow.
    if (a.sim_ticks < b.sim_ticks) ++switched_runs;
  }
  EXPECT_GT(switched_runs, 0u);  // the optimization actually kicked in
}

// ---- speculation interplay ----

TEST(Speculation, WrongPathFaultsAreSquashedAndNonPropagated) {
  // Run many fetch-stage faults on the pipelined model over a
  // mispredict-heavy kernel; some must land on squashed wrong-path
  // instructions and be classified non-propagated via the squash path.
  Assembler as;
  const Label entry = as.here("main");
  as.li_u(reg::s1, 0xabcdef12345);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::s0, 300);
  const Label loop = as.here("loop");
  const Label skip = as.make_label("skip");
  as.li_u(reg::t1, 6364136223846793005ull);
  as.mulq(reg::s1, reg::t1, reg::s1);
  as.srl_i(reg::s1, 33, reg::t0);
  as.blbs(reg::t0, skip);  // ~50% taken: constant mispredictions
  as.addq_i(reg::s2, 1, reg::s2);
  as.bind(skip);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s2);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  unsigned squashed_cases = 0;
  util::Rng rng(777);
  for (int i = 0; i < 120; ++i) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::Pipelined;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    fi::Fault f;
    f.location = fi::FaultLocation::Fetch;
    f.time = 1 + rng.below(2800);
    f.behavior = fi::FaultBehavior::Flip;
    f.operand = rng.below(32);
    s.fault_manager().load_faults({f});
    (void)s.run(10'000'000);
    const auto& st = s.fault_manager().states()[0];
    if (st.applied > 0 && st.squashed) {
      ++squashed_cases;
      EXPECT_FALSE(st.propagated());
    }
  }
  // With ~50% mispredictions, a solid fraction of uniformly timed fetch
  // faults must land on wrong-path instructions.
  EXPECT_GT(squashed_cases, 5u);
}

// ---- thread targeting under preemption ----

TEST(ThreadTargeting, FaultFollowsThreadAcrossContextSwitches) {
  Assembler as;
  const Label entry = as.here("main");
  as.mov(reg::a0, reg::s2);
  as.fi_activate();
  as.li(reg::s0, 0);
  as.li(reg::s1, 400);
  const Label loop = as.here("loop");
  as.addq_i(reg::s0, 1, reg::s0);
  as.subq_i(reg::s1, 1, reg::s1);
  as.bne(reg::s1, loop);
  as.mov(reg::s2, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  for (const int victim : {0, 1, 2}) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::Pipelined;
    cfg.quantum_insts = 37;  // aggressive preemption
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread({0});
    s.spawn_thread(prog.entry, {1});
    s.spawn_thread(prog.entry, {2});
    char line[160];
    std::snprintf(line, sizeof line,
                  "RegisterInjectedFault Inst:100 Flip:9 Threadid:%d system.cpu0 "
                  "occ:1 int 9",
                  victim);
    s.fault_manager().load_faults({fi::parse_fault(line)});
    const auto rr = s.run(100'000'000);
    ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
    for (int t = 0; t < 3; ++t) {
      if (t == victim)
        EXPECT_NE(s.output(std::uint64_t(t)), "400") << "victim " << victim;
      else
        EXPECT_EQ(s.output(std::uint64_t(t)), "400") << "victim " << victim;
    }
  }
}

// ---- paper-expected per-app invariants (Sec. IV-B-2) ----

TEST(PaperInvariants, DeblockFpRegisterFaultsAreAlwaysBenign) {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.workers = 2;
  const auto ca = campaign::calibrate(apps::build_app("deblock"), cfg);
  util::Rng rng(42);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 40; ++i)
    faults.push_back(campaign::random_fault(rng, fi::FaultLocation::FpReg,
                                            ca.kernel_fetches));
  const auto report = campaign::run_campaign(ca, faults, cfg);
  // No FP instructions: FP faults can never propagate (paper: 100% benign).
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::Crashed)], 0u);
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::SDC)], 0u);
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::Correct)], 0u);
}

TEST(PaperInvariants, PiHasNoMemoryTransactionsInKernel) {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.workers = 2;
  const auto ca = campaign::calibrate(apps::build_app("pi"), cfg);
  util::Rng rng(43);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 25; ++i)
    faults.push_back(campaign::random_fault(rng, fi::FaultLocation::LoadStore,
                                            ca.kernel_fetches));
  const auto report = campaign::run_campaign(ca, faults, cfg);
  // "PI performs almost no data accesses from memory": in our kernel,
  // none at all, so load/store faults never manifest.
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::NonPropagated)], faults.size());
}

TEST(PaperInvariants, PcFaultsAreMostlyFatal) {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.workers = 2;
  const auto ca = campaign::calibrate(apps::build_app("knapsack"), cfg);
  util::Rng rng(44);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 40; ++i)
    faults.push_back(campaign::random_fault(rng, fi::FaultLocation::PC,
                                            ca.kernel_fetches));
  const auto report = campaign::run_campaign(ca, faults, cfg);
  // "Fatal" = trap or fault-induced livelock (Timeout); the paper folds the
  // two into Crashed, we count them separately.
  EXPECT_GT(report.fraction(apps::Outcome::Crashed) +
                report.fraction(apps::Outcome::Timeout),
            0.5);
}

TEST(PaperInvariants, UnusedInstructionBitsAreAlwaysStrictlyCorrect) {
  // Faults in the SBZ bits [15:13] of register-form operates never change
  // semantics (paper: "experiments affecting unused bits always resulted
  // into strict correct results"). Verify at the decoder level across all
  // integer operate instructions.
  for (const auto op : {isa::Opcode::INTA, isa::Opcode::INTL, isa::Opcode::INTS,
                        isa::Opcode::INTM}) {
    for (unsigned func = 0; func < 0x80; ++func) {
      const isa::Word w = isa::encode_operate(op, func, 3, 5, 7);
      const isa::Decoded base = isa::decode(w);
      if (!base.valid) continue;
      for (unsigned bit = 13; bit <= 15; ++bit) {
        const isa::Decoded flipped = isa::decode(w ^ (1u << bit));
        EXPECT_EQ(flipped.valid, base.valid);
        EXPECT_EQ(flipped.func, base.func);
        EXPECT_EQ(flipped.ra, base.ra);
        EXPECT_EQ(flipped.rb, base.rb);
        EXPECT_EQ(flipped.rc, base.rc);
        EXPECT_EQ(flipped.is_literal, base.is_literal);
      }
    }
  }
}

}  // namespace
