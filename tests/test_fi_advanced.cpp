// Advanced fault-injection behavior: interplay with speculation (squashed
// wrong-path faults), the detailed->atomic model-switch equivalence, armed
// memory-transaction faults, intermittent/permanent faults, multithreaded
// thread-targeting, and paper-expected per-app invariants (Sec. IV-B).
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "campaign/runner.hpp"
#include "isa/encoding.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

// ---- mem-transaction fault arming ----

TEST(MemFaults, ArmAtNonMemoryInstructionHitNextTransaction) {
  // The trigger instruction is an ALU op; the fault must fire on the next
  // load that follows it.
  Assembler as;
  const DataRef cell = as.data_u64(std::uint64_t(64));
  const Label entry = as.here("main");
  as.la(reg::s2, cell);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (int i = 0; i < 9; ++i) as.addq_i(reg::t0, 1, reg::t0);  // seq 1..9: ALU
  as.ldq(reg::s0, 0, reg::s2);                                 // seq 10: the load
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "LoadStoreInjectedFault Inst:3 Flip:0 Threadid:0 system.cpu0 occ:1")});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "65");  // 64 ^ 1
  ASSERT_EQ(s.fault_manager().states().size(), 1u);
  EXPECT_EQ(s.fault_manager().states()[0].affected_seq, 10u);
}

TEST(MemFaults, OccurrenceCountLimitsTransactions) {
  Assembler as;
  const DataRef cells = as.data_zeros(4 * 8);
  const Label entry = as.here("main");
  as.la(reg::s2, cells);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  // Four stores of value 10 to separate cells.
  as.mov_i(10, reg::t1);
  for (int i = 0; i < 4; ++i) as.stq(reg::t1, i * 8, reg::s2);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (int i = 0; i < 4; ++i) {
    as.ldq(reg::a0, i * 8, reg::s2);
    as.print_int();
    as.print_str(" ");
  }
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  // occ:2 from the first store: first two stores corrupted (10^4=14).
  s.fault_manager().load_faults({fi::parse_fault(
      "LoadStoreInjectedFault Inst:1 Flip:2 Threadid:0 system.cpu0 occ:2")});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "14 14 10 10 ");
}

// ---- intermittent / permanent register faults ----

TEST(PersistentFaults, PermanentStuckAtDominatesTransient) {
  // Guest: accumulate s0 += 1 in a loop; s3 is stuck at all-ones from the
  // midpoint, and s3 is added once at the end.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::s0, 0);
  as.li(reg::s3, 5);
  as.li(reg::s1, 100);
  const Label loop = as.here("loop");
  as.addq_i(reg::s0, 1, reg::s0);
  as.subq_i(reg::s1, 1, reg::s1);
  as.bne(reg::s1, loop);
  as.addq(reg::s0, reg::s3, reg::s0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  // Transient flip of s3 bit 1 early: 5 -> 7, result 107.
  {
    sim::SimConfig cfg;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    s.fault_manager().load_faults({fi::parse_fault(
        "RegisterInjectedFault Inst:10 Flip:1 Threadid:0 system.cpu0 occ:1 int 12")});
    (void)s.run(10'000'000);
    EXPECT_EQ(s.output(0), "107");
  }
  // Permanent stuck-at-one of s3: result 100 + (-1) = 99.
  {
    sim::SimConfig cfg;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    s.fault_manager().load_faults({fi::parse_fault(
        "RegisterInjectedFault Inst:10 AllOne Threadid:0 system.cpu0 occ:perm int 12")});
    (void)s.run(10'000'000);
    EXPECT_EQ(s.output(0), "99");
  }
}

TEST(PersistentFaults, OccurrenceWindowNearPermanentDoesNotOverflow) {
  // Regression: with occurrences = kPermanent - 1 the trigger-window bound
  // `time + occurrences` used to wrap around and the fault never fired; the
  // bound must saturate instead, making a near-kPermanent count behave like
  // a permanent fault.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(100, reg::s0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (int i = 0; i < 10; ++i) as.addq_i(reg::t0, 1, reg::t0);
  as.mov(reg::s0, reg::s1);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s1);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  fi::Fault f;
  f.location = fi::FaultLocation::IntReg;
  f.reg = 9;  // s0
  f.time = 2;
  f.behavior = fi::FaultBehavior::Flip;
  f.operand = 3;
  f.occurrences = fi::kPermanent - 1;
  s.fault_manager().load_faults({f});
  const auto rr = s.run(1'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_TRUE(s.fault_manager().any_applied());
  EXPECT_EQ(s.output(0), "108");  // 100 ^ 8
}

// ---- stuck-at / intermittent / attack models ----

class ModelFaultsBothCpus : public ::testing::TestWithParam<sim::CpuKind> {};

TEST_P(ModelFaultsBothCpus, StuckAtReassertsAfterOverwrite) {
  // Guest zeroes s3 and immediately accumulates it, 10 times. A transient
  // write would be wiped by the `li s3, 0`; a permanent stuck-at-1 of bit 1
  // must re-assert at every instruction boundary, so every addq sees 2.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::s0, 0);
  as.li(reg::s1, 10);
  const Label loop = as.here("loop");
  as.li(reg::s3, 0);                     // overwrite the faulted register
  as.addq(reg::s0, reg::s3, reg::s0);    // ...but the defect re-asserts
  as.subq_i(reg::s1, 1, reg::s1);
  as.bne(reg::s1, loop);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = GetParam();
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "RegisterInjectedFault Inst:1 StuckAt1:0x2 Threadid:0 system.cpu0 occ:perm int 12")});
  const auto rr = s.run(10'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "20");
  // A live sticky fault is never classified overwritten.
  EXPECT_FALSE(s.fault_manager().states()[0].overwritten);
  EXPECT_TRUE(s.fault_manager().any_propagated());
}

TEST_P(ModelFaultsBothCpus, SkipAttackRemovesInstructions) {
  // s0 = 100 plus eight increments = 108; skipping two of them gives 106.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(100, reg::s0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  for (int i = 0; i < 8; ++i) as.addq_i(reg::s0, 1, reg::s0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = GetParam();
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "SkipInjectedFault Inst:3 Threadid:0 system.cpu0 occ:2")});
  const auto rr = s.run(10'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  EXPECT_EQ(s.output(0), "106");
  EXPECT_EQ(s.fault_manager().states()[0].applied, 2u);
}

TEST_P(ModelFaultsBothCpus, PcWindowRestrictsSkipAttack) {
  // Same probe as above; code starts at 0x2000, so the eight addq_i sit at
  // 0x200c..0x2028. A window over exactly one of them must skip that one
  // (107); a window outside the code must never fire (108).
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(100, reg::s0);   // 0x2000
  as.mov_i(0, reg::a0);     // 0x2004
  as.fi_activate();         // 0x2008
  for (int i = 0; i < 8; ++i) as.addq_i(reg::s0, 1, reg::s0);  // 0x200c + 4i
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  {
    sim::SimConfig cfg;
    cfg.cpu = GetParam();
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    s.fault_manager().load_faults({fi::parse_fault(
        "SkipInjectedFault Inst:1 Threadid:0 system.cpu0 occ:1 pcwin:0x2014-0x2014")});
    const auto rr = s.run(10'000'000);
    EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
    EXPECT_EQ(s.output(0), "107");
    EXPECT_EQ(s.fault_manager().states()[0].applied, 1u);
  }
  {
    sim::SimConfig cfg;
    cfg.cpu = GetParam();
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    s.fault_manager().load_faults({fi::parse_fault(
        "SkipInjectedFault Inst:1 Threadid:0 system.cpu0 occ:1 pcwin:0x100-0x104")});
    const auto rr = s.run(10'000'000);
    EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
    EXPECT_EQ(s.output(0), "108");
    EXPECT_FALSE(s.fault_manager().any_applied());
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ModelFaultsBothCpus,
                         ::testing::Values(sim::CpuKind::AtomicSimple,
                                           sim::CpuKind::Pipelined),
                         [](const auto& info) {
                           return info.param == sim::CpuKind::AtomicSimple ? "Atomic"
                                                                           : "Pipelined";
                         });

TEST(IntermittentFaults, DutyCycleGatesApplicationsAtWindowBoundaries) {
  // Unit-level check of the duty phase arithmetic: a fetch-stage fault with
  // time 2 and duty:1/4 is active exactly at fi_seq 2, 6, 10, ... — the
  // first fetch of each period — and inactive at every boundary around them.
  fi::FaultManager fm;
  fm.load_faults({fi::parse_fault(
      "FetchStageInjectedFault Inst:2 Flip:13 Threadid:0 system.cpu0 occ:perm duty:1/4")});
  fm.on_fi_activate(0x1000, 0);
  const std::uint32_t word = isa::encode_operate(isa::Opcode::INTA, 0x20, 1, 1, 1);
  std::vector<std::uint64_t> applied_at;
  for (std::uint64_t seq = 1; seq <= 14; ++seq) {
    const auto before = fm.states()[0].applied;
    (void)fm.on_fetch(0x2000, word);
    if (fm.states()[0].applied > before) applied_at.push_back(seq);
  }
  EXPECT_EQ(applied_at, (std::vector<std::uint64_t>{2, 6, 10, 14}));
}

TEST(IntermittentFaults, DutyFractionScalesApplicationCount) {
  // Behavioral check over a real guest: a duty:2/8 intermittent fetch fault
  // on a harmless SBZ bit applies on ~1/4 of the kernel's fetches.
  Assembler as;
  const Label entry = as.here("main");
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::t1, 3);
  for (int i = 0; i < 80; ++i) as.addq(reg::t1, reg::t1, reg::t0);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.mov_i(0, reg::a0);
  as.exit_();

  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, as.finalize(entry));
  s.spawn_main_thread();
  s.fault_manager().load_faults({fi::parse_fault(
      "FetchStageInjectedFault Inst:1 Flip:13 Threadid:0 system.cpu0 occ:perm duty:2/8")});
  const auto rr = s.run(10'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  const auto applied = s.fault_manager().states()[0].applied;
  EXPECT_GE(applied, 18u);
  EXPECT_LE(applied, 24u);
}

// ---- model-switch equivalence (Sec. IV-B-1 methodology) ----

TEST(ModelSwitch, SwitchToAtomicPreservesOutcomes) {
  campaign::CampaignConfig base;
  base.cpu = sim::CpuKind::Pipelined;
  base.workers = 1;
  base.use_checkpoint = true;

  auto with_switch = base;
  with_switch.switch_to_atomic_after_fault = true;
  auto without_switch = base;
  without_switch.switch_to_atomic_after_fault = false;

  const auto ca = campaign::calibrate(apps::build_app("pi"), base);
  util::Rng rng(321);
  unsigned switched_runs = 0;
  for (int i = 0; i < 25; ++i) {
    const fi::Fault f = campaign::random_fault_any(rng, ca.kernel_fetches);
    const auto a = campaign::run_experiment(ca, f, with_switch);
    const auto b = campaign::run_experiment(ca, f, without_switch);
    EXPECT_EQ(a.classification.outcome, b.classification.outcome) << f.to_line();
    // The switch only saves time; simulated work must not grow.
    if (a.sim_ticks < b.sim_ticks) ++switched_runs;
  }
  EXPECT_GT(switched_runs, 0u);  // the optimization actually kicked in
}

// ---- speculation interplay ----

TEST(Speculation, WrongPathFaultsAreSquashedAndNonPropagated) {
  // Run many fetch-stage faults on the pipelined model over a
  // mispredict-heavy kernel; some must land on squashed wrong-path
  // instructions and be classified non-propagated via the squash path.
  Assembler as;
  const Label entry = as.here("main");
  as.li_u(reg::s1, 0xabcdef12345);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.li(reg::s0, 300);
  const Label loop = as.here("loop");
  const Label skip = as.make_label("skip");
  as.li_u(reg::t1, 6364136223846793005ull);
  as.mulq(reg::s1, reg::t1, reg::s1);
  as.srl_i(reg::s1, 33, reg::t0);
  as.blbs(reg::t0, skip);  // ~50% taken: constant mispredictions
  as.addq_i(reg::s2, 1, reg::s2);
  as.bind(skip);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.mov_i(0, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s2);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  unsigned squashed_cases = 0;
  util::Rng rng(777);
  for (int i = 0; i < 120; ++i) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::Pipelined;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    fi::Fault f;
    f.location = fi::FaultLocation::Fetch;
    f.time = 1 + rng.below(2800);
    f.behavior = fi::FaultBehavior::Flip;
    f.operand = rng.below(32);
    s.fault_manager().load_faults({f});
    (void)s.run(10'000'000);
    const auto& st = s.fault_manager().states()[0];
    if (st.applied > 0 && st.squashed) {
      ++squashed_cases;
      EXPECT_FALSE(st.propagated());
    }
  }
  // With ~50% mispredictions, a solid fraction of uniformly timed fetch
  // faults must land on wrong-path instructions.
  EXPECT_GT(squashed_cases, 5u);
}

// ---- thread targeting under preemption ----

TEST(ThreadTargeting, FaultFollowsThreadAcrossContextSwitches) {
  Assembler as;
  const Label entry = as.here("main");
  as.mov(reg::a0, reg::s2);
  as.fi_activate();
  as.li(reg::s0, 0);
  as.li(reg::s1, 400);
  const Label loop = as.here("loop");
  as.addq_i(reg::s0, 1, reg::s0);
  as.subq_i(reg::s1, 1, reg::s1);
  as.bne(reg::s1, loop);
  as.mov(reg::s2, reg::a0);
  as.fi_activate();
  as.print_int_r(reg::s0);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  for (const int victim : {0, 1, 2}) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::Pipelined;
    cfg.quantum_insts = 37;  // aggressive preemption
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread({0});
    s.spawn_thread(prog.entry, {1});
    s.spawn_thread(prog.entry, {2});
    char line[160];
    std::snprintf(line, sizeof line,
                  "RegisterInjectedFault Inst:100 Flip:9 Threadid:%d system.cpu0 "
                  "occ:1 int 9",
                  victim);
    s.fault_manager().load_faults({fi::parse_fault(line)});
    const auto rr = s.run(100'000'000);
    ASSERT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
    for (int t = 0; t < 3; ++t) {
      if (t == victim)
        EXPECT_NE(s.output(std::uint64_t(t)), "400") << "victim " << victim;
      else
        EXPECT_EQ(s.output(std::uint64_t(t)), "400") << "victim " << victim;
    }
  }
}

// ---- paper-expected per-app invariants (Sec. IV-B-2) ----

TEST(PaperInvariants, DeblockFpRegisterFaultsAreAlwaysBenign) {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.workers = 2;
  const auto ca = campaign::calibrate(apps::build_app("deblock"), cfg);
  util::Rng rng(42);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 40; ++i)
    faults.push_back(campaign::random_fault(rng, fi::FaultLocation::FpReg,
                                            ca.kernel_fetches));
  const auto report = campaign::run_campaign(ca, faults, cfg);
  // No FP instructions: FP faults can never propagate (paper: 100% benign).
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::Crashed)], 0u);
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::SDC)], 0u);
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::Correct)], 0u);
}

TEST(PaperInvariants, PiHasNoMemoryTransactionsInKernel) {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.workers = 2;
  const auto ca = campaign::calibrate(apps::build_app("pi"), cfg);
  util::Rng rng(43);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 25; ++i)
    faults.push_back(campaign::random_fault(rng, fi::FaultLocation::LoadStore,
                                            ca.kernel_fetches));
  const auto report = campaign::run_campaign(ca, faults, cfg);
  // "PI performs almost no data accesses from memory": in our kernel,
  // none at all, so load/store faults never manifest.
  EXPECT_EQ(report.counts[std::size_t(apps::Outcome::NonPropagated)], faults.size());
}

TEST(PaperInvariants, PcFaultsAreMostlyFatal) {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.workers = 2;
  const auto ca = campaign::calibrate(apps::build_app("knapsack"), cfg);
  util::Rng rng(44);
  std::vector<fi::Fault> faults;
  for (int i = 0; i < 40; ++i)
    faults.push_back(campaign::random_fault(rng, fi::FaultLocation::PC,
                                            ca.kernel_fetches));
  const auto report = campaign::run_campaign(ca, faults, cfg);
  // "Fatal" = trap or fault-induced livelock (Timeout); the paper folds the
  // two into Crashed, we count them separately.
  EXPECT_GT(report.fraction(apps::Outcome::Crashed) +
                report.fraction(apps::Outcome::Timeout),
            0.5);
}

TEST(PaperInvariants, UnusedInstructionBitsAreAlwaysStrictlyCorrect) {
  // Faults in the SBZ bits [15:13] of register-form operates never change
  // semantics (paper: "experiments affecting unused bits always resulted
  // into strict correct results"). Verify at the decoder level across all
  // integer operate instructions.
  for (const auto op : {isa::Opcode::INTA, isa::Opcode::INTL, isa::Opcode::INTS,
                        isa::Opcode::INTM}) {
    for (unsigned func = 0; func < 0x80; ++func) {
      const isa::Word w = isa::encode_operate(op, func, 3, 5, 7);
      const isa::Decoded base = isa::decode(w);
      if (!base.valid) continue;
      for (unsigned bit = 13; bit <= 15; ++bit) {
        const isa::Decoded flipped = isa::decode(w ^ (1u << bit));
        EXPECT_EQ(flipped.valid, base.valid);
        EXPECT_EQ(flipped.func, base.func);
        EXPECT_EQ(flipped.ra, base.ra);
        EXPECT_EQ(flipped.rb, base.rb);
        EXPECT_EQ(flipped.rc, base.rc);
        EXPECT_EQ(flipped.is_literal, base.is_literal);
      }
    }
  }
}

}  // namespace
