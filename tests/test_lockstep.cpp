// Lockstep differential tests for the host-side fast paths: every guest app
// on every CPU model, with the predecoded-instruction cache on and off, must
// produce bit-identical commit traces — a running digest over the full
// architectural state (PC + both register files) folded at every commit,
// plus the final physical-memory image, output and exit status. The same
// harness drives the two hard cases for the cache: a fetch-stage fault
// that corrupts a word whose page is already predecoded (the bypass path),
// and self-modifying code that rewrites an already-cached instruction
// (the page-version invalidation path).
//
// The second half proves the timing-model fast lane (MRU cache hits, the
// fetch line buffer, stall-cycle warping and the batched TimingSimple loop)
// tick-exact against the `--no-fastpath` per-tick reference: identical exit
// reason, tick count, commit count, guest output, memory image AND the
// L1I/L1D/L2 hit/miss/writeback counters — including under stage faults,
// direct register/PC faults due inside a warped window, preemption, and a
// watchdog that expires mid-stall.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "assembler/assembler.hpp"
#include "fi/fault.hpp"
#include "sim/simulation.hpp"
#include "util/bytesio.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

constexpr std::uint64_t kFoldMul = 6364136223846793005ull;
constexpr std::uint64_t kFoldAdd = 1442695040888963407ull;

std::uint64_t fold(std::uint64_t h, std::uint64_t v) noexcept {
  return (h ^ v) * kFoldMul + kFoldAdd;
}

/// Everything a run can observably produce, digested for equality checks.
struct Trace {
  std::uint64_t commits = 0;
  std::uint64_t state_hash = 0;  // per-commit fold of PC + all registers
  std::uint32_t mem_crc = 0;     // final physical-memory image
  std::uint64_t bypasses = 0;    // predecode entries bypassed for FI
  std::string output;
  sim::ExitReason reason = sim::ExitReason::AllThreadsExited;
  cpu::TrapKind trap = cpu::TrapKind::None;

  // Timing-visible state, compared only by expect_tick_exact(): the timing
  // fast lane must preserve these bit-for-bit, but they legitimately differ
  // across CPU models (so they stay out of operator==, which also backs the
  // cross-model assertions).
  std::uint64_t ticks = 0;
  std::array<std::uint64_t, 9> cache{};  // hits/misses/writebacks × L1I,L1D,L2
  std::vector<std::string> fi_log;       // injection log; entries embed ticks

  // Architecturally observable state only: `bypasses` is a host-side cache
  // counter that legitimately differs between predecode on and off.
  bool operator==(const Trace& o) const {
    return commits == o.commits && state_hash == o.state_hash && mem_crc == o.mem_crc &&
           output == o.output && reason == o.reason && trap == o.trap;
  }
};

/// The fast lane's full contract: the architectural trace of operator==,
/// plus the simulated tick count, every cache counter, and the injection
/// log (whose entries embed the tick at which each fault applied).
void expect_tick_exact(const Trace& fast, const Trace& slow, const std::string& label) {
  EXPECT_EQ(fast, slow) << label << ": architectural trace diverged";
  EXPECT_EQ(fast.ticks, slow.ticks) << label << ": tick count diverged";
  EXPECT_EQ(fast.cache, slow.cache) << label << ": cache counters diverged";
  EXPECT_EQ(fast.fi_log, slow.fi_log) << label << ": injection log diverged";
  EXPECT_EQ(fast.bypasses, slow.bypasses) << label;
}

/// A stall-heavy memory configuration: tiny caches so the timing models
/// spend most ticks inside multi-cycle miss stalls — exactly the windows
/// the fast lane warps over or batches through.
void use_small_caches(mem::MemSysConfig& mem) {
  mem.l1i = {.size_bytes = 1024, .line_bytes = 64, .ways = 2, .hit_latency = 1, .name = "l1i"};
  mem.l1d = {.size_bytes = 1024, .line_bytes = 64, .ways = 2, .hit_latency = 2, .name = "l1d"};
  mem.l2 = {.size_bytes = 4096, .line_bytes = 64, .ways = 4, .hit_latency = 10, .name = "l2"};
}

struct RunSpec {
  sim::CpuKind cpu = sim::CpuKind::AtomicSimple;
  bool predecode = true;
  bool fastpath = true;
  bool small_caches = false;
  std::uint64_t watchdog = 500'000'000ull;
  std::vector<fi::Fault> faults;
  sim::Simulation::CheckpointHandler on_checkpoint;  // may be null
};

Trace run_traced(const assembler::Program& prog, const RunSpec& spec) {
  sim::SimConfig cfg;
  cfg.cpu = spec.cpu;
  cfg.predecode = spec.predecode;
  cfg.fastpath = spec.fastpath;
  if (spec.small_caches) use_small_caches(cfg.mem);
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread();
  if (spec.on_checkpoint) s.set_checkpoint_handler(spec.on_checkpoint);
  if (!spec.faults.empty()) s.fault_manager().load_faults(spec.faults);

  Trace t;
  s.set_commit_observer([&t](const cpu::CommitEvent& ev, const cpu::ArchState& arch) {
    ++t.commits;
    std::uint64_t h = t.state_hash;
    h = fold(h, ev.pc);
    h = fold(h, arch.pc());
    for (unsigned r = 0; r < 31; ++r) h = fold(h, arch.ireg(r));
    for (unsigned r = 0; r < 31; ++r) h = fold(h, arch.freg_bits(r));
    t.state_hash = h;
  });

  const sim::RunResult rr = s.run(spec.watchdog);
  t.mem_crc = util::crc32(s.memsys().phys().raw());
  t.bypasses = s.memsys().predecode_stats().bypasses;
  t.output = s.output(0);
  t.reason = rr.reason;
  t.trap = rr.trap.kind;
  t.ticks = rr.ticks;
  const mem::CacheStats* cs[3] = {&s.memsys().l1i_stats(), &s.memsys().l1d_stats(),
                                  &s.memsys().l2_stats()};
  for (std::size_t i = 0; i < 3; ++i) {
    t.cache[i * 3 + 0] = cs[i]->hits;
    t.cache[i * 3 + 1] = cs[i]->misses;
    t.cache[i * 3 + 2] = cs[i]->writebacks;
  }
  t.fi_log = s.fault_manager().injection_log();
  return t;
}

constexpr sim::CpuKind kModels[] = {sim::CpuKind::AtomicSimple, sim::CpuKind::TimingSimple,
                                    sim::CpuKind::Pipelined};

// ---------------- all six apps, three models, predecode on vs off ----------

class LockstepApps : public ::testing::TestWithParam<std::string> {};

TEST_P(LockstepApps, PredecodeOnOffAndCrossModelBitIdentical) {
  const apps::App app = apps::build_app(GetParam());
  Trace reference;
  bool have_reference = false;
  for (const sim::CpuKind cpu : kModels) {
    const Trace on = run_traced(app.program, {.cpu = cpu, .predecode = true});
    const Trace off = run_traced(app.program, {.cpu = cpu, .predecode = false});
    ASSERT_EQ(on.reason, sim::ExitReason::AllThreadsExited)
        << app.name << " on " << sim::cpu_kind_name(cpu);
    EXPECT_EQ(on, off) << app.name << " on " << sim::cpu_kind_name(cpu)
                       << ": predecode changed the commit trace";
    EXPECT_EQ(on.bypasses, 0u) << "fault-free run must never bypass";
    // Fault-free, the commit trace is also identical across the models.
    if (!have_reference) {
      reference = on;
      have_reference = true;
    } else {
      EXPECT_EQ(on, reference) << app.name << ": " << sim::cpu_kind_name(cpu)
                               << " diverged from " << sim::cpu_kind_name(kModels[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, LockstepApps, ::testing::ValuesIn(apps::app_names()),
                         [](const auto& info) { return info.param; });

// ---------------- fetch-stage fault onto a predecoded page ----------------

TEST(LockstepFaults, FetchFaultBypassesCacheBitIdentically) {
  const apps::App app = apps::build_app("pi");
  const fi::Fault fault =
      fi::parse_fault("FetchStageInjectedFault Inst:50 Flip:3 Threadid:0 system.cpu0 occ:1");
  for (const sim::CpuKind cpu : kModels) {
    const Trace on = run_traced(app.program, {.cpu = cpu, .predecode = true, .faults = {fault}});
    const Trace off =
        run_traced(app.program, {.cpu = cpu, .predecode = false, .faults = {fault}});
    EXPECT_EQ(on, off) << sim::cpu_kind_name(cpu)
                       << ": fetch fault outcome differs with predecode";
    // The corrupted fetch hit a page that was already predecoded (the kernel
    // loop runs from it), so the cache must have taken its bypass path.
    EXPECT_GE(on.bypasses, 1u) << sim::cpu_kind_name(cpu);
    EXPECT_EQ(off.bypasses, 0u);  // cache disabled: nothing to bypass
  }
}

TEST(LockstepFaults, FetchFaultSweepAcrossBitsAndTimes) {
  // A denser sweep on the atomic model (the fast-path owner): several
  // injection times and bit positions, each compared on vs off.
  const apps::App app = apps::build_app("pi");
  for (const std::uint64_t inst : {1ull, 17ull, 400ull}) {
    for (const unsigned bit : {0u, 13u, 26u, 31u}) {
      fi::Fault f;
      f.location = fi::FaultLocation::Fetch;
      f.time_kind = fi::FaultTimeKind::Instruction;
      f.time = inst;
      f.behavior = fi::FaultBehavior::Flip;
      f.operand = bit;
      const Trace on = run_traced(
          app.program, {.cpu = sim::CpuKind::AtomicSimple, .predecode = true, .faults = {f}});
      const Trace off = run_traced(
          app.program, {.cpu = sim::CpuKind::AtomicSimple, .predecode = false, .faults = {f}});
      EXPECT_EQ(on, off) << "Inst:" << inst << " Flip:" << bit;
    }
  }
}

// ---------------- self-modifying code invalidates cached pages ------------

/// A loop whose body is patched mid-run by the checkpoint handler (the
/// host-side stand-in for a store into the code segment): iteration 1 runs
/// the original `addq t0, 1`, the handler then rewrites it to `addq t0, 5`,
/// and iterations 2 and 3 must execute the new word — 1 + 5 + 5 = 11.
/// A predecode cache that misses the rewrite keeps serving the stale decode
/// and prints 3 instead.
assembler::Program smc_program() {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::s0, 3);
  as.li(reg::t0, 0);
  const Label loop = as.here("loop");
  as.fi_read_init();  // host handler patches the next instruction
  as.here("patchme");
  as.addq_i(reg::t0, 1, reg::t0);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.print_int_r(reg::t0);
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

isa::Word addq5_word() {
  Assembler as;
  const Label entry = as.here("main");
  as.addq_i(reg::t0, 5, reg::t0);
  return as.finalize(entry).code.at(0);
}

TEST(LockstepSmc, StoreIntoCachedPageInvalidates) {
  const assembler::Program prog = smc_program();
  const std::uint64_t patch_addr = prog.symbol("patchme");
  const isa::Word new_word = addq5_word();
  for (const sim::CpuKind cpu : kModels) {
    Trace traces[2];
    int i = 0;
    for (const bool predecode : {true, false}) {
      int calls = 0;
      RunSpec spec;
      spec.cpu = cpu;
      spec.predecode = predecode;
      spec.on_checkpoint = [&calls, patch_addr, new_word](sim::Simulation& s) {
        if (++calls == 2)
          ASSERT_EQ(s.memsys().phys().store(patch_addr, 4, new_word), mem::AccessError::None);
      };
      traces[i++] = run_traced(prog, spec);
    }
    EXPECT_EQ(traces[0], traces[1]) << sim::cpu_kind_name(cpu);
    EXPECT_EQ(traces[0].output, "11")
        << sim::cpu_kind_name(cpu) << ": stale predecoded word executed after rewrite";
  }
}

// ---------------- batched fast dispatch loop vs the per-tick loop ---------
//
// With predecode on, no FI hooks and no commit observer, the atomic model
// runs the batched fast dispatch loop; with --no-predecode it runs the
// legacy one-commit-per-tick loop. The two must agree on every observable:
// outputs, tick and commit counts, the memory image, the exit status.

struct FastRun {
  sim::RunResult rr;
  std::vector<std::string> outputs;  // one per thread
  std::uint32_t mem_crc = 0;
  std::uint64_t hits = 0;                // predecode-cache hits (0 when disabled)
  std::array<std::uint64_t, 9> cache{};  // hits/misses/writebacks × L1I,L1D,L2
};

struct PlainSpec {
  sim::CpuKind cpu = sim::CpuKind::AtomicSimple;
  bool predecode = true;
  bool fastpath = true;
  bool small_caches = false;
  std::uint64_t quantum = 50000;
  std::uint64_t watchdog = 500'000'000ull;
};

FastRun run_plain(const assembler::Program& prog, const PlainSpec& spec,
                  const std::vector<std::uint64_t>& thread_args) {
  sim::SimConfig cfg;
  cfg.cpu = spec.cpu;
  cfg.fi_enabled = false;  // no stage hooks, no observer: batches may engage
  cfg.predecode = spec.predecode;
  cfg.fastpath = spec.fastpath;
  cfg.quantum_insts = spec.quantum;
  if (spec.small_caches) use_small_caches(cfg.mem);
  sim::Simulation s(cfg, prog);
  for (const std::uint64_t arg : thread_args) s.spawn_thread(prog.entry, {arg});
  FastRun fr;
  fr.rr = s.run(spec.watchdog);
  for (std::size_t t = 0; t < thread_args.size(); ++t)
    fr.outputs.push_back(s.output(t));
  fr.mem_crc = util::crc32(s.memsys().phys().raw());
  fr.hits = s.memsys().predecode_stats().hits;
  const mem::CacheStats* cs[3] = {&s.memsys().l1i_stats(), &s.memsys().l1d_stats(),
                                  &s.memsys().l2_stats()};
  for (std::size_t i = 0; i < 3; ++i) {
    fr.cache[i * 3 + 0] = cs[i]->hits;
    fr.cache[i * 3 + 1] = cs[i]->misses;
    fr.cache[i * 3 + 2] = cs[i]->writebacks;
  }
  return fr;
}

TEST(LockstepFastDispatch, MatchesPerTickLoopOnAllApps) {
  for (const std::string& name : apps::app_names()) {
    const apps::App app = apps::build_app(name);
    const FastRun fast = run_plain(app.program, {.predecode = true}, {0});
    const FastRun slow = run_plain(app.program, {.predecode = false}, {0});
    ASSERT_EQ(fast.rr.reason, sim::ExitReason::AllThreadsExited) << name;
    EXPECT_EQ(fast.rr.reason, slow.rr.reason) << name;
    EXPECT_EQ(fast.rr.ticks, slow.rr.ticks) << name;
    EXPECT_EQ(fast.rr.committed, slow.rr.committed) << name;
    EXPECT_EQ(fast.outputs, slow.outputs) << name;
    EXPECT_EQ(fast.mem_crc, slow.mem_crc) << name;
    EXPECT_GT(fast.hits, 0u) << name << ": fast path never hit the cache";
    EXPECT_EQ(slow.hits, 0u) << name;
  }
}

/// Three threads hammer one shared counter — load, add the thread id, store
/// — under a tiny preemption quantum, then print the final counter value
/// they observe and their own GET_INSTRET. Both are sensitive to the exact
/// commit at which preemption lands, so a batched loop that context-switches
/// even one instruction early or late diverges from the per-tick loop.
assembler::Program shared_counter_program() {
  Assembler as;
  const DataRef cell = as.data_u64(std::uint64_t(0));
  const Label entry = as.here("main");
  as.la(reg::s2, cell);
  as.li(reg::s0, 40);
  const Label loop = as.here("loop");
  as.ldq(reg::t0, 0, reg::s2);
  as.addq(reg::t0, reg::a0, reg::t0);
  as.stq(reg::t0, 0, reg::s2);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.ldq(reg::t1, 0, reg::s2);
  as.print_int_r(reg::t1);
  as.instret();
  as.print_int_r(reg::v0);
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

TEST(LockstepFastDispatch, PreemptsOnTheExactSameInstruction) {
  const assembler::Program prog = shared_counter_program();
  for (const std::uint64_t quantum : {7ull, 50ull, 333ull}) {
    const FastRun fast = run_plain(prog, {.predecode = true, .quantum = quantum}, {1, 2, 3});
    const FastRun slow = run_plain(prog, {.predecode = false, .quantum = quantum}, {1, 2, 3});
    ASSERT_EQ(fast.rr.reason, sim::ExitReason::AllThreadsExited) << "q=" << quantum;
    EXPECT_EQ(fast.rr.ticks, slow.rr.ticks) << "q=" << quantum;
    EXPECT_EQ(fast.rr.committed, slow.rr.committed) << "q=" << quantum;
    EXPECT_EQ(fast.outputs, slow.outputs) << "q=" << quantum;
    EXPECT_EQ(fast.mem_crc, slow.mem_crc) << "q=" << quantum;
    // The counter is racy by design — a preemption between a thread's load
    // and store loses updates — so the printed values are a direct function
    // of where every context switch landed. (No atomicity to assert; the
    // fast-vs-slow equality above is the whole point.)
    for (const std::string& out : fast.outputs) EXPECT_FALSE(out.empty());
  }
}

TEST(LockstepFastDispatch, WatchdogFiresAtTheSameTick) {
  // An infinite loop: the batched loop must consume its watchdog budget in
  // exactly as many ticks as the per-tick loop.
  Assembler as;
  const Label entry = as.here("main");
  const Label spin = as.here("spin");
  as.addq_i(reg::t0, 1, reg::t0);
  as.br(spin);
  const assembler::Program prog = as.finalize(entry);

  for (const bool predecode : {true, false}) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::AtomicSimple;
    cfg.fi_enabled = false;
    cfg.predecode = predecode;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    const sim::RunResult rr = s.run(12345);
    EXPECT_EQ(rr.reason, sim::ExitReason::Watchdog) << predecode;
    EXPECT_EQ(rr.ticks, 12345u) << predecode;
    EXPECT_EQ(rr.committed, 12345u) << predecode;
  }
}

// ---------------- the timing-model fast lane, fast vs slow ----------------
//
// cfg.fastpath gates the MRU cache hit path + fetch line buffer, stall-cycle
// warping, and the batched TimingSimple dispatch loop; --no-fastpath reverts
// all of them to the per-tick reference. run_traced() installs a commit
// observer, so TimingSimple exercises the warp (not the batch) there; the
// batch is covered by the observer-free run_plain() tests further down.

constexpr sim::CpuKind kTimingModels[] = {sim::CpuKind::TimingSimple, sim::CpuKind::Pipelined};

std::string lane_label(const std::string& what, sim::CpuKind cpu, bool small) {
  return what + " on " + sim::cpu_kind_name(cpu) + (small ? " (small caches)" : "");
}

TEST(LockstepFastLane, AppsTickExactOnTimingModels) {
  for (const std::string& name : apps::app_names()) {
    const apps::App app = apps::build_app(name);
    for (const sim::CpuKind cpu : kTimingModels) {
      for (const bool small : {false, true}) {
        RunSpec spec;
        spec.cpu = cpu;
        spec.small_caches = small;
        const Trace fast = run_traced(app.program, spec);
        spec.fastpath = false;
        const Trace slow = run_traced(app.program, spec);
        ASSERT_EQ(fast.reason, sim::ExitReason::AllThreadsExited)
            << lane_label(name, cpu, small);
        expect_tick_exact(fast, slow, lane_label(name, cpu, small));
      }
    }
  }
}

TEST(LockstepFastLane, StageAndMemFaultsTickExact) {
  // Fetch- and memory-stage faults fire from the instruction flow, which the
  // fast lane never skips; the corrupted run must stay tick-exact even when
  // the fault changes control flow, latencies, or ends in a crash. The
  // LoadStore fault targets jacobi — pi's kernel is pure arithmetic and
  // would never present a memory transaction to corrupt.
  struct Case {
    const char* app;
    const char* line;
  };
  const Case cases[] = {
      {"pi", "FetchStageInjectedFault Inst:50 Flip:3 Threadid:0 system.cpu0 occ:1"},
      {"pi", "FetchStageInjectedFault Inst:400 Flip:26 Threadid:0 system.cpu0 occ:2"},
      {"jacobi", "LoadStoreInjectedFault Inst:120 Flip:7 Threadid:0 system.cpu0 occ:1"},
      {"pi", "ExecutionStageInjectedFault Inst:300 Xor:0xff Threadid:0 system.cpu0 occ:1"},
  };
  for (const auto& [app_name, line] : cases) {
    const apps::App app = apps::build_app(app_name);
    const fi::Fault f = fi::parse_fault(line);
    for (const sim::CpuKind cpu : kTimingModels) {
      RunSpec spec;
      spec.cpu = cpu;
      spec.small_caches = true;
      spec.watchdog = 50'000'000ull;
      spec.faults = {f};
      const Trace fast = run_traced(app.program, spec);
      spec.fastpath = false;
      const Trace slow = run_traced(app.program, spec);
      expect_tick_exact(fast, slow, lane_label(line, cpu, true));
      EXPECT_FALSE(fast.fi_log.empty()) << lane_label(line, cpu, true) << ": fault never applied";
    }
  }
}

TEST(LockstepFastLane, DirectFaultsBoundWarpsTickExact) {
  // Register/PC faults apply at tick boundaries — including ticks in the
  // middle of a stall the fast lane would warp over. The warp horizon must
  // stop exactly at each due tick: the injection log (whose entries embed
  // the application tick) has to match the per-tick loop line for line.
  // Tick:.. Imm is the sticky case — it re-applies on consecutive ticks
  // until its occurrence budget drains, pinning the horizon tick by tick.
  const apps::App app = apps::build_app("pi");
  const char* lines[] = {
      "RegisterInjectedFault Inst:200 Flip:21 Threadid:0 system.cpu0 occ:1 int 9",
      "RegisterInjectedFault Tick:900 Flip:13 Threadid:0 system.cpu0 occ:1 int 3",
      "RegisterInjectedFault Tick:1234 Imm:0xfeed Threadid:0 system.cpu0 occ:3 int 5",
      "PCInjectedFault Inst:400 Flip:4 Threadid:0 system.cpu0 occ:1",
  };
  for (const char* line : lines) {
    const fi::Fault f = fi::parse_fault(line);
    for (const sim::CpuKind cpu : kTimingModels) {
      RunSpec spec;
      spec.cpu = cpu;
      spec.small_caches = true;
      // Tight enough that a fault-induced infinite loop doesn't dominate the
      // suite; every injection lands within the first few thousand ticks.
      spec.watchdog = 8'000'000ull;
      spec.faults = {f};
      const Trace fast = run_traced(app.program, spec);
      spec.fastpath = false;
      const Trace slow = run_traced(app.program, spec);
      expect_tick_exact(fast, slow, lane_label(line, cpu, true));
      EXPECT_FALSE(fast.fi_log.empty()) << lane_label(line, cpu, true) << ": fault never applied";
    }
  }
}

/// An endless 4 KiB-stride load walk starting at 2 MiB (mapped, far from
/// both the image and the stacks): under the small-cache config every load
/// misses to DRAM, so the run is almost entirely multi-cycle stall windows.
assembler::Program dram_stride_program() {
  Assembler as;
  const Label entry = as.here("main");
  as.li(reg::s2, 0x200000);
  as.li(reg::t1, 4096);
  const Label loop = as.here("loop");
  as.ldq(reg::t0, 0, reg::s2);
  as.addq(reg::s2, reg::t1, reg::s2);
  as.br(loop);
  return as.finalize(entry);
}

TEST(LockstepFastLane, WatchdogExpiresInsideWarpedStallTickExact) {
  // Sweep 16 consecutive watchdog budgets: with ~72-cycle DRAM stalls most
  // land strictly inside a stall the fast lane is warping (or batching)
  // through. The run must still stop at exactly the budgeted tick.
  const assembler::Program prog = dram_stride_program();
  for (const sim::CpuKind cpu : kTimingModels) {
    for (std::uint64_t wd = 600; wd < 616; ++wd) {
      RunSpec spec;
      spec.cpu = cpu;
      spec.small_caches = true;
      spec.watchdog = wd;
      const Trace fast = run_traced(prog, spec);
      spec.fastpath = false;
      const Trace slow = run_traced(prog, spec);
      ASSERT_EQ(fast.reason, sim::ExitReason::Watchdog) << lane_label("stride", cpu, true);
      EXPECT_EQ(fast.ticks, wd) << lane_label("stride", cpu, true);
      expect_tick_exact(fast, slow, lane_label("stride wd=" + std::to_string(wd), cpu, true));
    }
  }
}

// ---------------- the batched TimingSimple loop (observer-free) -----------

TEST(LockstepTimingBatch, MatchesPerTickLoopOnAllApps) {
  for (const std::string& name : apps::app_names()) {
    const apps::App app = apps::build_app(name);
    for (const bool small : {false, true}) {
      PlainSpec base;
      base.cpu = sim::CpuKind::TimingSimple;
      base.small_caches = small;
      PlainSpec off = base;
      off.fastpath = false;
      const FastRun fast = run_plain(app.program, base, {0});
      const FastRun slow = run_plain(app.program, off, {0});
      const std::string label = lane_label(name, sim::CpuKind::TimingSimple, small);
      ASSERT_EQ(fast.rr.reason, sim::ExitReason::AllThreadsExited) << label;
      EXPECT_EQ(fast.rr.reason, slow.rr.reason) << label;
      EXPECT_EQ(fast.rr.ticks, slow.rr.ticks) << label;
      EXPECT_EQ(fast.rr.committed, slow.rr.committed) << label;
      EXPECT_EQ(fast.outputs, slow.outputs) << label;
      EXPECT_EQ(fast.mem_crc, slow.mem_crc) << label;
      EXPECT_EQ(fast.cache, slow.cache) << label << ": cache counters diverged";
    }
  }
}

TEST(LockstepTimingBatch, PreemptsOnTheExactSameInstruction) {
  // The timing batch stops at the commit bound the scheduler hands it, so a
  // context switch lands on the same instruction — and, because latency
  // accrues with the instruction that incurs it, at the same tick — as the
  // per-tick loop. The shared counter makes any drift architectural.
  const assembler::Program prog = shared_counter_program();
  for (const std::uint64_t quantum : {7ull, 50ull, 333ull}) {
    PlainSpec base;
    base.cpu = sim::CpuKind::TimingSimple;
    base.small_caches = true;
    base.quantum = quantum;
    PlainSpec off = base;
    off.fastpath = false;
    const FastRun fast = run_plain(prog, base, {1, 2, 3});
    const FastRun slow = run_plain(prog, off, {1, 2, 3});
    ASSERT_EQ(fast.rr.reason, sim::ExitReason::AllThreadsExited) << "q=" << quantum;
    EXPECT_EQ(fast.rr.ticks, slow.rr.ticks) << "q=" << quantum;
    EXPECT_EQ(fast.rr.committed, slow.rr.committed) << "q=" << quantum;
    EXPECT_EQ(fast.outputs, slow.outputs) << "q=" << quantum;
    EXPECT_EQ(fast.mem_crc, slow.mem_crc) << "q=" << quantum;
    EXPECT_EQ(fast.cache, slow.cache) << "q=" << quantum;
  }
}

TEST(LockstepTimingBatch, WatchdogExpiresMidStall) {
  // A batch boundary can land while an instruction's latency is still
  // draining; the batch must park the residue (busy_ + the pending commit)
  // exactly as the per-tick loop would, with the commit not yet counted.
  const assembler::Program prog = dram_stride_program();
  for (std::uint64_t wd = 600; wd < 616; ++wd) {
    PlainSpec base;
    base.cpu = sim::CpuKind::TimingSimple;
    base.small_caches = true;
    base.watchdog = wd;
    PlainSpec off = base;
    off.fastpath = false;
    const FastRun fast = run_plain(prog, base, {0});
    const FastRun slow = run_plain(prog, off, {0});
    ASSERT_EQ(fast.rr.reason, sim::ExitReason::Watchdog) << "wd=" << wd;
    EXPECT_EQ(fast.rr.reason, slow.rr.reason) << "wd=" << wd;
    EXPECT_EQ(fast.rr.ticks, wd) << "wd=" << wd;
    EXPECT_EQ(fast.rr.ticks, slow.rr.ticks) << "wd=" << wd;
    EXPECT_EQ(fast.rr.committed, slow.rr.committed) << "wd=" << wd;
    EXPECT_EQ(fast.cache, slow.cache) << "wd=" << wd;
  }
}

}  // namespace
