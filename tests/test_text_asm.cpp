// Text-assembler tests: the .s front end must produce programs that run
// identically to macro-assembled ones, cover every operand form, and
// diagnose malformed input with line numbers.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "assembler/text_asm.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gemfi;
using assembler::assemble_text;

std::string run(const assembler::Program& prog,
                sim::CpuKind kind = sim::CpuKind::AtomicSimple,
                const char* fault = nullptr) {
  sim::SimConfig cfg;
  cfg.cpu = kind;
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread();
  if (fault != nullptr) s.fault_manager().load_faults({fi::parse_fault(fault)});
  const auto rr = s.run(100'000'000);
  EXPECT_EQ(rr.reason, sim::ExitReason::AllThreadsExited);
  return s.output(0);
}

TEST(TextAsm, LoopAndPrint) {
  const auto prog = assemble_text(R"(
        .text
main:   li      s0, 0
        li      s1, 1
loop:   addq    s0, s1, s0      ; sum += i
        addq    s1, 1, s1
        cmple   s1, 100, t0
        bne     t0, loop
        mov     s0, a0
        print_int
        li      a0, 0
        exit
)");
  EXPECT_EQ(run(prog), "5050");
}

TEST(TextAsm, DataSectionAndMemoryOps) {
  const auto prog = assemble_text(R"(
        .data
buf:    .zero   32
vals:   .quad   10, 20, -30
        .text
main:   la      t1, vals
        ldq     t0, 8(t1)       ; 20
        la      t2, buf
        stq     t0, 16(t2)
        ldq     a0, 16(t2)
        print_int
        li      a0, 0
        exit
)");
  EXPECT_EQ(run(prog), "20");
}

TEST(TextAsm, FloatingPointPath) {
  const auto prog = assemble_text(R"(
        .data
c:      .double 2.25, 4.0
        .text
main:   la      t0, c
        ldt     f1, 0(t0)
        ldt     f2, 8(t0)
        mult    f1, f2, f3      ; 9
        sqrtt   f3, f3          ; 3
        fli     f4, 0.5
        addt    f3, f4, f16     ; 3.5
        print_fp
        li      a0, 0
        exit
)");
  EXPECT_EQ(run(prog), "3.5");
}

TEST(TextAsm, CallRetAndJumps) {
  const auto prog = assemble_text(R"(
        .text
main:   li      a0, 6
        call    twice
        mov     v0, a0
        call    twice
        mov     v0, a0
        print_int
        li      a0, 0
        exit
twice:  addq    a0, a0, v0
        ret
)");
  EXPECT_EQ(run(prog), "24");
}

TEST(TextAsm, FiIntrinsicsWorkFromSource) {
  const char* source = R"(
        .text
main:   fi_read_init
        li      a0, 0
        fi_activate
        li      s0, 100
        addq    t0, 1, t0       ; filler so the fault lands well after the
        addq    t0, 1, t0       ; write to s0 commits and well before the read
        addq    t0, 1, t0
        addq    t0, 1, t0
        addq    t0, 1, t0
        addq    t0, 1, t0
        mov     s0, s1
        li      a0, 0
        fi_activate
        mov     s1, a0
        print_int
        li      a0, 0
        exit
)";
  const auto prog = assemble_text(source);
  EXPECT_EQ(run(prog), "100");
  // Flip bit 3 of s0 while it holds 100: 108 flows into s1.
  EXPECT_EQ(run(prog, sim::CpuKind::Pipelined,
                "RegisterInjectedFault Inst:5 Flip:3 Threadid:0 system.cpu0 occ:1 int 9"),
            "108");
}

TEST(TextAsm, PrintStrAndEscapes) {
  const auto prog = assemble_text(R"(
        .text
main:   print_str "a, b\n"
        li      a0, 0
        exit
)");
  EXPECT_EQ(run(prog), "a, b\n");
}

TEST(TextAsm, EntryPrefersMainElseFirstLabel) {
  const auto prog = assemble_text(R"(
        .text
helper: li      a0, 1
        print_int
        li      a0, 0
        exit
main:   li      a0, 2
        print_int
        li      a0, 0
        exit
)");
  EXPECT_EQ(run(prog), "2");

  const auto prog2 = assemble_text(R"(
        .text
start:  li      a0, 7
        print_int
        li      a0, 0
        exit
)");
  EXPECT_EQ(run(prog2), "7");
}

TEST(TextAsm, MatchesMacroAssembledEncodingExactly) {
  const auto text = assemble_text(R"(
        .text
main:   addq    t0, t1, t2
        addq    t0, 8, t2
        ldq     a0, -16(sp)
        beq     t0, main
        exit
)");
  assembler::Assembler as;
  const auto entry = as.here("main");
  as.addq(assembler::reg::t0, assembler::reg::t1, assembler::reg::t2);
  as.addq_i(assembler::reg::t0, 8, assembler::reg::t2);
  as.ldq(assembler::reg::a0, -16, assembler::reg::sp);
  as.beq(assembler::reg::t0, entry);
  as.exit_();
  const auto macro = as.finalize(entry);
  ASSERT_EQ(text.code.size(), macro.code.size());
  for (std::size_t i = 0; i < text.code.size(); ++i)
    EXPECT_EQ(text.code[i], macro.code[i]) << "instruction " << i;
}

TEST(TextAsm, DiagnosticsCarryLineNumbers) {
  const auto expect_error = [](const char* src, const char* needle) {
    try {
      (void)assemble_text(src);
      FAIL() << "expected AsmError for: " << src;
    } catch (const assembler::AsmError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error(".text\nmain: frobnicate t0\nexit\n", "unknown mnemonic");
  expect_error(".text\nmain: addq t0, t1\n", "expected 3 operands");
  expect_error(".text\nmain: addq t0, 999, t1\n", "literal must be in [0,255]");
  expect_error(".text\nmain: ldq a0, sp\n", "disp(base)");
  expect_error(".text\nmain: la t0, nothing\n", "unknown data symbol");
  expect_error(".text\nmain: addq q9, t0, t1\n", "bad integer register");
  expect_error(".data\nx: .quad\n", ".quad needs at least one value");
  expect_error("main: li t0, 1\n", "unknown data directive");  // before .text
  expect_error(".text\n        li t0, 1\n        exit\n", "entry point");
  try {
    (void)assemble_text(".text\nmain: bogus\n");
  } catch (const assembler::AsmError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TextAsm, CommentsAndBlankLinesIgnored) {
  const auto prog = assemble_text(R"(
; leading comment
        .text
# another comment style
main:   li a0, 42   ; trailing comment
        print_int
        li a0, 0
        exit
)");
  EXPECT_EQ(run(prog), "42");
}

}  // namespace
