// Integration and chaos tests for the campaign-manager service: a real
// CampaignService over loopback sockets, real forked worker processes, and
// real SIGKILL. The invariants under test are the tentpole's promises —
// multi-tenant campaigns share one fleet and all finish, results match an
// in-process run_campaign bit-for-bit (modulo host telemetry), and a
// SIGKILLed service restarted on the same journal resumes every campaign
// with every experiment id journaled exactly once.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/dispatch.hpp"
#include "campaign/jsonl.hpp"
#include "campaign/observer.hpp"
#include "campaign/runner.hpp"
#include "campaign/service/client.hpp"
#include "campaign/service/service.hpp"
#include "net/socket.hpp"
#include "test_env.hpp"

using namespace gemfi;
namespace service = gemfi::campaign::service;
namespace fs = std::filesystem;

// Sanitizers run every experiment several times slower (TSAN ~10x, ASAN
// ~3x), which is itself what the big chaos campaign buys on a plain build:
// the SIGKILL always lands with most experiments outstanding. Scale the
// count down so the suite fits its ctest timeout and the in-test status
// deadlines; the invariants under test are unchanged.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define GEMFI_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define GEMFI_SANITIZED 1
#endif
#endif
#ifndef GEMFI_SANITIZED
#define GEMFI_SANITIZED 0
#endif

namespace {

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("gemfi_service_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

/// Spec for a small atomic-model pi campaign — the shared shape of every
/// test so the binary calibrates only one app configuration.
service::CampaignSpec pi_spec(const std::string& tenant, std::uint64_t n,
                              std::uint64_t seed) {
  service::CampaignSpec s;
  s.tenant = tenant;
  s.app_name = "pi";
  s.experiments = n;
  s.campaign_seed = seed;
  s.cpu = std::uint8_t(sim::CpuKind::AtomicSimple);
  return s;
}

/// Re-render a parsed JSON value deterministically (object keys sorted by
/// std::map, numbers kept as their source tokens).
std::string render(const campaign::jsonl::Value& v) {
  using Kind = campaign::jsonl::Value::Kind;
  switch (v.kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return v.boolean ? "true" : "false";
    case Kind::Number: return v.text;
    case Kind::String: {
      std::string out = "\"";
      for (const char c : v.text) {
        if (c == '"' || c == '\\') { out += '\\'; out += c; }
        else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else out += c;
      }
      return out + "\"";
    }
    case Kind::Array: {
      std::string out = "[";
      for (const auto& e : v.array) {
        if (out.size() > 1) out += ",";
        out += render(e);
      }
      return out + "]";
    }
    case Kind::Object: {
      std::string out = "{";
      for (const auto& [k, e] : v.object) {
        if (out.size() > 1) out += ",";
        out += "\"" + k + "\":" + render(e);
      }
      return out + "}";
    }
  }
  return "";
}

/// One journaled record line with everything host- or scheduling-dependent
/// removed — which worker ran it, wall time, restore telemetry — so streamed
/// service output can be compared against an in-process reference run.
std::string normalize_line(const std::string& line) {
  campaign::jsonl::Value v = campaign::jsonl::parse(line);
  for (const char* k : {"worker", "wall_seconds", "restore_pages", "restore_bytes"})
    v.object.erase(k);
  return render(v);
}

std::vector<std::string> normalized_sorted_lines(std::vector<std::string> lines) {
  for (auto& l : lines) l = normalize_line(l);
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// Thread-safe record collector for the in-process reference runs.
class CollectingObserver final : public campaign::CampaignObserver {
 public:
  void on_experiment(const campaign::ExperimentRecord& rec) override {
    std::lock_guard lock(mutex_);
    records_.push_back(rec);
  }
  [[nodiscard]] std::vector<campaign::ExperimentRecord> records() const {
    std::lock_guard lock(mutex_);
    return records_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<campaign::ExperimentRecord> records_;
};

/// In-process reference: run the same campaign through run_campaign and
/// return its records as normalized JSONL lines. Calibration is shared per
/// binary (every test uses the same app configuration).
std::vector<std::string> reference_lines(const service::CampaignSpec& spec) {
  static const campaign::CalibratedApp ca = [] {
    campaign::CampaignConfig cfg = pi_spec("x", 1, 1).to_campaign_config();
    return campaign::calibrate(apps::build_app("pi", {}), cfg);
  }();
  campaign::CampaignConfig cfg = spec.to_campaign_config();
  CollectingObserver obs;
  cfg.observer = &obs;
  cfg.workers = 2;
  const auto faults = campaign::seeded_fault_set(
      spec.campaign_seed, std::size_t(spec.experiments), ca.kernel_fetches);
  campaign::run_campaign(ca, faults, cfg);
  std::vector<std::string> lines;
  for (const auto& rec : obs.records())
    lines.push_back(campaign::experiment_record_to_json(rec));
  return normalized_sorted_lines(std::move(lines));
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Poll `pred` (given a fresh status snapshot) until it returns true.
/// Reconnects the polling client as needed; fails the test on deadline.
template <typename Pred>
void wait_for_status(std::uint16_t port, double deadline_s, Pred pred) {
  deadline_s = testenv::scaled_s(deadline_s);  // GEMFI_TEST_TIMEOUT_MS floor
  const double t0 = now_seconds();
  while (now_seconds() - t0 < deadline_s) {
    try {
      service::Client c = service::Client::connect("127.0.0.1", port, 4, 0.25);
      if (pred(c.status())) return;
    } catch (const std::exception&) {
      // Service restarting (chaos test) — keep polling.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  FAIL() << "status condition not reached within " << deadline_s << "s";
}

const service::CampaignStatus* find_status(
    const std::vector<service::CampaignStatus>& all, std::uint64_t id) {
  for (const auto& s : all)
    if (s.id == id) return &s;
  return nullptr;
}

/// Collect one campaign's full result stream; returns (lines, end state).
std::pair<std::vector<std::string>, service::CampaignState> stream_all(
    std::uint16_t port, std::uint64_t id) {
  service::Client c = service::Client::connect("127.0.0.1", port);
  std::vector<std::string> lines;
  const service::CampaignState end = c.stream(
      id, [&](const std::string& line) { lines.push_back(line); },
      /*timeout_s=*/testenv::scaled_s(120.0));
  return {std::move(lines), end};
}

/// SIGKILLs any still-running forked children when a test exits early on a
/// failed assertion — orphaned workers would otherwise reconnect forever and
/// hold the ctest output pipe open until the suite timeout.
struct FleetGuard {
  campaign::LocalWorkerPool& pool;
  ~FleetGuard() {
    for (const int pid : pool.pids())
      if (pid > 0) ::kill(pid, SIGKILL);
    pool.wait_all();
  }
};

struct ChildGuard {
  pid_t pid;
  ~ChildGuard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
  void disarm() noexcept { pid = -1; }
};

void expect_exactly_once(const std::vector<std::string>& lines, std::uint64_t n) {
  std::vector<unsigned> seen(n, 0);
  for (const auto& line : lines)
    ++seen.at(std::size_t(campaign::jsonl::parse(line).at("index").as_u64()));
  EXPECT_EQ(lines.size(), n);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](unsigned k) { return k == 1; }))
      << "some experiment id lost or duplicated";
}

}  // namespace

// Two tenants submit concurrent campaigns to one service sharing a 3-worker
// fleet: both finish, both saw workers (fair share gave each a lease), and
// each streamed result set is exactly-once and equal to an in-process run.
TEST(Service, TwoTenantsShareTheFleetAndBothComplete) {
  const fs::path dir = fresh_dir("fair");
  const auto ref1 = reference_lines(pi_spec("alice", 90, 1234));
  const auto ref2 = reference_lines(pi_spec("bob", 90, 4321));

  service::ServiceConfig scfg;
  scfg.journal_dir = dir.string();
  scfg.rebalance_interval_s = 0.2;
  service::CampaignService svc(scfg);
  const std::uint16_t port = svc.port();
  // Fork the fleet before this process spawns any threads.
  auto pool = campaign::LocalWorkerPool::spawn(3, port, /*slots=*/1,
                                               /*max_reconnects=*/1u << 20);
  FleetGuard fleet{pool};
  service::ServiceReport report;
  std::thread server([&] { report = svc.run(); });

  std::uint64_t id1 = 0, id2 = 0;
  {
    service::Client c1 = service::Client::connect("127.0.0.1", port);
    service::Client c2 = service::Client::connect("127.0.0.1", port);
    id1 = c1.submit(pi_spec("alice", 90, 1234));
    id2 = c2.submit(pi_spec("bob", 90, 4321));
  }
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id2, id1);

  bool saw_workers1 = false, saw_workers2 = false;
  wait_for_status(port, 120.0, [&](const auto& all) {
    const auto* s1 = find_status(all, id1);
    const auto* s2 = find_status(all, id2);
    if (!s1 || !s2) return false;
    saw_workers1 |= s1->workers > 0;
    saw_workers2 |= s2->workers > 0;
    return s1->state == service::CampaignState::Done &&
           s2->state == service::CampaignState::Done;
  });
  // Each campaign can only have completed by holding worker leases; the
  // polls must have caught both with workers at least once.
  EXPECT_TRUE(saw_workers1);
  EXPECT_TRUE(saw_workers2);

  const auto [lines1, end1] = stream_all(port, id1);
  const auto [lines2, end2] = stream_all(port, id2);
  EXPECT_EQ(end1, service::CampaignState::Done);
  EXPECT_EQ(end2, service::CampaignState::Done);
  expect_exactly_once(lines1, 90);
  expect_exactly_once(lines2, 90);
  EXPECT_EQ(normalized_sorted_lines(lines1), ref1);
  EXPECT_EQ(normalized_sorted_lines(lines2), ref2);

  svc.request_stop();
  server.join();
  EXPECT_EQ(pool.wait_all(), 0);  // every worker got Shutdown and exited 0

  EXPECT_EQ(report.campaigns_done, 2u);
  EXPECT_EQ(report.campaigns_submitted, 2u);
  EXPECT_EQ(report.results_journaled, 180u);
  EXPECT_EQ(report.duplicate_results, 0u);
  EXPECT_GE(report.clients_served, 2u);
  fs::remove_all(dir);
}

// Cancelling a running campaign stops its dispatch (completed < total), a
// stream subscription ends with Cancelled, a second cancel is refused, and
// an unknown app fails the campaign without taking the service down.
TEST(Service, CancelAndFailurePaths) {
  const fs::path dir = fresh_dir("cancel");
  service::ServiceConfig scfg;
  scfg.journal_dir = dir.string();
  service::CampaignService svc(scfg);
  const std::uint16_t port = svc.port();
  auto pool = campaign::LocalWorkerPool::spawn(2, port, /*slots=*/1,
                                               /*max_reconnects=*/1u << 20);
  FleetGuard fleet{pool};
  service::ServiceReport report;
  std::thread server([&] { report = svc.run(); });

  service::Client client = service::Client::connect("127.0.0.1", port);
  // Big enough that cancellation always lands mid-run.
  const std::uint64_t big = client.submit(pi_spec("alice", 200000, 1234));
  const std::uint64_t doomed = client.submit([&] {
    service::CampaignSpec s = pi_spec("bob", 10, 1);
    s.app_name = "no-such-app";
    return s;
  }());

  // The unknown app fails at calibration with a useful error.
  wait_for_status(port, 60.0, [&](const auto& all) {
    const auto* s = find_status(all, doomed);
    return s && s->state == service::CampaignState::Failed && !s->error.empty();
  });

  // Wait until the big campaign is provably mid-run, then cancel it.
  wait_for_status(port, 60.0, [&](const auto& all) {
    const auto* s = find_status(all, big);
    return s && s->completed > 0;
  });
  client.cancel(big);
  wait_for_status(port, 30.0, [&](const auto& all) {
    const auto* s = find_status(all, big);
    return s && s->state == service::CampaignState::Cancelled;
  });
  EXPECT_THROW(client.cancel(big), std::runtime_error);   // already terminal
  EXPECT_THROW(client.cancel(99999), std::runtime_error);  // unknown id

  const auto [lines, end] = stream_all(port, big);
  EXPECT_EQ(end, service::CampaignState::Cancelled);
  EXPECT_GT(lines.size(), 0u);
  EXPECT_LT(lines.size(), 200000u);

  svc.request_stop();
  server.join();
  EXPECT_EQ(pool.wait_all(), 0);
  EXPECT_EQ(report.campaigns_cancelled, 1u);
  EXPECT_EQ(report.campaigns_failed, 1u);
  fs::remove_all(dir);
}

namespace {

/// Child body for the chaos test: run a service on a fixed port until
/// stopped (SIGINT) or killed. _exit keeps gtest out of the child.
[[noreturn]] void service_child(std::uint16_t port, const std::string& dir) {
  try {
    service::ServiceConfig scfg;
    scfg.journal_dir = dir;
    scfg.port = port;
    scfg.handle_sigint = true;
    service::CampaignService svc(scfg);
    svc.run();
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "service child: %s\n", e.what());
    ::_exit(3);
  }
}

}  // namespace

// The crash-recovery acceptance test: SIGKILL the service mid-campaign with
// two tenants in flight, restart it on the same journal, and require both
// campaigns to finish with zero lost and zero duplicated experiment ids and
// records identical to an undisturbed in-process run.
TEST(Service, SigkillRestartLosesNothing) {
  const fs::path dir = fresh_dir("chaos");
  // Big enough that the kill always lands mid-campaign, even on a fast
  // machine: the first service must die with most experiments outstanding.
  const std::uint64_t n = GEMFI_SANITIZED ? 200 : 2000;
  const auto ref1 = reference_lines(pi_spec("alice", n, 1234));
  const auto ref2 = reference_lines(pi_spec("bob", n, 4321));

  // Learn a free port, then hand it to the service children. The probe
  // listener never accepts, so closing it leaves no TIME_WAIT behind.
  std::uint16_t port = 0;
  {
    auto probe = net::TcpListener::bind_listen("127.0.0.1", 0);
    port = probe.port();
  }

  const pid_t svc1 = ::fork();
  ASSERT_GE(svc1, 0);
  if (svc1 == 0) service_child(port, dir.string());
  ChildGuard guard1{svc1};

  // The fleet outlives the service: a huge reconnect budget carries the
  // workers across the kill/restart gap.
  auto pool = campaign::LocalWorkerPool::spawn(3, port, /*slots=*/1,
                                               /*max_reconnects=*/1u << 20);
  FleetGuard fleet{pool};

  std::uint64_t id1 = 0, id2 = 0;
  {
    service::Client client = service::Client::connect("127.0.0.1", port,
                                                      /*attempts=*/100, 0.1);
    id1 = client.submit(pi_spec("alice", n, 1234));
    id2 = client.submit(pi_spec("bob", n, 4321));
  }

  // Let both campaigns make real progress so the kill lands mid-flight,
  // with results already journaled and experiments in workers' hands.
  wait_for_status(port, 120.0, [&](const auto& all) {
    const auto* s1 = find_status(all, id1);
    const auto* s2 = find_status(all, id2);
    return s1 && s2 && s1->completed >= 10 && s2->completed >= 10 &&
           s1->state != service::CampaignState::Done &&
           s2->state != service::CampaignState::Done;
  });

  ::kill(svc1, SIGKILL);
  ASSERT_EQ(::waitpid(svc1, nullptr, 0), svc1);
  guard1.disarm();

  const pid_t svc2 = ::fork();
  ASSERT_GE(svc2, 0);
  if (svc2 == 0) service_child(port, dir.string());
  ChildGuard guard2{svc2};

  // The restarted service recovers both campaigns from the journal,
  // recalibrates, re-leases the reconnecting workers, and finishes. The
  // deadline scales like `n` does: under TSAN nearly all 2n experiments are
  // still outstanding at the kill and each runs ~10x slower, so the fixed
  // plain-build deadline is not enough wall clock for the recovery leg.
  wait_for_status(port, GEMFI_SANITIZED ? 480.0 : 180.0, [&](const auto& all) {
    const auto* s1 = find_status(all, id1);
    const auto* s2 = find_status(all, id2);
    return s1 && s2 && s1->state == service::CampaignState::Done &&
           s2->state == service::CampaignState::Done;
  });

  const auto [lines1, end1] = stream_all(port, id1);
  const auto [lines2, end2] = stream_all(port, id2);
  EXPECT_EQ(end1, service::CampaignState::Done);
  EXPECT_EQ(end2, service::CampaignState::Done);
  // The exactly-once guarantee across the crash: every id exactly once.
  expect_exactly_once(lines1, n);
  expect_exactly_once(lines2, n);
  // And the crash was invisible in the data: records match an undisturbed
  // in-process run bit-for-bit after stripping host telemetry.
  EXPECT_EQ(normalized_sorted_lines(lines1), ref1);
  EXPECT_EQ(normalized_sorted_lines(lines2), ref2);

  // Graceful stop: SIGINT drains the service, workers get Shutdown.
  ::kill(svc2, SIGINT);
  int status = 0;
  ASSERT_EQ(::waitpid(svc2, &status, 0), svc2);
  guard2.disarm();
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(pool.wait_all(), 0);
  fs::remove_all(dir);
}

// A tenant opts into sequential early-stopping (spec.stop_eps > 0): the
// campaign reaches Done having run fewer experiments than planned, the
// result stream carries exactly one deterministic stopped_early summary
// line, and the service report counts the stop.
TEST(Service, StopCiCampaignStopsEarlyWithOneSummaryRecord) {
  const fs::path dir = fresh_dir("stopci");
  service::ServiceConfig scfg;
  scfg.journal_dir = dir.string();
  service::CampaignService svc(scfg);
  const std::uint16_t port = svc.port();
  auto pool = campaign::LocalWorkerPool::spawn(2, port, /*slots=*/1,
                                               /*max_reconnects=*/1u << 20);
  FleetGuard fleet{pool};
  service::ServiceReport report;
  std::thread server([&] { report = svc.run(); });

  // Sanitized builds: smaller plan (the rule still fires well before n —
  // the finite-population correction tightens as the prefix covers it).
  const std::uint64_t n = GEMFI_SANITIZED ? 240 : 400;
  service::CampaignSpec spec = pi_spec("alice", n, 1234);
  spec.stop_eps = 0.05;
  spec.stop_conf = 0.95;
  std::uint64_t id = 0;
  {
    service::Client client = service::Client::connect("127.0.0.1", port);
    id = client.submit(spec);
  }
  ASSERT_NE(id, 0u);

  wait_for_status(port, 120.0, [&](const auto& all) {
    const auto* s = find_status(all, id);
    return s && s->state == service::CampaignState::Done;
  });

  const auto [lines, end] = stream_all(port, id);
  EXPECT_EQ(end, service::CampaignState::Done);

  // Split the stream into experiment records and summary records.
  std::vector<std::string> results;
  std::vector<std::string> summaries;
  std::uint64_t stop_index = 0;
  for (const auto& line : lines) {
    const auto v = campaign::jsonl::parse(line);
    if (v.has("type") && v.at("type").text == "stopped_early") {
      summaries.push_back(line);
      EXPECT_TRUE(v.at("stopped_early").boolean);
      stop_index = v.at("stop_index").as_u64();
    } else {
      results.push_back(line);
    }
  }
  ASSERT_EQ(summaries.size(), 1u) << "exactly one stopped_early summary";
  EXPECT_GT(stop_index, 0u);
  EXPECT_LT(stop_index, n);
  // The stop saved real work: fewer experiments ran than were planned, and
  // every result that did run covers the certified prefix exactly once.
  EXPECT_LT(results.size(), n);
  EXPECT_GE(results.size(), stop_index);
  std::vector<unsigned> seen(n, 0);
  for (const auto& line : results)
    ++seen.at(std::size_t(campaign::jsonl::parse(line).at("index").as_u64()));
  for (std::uint64_t i = 0; i < stop_index; ++i)
    EXPECT_EQ(seen[std::size_t(i)], 1u) << "prefix index " << i;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](unsigned k) { return k <= 1; }));

  svc.request_stop();
  server.join();
  EXPECT_EQ(pool.wait_all(), 0);
  EXPECT_EQ(report.campaigns_done, 1u);
  EXPECT_EQ(report.campaigns_stopped_early, 1u);
  EXPECT_EQ(report.duplicate_results, 0u);
  fs::remove_all(dir);
}
