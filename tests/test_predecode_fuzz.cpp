// Fuzz tests for the predecoded-instruction cache: seeded random instruction
// words — architecturally valid encodings interleaved with garbage — must
// decode identically through the live decoder and through a predecoded page,
// including after a store rewrites a word mid-page (version-based
// invalidation) and after a fetch-stage bit-flip targets a PC whose page is
// already cached (the bypass path).
#include <gtest/gtest.h>

#include <cstring>

#include "assembler/assembler.hpp"
#include "fi/fault.hpp"
#include "isa/decoder.hpp"
#include "mem/memsys.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::assembler;

void expect_same_decode(const isa::Decoded& a, const isa::Decoded& b, std::uint64_t pc) {
  EXPECT_EQ(a.raw, b.raw) << "pc=0x" << std::hex << pc;
  EXPECT_EQ(a.opcode, b.opcode) << "pc=0x" << std::hex << pc;
  EXPECT_EQ(a.format, b.format) << "pc=0x" << std::hex << pc;
  EXPECT_EQ(a.klass, b.klass) << "pc=0x" << std::hex << pc;
  EXPECT_EQ(a.ra, b.ra);
  EXPECT_EQ(a.rb, b.rb);
  EXPECT_EQ(a.rc, b.rc);
  EXPECT_EQ(a.is_literal, b.is_literal);
  EXPECT_EQ(a.literal, b.literal);
  EXPECT_EQ(a.disp, b.disp);
  EXPECT_EQ(a.func, b.func);
  EXPECT_EQ(a.palcode, b.palcode);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.src1, b.src1);
  EXPECT_EQ(a.src2, b.src2);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.src1_fp, b.src1_fp);
  EXPECT_EQ(a.src2_fp, b.src2_fp);
  EXPECT_EQ(a.dst_fp, b.dst_fp);
}

/// A seeded word pool mixing valid encodings (sampled from an assembled
/// program) with uniformly random garbage.
std::vector<isa::Word> word_pool(std::uint64_t seed) {
  Assembler as;
  const Label entry = as.here("main");
  as.addq(reg::t0, reg::t1, reg::t2);
  as.subq_i(reg::t3, 7, reg::t4);
  as.mulq(reg::t0, reg::t2, reg::t5);
  as.ldq(reg::t6, 16, reg::s2);
  as.stq(reg::t6, 24, reg::s2);
  as.cmplt(reg::t0, reg::t1, reg::t7);
  const Label skip = as.make_label("skip");
  as.bne(reg::t7, skip);
  as.sll_i(reg::t0, 13, reg::t1);
  as.bind(skip);
  as.print_int();
  as.exit_();
  const std::vector<isa::Word> valid = as.finalize(entry).code;

  util::Rng rng(seed);
  std::vector<isa::Word> pool;
  for (int i = 0; i < 2048; ++i) {
    if (rng.chance(0.5))
      pool.push_back(valid[rng.below(valid.size())]);
    else
      pool.push_back(isa::Word(rng.below(1ull << 32)));  // garbage
  }
  return pool;
}

class PredecodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PredecodeFuzz, CachedPageMatchesLiveDecoder) {
  mem::MemSystem ms;
  const std::vector<isa::Word> pool = word_pool(GetParam());
  const std::uint64_t base = 0x2000;  // past the null guard, page-aligned
  std::vector<std::uint8_t> bytes(pool.size() * 4);
  std::memcpy(bytes.data(), pool.data(), bytes.size());
  ms.phys().write_block(base, bytes);

  util::Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t pc = base + 4 * rng.below(pool.size());
    const isa::Decoded* cached = ms.predecode(pc);
    ASSERT_NE(cached, nullptr) << "pc=0x" << std::hex << pc;
    std::uint32_t word = 0;
    ASSERT_EQ(ms.fetch(pc, word), mem::AccessError::None);
    expect_same_decode(*cached, isa::decode(word), pc);
  }
  const isa::PredecodeStats& st = ms.predecode_stats();
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.fills, 0u);
  EXPECT_EQ(st.bypasses, 0u);

  // The slow-path gates: misaligned, null-guard and out-of-bounds PCs are
  // never served from the cache.
  EXPECT_EQ(ms.predecode(base + 2), nullptr);
  EXPECT_EQ(ms.predecode(0x10), nullptr);
  EXPECT_EQ(ms.predecode(ms.phys().size()), nullptr);
}

TEST_P(PredecodeFuzz, StoreRewritingCachedWordInvalidates) {
  mem::MemSystem ms;
  const std::vector<isa::Word> pool = word_pool(GetParam());
  const std::uint64_t base = 0x2000;
  std::vector<std::uint8_t> bytes(pool.size() * 4);
  std::memcpy(bytes.data(), pool.data(), bytes.size());
  ms.phys().write_block(base, bytes);

  util::Rng rng(GetParam() * 0x2545f4914f6cdd1dull + 1);
  for (int round = 0; round < 200; ++round) {
    // Warm the page containing a random victim PC, then rewrite the word
    // mid-page through the store path and re-read through the cache.
    const std::uint64_t pc = base + 4 * rng.below(pool.size());
    ASSERT_NE(ms.predecode(pc), nullptr);
    const isa::Word new_word = isa::Word(rng.below(1ull << 32));
    ASSERT_EQ(ms.phys().store(pc, 4, new_word), mem::AccessError::None);
    const isa::Decoded* cached = ms.predecode(pc);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(cached->raw, new_word) << "stale predecode served after store";
    expect_same_decode(*cached, isa::decode(new_word), pc);
  }
  EXPECT_GT(ms.predecode_stats().stale, 0u) << "rewrites never invalidated a page";
}

TEST_P(PredecodeFuzz, FetchBitFlipOnCachedPcMatchesLiveDecode) {
  // A real simulation: a tight loop (every PC predecoded after the first
  // iteration) with a random seeded fetch-stage bit flip. The run with the
  // cache on must match the run with the cache off in output, committed
  // count and exit status — and must take the bypass path, not serve the
  // stale (uncorrupted) decode.
  util::Rng rng(GetParam() ^ 0xabcdef);
  fi::Fault f;
  f.location = fi::FaultLocation::Fetch;
  f.time_kind = fi::FaultTimeKind::Instruction;
  f.time = 1 + rng.below(300);
  f.behavior = fi::FaultBehavior::Flip;
  f.operand = rng.below(32);

  Assembler as;
  const Label entry = as.here("main");
  as.fi_activate();  // a0 == 0: FI on for thread 0
  as.li(reg::s0, 100);
  const Label loop = as.here("loop");
  as.addq_i(reg::t0, 3, reg::t0);
  as.xor_(reg::t0, reg::s0, reg::t1);
  as.addq(reg::t1, reg::t2, reg::t2);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);
  as.print_int_r(reg::t2);
  as.mov_i(0, reg::a0);
  as.exit_();
  const Program prog = as.finalize(entry);

  struct Out {
    std::string output;
    std::uint64_t committed;
    sim::ExitReason reason;
    std::uint64_t bypasses;
  } runs[2];
  int i = 0;
  for (const bool predecode : {true, false}) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::AtomicSimple;
    cfg.predecode = predecode;
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread();
    s.fault_manager().load_faults({f});
    const sim::RunResult rr = s.run(10'000'000);
    runs[i++] = {s.output(0), rr.committed, rr.reason,
                 s.memsys().predecode_stats().bypasses};
  }
  EXPECT_EQ(runs[0].output, runs[1].output) << f.to_line();
  EXPECT_EQ(runs[0].committed, runs[1].committed) << f.to_line();
  EXPECT_EQ(runs[0].reason, runs[1].reason) << f.to_line();
  EXPECT_GE(runs[0].bypasses, 1u) << f.to_line();
  EXPECT_EQ(runs[1].bypasses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredecodeFuzz,
                         ::testing::Range(std::uint64_t(1), std::uint64_t(13)));

}  // namespace
