// Memory-subsystem tests: PhysMem access checking, cache geometry/LRU/
// write-back behavior, the MemSystem policy layer and latency model, and
// serialization round-trips.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/memsys.hpp"
#include "util/rng.hpp"

namespace {

using namespace gemfi;
using namespace gemfi::mem;

TEST(PhysMem, CheckedAccessSemantics) {
  PhysMem pm(4096);
  std::uint64_t v = 0;
  EXPECT_EQ(pm.store(0, 8, 0x1122334455667788ull), AccessError::None);
  EXPECT_EQ(pm.load(0, 8, v), AccessError::None);
  EXPECT_EQ(v, 0x1122334455667788ull);
  EXPECT_EQ(pm.load(0, 4, v), AccessError::None);
  EXPECT_EQ(v, 0x55667788u);  // little-endian
  EXPECT_EQ(pm.load(1, 4, v), AccessError::Misaligned);
  EXPECT_EQ(pm.load(4096, 1, v), AccessError::OutOfBounds);
  EXPECT_EQ(pm.load(4095, 8, v), AccessError::OutOfBounds);
  EXPECT_EQ(pm.store(4090, 8, 0), AccessError::OutOfBounds);
  // Failed loads leave the out-parameter untouched.
  v = 42;
  EXPECT_EQ(pm.load(9999, 8, v), AccessError::OutOfBounds);
  EXPECT_EQ(v, 42u);
}

TEST(PhysMem, DirtyBitmapTracksStoresAndBlockWrites) {
  PhysMem pm(16 * PhysMem::kPageBytes);
  EXPECT_EQ(pm.dirty_page_count(), 0u);

  // A store marks exactly its page.
  EXPECT_EQ(pm.store(5 * PhysMem::kPageBytes + 8, 8, 1), AccessError::None);
  EXPECT_TRUE(pm.page_dirty(5));
  EXPECT_FALSE(pm.page_dirty(4));
  EXPECT_EQ(pm.dirty_page_count(), 1u);

  // A block write crossing a page boundary marks both pages.
  const std::vector<std::uint8_t> blob(256, 0xcd);
  pm.write_block(7 * PhysMem::kPageBytes - 100, blob);
  EXPECT_TRUE(pm.page_dirty(6));
  EXPECT_TRUE(pm.page_dirty(7));
  EXPECT_EQ(pm.dirty_page_count(), 3u);

  pm.clear_dirty();
  EXPECT_EQ(pm.dirty_page_count(), 0u);

  pm.mark_all_dirty();
  EXPECT_EQ(pm.dirty_page_count(), pm.page_count());

  // copy_from replaces the image and leaves a clean bitmap (memory == image);
  // a wrong-sized image is rejected.
  const std::vector<std::uint8_t> image(16 * PhysMem::kPageBytes, 0x11);
  pm.copy_from(image);
  EXPECT_EQ(pm.dirty_page_count(), 0u);
  std::uint64_t v = 0;
  EXPECT_EQ(pm.load(0, 8, v), AccessError::None);
  EXPECT_EQ(v, 0x1111111111111111ull);
  const std::vector<std::uint8_t> wrong(8 * PhysMem::kPageBytes, 0);
  EXPECT_THROW(pm.copy_from(wrong), gemfi::util::DeserializeError);
}

TEST(Cache, GeometryMathSurvivesHugeSetCounts) {
  // Regression: the set-index shift used to be computed with
  // __builtin_ctz(int) on the set count, which truncates geometries with
  // >= 2^32 sets. CacheGeometry does the math in 64 bits without
  // allocating the (infeasible) line array.
  CacheConfig cfg;
  cfg.line_bytes = 64;
  cfg.ways = 1;
  cfg.size_bytes = (1ull << 33) * 64;  // 2^33 sets of one 64-byte line
  const auto g = CacheGeometry::from_config(cfg);
  EXPECT_EQ(g.num_sets, 1ull << 33);
  EXPECT_EQ(g.set_shift, 33u);

  const std::uint64_t addr = (0x3bull << (33 + 6)) | (0x1234567ull << 6) | 17;
  EXPECT_EQ(g.set_of(addr), 0x1234567ull);
  EXPECT_EQ(g.tag_of(addr), 0x3bull);
  // Two addresses 2^32 lines apart must land in different sets, not alias.
  EXPECT_NE(g.set_of(0), g.set_of(1ull << (32 + 6)));
}

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(Cache({.size_bytes = 1000, .line_bytes = 64, .ways = 4}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 4096, .line_bytes = 60, .ways = 4}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 4096, .line_bytes = 64, .ways = 0}),
               std::invalid_argument);
  EXPECT_NO_THROW(Cache({.size_bytes = 4096, .line_bytes = 64, .ways = 4}));
}

TEST(Cache, GeometryFromConfigRejections) {
  // Every malformed-shape class from_config() guards, checked directly on
  // the geometry math (no line array allocation involved).
  // Non-power-of-two line size.
  EXPECT_THROW(CacheGeometry::from_config({.size_bytes = 4096, .line_bytes = 48, .ways = 4}),
               std::invalid_argument);
  // Zero line size and zero ways.
  EXPECT_THROW(CacheGeometry::from_config({.size_bytes = 4096, .line_bytes = 0, .ways = 4}),
               std::invalid_argument);
  EXPECT_THROW(CacheGeometry::from_config({.size_bytes = 4096, .line_bytes = 64, .ways = 0}),
               std::invalid_argument);
  // Size not divisible by line_bytes * ways.
  EXPECT_THROW(CacheGeometry::from_config({.size_bytes = 1000, .line_bytes = 64, .ways = 2}),
               std::invalid_argument);
  // Divisible, but the resulting set count (3) is not a power of two.
  EXPECT_THROW(CacheGeometry::from_config({.size_bytes = 64 * 2 * 3, .line_bytes = 64, .ways = 2}),
               std::invalid_argument);
  // Degenerate-but-legal single-set geometry.
  const auto g = CacheGeometry::from_config({.size_bytes = 64 * 2, .line_bytes = 64, .ways = 2});
  EXPECT_EQ(g.num_sets, 1u);
  EXPECT_EQ(g.set_shift, 0u);
}

TEST(Cache, HitsMissesAndLineGranularity) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x103F, false).hit);   // same line
  EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
  EXPECT_TRUE(c.probe(0x1000));
  EXPECT_FALSE(c.probe(0x2000000));
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 32 sets of 64B lines: three lines mapping to one set.
  Cache c({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  const std::uint64_t setstride = 32 * 64;
  c.access(0 * setstride, false);  // A
  c.access(1 * setstride, false);  // B
  c.access(0 * setstride, false);  // touch A -> B is LRU
  c.access(2 * setstride, false);  // C evicts B
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(setstride));
  EXPECT_TRUE(c.probe(2 * setstride));
}

TEST(Cache, WritebackOnDirtyEviction) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  const std::uint64_t setstride = 32 * 64;
  c.access(0, true);  // dirty A
  c.access(setstride, false);
  const auto r = c.access(2 * setstride, false);  // evicts dirty A
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(c.stats().writebacks, 1u);
  c.flush();
  EXPECT_FALSE(c.probe(2 * setstride));
}

TEST(Cache, SerializationRoundTrip) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) c.access(rng.below(1 << 16) & ~7ull, rng.chance(0.3));
  util::ByteWriter w;
  c.serialize(w);
  Cache c2({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  util::ByteReader r(w.bytes());
  c2.deserialize(r);
  // Identical behavior after restore: same hit/miss on a probe sequence.
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t addr = rng.below(1 << 16) & ~7ull;
    EXPECT_EQ(c.probe(addr), c2.probe(addr));
  }
}

TEST(Cache, SerializationRebuildsMruState) {
  // The per-set MRU index is derived state — never serialized, rebuilt from
  // the lru fields on deserialize. Continuing one random access sequence on
  // the original and the restored cache must produce identical results
  // access by access: any MRU divergence would surface as a differing
  // hit/writeback outcome or counter.
  Cache c({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  util::Rng warm(7);
  for (int i = 0; i < 2000; ++i) c.access(warm.below(1 << 15) & ~7ull, warm.chance(0.3));

  util::ByteWriter w;
  c.serialize(w);
  Cache c2({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  util::ByteReader r(w.bytes());
  c2.deserialize(r);

  util::Rng cont(11);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t addr = cont.below(1 << 15) & ~7ull;
    const bool write = cont.chance(0.3);
    const auto a = c.access(addr, write);
    const auto b = c2.access(addr, write);
    ASSERT_EQ(a.hit, b.hit) << "access " << i;
    ASSERT_EQ(a.writeback, b.writeback) << "access " << i;
  }
  EXPECT_EQ(c.stats().hits, c2.stats().hits);
  EXPECT_EQ(c.stats().misses, c2.stats().misses);
  EXPECT_EQ(c.stats().writebacks, c2.stats().writebacks);
}

TEST(Cache, MruFastPathIsObservationallyIdentical) {
  // Differential fuzz of the inline MRU hit path against the ways-wide scan
  // (`--no-fastpath`): same sequence, same observables, every access.
  Cache fast({.size_bytes = 2048, .line_bytes = 64, .ways = 4});
  Cache slow({.size_bytes = 2048, .line_bytes = 64, .ways = 4});
  slow.set_mru_enabled(false);
  util::Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    // Small address range so sets see heavy reuse (MRU hits) and conflict
    // evictions in one run.
    const std::uint64_t addr = rng.below(1 << 13) & ~7ull;
    const bool write = rng.chance(0.4);
    const auto a = fast.access(addr, write);
    const auto b = slow.access(addr, write);
    ASSERT_EQ(a.hit, b.hit) << "access " << i;
    ASSERT_EQ(a.writeback, b.writeback) << "access " << i;
  }
  EXPECT_EQ(fast.stats().hits, slow.stats().hits);
  EXPECT_EQ(fast.stats().misses, slow.stats().misses);
  EXPECT_EQ(fast.stats().writebacks, slow.stats().writebacks);
  for (std::uint64_t addr = 0; addr < (1 << 13); addr += 64)
    ASSERT_EQ(fast.probe(addr), slow.probe(addr)) << addr;
}

TEST(Cache, TouchReadOnlyHitsTheMruWay) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .ways = 2});
  const std::uint64_t setstride = 32 * 64;
  EXPECT_FALSE(c.touch_read(0x1000));  // cold: no state change, no counters
  EXPECT_EQ(c.stats().accesses(), 0u);

  c.access(0x1000, false);
  EXPECT_TRUE(c.touch_read(0x1000));
  EXPECT_TRUE(c.touch_read(0x1038));  // same line
  EXPECT_EQ(c.stats().hits, 2u);

  // Another line in the same set takes over the MRU way; the old line is
  // still resident but touch_read must decline it (no scan fallback).
  c.access(0x1000 + setstride, false);
  EXPECT_FALSE(c.touch_read(0x1000));
  EXPECT_TRUE(c.probe(0x1000));
}

TEST(MemSystem, PolicyChecks) {
  MemSystem ms;
  ms.set_code_region(0x2000, 0x3000);
  std::uint64_t v = 0;
  EXPECT_EQ(ms.read(0x10, 8, v), AccessError::NullPage);
  EXPECT_EQ(ms.write(0x2000, 8, 1), AccessError::ReadOnly);
  EXPECT_EQ(ms.write(0x2ff8, 8, 1), AccessError::ReadOnly);
  EXPECT_EQ(ms.write(0x3000, 8, 1), AccessError::None);
  EXPECT_EQ(ms.read(0x2000, 8, v), AccessError::None);  // code is readable
  std::uint32_t word = 0;
  EXPECT_EQ(ms.fetch(0x2000, word), AccessError::None);
  EXPECT_EQ(ms.fetch(0x10, word), AccessError::NullPage);
  EXPECT_EQ(ms.fetch(ms.phys().size(), word), AccessError::OutOfBounds);
}

TEST(MemSystem, LatencyLadder) {
  MemSysConfig cfg;
  MemSystem ms(cfg);
  // Cold: L1 miss + L2 miss + DRAM.
  const std::uint32_t cold = ms.data_latency(0x10000, false);
  EXPECT_EQ(cold, cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.dram_latency);
  // Warm: L1 hit.
  EXPECT_EQ(ms.data_latency(0x10000, false), cfg.l1d.hit_latency);
  // Fetch path uses the I-cache.
  const std::uint32_t coldf = ms.fetch_latency(0x2000);
  EXPECT_EQ(coldf, cfg.l1i.hit_latency + cfg.l2.hit_latency + cfg.dram_latency);
  EXPECT_EQ(ms.fetch_latency(0x2000), cfg.l1i.hit_latency);
  // L2 hit after L1 eviction: fill many distinct lines mapping to one L1 set.
  MemSystem ms2(cfg);
  const std::uint64_t l1_sets = cfg.l1d.size_bytes / (cfg.l1d.line_bytes * cfg.l1d.ways);
  const std::uint64_t stride = l1_sets * cfg.l1d.line_bytes;
  for (unsigned i = 0; i < cfg.l1d.ways + 1; ++i) ms2.data_latency(0x10000 + i * stride, false);
  const std::uint32_t l2hit = ms2.data_latency(0x10000, false);
  EXPECT_EQ(l2hit, cfg.l1d.hit_latency + cfg.l2.hit_latency);
}

TEST(MemSystem, StatsAccumulateAndReset) {
  MemSystem ms;
  ms.data_latency(0x8000, false);
  ms.data_latency(0x8000, true);
  ms.fetch_latency(0x2000);
  EXPECT_EQ(ms.l1d_stats().accesses(), 2u);
  EXPECT_EQ(ms.l1i_stats().accesses(), 1u);
  EXPECT_GT(ms.l2_stats().misses, 0u);
  ms.reset_stats();
  EXPECT_EQ(ms.l1d_stats().accesses(), 0u);
}

TEST(MemSystem, ResetStatsAlsoClearsPredecodeCounters) {
  // Regression: reset_stats() zeroed the cache counters but left the
  // predecode-cache counters running, skewing post-reset stats reports.
  MemSystem ms;
  ASSERT_EQ(ms.write(0x8000, 4, 0x43ff0401u), AccessError::None);  // a valid word
  ASSERT_NE(ms.predecode(0x8000), nullptr);                        // page fill
  ASSERT_NE(ms.predecode(0x8000), nullptr);                        // hit
  EXPECT_GT(ms.predecode_stats().fills, 0u);
  EXPECT_GT(ms.predecode_stats().hits, 0u);
  ms.reset_stats();
  EXPECT_EQ(ms.predecode_stats().fills, 0u);
  EXPECT_EQ(ms.predecode_stats().hits, 0u);
  EXPECT_EQ(ms.predecode_stats().stale, 0u);
  EXPECT_EQ(ms.predecode_stats().bypasses, 0u);
}

TEST(MemSystem, FetchLineBufferIsLatencyExact) {
  // The one-entry fetch line buffer (fastpath) must charge exactly the
  // latencies of the layered lookup, hit the same cache levels, and count
  // the same stats — across sequential runs, line crossings, evictions and
  // interleaved data traffic sharing the L2.
  MemSysConfig cfg;
  MemSystem fast(cfg);
  MemSystem slow(cfg);
  slow.set_fastpath_enabled(false);
  util::Rng rng(17);
  std::uint64_t pc = 0x2000;
  for (int i = 0; i < 50000; ++i) {
    if (rng.chance(0.1)) {
      // Jump: sometimes far (new line/page), sometimes within the line.
      pc = rng.chance(0.5) ? (0x2000 + (rng.below(1 << 18) & ~3ull)) : (pc & ~63ull);
    }
    ASSERT_EQ(fast.fetch_latency(pc), slow.fetch_latency(pc)) << "fetch " << i;
    if (rng.chance(0.2)) {
      const std::uint64_t addr = 0x40000 + (rng.below(1 << 18) & ~7ull);
      const bool write = rng.chance(0.3);
      ASSERT_EQ(fast.data_latency(addr, write), slow.data_latency(addr, write)) << "data " << i;
    }
    pc += 4;
  }
  EXPECT_EQ(fast.l1i_stats().hits, slow.l1i_stats().hits);
  EXPECT_EQ(fast.l1i_stats().misses, slow.l1i_stats().misses);
  EXPECT_EQ(fast.l1d_stats().hits, slow.l1d_stats().hits);
  EXPECT_EQ(fast.l2_stats().hits, slow.l2_stats().hits);
  EXPECT_EQ(fast.l2_stats().misses, slow.l2_stats().misses);
  EXPECT_EQ(fast.l2_stats().writebacks, slow.l2_stats().writebacks);
}

TEST(MemSystem, SerializationPreservesMemoryAndCaches) {
  MemSystem ms;
  ms.set_code_region(0x2000, 0x2100);
  ASSERT_EQ(ms.write(0x8000, 8, 0xabcdefull), AccessError::None);
  ms.data_latency(0x8000, true);
  util::ByteWriter w;
  ms.serialize(w);

  MemSystem ms2;
  util::ByteReader r(w.bytes());
  ms2.deserialize(r);
  std::uint64_t v = 0;
  ASSERT_EQ(ms2.read(0x8000, 8, v), AccessError::None);
  EXPECT_EQ(v, 0xabcdefull);
  EXPECT_EQ(ms2.code_base(), 0x2000u);
  // Warm line survived the round-trip.
  EXPECT_EQ(ms2.data_latency(0x8000, false), ms2.config().l1d.hit_latency);
}

}  // namespace
