// Vdd fault-rate model tests (the paper's Sec. VII future-work extension).
#include <gtest/gtest.h>

#include <cmath>

#include "fi/vdd_model.hpp"

namespace {

using namespace gemfi;
using fi::VddModel;

TEST(VddModel, RateIsZeroAtNominalAndMonotoneBelow) {
  const VddModel m;
  EXPECT_EQ(m.error_rate(1.0), 0.0);
  EXPECT_EQ(m.error_rate(1.2), 0.0);
  double prev = 0.0;
  for (double v = 0.99; v >= 0.60; v -= 0.01) {
    const double r = m.error_rate(v);
    EXPECT_GT(r, prev) << "rate must grow as Vdd drops (v=" << v << ")";
    prev = r;
  }
  EXPECT_NEAR(m.error_rate(m.config().vmin), m.config().rate_at_vmin, 1e-12);
}

TEST(VddModel, PowerScalesQuadratically) {
  const VddModel m;
  EXPECT_DOUBLE_EQ(m.relative_power(1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.relative_power(0.5), 0.25);
}

TEST(VddModel, SamplingIsDeterministicAndPoissonShaped) {
  const VddModel m;
  util::Rng a(9), b(9);
  const auto fa = m.sample_faults(a, 0.7, 100000);
  const auto fb = m.sample_faults(b, 0.7, 100000);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i)
    EXPECT_EQ(fa[i].to_line(), fb[i].to_line());

  // Empirical mean of the Poisson count tracks lambda.
  const double lambda = m.error_rate(0.7) * 100000.0;
  util::Rng rng(123);
  double total = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) total += double(m.sample_faults(rng, 0.7, 100000).size());
  const double mean = total / trials;
  EXPECT_NEAR(mean, lambda, 4.0 * std::sqrt(lambda / trials) + 0.2);
}

TEST(VddModel, SampledFaultsAreWellFormedSEUs) {
  const VddModel m;
  util::Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    for (const fi::Fault& f : m.sample_faults(rng, 0.62, 5000)) {
      EXPECT_EQ(f.behavior, fi::FaultBehavior::Flip);
      EXPECT_EQ(f.occurrences, 1u);
      EXPECT_GE(f.time, 1u);
      EXPECT_LE(f.time, 5000u);
      // Round-trips through the input-file grammar.
      EXPECT_EQ(fi::parse_fault(f.to_line()).to_line(), f.to_line());
    }
  }
}

TEST(VddModel, NominalVoltageSamplesNothing) {
  const VddModel m;
  util::Rng rng(7);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(m.sample_faults(rng, 1.0, 1 << 20).empty());
}

TEST(VddModel, ExtremeVddPoissonDoesNotUnderflow) {
  // Regression: Knuth's product method compares a uniform product against
  // exp(-lambda), which underflows to 0 near lambda ~ 745; the sampler then
  // returned a count pinned at ~1075 no matter how much larger lambda grew.
  // Above the threshold the normal approximation must track lambda itself.
  for (const double lambda : {1000.0, 20000.0, 3e6}) {
    util::Rng rng(5);
    double total = 0;
    const int trials = 200;
    for (int i = 0; i < trials; ++i) total += double(fi::poisson_sample(rng, lambda));
    const double mean = total / trials;
    EXPECT_NEAR(mean, lambda, 5.0 * std::sqrt(lambda / trials) + 1.0) << lambda;
  }
  // End-to-end: an aggressive configuration at deep undervolt — a kernel
  // long enough that exp(-lambda) is exactly 0.0 in double precision.
  fi::VddModelConfig cfg;
  cfg.rate_at_vmin = 0.01;
  const VddModel m(cfg);
  util::Rng rng(77);
  const double lambda = m.error_rate(cfg.vmin) * 200000.0;
  ASSERT_GT(lambda, 1500.0);
  const auto faults = m.sample_faults(rng, cfg.vmin, 200000);
  EXPECT_GT(double(faults.size()), lambda * 0.9);
  EXPECT_LT(double(faults.size()), lambda * 1.1);
}

TEST(VddModel, SmallLambdaStreamUnchangedByFallback) {
  // The normal-approximation fallback must not perturb the small-lambda
  // regime: same seed, same draw sequence as the classic Knuth sampler.
  util::Rng a(11), b(11);
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = fi::poisson_sample(a, 3.0);
    std::size_t count = 0;
    const double limit = std::exp(-3.0);
    double p = 1.0;
    for (;;) {
      p *= b.uniform();
      if (p <= limit) break;
      ++count;
    }
    EXPECT_EQ(n, count);
  }
}

TEST(VddModel, ModelMixSynthesizesRequestedFamilies) {
  fi::VddModelConfig cfg;
  cfg.rate_at_vmin = 1e-3;
  cfg.mix_transient = 0.0;
  cfg.mix_stuck = 1.0;
  VddModel stuck(cfg);
  util::Rng rng(13);
  bool saw_any = false;
  for (int i = 0; i < 50; ++i) {
    for (const fi::Fault& f : stuck.sample_faults(rng, 0.62, 5000)) {
      saw_any = true;
      EXPECT_TRUE(f.behavior == fi::FaultBehavior::StuckZero ||
                  f.behavior == fi::FaultBehavior::StuckOne);
      EXPECT_EQ(f.occurrences, fi::kPermanent);
      EXPECT_EQ(fi::parse_fault(f.to_line()).to_line(), f.to_line());
    }
  }
  EXPECT_TRUE(saw_any);

  cfg.mix_stuck = 0.0;
  cfg.mix_intermittent = 1.0;
  VddModel inter(cfg);
  for (int i = 0; i < 50; ++i) {
    for (const fi::Fault& f : inter.sample_faults(rng, 0.62, 5000)) {
      EXPECT_TRUE(f.duty_cycled());
      EXPECT_GE(f.duty_active, 1u);
      EXPECT_LE(f.duty_active, f.duty_period);
      EXPECT_EQ(f.occurrences, fi::kPermanent);
      EXPECT_EQ(fi::parse_fault(f.to_line()).to_line(), f.to_line());
    }
  }

  cfg.mix_intermittent = 0.0;
  cfg.mix_attack = 1.0;
  VddModel attack(cfg);
  for (int i = 0; i < 50; ++i) {
    for (const fi::Fault& f : attack.sample_faults(rng, 0.62, 5000)) {
      EXPECT_TRUE(f.location == fi::FaultLocation::Skip ||
                  f.location == fi::FaultLocation::Opcode);
      EXPECT_EQ(fi::parse_fault(f.to_line()).to_line(), f.to_line());
    }
  }
}

TEST(VddModel, StructureWeightZeroExcludesLocation) {
  // Only the integer register file is susceptible: every sampled fault must
  // land there, and its per-location rate carries the full weight.
  fi::VddModelConfig cfg;
  cfg.rate_at_vmin = 1e-3;
  for (unsigned i = 1; i < fi::kNumSeuFaultLocations; ++i) cfg.structure_weight[i] = 0.0;
  const VddModel m(cfg);
  util::Rng rng(17);
  bool saw_any = false;
  for (int i = 0; i < 100; ++i) {
    for (const fi::Fault& f : m.sample_faults(rng, 0.62, 5000)) {
      saw_any = true;
      EXPECT_EQ(f.location, fi::FaultLocation::IntReg);
    }
  }
  EXPECT_TRUE(saw_any);
  EXPECT_EQ(m.error_rate(0.7, fi::FaultLocation::FpReg), 0.0);
  EXPECT_GT(m.error_rate(0.7, fi::FaultLocation::IntReg), 0.0);
  // The averaged rate scales with the mean structure weight (1/7 here).
  const VddModel base;
  EXPECT_NEAR(m.error_rate(0.7), base.error_rate(0.7) / 7.0, 1e-15);
}

TEST(VddModel, DutyCycleScalesRateLinearly) {
  fi::VddModelConfig cfg;
  cfg.duty_cycle = 0.25;
  const VddModel quarter(cfg);
  const VddModel full;
  EXPECT_NEAR(quarter.error_rate(0.7), 0.25 * full.error_rate(0.7), 1e-15);
}

}  // namespace
