// Vdd fault-rate model tests (the paper's Sec. VII future-work extension).
#include <gtest/gtest.h>

#include <cmath>

#include "fi/vdd_model.hpp"

namespace {

using namespace gemfi;
using fi::VddModel;

TEST(VddModel, RateIsZeroAtNominalAndMonotoneBelow) {
  const VddModel m;
  EXPECT_EQ(m.error_rate(1.0), 0.0);
  EXPECT_EQ(m.error_rate(1.2), 0.0);
  double prev = 0.0;
  for (double v = 0.99; v >= 0.60; v -= 0.01) {
    const double r = m.error_rate(v);
    EXPECT_GT(r, prev) << "rate must grow as Vdd drops (v=" << v << ")";
    prev = r;
  }
  EXPECT_NEAR(m.error_rate(m.config().vmin), m.config().rate_at_vmin, 1e-12);
}

TEST(VddModel, PowerScalesQuadratically) {
  const VddModel m;
  EXPECT_DOUBLE_EQ(m.relative_power(1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.relative_power(0.5), 0.25);
}

TEST(VddModel, SamplingIsDeterministicAndPoissonShaped) {
  const VddModel m;
  util::Rng a(9), b(9);
  const auto fa = m.sample_faults(a, 0.7, 100000);
  const auto fb = m.sample_faults(b, 0.7, 100000);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i)
    EXPECT_EQ(fa[i].to_line(), fb[i].to_line());

  // Empirical mean of the Poisson count tracks lambda.
  const double lambda = m.error_rate(0.7) * 100000.0;
  util::Rng rng(123);
  double total = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) total += double(m.sample_faults(rng, 0.7, 100000).size());
  const double mean = total / trials;
  EXPECT_NEAR(mean, lambda, 4.0 * std::sqrt(lambda / trials) + 0.2);
}

TEST(VddModel, SampledFaultsAreWellFormedSEUs) {
  const VddModel m;
  util::Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    for (const fi::Fault& f : m.sample_faults(rng, 0.62, 5000)) {
      EXPECT_EQ(f.behavior, fi::FaultBehavior::Flip);
      EXPECT_EQ(f.occurrences, 1u);
      EXPECT_GE(f.time, 1u);
      EXPECT_LE(f.time, 5000u);
      // Round-trips through the input-file grammar.
      EXPECT_EQ(fi::parse_fault(f.to_line()).to_line(), f.to_line());
    }
  }
}

TEST(VddModel, NominalVoltageSamplesNothing) {
  const VddModel m;
  util::Rng rng(7);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(m.sample_faults(rng, 1.0, 1 << 20).empty());
}

}  // namespace
