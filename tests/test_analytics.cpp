// Unit tests for the streaming campaign analytics layer: the Aggregator's
// online counts and confidence intervals, the determinism of the sequential
// stop rule under adversarial arrival orders, the Autoscaler's watermark
// hysteresis, and the columnar result store's round-trip and truncation
// rejection. Everything here is synthetic — no simulator, no sockets — so
// the properties are tested in isolation from scheduling noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "campaign/analytics/aggregator.hpp"
#include "campaign/analytics/colstore.hpp"
#include "campaign/dispatch.hpp"
#include "campaign/runner.hpp"
#include "util/bytesio.hpp"
#include "util/stats.hpp"

using namespace gemfi;
namespace fs = std::filesystem;

namespace {

/// Deterministic synthetic record: a real seeded fault (so location/family
/// histograms see realistic variety) with a caller-chosen outcome.
campaign::ExperimentRecord make_rec(std::size_t index, apps::Outcome o) {
  campaign::ExperimentRecord rec;
  rec.index = index;
  rec.seed = campaign::experiment_seed(99, index);
  rec.result.fault = campaign::seeded_fault_any(99, index, 4096);
  rec.result.classification.outcome = o;
  rec.result.classification.metric = double(index % 37) / 7.0;
  rec.result.time_fraction = double(index % 100) / 100.0;
  rec.result.sim_ticks = 1000 + index;
  return rec;
}

/// A fixed multinomial-ish outcome pattern: deterministic, aperiodic enough
/// that no arrival order can reconstruct it by accident.
apps::Outcome outcome_at(std::size_t i) {
  const std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ull;
  return apps::Outcome((h >> 33) % apps::kNumOutcomes);
}

std::vector<campaign::ExperimentRecord> synthetic_campaign(std::size_t n) {
  std::vector<campaign::ExperimentRecord> recs;
  recs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) recs.push_back(make_rec(i, outcome_at(i)));
  return recs;
}

}  // namespace

// --- parse_stop_ci ---

TEST(ParseStopCi, AcceptsEpsAndEpsAtConf) {
  const auto p1 = campaign::parse_stop_ci("0.01@0.99");
  EXPECT_DOUBLE_EQ(p1.eps, 0.01);
  EXPECT_DOUBLE_EQ(p1.confidence, 0.99);
  EXPECT_TRUE(p1.enabled());

  const auto p2 = campaign::parse_stop_ci("0.05");
  EXPECT_DOUBLE_EQ(p2.eps, 0.05);
  EXPECT_DOUBLE_EQ(p2.confidence, 0.99);  // default confidence
}

TEST(ParseStopCi, RejectsMalformedAndOutOfRange) {
  EXPECT_THROW(campaign::parse_stop_ci("half"), std::invalid_argument);
  EXPECT_THROW(campaign::parse_stop_ci(""), std::invalid_argument);
  EXPECT_THROW(campaign::parse_stop_ci("0.01@"), std::invalid_argument);
  EXPECT_THROW(campaign::parse_stop_ci("0.01@bad"), std::invalid_argument);
  EXPECT_THROW(campaign::parse_stop_ci("0.7"), std::invalid_argument);     // eps > 0.5
  EXPECT_THROW(campaign::parse_stop_ci("0"), std::invalid_argument);       // eps == 0
  EXPECT_THROW(campaign::parse_stop_ci("-0.01"), std::invalid_argument);
  EXPECT_THROW(campaign::parse_stop_ci("0.01@0.3"), std::invalid_argument);  // conf
  EXPECT_THROW(campaign::parse_stop_ci("0.01@1.0"), std::invalid_argument);
}

// --- Aggregator: online == post-hoc, independent of arrival order ---

TEST(Aggregator, OnlineTotalsMatchPostHocInAnyArrivalOrder) {
  const auto recs = synthetic_campaign(500);

  campaign::Aggregator in_order, reversed, shuffled;
  for (const auto& r : recs) in_order.add(r);
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) reversed.add(*it);
  auto perm = recs;
  std::shuffle(perm.begin(), perm.end(), std::mt19937_64(42));
  for (const auto& r : perm) shuffled.add(r);

  EXPECT_EQ(in_order.n(), recs.size());
  EXPECT_EQ(in_order.outcome_counts(), reversed.outcome_counts());
  EXPECT_EQ(in_order.outcome_counts(), shuffled.outcome_counts());
  EXPECT_EQ(in_order.location_counts(), shuffled.location_counts());
  EXPECT_EQ(in_order.family_counts(), shuffled.family_counts());
  EXPECT_EQ(in_order.timing_counts(), shuffled.timing_counts());

  // The no-stop summary covers the full record set, so it must be
  // byte-identical no matter how the records arrived.
  EXPECT_EQ(in_order.summary_json("summary"), reversed.summary_json("summary"));
  EXPECT_EQ(in_order.summary_json("summary"), shuffled.summary_json("summary"));
}

TEST(Aggregator, IntervalsMatchUtilStats) {
  campaign::Aggregator agg(campaign::StopPolicy{0.0, 0.95});
  for (std::size_t i = 0; i < 100; ++i)
    agg.add(make_rec(i, i < 25 ? apps::Outcome::SDC : apps::Outcome::NonPropagated));

  const auto w = agg.wilson(apps::Outcome::SDC);
  const auto w_ref = util::wilson_interval(25, 100, 0.95);
  EXPECT_DOUBLE_EQ(w.lo, w_ref.lo);
  EXPECT_DOUBLE_EQ(w.hi, w_ref.hi);

  const auto cp = agg.clopper_pearson(apps::Outcome::SDC);
  const auto cp_ref = util::clopper_pearson_interval(25, 100, 0.95);
  EXPECT_DOUBLE_EQ(cp.lo, cp_ref.lo);
  EXPECT_DOUBLE_EQ(cp.hi, cp_ref.hi);
}

// --- Aggregator: sequential stop determinism ---

// The stop rule must be a pure function of the fault list: same stop index
// and a byte-identical stopped_early summary whether records arrive in
// order, in reverse (one unlock cascade at the end), or block-swapped.
TEST(Aggregator, StopIndexAndSummaryIdenticalAcrossArrivalOrders) {
  // 10% SDC / 90% masked: tight proportions, so the rule fires well before
  // the campaign end even without the finite-population correction.
  const std::size_t n = 400;
  std::vector<campaign::ExperimentRecord> recs;
  for (std::size_t i = 0; i < n; ++i)
    recs.push_back(
        make_rec(i, i % 10 == 0 ? apps::Outcome::SDC : apps::Outcome::NonPropagated));

  const campaign::StopPolicy policy{0.05, 0.95};
  campaign::Aggregator in_order(policy, n), reversed(policy, n), swapped(policy, n);

  bool fired_in_order = false;
  for (const auto& r : recs) fired_in_order |= in_order.add(r);
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) reversed.add(*it);
  // Arrival pattern of a 2-worker race: odd indices first, then even.
  for (std::size_t i = 1; i < n; i += 2) swapped.add(recs[i]);
  for (std::size_t i = 0; i < n; i += 2) swapped.add(recs[i]);

  ASSERT_TRUE(fired_in_order);
  ASSERT_TRUE(in_order.should_stop());
  ASSERT_TRUE(reversed.should_stop());
  ASSERT_TRUE(swapped.should_stop());
  EXPECT_EQ(in_order.stop_index(), reversed.stop_index());
  EXPECT_EQ(in_order.stop_index(), swapped.stop_index());
  EXPECT_GE(in_order.stop_index(), policy.min_n);
  EXPECT_LT(in_order.stop_index(), n);

  EXPECT_EQ(in_order.summary_json("stopped_early"),
            reversed.summary_json("stopped_early"));
  EXPECT_EQ(in_order.summary_json("stopped_early"),
            swapped.summary_json("stopped_early"));
}

// Once the rule fires the stop prefix is frozen: later arrivals still count
// toward the order-independent totals but must not leak into the prefix
// counts (one late record can unlock a whole buffered run — absorbing past
// the stop index would make the summary depend on arrival order).
TEST(Aggregator, StopPrefixIsFrozenAtFirstSatisfyingK) {
  const std::size_t n = 400;
  const campaign::StopPolicy policy{0.05, 0.95};
  campaign::Aggregator agg(policy, n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool fired = agg.add(
        make_rec(i, i % 10 == 0 ? apps::Outcome::SDC : apps::Outcome::NonPropagated));
    if (agg.should_stop() && !fired)
      EXPECT_FALSE(fired) << "add() must return false while draining";
  }
  ASSERT_TRUE(agg.should_stop());
  std::uint64_t prefix_total = 0;
  for (const auto c : agg.prefix_counts()) prefix_total += c;
  EXPECT_EQ(prefix_total, agg.stop_index());
  EXPECT_EQ(agg.n(), n);  // totals still cover everything seen
}

// The finite-population correction: with the campaign plan as the population
// the rule certifies agreement with the full campaign's answer, so a 50/50
// split — hopeless for the infinite-population rule at eps=0.05 and n ~ 100
// — still stops once few enough experiments remain to move the proportions.
TEST(Aggregator, FinitePopulationCorrectionStopsWhatInfiniteCannot) {
  const std::size_t n = 110;
  const campaign::StopPolicy policy{0.05, 0.95};

  campaign::Aggregator finite(policy, n);   // knows the campaign size
  campaign::Aggregator infinite(policy, 0); // population unknown
  for (std::size_t i = 0; i < n; ++i) {
    const auto o = i % 2 ? apps::Outcome::SDC : apps::Outcome::NonPropagated;
    finite.add(make_rec(i, o));
    infinite.add(make_rec(i, o));
  }
  EXPECT_TRUE(finite.should_stop());
  EXPECT_LT(finite.stop_index(), n);
  EXPECT_FALSE(infinite.should_stop());
}

// --- Autoscaler watermark hysteresis ---

TEST(Autoscaler, GrowsAboveHighWatermarkRespectingCooldownAndMax) {
  campaign::AutoscaleConfig cfg;
  cfg.min_workers = 1;
  cfg.max_workers = 3;
  cfg.cooldown_s = 1.0;
  campaign::Autoscaler sc(cfg);

  // Huge backlog on a 1-worker/1-slot fleet: one spawn per cooldown period,
  // never past max_workers.
  auto d = sc.tick(0.0, 100, 1, 1);
  EXPECT_EQ(d.spawn, 1u);
  EXPECT_EQ(d.retire, 0u);
  d = sc.tick(0.5, 100, 1, 2);  // inside cooldown: no action
  EXPECT_EQ(d.spawn, 0u);
  d = sc.tick(1.5, 100, 2, 2);
  EXPECT_EQ(d.spawn, 1u);
  d = sc.tick(3.0, 100, 3, 3);  // at max: no growth
  EXPECT_EQ(d.spawn, 0u);
}

TEST(Autoscaler, RetiresBelowLowWatermarkNeverUnderMin) {
  campaign::AutoscaleConfig cfg;
  cfg.min_workers = 1;
  cfg.max_workers = 4;
  cfg.cooldown_s = 1.0;
  campaign::Autoscaler sc(cfg);

  auto d = sc.tick(0.0, 0, 4, 4);
  EXPECT_EQ(d.retire, 1u);
  d = sc.tick(1.5, 0, 3, 3);
  EXPECT_EQ(d.retire, 1u);
  d = sc.tick(3.0, 0, 2, 2);
  EXPECT_EQ(d.retire, 1u);
  d = sc.tick(4.5, 0, 1, 1);  // at min: keep the last worker
  EXPECT_EQ(d.retire, 0u);
  EXPECT_EQ(d.spawn, 0u);
}

// The no-oscillation property the watermark gap + cooldown buy: a load that
// sits anywhere inside [low, high] produces no decisions at all, and the
// load shift caused by a scaling action itself (capacity change moving
// backlog-per-slot across the band) cannot trigger the opposite action.
TEST(Autoscaler, NoSpawnRetireOscillation) {
  campaign::AutoscaleConfig cfg;
  cfg.min_workers = 1;
  cfg.max_workers = 8;
  cfg.high_watermark = 4.0;
  cfg.low_watermark = 1.0;
  cfg.cooldown_s = 1.0;
  campaign::Autoscaler sc(cfg);

  // Dead zone: no action no matter how long it sits there.
  for (int t = 0; t < 20; ++t) {
    const auto d = sc.tick(double(t), /*backlog=*/6, /*capacity=*/3, /*workers=*/3);
    EXPECT_EQ(d.spawn, 0u);
    EXPECT_EQ(d.retire, 0u);
  }

  // A spawn that lands the new load inside the band must not be followed by
  // a retire (or another spawn) while the backlog is unchanged.
  unsigned workers = 2;
  std::size_t backlog = 9;  // load 4.5 on 2 slots: grow
  auto d = sc.tick(100.0, backlog, workers, workers);
  EXPECT_EQ(d.spawn, 1u);
  workers += d.spawn;  // caller counts the spawn immediately (not-yet-joined)
  for (int t = 1; t <= 10; ++t) {
    d = sc.tick(100.0 + t, backlog, workers, workers);  // load 3.0: dead zone
    EXPECT_EQ(d.spawn, 0u) << "re-spawned for the same backlog";
    EXPECT_EQ(d.retire, 0u) << "retired the worker it just spawned";
  }
}

TEST(Autoscaler, DisabledPolicyNeverActs) {
  campaign::Autoscaler sc(campaign::AutoscaleConfig{});  // max_workers == 0
  const auto d = sc.tick(0.0, 1000, 1, 1);
  EXPECT_EQ(d.spawn, 0u);
  EXPECT_EQ(d.retire, 0u);
}

// --- Colstore ---

namespace {

std::vector<campaign::ColstoreRow> synthetic_rows(std::size_t n) {
  std::vector<campaign::ColstoreRow> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    campaign::ColstoreRow r;
    r.index = i * 977;  // forces wider packed-int widths as i grows
    r.worker = std::uint32_t(i % 5);
    r.seed = campaign::experiment_seed(7, i);
    r.outcome = std::uint8_t(i % apps::kNumOutcomes);
    r.location = std::uint8_t(i % fi::kNumFaultLocations);
    r.behavior = std::uint8_t(i % 3);
    r.family = std::uint8_t(i % fi::kNumFaultModelKinds);
    r.applied = (i % 3) != 0;
    r.retries = std::uint32_t(i % 2);
    r.time_fraction = double(i % 100) / 100.0;
    r.metric = (i % 7 == 0 ? -1.0 : 1.0) * double(i) * 0.125;
    r.sim_ticks = (std::uint64_t(1) << (i % 40)) + i;
    rows.push_back(r);
  }
  return rows;
}

fs::path temp_store(const char* tag) {
  return fs::temp_directory_path() /
         (std::string("gemfi_colstore_") + tag + "_" + std::to_string(::getpid()) +
          ".gfcs");
}

}  // namespace

TEST(Colstore, RoundTripsAcrossMultipleRowGroups) {
  const auto rows = synthetic_rows(1000);
  const fs::path path = temp_store("roundtrip");
  {
    campaign::ColstoreWriter w(path.string(), /*rows_per_group=*/64);
    for (const auto& r : rows) w.append(r);
    w.finish();
    EXPECT_EQ(w.rows_written(), rows.size());
  }

  const auto store = campaign::read_colstore(path.string());
  ASSERT_EQ(store.rows.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& a = rows[i];
    const auto& b = store.rows[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.location, b.location);
    EXPECT_EQ(a.behavior, b.behavior);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.applied, b.applied);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_DOUBLE_EQ(a.time_fraction, b.time_fraction);
    EXPECT_DOUBLE_EQ(a.metric, b.metric);
    EXPECT_EQ(a.sim_ticks, b.sim_ticks);
  }
  // Self-describing: the footer dictionaries carry every enum name.
  EXPECT_EQ(store.outcome_names.size(), apps::kNumOutcomes);
  EXPECT_EQ(store.location_names.size(), fi::kNumFaultLocations);
  EXPECT_EQ(store.family_names.size(), fi::kNumFaultModelKinds);
  fs::remove(path);
}

TEST(Colstore, EmptyStoreRoundTrips) {
  const fs::path path = temp_store("empty");
  {
    campaign::ColstoreWriter w(path.string());
    w.finish();
  }
  const auto store = campaign::read_colstore(path.string());
  EXPECT_TRUE(store.rows.empty());
  EXPECT_EQ(store.outcome_names.size(), apps::kNumOutcomes);
  fs::remove(path);
}

// Truncation fuzz: every proper prefix of a valid store must be rejected by
// the magic/CRC/bounds checks — never decoded as a shorter-but-plausible
// store and never crash.
TEST(Colstore, EveryTruncationIsRejected) {
  const auto rows = synthetic_rows(100);
  const fs::path path = temp_store("trunc");
  {
    campaign::ColstoreWriter w(path.string(), /*rows_per_group=*/16);
    for (const auto& r : rows) w.append(r);
    w.finish();
  }
  std::ifstream is(path, std::ios::binary);
  std::vector<std::uint8_t> image((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  is.close();
  fs::remove(path);
  ASSERT_GT(image.size(), 64u);

  // The full image decodes; every prefix throws.
  EXPECT_EQ(campaign::decode_colstore(image).rows.size(), rows.size());
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_THROW(campaign::decode_colstore(
                     std::span<const std::uint8_t>(image.data(), len)),
                 util::DeserializeError)
        << "prefix of " << len << " bytes was not rejected";
  }
}
