# Empty compiler generated dependencies file for gemfi_bench_common.
# This may be replaced when dependencies are built.
