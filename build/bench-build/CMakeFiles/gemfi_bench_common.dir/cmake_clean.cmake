file(REMOVE_RECURSE
  "CMakeFiles/gemfi_bench_common.dir/common.cpp.o"
  "CMakeFiles/gemfi_bench_common.dir/common.cpp.o.d"
  "libgemfi_bench_common.a"
  "libgemfi_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
