file(REMOVE_RECURSE
  "libgemfi_bench_common.a"
)
