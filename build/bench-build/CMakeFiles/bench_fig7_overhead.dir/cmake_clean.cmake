file(REMOVE_RECURSE
  "../bench/bench_fig7_overhead"
  "../bench/bench_fig7_overhead.pdb"
  "CMakeFiles/bench_fig7_overhead.dir/bench_fig7_overhead.cpp.o"
  "CMakeFiles/bench_fig7_overhead.dir/bench_fig7_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
