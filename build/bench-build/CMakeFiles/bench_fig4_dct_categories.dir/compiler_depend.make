# Empty compiler generated dependencies file for bench_fig4_dct_categories.
# This may be replaced when dependencies are built.
