# Empty compiler generated dependencies file for bench_vdd_sweep.
# This may be replaced when dependencies are built.
