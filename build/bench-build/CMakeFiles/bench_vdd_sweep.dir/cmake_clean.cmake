file(REMOVE_RECURSE
  "../bench/bench_vdd_sweep"
  "../bench/bench_vdd_sweep.pdb"
  "CMakeFiles/bench_vdd_sweep.dir/bench_vdd_sweep.cpp.o"
  "CMakeFiles/bench_vdd_sweep.dir/bench_vdd_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vdd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
