file(REMOVE_RECURSE
  "../bench/bench_fig5_location"
  "../bench/bench_fig5_location.pdb"
  "CMakeFiles/bench_fig5_location.dir/bench_fig5_location.cpp.o"
  "CMakeFiles/bench_fig5_location.dir/bench_fig5_location.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
