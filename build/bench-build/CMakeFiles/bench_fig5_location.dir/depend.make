# Empty dependencies file for bench_fig5_location.
# This may be replaced when dependencies are built.
