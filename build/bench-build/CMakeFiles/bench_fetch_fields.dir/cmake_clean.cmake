file(REMOVE_RECURSE
  "../bench/bench_fetch_fields"
  "../bench/bench_fetch_fields.pdb"
  "CMakeFiles/bench_fetch_fields.dir/bench_fetch_fields.cpp.o"
  "CMakeFiles/bench_fetch_fields.dir/bench_fetch_fields.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fetch_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
