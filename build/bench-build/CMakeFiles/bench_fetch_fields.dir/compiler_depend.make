# Empty compiler generated dependencies file for bench_fetch_fields.
# This may be replaced when dependencies are built.
