file(REMOVE_RECURSE
  "../bench/bench_fig8_campaign"
  "../bench/bench_fig8_campaign.pdb"
  "CMakeFiles/bench_fig8_campaign.dir/bench_fig8_campaign.cpp.o"
  "CMakeFiles/bench_fig8_campaign.dir/bench_fig8_campaign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
