# Empty dependencies file for bench_fig8_campaign.
# This may be replaced when dependencies are built.
