file(REMOVE_RECURSE
  "../bench/bench_table1_formats"
  "../bench/bench_table1_formats.pdb"
  "CMakeFiles/bench_table1_formats.dir/bench_table1_formats.cpp.o"
  "CMakeFiles/bench_table1_formats.dir/bench_table1_formats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
