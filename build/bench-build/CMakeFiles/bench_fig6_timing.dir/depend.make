# Empty dependencies file for bench_fig6_timing.
# This may be replaced when dependencies are built.
