file(REMOVE_RECURSE
  "CMakeFiles/gemfi_util.dir/bytesio.cpp.o"
  "CMakeFiles/gemfi_util.dir/bytesio.cpp.o.d"
  "CMakeFiles/gemfi_util.dir/log.cpp.o"
  "CMakeFiles/gemfi_util.dir/log.cpp.o.d"
  "CMakeFiles/gemfi_util.dir/stats.cpp.o"
  "CMakeFiles/gemfi_util.dir/stats.cpp.o.d"
  "libgemfi_util.a"
  "libgemfi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
