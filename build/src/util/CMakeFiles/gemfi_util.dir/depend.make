# Empty dependencies file for gemfi_util.
# This may be replaced when dependencies are built.
