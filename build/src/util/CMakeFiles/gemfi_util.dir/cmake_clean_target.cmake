file(REMOVE_RECURSE
  "libgemfi_util.a"
)
