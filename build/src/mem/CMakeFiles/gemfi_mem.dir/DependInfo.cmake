
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/gemfi_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/gemfi_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/memsys.cpp" "src/mem/CMakeFiles/gemfi_mem.dir/memsys.cpp.o" "gcc" "src/mem/CMakeFiles/gemfi_mem.dir/memsys.cpp.o.d"
  "/root/repo/src/mem/physmem.cpp" "src/mem/CMakeFiles/gemfi_mem.dir/physmem.cpp.o" "gcc" "src/mem/CMakeFiles/gemfi_mem.dir/physmem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gemfi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gemfi_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
