# Empty dependencies file for gemfi_mem.
# This may be replaced when dependencies are built.
