file(REMOVE_RECURSE
  "libgemfi_mem.a"
)
