file(REMOVE_RECURSE
  "CMakeFiles/gemfi_mem.dir/cache.cpp.o"
  "CMakeFiles/gemfi_mem.dir/cache.cpp.o.d"
  "CMakeFiles/gemfi_mem.dir/memsys.cpp.o"
  "CMakeFiles/gemfi_mem.dir/memsys.cpp.o.d"
  "CMakeFiles/gemfi_mem.dir/physmem.cpp.o"
  "CMakeFiles/gemfi_mem.dir/physmem.cpp.o.d"
  "libgemfi_mem.a"
  "libgemfi_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
