# Empty compiler generated dependencies file for gemfi_asm.
# This may be replaced when dependencies are built.
