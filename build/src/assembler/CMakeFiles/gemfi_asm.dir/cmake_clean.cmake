file(REMOVE_RECURSE
  "CMakeFiles/gemfi_asm.dir/assembler.cpp.o"
  "CMakeFiles/gemfi_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/gemfi_asm.dir/program.cpp.o"
  "CMakeFiles/gemfi_asm.dir/program.cpp.o.d"
  "CMakeFiles/gemfi_asm.dir/text_asm.cpp.o"
  "CMakeFiles/gemfi_asm.dir/text_asm.cpp.o.d"
  "libgemfi_asm.a"
  "libgemfi_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
