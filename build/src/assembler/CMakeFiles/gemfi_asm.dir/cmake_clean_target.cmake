file(REMOVE_RECURSE
  "libgemfi_asm.a"
)
