
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/assembler.cpp" "src/assembler/CMakeFiles/gemfi_asm.dir/assembler.cpp.o" "gcc" "src/assembler/CMakeFiles/gemfi_asm.dir/assembler.cpp.o.d"
  "/root/repo/src/assembler/program.cpp" "src/assembler/CMakeFiles/gemfi_asm.dir/program.cpp.o" "gcc" "src/assembler/CMakeFiles/gemfi_asm.dir/program.cpp.o.d"
  "/root/repo/src/assembler/text_asm.cpp" "src/assembler/CMakeFiles/gemfi_asm.dir/text_asm.cpp.o" "gcc" "src/assembler/CMakeFiles/gemfi_asm.dir/text_asm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gemfi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gemfi_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gemfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
