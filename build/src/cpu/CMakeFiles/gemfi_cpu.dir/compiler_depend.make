# Empty compiler generated dependencies file for gemfi_cpu.
# This may be replaced when dependencies are built.
