file(REMOVE_RECURSE
  "CMakeFiles/gemfi_cpu.dir/arch_state.cpp.o"
  "CMakeFiles/gemfi_cpu.dir/arch_state.cpp.o.d"
  "CMakeFiles/gemfi_cpu.dir/atomic_cpu.cpp.o"
  "CMakeFiles/gemfi_cpu.dir/atomic_cpu.cpp.o.d"
  "CMakeFiles/gemfi_cpu.dir/branch_predictor.cpp.o"
  "CMakeFiles/gemfi_cpu.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/gemfi_cpu.dir/exec.cpp.o"
  "CMakeFiles/gemfi_cpu.dir/exec.cpp.o.d"
  "CMakeFiles/gemfi_cpu.dir/pipelined_cpu.cpp.o"
  "CMakeFiles/gemfi_cpu.dir/pipelined_cpu.cpp.o.d"
  "libgemfi_cpu.a"
  "libgemfi_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
