file(REMOVE_RECURSE
  "libgemfi_cpu.a"
)
