
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/arch_state.cpp" "src/cpu/CMakeFiles/gemfi_cpu.dir/arch_state.cpp.o" "gcc" "src/cpu/CMakeFiles/gemfi_cpu.dir/arch_state.cpp.o.d"
  "/root/repo/src/cpu/atomic_cpu.cpp" "src/cpu/CMakeFiles/gemfi_cpu.dir/atomic_cpu.cpp.o" "gcc" "src/cpu/CMakeFiles/gemfi_cpu.dir/atomic_cpu.cpp.o.d"
  "/root/repo/src/cpu/branch_predictor.cpp" "src/cpu/CMakeFiles/gemfi_cpu.dir/branch_predictor.cpp.o" "gcc" "src/cpu/CMakeFiles/gemfi_cpu.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/cpu/exec.cpp" "src/cpu/CMakeFiles/gemfi_cpu.dir/exec.cpp.o" "gcc" "src/cpu/CMakeFiles/gemfi_cpu.dir/exec.cpp.o.d"
  "/root/repo/src/cpu/pipelined_cpu.cpp" "src/cpu/CMakeFiles/gemfi_cpu.dir/pipelined_cpu.cpp.o" "gcc" "src/cpu/CMakeFiles/gemfi_cpu.dir/pipelined_cpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gemfi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gemfi_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gemfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
