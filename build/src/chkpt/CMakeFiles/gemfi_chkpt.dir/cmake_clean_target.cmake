file(REMOVE_RECURSE
  "libgemfi_chkpt.a"
)
