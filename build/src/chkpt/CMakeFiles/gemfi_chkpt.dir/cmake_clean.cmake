file(REMOVE_RECURSE
  "CMakeFiles/gemfi_chkpt.dir/checkpoint.cpp.o"
  "CMakeFiles/gemfi_chkpt.dir/checkpoint.cpp.o.d"
  "libgemfi_chkpt.a"
  "libgemfi_chkpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_chkpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
