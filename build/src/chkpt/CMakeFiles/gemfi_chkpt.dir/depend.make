# Empty dependencies file for gemfi_chkpt.
# This may be replaced when dependencies are built.
