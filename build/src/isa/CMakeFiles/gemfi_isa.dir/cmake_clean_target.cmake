file(REMOVE_RECURSE
  "libgemfi_isa.a"
)
