file(REMOVE_RECURSE
  "CMakeFiles/gemfi_isa.dir/decoder.cpp.o"
  "CMakeFiles/gemfi_isa.dir/decoder.cpp.o.d"
  "CMakeFiles/gemfi_isa.dir/disasm.cpp.o"
  "CMakeFiles/gemfi_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/gemfi_isa.dir/registers.cpp.o"
  "CMakeFiles/gemfi_isa.dir/registers.cpp.o.d"
  "libgemfi_isa.a"
  "libgemfi_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
