# Empty dependencies file for gemfi_isa.
# This may be replaced when dependencies are built.
