file(REMOVE_RECURSE
  "CMakeFiles/gemfi_os.dir/scheduler.cpp.o"
  "CMakeFiles/gemfi_os.dir/scheduler.cpp.o.d"
  "libgemfi_os.a"
  "libgemfi_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
