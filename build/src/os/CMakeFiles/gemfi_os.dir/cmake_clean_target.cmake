file(REMOVE_RECURSE
  "libgemfi_os.a"
)
