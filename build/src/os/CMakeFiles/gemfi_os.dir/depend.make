# Empty dependencies file for gemfi_os.
# This may be replaced when dependencies are built.
