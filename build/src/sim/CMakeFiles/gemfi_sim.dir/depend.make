# Empty dependencies file for gemfi_sim.
# This may be replaced when dependencies are built.
