file(REMOVE_RECURSE
  "CMakeFiles/gemfi_sim.dir/simulation.cpp.o"
  "CMakeFiles/gemfi_sim.dir/simulation.cpp.o.d"
  "libgemfi_sim.a"
  "libgemfi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
