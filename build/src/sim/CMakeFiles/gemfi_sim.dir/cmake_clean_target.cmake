file(REMOVE_RECURSE
  "libgemfi_sim.a"
)
