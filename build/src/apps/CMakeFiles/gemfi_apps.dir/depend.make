# Empty dependencies file for gemfi_apps.
# This may be replaced when dependencies are built.
