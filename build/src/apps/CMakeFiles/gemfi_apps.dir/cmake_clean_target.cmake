file(REMOVE_RECURSE
  "libgemfi_apps.a"
)
