file(REMOVE_RECURSE
  "CMakeFiles/gemfi_apps.dir/app.cpp.o"
  "CMakeFiles/gemfi_apps.dir/app.cpp.o.d"
  "CMakeFiles/gemfi_apps.dir/canneal.cpp.o"
  "CMakeFiles/gemfi_apps.dir/canneal.cpp.o.d"
  "CMakeFiles/gemfi_apps.dir/dct.cpp.o"
  "CMakeFiles/gemfi_apps.dir/dct.cpp.o.d"
  "CMakeFiles/gemfi_apps.dir/deblock.cpp.o"
  "CMakeFiles/gemfi_apps.dir/deblock.cpp.o.d"
  "CMakeFiles/gemfi_apps.dir/image.cpp.o"
  "CMakeFiles/gemfi_apps.dir/image.cpp.o.d"
  "CMakeFiles/gemfi_apps.dir/jacobi.cpp.o"
  "CMakeFiles/gemfi_apps.dir/jacobi.cpp.o.d"
  "CMakeFiles/gemfi_apps.dir/knapsack.cpp.o"
  "CMakeFiles/gemfi_apps.dir/knapsack.cpp.o.d"
  "CMakeFiles/gemfi_apps.dir/pi.cpp.o"
  "CMakeFiles/gemfi_apps.dir/pi.cpp.o.d"
  "libgemfi_apps.a"
  "libgemfi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
