
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cpp" "src/apps/CMakeFiles/gemfi_apps.dir/app.cpp.o" "gcc" "src/apps/CMakeFiles/gemfi_apps.dir/app.cpp.o.d"
  "/root/repo/src/apps/canneal.cpp" "src/apps/CMakeFiles/gemfi_apps.dir/canneal.cpp.o" "gcc" "src/apps/CMakeFiles/gemfi_apps.dir/canneal.cpp.o.d"
  "/root/repo/src/apps/dct.cpp" "src/apps/CMakeFiles/gemfi_apps.dir/dct.cpp.o" "gcc" "src/apps/CMakeFiles/gemfi_apps.dir/dct.cpp.o.d"
  "/root/repo/src/apps/deblock.cpp" "src/apps/CMakeFiles/gemfi_apps.dir/deblock.cpp.o" "gcc" "src/apps/CMakeFiles/gemfi_apps.dir/deblock.cpp.o.d"
  "/root/repo/src/apps/image.cpp" "src/apps/CMakeFiles/gemfi_apps.dir/image.cpp.o" "gcc" "src/apps/CMakeFiles/gemfi_apps.dir/image.cpp.o.d"
  "/root/repo/src/apps/jacobi.cpp" "src/apps/CMakeFiles/gemfi_apps.dir/jacobi.cpp.o" "gcc" "src/apps/CMakeFiles/gemfi_apps.dir/jacobi.cpp.o.d"
  "/root/repo/src/apps/knapsack.cpp" "src/apps/CMakeFiles/gemfi_apps.dir/knapsack.cpp.o" "gcc" "src/apps/CMakeFiles/gemfi_apps.dir/knapsack.cpp.o.d"
  "/root/repo/src/apps/pi.cpp" "src/apps/CMakeFiles/gemfi_apps.dir/pi.cpp.o" "gcc" "src/apps/CMakeFiles/gemfi_apps.dir/pi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gemfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/chkpt/CMakeFiles/gemfi_chkpt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/gemfi_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/gemfi_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/gemfi_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/gemfi_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gemfi_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gemfi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gemfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
