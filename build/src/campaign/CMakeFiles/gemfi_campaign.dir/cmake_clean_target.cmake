file(REMOVE_RECURSE
  "libgemfi_campaign.a"
)
