file(REMOVE_RECURSE
  "CMakeFiles/gemfi_campaign.dir/classify.cpp.o"
  "CMakeFiles/gemfi_campaign.dir/classify.cpp.o.d"
  "CMakeFiles/gemfi_campaign.dir/jsonl.cpp.o"
  "CMakeFiles/gemfi_campaign.dir/jsonl.cpp.o.d"
  "CMakeFiles/gemfi_campaign.dir/now_runner.cpp.o"
  "CMakeFiles/gemfi_campaign.dir/now_runner.cpp.o.d"
  "CMakeFiles/gemfi_campaign.dir/observer.cpp.o"
  "CMakeFiles/gemfi_campaign.dir/observer.cpp.o.d"
  "CMakeFiles/gemfi_campaign.dir/runner.cpp.o"
  "CMakeFiles/gemfi_campaign.dir/runner.cpp.o.d"
  "libgemfi_campaign.a"
  "libgemfi_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
