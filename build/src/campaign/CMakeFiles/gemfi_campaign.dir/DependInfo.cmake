
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/campaign/classify.cpp" "src/campaign/CMakeFiles/gemfi_campaign.dir/classify.cpp.o" "gcc" "src/campaign/CMakeFiles/gemfi_campaign.dir/classify.cpp.o.d"
  "/root/repo/src/campaign/jsonl.cpp" "src/campaign/CMakeFiles/gemfi_campaign.dir/jsonl.cpp.o" "gcc" "src/campaign/CMakeFiles/gemfi_campaign.dir/jsonl.cpp.o.d"
  "/root/repo/src/campaign/now_runner.cpp" "src/campaign/CMakeFiles/gemfi_campaign.dir/now_runner.cpp.o" "gcc" "src/campaign/CMakeFiles/gemfi_campaign.dir/now_runner.cpp.o.d"
  "/root/repo/src/campaign/observer.cpp" "src/campaign/CMakeFiles/gemfi_campaign.dir/observer.cpp.o" "gcc" "src/campaign/CMakeFiles/gemfi_campaign.dir/observer.cpp.o.d"
  "/root/repo/src/campaign/runner.cpp" "src/campaign/CMakeFiles/gemfi_campaign.dir/runner.cpp.o" "gcc" "src/campaign/CMakeFiles/gemfi_campaign.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/gemfi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/chkpt/CMakeFiles/gemfi_chkpt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gemfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/gemfi_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/gemfi_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/gemfi_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/gemfi_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gemfi_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gemfi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gemfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
