# Empty dependencies file for gemfi_campaign.
# This may be replaced when dependencies are built.
