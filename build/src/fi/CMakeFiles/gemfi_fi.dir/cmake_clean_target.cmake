file(REMOVE_RECURSE
  "libgemfi_fi.a"
)
