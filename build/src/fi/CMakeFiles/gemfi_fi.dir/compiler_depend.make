# Empty compiler generated dependencies file for gemfi_fi.
# This may be replaced when dependencies are built.
