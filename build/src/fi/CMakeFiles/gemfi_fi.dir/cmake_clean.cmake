file(REMOVE_RECURSE
  "CMakeFiles/gemfi_fi.dir/fault.cpp.o"
  "CMakeFiles/gemfi_fi.dir/fault.cpp.o.d"
  "CMakeFiles/gemfi_fi.dir/fault_manager.cpp.o"
  "CMakeFiles/gemfi_fi.dir/fault_manager.cpp.o.d"
  "CMakeFiles/gemfi_fi.dir/vdd_model.cpp.o"
  "CMakeFiles/gemfi_fi.dir/vdd_model.cpp.o.d"
  "libgemfi_fi.a"
  "libgemfi_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
