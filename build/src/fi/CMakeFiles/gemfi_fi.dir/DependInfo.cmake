
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fi/fault.cpp" "src/fi/CMakeFiles/gemfi_fi.dir/fault.cpp.o" "gcc" "src/fi/CMakeFiles/gemfi_fi.dir/fault.cpp.o.d"
  "/root/repo/src/fi/fault_manager.cpp" "src/fi/CMakeFiles/gemfi_fi.dir/fault_manager.cpp.o" "gcc" "src/fi/CMakeFiles/gemfi_fi.dir/fault_manager.cpp.o.d"
  "/root/repo/src/fi/vdd_model.cpp" "src/fi/CMakeFiles/gemfi_fi.dir/vdd_model.cpp.o" "gcc" "src/fi/CMakeFiles/gemfi_fi.dir/vdd_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/gemfi_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gemfi_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gemfi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gemfi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
