file(REMOVE_RECURSE
  "CMakeFiles/test_fi.dir/test_fi.cpp.o"
  "CMakeFiles/test_fi.dir/test_fi.cpp.o.d"
  "test_fi"
  "test_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
