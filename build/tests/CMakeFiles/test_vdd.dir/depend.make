# Empty dependencies file for test_vdd.
# This may be replaced when dependencies are built.
