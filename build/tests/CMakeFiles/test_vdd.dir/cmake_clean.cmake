file(REMOVE_RECURSE
  "CMakeFiles/test_vdd.dir/test_vdd.cpp.o"
  "CMakeFiles/test_vdd.dir/test_vdd.cpp.o.d"
  "test_vdd"
  "test_vdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
