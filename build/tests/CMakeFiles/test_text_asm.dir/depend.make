# Empty dependencies file for test_text_asm.
# This may be replaced when dependencies are built.
