file(REMOVE_RECURSE
  "CMakeFiles/test_text_asm.dir/test_text_asm.cpp.o"
  "CMakeFiles/test_text_asm.dir/test_text_asm.cpp.o.d"
  "test_text_asm"
  "test_text_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
