file(REMOVE_RECURSE
  "CMakeFiles/test_fi_advanced.dir/test_fi_advanced.cpp.o"
  "CMakeFiles/test_fi_advanced.dir/test_fi_advanced.cpp.o.d"
  "test_fi_advanced"
  "test_fi_advanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fi_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
