# Empty dependencies file for test_fi_advanced.
# This may be replaced when dependencies are built.
