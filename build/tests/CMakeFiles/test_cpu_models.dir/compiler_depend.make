# Empty compiler generated dependencies file for test_cpu_models.
# This may be replaced when dependencies are built.
