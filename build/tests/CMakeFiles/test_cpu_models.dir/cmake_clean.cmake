file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_models.dir/test_cpu_models.cpp.o"
  "CMakeFiles/test_cpu_models.dir/test_cpu_models.cpp.o.d"
  "test_cpu_models"
  "test_cpu_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
