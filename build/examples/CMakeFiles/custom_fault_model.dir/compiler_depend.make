# Empty compiler generated dependencies file for custom_fault_model.
# This may be replaced when dependencies are built.
