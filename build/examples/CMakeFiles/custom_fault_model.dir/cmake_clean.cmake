file(REMOVE_RECURSE
  "CMakeFiles/custom_fault_model.dir/custom_fault_model.cpp.o"
  "CMakeFiles/custom_fault_model.dir/custom_fault_model.cpp.o.d"
  "custom_fault_model"
  "custom_fault_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fault_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
