file(REMOVE_RECURSE
  "CMakeFiles/gemfi_cli.dir/gemfi_cli.cpp.o"
  "CMakeFiles/gemfi_cli.dir/gemfi_cli.cpp.o.d"
  "gemfi_cli"
  "gemfi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemfi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
