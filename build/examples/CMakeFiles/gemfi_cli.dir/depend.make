# Empty dependencies file for gemfi_cli.
# This may be replaced when dependencies are built.
