# Empty compiler generated dependencies file for multithreaded_fi.
# This may be replaced when dependencies are built.
