file(REMOVE_RECURSE
  "CMakeFiles/multithreaded_fi.dir/multithreaded_fi.cpp.o"
  "CMakeFiles/multithreaded_fi.dir/multithreaded_fi.cpp.o.d"
  "multithreaded_fi"
  "multithreaded_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithreaded_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
