file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_campaign.dir/checkpoint_campaign.cpp.o"
  "CMakeFiles/checkpoint_campaign.dir/checkpoint_campaign.cpp.o.d"
  "checkpoint_campaign"
  "checkpoint_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
