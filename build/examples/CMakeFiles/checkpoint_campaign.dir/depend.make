# Empty dependencies file for checkpoint_campaign.
# This may be replaced when dependencies are built.
