// gemfi_campaignd — the campaign-manager daemon: multi-tenant FI-as-a-Service.
//
// One long-running process owns a worker fleet and serves many clients at
// once. Clients (gemfi_submit) submit campaign specs, poll status, cancel,
// and stream results; gemfi_now_worker processes join the shared fleet
// unchanged and are leased to campaigns by per-tenant fair share. Every
// accepted spec and completed experiment is journaled, so killing the daemon
// (even SIGKILL) and restarting it on the same --journal directory resumes
// every in-flight campaign from its high-water mark with exactly-once
// results.
//
// Usage:
//   gemfi_campaignd --journal=<dir>
//       [--bind=<addr>]         listen address (default 127.0.0.1)
//       [--port=<p>]            listen port (default 0 = ephemeral, printed)
//       [--local-workers=<n>]   additionally fork n loopback workers
//       [--slots=<k>]           slots for the forked loopback workers
//       [--worker-timeout=<s>] [--frame-grace=<s>]
//       [--status-interval=<s>] per-campaign status block period (default 5)
//       [--rebalance-interval=<s>]
//
// ^C stops gracefully: workers get Shutdown, live campaigns stay journaled
// and resume on the next start.
#include <cstdio>
#include <string>

#include "campaign/dispatch.hpp"
#include "campaign/service/service.hpp"
#include "flag_parse.hpp"

using namespace gemfi;
using namespace gemfi::cliflags;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --journal=<dir> [--bind=<addr>] [--port=<p>]\n"
               "           [--local-workers=<n>] [--slots=<k>] [--worker-timeout=<s>]\n"
               "           [--frame-grace=<s>] [--status-interval=<s>]\n"
               "           [--rebalance-interval=<s>]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  campaign::service::ServiceConfig scfg;
  scfg.handle_sigint = true;
  scfg.status_interval_s = 5.0;
  unsigned local_workers = 0;
  unsigned slots = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--journal=", 0) == 0) scfg.journal_dir = arg.substr(10);
    else if (arg.rfind("--bind=", 0) == 0) scfg.bind_address = arg.substr(7);
    else if (arg.rfind("--port=", 0) == 0)
      scfg.port = parse_u16_flag("port", arg.substr(7));
    else if (arg.rfind("--local-workers=", 0) == 0)
      local_workers = parse_u32_flag("local-workers", arg.substr(16));
    else if (arg.rfind("--slots=", 0) == 0)
      slots = parse_u32_flag("slots", arg.substr(8));
    else if (arg.rfind("--worker-timeout=", 0) == 0)
      scfg.worker_timeout_s = parse_f64_flag("worker-timeout", arg.substr(17));
    else if (arg.rfind("--frame-grace=", 0) == 0)
      scfg.frame_grace_s = parse_f64_flag("frame-grace", arg.substr(14));
    else if (arg.rfind("--status-interval=", 0) == 0)
      scfg.status_interval_s = parse_f64_flag("status-interval", arg.substr(18));
    else if (arg.rfind("--rebalance-interval=", 0) == 0)
      scfg.rebalance_interval_s =
          parse_f64_flag("rebalance-interval", arg.substr(21));
    else usage(argv[0]);
  }
  if (scfg.journal_dir.empty()) usage(argv[0]);

  try {
    campaign::service::CampaignService svc(scfg);
    const unsigned port = svc.port();
    std::fprintf(stderr,
                 "campaignd listening on %s:%u (journal %s) — submit with:\n"
                 "  gemfi_submit --port=%u --app=<name> --experiments=<n>\n"
                 "and join workers with:\n"
                 "  gemfi_now_worker --host=<this-host> --port=%u --reconnects=1000000\n",
                 scfg.bind_address.c_str(), port, scfg.journal_dir.c_str(), port,
                 port);

    // The service leases workers by closing their connection and letting
    // them reconnect, so fleet workers need an effectively unbounded
    // reconnect budget.
    campaign::LocalWorkerPool pool;
    if (local_workers > 0)
      pool = campaign::LocalWorkerPool::spawn(local_workers, svc.port(), slots,
                                              /*max_reconnects=*/1u << 30);

    const campaign::service::ServiceReport r = svc.run();
    pool.wait_all();

    std::fprintf(stderr,
                 "campaignd: %llu submitted, %llu recovered, %llu done "
                 "(%llu stopped early), "
                 "%llu cancelled, %llu failed; %llu results journaled "
                 "(%llu duplicates dropped), %u workers joined, %u lost, "
                 "%llu requeued, %llu rebalance moves, %u clients, %.1fs\n",
                 (unsigned long long)r.campaigns_submitted,
                 (unsigned long long)r.campaigns_recovered,
                 (unsigned long long)r.campaigns_done,
                 (unsigned long long)r.campaigns_stopped_early,
                 (unsigned long long)r.campaigns_cancelled,
                 (unsigned long long)r.campaigns_failed,
                 (unsigned long long)r.results_journaled,
                 (unsigned long long)r.duplicate_results, r.workers_joined,
                 r.workers_lost, (unsigned long long)r.requeued,
                 (unsigned long long)r.rebalance_moves, r.clients_served,
                 r.wall_seconds);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaignd: %s\n", e.what());
    return 2;
  }
}
