// Quickstart: the paper's Listing 1 + Listing 2 end to end.
//
// We assemble a tiny guest program with the GemFI intrinsics
// (fi_read_init_all / fi_activate_inst), describe one fault in the paper's
// input-file syntax, run the simulation, and show the fault-free vs faulty
// results plus GemFI's injection log (the "information on the affected
// assembly instruction" used for post-mortem analysis).
//
//   $ ./quickstart
#include <cstdio>

#include "assembler/assembler.hpp"
#include "fi/fault.hpp"
#include "sim/simulation.hpp"

using namespace gemfi;
using namespace gemfi::assembler;

namespace {

// The analog of Listing 2's main(): init, fi_read_init_all(),
// fi_activate_inst(0), foo() (here: sum the first 100 integers),
// fi_activate_inst(0), print, exit.
Program make_program() {
  Assembler as;
  const Label entry = as.here("main");
  as.fi_read_init();        // void fi_read_init_all(void)
  as.mov_i(0, reg::a0);
  as.fi_activate();         // void fi_activate_inst(int id = 0)

  as.li(reg::s0, 0);        // sum
  as.li(reg::s1, 1);        // i
  const Label loop = as.here("loop");
  as.addq(reg::s0, reg::s1, reg::s0);
  as.addq_i(reg::s1, 1, reg::s1);
  as.cmple_i(reg::s1, 100, reg::t0);
  as.bne(reg::t0, loop);

  as.mov_i(0, reg::a0);
  as.fi_activate();         // toggle FI off

  as.print_str("sum=");
  as.print_int_r(reg::s0);
  as.print_str("\n");
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

sim::RunResult run(const Program& prog, const std::string& fault_line,
                   std::string& output, std::vector<std::string>& log) {
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  sim::Simulation s(cfg, prog);
  s.spawn_main_thread();
  if (!fault_line.empty()) s.fault_manager().load_faults({fi::parse_fault(fault_line)});
  const sim::RunResult rr = s.run(100'000'000);
  output = s.output(0);
  log = s.fault_manager().injection_log();
  return rr;
}

}  // namespace

int main() {
  const Program prog = make_program();
  std::printf("guest program: %zu instructions, entry 0x%llx\n", prog.code.size(),
              (unsigned long long)prog.entry);

  std::string golden;
  std::vector<std::string> log;
  run(prog, "", golden, log);
  std::printf("fault-free run -> %s", golden.c_str());

  // The paper's Listing 1, adapted: flip bit 21 of integer register s0 (R9)
  // when the thread fetches its 57th instruction after fi_activate_inst.
  const std::string fault_line =
      "RegisterInjectedFault Inst:57 Flip:21 Threadid:0 system.cpu0 occ:1 int 9";
  std::printf("\nfault config   -> %s\n", fault_line.c_str());

  std::string faulty;
  const sim::RunResult rr = run(prog, fault_line, faulty, log);
  if (rr.crashed()) {
    std::printf("faulty run     -> CRASH: %s at pc=0x%llx\n",
                cpu::trap_name(rr.trap.kind), (unsigned long long)rr.crash_pc);
  } else {
    std::printf("faulty run     -> %s", faulty.c_str());
  }
  for (const auto& line : log) std::printf("injection log  -> %s\n", line.c_str());
  std::printf("\nthe flipped bit adds 2^21=2097152 to the running sum: %s\n",
              faulty == golden ? "masked (fault landed on a dead value)" : "observed");
  return 0;
}
