// Custom fault models: the paper stresses that GemFI "is not limited to
// specific fault models" — transient (occ:1), intermittent (occ:N) and
// permanent (occ:perm) faults are all expressed in the same input-file
// grammar. This example compares the three on the Monte-Carlo PI kernel:
// a stuck-at-one bit in the register holding the LCG state.
//
//   $ ./custom_fault_model
#include <cstdio>

#include "campaign/runner.hpp"

using namespace gemfi;

int main() {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  // Intermittent/permanent faults keep injecting, so the detailed->atomic
  // switch never fires; stay on the detailed model the whole run.
  cfg.switch_to_atomic_after_fault = false;
  cfg.workers = 1;

  const auto ca = campaign::calibrate(apps::build_app("pi"), cfg);
  const std::uint64_t mid = ca.kernel_fetches / 2;

  struct Scenario {
    const char* label;
    std::string line;
  };
  char buf[160];
  std::vector<Scenario> scenarios;
  const auto add = [&](const char* label, const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    scenarios.push_back({label, buf});
  };
  // s1 (R10) holds the guest's LCG state; bit 40 is mid-significance.
  add("transient (1 hit)",
      "RegisterInjectedFault Inst:%llu Flip:40 Threadid:0 system.cpu0 occ:1 int 10",
      (unsigned long long)mid);
  add("intermittent (x200)",
      "RegisterInjectedFault Inst:%llu Flip:40 Threadid:0 system.cpu0 occ:200 int 10",
      (unsigned long long)mid);
  add("permanent stuck-at",
      "RegisterInjectedFault Inst:%llu AllOne Threadid:0 system.cpu0 occ:perm int 10",
      (unsigned long long)mid);
  add("PC reset to entry",
      "PCInjectedFault Inst:%llu Imm:0x2000 Threadid:0 system.cpu0 occ:1",
      (unsigned long long)mid);

  std::printf("golden: %s\n", ca.app.golden_output.c_str());
  std::printf("%-24s %-16s %10s  %s\n", "fault model", "outcome", "metric",
              "fault line");
  for (const auto& sc : scenarios) {
    const auto er = campaign::run_experiment(ca, fi::parse_fault(sc.line), cfg);
    std::printf("%-24s %-16s %10.4f  %s\n", sc.label,
                apps::outcome_name(er.classification.outcome),
                er.classification.metric, sc.line.c_str());
  }
  std::printf(
      "\ntransient upsets barely move the estimate (the hit count is a\n"
      "quantized ratio, so it often lands on the exact same value);\n"
      "intermittent/permanent corruption of the RNG state biases every\n"
      "subsequent sample into an SDC; and resetting the PC to the entry\n"
      "point restarts boot+init — a deterministic kernel then recomputes\n"
      "the very same answer, merely at twice the simulation cost (note:\n"
      "the second fi_activate_inst toggles injection off, per Sec. III-A).\n");
  return 0;
}
