// Thread-selective fault injection — the paper's Thread attribute
// (Sec. III-A-2) and PCB-keyed context-switch tracking (Sec. III-C).
//
// Two guest threads run the same kernel preemptively on one core; each
// calls fi_activate_inst(id) with its own id. A fault configured with
// Threadid:1 must corrupt only thread 1's result even though both threads
// share the CPU and context-switch through the same FaultManager.
//
//   $ ./multithreaded_fi
#include <cstdio>

#include "assembler/assembler.hpp"
#include "fi/fault.hpp"
#include "sim/simulation.hpp"

using namespace gemfi;
using namespace gemfi::assembler;

namespace {

/// Each thread sums 1..500 into s0; a0 carries the thread's FI id.
Program make_program() {
  Assembler as;
  const Label entry = as.here("main");
  as.mov(reg::a0, reg::s2);  // keep the id
  as.fi_activate();          // fi_activate_inst(id = a0)
  as.li(reg::s0, 0);
  as.li(reg::s1, 1);
  const Label loop = as.here("loop");
  as.addq(reg::s0, reg::s1, reg::s0);
  as.addq_i(reg::s1, 1, reg::s1);
  as.li(reg::t1, 500);
  as.cmple(reg::s1, reg::t1, reg::t0);
  as.bne(reg::t0, loop);
  as.mov(reg::s2, reg::a0);
  as.fi_activate();          // FI off for this thread
  as.print_str("sum=");
  as.print_int_r(reg::s0);
  as.print_str("\n");
  as.mov_i(0, reg::a0);
  as.exit_();
  return as.finalize(entry);
}

}  // namespace

int main() {
  const Program prog = make_program();

  for (const int victim : {-1, 0, 1}) {
    sim::SimConfig cfg;
    cfg.cpu = sim::CpuKind::Pipelined;
    cfg.quantum_insts = 50;  // force frequent context switches
    sim::Simulation s(cfg, prog);
    s.spawn_main_thread({0});             // thread 0: fi_activate_inst(0)
    s.spawn_thread(prog.entry, {1});      // thread 1: fi_activate_inst(1)
    if (victim >= 0) {
      char line[160];
      std::snprintf(line, sizeof line,
                    "RegisterInjectedFault Inst:40 Flip:20 Threadid:%d "
                    "system.cpu0 occ:1 int 9",
                    victim);
      s.fault_manager().load_faults({fi::parse_fault(line)});
    }
    const auto rr = s.run(100'000'000);
    std::printf("%s: thread0 -> %s          thread1 -> %s",
                victim < 0 ? "fault-free        "
                : victim == 0 ? "fault on Threadid:0"
                              : "fault on Threadid:1",
                s.output(0).c_str(), s.output(1).c_str());
    if (rr.crashed()) std::printf("  (crashed)\n");
  }
  std::printf("\nonly the targeted thread's sum gains 2^20 = 1048576: GemFI\n"
              "re-binds its per-thread state on every PCB change, so faults\n"
              "follow the thread, not the core.\n");
  return 0;
}
