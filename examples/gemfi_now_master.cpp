// gemfi_now_master — campaign master for the NoW dispatch service (paper
// Sec. III-E): calibrates the app locally, then serves the campaign to any
// gemfi_now_worker processes that connect, shipping each one the checkpoint
// and streaming experiments until every fault has exactly one result.
//
// Usage:
//   gemfi_now_master --app=<name> --campaign=<n> [--seed=<u64>]
//       [--bind=<addr>]        listen address (default 127.0.0.1;
//                              0.0.0.0 to serve a real cluster)
//       [--port=<p>]           listen port (default 0 = ephemeral, printed)
//       [--local-workers=<n>]  additionally fork n loopback workers
//       [--slots=<k>]          slots for the forked loopback workers
//       [--worker-timeout=<s>] silence before a worker is declared dead
//       [--slow-redispatch=<s>] re-dispatch an experiment stuck this long
//       [--out=<file.jsonl>] [--progress]
//       [--colstore=<file.gfcs>] columnar result store for gemfi_query
//       [--unix=<path>]        also serve same-host workers over an AF_UNIX
//                              socket (forked --local-workers use it too)
//       [--stop-ci=EPS[@CONF]] sequential early stop: end the campaign once
//                              every outcome CI half-width is below EPS at
//                              CONF confidence (default 0.99); deterministic
//                              across worker counts and schedulings
//       [--autoscale=MIN:MAX]  elastic local fleet: grow/retire forked
//                              workers between MIN and MAX from the backlog
//       [--no-fastmode]        disable the golden-path superblock tier for
//                              calibration and every worker (A/B baseline;
//                              the flag ships to workers in the Welcome)
//       [--cpu=...] [--paper] [--deadline=<s>] [--retries=<k>] ...
//
// ^C drains gracefully: dispatch stops, in-flight results are collected,
// workers are shut down, and the partial campaign is reported.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "campaign/analytics/colstore.hpp"
#include "campaign/dispatch.hpp"
#include "campaign/observer.hpp"
#include "campaign/runner.hpp"
#include "flag_parse.hpp"

using namespace gemfi;
using namespace gemfi::cliflags;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --app=<name> --campaign=<n> [--seed=<u64>] [--bind=<addr>]\n"
               "           [--port=<p>] [--local-workers=<n>] [--slots=<k>]\n"
               "           [--worker-timeout=<s>] [--slow-redispatch=<s>]\n"
               "           [--out=<file.jsonl>] [--progress] [--cpu=atomic|timing|"
               "pipelined]\n"
               "           [--colstore=<file.gfcs>] [--unix=<path>] [--stop-ci=EPS[@CONF]]\n"
               "           [--autoscale=MIN:MAX]\n"
               "           [--paper] [--deadline=<s>] [--retries=<k>] [--watchdog-mult=<k>]\n"
               "           [--no-fastmode]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name, out_path, colstore_path;
  apps::AppScale scale;
  campaign::CampaignConfig cfg;
  campaign::DispatchConfig dcfg;
  dcfg.handle_sigint = true;
  std::uint64_t campaign_n = 0;
  cfg.campaign_seed = 42;
  unsigned local_workers = 0;
  unsigned slots = 1;
  bool progress = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--app=", 0) == 0) app_name = arg.substr(6);
    else if (arg.rfind("--campaign=", 0) == 0)
      campaign_n = parse_u64_flag("campaign", arg.substr(11));
    else if (arg.rfind("--seed=", 0) == 0)
      cfg.campaign_seed = parse_u64_flag("seed", arg.substr(7));
    else if (arg.rfind("--bind=", 0) == 0) dcfg.bind_address = arg.substr(7);
    else if (arg.rfind("--port=", 0) == 0)
      dcfg.port = parse_u16_flag("port", arg.substr(7));
    else if (arg.rfind("--local-workers=", 0) == 0)
      local_workers = parse_u32_flag("local-workers", arg.substr(16));
    else if (arg.rfind("--slots=", 0) == 0)
      slots = parse_u32_flag("slots", arg.substr(8));
    else if (arg.rfind("--worker-timeout=", 0) == 0)
      dcfg.worker_timeout_s = parse_f64_flag("worker-timeout", arg.substr(17));
    else if (arg.rfind("--slow-redispatch=", 0) == 0)
      dcfg.slow_redispatch_s = parse_f64_flag("slow-redispatch", arg.substr(18));
    else if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    else if (arg.rfind("--colstore=", 0) == 0) colstore_path = arg.substr(11);
    else if (arg.rfind("--unix=", 0) == 0) dcfg.unix_path = arg.substr(7);
    else if (arg.rfind("--stop-ci=", 0) == 0) {
      try {
        dcfg.stop = campaign::parse_stop_ci(arg.substr(10));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg.rfind("--autoscale=", 0) == 0) {
      const std::string spec = arg.substr(12);
      const auto colon = spec.find(':');
      if (colon == std::string::npos) usage(argv[0]);
      dcfg.autoscale.min_workers =
          parse_u32_flag("autoscale", spec.substr(0, colon));
      dcfg.autoscale.max_workers =
          parse_u32_flag("autoscale", spec.substr(colon + 1));
      if (dcfg.autoscale.max_workers < dcfg.autoscale.min_workers)
        usage(argv[0]);
    } else if (arg == "--progress") progress = true;
    else if (arg.rfind("--cpu=", 0) == 0) {
      const std::string kind = arg.substr(6);
      if (kind == "atomic") cfg.cpu = sim::CpuKind::AtomicSimple;
      else if (kind == "timing") cfg.cpu = sim::CpuKind::TimingSimple;
      else if (kind == "pipelined") cfg.cpu = sim::CpuKind::Pipelined;
      else usage(argv[0]);
    } else if (arg == "--paper") scale.paper = true;
    else if (arg.rfind("--deadline=", 0) == 0)
      cfg.deadline_seconds = parse_f64_flag("deadline", arg.substr(11));
    else if (arg.rfind("--retries=", 0) == 0)
      cfg.max_retries = parse_u32_flag("retries", arg.substr(10));
    else if (arg.rfind("--watchdog-mult=", 0) == 0)
      cfg.watchdog_mult = parse_u64_flag("watchdog-mult", arg.substr(16));
    else if (arg == "--no-fastmode") cfg.fastmode = false;
    else usage(argv[0]);
  }
  if (app_name.empty() || campaign_n == 0) usage(argv[0]);

  std::fprintf(stderr, "calibrating %s...\n", app_name.c_str());
  campaign::CalibratedApp ca;
  try {
    ca = campaign::calibrate(apps::build_app(app_name, scale), cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  campaign::TeeObserver tee;
  std::unique_ptr<campaign::JsonlSink> sink;
  std::unique_ptr<campaign::ColstoreSink> colstore;
  std::unique_ptr<campaign::ProgressPrinter> reporter;
  if (!out_path.empty()) {
    try {
      sink = std::make_unique<campaign::JsonlSink>(out_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    sink->write_line(campaign::calibration_record_to_json(app_name, ca, cfg.fastmode));
    tee.add(sink.get());
  }
  if (!colstore_path.empty()) {
    try {
      colstore = std::make_unique<campaign::ColstoreSink>(colstore_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    tee.add(colstore.get());
  }
  if (progress) {
    reporter = std::make_unique<campaign::ProgressPrinter>(stderr);
    tee.add(reporter.get());
  }
  cfg.observer = &tee;

  const auto faults = campaign::seeded_fault_set(cfg.campaign_seed,
                                                 std::size_t(campaign_n),
                                                 ca.kernel_fetches);
  try {
    campaign::Master master(ca, scale, faults, cfg, dcfg);
    std::fprintf(stderr, "master listening on %s:%u — start workers with:\n",
                 dcfg.bind_address.c_str(), unsigned(master.port()));
    std::fprintf(stderr, "  gemfi_now_worker --host=<this-host> --port=%u --slots=<k>\n",
                 unsigned(master.port()));

    campaign::LocalWorkerPool pool;
    const bool over_unix = !dcfg.unix_path.empty();
    if (dcfg.autoscale.enabled() &&
        local_workers > dcfg.autoscale.max_workers)
      local_workers = dcfg.autoscale.max_workers;
    if (local_workers > 0)
      pool = over_unix ? campaign::LocalWorkerPool::spawn_unix(
                             local_workers, dcfg.unix_path, slots)
                       : campaign::LocalWorkerPool::spawn(local_workers,
                                                          master.port(), slots);
    if (dcfg.autoscale.enabled()) {
      const std::uint16_t port = master.port();
      const std::string unix_path = dcfg.unix_path;
      master.set_spawn_callback([&pool, port, unix_path, slots](unsigned n) {
        if (!unix_path.empty()) pool.grow_unix(n, unix_path, slots);
        else pool.grow(n, port, slots);
      });
    }

    const campaign::DispatchReport dr = master.run();
    pool.wait_all();
    if (colstore) colstore->finish();

    std::fprintf(stderr,
                 "NoW service: %zu/%zu experiments in %.2fs — %u workers joined, "
                 "%u lost, %llu requeued, %llu redispatched, %llu duplicates, "
                 "%.1f KiB checkpoint shipped%s\n",
                 dr.completed, faults.size(), dr.wall_seconds, dr.workers_joined,
                 dr.workers_lost, (unsigned long long)dr.requeued,
                 (unsigned long long)dr.redispatched,
                 (unsigned long long)dr.duplicate_results,
                 double(dr.checkpoint_bytes_shipped) / 1024.0,
                 dr.drained_early ? " (drained early)" : "");
    if (dr.stopped_early)
      std::fprintf(stderr,
                   "sequential stop: rule satisfied at prefix %llu/%zu "
                   "(%llu queued experiments cancelled, %u spawned, %u retired)\n",
                   (unsigned long long)dr.stop_index, faults.size(),
                   (unsigned long long)dr.cancelled, dr.workers_spawned,
                   dr.workers_retired);
    if (!dr.aggregate_summary.empty())
      std::printf("%s\n", dr.aggregate_summary.c_str());
    for (unsigned o = 0; o < apps::kNumOutcomes; ++o) {
      const auto outcome = static_cast<apps::Outcome>(o);
      std::printf("%-16s %6zu  %5.1f%%\n", apps::outcome_name(outcome),
                  dr.campaign.counts[o], 100.0 * dr.campaign.fraction(outcome));
    }
    if (sink)
      std::fprintf(stderr, "wrote %zu records to %s\n", sink->lines_written(),
                   out_path.c_str());
    // A sequential stop is a successful campaign: the answer is in, within
    // the requested error bound, with the tail of the fault list unspent.
    return dr.completed == faults.size() || dr.stopped_early ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
