// gemfi_query — slice a columnar campaign result store (--colstore output)
// without re-parsing JSONL.
//
// Usage:
//   gemfi_query <file.gfcs>                     outcome histogram (default)
//   gemfi_query <file.gfcs> --by=outcome|location|behavior|family|timing|worker
//   gemfi_query <file.gfcs> --where=<col>=<value> [--where=...]  filter rows
//       columns: outcome, location, behavior, family (by dictionary name),
//                worker, applied (0/1), index
//   gemfi_query <file.gfcs> --count               just the row count
//   gemfi_query <file.gfcs> --rows [--limit=<n>]  dump matching rows as TSV
//
// Filters AND together. Exit codes: 0 ok, 2 bad usage or unreadable store.
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "campaign/analytics/aggregator.hpp"
#include "campaign/analytics/colstore.hpp"
#include "flag_parse.hpp"

using namespace gemfi;
using campaign::ColstoreFile;
using campaign::ColstoreRow;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <file.gfcs> [--by=outcome|location|behavior|family|"
               "timing|worker]\n"
               "          [--where=<col>=<value>]... [--count] [--rows] "
               "[--limit=<n>]\n",
               argv0);
  std::exit(2);
}

/// Resolve a dictionary name to its code; exits with the valid names on a miss.
std::uint8_t code_for(const std::vector<std::string>& dict,
                      const std::string& name, const char* col) {
  for (std::size_t i = 0; i < dict.size(); ++i)
    if (dict[i] == name) return std::uint8_t(i);
  std::fprintf(stderr, "unknown %s '%s'; one of:", col, name.c_str());
  for (const std::string& d : dict) std::fprintf(stderr, " %s", d.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

const char* dict_name(const std::vector<std::string>& dict, std::uint8_t code) {
  return code < dict.size() ? dict[code].c_str() : "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, by = "outcome";
  std::vector<std::pair<std::string, std::string>> wheres;
  bool count_only = false, dump_rows = false;
  std::uint64_t limit = ~0ull;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--by=", 0) == 0) by = arg.substr(5);
    else if (arg.rfind("--where=", 0) == 0) {
      const std::string w = arg.substr(8);
      const auto eq = w.find('=');
      if (eq == std::string::npos) usage(argv[0]);
      wheres.emplace_back(w.substr(0, eq), w.substr(eq + 1));
    } else if (arg == "--count") count_only = true;
    else if (arg == "--rows") dump_rows = true;
    else if (arg.rfind("--limit=", 0) == 0)
      limit = cliflags::parse_u64_flag("limit", arg.substr(8));
    else if (arg.rfind("--", 0) == 0) usage(argv[0]);
    else if (path.empty()) path = arg;
    else usage(argv[0]);
  }
  if (path.empty()) usage(argv[0]);

  ColstoreFile store;
  try {
    store = campaign::read_colstore(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gemfi_query: %s: %s\n", path.c_str(), e.what());
    return 2;
  }

  // Compile the filters against the dictionaries once, up front.
  std::vector<std::function<bool(const ColstoreRow&)>> filters;
  for (const auto& [col, value] : wheres) {
    if (col == "outcome") {
      const std::uint8_t c = code_for(store.outcome_names, value, "outcome");
      filters.emplace_back([c](const ColstoreRow& r) { return r.outcome == c; });
    } else if (col == "location") {
      const std::uint8_t c = code_for(store.location_names, value, "location");
      filters.emplace_back([c](const ColstoreRow& r) { return r.location == c; });
    } else if (col == "behavior") {
      const std::uint8_t c = code_for(store.behavior_names, value, "behavior");
      filters.emplace_back([c](const ColstoreRow& r) { return r.behavior == c; });
    } else if (col == "family") {
      const std::uint8_t c = code_for(store.family_names, value, "family");
      filters.emplace_back([c](const ColstoreRow& r) { return r.family == c; });
    } else if (col == "worker") {
      const unsigned w = cliflags::parse_u32_flag("where", value);
      filters.emplace_back([w](const ColstoreRow& r) { return r.worker == w; });
    } else if (col == "applied") {
      const bool a = cliflags::parse_u32_flag("where", value) != 0;
      filters.emplace_back([a](const ColstoreRow& r) { return r.applied == a; });
    } else if (col == "index") {
      const std::uint64_t idx = cliflags::parse_u64_flag("where", value);
      filters.emplace_back([idx](const ColstoreRow& r) { return r.index == idx; });
    } else {
      usage(argv[0]);
    }
  }

  std::vector<const ColstoreRow*> rows;
  rows.reserve(store.rows.size());
  for (const ColstoreRow& r : store.rows) {
    bool keep = true;
    for (const auto& f : filters)
      if (!f(r)) { keep = false; break; }
    if (keep) rows.push_back(&r);
  }

  if (count_only) {
    std::printf("%zu\n", rows.size());
    return 0;
  }
  if (dump_rows) {
    std::printf("index\tworker\toutcome\tlocation\tbehavior\tfamily\tapplied\t"
                "retries\ttime_fraction\tmetric\tsim_ticks\n");
    std::uint64_t printed = 0;
    for (const ColstoreRow* r : rows) {
      if (printed++ >= limit) break;
      std::printf("%llu\t%u\t%s\t%s\t%s\t%s\t%d\t%u\t%.6f\t%.6f\t%llu\n",
                  (unsigned long long)r->index, r->worker,
                  dict_name(store.outcome_names, r->outcome),
                  dict_name(store.location_names, r->location),
                  dict_name(store.behavior_names, r->behavior),
                  dict_name(store.family_names, r->family), int(r->applied),
                  r->retries, r->time_fraction, r->metric,
                  (unsigned long long)r->sim_ticks);
    }
    return 0;
  }

  // Histogram over the requested dimension, dictionary-named where one exists.
  std::map<std::string, std::uint64_t> hist;
  for (const ColstoreRow* r : rows) {
    std::string key;
    if (by == "outcome") key = dict_name(store.outcome_names, r->outcome);
    else if (by == "location") key = dict_name(store.location_names, r->location);
    else if (by == "behavior") key = dict_name(store.behavior_names, r->behavior);
    else if (by == "family") key = dict_name(store.family_names, r->family);
    else if (by == "worker") key = "worker " + std::to_string(r->worker);
    else if (by == "timing") {
      const double tf = r->time_fraction;
      unsigned bin = tf >= 1.0 ? campaign::kNumTimingBins - 1
                     : tf < 0.0 ? 0
                                : unsigned(tf * campaign::kNumTimingBins);
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f-%.1f",
                    double(bin) / campaign::kNumTimingBins,
                    double(bin + 1) / campaign::kNumTimingBins);
      key = buf;
    } else usage(argv[0]);
    ++hist[key];
  }
  for (const auto& [key, n] : hist)
    std::printf("%-20s %8llu  %5.1f%%\n", key.c_str(), (unsigned long long)n,
                rows.empty() ? 0.0 : 100.0 * double(n) / double(rows.size()));
  std::fprintf(stderr, "%zu/%zu rows (%zu groups)\n", rows.size(),
               store.rows.size(), hist.size());
  return 0;
}
