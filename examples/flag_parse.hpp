// Checked numeric flag parsing shared by the gemfi CLIs.
//
// The raw strtoul idiom silently turns `--port=notaport` into 0 and carries
// on; these helpers abort with exit code 2 and a message naming the
// offending flag instead, so a typo dies at the command line rather than as
// a bind to port 0 or a campaign of zero experiments.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gemfi::cliflags {

[[noreturn]] inline void bad_value(const char* flag, const std::string& text) {
  std::fprintf(stderr, "invalid numeric value for --%s: '%s'\n", flag,
               text.c_str());
  std::exit(2);
}

inline std::uint64_t parse_u64_flag(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || text[0] == '-' || *end != '\0' || errno == ERANGE)
    bad_value(flag, text);
  return v;
}

inline unsigned parse_u32_flag(const char* flag, const std::string& text) {
  const std::uint64_t v = parse_u64_flag(flag, text);
  if (v > ~0u) bad_value(flag, text);
  return unsigned(v);
}

inline std::uint16_t parse_u16_flag(const char* flag, const std::string& text) {
  const std::uint64_t v = parse_u64_flag(flag, text);
  if (v > 0xffffu) bad_value(flag, text);
  return std::uint16_t(v);
}

inline double parse_f64_flag(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || *end != '\0' || errno == ERANGE) bad_value(flag, text);
  return v;
}

}  // namespace gemfi::cliflags
