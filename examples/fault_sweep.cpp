// Fault sweep: systematically flip every bit of one architectural register
// at one point of the DCT kernel and report how each bit position fares —
// a miniature of the paper's validation methodology, showing how GemFI is
// used to correlate fault location (here: bit significance) with outcome.
//
//   $ ./fault_sweep [reg]        (default: integer register s0 = R9, the
//                                 DCT kernel's block-row counter)
#include <cstdio>
#include <cstdlib>

#include "campaign/runner.hpp"

using namespace gemfi;

int main(int argc, char** argv) {
  const unsigned reg = argc > 1 ? unsigned(std::atoi(argv[1])) : 9;

  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.switch_to_atomic_after_fault = true;
  cfg.use_checkpoint = true;
  cfg.workers = 1;

  std::printf("calibrating dct...\n");
  const auto ca = campaign::calibrate(apps::build_app("dct"), cfg);
  std::printf("kernel length: %llu fetched instructions\n\n",
              (unsigned long long)ca.kernel_fetches);

  std::printf("flipping each bit of int register R%u at the kernel midpoint:\n", reg);
  std::printf("%4s  %-18s %10s\n", "bit", "outcome", "PSNR/metric");
  for (unsigned bit = 0; bit < 64; ++bit) {
    fi::Fault f;
    f.location = fi::FaultLocation::IntReg;
    f.reg = reg;
    f.time = ca.kernel_fetches / 2;
    f.behavior = fi::FaultBehavior::Flip;
    f.operand = bit;
    const auto er = campaign::run_experiment(ca, f, cfg);
    std::printf("%4u  %-18s %10.2f\n", bit,
                apps::outcome_name(er.classification.outcome),
                er.classification.metric);
  }
  std::printf("\ntypical reading for a live loop counter: low bits repeat or skip\n"
              "blocks (quality loss or SDC), higher bits blow the block index\n"
              "past the image (wild addresses, crashes), and bits beyond the\n"
              "loop bound are dead (non-propagated after the final rewrite).\n");
  return 0;
}
