// gemfi_cli — the command-line front end, mirroring how the paper's tool is
// driven: "On GemFI invocation the user also provides — at command line — an
// input file specifying the faults to be injected" (Sec. III-A).
//
// Usage:
//   gemfi_cli --program=<file.s>    run a user-written uAlpha assembly file
//   gemfi_cli --app=<dct|jacobi|pi|knapsack|deblock|canneal|aes>
//             [--faults=<file>]        fault config, one Listing-1 line each
//             [--syscall-fault=<line>] one syscall fault plan (repeatable):
//                                        write@idx:3 errno:EIO
//                                        read@idx:2-5 tid:0 partial:0.5
//                                        * p:0.01@0x1234 latency:2000
//                                        recv corrupt:3@0xbeef
//             [--fault=<line>]         one inline fault spec (repeatable);
//                                      the grammar covers every model family:
//                                        transient   Flip:21 ... occ:1
//                                        stuck-at    StuckAt1:0x200000 ... occ:perm
//                                        intermittent ... occ:perm duty:2/16
//                                        burst       Burst:4+3 / RandK:3@0x1234
//                                        attack      SkipInjectedFault occ:3, or
//                                                    OpcodeInjectedFault ...
//                                                    pcwin:0x2000-0x2040
//             [--cpu=atomic|timing|pipelined]
//             [--paper]                paper-scale inputs
//             [--watchdog-mult=<k>]    watchdog = k * golden ticks
//             [--log]                  print the injection log
//             [--no-predecode]         disable the predecode fast path (the
//                                      predecoded-inst cache and the atomic
//                                      model's batched dispatch loop)
//             [--no-fastpath]          disable the timing-model fast lane
//                                      (MRU cache hits, stall warping, the
//                                      batched TimingSimple loop)
//             [--no-fastmode]          disable the golden-path superblock
//                                      tier (threaded-code traces on the
//                                      atomic model while the fault manager
//                                      is quiescent); the A/B baseline
//   gemfi_cli --app=<name> --campaign=<n>   seeded random-fault campaign
//             [--seed=<u64>]           campaign seed (default 42)
//             [--random-syscall-faults] additionally arm one seeded random
//                                      syscall plan per experiment (plus any
//                                      --syscall-fault= lines, which apply to
//                                      every experiment)
//             [--workers=<k>]          parallel experiments (default 1)
//             [--out=<file.jsonl>]     stream one JSON record per experiment
//             [--progress]             periodic progress lines on stderr
//             [--deadline=<sec>]       wall-clock deadline per experiment
//             [--retries=<k>]          retries on simulator-internal errors
//             [--ckpt-format=v1|v2]    checkpoint encoding (default v2)
//             [--no-ckpt-compress]     v2: store pages raw (no RLE)
//             [--no-shared-baseline]   full blob restore per experiment
//             [--now-local=<n>]        run the campaign through the NoW
//                                      dispatch service with n forked
//                                      loopback worker processes (instead of
//                                      in-process threads); see also
//                                      gemfi_now_master / gemfi_now_worker
//                                      for campaigns spanning real hosts
//             [--slots=<k>]            experiment slots per --now-local worker
//             [--now-unix=<path>]      serve the local fleet over an AF_UNIX
//                                      socket instead of loopback TCP
//             [--stop-ci=EPS[@CONF]]   sequential early stop: end the campaign
//                                      once every outcome CI half-width is
//                                      below EPS at CONF (default 0.99)
//             [--autoscale=MIN:MAX]    grow/retire forked workers elastically
//                                      from the dispatch backlog
//             [--colstore=<file.gfcs>] columnar result store for gemfi_query
//   gemfi_cli --app=<name> --replay=<index> --seed=<u64> [--record=<file.jsonl>]
//             re-run one campaign experiment in isolation from its JSONL
//             record's (seed, index); prints the record to stdout. The
//             record's "fastmode" field names the engine tier of the
//             original run — pass --no-fastmode iff it says false. With
//             --record, the original campaign JSONL is read and the replay
//             asserts (exit 3) that the requested tier matches the record's
//             "fastmode" field and that the re-run's canonical record is
//             byte-identical to the original's (host-timing and checkpoint-
//             restore-telemetry fields aside — those describe the host, not
//             the simulated machine).
//
// Examples:
//   echo 'RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu0 occ:1 int 1' > f.cfg
//   ./gemfi_cli --app=dct --faults=f.cfg --log
//   ./gemfi_cli --app=dct --campaign=100 --seed=7 --workers=4
//       --out=results.jsonl --progress
//   ./gemfi_cli --app=dct --replay=17 --seed=7
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "assembler/text_asm.hpp"
#include "campaign/analytics/colstore.hpp"
#include "campaign/dispatch.hpp"
#include "campaign/observer.hpp"
#include "campaign/runner.hpp"
#include "flag_parse.hpp"

using namespace gemfi;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --app=<name> [--faults=<file>] [--fault=<line>] "
               "[--syscall-fault=<line>] [--cpu=atomic|timing|"
               "pipelined] [--paper] [--watchdog-mult=<k>] [--log] [--no-predecode]\n"
               "           [--no-fastpath] [--no-fastmode]\n"
               "       %s --app=<name> --campaign=<n> [--seed=<u64>] [--workers=<k>]\n"
               "           [--out=<file.jsonl>] [--progress] [--deadline=<sec>]\n"
               "           [--retries=<k>] [--ckpt-format=v1|v2] [--no-ckpt-compress]\n"
               "           [--no-shared-baseline] [--now-local=<n>] [--slots=<k>]\n"
               "           [--now-unix=<path>] [--stop-ci=EPS[@CONF]] "
               "[--autoscale=MIN:MAX]\n"
               "           [--colstore=<file.gfcs>]\n"
               "           [--syscall-fault=<line>] [--random-syscall-faults]\n"
               "       %s --app=<name> --replay=<index> --seed=<u64> "
               "[--record=<file.jsonl>]\n",
               argv0, argv0, argv0);
  std::exit(2);
}

using cliflags::bad_value;
using cliflags::parse_f64_flag;
using cliflags::parse_u32_flag;
using cliflags::parse_u64_flag;

/// The campaign JSONL line of experiment `index` in `path`, or empty.
/// Event/header records (no "index" field) are skipped.
std::string find_record_line(const std::string& path, std::uint64_t index) {
  std::ifstream in(path);
  if (!in) return {};
  const std::string key = "{\"index\":" + std::to_string(index) + ",";
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(key, 0) == 0) return line;
  return {};
}

/// The value of a bool field in a JSONL record line; `fallback` if absent.
bool record_bool_field(const std::string& line, const std::string& name, bool fallback) {
  const std::string key = "\"" + name + "\":";
  const std::size_t pos = line.find(key);
  if (pos == std::string::npos) return fallback;
  return line.compare(pos + key.size(), 4, "true") == 0;
}

/// A full record line reduced to the canonical (host-timing-free) form:
/// the wall_seconds and fastmode fields are adjacent by construction
/// (experiment_record_to_json emits them together), so one splice drops
/// both. Returns the line unchanged when the fields are absent (the line
/// was already canonical).
std::string canonical_form(const std::string& line) {
  const std::size_t begin = line.find(",\"wall_seconds\":");
  if (begin == std::string::npos) return line;
  const std::size_t end = line.find(",\"retries\":", begin);
  if (end == std::string::npos) return line;
  return line.substr(0, begin) + line.substr(end);
}

/// Reduce a canonical record to the fields a replay can reproduce, for the
/// divergence check: drops the worker id (which campaign thread picked the
/// experiment up — host scheduling) and the checkpoint-restore telemetry
/// block (ckpt_format/restore_pages/restore_bytes — a shared-baseline
/// campaign restore legitimately reports different costs than the isolated
/// full restore a replay performs). Every simulated-outcome field stays.
std::string replay_comparable(std::string line) {
  const std::size_t wbegin = line.find(",\"worker\":");
  if (wbegin != std::string::npos) {
    std::size_t wend = wbegin + std::strlen(",\"worker\":");
    while (wend < line.size() && std::isdigit(static_cast<unsigned char>(line[wend]))) ++wend;
    line = line.substr(0, wbegin) + line.substr(wend);
  }
  const std::size_t begin = line.find(",\"ckpt_format\":");
  if (begin == std::string::npos) return line;
  std::size_t end = line.find(",\"restore_bytes\":", begin);
  if (end == std::string::npos) return line;
  end += std::strlen(",\"restore_bytes\":");
  while (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end]))) ++end;
  return line.substr(0, begin) + line.substr(end);
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name;
  std::string program_path;
  std::string fault_path;
  std::vector<std::string> inline_faults;
  std::vector<std::string> inline_syscall_faults;
  bool random_syscall_faults = false;
  std::string out_path;
  sim::CpuKind cpu = sim::CpuKind::Pipelined;
  apps::AppScale scale;
  std::uint64_t watchdog_mult = 8;
  bool show_log = false;
  bool progress = false;
  std::uint64_t campaign_n = 0;
  std::uint64_t campaign_seed = 42;
  std::int64_t replay_index = -1;
  std::string record_path;  // --replay: original campaign JSONL to check against
  unsigned workers = 1;
  unsigned now_local = 0;
  std::string now_unix;       // --now-unix: AF_UNIX path for the local fleet
  std::string colstore_path;  // --colstore: columnar result store
  campaign::StopPolicy stop_policy;
  unsigned autoscale_min = 0, autoscale_max = 0;
  unsigned slots = 1;
  unsigned retries = 2;
  double deadline = 0.0;
  chkpt::CheckpointFormat ckpt_format = chkpt::CheckpointFormat::V2;
  bool ckpt_compress = true;
  bool shared_baseline = true;
  bool predecode = true;
  bool fastpath = true;
  bool fastmode = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--app=", 0) == 0) {
      app_name = arg.substr(6);
    } else if (arg.rfind("--program=", 0) == 0) {
      program_path = arg.substr(10);
    } else if (arg.rfind("--faults=", 0) == 0) {
      fault_path = arg.substr(9);
    } else if (arg.rfind("--fault=", 0) == 0) {
      inline_faults.push_back(arg.substr(8));
    } else if (arg.rfind("--syscall-fault=", 0) == 0) {
      inline_syscall_faults.push_back(arg.substr(16));
    } else if (arg == "--random-syscall-faults") {
      random_syscall_faults = true;
    } else if (arg.rfind("--cpu=", 0) == 0) {
      const std::string kind = arg.substr(6);
      if (kind == "atomic") cpu = sim::CpuKind::AtomicSimple;
      else if (kind == "timing") cpu = sim::CpuKind::TimingSimple;
      else if (kind == "pipelined") cpu = sim::CpuKind::Pipelined;
      else usage(argv[0]);
    } else if (arg == "--paper") {
      scale.paper = true;
    } else if (arg.rfind("--watchdog-mult=", 0) == 0) {
      watchdog_mult = parse_u64_flag("watchdog-mult", arg.substr(16));
    } else if (arg == "--log") {
      show_log = true;
    } else if (arg.rfind("--campaign=", 0) == 0) {
      campaign_n = parse_u64_flag("campaign", arg.substr(11));
    } else if (arg.rfind("--seed=", 0) == 0) {
      campaign_seed = parse_u64_flag("seed", arg.substr(7));
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay_index = std::int64_t(parse_u64_flag("replay", arg.substr(9)));
    } else if (arg.rfind("--record=", 0) == 0) {
      record_path = arg.substr(9);
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = parse_u32_flag("workers", arg.substr(10));
    } else if (arg.rfind("--now-local=", 0) == 0) {
      now_local = parse_u32_flag("now-local", arg.substr(12));
    } else if (arg.rfind("--now-unix=", 0) == 0) {
      now_unix = arg.substr(11);
    } else if (arg.rfind("--stop-ci=", 0) == 0) {
      try {
        stop_policy = campaign::parse_stop_ci(arg.substr(10));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg.rfind("--autoscale=", 0) == 0) {
      const std::string spec = arg.substr(12);
      const auto colon = spec.find(':');
      if (colon == std::string::npos) usage(argv[0]);
      autoscale_min = parse_u32_flag("autoscale", spec.substr(0, colon));
      autoscale_max = parse_u32_flag("autoscale", spec.substr(colon + 1));
      if (autoscale_max < autoscale_min) usage(argv[0]);
    } else if (arg.rfind("--colstore=", 0) == 0) {
      colstore_path = arg.substr(11);
    } else if (arg.rfind("--slots=", 0) == 0) {
      slots = parse_u32_flag("slots", arg.substr(8));
    } else if (arg.rfind("--retries=", 0) == 0) {
      retries = parse_u32_flag("retries", arg.substr(10));
    } else if (arg.rfind("--deadline=", 0) == 0) {
      deadline = parse_f64_flag("deadline", arg.substr(11));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg.rfind("--ckpt-format=", 0) == 0) {
      const std::string fmt = arg.substr(14);
      if (fmt == "v1") ckpt_format = chkpt::CheckpointFormat::V1;
      else if (fmt == "v2") ckpt_format = chkpt::CheckpointFormat::V2;
      else usage(argv[0]);
    } else if (arg == "--no-ckpt-compress") {
      ckpt_compress = false;
    } else if (arg == "--no-shared-baseline") {
      shared_baseline = false;
    } else if (arg == "--no-predecode") {
      predecode = false;
    } else if (arg == "--no-fastpath") {
      fastpath = false;
    } else if (arg == "--no-fastmode") {
      fastmode = false;
    } else {
      usage(argv[0]);
    }
  }
  if (app_name.empty() == program_path.empty()) usage(argv[0]);  // exactly one
  if (campaign_n != 0 && replay_index >= 0) usage(argv[0]);
  // Early stopping, elasticity and the unix transport live in the NoW
  // dispatch layer; they need the multi-process path.
  if ((stop_policy.enabled() || autoscale_max > 0 || !now_unix.empty()) &&
      now_local == 0)
    usage(argv[0]);

  std::vector<fi::Fault> faults;
  if (!fault_path.empty()) {
    std::ifstream in(fault_path);
    if (!in) {
      std::fprintf(stderr, "cannot open fault file: %s\n", fault_path.c_str());
      return 2;
    }
    std::ostringstream body;
    body << in.rdbuf();
    try {
      faults = fi::parse_fault_file(body.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  for (const std::string& line : inline_faults) {
    try {
      faults.push_back(fi::parse_fault(line));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--fault=%s: %s\n", line.c_str(), e.what());
      return 2;
    }
  }
  std::vector<fi::SyscallFaultPlan> syscall_plans;
  for (const std::string& line : inline_syscall_faults) {
    try {
      syscall_plans.push_back(fi::parse_syscall_plan(line));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--syscall-fault=%s: %s\n", line.c_str(), e.what());
      return 2;
    }
  }

  campaign::CampaignConfig cfg;
  cfg.cpu = cpu;
  cfg.watchdog_mult = watchdog_mult;
  cfg.switch_to_atomic_after_fault = true;
  cfg.workers = workers == 0 ? 1 : workers;
  cfg.campaign_seed = campaign_seed;
  cfg.deadline_seconds = deadline;
  cfg.max_retries = retries;
  cfg.ckpt_format = ckpt_format;
  cfg.ckpt_compress = ckpt_compress;
  cfg.shared_baseline = shared_baseline;
  cfg.predecode = predecode;
  cfg.fastpath = fastpath;
  cfg.fastmode = fastmode;
  cfg.syscall_plans = syscall_plans;
  cfg.random_syscall_faults = random_syscall_faults;

  if (!program_path.empty()) {
    // User-supplied .s file: assemble, run (with faults, if any), report.
    assembler::Program prog;
    try {
      prog = assembler::assemble_file(program_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    sim::SimConfig scfg;
    scfg.cpu = cpu;
    scfg.predecode = predecode;
    scfg.fastpath = fastpath;
    scfg.fastmode = fastmode;
    sim::Simulation s(scfg, prog);
    s.spawn_main_thread();
    s.fault_manager().load_faults(faults);
    for (const fi::SyscallFaultPlan& p : syscall_plans) s.syscall_injector().add_plan(p);
    const sim::RunResult rr = s.run(500'000'000ull);
    std::printf("%s", s.output(0).c_str());
    std::fprintf(stderr, "exit: %s", sim::exit_reason_name(rr.reason));
    if (rr.crashed())
      std::fprintf(stderr, " (%s at pc=0x%llx)", cpu::trap_name(rr.trap.kind),
                   (unsigned long long)rr.crash_pc);
    std::fprintf(stderr, "\n");
    if (show_log)
      for (const auto& line : s.fault_manager().injection_log())
        std::fprintf(stderr, "inject: %s\n", line.c_str());
    return rr.crashed() ? 1 : 0;
  }

  std::fprintf(stderr, "calibrating %s on the %s model...\n", app_name.c_str(),
               sim::cpu_kind_name(cpu));
  campaign::CalibratedApp ca;
  try {
    ca = campaign::calibrate(apps::build_app(app_name, scale), cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::fprintf(stderr,
               "golden run: %llu instructions (%llu in the FI window), %llu ticks\n",
               (unsigned long long)ca.golden_committed,
               (unsigned long long)ca.kernel_fetches,
               (unsigned long long)ca.golden_ticks);
  if (!ca.checkpoint.empty()) {
    const chkpt::CheckpointStats cs = ca.checkpoint.stats();
    std::fprintf(stderr,
                 "checkpoint: %s, %llu/%llu pages stored (%llu RLE), "
                 "%llu -> %llu bytes (%.1fx)\n",
                 chkpt::checkpoint_format_name(cs.format),
                 (unsigned long long)cs.pages_stored,
                 (unsigned long long)cs.pages_total,
                 (unsigned long long)cs.pages_rle,
                 (unsigned long long)cs.raw_bytes,
                 (unsigned long long)cs.encoded_bytes,
                 cs.encoded_bytes == 0
                     ? 0.0
                     : double(cs.raw_bytes) / double(cs.encoded_bytes));
  }

  if (replay_index >= 0) {
    // Re-run one campaign experiment in isolation: (seed, index) from its
    // JSONL record regenerate the identical fault deterministically.
    const std::uint64_t index = std::uint64_t(replay_index);
    // With --record, the original record's "fastmode" field names the
    // engine tier that produced it; the replay must be forced onto the
    // identical tier (the presence/absence of --no-fastmode) before it
    // runs, or it is not a replay of the same machine.
    std::string original;
    if (!record_path.empty()) {
      original = find_record_line(record_path, index);
      if (original.empty()) {
        std::fprintf(stderr, "replay %llu: no record with that index in %s\n",
                     (unsigned long long)index, record_path.c_str());
        return 2;
      }
      const bool recorded = record_bool_field(original, "fastmode", cfg.fastmode);
      if (recorded != cfg.fastmode) {
        std::fprintf(stderr,
                     "replay %llu: engine tier mismatch (record ran fastmode=%d, "
                     "requested %d; pass --no-fastmode iff the record says false)\n",
                     (unsigned long long)index, int(recorded), int(cfg.fastmode));
        return 3;
      }
    }
    const fi::Fault f = campaign::seeded_fault_any(campaign_seed, index, ca.kernel_fetches);
    const auto plans = campaign::plans_for_experiment(cfg, index);
    const auto er = campaign::run_experiment_with_retry(ca, f, cfg, &plans);
    const campaign::ExperimentRecord rec{
        std::size_t(index), 0, campaign::experiment_seed(campaign_seed, index), er};
    // Deterministic form (no host timing): two replays of the same (seed,
    // index, plans) print byte-identical records — fast mode on or off.
    const std::string canonical =
        campaign::experiment_record_to_json(rec, /*include_host_timing=*/false);
    if (!original.empty() &&
        replay_comparable(canonical) != replay_comparable(canonical_form(original))) {
      std::fprintf(stderr, "replay %llu: record diverged from the original\n  ran: %s\n  was: %s\n",
                   (unsigned long long)index, canonical.c_str(),
                   canonical_form(original).c_str());
      return 3;
    }
    std::printf("%s\n", canonical.c_str());
    std::fprintf(stderr, "replay %llu: %s (exit %s, fastmode=%d)\n",
                 (unsigned long long)index,
                 apps::outcome_name(er.classification.outcome),
                 sim::exit_reason_name(er.exit_reason), int(er.fastmode));
    return 0;
  }

  if (campaign_n != 0) {
    campaign::TeeObserver tee;
    std::unique_ptr<campaign::JsonlSink> sink;
    std::unique_ptr<campaign::ColstoreSink> colstore;
    std::unique_ptr<campaign::ProgressPrinter> reporter;
    if (!out_path.empty()) {
      try {
        sink = std::make_unique<campaign::JsonlSink>(out_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      // Calibration header: the golden-run costs and wall time, plus the
      // engine tier, as the stream's first record.
      sink->write_line(campaign::calibration_record_to_json(app_name, ca, cfg.fastmode));
      tee.add(sink.get());
    }
    if (!colstore_path.empty()) {
      try {
        colstore = std::make_unique<campaign::ColstoreSink>(colstore_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      tee.add(colstore.get());
    }
    if (progress) {
      reporter = std::make_unique<campaign::ProgressPrinter>(stderr);
      tee.add(reporter.get());
    }
    cfg.observer = &tee;

    const auto fset = campaign::seeded_fault_set(campaign_seed, std::size_t(campaign_n),
                                                 ca.kernel_fetches);
    campaign::CampaignReport report;
    if (now_local > 0) {
      // True multi-process NoW mode: a master plus forked loopback worker
      // processes, each rebuilding the app from the shipped checkpoint.
      campaign::DispatchConfig dcfg;
      dcfg.handle_sigint = true;  // ^C drains gracefully, partial JSONL survives
      dcfg.stop = stop_policy;
      dcfg.unix_path = now_unix;
      dcfg.autoscale.min_workers = autoscale_min;
      dcfg.autoscale.max_workers = autoscale_max;
      campaign::DispatchReport dr;
      try {
        dr = campaign::run_campaign_service_local(ca, scale, fset, cfg, now_local,
                                                  slots == 0 ? 1 : slots, dcfg);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      report = dr.campaign;
      std::fprintf(stderr,
                   "NoW service: %zu/%zu experiments, %u workers joined, %u lost, "
                   "%llu requeued, %llu duplicates dropped, %.1f KiB checkpoint shipped%s\n",
                   dr.completed, fset.size(), dr.workers_joined, dr.workers_lost,
                   (unsigned long long)dr.requeued,
                   (unsigned long long)dr.duplicate_results,
                   double(dr.checkpoint_bytes_shipped) / 1024.0,
                   dr.drained_early ? " (drained early)" : "");
      if (dr.stopped_early)
        std::fprintf(stderr,
                     "sequential stop at prefix %llu/%zu (%llu cancelled, "
                     "%u workers spawned, %u retired)\n",
                     (unsigned long long)dr.stop_index, fset.size(),
                     (unsigned long long)dr.cancelled, dr.workers_spawned,
                     dr.workers_retired);
      if (!dr.aggregate_summary.empty())
        std::printf("%s\n", dr.aggregate_summary.c_str());
    } else {
      report = campaign::run_campaign(ca, fset, cfg);
    }
    std::fprintf(stderr, "campaign: %zu experiments in %.2fs (%u workers, seed %llu)\n",
                 report.total(), report.wall_seconds,
                 now_local > 0 ? now_local : cfg.workers,
                 (unsigned long long)campaign_seed);
    for (unsigned o = 0; o < apps::kNumOutcomes; ++o) {
      const auto outcome = static_cast<apps::Outcome>(o);
      std::printf("%-16s %6zu  %5.1f%%\n", apps::outcome_name(outcome),
                  report.counts[o], 100.0 * report.fraction(outcome));
    }
    if (!cfg.syscall_plans.empty() || cfg.random_syscall_faults) {
      std::printf("syscall-fault taxonomy:\n");
      for (unsigned o = 0; o < campaign::kNumSyscallOutcomes; ++o) {
        const auto so = static_cast<campaign::SyscallOutcome>(o);
        std::printf("  %-18s %6zu  %5.1f%%\n", campaign::syscall_outcome_name(so),
                    report.syscall_counts[o],
                    report.total() == 0
                        ? 0.0
                        : 100.0 * double(report.syscall_counts[o]) / double(report.total()));
      }
      std::printf("  max cascade length %u\n", report.max_cascade);
    }
    if (sink)
      std::fprintf(stderr, "wrote %zu records to %s\n", sink->lines_written(),
                   out_path.c_str());
    if (colstore) {
      try {
        colstore->finish();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      std::fprintf(stderr, "wrote %llu rows to %s\n",
                   (unsigned long long)colstore->rows_written(),
                   colstore_path.c_str());
    }
    return 0;
  }

  if (faults.empty() && syscall_plans.empty()) {
    std::printf("%s", ca.app.golden_output.c_str());
    std::fprintf(stderr, "no faults configured: golden output above\n");
    return 0;
  }

  sim::SimConfig scfg;
  scfg.cpu = cpu;
  scfg.switch_to_atomic_after_fault = faults.size() == 1;
  scfg.predecode = predecode;
  scfg.fastpath = fastpath;
  scfg.fastmode = fastmode;
  sim::Simulation s(scfg, ca.app.program);
  s.spawn_main_thread();
  ca.checkpoint.restore_into(s);
  s.fault_manager().load_faults(faults);
  for (const fi::SyscallFaultPlan& p : syscall_plans) s.syscall_injector().add_plan(p);
  const sim::RunResult rr = s.run(watchdog_mult * ca.golden_ticks + 1'000'000);
  const auto c = campaign::classify(ca.app, rr, s.fault_manager(), s.output(0));

  std::printf("%s", s.output(0).c_str());
  std::fprintf(stderr, "exit: %s", sim::exit_reason_name(rr.reason));
  if (rr.crashed())
    std::fprintf(stderr, " (%s at pc=0x%llx)", cpu::trap_name(rr.trap.kind),
                 (unsigned long long)rr.crash_pc);
  std::fprintf(stderr, "\noutcome: %s", apps::outcome_name(c.outcome));
  if (c.outcome == apps::Outcome::Correct ||
      c.outcome == apps::Outcome::AttackEffective)
    std::fprintf(stderr, " (metric %.3f)", c.metric);
  std::fprintf(stderr, "\n");
  if (!syscall_plans.empty()) {
    bool unhandled = rr.reason != sim::ExitReason::AllThreadsExited;
    for (std::uint64_t tid = 0; tid < s.scheduler().thread_count(); ++tid)
      if (s.scheduler().thread(tid).exit_code != 0) unhandled = true;
    const auto sc = campaign::classify_syscalls(s.syscalls().full_trace(), unhandled);
    std::fprintf(stderr, "syscalls: %s (cascade %u, %llu injected%s)\n",
                 campaign::syscall_outcome_name(sc.outcome), sc.cascade_len,
                 (unsigned long long)s.syscalls().injected_calls(),
                 sc.unrealistic ? ", unrealistic errno" : "");
  }
  if (show_log)
    for (const auto& line : s.fault_manager().injection_log())
      std::fprintf(stderr, "inject: %s\n", line.c_str());
  return rr.crashed() ? 1 : 0;
}
