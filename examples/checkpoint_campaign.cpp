// Checkpointed campaign on a (simulated) network of workstations — the
// paper's Sec. III-D/III-E workflow end to end:
//   1. calibrate the app, capturing the fi_read_init_all() checkpoint;
//   2. generate a uniformly random single-event-upset campaign;
//   3. run it locally without fast-forwarding, then fast-forwarded from the
//      checkpoint, then distributed over a NoW;
//   4. print the outcome distribution and the speedups (Fig. 8's story).
//
//   $ ./checkpoint_campaign [app] [n]      (defaults: pi, 24 experiments)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/now_runner.hpp"

using namespace gemfi;

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "pi";
  const std::size_t n = argc > 2 ? std::size_t(std::atoll(argv[2])) : 24;

  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.switch_to_atomic_after_fault = true;
  cfg.workers = 2;

  std::printf("calibrating %s ...\n", app_name.c_str());
  const auto ca = campaign::calibrate(apps::build_app(app_name), cfg);
  std::printf("checkpoint: %zu bytes at tick %llu of %llu (init fraction %.2f)\n\n",
              ca.checkpoint.size_bytes(), (unsigned long long)ca.ticks_to_checkpoint,
              (unsigned long long)ca.golden_ticks,
              double(ca.ticks_to_checkpoint) / double(ca.golden_ticks));

  util::Rng rng(2026);
  std::vector<fi::Fault> faults;
  for (std::size_t i = 0; i < n; ++i)
    faults.push_back(campaign::random_fault_any(rng, ca.kernel_fetches));

  auto no_ff = cfg;
  no_ff.use_checkpoint = false;
  const auto slow = campaign::run_campaign(ca, faults, no_ff);

  auto ff = cfg;
  ff.use_checkpoint = true;
  const auto fast = campaign::run_campaign(ca, faults, ff);

  campaign::NowConfig now;  // 27 workstations x 4 slots, as in the paper
  const auto dist = campaign::run_campaign_now(ca, faults, ff, now);

  std::printf("outcomes over %zu experiments:\n", n);
  static const char* kNames[] = {"crashed", "non-propagated", "strictly-correct",
                                 "correct", "SDC"};
  for (unsigned o = 0; o < apps::kNumOutcomes; ++o)
    std::printf("  %-18s %zu\n", kNames[o], fast.counts[o]);

  std::printf("\ncampaign times:\n");
  std::printf("  no fast-forward          %8.2f s\n", slow.wall_seconds);
  std::printf("  checkpoint fast-forward  %8.2f s  (%.1fx)\n", fast.wall_seconds,
              slow.wall_seconds / fast.wall_seconds);
  std::printf("  NoW 27x4 (modeled)       %8.3f s  (additional %.1fx)\n",
              dist.modeled_makespan_seconds,
              fast.wall_seconds / dist.modeled_makespan_seconds);
  return 0;
}
