// gemfi_now_worker — one workstation of the NoW campaign service (paper
// Sec. III-E): connects to a gemfi_now_master, receives the calibrated app
// and its checkpoint once, then runs experiment batches on `--slots` parallel
// persistent-Simulation slots until the master sends Shutdown.
//
// Usage:
//   gemfi_now_worker --host=<master> --port=<p> [--slots=<k>]
//       [--unix=<path>]      connect over an AF_UNIX socket instead of TCP
//                            (same-host fleets; --host/--port ignored)
//       [--reconnects=<n>]   re-establish a lost connection up to n times
//       [--connect-attempts=<n>] [--connect-backoff=<s>]
//
// Exit codes: 0 clean shutdown from the master, 1 connection lost for good,
// 2 never connected.
#include <cstdio>
#include <cstring>
#include <string>

#include "campaign/dispatch.hpp"
#include "flag_parse.hpp"

using namespace gemfi;
using namespace gemfi::cliflags;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --host=<master> --port=<p> [--slots=<k>] [--reconnects=<n>]\n"
               "           [--unix=<path>] [--connect-attempts=<n>] [--connect-backoff=<s>]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  campaign::WorkerConfig wcfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) wcfg.host = arg.substr(7);
    else if (arg.rfind("--port=", 0) == 0)
      wcfg.port = parse_u16_flag("port", arg.substr(7));
    else if (arg.rfind("--unix=", 0) == 0) wcfg.unix_path = arg.substr(7);
    else if (arg.rfind("--slots=", 0) == 0)
      wcfg.slots = parse_u32_flag("slots", arg.substr(8));
    else if (arg.rfind("--reconnects=", 0) == 0)
      wcfg.max_reconnects = parse_u32_flag("reconnects", arg.substr(13));
    else if (arg.rfind("--connect-attempts=", 0) == 0)
      wcfg.connect_attempts = parse_u32_flag("connect-attempts", arg.substr(19));
    else if (arg.rfind("--connect-backoff=", 0) == 0)
      wcfg.connect_backoff_s = parse_f64_flag("connect-backoff", arg.substr(18));
    else usage(argv[0]);
  }
  if (wcfg.port == 0 && wcfg.unix_path.empty()) usage(argv[0]);
  if (wcfg.slots == 0) wcfg.slots = 1;

  if (wcfg.unix_path.empty())
    std::fprintf(stderr, "worker: connecting to %s:%u with %u slots\n",
                 wcfg.host.c_str(), unsigned(wcfg.port), wcfg.slots);
  else
    std::fprintf(stderr, "worker: connecting to unix:%s with %u slots\n",
                 wcfg.unix_path.c_str(), wcfg.slots);
  const int rc = campaign::run_worker(wcfg);
  std::fprintf(stderr, "worker: %s\n",
               rc == 0 ? "clean shutdown"
               : rc == 2 ? "could not connect"
                         : "connection lost");
  return rc;
}
