// gemfi_submit — client CLI for the campaign-manager daemon.
//
// Submit a campaign to a running gemfi_campaignd, poll status, cancel, or
// stream a campaign's JSONL results to a file / stdout.
//
// Usage:
//   gemfi_submit --port=<p> [--host=<h>] --app=<name> --experiments=<n>
//       [--tenant=<t>] [--name=<label>] [--seed=<u64>] [--weight=<k>]
//       [--max-workers=<k>] [--cpu=atomic|timing|pipelined] [--paper]
//       [--deadline=<s>] [--retries=<k>] [--watchdog-mult=<k>]
//       [--wait] [--out=<file.jsonl>]     stream results until terminal
//   gemfi_submit --port=<p> --status[=<id>]
//   gemfi_submit --port=<p> --cancel=<id>
//   gemfi_submit --port=<p> --watch=<id> [--out=<file.jsonl>]
//
// Exit codes: 0 ok (and, with --wait/--watch, campaign finished Done),
// 3 campaign ended cancelled/failed, 2 errors.
#include <cstdio>
#include <fstream>
#include <string>

#include "campaign/analytics/aggregator.hpp"
#include "campaign/service/client.hpp"
#include "flag_parse.hpp"

using namespace gemfi;
using namespace gemfi::cliflags;
namespace service = gemfi::campaign::service;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port=<p> [--host=<h>] --app=<name> --experiments=<n>\n"
      "           [--tenant=<t>] [--name=<label>] [--seed=<u64>] [--weight=<k>]\n"
      "           [--max-workers=<k>] [--cpu=atomic|timing|pipelined] [--paper]\n"
      "           [--deadline=<s>] [--retries=<k>] [--watchdog-mult=<k>]\n"
      "           [--stop-ci=EPS[@CONF]] sequential early stop for this campaign\n"
      "           [--no-fastmode] [--wait] [--out=<file.jsonl>]\n"
      "       %s --port=<p> --status[=<id>]\n"
      "       %s --port=<p> --cancel=<id>\n"
      "       %s --port=<p> --watch=<id> [--out=<file.jsonl>]\n",
      argv0, argv0, argv0, argv0);
  std::exit(2);
}

void print_status(const service::CampaignStatus& s) {
  std::printf("c%llu tenant=%s app=%s%s%s %s %llu/%llu workers=%u weight=%u "
              "inflight=%llu age=%.1fs%s%s\n",
              (unsigned long long)s.id, s.tenant.c_str(), s.app_name.c_str(),
              s.name.empty() ? "" : " name=", s.name.c_str(),
              service::campaign_state_name(s.state),
              (unsigned long long)s.completed, (unsigned long long)s.total,
              s.workers, s.weight, (unsigned long long)s.inflight, s.age_seconds,
              s.error.empty() ? "" : " error=", s.error.c_str());
}

/// Stream campaign `id` to `out_path` (or stdout); returns the exit code.
int watch(service::Client& client, std::uint64_t id, const std::string& out_path) {
  std::ofstream out;
  if (!out_path.empty()) {
    out.open(out_path, std::ios::out | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 2;
    }
  }
  std::size_t lines = 0;
  const service::CampaignState end = client.stream(id, [&](const std::string& line) {
    ++lines;
    if (out.is_open()) out << line << '\n';
    else std::printf("%s\n", line.c_str());
  });
  if (out.is_open()) out.flush();
  std::fprintf(stderr, "campaign %llu %s after %zu records%s%s\n",
               (unsigned long long)id, service::campaign_state_name(end), lines,
               out_path.empty() ? "" : " -> ", out_path.c_str());
  return end == service::CampaignState::Done ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string out_path;
  service::CampaignSpec spec;
  bool do_status = false, do_wait = false;
  std::uint64_t status_id = 0, cancel_id = 0, watch_id = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) host = arg.substr(7);
    else if (arg.rfind("--port=", 0) == 0)
      port = parse_u16_flag("port", arg.substr(7));
    else if (arg.rfind("--app=", 0) == 0) spec.app_name = arg.substr(6);
    else if (arg.rfind("--experiments=", 0) == 0)
      spec.experiments = parse_u64_flag("experiments", arg.substr(14));
    else if (arg.rfind("--tenant=", 0) == 0) spec.tenant = arg.substr(9);
    else if (arg.rfind("--name=", 0) == 0) spec.name = arg.substr(7);
    else if (arg.rfind("--seed=", 0) == 0)
      spec.campaign_seed = parse_u64_flag("seed", arg.substr(7));
    else if (arg.rfind("--weight=", 0) == 0)
      spec.weight = parse_u32_flag("weight", arg.substr(9));
    else if (arg.rfind("--max-workers=", 0) == 0)
      spec.max_workers = parse_u32_flag("max-workers", arg.substr(14));
    else if (arg.rfind("--cpu=", 0) == 0) {
      const std::string kind = arg.substr(6);
      if (kind == "atomic") spec.cpu = std::uint8_t(sim::CpuKind::AtomicSimple);
      else if (kind == "timing") spec.cpu = std::uint8_t(sim::CpuKind::TimingSimple);
      else if (kind == "pipelined") spec.cpu = std::uint8_t(sim::CpuKind::Pipelined);
      else usage(argv[0]);
    } else if (arg == "--paper") spec.paper_scale = true;
    else if (arg.rfind("--deadline=", 0) == 0)
      spec.deadline_seconds = parse_f64_flag("deadline", arg.substr(11));
    else if (arg.rfind("--retries=", 0) == 0)
      spec.max_retries = parse_u32_flag("retries", arg.substr(10));
    else if (arg.rfind("--watchdog-mult=", 0) == 0)
      spec.watchdog_mult = parse_u64_flag("watchdog-mult", arg.substr(16));
    else if (arg == "--no-fastmode") spec.fastmode = false;
    else if (arg.rfind("--stop-ci=", 0) == 0) {
      try {
        const campaign::StopPolicy p = campaign::parse_stop_ci(arg.substr(10));
        spec.stop_eps = p.eps;
        spec.stop_conf = p.confidence;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--status") do_status = true;
    else if (arg.rfind("--status=", 0) == 0) {
      do_status = true;
      status_id = parse_u64_flag("status", arg.substr(9));
    } else if (arg.rfind("--cancel=", 0) == 0)
      cancel_id = parse_u64_flag("cancel", arg.substr(9));
    else if (arg.rfind("--watch=", 0) == 0)
      watch_id = parse_u64_flag("watch", arg.substr(8));
    else if (arg == "--wait") do_wait = true;
    else if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    else usage(argv[0]);
  }
  if (port == 0) usage(argv[0]);
  const bool do_submit = !spec.app_name.empty();
  if (!do_submit && !do_status && cancel_id == 0 && watch_id == 0) usage(argv[0]);

  try {
    service::Client client = service::Client::connect(host, port);
    if (do_status) {
      for (const service::CampaignStatus& s : client.status(status_id))
        print_status(s);
      return 0;
    }
    if (cancel_id != 0) {
      client.cancel(cancel_id);
      std::fprintf(stderr, "campaign %llu cancelled\n",
                   (unsigned long long)cancel_id);
      return 0;
    }
    if (watch_id != 0) return watch(client, watch_id, out_path);
    const std::uint64_t id = client.submit(spec);
    std::fprintf(stderr, "submitted campaign %llu (%s, %llu experiments)\n",
                 (unsigned long long)id, spec.app_name.c_str(),
                 (unsigned long long)spec.experiments);
    std::printf("%llu\n", (unsigned long long)id);
    if (do_wait) return watch(client, id, out_path);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gemfi_submit: %s\n", e.what());
    return 2;
  }
}
