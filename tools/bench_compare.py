#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts against checked-in baselines.

The perfsmoke CI job runs the perfsmoke-labeled benches, which each emit a
machine-readable document:

    {"bench": "BENCH_<name>", "records": [
        {"metric": "...", "value": 1.25, "unit": "x", "config": "pi"}, ...]}

This script diffs those documents against ``bench/baselines/*.json`` and
fails (exit 1) when a gated metric regressed by more than ``--threshold``
(default 20%). It always prints a full Markdown delta table (suitable for
``$GITHUB_STEP_SUMMARY``), covering gated and informational rows alike.

Direction is inferred from the record's unit:

  * ``s``/``ms``/``us``/``ns`` (durations): lower is better. Raw wall times
    vary wildly between CI hosts, so duration rows are *informational* by
    default and only gated when ``--gate-units`` includes their unit.
  * ``x`` (dimensionless ratios: speedups, effective parallelism,
    experiments-saved factors): higher is better. Ratios divide out the
    host's absolute speed, so they are the default gated unit.
  * anything else (counts, fractions, bytes): informational.

A metric present in the current run but absent from the baseline is reported
as NEW and never fails the build (add it with ``--update``). A baselined
metric missing from the current run fails: a silently vanished benchmark is
itself a regression.

Usage:
    bench_compare.py --baseline bench/baselines --current build/bench
    bench_compare.py --baseline bench/baselines --current build/bench --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

LOWER_IS_BETTER_UNITS = {"s", "ms", "us", "ns"}
HIGHER_IS_BETTER_UNITS = {"x"}


def load_documents(directory: Path) -> dict[str, dict[tuple[str, str], dict]]:
    """Map bench name -> {(metric, config) -> record} for every BENCH_*.json."""
    out: dict[str, dict[tuple[str, str], dict]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"bench_compare: unreadable {path}: {exc}")
        bench = doc.get("bench", path.stem)
        records = out.setdefault(bench, {})
        for rec in doc.get("records", []):
            key = (str(rec.get("metric", "")), str(rec.get("config", "")))
            records[key] = rec
    return out


def direction(unit: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    if unit in HIGHER_IS_BETTER_UNITS:
        return 1
    if unit in LOWER_IS_BETTER_UNITS:
        return -1
    return 0


def regression_fraction(base: float, cur: float, sign: int) -> float:
    """How much worse the current value is, as a fraction of the baseline.

    Positive = regressed, negative = improved, 0 for degenerate baselines.
    """
    if base == 0:
        return 0.0
    if sign > 0:  # higher is better: a drop is a regression
        return (base - cur) / abs(base)
    return (cur - base) / abs(base)  # lower is better: a rise is a regression


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=Path, required=True,
                    help="directory of checked-in BENCH_*.json baselines")
    ap.add_argument("--current", type=Path, required=True,
                    help="directory of freshly produced BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fail when a gated metric regresses more than this "
                         "fraction (default 0.20)")
    ap.add_argument("--gate-units", default="x",
                    help="comma-separated units that fail the build on "
                         "regression (default: x)")
    ap.add_argument("--update", action="store_true",
                    help="copy current artifacts over the baselines instead "
                         "of comparing")
    args = ap.parse_args()

    if args.update:
        args.baseline.mkdir(parents=True, exist_ok=True)
        copied = 0
        for path in sorted(args.current.glob("BENCH_*.json")):
            (args.baseline / path.name).write_text(path.read_text())
            copied += 1
        print(f"bench_compare: refreshed {copied} baseline file(s) in "
              f"{args.baseline}")
        return 0

    gated_units = {u.strip() for u in args.gate_units.split(",") if u.strip()}
    baselines = load_documents(args.baseline)
    currents = load_documents(args.current)

    rows: list[tuple[str, str, str, str, str, str, str]] = []
    failures: list[str] = []
    new_metrics = 0

    for bench, base_records in sorted(baselines.items()):
        cur_records = currents.get(bench, {})
        for (metric, config), base_rec in sorted(base_records.items()):
            unit = str(base_rec.get("unit", ""))
            base_val = float(base_rec.get("value", 0.0))
            cur_rec = cur_records.get((metric, config))
            gate = unit in gated_units and direction(unit) != 0
            if cur_rec is None:
                status = "MISSING"
                if gate:
                    failures.append(f"{bench}/{metric}[{config}]: metric "
                                    f"disappeared from the current run")
                rows.append((bench, metric, config, f"{base_val:.4g}", "—",
                             "—", status))
                continue
            cur_val = float(cur_rec.get("value", 0.0))
            reg = regression_fraction(base_val, cur_val, direction(unit))
            delta = f"{reg * +100 if direction(unit) < 0 else -reg * 100:+.1f}%"
            if not gate:
                status = "info"
            elif reg > args.threshold:
                status = f"FAIL (> {args.threshold:.0%})"
                failures.append(
                    f"{bench}/{metric}[{config}]: {base_val:.4g} -> "
                    f"{cur_val:.4g} {unit} ({reg:+.1%} worse)")
            else:
                status = "ok"
            rows.append((bench, metric, config, f"{base_val:.4g}",
                         f"{cur_val:.4g}", delta, status))

    for bench, cur_records in sorted(currents.items()):
        base_records = baselines.get(bench, {})
        for (metric, config), cur_rec in sorted(cur_records.items()):
            if (metric, config) in base_records:
                continue
            new_metrics += 1
            rows.append((bench, metric, config, "—",
                         f"{float(cur_rec.get('value', 0.0)):.4g}", "—", "NEW"))

    print("## Bench comparison\n")
    print(f"threshold {args.threshold:.0%}, gated units: "
          f"{', '.join(sorted(gated_units)) or '(none)'}\n")
    print("| bench | metric | config | baseline | current | delta | status |")
    print("|---|---|---|---|---|---|---|")
    for row in rows:
        print("| " + " | ".join(row) + " |")
    print()
    if new_metrics:
        print(f"{new_metrics} new metric(s) without a baseline — refresh with "
              f"`tools/bench_compare.py --update` when intentional.\n")

    if failures:
        print(f"{len(failures)} regression(s) beyond threshold:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("no gated regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
