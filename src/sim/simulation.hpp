// Simulation: the full simulated system — memory hierarchy, one CPU (any of
// the three models, switchable mid-run), the lightweight kernel, and the
// GemFI fault-injection layer.
//
// The run loop implements the paper's methodology end to end:
//   * pseudo-instructions dispatch here (fi_activate_inst toggles FI for the
//     running thread keyed by its PCB; fi_read_init_all invokes the
//     checkpoint handler);
//   * context switches drain the pipeline, swap contexts and notify the
//     FaultManager of the PCB change;
//   * register/PC faults are applied at tick boundaries; a corrupted PC
//     flushes and redirects the pipeline;
//   * with switch_to_atomic_after_fault set, the simulation swaps the
//     detailed (pipelined) model for the atomic one once every transient
//     fault has committed or squashed — the campaign speed trick of
//     Sec. IV-B-1;
//   * any guest trap ends the run as a crash; a watchdog bounds runaway
//     (e.g. fault-induced infinite-loop) executions.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "assembler/program.hpp"
#include "cpu/atomic_cpu.hpp"
#include "cpu/pipelined_cpu.hpp"
#include "fi/fault_manager.hpp"
#include "fi/syscall_fault.hpp"
#include "os/scheduler.hpp"
#include "os/syscall.hpp"

namespace gemfi::sim {

enum class CpuKind : std::uint8_t { AtomicSimple, TimingSimple, Pipelined };

const char* cpu_kind_name(CpuKind k) noexcept;

struct SimConfig {
  CpuKind cpu = CpuKind::Pipelined;
  mem::MemSysConfig mem;
  cpu::PredictorConfig predictor;
  std::uint64_t quantum_insts = 50000;   // preemption quantum
  std::uint64_t stack_bytes = 256 * 1024;
  bool fi_enabled = true;                // false = "unmodified gem5" baseline
  bool switch_to_atomic_after_fault = false;
  bool predecode = true;                 // page-granular predecoded-inst cache
  // Timing-model fast lane: inline MRU cache hits + the fetch line buffer,
  // stall-cycle warping, and the batched TimingSimple dispatch loop. Purely
  // a host-side optimization — simulated ticks, outcomes and statistics are
  // bit-identical either way (the lockstep suite proves it); false is the
  // `--no-fastpath` A/B baseline.
  bool fastpath = true;
  // Golden-path fast mode: the superblock (threaded-code) tier above the
  // atomic interpreter. Engages only while no FI machinery could observe a
  // per-instruction hook (no fault plan armed in-window, no pending
  // propagation tracking) and disengages at every trap, syscall, watchdog
  // deadline and scheduling boundary. Purely a host-side optimization —
  // digests, ticks, statistics and fi_log are bit-identical either way
  // (the fastmode lockstep suite proves it); false is the `--no-fastmode`
  // A/B baseline.
  bool fastmode = true;
  // OS syscall surface: sys_alloc heap carved above the apps' boot arena,
  // per-file capacity of the in-memory FS (ENOSPC bound) and per-channel
  // byte budget of the message channels (EAGAIN bound).
  std::uint64_t sys_heap_bytes = 256 * 1024;
  std::uint64_t sys_file_capacity = 16 * 1024;
  std::uint64_t sys_chan_capacity = 4096;
};

enum class ExitReason : std::uint8_t {
  AllThreadsExited,
  Crashed,
  Watchdog,
  TickLimit,  // run(max_ticks) budget exhausted without watchdog semantics
  Deadline,   // host wall-clock deadline expired (run()'s second argument)
};

const char* exit_reason_name(ExitReason r) noexcept;

struct RunResult {
  ExitReason reason = ExitReason::AllThreadsExited;
  cpu::TrapInfo trap;          // valid when reason == Crashed
  std::uint64_t crash_pc = 0;
  std::uint64_t ticks = 0;     // total simulated ticks so far
  std::uint64_t committed = 0; // total committed instructions so far

  [[nodiscard]] bool crashed() const noexcept { return reason == ExitReason::Crashed; }
};

class Simulation {
 public:
  Simulation(SimConfig cfg, const assembler::Program& program);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Create a guest thread at `entry` with up to 6 integer arguments in
  /// a0..a5. Threads get disjoint stacks carved from the top of memory.
  std::uint64_t spawn_thread(std::uint64_t entry, std::initializer_list<std::uint64_t> args = {});

  /// Convenience: spawn a thread at the program's entry symbol.
  std::uint64_t spawn_main_thread(std::initializer_list<std::uint64_t> args = {});

  /// Run until all threads exit, a crash, or the tick budget is exhausted.
  /// `watchdog_ticks` == 0 means "no limit". `wall_deadline_seconds` > 0 adds
  /// a host wall-clock deadline on top of the tick watchdog (checked every
  /// few thousand ticks): a run that outlives it exits with
  /// ExitReason::Deadline — the backstop for experiments whose simulated-time
  /// watchdog is generous but whose host is wedged or the run livelocked.
  RunResult run(std::uint64_t watchdog_ticks = 0, double wall_deadline_seconds = 0.0);

  /// Invoked when a guest executes fi_read_init_all() (checkpoint request).
  using CheckpointHandler = std::function<void(Simulation&)>;
  void set_checkpoint_handler(CheckpointHandler handler) {
    checkpoint_handler_ = std::move(handler);
  }

  /// Invoked once per architectural commit with the commit event and the
  /// post-writeback architectural state. The observation point is identical
  /// across all three CPU models (squashed wrong-path work never reaches it),
  /// which is what the lockstep differential tests compare against.
  using CommitObserver = std::function<void(const cpu::CommitEvent&, const cpu::ArchState&)>;
  void set_commit_observer(CommitObserver obs) { commit_observer_ = std::move(obs); }

  // --- component access ---
  [[nodiscard]] fi::FaultManager& fault_manager() noexcept { return fm_; }
  [[nodiscard]] const fi::FaultManager& fault_manager() const noexcept { return fm_; }
  [[nodiscard]] os::SyscallLayer& syscalls() noexcept { return sys_; }
  [[nodiscard]] const os::SyscallLayer& syscalls() const noexcept { return sys_; }
  [[nodiscard]] fi::SyscallFaultInjector& syscall_injector() noexcept { return sysfi_; }
  [[nodiscard]] const fi::SyscallFaultInjector& syscall_injector() const noexcept {
    return sysfi_;
  }
  [[nodiscard]] os::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] const os::Scheduler& scheduler() const noexcept { return sched_; }
  [[nodiscard]] mem::MemSystem& memsys() noexcept { return ms_; }
  [[nodiscard]] const mem::MemSystem& memsys() const noexcept { return ms_; }
  [[nodiscard]] cpu::CpuModel& cpu() noexcept { return *cpu_; }
  [[nodiscard]] const cpu::CpuModel& cpu() const noexcept { return *cpu_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const assembler::Program& program() const noexcept { return program_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return tick_; }
  [[nodiscard]] CpuKind active_cpu_kind() const noexcept { return active_cpu_; }

  /// Output of thread `tid` (bytes emitted through the print pseudo-ops).
  [[nodiscard]] const std::string& output(std::uint64_t tid = 0) const {
    return sched_.thread(tid).output;
  }

  /// Total committed instructions across all threads.
  [[nodiscard]] std::uint64_t total_committed() const noexcept;

  /// gem5-style statistics dump: simulation, CPU, branch-predictor, cache
  /// and per-thread counters. The paper's Sec. IV-A validation compares
  /// exactly this report between GemFI and the unmodified simulator ("the
  /// statistical results provided by the simulator ... were identical").
  [[nodiscard]] std::string stats_report() const;

  // --- checkpoint plumbing (used by chkpt::Checkpoint) ---
  /// Serialize full machine state. Requires a quiesced pipeline; run() only
  /// invokes the checkpoint handler at such a boundary.
  void serialize(util::ByteWriter& w) const;
  /// Restore machine state. Fault-injection state is deliberately NOT part
  /// of a checkpoint: per the paper, a restore re-arms the FaultManager so
  /// one checkpoint can seed many differently-configured experiments.
  void deserialize(util::ByteReader& r);

  /// Machine state *minus* the physical-memory image: CPU kind, cache/timing
  /// state, CPU, scheduler and simulation counters. The v2 checkpoint format
  /// stores this as its own CRC-guarded section beside the page-granular
  /// memory section; restore semantics match deserialize() (FI state is
  /// re-armed). Callers restore memory separately.
  void serialize_machine(util::ByteWriter& w) const;
  void deserialize_machine(util::ByteReader& r);

 private:
  void serialize_tail(util::ByteWriter& w) const;
  void deserialize_tail(util::ByteReader& r);
  void dispatch_pseudo(const cpu::CommitEvent& ev);
  void dispatch_syscall(os::Thread& t);
  void make_cpu(CpuKind kind);
  void ensure_thread_scheduled();
  void perform_context_switch();
  void service_wakeups();

  SimConfig cfg_;
  assembler::Program program_;
  mem::MemSystem ms_;
  std::unique_ptr<cpu::CpuModel> cpu_;
  CpuKind active_cpu_ = CpuKind::Pipelined;
  os::Scheduler sched_;
  fi::FaultManager fm_;
  os::SyscallLayer sys_;
  fi::SyscallFaultInjector sysfi_;
  CheckpointHandler checkpoint_handler_;
  CommitObserver commit_observer_;
  std::uint64_t tick_ = 0;
  std::uint64_t warped_ticks_ = 0;  // ticks advanced by stall warps (fast lane)
  std::uint64_t idle_ticks_ = 0;    // ticks skipped while every thread slept
  std::uint64_t next_stack_top_ = 0;
  bool drain_for_switch_ = false;
  bool mode_switch_done_ = false;
};

}  // namespace gemfi::sim
