#include "sim/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "util/log.hpp"

namespace gemfi::sim {

const char* cpu_kind_name(CpuKind k) noexcept {
  switch (k) {
    case CpuKind::AtomicSimple: return "atomic-simple";
    case CpuKind::TimingSimple: return "timing-simple";
    case CpuKind::Pipelined: return "pipelined";
  }
  return "?";
}

const char* exit_reason_name(ExitReason r) noexcept {
  switch (r) {
    case ExitReason::AllThreadsExited: return "all-threads-exited";
    case ExitReason::Crashed: return "crashed";
    case ExitReason::Watchdog: return "watchdog";
    case ExitReason::TickLimit: return "tick-limit";
    case ExitReason::Deadline: return "deadline";
  }
  return "?";
}

Simulation::Simulation(SimConfig cfg, const assembler::Program& program)
    : cfg_(cfg), program_(program), ms_(cfg.mem), sched_(cfg.quantum_insts) {
  program_.load_into(ms_);
  ms_.set_predecode_enabled(cfg_.predecode);
  ms_.set_fastpath_enabled(cfg_.fastpath);
  next_stack_top_ = ms_.phys().size() & ~15ull;
  // The sys_alloc heap sits above the apps' 256 KiB boot arena; clamp it so
  // handed-out addresses can never reach the first thread's stack.
  os::SyscallLayerConfig scfg;
  scfg.heap_base = program_.heap_base() + 256 * 1024;
  const std::uint64_t heap_lim =
      ms_.phys().size() > cfg_.stack_bytes ? ms_.phys().size() - cfg_.stack_bytes : 0;
  scfg.heap_bytes = scfg.heap_base < heap_lim
                        ? std::min(cfg_.sys_heap_bytes, heap_lim - scfg.heap_base)
                        : 0;
  scfg.file_capacity = cfg_.sys_file_capacity;
  scfg.chan_capacity = cfg_.sys_chan_capacity;
  sys_.configure(scfg);
  make_cpu(cfg_.cpu);
}

void Simulation::make_cpu(CpuKind kind) {
  cpu::ArchState saved;
  const bool had = cpu_ != nullptr;
  if (had) saved = cpu_->arch();
  switch (kind) {
    case CpuKind::AtomicSimple:
      cpu_ = std::make_unique<cpu::SimpleCpu>(ms_, /*timing=*/false);
      break;
    case CpuKind::TimingSimple:
      cpu_ = std::make_unique<cpu::SimpleCpu>(ms_, /*timing=*/true);
      break;
    case CpuKind::Pipelined:
      cpu_ = std::make_unique<cpu::PipelinedCpu>(ms_, cfg_.predictor);
      break;
  }
  active_cpu_ = kind;
  if (cfg_.fi_enabled) cpu_->set_hooks(&fm_);
  if (had) {
    cpu_->arch() = saved;
    cpu_->flush_and_redirect(saved.pc());
  }
}

std::uint64_t Simulation::spawn_thread(std::uint64_t entry,
                                       std::initializer_list<std::uint64_t> args) {
  if (args.size() > 6) throw std::invalid_argument("at most 6 thread arguments");
  cpu::ArchState ctx;
  ctx.set_pc(entry);
  ctx.set_ireg(isa::kRegGP, program_.data_base());
  if (next_stack_top_ < cfg_.stack_bytes + program_.heap_base())
    throw std::runtime_error("out of stack space for new thread");
  ctx.set_ireg(isa::kRegSP, next_stack_top_);
  next_stack_top_ -= cfg_.stack_bytes;
  unsigned argreg = isa::kRegA0;
  for (const std::uint64_t a : args) ctx.set_ireg(argreg++, a);
  return sched_.add_thread(ctx);
}

std::uint64_t Simulation::spawn_main_thread(std::initializer_list<std::uint64_t> args) {
  return spawn_thread(program_.entry, args);
}

std::uint64_t Simulation::total_committed() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t tid = 0; tid < sched_.thread_count(); ++tid)
    total += sched_.thread(tid).committed;
  return total;
}

void Simulation::ensure_thread_scheduled() {
  // Only switch when somebody is runnable; if every live thread sleeps, the
  // run loop's idle path advances the clock to the next wake instead.
  if (!sched_.has_current() && sched_.runnable_count() != 0) perform_context_switch();
}

void Simulation::perform_context_switch() {
  const os::ContextSwitchEvent ev = sched_.switch_to_next(*cpu_);
  if (cfg_.fi_enabled) fm_.on_context_switch(ev.new_pcb);
  cpu_->set_fetch_enabled(true);
  GEMFI_DEBUG("sim", "context switch -> tid=%" PRIu64 " pcb=0x%" PRIx64, ev.new_tid,
              ev.new_pcb);
}

void Simulation::dispatch_pseudo(const cpu::CommitEvent& ev) {
  using isa::PseudoFunc;
  if (ev.d.klass == isa::InstClass::Pal) return;  // CALLSYS: reserved, no-op

  os::Thread& t = sched_.current();
  const std::uint64_t a0 = cpu_->arch().ireg(isa::kRegA0);
  switch (static_cast<PseudoFunc>(ev.d.palcode)) {
    case PseudoFunc::FI_ACTIVATE:
      if (cfg_.fi_enabled) fm_.on_fi_activate(t.pcb_addr, int(std::int64_t(a0)));
      break;
    case PseudoFunc::FI_READ_INIT:
      if (checkpoint_handler_) checkpoint_handler_(*this);
      break;
    case PseudoFunc::EXIT:
      sched_.finish_current(int(std::int64_t(a0)));
      break;
    case PseudoFunc::PRINT_CHAR:
      t.output.push_back(char(a0 & 0xff));
      break;
    case PseudoFunc::PRINT_INT: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64, std::int64_t(a0));
      t.output += buf;
      break;
    }
    case PseudoFunc::PRINT_FP: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", cpu_->arch().freg(isa::kRegA0));
      t.output += buf;
      break;
    }
    case PseudoFunc::GET_INSTRET:
      cpu_->arch().set_ireg(isa::kRegV0, t.committed);
      break;
    case PseudoFunc::YIELD:
      sched_.yield();
      break;
    case PseudoFunc::SYSCALL:
      dispatch_syscall(t);
      break;
  }
}

void Simulation::dispatch_syscall(os::Thread& t) {
  const std::uint64_t raw = cpu_->arch().ireg(isa::kRegV0);
  const os::Sysno s =
      raw < os::kNumSysnos ? static_cast<os::Sysno>(raw) : os::Sysno::Invalid;
  const std::uint64_t args[3] = {cpu_->arch().ireg(isa::kRegA0),
                                 cpu_->arch().ireg(isa::kRegA0 + 1),
                                 cpu_->arch().ireg(isa::kRegA0 + 2)};
  // The call index advances exactly once per logical call, here at first
  // dispatch, and the injection is resolved against it in the same step —
  // a preemption or latency sleep mid-call can never re-roll the decision
  // or double-apply a partial write on resume.
  const std::uint64_t idx = sys_.next_call_index(t.tid, s);
  os::SyscallInjection inj;
  if (!sysfi_.empty()) inj = sysfi_.decide(s, idx, t.tid);
  if (inj.latency != 0) {
    // Park the call; it completes (with these exact decisions) when the
    // thread wakes, writing the result into the saved context's v0. The
    // commit stream is identical to the zero-latency run — only ticks move.
    // The SYSCALL instruction's own commit is accounted here because the
    // run loop's post-dispatch on_commit() is skipped for a parked thread.
    sched_.on_commit();
    sys_.park(t.tid, s, args, idx, inj);
    sched_.sleep_current(tick_ + inj.latency);
    sched_.deschedule_current(*cpu_);
    return;
  }
  const std::int64_t res = sys_.execute(t.tid, s, args, idx, inj, ms_.phys());
  cpu_->arch().set_ireg(isa::kRegV0, std::uint64_t(res));
}

void Simulation::service_wakeups() {
  // Wake in tid order and complete each parked call with its stored
  // decisions, depositing the result in the sleeper's saved v0.
  std::vector<std::uint64_t> woken;
  sched_.wake_sleepers(tick_, woken);
  for (const std::uint64_t tid : woken) {
    if (!sys_.has_pending(tid)) continue;
    const std::int64_t res = sys_.complete_pending(tid, ms_.phys());
    sched_.thread(tid).ctx.set_ireg(isa::kRegV0, std::uint64_t(res));
  }
}

RunResult Simulation::run(std::uint64_t watchdog_ticks, double wall_deadline_seconds) {
  RunResult result;
  const std::uint64_t deadline = watchdog_ticks == 0 ? ~0ull : tick_ + watchdog_ticks;
  using WallClock = std::chrono::steady_clock;
  const bool wall_limited = wall_deadline_seconds > 0.0;
  const WallClock::time_point wall_deadline =
      wall_limited ? WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                                            std::chrono::duration<double>(wall_deadline_seconds))
                   : WallClock::time_point{};

  ensure_thread_scheduled();

  // Batched dispatch: with no FI hooks and no commit observer, the simple
  // models run instructions in batches — no per-tick virtual call,
  // CycleResult or scheduler bookkeeping. Atomic batches need the predecode
  // cache (PC-indexed dispatch); TimingSimple batches additionally fold each
  // instruction's cache-latency stall into one accumulation and belong to
  // the fastpath gate. Batch boundaries land exactly where the per-tick loop
  // would act (quantum expiry, watchdog budget, wall-clock sampling points,
  // traps, pseudo-ops), so the two loops are bit-identical in every
  // architectural and statistical observable; the lockstep suite checks it.
  // With fi_enabled the atomic model may additionally batch through the
  // superblock tier (cfg_.fastmode) whenever the FaultManager is provably
  // quiescent — no armed fault could fire and no propagation tracking is
  // pending — with the fetch-window bookkeeping applied in bulk after the
  // batch. That gate changes as faults arm, fire and resolve, and the active
  // model itself can switch mid-run, so atomic engagement is re-decided
  // every iteration; the timing gate's inputs are all run-constant.
  const bool fast_timing = cfg_.fastpath && !cfg_.fi_enabled && !commit_observer_ &&
                           active_cpu_ == CpuKind::TimingSimple;

  // Warp attempts cost a virtual stall_cycles() call per tick, which is pure
  // overhead on commit-dense code that never stalls. A stall window can only
  // be entered through a commitless cycle, so the attempt is skipped right
  // after a committing cycle (and right after a warp, whose next tick is by
  // construction the stall-ending event). At worst this delays a warp by one
  // tick; it never changes what warp() does, so tick-exactness is unaffected.
  bool try_warp = true;

  while (!sched_.all_finished()) {
    if (tick_ >= deadline) {
      result.reason = ExitReason::Watchdog;
      break;
    }
    // The wall clock is sampled every 4096 ticks: ~0.5 ms of simulation on
    // this host, cheap enough to never show up in Fig. 7's overhead.
    if (wall_limited && (tick_ & 0xfffull) == 0 && WallClock::now() >= wall_deadline) {
      result.reason = ExitReason::Deadline;
      break;
    }

    // Latency-delayed syscalls: wake due sleepers (completing their parked
    // calls) before any budget below is computed, then — if the CPU is empty
    // because its thread parked itself — reschedule, or idle the clock
    // forward to the earliest wake when every live thread sleeps. One branch
    // on the hot path when nobody sleeps.
    if (sched_.has_sleepers() || !sched_.has_current()) {
      service_wakeups();
      if (!sched_.has_current()) {
        if (sched_.runnable_count() != 0) {
          perform_context_switch();
        } else {
          std::uint64_t target = std::min(sched_.next_wake_tick(), deadline);
          // Honor the wall-clock sampling cadence across the idle gap.
          if (wall_limited) target = std::min<std::uint64_t>(target, (tick_ | 0xfffull) + 1);
          idle_ticks_ += target - tick_;
          tick_ = target;
          continue;  // deadline/wall checks re-run, then the wake services
        }
      }
    }

    const bool fast_atomic =
        cfg_.predecode && !commit_observer_ && active_cpu_ == CpuKind::AtomicSimple &&
        (!cfg_.fi_enabled || (cfg_.fastmode && fm_.fastmode_quiescent()));
    // fast_atomic under fi_enabled implies fastmode, so the hook-refusing
    // plain batch (the `--no-fastmode` baseline) only runs with FI off.
    const bool use_trace = fast_atomic && cfg_.fastmode;
    if ((fast_atomic || fast_timing) && !drain_for_switch_) {
      std::uint64_t n = deadline - tick_;
      const std::uint64_t pre = sched_.commits_before_preempt();
      // Atomic retires one instruction per tick, so the commit bound is a
      // tick bound too; the timing batch takes it separately.
      if (fast_atomic && pre < n) n = pre;
      if (sched_.has_sleepers()) {
        // End the batch exactly at the earliest wake so the sleeper resumes
        // on the same tick as in the per-tick loop (>0: due wakes serviced).
        const std::uint64_t room = sched_.ticks_before_tick_event(tick_);
        if (room < n) n = room;
      }
      if (wall_limited) {
        // Stop on the next 4096-tick boundary so the wall clock is sampled
        // at the same cadence as the per-tick loop.
        const std::uint64_t chunk = 0x1000 - (tick_ & 0xfffull);
        if (chunk < n) n = chunk;
      } else if (n > 65536) {
        n = 65536;  // keep the outer loop conditions fresh
      }
      auto& scpu = static_cast<cpu::SimpleCpu&>(*cpu_);
      cpu::CommitEvent ev;
      const cpu::BatchResult br =
          fast_atomic ? (use_trace ? scpu.run_trace_batch(n, ev) : scpu.run_atomic_batch(n, ev))
                      : scpu.run_timing_batch(n, pre, ev);
      tick_ += br.ticks;
      if (cfg_.fi_enabled && br.ticks != 0) {
        // Bulk FI bookkeeping for the hook-free batch: every executed tick
        // was one fetch attempt, but a faulting fetch never reaches
        // on_fetch's counter in the per-tick loop, so it is not counted
        // here either. Resync now_ before any dispatch below can consult it
        // (fi_activate records its activation tick from it).
        std::uint64_t fetches = br.ticks;
        if (br.stopped && ev.trap.kind == cpu::TrapKind::FetchFault) --fetches;
        fm_.add_window_fetches(fetches);
        fm_.set_now(tick_);
      }
      if (br.ticks != 0 || br.stopped) {
        bool need_switch = false;
        if (br.stopped && ev.trap.pending()) {
          // The trapped instruction never committed; account the ones
          // before it and handle the trap as the per-tick loop does.
          sched_.on_commits(br.commits);
          if (ev.trap.kind == cpu::TrapKind::Halt) {
            sched_.finish_current(0);
            cpu_->flush_and_redirect(cpu_->arch().pc());
            if (sched_.runnable_count() != 0) perform_context_switch();
            else if (!sched_.all_finished()) sched_.retire_current();
            continue;
          }
          result.reason = ExitReason::Crashed;
          result.trap = ev.trap;
          result.crash_pc = ev.pc;
          break;
        }
        if (br.stopped) {
          // Pseudo-op: dispatch sees the committed counts of everything
          // before it (GET_INSTRET), its own commit is accounted after —
          // the same order as the per-tick loop.
          need_switch = sched_.on_commits(br.commits - 1);
          cpu_->flush_and_redirect(cpu_->arch().pc());
          dispatch_pseudo(ev);
          // A latency-injected syscall parked the thread (its commit was
          // accounted inside the dispatch); the loop top reschedules.
          if (!sched_.has_current()) continue;
          if (sched_.current().finished) {
            if (sched_.runnable_count() != 0) perform_context_switch();
            else if (!sched_.all_finished()) sched_.retire_current();
            continue;
          }
          if (sched_.on_commit()) need_switch = true;
        } else {
          need_switch = sched_.on_commits(br.commits);
        }
        if (need_switch) {
          drain_for_switch_ = true;
          cpu_->set_fetch_enabled(false);
        }
        if (drain_for_switch_ && cpu_->quiesced()) {
          drain_for_switch_ = false;
          perform_context_switch();
        }
        continue;
      }
      // Batch could not engage (e.g. fetch gated); fall through to cycle().
    }

    // Stall-cycle warping: when the CPU guarantees its next `stall` cycles
    // are pure stall-counter decrements, advance the clock in one step
    // instead of that many no-op cycle() calls — unless an external event
    // lands in the window: the watchdog deadline, a wall-clock sampling
    // boundary, a due register/PC fault (sticky tick-relative behaviors
    // re-apply every tick, so their due tick caps the window), or a
    // scheduler tick event (none today — preemption is commit-indexed).
    // Works under FI and commit observers: neither can fire on a commitless
    // pure-stall tick.
    if (cfg_.fastpath && try_warp) {
      if (const std::uint64_t stall = cpu_->stall_cycles(); stall != 0) {
        std::uint64_t k = std::min(stall, deadline - tick_);
        if (wall_limited) {
          const std::uint64_t chunk = 0x1000 - (tick_ & 0xfffull);
          if (chunk < k) k = chunk;
        }
        if (cfg_.fi_enabled && fm_.has_direct_faults()) {
          // Warped ticks skip set_now + apply_direct_faults; stop short of
          // the first tick at which an application could fire.
          const std::uint64_t room = fm_.next_direct_fault_tick(tick_ + 1) - (tick_ + 1);
          if (room < k) k = room;
        }
        if (const std::uint64_t room = sched_.ticks_before_tick_event(tick_); room < k)
          k = room;
        if (k != 0) {
          cpu_->warp(k);
          tick_ += k;
          warped_ticks_ += k;
          // A full warp lands on the stall-ending event; a clamped one
          // leaves more warpable window.
          try_warp = k != stall;
          continue;
        }
      }
    }
    ++tick_;

    if (cfg_.fi_enabled) {
      fm_.set_now(tick_);
      // Direct faults mutate committed state between instructions; flush so
      // in-flight instructions re-execute against the corrupted state (and
      // so a corrupted PC redirects fetch).
      if (fm_.has_direct_faults() && fm_.apply_direct_faults(cpu_->arch()))
        cpu_->flush_and_redirect(cpu_->arch().pc());
    }

    const cpu::CycleResult cr = cpu_->cycle();
    try_warp = !cr.commit;
    bool need_switch = false;

    if (cr.commit) {
      const cpu::CommitEvent& ev = *cr.commit;
      if (ev.trap.pending()) {
        if (ev.trap.kind == cpu::TrapKind::Halt) {
          sched_.finish_current(0);
          cpu_->flush_and_redirect(cpu_->arch().pc());
          if (sched_.runnable_count() != 0) perform_context_switch();
          else if (!sched_.all_finished()) sched_.retire_current();
          continue;
        }
        result.reason = ExitReason::Crashed;
        result.trap = ev.trap;
        result.crash_pc = ev.pc;
        break;
      }
      if (commit_observer_) commit_observer_(ev, cpu_->arch());
      if (ev.is_pseudo) {
        // Pseudo-ops are serialized in ID; discard any speculative fetches
        // beyond them so FI boundaries and checkpoints see a quiesced
        // machine, then dispatch (fi_read_init_all may capture a checkpoint).
        cpu_->flush_and_redirect(cpu_->arch().pc());
        dispatch_pseudo(ev);
        // A latency-injected syscall parked the thread (its commit was
        // accounted inside the dispatch); the loop top reschedules.
        if (!sched_.has_current()) continue;
        if (sched_.current().finished) {
          if (sched_.runnable_count() != 0) perform_context_switch();
          else if (!sched_.all_finished()) sched_.retire_current();
          continue;
        }
      }
      if (sched_.on_commit()) need_switch = true;
    }

    if (need_switch) {
      drain_for_switch_ = true;
      cpu_->set_fetch_enabled(false);
    }
    if (drain_for_switch_ && cpu_->quiesced()) {
      drain_for_switch_ = false;
      perform_context_switch();
    }

    // Detailed -> atomic model switch once all transient faults resolved.
    if (!mode_switch_done_ && cfg_.switch_to_atomic_after_fault &&
        active_cpu_ == CpuKind::Pipelined && cfg_.fi_enabled && !fm_.states().empty() &&
        fm_.safe_to_switch_cpu()) {
      cpu_->set_fetch_enabled(false);
      if (cpu_->quiesced()) {
        make_cpu(CpuKind::AtomicSimple);
        mode_switch_done_ = true;
        GEMFI_DEBUG("sim", "switched to atomic model at tick %" PRIu64, tick_);
      }
    }
  }

  if (sched_.all_finished()) result.reason = ExitReason::AllThreadsExited;
  result.ticks = tick_;
  result.committed = total_committed();
  return result;
}

std::string Simulation::stats_report() const {
  std::string out;
  char line[160];
  const auto put = [&](const char* name, std::uint64_t v) {
    std::snprintf(line, sizeof line, "%-40s %20" PRIu64 "\n", name, v);
    out += line;
  };
  const auto putf = [&](const char* name, double v) {
    std::snprintf(line, sizeof line, "%-40s %20.6f\n", name, v);
    out += line;
  };

  put("sim.ticks", tick_);
  put("sim.warped_ticks", warped_ticks_);
  put("sim.idle_ticks", idle_ticks_);
  put("sim.insts", total_committed());
  std::snprintf(line, sizeof line, "%-40s %20s\n", "cpu.model",
                cpu_kind_name(active_cpu_));
  out += line;
  const cpu::CpuStats& cs = cpu_->stats();
  put("cpu.ticks", cs.ticks);
  put("cpu.committed", cs.committed);
  put("cpu.fetched", cs.fetched);
  put("cpu.squashed", cs.squashed);
  putf("cpu.ipc", cs.ticks == 0 ? 0.0 : double(cs.committed) / double(cs.ticks));
  if (const auto* pipe = dynamic_cast<const cpu::PipelinedCpu*>(cpu_.get())) {
    const cpu::PredictorStats& ps = pipe->predictor().stats();
    put("cpu.branch.lookups", ps.lookups);
    put("cpu.branch.mispredicts", ps.mispredicts);
    putf("cpu.branch.mispredict_rate",
         ps.lookups == 0 ? 0.0 : double(ps.mispredicts) / double(ps.lookups));
  }
  const auto put_cache = [&](const char* name, const mem::CacheStats& st) {
    std::string p = std::string("mem.") + name;
    put((p + ".hits").c_str(), st.hits);
    put((p + ".misses").c_str(), st.misses);
    put((p + ".writebacks").c_str(), st.writebacks);
    putf((p + ".miss_rate").c_str(), st.miss_rate());
  };
  put_cache("l1i", ms_.l1i_stats());
  put_cache("l1d", ms_.l1d_stats());
  put_cache("l2", ms_.l2_stats());
  const isa::PredecodeStats& pd = ms_.predecode_stats();
  put("mem.predecode.hits", pd.hits);
  put("mem.predecode.fills", pd.fills);
  put("mem.predecode.stale", pd.stale);
  put("mem.predecode.bypasses", pd.bypasses);
  const isa::SuperblockStats& sb = ms_.superblock_stats();
  put("mem.superblock.hits", sb.hits);
  put("mem.superblock.builds", sb.builds);
  put("mem.superblock.stale", sb.stale);
  put("mem.superblock.evictions", sb.evictions);
  put("mem.superblock.exec_insts", sb.exec_insts);
  put("mem.superblock.traces", ms_.superblock_traces());
  for (std::uint64_t tid = 0; tid < sched_.thread_count(); ++tid) {
    const os::Thread& t = sched_.thread(tid);
    char key[64];  // separate buffer: put() renders into `line`
    std::snprintf(key, sizeof key, "thread.%" PRIu64 ".committed", tid);
    put(key, t.committed);
    std::snprintf(key, sizeof key, "thread.%" PRIu64 ".finished", tid);
    put(key, t.finished ? 1 : 0);
    std::snprintf(key, sizeof key, "thread.%" PRIu64 ".output_bytes", tid);
    put(key, t.output.size());
  }
  return out;
}

void Simulation::serialize_tail(util::ByteWriter& w) const {
  cpu_->serialize(w);
  sched_.serialize(w);
  sys_.serialize(w);
  w.put_u64(tick_);
  w.put_u64(next_stack_top_);
  w.put_bool(mode_switch_done_);
}

void Simulation::deserialize_tail(util::ByteReader& r) {
  cpu_->deserialize(r);
  sched_.deserialize(r);
  sys_.deserialize(r);
  tick_ = r.get_u64();
  next_stack_top_ = r.get_u64();
  mode_switch_done_ = r.get_bool();
  drain_for_switch_ = false;
  cpu_->flush_and_redirect(cpu_->arch().pc());
  cpu_->set_fetch_enabled(true);
  // Paper contract: restoring a checkpoint resets all GemFI bookkeeping so
  // the fault configuration file can be re-read for a fresh experiment —
  // syscall-fault fired counters included.
  fm_.reset_campaign_state();
  sysfi_.reset_applied();
  fm_.set_now(tick_);
}

void Simulation::serialize(util::ByteWriter& w) const {
  w.put_u8(std::uint8_t(active_cpu_));
  ms_.serialize(w);
  serialize_tail(w);
}

void Simulation::deserialize(util::ByteReader& r) {
  const auto kind = static_cast<CpuKind>(r.get_u8());
  if (kind != active_cpu_) make_cpu(kind);
  ms_.deserialize(r);
  deserialize_tail(r);
}

void Simulation::serialize_machine(util::ByteWriter& w) const {
  w.put_u8(std::uint8_t(active_cpu_));
  ms_.serialize_timing(w);
  serialize_tail(w);
}

void Simulation::deserialize_machine(util::ByteReader& r) {
  const auto kind = static_cast<CpuKind>(r.get_u8());
  if (kind != active_cpu_) make_cpu(kind);
  ms_.deserialize_timing(r);
  deserialize_tail(r);
}

}  // namespace gemfi::sim
