// Supply-voltage fault-rate model — the extension the paper's conclusion
// plans: "enhance [GemFI] with realistic fault models, associating the
// supply voltage (Vdd) with the error rate in different system components
// ... to study the limits of aggressively reducing power consumption at the
// expense of correctness".
//
// We use the standard exponential low-voltage SRAM/logic failure model from
// the voltage-scaling literature: below a safe voltage Vnom, the per-bit
// upset probability grows exponentially as Vdd approaches Vmin,
//
//     rate(vdd) = rate_at_vmin * exp(-beta * (vdd - vmin) / (vnom - vmin))
//
// and dynamic power scales ~ Vdd^2 (the energy-proxy the sweep reports).
// Fault counts for a window of N instructions are Poisson(rate * N), and
// each fault is a uniform single-bit flip across the supported locations —
// exactly the SEU methodology of Sec. IV-B, now with a physical knob.
#pragma once

#include <vector>

#include "fi/fault.hpp"
#include "util/rng.hpp"

namespace gemfi::fi {

struct VddModelConfig {
  double vnom = 1.0;           // nominal (fault-free) supply
  double vmin = 0.6;           // lowest modeled supply
  double rate_at_vmin = 1e-3;  // upsets per instruction at vmin
  double beta = 12.0;          // exponential steepness
};

class VddModel {
 public:
  explicit VddModel(const VddModelConfig& cfg = {}) : cfg_(cfg) {}

  /// Expected upsets per instruction at the given supply voltage.
  [[nodiscard]] double error_rate(double vdd) const noexcept;

  /// Relative dynamic power vs nominal (~ Vdd^2).
  [[nodiscard]] double relative_power(double vdd) const noexcept;

  /// Sample a fault configuration for a kernel of `kernel_insts`
  /// instructions at supply `vdd`: Poisson-many uniform SEUs.
  [[nodiscard]] std::vector<Fault> sample_faults(util::Rng& rng, double vdd,
                                                 std::uint64_t kernel_insts) const;

  [[nodiscard]] const VddModelConfig& config() const noexcept { return cfg_; }

 private:
  VddModelConfig cfg_;
};

}  // namespace gemfi::fi
