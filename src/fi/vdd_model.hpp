// Supply-voltage reliability model — the extension the paper's conclusion
// plans: "enhance [GemFI] with realistic fault models, associating the
// supply voltage (Vdd) with the error rate in different system components
// ... to study the limits of aggressively reducing power consumption at the
// expense of correctness".
//
// We use the standard exponential low-voltage SRAM/logic failure model from
// the voltage-scaling literature: below a safe voltage Vnom, the per-bit
// upset probability grows exponentially as Vdd approaches Vmin,
//
//     rate(vdd) = rate_at_vmin * exp(-beta * (vdd - vmin) / (vnom - vmin))
//
// and dynamic power scales ~ Vdd^2 (the energy-proxy the sweep reports).
//
// The model generalizes the per-instruction rate into
// f(Vdd, structure, duty cycle):
//   * `duty_cycle` scales the whole rate — a structure clocked a fraction
//     of the time accumulates proportionally fewer upsets;
//   * `structure_weight[loc]` scales the relative susceptibility of each
//     micro-architectural location (an FP register file in a different
//     voltage domain, a hardened PC, ...);
//   * the mix_* weights choose which fault model each sampled upset
//     presents as (transient SEU, permanent stuck-at, duty-cycled
//     intermittent, multi-bit burst, or an attack-style corruption), so
//     sample_faults can emit any of the extended models.
//
// Fault counts for a window of N instructions are Poisson(rate * N); the
// default configuration reproduces the paper-style methodology exactly:
// uniform single-bit transient flips across the SEU locations.
#pragma once

#include <vector>

#include "fi/fault.hpp"
#include "util/rng.hpp"

namespace gemfi::fi {

struct VddModelConfig {
  double vnom = 1.0;           // nominal (fault-free) supply
  double vmin = 0.6;           // lowest modeled supply
  double rate_at_vmin = 1e-3;  // upsets per instruction at vmin
  double beta = 12.0;          // exponential steepness

  /// Fraction of cycles the modeled structures are clocked; scales the
  /// error rate linearly (1.0 = always active).
  double duty_cycle = 1.0;

  /// Relative susceptibility per SEU location (FaultLocation order:
  /// IntReg, FpReg, Fetch, Decode, Execute, LoadStore, PC). A zero weight
  /// excludes the location from sampling.
  double structure_weight[kNumSeuFaultLocations] = {1, 1, 1, 1, 1, 1, 1};

  /// Relative weights of the fault-model families sampled faults present
  /// as; normalized at sampling time. Default: all transient (the paper).
  double mix_transient = 1.0;
  double mix_stuck = 0.0;
  double mix_intermittent = 0.0;
  double mix_burst = 0.0;
  double mix_attack = 0.0;
};

class VddModel {
 public:
  explicit VddModel(const VddModelConfig& cfg = {}) : cfg_(cfg) {}

  /// Expected upsets per instruction at the given supply voltage, averaged
  /// over the structures (duty-cycle scaled).
  [[nodiscard]] double error_rate(double vdd) const noexcept;

  /// Expected upsets per instruction attributable to one structure:
  /// error_rate scaled by its susceptibility weight.
  [[nodiscard]] double error_rate(double vdd, FaultLocation loc) const noexcept;

  /// Relative dynamic power vs nominal (~ Vdd^2).
  [[nodiscard]] double relative_power(double vdd) const noexcept;

  /// Sample a fault configuration for a kernel of `kernel_insts`
  /// instructions at supply `vdd`: Poisson-many upsets, each landing in a
  /// structure drawn by susceptibility weight and presenting as a fault
  /// model drawn from the mix.
  [[nodiscard]] std::vector<Fault> sample_faults(util::Rng& rng, double vdd,
                                                 std::uint64_t kernel_insts) const;

  [[nodiscard]] const VddModelConfig& config() const noexcept { return cfg_; }

 private:
  VddModelConfig cfg_;
};

/// Poisson(lambda) sample. Knuth's product method for small lambda; above
/// a threshold — where exp(-lambda) underflows to 0 and the product loop
/// would spin for ~lambda iterations — a normal approximation with
/// continuity correction (exact enough for any campaign-scale use).
std::size_t poisson_sample(util::Rng& rng, double lambda);

}  // namespace gemfi::fi
