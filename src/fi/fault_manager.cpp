#include "fi/fault_manager.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "isa/encoding.hpp"
#include "isa/registers.hpp"
#include "util/bits.hpp"
#include "util/log.hpp"

namespace gemfi::fi {

namespace {

/// End of a fault's live window: f.time + f.occurrences, saturating.
/// Plain addition wraps for finite occurrence counts near kPermanent
/// (e.g. occ = kPermanent - 1), silently deactivating a fault that should
/// stay live for the rest of the run.
constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? ~0ull : s;
}

/// The canonical uAlpha NOP (bis r31, r31, r31): what a skip attack leaves
/// in place of the fetched instruction.
constexpr std::uint32_t kNopWord = isa::encode_operate(isa::Opcode::INTL, 0x20, 31, 31, 31);

/// Bound injection-log growth: a permanent stuck-at fault re-asserts every
/// tick for the rest of the run, which would otherwise accumulate one log
/// line per tick. Applications beyond the cap still count in FaultState.
constexpr std::size_t kMaxLogEntries = 4096;

}  // namespace

void FaultManager::load_faults(std::vector<Fault> faults) {
  config_ = std::move(faults);
  reset_campaign_state();
}

void FaultManager::reset_campaign_state() {
  threads_.clear();
  cur_ = nullptr;
  log_.clear();
  states_.clear();
  states_.reserve(config_.size());
  for (const Fault& f : config_) {
    FaultState fs;
    fs.fault = f;
    states_.push_back(std::move(fs));
  }

  q_fetch_.clear();
  q_decode_.clear();
  q_execute_.clear();
  q_mem_.clear();
  q_direct_.clear();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    switch (states_[i].fault.location) {
      case FaultLocation::Fetch:
      case FaultLocation::Skip:
      case FaultLocation::Opcode: q_fetch_.push_back(i); break;
      case FaultLocation::Decode: q_decode_.push_back(i); break;
      case FaultLocation::Execute: q_execute_.push_back(i); break;
      case FaultLocation::LoadStore: q_mem_.push_back(i); break;
      case FaultLocation::IntReg:
      case FaultLocation::FpReg:
      case FaultLocation::PC: q_direct_.push_back(i); break;
    }
  }
  const auto by_time = [this](std::size_t a, std::size_t b) {
    return states_[a].fault.time < states_[b].fault.time;
  };
  std::sort(q_fetch_.begin(), q_fetch_.end(), by_time);
  std::sort(q_decode_.begin(), q_decode_.end(), by_time);
  std::sort(q_execute_.begin(), q_execute_.end(), by_time);
  std::sort(q_mem_.begin(), q_mem_.end(), by_time);
  std::sort(q_direct_.begin(), q_direct_.end(), by_time);
}

ThreadEnabledFault* FaultManager::find_thread(std::uint64_t pcb) noexcept {
  const auto it = threads_.find(pcb);
  return it == threads_.end() ? nullptr : it->second.get();
}

bool FaultManager::on_fi_activate(std::uint64_t pcb, int user_id) {
  if (ThreadEnabledFault* t = find_thread(pcb); t != nullptr) {
    // Second invocation toggles fault injection off (paper Sec. III-A).
    last_deactivated_fetched_ = t->fetched;
    if (cur_ == t) cur_ = nullptr;
    threads_.erase(pcb);
    GEMFI_DEBUG("fi", "fi_activate: FI disabled for pcb=0x%llx",
                static_cast<unsigned long long>(pcb));
    return false;
  }
  auto t = std::make_unique<ThreadEnabledFault>();
  t->user_id = user_id;
  t->pcb = pcb;
  t->activation_tick = now_;
  cur_ = t.get();
  threads_.emplace(pcb, std::move(t));
  GEMFI_DEBUG("fi", "fi_activate: FI enabled for pcb=0x%llx id=%d",
              static_cast<unsigned long long>(pcb), user_id);
  return true;
}

void FaultManager::on_context_switch(std::uint64_t new_pcb) {
  cur_ = find_thread(new_pcb);
}

// Memory-transaction faults ride on load/store instructions, which are a
// sparse subsequence of the fetch stream: an Inst:N trigger arms the fault
// at the Nth fetched instruction and it fires on the next `occurrences`
// memory transactions from that point, so a fault scheduled "at" a
// non-memory instruction hits the transaction that follows it.
bool FaultManager::mem_triggers(const FaultState& fs, std::uint64_t fi_seq) const noexcept {
  const Fault& f = fs.fault;
  if (cur_ == nullptr || f.thread_id != cur_->user_id || f.core != core_id_) return false;
  if (f.occurrences != kPermanent && fs.applied >= f.occurrences) return false;
  if (f.time_kind == FaultTimeKind::Instruction)
    return fi_seq >= f.time && f.duty_on(fi_seq - f.time);
  return now_ - cur_->activation_tick >= f.time && f.duty_on(fi_seq);
}

bool FaultManager::stage_triggers(const FaultState& fs, std::uint64_t fi_seq) const noexcept {
  const Fault& f = fs.fault;
  if (cur_ == nullptr || f.thread_id != cur_->user_id || f.core != core_id_) return false;
  if (f.occurrences != kPermanent && fs.applied >= f.occurrences) return false;
  if (f.time_kind == FaultTimeKind::Instruction) {
    if (fi_seq < f.time) return false;
    // Duty cycling is phased off the per-thread fetch counter relative to
    // the trigger: deterministic under replay, and the first duty_active
    // instructions after the trigger are the first active window.
    if (!f.duty_on(fi_seq - f.time)) return false;
    // A PC-windowed attack waits for the target window instead of firing on
    // consecutive fetches; the applied count alone bounds its occurrences.
    if (f.has_pc_window()) return true;
    return f.occurrences == kPermanent || fi_seq < sat_add(f.time, f.occurrences);
  }
  if (now_ - cur_->activation_tick < f.time) return false;
  return f.duty_on(fi_seq);
}

void FaultManager::record(FaultState& fs, std::uint64_t fi_seq, std::uint64_t pc,
                          const std::string& what, std::uint64_t before,
                          std::uint64_t after) {
  ++fs.applied;
  fs.affected_seq = fi_seq;
  if (fs.applied == 1) {
    fs.original_value = before;
    fs.corrupted_value = after;
  }
  if (before != after) fs.value_changed = true;
  if (log_.size() >= kMaxLogEntries) return;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "tick=%" PRIu64 " pc=0x%" PRIx64 " seq=%" PRIu64
                " %s: %s 0x%" PRIx64 " -> 0x%" PRIx64,
                now_, pc, fi_seq, fault_location_name(fs.fault.location), what.c_str(),
                before, after);
  log_.emplace_back(buf);
  GEMFI_DEBUG("fi", "inject %s", buf);
}

FaultManager::FetchResult FaultManager::on_fetch(std::uint64_t pc, std::uint32_t word) {
  if (cur_ == nullptr) return {word, 0};
  const std::uint64_t seq = ++cur_->fetched;
  for (const std::size_t i : q_fetch_) {
    FaultState& fs = states_[i];
    if (!stage_triggers(fs, seq) || fs.last_marker == seq) continue;
    if (!fs.fault.pc_in_window(pc)) continue;  // attack waits for its window
    fs.last_marker = seq;
    std::uint32_t corrupted;
    const char* what;
    switch (fs.fault.location) {
      case FaultLocation::Skip:
        // Attack model: the targeted instruction is replaced wholesale with
        // a NOP, as if the fault suppressed its issue (InjectV-style skip).
        corrupted = kNopWord;
        what = "skipped-instruction '";
        break;
      case FaultLocation::Opcode:
        // Attack model: only the opcode field [31:26] is corrupted, turning
        // the instruction into a different operation on the same operands.
        corrupted = std::uint32_t(
            util::insert_bits(word, 26, 6, fs.fault.corrupt(util::bits(word, 26, 6), 6)));
        what = "opcode-field '";
        break;
      default:
        corrupted = std::uint32_t(fs.fault.corrupt(word, 32));
        what = "instruction-word '";
        break;
    }
    // For the attack models the victim instruction is the forensically
    // interesting one; for plain fetch corruption, what now executes.
    const std::uint32_t shown =
        fs.fault.location == FaultLocation::Skip ? word : corrupted;
    fs.affected_disasm = isa::disassemble(isa::decode(shown), pc);
    record(fs, seq, pc, what + fs.affected_disasm + "'", word, corrupted);
    word = corrupted;
  }
  return {word, seq};
}

void FaultManager::on_decode(isa::Decoded& d, std::uint64_t pc, std::uint64_t fi_seq) {
  if (fi_seq == 0) return;
  for (const std::size_t i : q_decode_) {
    FaultState& fs = states_[i];
    if (!stage_triggers(fs, fi_seq) || fs.last_marker == fi_seq) continue;
    fs.last_marker = fi_seq;
    const unsigned lo = fs.fault.decode_field == DecodeField::Ra   ? 21u
                        : fs.fault.decode_field == DecodeField::Rb ? 16u
                                                                   : 0u;
    const std::uint64_t before = util::bits(d.raw, lo, 5);
    const std::uint64_t after = fs.fault.corrupt(before, 5);
    const std::uint32_t raw2 =
        std::uint32_t(util::insert_bits(d.raw, lo, 5, after));
    d = isa::decode(raw2);
    fs.affected_disasm = isa::disassemble(d, pc);
    record(fs, fi_seq, pc, "register-selection '" + fs.affected_disasm + "'", before, after);
  }
}

void FaultManager::on_execute(cpu::ExecOut& out, const isa::Decoded& d, std::uint64_t pc,
                              std::uint64_t fi_seq) {
  if (fi_seq == 0) return;
  for (const std::size_t i : q_execute_) {
    FaultState& fs = states_[i];
    if (!stage_triggers(fs, fi_seq) || fs.last_marker == fi_seq) continue;
    fs.last_marker = fi_seq;
    fs.affected_disasm = isa::disassemble(d, pc);
    if (d.is_mem_access()) {
      // The execution stage computes the virtual address of memory
      // transfers; faults here corrupt it (paper Sec. IV-B-2).
      const std::uint64_t before = out.mem_addr;
      out.mem_addr = fs.fault.corrupt(before, 64);
      record(fs, fi_seq, pc, "effective-address of '" + fs.affected_disasm + "'", before,
             out.mem_addr);
    } else if (d.is_control()) {
      const std::uint64_t before = out.next_pc;
      out.next_pc = fs.fault.corrupt(before, 64);
      record(fs, fi_seq, pc, "branch-outcome of '" + fs.affected_disasm + "'", before,
             out.next_pc);
    } else if (out.writes_dst) {
      const std::uint64_t before = out.value;
      out.value = fs.fault.corrupt(before, 64);
      record(fs, fi_seq, pc, "result of '" + fs.affected_disasm + "'", before, out.value);
    } else {
      // Instruction with no architectural result (e.g. a pseudo-op):
      // the fault occupies the stage but has nothing to corrupt.
      record(fs, fi_seq, pc, "no-result '" + fs.affected_disasm + "'", 0, 0);
    }
  }
}

std::uint64_t FaultManager::on_load(std::uint64_t addr, std::uint64_t raw, unsigned bytes,
                                    std::uint64_t fi_seq) {
  if (fi_seq == 0) return raw;
  for (const std::size_t i : q_mem_) {
    FaultState& fs = states_[i];
    if (!mem_triggers(fs, fi_seq) || fs.last_marker == fi_seq) continue;
    fs.last_marker = fi_seq;
    const std::uint64_t before = raw;
    raw = fs.fault.corrupt(raw, bytes * 8);
    char what[64];
    std::snprintf(what, sizeof what, "load-data @0x%" PRIx64, addr);
    record(fs, fi_seq, 0, what, before, raw);
  }
  return raw;
}

std::uint64_t FaultManager::on_store(std::uint64_t addr, std::uint64_t raw, unsigned bytes,
                                     std::uint64_t fi_seq) {
  if (fi_seq == 0) return raw;
  for (const std::size_t i : q_mem_) {
    FaultState& fs = states_[i];
    if (!mem_triggers(fs, fi_seq) || fs.last_marker == fi_seq) continue;
    fs.last_marker = fi_seq;
    const std::uint64_t before = raw;
    raw = fs.fault.corrupt(raw, bytes * 8);
    char what[64];
    std::snprintf(what, sizeof what, "store-data @0x%" PRIx64, addr);
    record(fs, fi_seq, 0, what, before, raw);
  }
  return raw;
}

std::uint64_t FaultManager::next_direct_fault_tick(std::uint64_t from) const noexcept {
  if (cur_ == nullptr) return ~0ull;  // (re)activation is a commit-side event
  std::uint64_t next = ~0ull;
  for (const std::size_t i : q_direct_) {
    const FaultState& fs = states_[i];
    const Fault& f = fs.fault;
    if (f.thread_id != cur_->user_id || f.core != core_id_) continue;
    if (f.occurrences != kPermanent && fs.applied >= f.occurrences) continue;
    if (f.time_kind == FaultTimeKind::Instruction) {
      // Keyed on the fetched-instruction index, which is frozen during a
      // stall: armed-and-unapplied fires immediately, everything else not
      // before the next fetch. The duty phase is keyed on the same frozen
      // counter, so an inactive phase stays inactive for the whole stall.
      if (cur_->fetched < f.time) continue;
      if (f.occurrences != kPermanent &&
          cur_->fetched >= sat_add(f.time, f.occurrences))
        continue;
      if (!f.duty_on(cur_->fetched - f.time)) continue;
      if (fs.last_marker == cur_->fetched) continue;
      return from;
    }
    if (!f.duty_on(cur_->fetched)) continue;
    const bool instruction_marked = !Fault::sticky_behavior(f.behavior);
    if (instruction_marked && fs.last_marker == cur_->fetched) continue;
    const std::uint64_t due = cur_->activation_tick + f.time;
    next = std::min(next, due > from ? due : from);
  }
  return next;
}

bool FaultManager::apply_direct_faults(cpu::ArchState& st) {
  if (cur_ == nullptr) return false;
  bool applied_any = false;
  for (const std::size_t i : q_direct_) {
    FaultState& fs = states_[i];
    const Fault& f = fs.fault;
    if (f.thread_id != cur_->user_id || f.core != core_id_) continue;
    if (f.occurrences != kPermanent && fs.applied >= f.occurrences) continue;

    // Timing: instruction-relative faults fire once per new fetched index;
    // tick-relative faults fire once per tick. Sticky behaviors (Imm,
    // AllZero, AllOne, StuckAt0/1) model persistent defects when reapplied;
    // self-inverting behaviors (Flip, Xor, Burst, RandK) are applied at
    // instruction boundaries so a "permanent" flip does not cancel itself
    // out within one instruction.
    std::uint64_t marker;
    if (f.time_kind == FaultTimeKind::Instruction) {
      if (cur_->fetched < f.time) continue;
      if (f.occurrences != kPermanent &&
          cur_->fetched >= sat_add(f.time, f.occurrences))
        continue;
      if (!f.duty_on(cur_->fetched - f.time)) continue;
      marker = cur_->fetched;
    } else {
      if (now_ - cur_->activation_tick < f.time) continue;
      if (!f.duty_on(cur_->fetched)) continue;
      marker = Fault::sticky_behavior(f.behavior) ? now_ : cur_->fetched;
    }
    if (fs.last_marker == marker) continue;
    fs.last_marker = marker;

    if (f.location == FaultLocation::PC) {
      const std::uint64_t before = st.pc();
      const std::uint64_t after = f.corrupt(before, 64);
      st.set_pc(after);
      record(fs, cur_->fetched, before, "PC", before, after);
      fs.consumed = true;  // a corrupted PC is consumed immediately
      if (after != before) applied_any = true;
    } else {
      const bool fp = f.location == FaultLocation::FpReg;
      const std::uint64_t before = fp ? st.freg_bits(f.reg) : st.ireg(f.reg);
      const std::uint64_t after = f.corrupt(before, 64);
      if (fp)
        st.set_freg_bits(f.reg, after);
      else
        st.set_ireg(f.reg, after);
      const std::string name(fp ? isa::fp_reg_name(f.reg) : isa::int_reg_name(f.reg));
      record(fs, cur_->fetched, st.pc(), "register " + name, before, after);
      // Writes to the hardwired zero register can never propagate.
      if ((fp && f.reg == isa::kFpZeroReg) || (!fp && f.reg == isa::kZeroReg))
        fs.value_changed = false;
      // Only a value-changing application needs the precise-boundary flush;
      // idempotent stuck-at re-applications must not stall the pipeline.
      if (after != before) applied_any = true;
    }
  }
  return applied_any;
}

void FaultManager::on_commit(const isa::Decoded& d, std::uint64_t pc, std::uint64_t fi_seq) {
  (void)pc;
  for (FaultState& fs : states_) {
    if (fs.applied == 0) continue;
    switch (fs.fault.location) {
      case FaultLocation::Fetch:
      case FaultLocation::Decode:
      case FaultLocation::Execute:
      case FaultLocation::LoadStore:
      case FaultLocation::Skip:
      case FaultLocation::Opcode:
        if (!fs.consumed && !fs.squashed && fs.affected_seq == fi_seq && fi_seq != 0)
          fs.consumed = true;
        break;
      case FaultLocation::IntReg:
      case FaultLocation::FpReg: {
        if (fs.consumed || fs.overwritten) break;
        const bool fp = fs.fault.location == FaultLocation::FpReg;
        const unsigned r = fs.fault.reg;
        const bool reads = (d.src1 == r && d.src1_fp == fp) ||
                           (d.src2 == r && d.src2_fp == fp);
        // A still-live sticky fault (stuck-at) re-asserts after any
        // overwrite, so the overwrite does not end its ability to propagate.
        const bool live_sticky =
            Fault::sticky_behavior(fs.fault.behavior) &&
            (fs.fault.occurrences == kPermanent || fs.applied < fs.fault.occurrences);
        if (reads) {
          fs.consumed = true;
        } else if (d.dst == r && d.dst_fp == fp && !live_sticky) {
          fs.overwritten = true;
        }
        break;
      }
      case FaultLocation::PC:
        break;  // consumed at injection
    }
  }
}

void FaultManager::on_squash(std::uint64_t fi_seq) {
  if (fi_seq == 0) return;
  for (FaultState& fs : states_) {
    switch (fs.fault.location) {
      case FaultLocation::Fetch:
      case FaultLocation::Decode:
      case FaultLocation::Execute:
      case FaultLocation::LoadStore:
      case FaultLocation::Skip:
      case FaultLocation::Opcode:
        if (fs.applied > 0 && !fs.consumed && fs.affected_seq == fi_seq) fs.squashed = true;
        break;
      default:
        break;
    }
  }
}

bool FaultManager::any_applied() const noexcept {
  for (const FaultState& fs : states_)
    if (fs.applied > 0) return true;
  return false;
}

bool FaultManager::any_propagated() const noexcept {
  for (const FaultState& fs : states_)
    if (fs.propagated()) return true;
  return false;
}

bool FaultManager::safe_to_switch_cpu() const noexcept {
  for (const FaultState& fs : states_) {
    const Fault& f = fs.fault;
    if (f.occurrences != 1) return false;  // intermittent/permanent: stay detailed
    if (fs.applied == 0) return false;     // not injected yet
    switch (f.location) {
      case FaultLocation::Fetch:
      case FaultLocation::Decode:
      case FaultLocation::Execute:
      case FaultLocation::LoadStore:
      case FaultLocation::Skip:
      case FaultLocation::Opcode:
        // Paper: continue detailed until the affected instruction commits
        // or squashes.
        if (!fs.consumed && !fs.squashed) return false;
        break;
      case FaultLocation::IntReg:
      case FaultLocation::FpReg:
      case FaultLocation::PC:
        break;  // damage applied directly to architectural state
    }
  }
  return true;
}

bool FaultManager::fastmode_quiescent() const noexcept {
  for (const FaultState& fs : states_) {
    const Fault& f = fs.fault;
    // (a) In-window with a live fault: on_fetch/stage/mem triggers and
    // apply_direct_faults all require cur_ != nullptr, so out of the window
    // nothing can fire — but inside it, any fault with occurrences left
    // could trigger at some fetch index or tick inside the batch.
    const bool live = f.occurrences == kPermanent || fs.applied < f.occurrences;
    if (cur_ != nullptr && live) return false;
    if (fs.applied == 0) continue;  // on_commit skips un-applied faults
    switch (f.location) {
      case FaultLocation::Fetch:
      case FaultLocation::Decode:
      case FaultLocation::Execute:
      case FaultLocation::LoadStore:
      case FaultLocation::Skip:
      case FaultLocation::Opcode:
        // (b) The affected instruction has not committed or squashed yet:
        // on_commit would latch `consumed` when its fi_seq retires.
        if (!fs.consumed && !fs.squashed) return false;
        break;
      case FaultLocation::IntReg:
      case FaultLocation::FpReg:
        // (c) Commit-side read/overwrite propagation tracking runs on every
        // commit regardless of the FI window; pending until one resolves it.
        if (!fs.consumed && !fs.overwritten) return false;
        break;
      case FaultLocation::PC:
        break;  // consumed at injection; rule (a) is the only gate
    }
  }
  return true;
}

}  // namespace gemfi::fi
