// FaultManager — the core of GemFI (paper Sec. III-C, Fig. 2).
//
// Implements the paper's machinery faithfully:
//   * threads that executed fi_activate_inst() are represented by
//     ThreadEnabledFault objects, held in a hash table keyed by the thread's
//     PCB address; the running core holds a direct pointer so the per-tick
//     fast path never touches the hash table;
//   * context switches (PCB changes) re-bind that pointer;
//   * faults parsed from the input file are distributed into per-stage
//     queues sorted by trigger time; every instruction served at a stage
//     scans only its queue;
//   * register-file and PC faults are applied directly to architectural
//     state at cycle boundaries;
//   * every injection is logged with the affected assembly instruction
//     (the paper's post-mortem correlation record);
//   * propagation is tracked so campaigns can classify "non propagated"
//     outcomes (corrupted register overwritten or never read; corrupted
//     instruction squashed; corruption that did not change the value).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "fi/fault.hpp"
#include "isa/disasm.hpp"

namespace gemfi::fi {

/// Per-thread fault-injection bookkeeping (paper's ThreadEnabledFault class).
struct ThreadEnabledFault {
  int user_id = 0;            // id passed to fi_activate_inst(id)
  std::uint64_t pcb = 0;
  std::uint64_t fetched = 0;  // instructions fetched since activation
  std::uint64_t activation_tick = 0;
};

/// Lifecycle of one configured fault during an experiment.
struct FaultState {
  Fault fault;
  std::uint64_t applied = 0;        // number of corruptions performed
  bool value_changed = false;       // at least one application altered bits
  bool consumed = false;            // corrupted value reached later computation
  bool overwritten = false;         // corrupted register rewritten before a read
  bool squashed = false;            // affected instruction was squashed
  std::uint64_t affected_seq = 0;   // fi_seq of the (last) affected instruction
  std::uint64_t last_marker = ~0ull;  // dedupe repeated application at one boundary
  std::uint64_t original_value = 0;   // value before the first application
  std::uint64_t corrupted_value = 0;  // value after the first application
  std::string affected_disasm;

  /// Did this fault manifest as an architecturally visible error?
  [[nodiscard]] bool propagated() const noexcept {
    return applied > 0 && value_changed && consumed && !squashed;
  }
};

class FaultManager final : public cpu::StageHooks {
 public:
  FaultManager() = default;

  /// Load a fault configuration (replaces any previous one, re-arming all
  /// bookkeeping). This is what happens at GemFI startup and again after
  /// every checkpoint restore.
  void load_faults(std::vector<Fault> faults);
  [[nodiscard]] const std::vector<Fault>& faults() const noexcept { return config_; }

  /// fi_read_init_all() semantics: drop all thread state and re-arm faults
  /// so the same checkpoint can seed many differently-configured runs.
  void reset_campaign_state();

  // --- kernel/simulation notifications ---
  /// fi_activate_inst(id) executed by the thread with this PCB: toggles FI.
  /// Returns true if FI is now active for the thread.
  bool on_fi_activate(std::uint64_t pcb, int user_id);
  /// The scheduler switched threads; re-bind the core pointer.
  void on_context_switch(std::uint64_t new_pcb);
  /// Which simulated core this manager instance serves ("system.cpuN" in
  /// the fault grammar). Faults naming another core never trigger here.
  void set_core_id(unsigned core) noexcept { core_id_ = core; }
  [[nodiscard]] unsigned core_id() const noexcept { return core_id_; }
  /// Advance the manager's notion of time (once per simulated tick).
  void set_now(std::uint64_t tick) noexcept { now_ = tick; }

  /// True when the configuration contains register-file/PC faults; lets the
  /// per-tick fast path skip apply_direct_faults entirely when there are
  /// none (the common case for stage-fault experiments and for the Fig. 7
  /// overhead runs, where no faults are loaded at all).
  [[nodiscard]] bool has_direct_faults() const noexcept { return !q_direct_.empty(); }

  /// Apply due register-file/PC faults to architectural state. Returns true
  /// if any application changed a value: the caller must then flush + redirect the
  /// pipeline so the fault lands at a precise inter-instruction boundary
  /// (otherwise an in-flight producer's writeback could overwrite the
  /// injected value before any instruction observes it).
  bool apply_direct_faults(cpu::ArchState& st);

  /// Stall-warp event horizon: the earliest tick >= `from` at which
  /// apply_direct_faults could perform an application, assuming no
  /// instruction fetches (and hence no fetched-index advance, activation or
  /// context switch) happen before then — exactly the invariant inside a
  /// pure-stall window. ~0 when nothing can fire. Sticky tick-relative
  /// behaviors (Imm/AllZero/AllOne/StuckAt0/StuckAt1) re-apply every tick
  /// once due, so they pin the horizon to their due tick; self-inverting
  /// behaviors (Flip/Xor/Burst/RandK) and instruction-relative faults
  /// already applied at the current fetch index impose no bound. Duty
  /// cycling is phased off the fetch counter, which is frozen during a
  /// stall, so an inactive phase imposes no bound either.
  [[nodiscard]] std::uint64_t next_direct_fault_tick(std::uint64_t from) const noexcept;

  // --- cpu::StageHooks ---
  FetchResult on_fetch(std::uint64_t pc, std::uint32_t word) override;
  void on_decode(isa::Decoded& d, std::uint64_t pc, std::uint64_t fi_seq) override;
  void on_execute(cpu::ExecOut& out, const isa::Decoded& d, std::uint64_t pc,
                  std::uint64_t fi_seq) override;
  std::uint64_t on_load(std::uint64_t addr, std::uint64_t raw, unsigned bytes,
                        std::uint64_t fi_seq) override;
  std::uint64_t on_store(std::uint64_t addr, std::uint64_t raw, unsigned bytes,
                         std::uint64_t fi_seq) override;
  void on_commit(const isa::Decoded& d, std::uint64_t pc, std::uint64_t fi_seq) override;
  void on_squash(std::uint64_t fi_seq) override;

  // --- status / reporting ---
  [[nodiscard]] bool fi_active() const noexcept { return cur_ != nullptr; }
  [[nodiscard]] const ThreadEnabledFault* current_thread() const noexcept { return cur_; }
  [[nodiscard]] std::size_t enabled_thread_count() const noexcept { return threads_.size(); }
  [[nodiscard]] const std::vector<FaultState>& states() const noexcept { return states_; }
  [[nodiscard]] const std::vector<std::string>& injection_log() const noexcept { return log_; }

  /// Fetched-instruction count of the most recently deactivated thread —
  /// i.e. the length of the FI-active region in a fault-free calibration run
  /// (used to sample fault times uniformly over the kernel).
  [[nodiscard]] std::uint64_t last_deactivated_fetched() const noexcept {
    return last_deactivated_fetched_;
  }

  [[nodiscard]] bool any_applied() const noexcept;
  [[nodiscard]] bool any_propagated() const noexcept;
  /// All faults done their damage (transient faults committed or squashed):
  /// the simulation may switch from the detailed to the atomic CPU model.
  [[nodiscard]] bool safe_to_switch_cpu() const noexcept;

  /// True when skipping every per-instruction hook over a whole batch is
  /// provably unobservable — the gate for the superblock fast tier while FI
  /// is compiled in. Quiescence fails if (a) the running thread is inside an
  /// FI window and *any* configured fault is still live (it could trigger at
  /// any fetch index or tick inside the batch), or if commit-side propagation
  /// tracking is still pending: (b) an applied stage fault not yet consumed
  /// or squashed, (c) an applied register fault not yet consumed or
  /// overwritten (that tracking runs on every commit, even outside the FI
  /// window). PC faults are consumed at injection, so only rule (a) can hold
  /// them. The caller still owns bulk fetch-window accounting
  /// (add_window_fetches) for any batch it runs under this gate.
  [[nodiscard]] bool fastmode_quiescent() const noexcept;

  /// Bulk equivalent of the per-fetch `++cur_->fetched` bookkeeping for a
  /// hook-free batch of `n` fetches, keeping calibration's fetched-index
  /// sampling space exact. Faulting fetch attempts never reach on_fetch, so
  /// the caller must not count them here.
  void add_window_fetches(std::uint64_t n) noexcept {
    if (cur_ != nullptr) cur_->fetched += n;
  }

 private:
  ThreadEnabledFault* find_thread(std::uint64_t pcb) noexcept;
  bool stage_triggers(const FaultState& fs, std::uint64_t fi_seq) const noexcept;
  bool mem_triggers(const FaultState& fs, std::uint64_t fi_seq) const noexcept;
  void record(FaultState& fs, std::uint64_t fi_seq, std::uint64_t pc,
              const std::string& what, std::uint64_t before, std::uint64_t after);

  std::vector<Fault> config_;
  std::vector<FaultState> states_;
  // Queues of indices into states_, one per stage plus register/PC direct
  // faults, each sorted by trigger time (paper: "each queue corresponds to a
  // different pipeline stage ... entries are sorted by timing").
  std::vector<std::size_t> q_fetch_, q_decode_, q_execute_, q_mem_, q_direct_;
  std::unordered_map<std::uint64_t, std::unique_ptr<ThreadEnabledFault>> threads_;
  ThreadEnabledFault* cur_ = nullptr;  // the "core pointer" of the paper
  unsigned core_id_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t last_deactivated_fetched_ = 0;
  std::vector<std::string> log_;
};

}  // namespace gemfi::fi
