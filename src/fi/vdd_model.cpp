#include "fi/vdd_model.hpp"

#include <cmath>

#include "isa/registers.hpp"

namespace gemfi::fi {

namespace {

double base_rate(const VddModelConfig& cfg, double vdd) noexcept {
  if (vdd >= cfg.vnom) return 0.0;
  const double span = cfg.vnom - cfg.vmin;
  const double x = span <= 0.0 ? 0.0 : (vdd - cfg.vmin) / span;
  return cfg.rate_at_vmin * std::exp(-cfg.beta * x);
}

double mean_structure_weight(const VddModelConfig& cfg) noexcept {
  double sum = 0.0;
  for (const double w : cfg.structure_weight) sum += w;
  return sum / double(kNumSeuFaultLocations);
}

/// Draw an index in [0, n) proportionally to non-negative weights.
std::size_t weighted_draw(util::Rng& rng, const double* w, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += w[i];
  if (total <= 0.0) return 0;
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < n; ++i) {
    x -= w[i];
    if (x < 0.0) return i;
  }
  return n - 1;
}

}  // namespace

std::size_t poisson_sample(util::Rng& rng, double lambda) {
  if (!(lambda > 0.0)) return 0;
  // Knuth's product method consumes one uniform per event: fine while
  // lambda is small, but exp(-lambda) underflows to 0 near lambda ~ 745 and
  // the loop then spins until the product itself denormalizes — returning a
  // count pinned at ~1075 no matter how large lambda really is.
  constexpr double kNormalThreshold = 32.0;
  if (lambda < kNormalThreshold) {
    const double limit = std::exp(-lambda);
    std::size_t count = 0;
    double p = 1.0;
    for (;;) {
      p *= rng.uniform();
      if (p <= limit) break;
      ++count;
      if (count > 100000) break;  // defensive cap; unreachable below threshold
    }
    return count;
  }
  // Normal approximation N(lambda, lambda) with continuity correction;
  // Box-Muller from two uniforms keeps the draw deterministic per Rng state.
  const double u1 = 1.0 - rng.uniform();  // (0, 1]: log stays finite
  const double u2 = rng.uniform();
  constexpr double kTwoPi = 6.283185307179586;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  const double x = lambda + std::sqrt(lambda) * z + 0.5;
  return x <= 0.0 ? 0 : std::size_t(x);
}

double VddModel::error_rate(double vdd) const noexcept {
  return base_rate(cfg_, vdd) * cfg_.duty_cycle * mean_structure_weight(cfg_);
}

double VddModel::error_rate(double vdd, FaultLocation loc) const noexcept {
  const unsigned i = unsigned(loc);
  const double w = i < kNumSeuFaultLocations ? cfg_.structure_weight[i] : 0.0;
  return base_rate(cfg_, vdd) * cfg_.duty_cycle * w;
}

double VddModel::relative_power(double vdd) const noexcept {
  return (vdd * vdd) / (cfg_.vnom * cfg_.vnom);
}

std::vector<Fault> VddModel::sample_faults(util::Rng& rng, double vdd,
                                           std::uint64_t kernel_insts) const {
  const double lambda = error_rate(vdd) * double(kernel_insts);
  const std::size_t count = poisson_sample(rng, lambda);

  std::vector<Fault> faults;
  faults.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Fault f;
    f.thread_id = 0;
    f.core = 0;
    f.occurrences = 1;
    f.time_kind = FaultTimeKind::Instruction;
    f.time = 1 + rng.below(kernel_insts);
    f.behavior = FaultBehavior::Flip;

    const double mix[kNumFaultModelKinds] = {cfg_.mix_transient, cfg_.mix_stuck,
                                             cfg_.mix_intermittent, cfg_.mix_burst,
                                             cfg_.mix_attack};
    const auto kind =
        static_cast<FaultModelKind>(weighted_draw(rng, mix, kNumFaultModelKinds));

    if (kind == FaultModelKind::Attack) {
      // Deliberate corruption of the fetch path: skip a short run of
      // instructions or flip a bit of the opcode field.
      if (rng.chance(0.5)) {
        f.location = FaultLocation::Skip;
        f.occurrences = 1 + rng.below(4);
      } else {
        f.location = FaultLocation::Opcode;
        f.operand = rng.below(6);
      }
      faults.push_back(f);
      continue;
    }

    f.location = static_cast<FaultLocation>(
        weighted_draw(rng, cfg_.structure_weight, kNumSeuFaultLocations));
    const unsigned width = fault_target_width(f.location);
    if (f.location == FaultLocation::IntReg || f.location == FaultLocation::FpReg)
      f.reg = unsigned(rng.below(32));
    if (f.location == FaultLocation::Decode)
      f.decode_field = static_cast<DecodeField>(rng.below(3));
    f.operand = rng.below(width);

    switch (kind) {
      case FaultModelKind::Transient:
        break;  // single uniform flip, occ:1 — the paper's SEU
      case FaultModelKind::StuckAt: {
        const std::uint64_t mask = 1ull << (f.operand % 64);
        f.behavior = rng.chance(0.5) ? FaultBehavior::StuckOne : FaultBehavior::StuckZero;
        f.operand = mask;
        f.occurrences = kPermanent;
        break;
      }
      case FaultModelKind::Intermittent:
        f.occurrences = kPermanent;
        f.duty_period = 8ull << rng.below(6);  // 8 .. 256 instructions
        f.duty_active = 1 + rng.below(f.duty_period / 2);
        break;
      case FaultModelKind::Burst: {
        const unsigned len = 2 + unsigned(rng.below(3));  // 2..4 adjacent bits
        const unsigned start = unsigned(rng.below(width >= len ? width - len + 1 : 1));
        f.behavior = FaultBehavior::Burst;
        f.operand = Fault::burst_operand(start, len);
        break;
      }
      case FaultModelKind::Attack:
        break;  // handled above
    }
    faults.push_back(f);
  }
  return faults;
}

}  // namespace gemfi::fi
