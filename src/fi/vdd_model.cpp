#include "fi/vdd_model.hpp"

#include <cmath>

namespace gemfi::fi {

double VddModel::error_rate(double vdd) const noexcept {
  if (vdd >= cfg_.vnom) return 0.0;
  const double span = cfg_.vnom - cfg_.vmin;
  const double x = span <= 0.0 ? 0.0 : (vdd - cfg_.vmin) / span;
  return cfg_.rate_at_vmin * std::exp(-cfg_.beta * x);
}

double VddModel::relative_power(double vdd) const noexcept {
  return (vdd * vdd) / (cfg_.vnom * cfg_.vnom);
}

std::vector<Fault> VddModel::sample_faults(util::Rng& rng, double vdd,
                                           std::uint64_t kernel_insts) const {
  const double lambda = error_rate(vdd) * double(kernel_insts);
  // Knuth Poisson sampling; lambda stays small (<= tens) for any sane sweep.
  std::size_t count = 0;
  if (lambda > 0.0) {
    const double limit = std::exp(-lambda);
    double p = 1.0;
    for (;;) {
      p *= rng.uniform();
      if (p <= limit) break;
      ++count;
      if (count > 10000) break;  // defensive cap for absurd configurations
    }
  }

  std::vector<Fault> faults;
  faults.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Fault f;
    f.thread_id = 0;
    f.core = 0;
    f.occurrences = 1;
    f.time_kind = FaultTimeKind::Instruction;
    f.time = 1 + rng.below(kernel_insts);
    f.behavior = FaultBehavior::Flip;
    switch (static_cast<FaultLocation>(rng.below(kNumFaultLocations))) {
      case FaultLocation::IntReg:
        f.location = FaultLocation::IntReg;
        f.reg = unsigned(rng.below(32));
        f.operand = rng.below(64);
        break;
      case FaultLocation::FpReg:
        f.location = FaultLocation::FpReg;
        f.reg = unsigned(rng.below(32));
        f.operand = rng.below(64);
        break;
      case FaultLocation::Fetch:
        f.location = FaultLocation::Fetch;
        f.operand = rng.below(32);
        break;
      case FaultLocation::Decode:
        f.location = FaultLocation::Decode;
        f.decode_field = static_cast<DecodeField>(rng.below(3));
        f.operand = rng.below(5);
        break;
      case FaultLocation::Execute:
        f.location = FaultLocation::Execute;
        f.operand = rng.below(64);
        break;
      case FaultLocation::LoadStore:
        f.location = FaultLocation::LoadStore;
        f.operand = rng.below(64);
        break;
      case FaultLocation::PC:
        f.location = FaultLocation::PC;
        f.operand = rng.below(64);
        break;
    }
    faults.push_back(f);
  }
  return faults;
}

}  // namespace gemfi::fi
