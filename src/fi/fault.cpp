#include "fi/fault.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace gemfi::fi {

const char* fault_location_name(FaultLocation l) noexcept {
  switch (l) {
    case FaultLocation::IntReg:
    case FaultLocation::FpReg: return "RegisterInjectedFault";
    case FaultLocation::Fetch: return "FetchStageInjectedFault";
    case FaultLocation::Decode: return "DecodeStageInjectedFault";
    case FaultLocation::Execute: return "ExecutionStageInjectedFault";
    case FaultLocation::LoadStore: return "LoadStoreInjectedFault";
    case FaultLocation::PC: return "PCInjectedFault";
    case FaultLocation::Skip: return "SkipInjectedFault";
    case FaultLocation::Opcode: return "OpcodeInjectedFault";
  }
  return "?";
}

const char* fault_behavior_name(FaultBehavior b) noexcept {
  switch (b) {
    case FaultBehavior::Flip: return "Flip";
    case FaultBehavior::Xor: return "Xor";
    case FaultBehavior::Imm: return "Imm";
    case FaultBehavior::AllZero: return "AllZero";
    case FaultBehavior::AllOne: return "AllOne";
    case FaultBehavior::StuckZero: return "StuckAt0";
    case FaultBehavior::StuckOne: return "StuckAt1";
    case FaultBehavior::Burst: return "Burst";
    case FaultBehavior::RandK: return "RandK";
  }
  return "?";
}

const char* fault_model_kind_name(FaultModelKind k) noexcept {
  switch (k) {
    case FaultModelKind::Transient: return "transient";
    case FaultModelKind::StuckAt: return "stuck-at";
    case FaultModelKind::Intermittent: return "intermittent";
    case FaultModelKind::Burst: return "burst";
    case FaultModelKind::Attack: return "attack";
  }
  return "?";
}

unsigned fault_target_width(FaultLocation l) noexcept {
  switch (l) {
    case FaultLocation::IntReg:
    case FaultLocation::FpReg:
    case FaultLocation::Execute:
    case FaultLocation::LoadStore:
    case FaultLocation::PC: return 64;
    case FaultLocation::Fetch:
    case FaultLocation::Skip: return 32;  // the fetched instruction word
    case FaultLocation::Decode: return 5;  // a register-selection field
    case FaultLocation::Opcode: return 6;  // the opcode field [31:26]
  }
  return 64;
}

namespace {

/// Contiguous flip mask for Burst: `len` bits starting at `start`, clamped
/// into [0, width) so every shift stays well-defined for any operand.
std::uint64_t burst_mask(std::uint64_t operand, unsigned width) noexcept {
  if (width == 0) return 0;
  const unsigned start = unsigned(operand & 0xff) % width;
  unsigned len = unsigned((operand >> 8) & 0xff);
  if (len > width - start) len = width - start;
  if (len == 0) return 0;
  const std::uint64_t run = len >= 64 ? ~0ull : (1ull << len) - 1;
  return run << start;
}

/// k distinct pseudo-random bit positions in [0, width), derived only from
/// the operand's seed field — deterministic across runs and replay.
std::uint64_t randk_mask(std::uint64_t operand, unsigned width) noexcept {
  if (width == 0) return 0;
  unsigned k = unsigned(operand & 0xff);
  if (k > width) k = width;
  std::uint64_t seed = operand >> 8;
  std::uint64_t mask = 0;
  unsigned set = 0;
  for (unsigned guard = 0; set < k && guard < 1024; ++guard) {
    const unsigned pos = unsigned(util::splitmix64(seed) % width);
    if (((mask >> pos) & 1ull) == 0) {
      mask |= 1ull << pos;
      ++set;
    }
  }
  return mask;
}

}  // namespace

std::uint64_t Fault::corrupt(std::uint64_t value, unsigned width) const noexcept {
  const std::uint64_t mask = width >= 64 ? ~0ull : (1ull << width) - 1;
  std::uint64_t v = value & mask;
  switch (behavior) {
    case FaultBehavior::Flip: v = util::flip_bit(v, unsigned(operand % width)); break;
    case FaultBehavior::Xor: v ^= operand; break;
    case FaultBehavior::Imm: v = operand; break;
    case FaultBehavior::AllZero: v = 0; break;
    case FaultBehavior::AllOne: v = ~0ull; break;
    case FaultBehavior::StuckZero: v &= ~operand; break;
    case FaultBehavior::StuckOne: v |= operand; break;
    case FaultBehavior::Burst: v ^= burst_mask(operand, width); break;
    case FaultBehavior::RandK: v ^= randk_mask(operand, width); break;
  }
  return v & mask;
}

std::string Fault::to_line() const {
  char t[64];
  std::string behavior_tok;
  switch (behavior) {
    case FaultBehavior::Flip: behavior_tok = "Flip:" + std::to_string(operand); break;
    case FaultBehavior::Xor:
      std::snprintf(t, sizeof t, "Xor:0x%" PRIx64, operand);
      behavior_tok = t;
      break;
    case FaultBehavior::Imm:
      std::snprintf(t, sizeof t, "Imm:0x%" PRIx64, operand);
      behavior_tok = t;
      break;
    case FaultBehavior::AllZero: behavior_tok = "AllZero"; break;
    case FaultBehavior::AllOne: behavior_tok = "AllOne"; break;
    case FaultBehavior::StuckZero:
      std::snprintf(t, sizeof t, "StuckAt0:0x%" PRIx64, operand);
      behavior_tok = t;
      break;
    case FaultBehavior::StuckOne:
      std::snprintf(t, sizeof t, "StuckAt1:0x%" PRIx64, operand);
      behavior_tok = t;
      break;
    case FaultBehavior::Burst:
      std::snprintf(t, sizeof t, "Burst:%u+%u", unsigned(operand & 0xff),
                    unsigned((operand >> 8) & 0xff));
      behavior_tok = t;
      break;
    case FaultBehavior::RandK:
      std::snprintf(t, sizeof t, "RandK:%u@0x%" PRIx64, unsigned(operand & 0xff),
                    operand >> 8);
      behavior_tok = t;
      break;
  }
  // A skipped instruction has no value to corrupt: Skip carries no behavior.
  if (location == FaultLocation::Skip) behavior_tok.clear();

  const std::string occ_tok =
      occurrences == kPermanent ? "occ:perm" : "occ:" + std::to_string(occurrences);
  std::string suffix;
  if (location == FaultLocation::IntReg) suffix = " int " + std::to_string(reg);
  if (location == FaultLocation::FpReg) suffix = " float " + std::to_string(reg);
  if (location == FaultLocation::Decode) {
    static const char* kFields[] = {"ra", "rb", "rc"};
    suffix = std::string(" field ") + kFields[unsigned(decode_field)];
  }
  if (duty_period != 0) {
    std::snprintf(t, sizeof t, " duty:%" PRIu64 "/%" PRIu64, duty_active, duty_period);
    suffix += t;
  }
  if (pc_hi != 0) {
    std::snprintf(t, sizeof t, " pcwin:0x%" PRIx64 "-0x%" PRIx64, pc_lo, pc_hi);
    suffix += t;
  }

  char buf[256];
  std::snprintf(buf, sizeof buf, "%s %s:%" PRIu64 "%s%s Threadid:%d system.cpu%u %s%s",
                fault_location_name(location),
                time_kind == FaultTimeKind::Instruction ? "Inst" : "Tick", time,
                behavior_tok.empty() ? "" : " ", behavior_tok.c_str(), thread_id, core,
                occ_tok.c_str(), suffix.c_str());
  return buf;
}

namespace {

[[noreturn]] void bad(const std::string& line, const std::string& why) {
  throw std::invalid_argument("malformed fault line: " + why + " in \"" + line + "\"");
}

std::uint64_t parse_u64(const std::string& line, const std::string& tok) {
  try {
    return std::stoull(tok, nullptr, 0);  // accepts decimal and 0x...
  } catch (const std::exception&) {
    bad(line, "bad number '" + tok + "'");
  }
}

}  // namespace

Fault parse_fault(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> toks;
  for (std::string t; in >> t;) toks.push_back(t);
  if (toks.empty()) bad(line, "empty line");

  Fault f;
  const std::string& type = toks[0];
  if (type == "RegisterInjectedFault") {
    f.location = FaultLocation::IntReg;  // refined by the trailing "int/float N"
  } else if (type == "PCInjectedFault") {
    f.location = FaultLocation::PC;
  } else if (type == "FetchStageInjectedFault") {
    f.location = FaultLocation::Fetch;
  } else if (type == "DecodeStageInjectedFault") {
    f.location = FaultLocation::Decode;
  } else if (type == "ExecutionStageInjectedFault") {
    f.location = FaultLocation::Execute;
  } else if (type == "LoadStoreInjectedFault") {
    f.location = FaultLocation::LoadStore;
  } else if (type == "SkipInjectedFault") {
    f.location = FaultLocation::Skip;
  } else if (type == "OpcodeInjectedFault") {
    f.location = FaultLocation::Opcode;
  } else {
    bad(line, "unknown fault type '" + type + "'");
  }
  const bool fetch_path = f.location == FaultLocation::Fetch ||
                          f.location == FaultLocation::Skip ||
                          f.location == FaultLocation::Opcode;

  bool have_time = false;
  bool have_behavior = false;
  bool have_reg = false;

  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    const auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= toks.size()) bad(line, std::string("missing operand after '") + what + "'");
      return toks[++i];
    };
    if (t.rfind("Inst:", 0) == 0) {
      f.time_kind = FaultTimeKind::Instruction;
      f.time = parse_u64(line, t.substr(5));
      have_time = true;
    } else if (t.rfind("Tick:", 0) == 0) {
      f.time_kind = FaultTimeKind::Tick;
      f.time = parse_u64(line, t.substr(5));
      have_time = true;
    } else if (t.rfind("Flip:", 0) == 0) {
      f.behavior = FaultBehavior::Flip;
      f.operand = parse_u64(line, t.substr(5));
      have_behavior = true;
    } else if (t.rfind("Xor:", 0) == 0) {
      f.behavior = FaultBehavior::Xor;
      f.operand = parse_u64(line, t.substr(4));
      have_behavior = true;
    } else if (t.rfind("Imm:", 0) == 0) {
      f.behavior = FaultBehavior::Imm;
      f.operand = parse_u64(line, t.substr(4));
      have_behavior = true;
    } else if (t == "AllZero") {
      f.behavior = FaultBehavior::AllZero;
      have_behavior = true;
    } else if (t == "AllOne") {
      f.behavior = FaultBehavior::AllOne;
      have_behavior = true;
    } else if (t.rfind("StuckAt0:", 0) == 0) {
      f.behavior = FaultBehavior::StuckZero;
      f.operand = parse_u64(line, t.substr(9));
      have_behavior = true;
    } else if (t.rfind("StuckAt1:", 0) == 0) {
      f.behavior = FaultBehavior::StuckOne;
      f.operand = parse_u64(line, t.substr(9));
      have_behavior = true;
    } else if (t.rfind("Burst:", 0) == 0) {
      const std::string v = t.substr(6);
      const auto plus = v.find('+');
      if (plus == std::string::npos) bad(line, "Burst needs <start>+<len>");
      const std::uint64_t start = parse_u64(line, v.substr(0, plus));
      const std::uint64_t len = parse_u64(line, v.substr(plus + 1));
      if (start > 255 || len > 255) bad(line, "Burst start/len out of range");
      f.behavior = FaultBehavior::Burst;
      f.operand = Fault::burst_operand(unsigned(start), unsigned(len));
      have_behavior = true;
    } else if (t.rfind("RandK:", 0) == 0) {
      const std::string v = t.substr(6);
      const auto at = v.find('@');
      if (at == std::string::npos) bad(line, "RandK needs <k>@<seed>");
      const std::uint64_t k = parse_u64(line, v.substr(0, at));
      const std::uint64_t seed = parse_u64(line, v.substr(at + 1));
      if (k > 255) bad(line, "RandK k out of range");
      f.behavior = FaultBehavior::RandK;
      f.operand = Fault::randk_operand(unsigned(k), seed);
      have_behavior = true;
    } else if (t.rfind("duty:", 0) == 0) {
      const std::string v = t.substr(5);
      const auto slash = v.find('/');
      if (slash == std::string::npos) bad(line, "duty needs <active>/<period>");
      f.duty_active = parse_u64(line, v.substr(0, slash));
      f.duty_period = parse_u64(line, v.substr(slash + 1));
      if (f.duty_period == 0 || f.duty_active == 0 || f.duty_active > f.duty_period)
        bad(line, "duty needs 1 <= active <= period");
    } else if (t.rfind("pcwin:", 0) == 0) {
      if (!fetch_path) bad(line, "'pcwin' only valid for fetch-path faults");
      const std::string v = t.substr(6);
      const auto dash = v.find('-');
      if (dash == std::string::npos) bad(line, "pcwin needs 0x<lo>-0x<hi>");
      f.pc_lo = parse_u64(line, v.substr(0, dash));
      f.pc_hi = parse_u64(line, v.substr(dash + 1));
      if (f.pc_hi == 0 || f.pc_lo > f.pc_hi) bad(line, "pcwin needs lo <= hi, hi > 0");
    } else if (t.rfind("Threadid:", 0) == 0) {
      f.thread_id = int(parse_u64(line, t.substr(9)));
    } else if (t.rfind("system.cpu", 0) == 0) {
      f.core = unsigned(parse_u64(line, t.substr(10)));
    } else if (t.rfind("occ:", 0) == 0) {
      const std::string v = t.substr(4);
      f.occurrences = v == "perm" ? kPermanent : parse_u64(line, v);
      if (f.occurrences == 0) bad(line, "occ must be >= 1");
    } else if (t == "int") {
      if (type != "RegisterInjectedFault") bad(line, "'int' only valid for register faults");
      f.location = FaultLocation::IntReg;
      f.reg = unsigned(parse_u64(line, next("int")));
      if (f.reg >= 32) bad(line, "register index out of range");
      have_reg = true;
    } else if (t == "float") {
      if (type != "RegisterInjectedFault") bad(line, "'float' only valid for register faults");
      f.location = FaultLocation::FpReg;
      f.reg = unsigned(parse_u64(line, next("float")));
      if (f.reg >= 32) bad(line, "register index out of range");
      have_reg = true;
    } else if (t == "field") {
      if (type != "DecodeStageInjectedFault") bad(line, "'field' only valid for decode faults");
      const std::string& v = next("field");
      if (v == "ra") f.decode_field = DecodeField::Ra;
      else if (v == "rb") f.decode_field = DecodeField::Rb;
      else if (v == "rc") f.decode_field = DecodeField::Rc;
      else bad(line, "decode field must be ra|rb|rc");
    } else {
      bad(line, "unknown token '" + t + "'");
    }
  }

  if (!have_time) bad(line, "missing Inst:/Tick: time attribute");
  // Skip replaces the instruction wholesale; there is no value to corrupt,
  // so the behavior attribute is meaningless (and ignored when present).
  if (!have_behavior && f.location != FaultLocation::Skip)
    bad(line, "missing behavior attribute");
  if (f.location == FaultLocation::Skip) {
    f.behavior = FaultBehavior::Flip;
    f.operand = 0;
  }
  if (type == "RegisterInjectedFault" && !have_reg)
    bad(line, "register fault needs 'int N' or 'float N'");
  return f;
}

std::vector<Fault> parse_fault_file(const std::string& body) {
  std::vector<Fault> faults;
  std::istringstream in(body);
  for (std::string line; std::getline(in, line);) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    faults.push_back(parse_fault(line.substr(first)));
  }
  return faults;
}

}  // namespace gemfi::fi
