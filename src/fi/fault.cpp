#include "fi/fault.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/bits.hpp"

namespace gemfi::fi {

const char* fault_location_name(FaultLocation l) noexcept {
  switch (l) {
    case FaultLocation::IntReg:
    case FaultLocation::FpReg: return "RegisterInjectedFault";
    case FaultLocation::Fetch: return "FetchStageInjectedFault";
    case FaultLocation::Decode: return "DecodeStageInjectedFault";
    case FaultLocation::Execute: return "ExecutionStageInjectedFault";
    case FaultLocation::LoadStore: return "LoadStoreInjectedFault";
    case FaultLocation::PC: return "PCInjectedFault";
  }
  return "?";
}

const char* fault_behavior_name(FaultBehavior b) noexcept {
  switch (b) {
    case FaultBehavior::Flip: return "Flip";
    case FaultBehavior::Xor: return "Xor";
    case FaultBehavior::Imm: return "Imm";
    case FaultBehavior::AllZero: return "AllZero";
    case FaultBehavior::AllOne: return "AllOne";
  }
  return "?";
}

std::uint64_t Fault::corrupt(std::uint64_t value, unsigned width) const noexcept {
  const std::uint64_t mask = width >= 64 ? ~0ull : (1ull << width) - 1;
  std::uint64_t v = value & mask;
  switch (behavior) {
    case FaultBehavior::Flip: v = util::flip_bit(v, unsigned(operand % width)); break;
    case FaultBehavior::Xor: v ^= operand; break;
    case FaultBehavior::Imm: v = operand; break;
    case FaultBehavior::AllZero: v = 0; break;
    case FaultBehavior::AllOne: v = ~0ull; break;
  }
  return v & mask;
}

std::string Fault::to_line() const {
  char buf[256];
  std::string behavior_tok;
  switch (behavior) {
    case FaultBehavior::Flip: behavior_tok = "Flip:" + std::to_string(operand); break;
    case FaultBehavior::Xor: {
      char t[32];
      std::snprintf(t, sizeof t, "Xor:0x%" PRIx64, operand);
      behavior_tok = t;
      break;
    }
    case FaultBehavior::Imm: {
      char t[32];
      std::snprintf(t, sizeof t, "Imm:0x%" PRIx64, operand);
      behavior_tok = t;
      break;
    }
    case FaultBehavior::AllZero: behavior_tok = "AllZero"; break;
    case FaultBehavior::AllOne: behavior_tok = "AllOne"; break;
  }
  const std::string occ_tok =
      occurrences == kPermanent ? "occ:perm" : "occ:" + std::to_string(occurrences);
  std::string suffix;
  if (location == FaultLocation::IntReg) suffix = " int " + std::to_string(reg);
  if (location == FaultLocation::FpReg) suffix = " float " + std::to_string(reg);
  if (location == FaultLocation::Decode) {
    static const char* kFields[] = {"ra", "rb", "rc"};
    suffix = std::string(" field ") + kFields[unsigned(decode_field)];
  }
  std::snprintf(buf, sizeof buf, "%s %s:%" PRIu64 " %s Threadid:%d system.cpu%u %s%s",
                fault_location_name(location),
                time_kind == FaultTimeKind::Instruction ? "Inst" : "Tick", time,
                behavior_tok.c_str(), thread_id, core, occ_tok.c_str(), suffix.c_str());
  return buf;
}

namespace {

[[noreturn]] void bad(const std::string& line, const std::string& why) {
  throw std::invalid_argument("malformed fault line: " + why + " in \"" + line + "\"");
}

std::uint64_t parse_u64(const std::string& line, const std::string& tok) {
  try {
    return std::stoull(tok, nullptr, 0);  // accepts decimal and 0x...
  } catch (const std::exception&) {
    bad(line, "bad number '" + tok + "'");
  }
}

}  // namespace

Fault parse_fault(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> toks;
  for (std::string t; in >> t;) toks.push_back(t);
  if (toks.empty()) bad(line, "empty line");

  Fault f;
  const std::string& type = toks[0];
  if (type == "RegisterInjectedFault") {
    f.location = FaultLocation::IntReg;  // refined by the trailing "int/float N"
  } else if (type == "PCInjectedFault") {
    f.location = FaultLocation::PC;
  } else if (type == "FetchStageInjectedFault") {
    f.location = FaultLocation::Fetch;
  } else if (type == "DecodeStageInjectedFault") {
    f.location = FaultLocation::Decode;
  } else if (type == "ExecutionStageInjectedFault") {
    f.location = FaultLocation::Execute;
  } else if (type == "LoadStoreInjectedFault") {
    f.location = FaultLocation::LoadStore;
  } else {
    bad(line, "unknown fault type '" + type + "'");
  }

  bool have_time = false;
  bool have_behavior = false;
  bool have_reg = false;

  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    const auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= toks.size()) bad(line, std::string("missing operand after '") + what + "'");
      return toks[++i];
    };
    if (t.rfind("Inst:", 0) == 0) {
      f.time_kind = FaultTimeKind::Instruction;
      f.time = parse_u64(line, t.substr(5));
      have_time = true;
    } else if (t.rfind("Tick:", 0) == 0) {
      f.time_kind = FaultTimeKind::Tick;
      f.time = parse_u64(line, t.substr(5));
      have_time = true;
    } else if (t.rfind("Flip:", 0) == 0) {
      f.behavior = FaultBehavior::Flip;
      f.operand = parse_u64(line, t.substr(5));
      have_behavior = true;
    } else if (t.rfind("Xor:", 0) == 0) {
      f.behavior = FaultBehavior::Xor;
      f.operand = parse_u64(line, t.substr(4));
      have_behavior = true;
    } else if (t.rfind("Imm:", 0) == 0) {
      f.behavior = FaultBehavior::Imm;
      f.operand = parse_u64(line, t.substr(4));
      have_behavior = true;
    } else if (t == "AllZero") {
      f.behavior = FaultBehavior::AllZero;
      have_behavior = true;
    } else if (t == "AllOne") {
      f.behavior = FaultBehavior::AllOne;
      have_behavior = true;
    } else if (t.rfind("Threadid:", 0) == 0) {
      f.thread_id = int(parse_u64(line, t.substr(9)));
    } else if (t.rfind("system.cpu", 0) == 0) {
      f.core = unsigned(parse_u64(line, t.substr(10)));
    } else if (t.rfind("occ:", 0) == 0) {
      const std::string v = t.substr(4);
      f.occurrences = v == "perm" ? kPermanent : parse_u64(line, v);
      if (f.occurrences == 0) bad(line, "occ must be >= 1");
    } else if (t == "int") {
      if (type != "RegisterInjectedFault") bad(line, "'int' only valid for register faults");
      f.location = FaultLocation::IntReg;
      f.reg = unsigned(parse_u64(line, next("int")));
      if (f.reg >= 32) bad(line, "register index out of range");
      have_reg = true;
    } else if (t == "float") {
      if (type != "RegisterInjectedFault") bad(line, "'float' only valid for register faults");
      f.location = FaultLocation::FpReg;
      f.reg = unsigned(parse_u64(line, next("float")));
      if (f.reg >= 32) bad(line, "register index out of range");
      have_reg = true;
    } else if (t == "field") {
      if (type != "DecodeStageInjectedFault") bad(line, "'field' only valid for decode faults");
      const std::string& v = next("field");
      if (v == "ra") f.decode_field = DecodeField::Ra;
      else if (v == "rb") f.decode_field = DecodeField::Rb;
      else if (v == "rc") f.decode_field = DecodeField::Rc;
      else bad(line, "decode field must be ra|rb|rc");
    } else {
      bad(line, "unknown token '" + t + "'");
    }
  }

  if (!have_time) bad(line, "missing Inst:/Tick: time attribute");
  if (!have_behavior) bad(line, "missing behavior attribute");
  if (type == "RegisterInjectedFault" && !have_reg)
    bad(line, "register fault needs 'int N' or 'float N'");
  return f;
}

std::vector<Fault> parse_fault_file(const std::string& body) {
  std::vector<Fault> faults;
  std::istringstream in(body);
  for (std::string line; std::getline(in, line);) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    faults.push_back(parse_fault(line.substr(first)));
  }
  return faults;
}

}  // namespace gemfi::fi
