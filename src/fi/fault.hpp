// Fault descriptions: the four attributes of Sec. III-A —
// Location, Thread, Time, Behavior — plus the occurrence count that models
// transient (occ:1), intermittent (occ:N) and permanent (occ:perm) faults.
//
// Faults are normally supplied in an input file whose line format follows
// the paper's Listing 1, e.g.
//
//   RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1
//   FetchStageInjectedFault Tick:10000 Xor:0xff00 Threadid:0 system.cpu0 occ:1
//   DecodeStageInjectedFault Inst:93 Flip:2 Threadid:0 system.cpu0 occ:1 field rb
//   ExecutionStageInjectedFault Inst:400 AllOne Threadid:0 system.cpu0 occ:3
//   LoadStoreInjectedFault Inst:77 Flip:31 Threadid:0 system.cpu0 occ:1
//   PCInjectedFault Inst:1200 Flip:4 Threadid:0 system.cpu0 occ:1
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gemfi::fi {

/// Micro-architectural fault location (paper Sec. III-A-1 / Fig. 1).
enum class FaultLocation : std::uint8_t {
  IntReg,     // integer register file
  FpReg,      // floating-point register file
  Fetch,      // the fetched instruction word
  Decode,     // register selection during decode
  Execute,    // result / effective address at the execution stage
  LoadStore,  // data value of a memory transaction
  PC,         // program counter
};
inline constexpr unsigned kNumFaultLocations = 7;

const char* fault_location_name(FaultLocation l) noexcept;

enum class FaultTimeKind : std::uint8_t {
  Instruction,  // Inst:N — relative fetched-instruction index (1-based)
  Tick,         // Tick:N — simulation ticks since fi_activate_inst()
};

/// How the targeted value is corrupted (Sec. III-A-4).
enum class FaultBehavior : std::uint8_t {
  Flip,     // flip bit `operand`
  Xor,      // XOR with mask `operand`
  Imm,      // overwrite with immediate `operand`
  AllZero,  // set every bit to 0
  AllOne,   // set every bit to 1
};

const char* fault_behavior_name(FaultBehavior b) noexcept;

/// Decode-stage sub-target: which register-selection field is corrupted.
enum class DecodeField : std::uint8_t { Ra = 0, Rb = 1, Rc = 2 };

inline constexpr std::uint64_t kPermanent = ~0ull;

struct Fault {
  FaultLocation location = FaultLocation::IntReg;
  unsigned reg = 0;                         // register index (IntReg/FpReg)
  DecodeField decode_field = DecodeField::Ra;
  int thread_id = 0;                        // id passed to fi_activate_inst()
  unsigned core = 0;                        // system.cpuN
  FaultTimeKind time_kind = FaultTimeKind::Instruction;
  std::uint64_t time = 0;
  FaultBehavior behavior = FaultBehavior::Flip;
  std::uint64_t operand = 0;                // bit index / mask / immediate
  std::uint64_t occurrences = 1;            // kPermanent = until program end

  /// Apply the behavior to a value of `width` bits.
  [[nodiscard]] std::uint64_t corrupt(std::uint64_t value, unsigned width) const noexcept;

  /// Render in the input-file format (round-trips through parse_fault).
  [[nodiscard]] std::string to_line() const;
};

/// Parse one input-file line. Throws std::invalid_argument with a
/// descriptive message on malformed input. Blank lines and lines starting
/// with '#' are rejected here; parse_fault_file() skips them.
Fault parse_fault(const std::string& line);

/// Parse a whole fault-configuration file body (the file GemFI receives on
/// its command line). Skips blank lines and '#' comments.
std::vector<Fault> parse_fault_file(const std::string& body);

}  // namespace gemfi::fi
