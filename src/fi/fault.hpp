// Fault descriptions: the four attributes of Sec. III-A —
// Location, Thread, Time, Behavior — plus the occurrence count that models
// transient (occ:1), intermittent (occ:N) and permanent (occ:perm) faults.
//
// Faults are normally supplied in an input file whose line format follows
// the paper's Listing 1, e.g.
//
//   RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1
//   FetchStageInjectedFault Tick:10000 Xor:0xff00 Threadid:0 system.cpu0 occ:1
//   DecodeStageInjectedFault Inst:93 Flip:2 Threadid:0 system.cpu0 occ:1 field rb
//   ExecutionStageInjectedFault Inst:400 AllOne Threadid:0 system.cpu0 occ:3
//   LoadStoreInjectedFault Inst:77 Flip:31 Threadid:0 system.cpu0 occ:1
//   PCInjectedFault Inst:1200 Flip:4 Threadid:0 system.cpu0 occ:1
//
// Beyond the paper's transient bit flips, the grammar covers the fault
// models of the successor tools (CHAOS-style stuck-at/intermittent faults,
// InjectV-style attacks):
//
//   RegisterInjectedFault Inst:100 StuckAt1:0x200000 Threadid:0 system.cpu0 occ:perm int 1
//   FetchStageInjectedFault Inst:50 Burst:4+3 Threadid:0 system.cpu0 occ:1
//   RegisterInjectedFault Inst:10 RandK:3@0x1234 Threadid:0 system.cpu0 occ:1 int 5
//   RegisterInjectedFault Inst:10 Flip:21 Threadid:0 system.cpu0 occ:perm int 1 duty:2/16
//   SkipInjectedFault Inst:500 Threadid:0 system.cpu0 occ:3
//   OpcodeInjectedFault Inst:1 Xor:0x3f Threadid:0 system.cpu0 occ:1 pcwin:0x2000-0x2040
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gemfi::fi {

/// Micro-architectural fault location (paper Sec. III-A-1 / Fig. 1). The
/// first seven are the paper's SEU-prone structures; Skip and Opcode model
/// deliberate InjectV-style attacks on the fetch path and are excluded from
/// uniform SEU sampling.
enum class FaultLocation : std::uint8_t {
  IntReg,     // integer register file
  FpReg,      // floating-point register file
  Fetch,      // the fetched instruction word
  Decode,     // register selection during decode
  Execute,    // result / effective address at the execution stage
  LoadStore,  // data value of a memory transaction
  PC,         // program counter
  Skip,       // attack: fetched instruction replaced with a NOP
  Opcode,     // attack: the opcode field [31:26] of the fetched word
};
inline constexpr unsigned kNumSeuFaultLocations = 7;  // SEU-samplable prefix
inline constexpr unsigned kNumFaultLocations = 9;

const char* fault_location_name(FaultLocation l) noexcept;

enum class FaultTimeKind : std::uint8_t {
  Instruction,  // Inst:N — relative fetched-instruction index (1-based)
  Tick,         // Tick:N — simulation ticks since fi_activate_inst()
};

/// How the targeted value is corrupted (Sec. III-A-4), extended with
/// stuck-at masks and multi-bit bursts.
enum class FaultBehavior : std::uint8_t {
  Flip,       // flip bit `operand`
  Xor,        // XOR with mask `operand`
  Imm,        // overwrite with immediate `operand`
  AllZero,    // set every bit to 0
  AllOne,     // set every bit to 1
  StuckZero,  // force the bits in mask `operand` to 0 (stuck-at-0)
  StuckOne,   // force the bits in mask `operand` to 1 (stuck-at-1)
  Burst,      // flip a contiguous run: operand = start | (length << 8)
  RandK,      // flip k pseudo-random bits: operand = k | (seed << 8)
};
inline constexpr unsigned kNumFaultBehaviors = 9;

const char* fault_behavior_name(FaultBehavior b) noexcept;

/// Families of the extended fault models: how a sampled fault presents over
/// time, orthogonal to where it lands. Used by the reliability model and
/// campaign/bench parameterization.
enum class FaultModelKind : std::uint8_t {
  Transient,     // single upset, occ:1 (the paper's SEU)
  StuckAt,       // permanent stuck-at-0/1 bit, re-asserted until the end
  Intermittent,  // duty-cycled upset with active/inactive windows
  Burst,         // one multi-bit corruption (contiguous or random-k)
  Attack,        // deliberate instruction skip / opcode corruption
};
inline constexpr unsigned kNumFaultModelKinds = 5;
const char* fault_model_kind_name(FaultModelKind k) noexcept;

/// Bit width of the value a fault at location `l` corrupts.
unsigned fault_target_width(FaultLocation l) noexcept;

/// Decode-stage sub-target: which register-selection field is corrupted.
enum class DecodeField : std::uint8_t { Ra = 0, Rb = 1, Rc = 2 };

inline constexpr std::uint64_t kPermanent = ~0ull;

struct Fault {
  FaultLocation location = FaultLocation::IntReg;
  unsigned reg = 0;                         // register index (IntReg/FpReg)
  DecodeField decode_field = DecodeField::Ra;
  int thread_id = 0;                        // id passed to fi_activate_inst()
  unsigned core = 0;                        // system.cpuN
  FaultTimeKind time_kind = FaultTimeKind::Instruction;
  std::uint64_t time = 0;
  FaultBehavior behavior = FaultBehavior::Flip;
  std::uint64_t operand = 0;                // bit index / mask / immediate
  std::uint64_t occurrences = 1;            // kPermanent = until program end

  /// Intermittent duty cycling ("duty:A/P"): once triggered, the fault is
  /// active only while (phase % duty_period) < duty_active, where the phase
  /// index is the per-thread fetched-instruction counter — deterministic
  /// under --replay. duty_period == 0 means always active (the default).
  std::uint64_t duty_period = 0;
  std::uint64_t duty_active = 0;

  /// Attack PC window ("pcwin:0xLO-0xHI"): fetch-path faults (Fetch, Skip,
  /// Opcode) fire only while pc_lo <= pc <= pc_hi. pc_hi == 0 disables the
  /// window (the default).
  std::uint64_t pc_lo = 0;
  std::uint64_t pc_hi = 0;

  [[nodiscard]] bool duty_cycled() const noexcept { return duty_period != 0; }
  [[nodiscard]] bool duty_on(std::uint64_t phase) const noexcept {
    return duty_period == 0 || phase % duty_period < duty_active;
  }
  [[nodiscard]] bool has_pc_window() const noexcept { return pc_hi != 0; }
  [[nodiscard]] bool pc_in_window(std::uint64_t pc) const noexcept {
    return pc_hi == 0 || (pc >= pc_lo && pc <= pc_hi);
  }

  /// Sticky behaviors model a persistent defect: idempotent under
  /// re-application, so the manager re-asserts them on every boundary while
  /// the fault is live instead of marking them per instruction.
  [[nodiscard]] static constexpr bool sticky_behavior(FaultBehavior b) noexcept {
    return b == FaultBehavior::Imm || b == FaultBehavior::AllZero ||
           b == FaultBehavior::AllOne || b == FaultBehavior::StuckZero ||
           b == FaultBehavior::StuckOne;
  }

  /// Operand encodings for the multi-bit behaviors (start/len/k <= 255).
  [[nodiscard]] static constexpr std::uint64_t burst_operand(unsigned start,
                                                             unsigned len) noexcept {
    return (start & 0xffu) | (std::uint64_t(len & 0xffu) << 8);
  }
  [[nodiscard]] static constexpr std::uint64_t randk_operand(unsigned k,
                                                             std::uint64_t seed) noexcept {
    return (k & 0xffu) | (seed << 8);
  }

  /// Apply the behavior to a value of `width` bits.
  [[nodiscard]] std::uint64_t corrupt(std::uint64_t value, unsigned width) const noexcept;

  /// Render in the input-file format (round-trips through parse_fault).
  [[nodiscard]] std::string to_line() const;
};

/// Parse one input-file line. Throws std::invalid_argument with a
/// descriptive message on malformed input. Blank lines and lines starting
/// with '#' are rejected here; parse_fault_file() skips them.
Fault parse_fault(const std::string& line);

/// Parse a whole fault-configuration file body (the file GemFI receives on
/// its command line). Skips blank lines and '#' comments.
std::vector<Fault> parse_fault_file(const std::string& body);

}  // namespace gemfi::fi
