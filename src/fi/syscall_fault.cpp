#include "fi/syscall_fault.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace gemfi::fi {

namespace {

constexpr std::uint64_t kPpm = 1'000'000;

[[noreturn]] void bad(const std::string& line, const std::string& why) {
  throw std::invalid_argument("bad syscall plan '" + line + "': " + why);
}

/// Render a ppm value as a trimmed decimal fraction: 1000000 -> "1",
/// 500000 -> "0.5", 123456 -> "0.123456", 0 -> "0".
std::string ppm_to_frac(std::uint64_t ppm) {
  if (ppm == kPpm) return "1";
  if (ppm == 0) return "0";
  char buf[16];
  std::snprintf(buf, sizeof buf, "%06" PRIu64, ppm);
  std::string digits = buf;
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  return "0." + digits;
}

/// Parse a decimal fraction in [0, 1] with at most 6 fractional digits into
/// ppm — the exact inverse of ppm_to_frac(), so round-trips are byte-exact.
std::uint64_t frac_to_ppm(const std::string& line, const std::string& s) {
  if (s.empty() || s.find_first_not_of("0123456789.") != std::string::npos)
    bad(line, "malformed fraction '" + s + "'");
  const std::size_t dot = s.find('.');
  const std::string ip = dot == std::string::npos ? s : s.substr(0, dot);
  const std::string fp = dot == std::string::npos ? "" : s.substr(dot + 1);
  if (ip.empty() || fp.size() > 6 || s.find('.', dot + 1) != std::string::npos)
    bad(line, "malformed fraction '" + s + "'");
  const std::uint64_t whole = std::strtoull(ip.c_str(), nullptr, 10);
  std::uint64_t frac = 0;
  for (std::size_t i = 0; i < 6; ++i)
    frac = frac * 10 + (i < fp.size() ? std::uint64_t(fp[i] - '0') : 0);
  const std::uint64_t ppm = whole * kPpm + frac;
  if (ppm > kPpm) bad(line, "fraction '" + s + "' out of [0, 1]");
  return ppm;
}

std::uint64_t parse_u64(const std::string& line, const std::string& s, int base) {
  if (s.empty()) bad(line, "missing number");
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, base);
  if (end == nullptr || *end != '\0') bad(line, "malformed number '" + s + "'");
  return v;
}

/// Split "VALUE@0xSEED" (seed optional) for p:/corrupt: clauses.
void split_seed(const std::string& line, const std::string& s, std::string& value,
                std::uint64_t& seed) {
  const std::size_t at = s.find('@');
  value = s.substr(0, at);
  seed = 0;
  if (at != std::string::npos) {
    const std::string sd = s.substr(at + 1);
    if (sd.rfind("0x", 0) != 0) bad(line, "seed must be 0x-hex in '" + s + "'");
    seed = parse_u64(line, sd.substr(2), 16);
  }
}

}  // namespace

std::string SyscallFaultPlan::to_line() const {
  std::ostringstream os;
  os << (matches_any_syscall() ? "*" : os::sysno_name(target));
  if (idx_lo != 1 || idx_hi != ~0ull) {
    os << "@idx:" << idx_lo;
    if (idx_hi != idx_lo) os << "-" << idx_hi;
  }
  if (tid >= 0) os << " tid:" << tid;
  if (prob_ppm != kPpm) {
    os << " p:" << ppm_to_frac(prob_ppm);
    char buf[24];
    std::snprintf(buf, sizeof buf, "@0x%" PRIx64, prob_seed);
    os << buf;
  }
  if (has_errno) os << " errno:" << os::errno_name(errno_code);
  if (has_latency) os << " latency:" << latency_ticks;
  if (has_partial) os << " partial:" << ppm_to_frac(partial_ppm);
  if (has_corrupt) {
    os << " corrupt";
    if (corrupt_bits != 1 || corrupt_seed != 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, ":%u@0x%" PRIx64, unsigned(corrupt_bits),
                    corrupt_seed);
      os << buf;
    }
  }
  return os.str();
}

SyscallFaultPlan parse_syscall_plan(const std::string& line) {
  SyscallFaultPlan p;
  std::istringstream is(line);
  std::vector<std::string> toks;
  for (std::string t; is >> t;) toks.push_back(t);
  if (toks.empty()) bad(line, "empty");

  // Selector: <name|*>[@idx:LO[-HI]]
  std::string sel = toks[0];
  const std::size_t at = sel.find('@');
  if (at != std::string::npos) {
    const std::string window = sel.substr(at + 1);
    sel = sel.substr(0, at);
    if (window.rfind("idx:", 0) != 0) bad(line, "expected @idx:... in selector");
    const std::string range = window.substr(4);
    const std::size_t dash = range.find('-');
    p.idx_lo = parse_u64(line, range.substr(0, dash), 10);
    p.idx_hi = dash == std::string::npos ? p.idx_lo
                                         : parse_u64(line, range.substr(dash + 1), 10);
    if (p.idx_lo == 0 || p.idx_hi < p.idx_lo) bad(line, "bad call-index window");
  }
  if (sel != "*") {
    p.target = os::sysno_from_name(sel.c_str());
    if (p.target == os::Sysno::Invalid) bad(line, "unknown syscall '" + sel + "'");
  }

  bool have_behavior = false;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    if (t.rfind("tid:", 0) == 0) {
      p.tid = std::int64_t(parse_u64(line, t.substr(4), 10));
    } else if (t.rfind("p:", 0) == 0) {
      std::string frac;
      split_seed(line, t.substr(2), frac, p.prob_seed);
      p.prob_ppm = frac_to_ppm(line, frac);
    } else if (t.rfind("errno:", 0) == 0) {
      p.errno_code = os::errno_from_name(t.substr(6).c_str());
      if (p.errno_code == 0) bad(line, "unknown errno '" + t.substr(6) + "'");
      p.has_errno = true;
      have_behavior = true;
    } else if (t.rfind("latency:", 0) == 0) {
      p.latency_ticks = parse_u64(line, t.substr(8), 10);
      if (p.latency_ticks == 0) bad(line, "latency must be nonzero");
      p.has_latency = true;
      have_behavior = true;
    } else if (t.rfind("partial:", 0) == 0) {
      p.partial_ppm = frac_to_ppm(line, t.substr(8));
      p.has_partial = true;
      have_behavior = true;
    } else if (t == "corrupt" || t.rfind("corrupt:", 0) == 0) {
      if (t.size() > 8) {
        std::string k;
        split_seed(line, t.substr(8), k, p.corrupt_seed);
        const std::uint64_t bits = parse_u64(line, k, 10);
        if (bits == 0 || bits > 255) bad(line, "corrupt bit count out of [1, 255]");
        p.corrupt_bits = std::uint8_t(bits);
      }
      p.has_corrupt = true;
      have_behavior = true;
    } else {
      bad(line, "unknown clause '" + t + "'");
    }
  }
  if (!have_behavior) bad(line, "no behavior (errno:/latency:/partial:/corrupt)");
  return p;
}

std::uint64_t SyscallFaultInjector::total_applied() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t a : applied_) n += a;
  return n;
}

void SyscallFaultInjector::reset_applied() noexcept {
  for (std::uint64_t& a : applied_) a = 0;
}

os::SyscallInjection SyscallFaultInjector::decide(os::Sysno s, std::uint64_t call_index,
                                                  std::uint64_t tid) {
  os::SyscallInjection inj;
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    const SyscallFaultPlan& p = plans_[i];
    if (!p.matches_any_syscall() && p.target != s) continue;
    if (call_index < p.idx_lo || call_index > p.idx_hi) continue;
    if (p.tid >= 0 && std::uint64_t(p.tid) != tid) continue;
    if (p.prob_ppm == 0) continue;
    if (p.prob_ppm < kPpm) {
      // Pure hash of (seed, syscall, thread, call index): replay-stable and
      // independent of evaluation order across plans.
      std::uint64_t key = p.prob_seed ^ (std::uint64_t(s) << 48) ^ (tid << 32) ^
                          call_index;
      if (util::splitmix64(key) % kPpm >= p.prob_ppm) continue;
    }
    ++applied_[i];
    inj.fired = true;
    if (p.has_errno && inj.force_errno == 0) inj.force_errno = p.errno_code;
    if (p.has_latency && p.latency_ticks > inj.latency) inj.latency = p.latency_ticks;
    if (p.has_partial && !inj.has_partial) {
      inj.has_partial = true;
      inj.partial_ppm = p.partial_ppm;
    }
    if (p.has_corrupt && inj.corrupt_bits == 0) {
      inj.corrupt_bits = p.corrupt_bits;
      inj.corrupt_seed = p.corrupt_seed;
    }
  }
  return inj;
}

}  // namespace gemfi::fi
