// Syscall fault plans: the OS-level half of the fault-spec grammar.
//
// Where the architectural grammar (fault.hpp) describes bit-level upsets,
// a syscall plan describes a software fault injected at the kernel boundary
// — the kretprobes idea: pick calls by metadata (syscall name, per-thread
// call-index window, thread id, firing probability) and fail them with a
// forced errno, extra latency, a short read/write or a corrupted buffer.
// One line per plan:
//
//   write@idx:3 errno:EIO
//   read@idx:2-5 tid:0 partial:0.5
//   * p:0.01@0x1234 latency:2000
//   recv corrupt:3@0xbeef
//   write@idx:4 latency:500 partial:0.25
//
// to_line() renders the canonical form and round-trips byte-exactly through
// parse_syscall_plan(); firing decisions are pure hashes of
// (plan seed, syscall, thread, call index), so a campaign --replay re-fires
// exactly the same calls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "os/syscall.hpp"

namespace gemfi::fi {

struct SyscallFaultPlan {
  os::Sysno target = os::Sysno::Invalid;  // Invalid == any syscall ("*")
  std::uint64_t idx_lo = 1;               // 1-based per-(thread,syscall) window
  std::uint64_t idx_hi = ~0ull;
  std::int64_t tid = -1;                  // -1 == any thread
  std::uint64_t prob_ppm = 1'000'000;     // firing probability, parts-per-million
  std::uint64_t prob_seed = 0;

  bool has_errno = false;
  std::uint16_t errno_code = 0;
  bool has_latency = false;
  std::uint64_t latency_ticks = 0;
  bool has_partial = false;
  std::uint64_t partial_ppm = 0;          // transfer length scale, ppm
  bool has_corrupt = false;
  std::uint8_t corrupt_bits = 1;
  std::uint64_t corrupt_seed = 0;

  [[nodiscard]] bool matches_any_syscall() const noexcept {
    return target == os::Sysno::Invalid;
  }
  /// Would the injected errno be one the real call could return? (Plans
  /// matching any syscall are judged per call site by the classifier.)
  [[nodiscard]] bool realistic_for(os::Sysno s) const noexcept {
    return !has_errno || os::errno_realistic(s, errno_code);
  }

  /// Canonical one-line rendering; parse_syscall_plan() round-trips it
  /// byte-exactly.
  [[nodiscard]] std::string to_line() const;
};

/// Parse one plan line. Throws std::invalid_argument with a descriptive
/// message on malformed input (unknown syscall or errno name, empty
/// behavior list, fraction out of [0,1], ...).
SyscallFaultPlan parse_syscall_plan(const std::string& line);

/// Deterministic, stateless-per-call injector. decide() is evaluated exactly
/// once per logical syscall (the OS layer's call-index contract) and the
/// result is a pure function of (plans, syscall, thread, call index) — no
/// hidden RNG state, so replays and checkpoint restarts can never skew.
class SyscallFaultInjector {
 public:
  void add_plan(const SyscallFaultPlan& p) {
    plans_.push_back(p);
    applied_.push_back(0);
  }
  void clear() {
    plans_.clear();
    applied_.clear();
  }
  [[nodiscard]] bool empty() const noexcept { return plans_.empty(); }
  [[nodiscard]] const std::vector<SyscallFaultPlan>& plans() const noexcept {
    return plans_;
  }
  /// Per-plan count of calls the plan fired on.
  [[nodiscard]] const std::vector<std::uint64_t>& applied() const noexcept {
    return applied_;
  }
  [[nodiscard]] std::uint64_t total_applied() const noexcept;
  /// Re-arm for a fresh experiment (plans kept, counters cleared).
  void reset_applied() noexcept;

  /// Resolve the combined injection for one logical call. Matching plans
  /// all contribute: the first forced errno wins, latencies take the max,
  /// the first partial/corrupt clause applies.
  os::SyscallInjection decide(os::Sysno s, std::uint64_t call_index, std::uint64_t tid);

 private:
  std::vector<SyscallFaultPlan> plans_;
  std::vector<std::uint64_t> applied_;
};

}  // namespace gemfi::fi
