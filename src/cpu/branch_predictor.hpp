// Tournament branch predictor (local + gshare + chooser), plus a BTB and a
// return-address stack — the "tournament branch predictor" of the paper's
// validation platform (Sec. IV), modeled after the Alpha 21264 scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytesio.hpp"

namespace gemfi::cpu {

struct PredictorConfig {
  std::uint32_t local_entries = 1024;   // local history table + counters
  std::uint32_t local_hist_bits = 10;
  std::uint32_t global_entries = 4096;  // gshare counters (2^12)
  std::uint32_t chooser_entries = 4096;
  std::uint32_t btb_entries = 512;
  std::uint32_t ras_entries = 16;
};

struct Prediction {
  bool taken = false;
  std::uint64_t target = 0;  // valid only when btb_hit
  bool btb_hit = false;
};

struct PredictorStats {
  std::uint64_t lookups = 0;
  std::uint64_t mispredicts = 0;
};

class TournamentPredictor {
 public:
  explicit TournamentPredictor(const PredictorConfig& cfg = {});

  /// Direction + target prediction for a (conditional or not) branch at pc.
  Prediction predict(std::uint64_t pc);

  /// Train with the actual outcome. `mispredicted` updates stats.
  void update(std::uint64_t pc, bool taken, std::uint64_t target, bool mispredicted);

  // Return-address stack (used for BSR/JSR vs RET).
  void ras_push(std::uint64_t return_addr);
  std::uint64_t ras_pop();  // 0 when empty

  [[nodiscard]] const PredictorStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

 private:
  struct BtbEntry {
    std::uint64_t tag = 0;
    std::uint64_t target = 0;
    bool valid = false;
  };

  [[nodiscard]] std::uint32_t local_index(std::uint64_t pc) const noexcept;
  [[nodiscard]] std::uint32_t global_index() const noexcept;

  PredictorConfig cfg_;
  std::vector<std::uint16_t> local_hist_;
  std::vector<std::uint8_t> local_ctr_;    // 3-bit saturating
  std::vector<std::uint8_t> global_ctr_;   // 2-bit saturating
  std::vector<std::uint8_t> chooser_ctr_;  // 2-bit: >=2 favors global
  std::vector<BtbEntry> btb_;
  std::vector<std::uint64_t> ras_;
  std::uint32_t ras_top_ = 0;  // number of valid entries (wraps)
  std::uint64_t ghist_ = 0;
  PredictorStats stats_;
};

}  // namespace gemfi::cpu
