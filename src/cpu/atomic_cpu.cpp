#include "cpu/atomic_cpu.hpp"

namespace gemfi::cpu {

namespace {
/// Null hooks used when fault injection is compiled out of the run
/// (the vanilla-gem5 baseline configuration of Fig. 7).
class NullHooks final : public StageHooks {
 public:
  FetchResult on_fetch(std::uint64_t, std::uint32_t word) override { return {word, 0}; }
  void on_decode(isa::Decoded&, std::uint64_t, std::uint64_t) override {}
  void on_execute(ExecOut&, const isa::Decoded&, std::uint64_t, std::uint64_t) override {}
  std::uint64_t on_load(std::uint64_t, std::uint64_t raw, unsigned, std::uint64_t) override {
    return raw;
  }
  std::uint64_t on_store(std::uint64_t, std::uint64_t raw, unsigned, std::uint64_t) override {
    return raw;
  }
  void on_commit(const isa::Decoded&, std::uint64_t, std::uint64_t) override {}
  void on_squash(std::uint64_t) override {}
};
NullHooks g_null_hooks;

/// Adapts StageHooks to the MemHooks consumed by do_mem().
class MemHookAdapter final : public MemHooks {
 public:
  MemHookAdapter(StageHooks& hooks, std::uint64_t fi_seq) : hooks_(hooks), fi_seq_(fi_seq) {}
  std::uint64_t on_load(std::uint64_t addr, std::uint64_t raw, unsigned bytes) override {
    return hooks_.on_load(addr, raw, bytes, fi_seq_);
  }
  std::uint64_t on_store(std::uint64_t addr, std::uint64_t raw, unsigned bytes) override {
    return hooks_.on_store(addr, raw, bytes, fi_seq_);
  }

 private:
  StageHooks& hooks_;
  std::uint64_t fi_seq_;
};
}  // namespace

CommitEvent SimpleCpu::step_one() {
  StageHooks& hooks = hooks_ != nullptr ? *hooks_ : g_null_hooks;
  CommitEvent ev;
  ev.pc = arch_.pc();

  // --- fetch ---
  std::uint32_t word = 0;
  const mem::AccessError fe = ms_.fetch(ev.pc, word);
  ++stats_.fetched;
  if (timing_) busy_ += ms_.fetch_latency(ev.pc);
  if (fe != mem::AccessError::None) {
    ev.trap = {TrapKind::FetchFault, fe, ev.pc};
    return ev;
  }
  const auto fr = hooks.on_fetch(ev.pc, word);
  ev.fi_seq = fr.fi_seq;

  // --- decode ---
  ev.d = isa::decode(fr.word);
  hooks.on_decode(ev.d, ev.pc, ev.fi_seq);

  // --- execute ---
  const Operands ops = read_operands(ev.d, arch_);
  ExecOut out = execute(ev.d, ops, ev.pc);
  hooks.on_execute(out, ev.d, ev.pc, ev.fi_seq);
  if (out.trap.pending()) {
    ev.trap = out.trap;
    return ev;
  }

  // --- memory ---
  if (ev.d.is_mem_access()) {
    MemHookAdapter mh(hooks, ev.fi_seq);
    if (timing_) busy_ += ms_.data_latency(out.mem_addr, ev.d.is_store());
    const TrapInfo mt = do_mem(ev.d, out, ms_, &mh);
    if (mt.pending()) {
      ev.trap = mt;
      return ev;
    }
  }

  // --- writeback / commit ---
  writeback(ev.d, out, arch_);
  ev.is_pseudo = out.is_pseudo;
  hooks.on_commit(ev.d, ev.pc, ev.fi_seq);
  ++stats_.committed;
  return ev;
}

CycleResult SimpleCpu::cycle() {
  ++stats_.ticks;
  if (busy_ > 0) {
    --busy_;
    if (busy_ == 0 && pending_) {
      CycleResult r{std::move(pending_)};
      pending_.reset();
      return r;
    }
    return {};
  }
  if (pending_) {  // busy_ was zero with a queued commit (timing edge case)
    CycleResult r{std::move(pending_)};
    pending_.reset();
    return r;
  }
  if (!fetch_enabled_) return {};

  CommitEvent ev = step_one();
  if (timing_ && busy_ > 0) {
    // Charge the stall before surfacing the commit so ticks line up.
    pending_ = std::move(ev);
    --busy_;
    if (busy_ == 0) {
      CycleResult r{std::move(pending_)};
      pending_.reset();
      return r;
    }
    return {};
  }
  busy_ = 0;
  return {std::move(ev)};
}

void SimpleCpu::flush_and_redirect(std::uint64_t new_pc) {
  arch_.set_pc(new_pc);
  busy_ = 0;
  pending_.reset();
}

void SimpleCpu::serialize(util::ByteWriter& w) const {
  arch_.serialize(w);
  w.put_bool(timing_);
  w.put_u64(stats_.ticks);
  w.put_u64(stats_.committed);
  w.put_u64(stats_.fetched);
  w.put_u64(stats_.squashed);
}

void SimpleCpu::deserialize(util::ByteReader& r) {
  arch_.deserialize(r);
  timing_ = r.get_bool();
  stats_.ticks = r.get_u64();
  stats_.committed = r.get_u64();
  stats_.fetched = r.get_u64();
  stats_.squashed = r.get_u64();
  busy_ = 0;
  pending_.reset();
}

}  // namespace gemfi::cpu
