#include "cpu/atomic_cpu.hpp"

#include <algorithm>

namespace gemfi::cpu {

namespace {
/// Adapts StageHooks to the MemHooks consumed by do_mem().
class MemHookAdapter final : public MemHooks {
 public:
  MemHookAdapter(StageHooks& hooks, std::uint64_t fi_seq) : hooks_(hooks), fi_seq_(fi_seq) {}
  std::uint64_t on_load(std::uint64_t addr, std::uint64_t raw, unsigned bytes) override {
    return hooks_.on_load(addr, raw, bytes, fi_seq_);
  }
  std::uint64_t on_store(std::uint64_t addr, std::uint64_t raw, unsigned bytes) override {
    return hooks_.on_store(addr, raw, bytes, fi_seq_);
  }

 private:
  StageHooks& hooks_;
  std::uint64_t fi_seq_;
};
}  // namespace

CommitEvent SimpleCpu::step_one() {
  CommitEvent ev;
  ev.pc = arch_.pc();

  // --- fetch + decode ---
  // Fast path: serve the Decoded straight from the page-granular predecode
  // cache (the raw word rides along in Decoded::raw for the fetch hook).
  // Slow path — cache disabled, unmapped/misaligned PC, or a fetch-stage
  // fault that corrupted the word in flight — fetches and decodes live.
  ++stats_.fetched;
  if (timing_) busy_ += ms_.fetch_latency(ev.pc);
  const isa::Decoded* pre = ms_.predecode(ev.pc);
  std::uint32_t word = 0;
  if (pre != nullptr) {
    word = pre->raw;
  } else {
    const mem::AccessError fe = ms_.fetch(ev.pc, word);
    if (fe != mem::AccessError::None) {
      ev.trap = {TrapKind::FetchFault, fe, ev.pc};
      return ev;
    }
  }
  if (hooks_ != nullptr) {
    const auto fr = hooks_->on_fetch(ev.pc, word);
    ev.fi_seq = fr.fi_seq;
    if (pre != nullptr && fr.word == word) {
      ev.d = *pre;
    } else {
      // FI corrupted the instruction word between memory and decode: the
      // cached entry describes the uncorrupted word, so decode live.
      if (pre != nullptr) ms_.note_predecode_bypass();
      ev.d = isa::decode(fr.word);
    }
    hooks_->on_decode(ev.d, ev.pc, ev.fi_seq);
  } else {
    ev.d = pre != nullptr ? *pre : isa::decode(word);
  }

  exec_one(ev);
  return ev;
}

void SimpleCpu::exec_one(CommitEvent& ev) {
  // --- execute ---
  const Operands ops = read_operands(ev.d, arch_);
  ExecOut out = execute(ev.d, ops, ev.pc);
  if (hooks_ != nullptr) hooks_->on_execute(out, ev.d, ev.pc, ev.fi_seq);
  if (out.trap.pending()) {
    ev.trap = out.trap;
    return;
  }

  // --- memory ---
  if (ev.d.is_mem_access()) {
    if (timing_) busy_ += ms_.data_latency(out.mem_addr, ev.d.is_store());
    TrapInfo mt;
    if (hooks_ != nullptr) {
      MemHookAdapter mh(*hooks_, ev.fi_seq);
      mt = do_mem(ev.d, out, ms_, &mh);
    } else {
      mt = do_mem(ev.d, out, ms_);
    }
    if (mt.pending()) {
      ev.trap = mt;
      return;
    }
  }

  // --- writeback / commit ---
  writeback(ev.d, out, arch_);
  ev.is_pseudo = out.is_pseudo;
  if (hooks_ != nullptr) hooks_->on_commit(ev.d, ev.pc, ev.fi_seq);
  ++stats_.committed;
}

void SimpleCpu::make_stop_event(CommitEvent& ev, const isa::Decoded* d, std::uint64_t pc,
                                const TrapInfo& trap, bool is_pseudo) noexcept {
  ev = CommitEvent{};
  if (d != nullptr) ev.d = *d;  // null only on a fetch fault
  ev.pc = pc;
  ev.trap = trap;
  ev.is_pseudo = is_pseudo;
}

bool SimpleCpu::atomic_batch_step(BatchResult& br, CommitEvent& ev) {
  ++br.ticks;
  const std::uint64_t pc = arch_.pc();
  const isa::Decoded* d = ms_.predecode(pc);
  isa::Decoded live;
  if (d == nullptr) {
    // Cache miss path: disabled cache, unmapped/misaligned PC. Fetch and
    // decode live, reproducing the exact AccessError on a bad PC.
    std::uint32_t word = 0;
    const mem::AccessError fe = ms_.fetch(pc, word);
    if (fe != mem::AccessError::None) {
      make_stop_event(ev, nullptr, pc, {TrapKind::FetchFault, fe, pc}, false);
      br.stopped = true;
      return false;
    }
    live = isa::decode(word);
    d = &live;
  }
  const Operands ops = read_operands(*d, arch_);
  ExecOut out = execute(*d, ops, pc);
  if (out.trap.pending()) {
    make_stop_event(ev, d, pc, out.trap, false);
    br.stopped = true;
    return false;
  }
  if (d->is_mem_access()) {
    const TrapInfo mt = do_mem(*d, out, ms_);
    if (mt.pending()) {
      make_stop_event(ev, d, pc, mt, false);
      br.stopped = true;
      return false;
    }
  }
  writeback(*d, out, arch_);
  ++br.commits;
  if (out.is_pseudo) {
    make_stop_event(ev, d, pc, TrapInfo{}, true);
    br.stopped = true;
    return false;
  }
  return true;
}

BatchResult SimpleCpu::run_atomic_batch(std::uint64_t max_ticks, CommitEvent& ev) {
  BatchResult br;
  if (timing_ || hooks_ != nullptr || !fetch_enabled_ || busy_ != 0 || pending_) return br;
  while (br.ticks < max_ticks)
    if (!atomic_batch_step(br, ev)) break;
  stats_.ticks += br.ticks;
  stats_.fetched += br.ticks;
  stats_.committed += br.commits;
  return br;
}

BatchResult SimpleCpu::run_timing_batch(std::uint64_t max_ticks, std::uint64_t max_commits,
                                        CommitEvent& ev) {
  BatchResult br;
  if (!timing_ || hooks_ != nullptr || !fetch_enabled_) return br;
  while (br.ticks < max_ticks && br.commits < max_commits && !br.stopped) {
    if (busy_ > 0) {
      // Drain a stall carried in from a previous batch boundary; surfacing
      // happens on the tick the counter reaches zero, as in cycle().
      const std::uint64_t step = std::min<std::uint64_t>(busy_, max_ticks - br.ticks);
      busy_ -= std::uint32_t(step);
      br.ticks += step;
      if (busy_ != 0) break;  // budget expired mid-stall
      if (pending_) {
        ev = std::move(*pending_);
        pending_.reset();
        if (ev.trap.pending() || ev.is_pseudo) {
          if (ev.is_pseudo) ++br.commits;
          br.stopped = true;
          break;
        }
        ++br.commits;
      }
      continue;
    }

    // Execute one instruction, accumulating its charged latency instead of
    // idling busy_ down tick by tick. Identical event flow to step_one(),
    // but the CommitEvent (and its embedded Decoded copy) is materialized
    // only on the rare trap/pseudo/boundary exits — the retire-and-continue
    // path touches nothing but the architectural state and counters.
    const std::uint64_t pc = arch_.pc();
    ++stats_.fetched;
    std::uint32_t lat = ms_.fetch_latency(pc);
    const isa::Decoded* pre = ms_.predecode(pc);
    isa::Decoded live;
    TrapInfo trap;
    bool is_pseudo = false;
    if (pre == nullptr) {
      std::uint32_t word = 0;
      const mem::AccessError fe = ms_.fetch(pc, word);
      if (fe != mem::AccessError::None) {
        trap = {TrapKind::FetchFault, fe, pc};
      } else {
        live = isa::decode(word);
        pre = &live;
      }
    }
    if (!trap.pending()) {
      const Operands ops = read_operands(*pre, arch_);
      ExecOut out = execute(*pre, ops, pc);
      if (out.trap.pending()) {
        trap = out.trap;
      } else {
        TrapInfo mt;
        if (pre->is_mem_access()) {
          lat += ms_.data_latency(out.mem_addr, pre->is_store());
          mt = do_mem(*pre, out, ms_);
        }
        if (mt.pending()) {
          trap = mt;
        } else {
          writeback(*pre, out, arch_);
          is_pseudo = out.is_pseudo;
          ++stats_.committed;
        }
      }
    }

    const std::uint64_t cost = lat > 0 ? lat : 1;  // the executing tick itself
    const std::uint64_t avail = max_ticks - br.ticks;
    const bool stopping = trap.pending() || is_pseudo;
    if (cost <= avail && !stopping) {
      br.ticks += cost;
      ++br.commits;
      continue;
    }
    CommitEvent cev;
    make_stop_event(cev, pre, pc, trap, is_pseudo);
    if (cost > avail) {
      // The stall crosses the batch boundary: consume what is left and park
      // the event exactly as the per-tick loop stands mid-stall (commit not
      // yet surfaced, so it is not in br.commits).
      busy_ = std::uint32_t(cost - avail);
      pending_ = std::move(cev);
      br.ticks += avail;
      break;
    }
    br.ticks += cost;
    if (is_pseudo && !trap.pending()) ++br.commits;
    ev = std::move(cev);
    br.stopped = true;
    break;
  }
  stats_.ticks += br.ticks;
  return br;
}

CycleResult SimpleCpu::cycle() {
  ++stats_.ticks;
  if (busy_ > 0) {
    --busy_;
    if (busy_ == 0 && pending_) {
      CycleResult r{std::move(pending_)};
      pending_.reset();
      return r;
    }
    return {};
  }
  if (pending_) {  // busy_ was zero with a queued commit (timing edge case)
    CycleResult r{std::move(pending_)};
    pending_.reset();
    return r;
  }
  if (!fetch_enabled_) return {};

  CommitEvent ev = step_one();
  if (timing_ && busy_ > 0) {
    // Charge the stall before surfacing the commit so ticks line up.
    pending_ = std::move(ev);
    --busy_;
    if (busy_ == 0) {
      CycleResult r{std::move(pending_)};
      pending_.reset();
      return r;
    }
    return {};
  }
  busy_ = 0;
  return {std::move(ev)};
}

void SimpleCpu::flush_and_redirect(std::uint64_t new_pc) {
  arch_.set_pc(new_pc);
  busy_ = 0;
  pending_.reset();
}

void SimpleCpu::serialize(util::ByteWriter& w) const {
  arch_.serialize(w);
  w.put_bool(timing_);
  w.put_u64(stats_.ticks);
  w.put_u64(stats_.committed);
  w.put_u64(stats_.fetched);
  w.put_u64(stats_.squashed);
}

void SimpleCpu::deserialize(util::ByteReader& r) {
  arch_.deserialize(r);
  timing_ = r.get_bool();
  stats_.ticks = r.get_u64();
  stats_.committed = r.get_u64();
  stats_.fetched = r.get_u64();
  stats_.squashed = r.get_u64();
  busy_ = 0;
  pending_.reset();
}

}  // namespace gemfi::cpu
