// Architectural register state of one hardware context.
//
// FP registers are stored as raw IEEE-754 bit patterns (std::uint64_t): the
// fault injector corrupts *bits*, and keeping the canonical representation
// integral means a flipped bit in a signalling-NaN pattern round-trips
// exactly. Conversion to/from double happens only inside the ALU.
#pragma once

#include <bit>
#include <cstdint>

#include "isa/registers.hpp"
#include "util/bytesio.hpp"

namespace gemfi::cpu {

class ArchState {
 public:
  // R31 reads as zero and ignores writes; F31 likewise (+0.0).
  [[nodiscard]] std::uint64_t ireg(unsigned r) const noexcept {
    return r >= isa::kNumIntRegs || r == isa::kZeroReg ? 0 : iregs_[r];
  }
  void set_ireg(unsigned r, std::uint64_t v) noexcept {
    if (r < isa::kNumIntRegs && r != isa::kZeroReg) iregs_[r] = v;
  }

  [[nodiscard]] std::uint64_t freg_bits(unsigned r) const noexcept {
    return r >= isa::kNumFpRegs || r == isa::kFpZeroReg ? 0 : fregs_[r];
  }
  void set_freg_bits(unsigned r, std::uint64_t v) noexcept {
    if (r < isa::kNumFpRegs && r != isa::kFpZeroReg) fregs_[r] = v;
  }

  [[nodiscard]] double freg(unsigned r) const noexcept {
    return std::bit_cast<double>(freg_bits(r));
  }
  void set_freg(unsigned r, double v) noexcept {
    set_freg_bits(r, std::bit_cast<std::uint64_t>(v));
  }

  [[nodiscard]] std::uint64_t pc() const noexcept { return pc_; }
  void set_pc(std::uint64_t pc) noexcept { pc_ = pc; }

  // Raw 32-slot register files for the superblock executor's inner loop.
  // Invariant: slot 31 of each file is always zero — the accessor setters
  // never write it, deserialize() re-zeroes it, and the trace executor skips
  // dst==31 writebacks — so reads need no zero-register branch.
  [[nodiscard]] std::uint64_t* iregs_raw() noexcept { return iregs_; }
  [[nodiscard]] std::uint64_t* fregs_raw() noexcept { return fregs_; }

  /// Generic access used by the register-file fault injector.
  /// reg in [0,32) -> integer file, [32,64) -> FP file (bits).
  [[nodiscard]] std::uint64_t reg_by_flat_index(unsigned idx) const noexcept {
    return idx < 32 ? ireg(idx) : freg_bits(idx - 32);
  }
  void set_reg_by_flat_index(unsigned idx, std::uint64_t v) noexcept {
    if (idx < 32)
      set_ireg(idx, v);
    else
      set_freg_bits(idx - 32, v);
  }

  void reset() noexcept {
    for (auto& r : iregs_) r = 0;
    for (auto& r : fregs_) r = 0;
    pc_ = 0;
  }

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

  bool operator==(const ArchState&) const = default;

 private:
  std::uint64_t iregs_[isa::kNumIntRegs]{};
  std::uint64_t fregs_[isa::kNumFpRegs]{};
  std::uint64_t pc_ = 0;
};

}  // namespace gemfi::cpu
