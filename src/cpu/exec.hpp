// The shared execution-semantics engine.
//
// All CPU models (atomic, timing-simple, pipelined) funnel every instruction
// through these pure(ish) phases, so the functional behavior of the machine
// is defined exactly once:
//
//   read operands -> execute() -> [do_mem()] -> writeback()
//
// The split mirrors the pipeline stages the paper injects faults into: the
// fault injector corrupts Operands (decode-stage register-selection faults
// act even earlier, on the instruction word), the ExecOut (execute-stage
// faults, which for memory instructions hit the effective address — the
// paper's observed segfault mechanism), and the memory value (load/store
// transaction faults).
#pragma once

#include <cstdint>

#include "cpu/arch_state.hpp"
#include "cpu/trap.hpp"
#include "isa/decoder.hpp"
#include "mem/memsys.hpp"

namespace gemfi::cpu {

/// Register operand values read for one instruction (FP values as raw bits).
struct Operands {
  std::uint64_t s1 = 0;       // value of Decoded::src1 (or 0 if none)
  std::uint64_t s2 = 0;       // value of Decoded::src2 (stores: data; ignored if literal)
  std::uint64_t old_dst = 0;  // prior value of the destination (CMOV/FCMOV)
};

/// Read the operands of `d` from an architectural state.
Operands read_operands(const isa::Decoded& d, const ArchState& st) noexcept;

/// Result of the execute stage.
struct ExecOut {
  std::uint64_t value = 0;       // ALU result / link address / LDA result (bits)
  bool writes_dst = false;       // writeback `value` to d.dst (loads fill value in do_mem)
  std::uint64_t mem_addr = 0;    // effective address for memory instructions
  std::uint64_t store_value = 0; // raw bits to store (width handled in do_mem)
  bool branch_taken = false;
  std::uint64_t next_pc = 0;     // resolved next PC (always valid)
  TrapInfo trap;                 // illegal instruction / arithmetic
  bool is_pseudo = false;        // PSEUDO/CALLSYS: dispatched by the OS layer at commit
};

/// Execute stage: pure function of the decoded instruction, operands and PC.
ExecOut execute(const isa::Decoded& d, const Operands& ops, std::uint64_t pc) noexcept;

/// Memory stage for instructions with d.is_mem_access(). Performs the access
/// against `ms`, filling out.value for loads (after width conversion:
/// LDL sign-extends, LDS converts single->double). Returns the trap, if any.
/// `loaded_raw`/`stored_raw` expose the pre-conversion bus value so the
/// fault injector can corrupt the transaction itself.
struct MemHooks {
  /// Corrupt the value arriving from memory (loads). `bytes` is 4 or 8.
  virtual std::uint64_t on_load(std::uint64_t addr, std::uint64_t raw, unsigned bytes) {
    (void)addr; (void)bytes;
    return raw;
  }
  /// Corrupt the value leaving for memory (stores).
  virtual std::uint64_t on_store(std::uint64_t addr, std::uint64_t raw, unsigned bytes) {
    (void)addr; (void)bytes;
    return raw;
  }
  virtual ~MemHooks() = default;
};

TrapInfo do_mem(const isa::Decoded& d, ExecOut& out, mem::MemSystem& ms,
                MemHooks* hooks = nullptr);

/// Writeback stage: apply out.value / next_pc to the architectural state.
void writeback(const isa::Decoded& d, const ExecOut& out, ArchState& st) noexcept;

}  // namespace gemfi::cpu
