// PipelinedCpu: 5-stage in-order pipeline (IF, ID, EX, MEM, WB) with a
// tournament branch predictor, speculative fetch and a squash path.
//
// This is the reproduction's stand-in for gem5's detailed CPU model: it has
// everything the paper's methodology actually uses —
//   * the five pipeline stages GemFI attaches its fault queues to,
//   * wrong-path execution with commit-or-squash semantics (the campaign
//     runner simulates "detailed until the affected instruction commits or
//     squashes, then switch to atomic", Sec. IV-B),
//   * cache-latency stalls in IF and MEM,
//   * full forwarding with a load-use interlock,
//   * precise traps (younger instructions are squashed when an older
//     instruction faults).
//
// Pseudo-instructions (the GemFI intrinsics) are serialized: they wait in ID
// until the back end drains, flow alone, and the simulation re-synchronizes
// fetch after dispatching them — which guarantees checkpoints taken from
// fi_read_init_all() see a quiesced machine.
#pragma once

#include "cpu/branch_predictor.hpp"
#include "cpu/cpu_model.hpp"

namespace gemfi::cpu {

class PipelinedCpu final : public CpuModel {
 public:
  PipelinedCpu(mem::MemSystem& ms, const PredictorConfig& pred_cfg = {})
      : CpuModel(ms), pred_(pred_cfg) {}

  CycleResult cycle() override;
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept override;
  void warp(std::uint64_t k) noexcept override;
  void flush_and_redirect(std::uint64_t new_pc) override;
  void set_fetch_enabled(bool enabled) override { fetch_enabled_ = enabled; }
  [[nodiscard]] bool quiesced() const override {
    return !if_id_ && !id_ex_ && !ex_mem_ && !mem_wb_ && !fetch_inflight_;
  }
  [[nodiscard]] const char* name() const noexcept override { return "pipelined"; }

  [[nodiscard]] const TournamentPredictor& predictor() const noexcept { return pred_; }

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

 private:
  struct InFlight {
    std::uint32_t raw = 0;        // post-fetch-hook word (what IF really saw)
    std::uint64_t pc = 0;
    std::uint64_t fi_seq = 0;
    std::uint64_t pred_next = 0;  // fetch direction chosen after this inst
    bool is_branch_pred = false;  // decoded as control (predictor trained);
                                  // derived from `d`, never from the raw
                                  // word, so a fetch-stage fault that flips
                                  // an opcode into/out of the branch class
                                  // trains on what was actually decoded
    isa::Decoded d;               // decoded in IF (predecode cache or live)
    ExecOut out;
    TrapInfo trap;      // fetch faults arrive here before decode
    bool executed = false;
  };

  void stage_wb(CycleResult& result);
  void stage_mem();
  void stage_ex();
  void stage_id();
  void stage_if();
  void squash_younger_than_ex();
  std::uint64_t predict_next(std::uint64_t pc, const isa::Decoded& d, bool& is_branch);

  TournamentPredictor pred_;
  bool fetch_enabled_ = true;
  std::uint64_t fetch_pc_ = 0;
  bool fetch_pc_valid_ = false;   // synchronized with arch_.pc() on redirect

  std::optional<InFlight> fetch_inflight_;  // fetch issued, waiting on I-cache
  std::uint32_t fetch_cycles_left_ = 0;
  std::optional<InFlight> if_id_;
  std::optional<InFlight> id_ex_;
  std::optional<InFlight> ex_mem_;
  std::uint32_t mem_cycles_left_ = 0;
  std::optional<InFlight> mem_wb_;
  bool serialize_drain_ = false;  // a pseudo op is waiting in ID
  bool halt_fetch_after_trap_ = false;
};

}  // namespace gemfi::cpu
