#include "cpu/branch_predictor.hpp"

namespace gemfi::cpu {

namespace {
template <typename T>
void bump(T& ctr, bool up, T max) {
  if (up && ctr < max) ++ctr;
  if (!up && ctr > 0) --ctr;
}
}  // namespace

TournamentPredictor::TournamentPredictor(const PredictorConfig& cfg)
    : cfg_(cfg),
      local_hist_(cfg.local_entries, 0),
      local_ctr_(cfg.local_entries, 3),
      global_ctr_(cfg.global_entries, 1),
      chooser_ctr_(cfg.chooser_entries, 2),
      btb_(cfg.btb_entries),
      ras_(cfg.ras_entries, 0) {}

std::uint32_t TournamentPredictor::local_index(std::uint64_t pc) const noexcept {
  return std::uint32_t((pc >> 2) & (cfg_.local_entries - 1));
}

std::uint32_t TournamentPredictor::global_index() const noexcept {
  return std::uint32_t(ghist_ & (cfg_.global_entries - 1));
}

Prediction TournamentPredictor::predict(std::uint64_t pc) {
  ++stats_.lookups;
  Prediction p;
  const std::uint32_t li = local_index(pc);
  const std::uint32_t hist = local_hist_[li] & ((1u << cfg_.local_hist_bits) - 1);
  const std::uint32_t lci = hist & (cfg_.local_entries - 1);
  const bool local_taken = local_ctr_[lci] >= 4;
  const std::uint32_t gi = std::uint32_t((ghist_ ^ (pc >> 2)) & (cfg_.global_entries - 1));
  const bool global_taken = global_ctr_[gi] >= 2;
  const bool use_global = chooser_ctr_[global_index()] >= 2;
  p.taken = use_global ? global_taken : local_taken;

  const BtbEntry& be = btb_[(pc >> 2) & (cfg_.btb_entries - 1)];
  if (be.valid && be.tag == pc) {
    p.btb_hit = true;
    p.target = be.target;
  }
  return p;
}

void TournamentPredictor::update(std::uint64_t pc, bool taken, std::uint64_t target,
                                 bool mispredicted) {
  if (mispredicted) ++stats_.mispredicts;

  const std::uint32_t li = local_index(pc);
  const std::uint32_t hist = local_hist_[li] & ((1u << cfg_.local_hist_bits) - 1);
  const std::uint32_t lci = hist & (cfg_.local_entries - 1);
  const std::uint32_t gi = std::uint32_t((ghist_ ^ (pc >> 2)) & (cfg_.global_entries - 1));

  const bool local_correct = (local_ctr_[lci] >= 4) == taken;
  const bool global_correct = (global_ctr_[gi] >= 2) == taken;
  if (local_correct != global_correct)
    bump<std::uint8_t>(chooser_ctr_[global_index()], global_correct, 3);

  bump<std::uint8_t>(local_ctr_[lci], taken, 7);
  bump<std::uint8_t>(global_ctr_[gi], taken, 3);

  local_hist_[li] = std::uint16_t(((hist << 1) | (taken ? 1 : 0)) &
                                  ((1u << cfg_.local_hist_bits) - 1));
  ghist_ = (ghist_ << 1) | (taken ? 1 : 0);

  if (taken) {
    BtbEntry& be = btb_[(pc >> 2) & (cfg_.btb_entries - 1)];
    be.valid = true;
    be.tag = pc;
    be.target = target;
  }
}

void TournamentPredictor::ras_push(std::uint64_t return_addr) {
  ras_[ras_top_ % cfg_.ras_entries] = return_addr;
  ++ras_top_;
}

std::uint64_t TournamentPredictor::ras_pop() {
  if (ras_top_ == 0) return 0;
  --ras_top_;
  return ras_[ras_top_ % cfg_.ras_entries];
}

void TournamentPredictor::serialize(util::ByteWriter& w) const {
  w.put_u64(ghist_);
  w.put_u32(ras_top_);
  for (const auto v : local_hist_) w.put_u16(v);
  for (const auto v : local_ctr_) w.put_u8(v);
  for (const auto v : global_ctr_) w.put_u8(v);
  for (const auto v : chooser_ctr_) w.put_u8(v);
  for (const auto& be : btb_) {
    w.put_u64(be.tag);
    w.put_u64(be.target);
    w.put_bool(be.valid);
  }
  for (const auto v : ras_) w.put_u64(v);
  w.put_u64(stats_.lookups);
  w.put_u64(stats_.mispredicts);
}

void TournamentPredictor::deserialize(util::ByteReader& r) {
  ghist_ = r.get_u64();
  ras_top_ = r.get_u32();
  for (auto& v : local_hist_) v = r.get_u16();
  for (auto& v : local_ctr_) v = r.get_u8();
  for (auto& v : global_ctr_) v = r.get_u8();
  for (auto& v : chooser_ctr_) v = r.get_u8();
  for (auto& be : btb_) {
    be.tag = r.get_u64();
    be.target = r.get_u64();
    be.valid = r.get_bool();
  }
  for (auto& v : ras_) v = r.get_u64();
  stats_.lookups = r.get_u64();
  stats_.mispredicts = r.get_u64();
}

}  // namespace gemfi::cpu
