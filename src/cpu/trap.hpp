// Trap taxonomy. Every way a guest program can die maps onto one of these;
// the campaign classifier folds them all into the paper's "Crashed" outcome.
#pragma once

#include <cstdint>

#include "mem/physmem.hpp"

namespace gemfi::cpu {

enum class TrapKind : std::uint8_t {
  None = 0,
  IllegalInstruction,  // undecodable opcode/function (paper: fetch faults on
                       // unimplemented opcodes always kill the program)
  MemFault,            // segmentation violation / unaligned / wild store
  FetchFault,          // PC escaped mapped memory or became misaligned
  Arithmetic,          // integer division by zero (uAlpha DIVQ/REMQ extension)
  Halt,                // CALL_PAL HALT
};

const char* trap_name(TrapKind k) noexcept;

struct TrapInfo {
  TrapKind kind = TrapKind::None;
  mem::AccessError mem_error = mem::AccessError::None;
  std::uint64_t addr = 0;  // faulting data address or PC

  [[nodiscard]] bool pending() const noexcept { return kind != TrapKind::None; }
};

inline const char* trap_name(TrapKind k) noexcept {
  switch (k) {
    case TrapKind::None: return "none";
    case TrapKind::IllegalInstruction: return "illegal-instruction";
    case TrapKind::MemFault: return "memory-fault";
    case TrapKind::FetchFault: return "fetch-fault";
    case TrapKind::Arithmetic: return "arithmetic-trap";
    case TrapKind::Halt: return "halt";
  }
  return "?";
}

}  // namespace gemfi::cpu
