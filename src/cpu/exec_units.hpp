// Scalar execution units shared by the interpreter and the superblock tier.
//
// These helpers used to live in an anonymous namespace inside exec.cpp; the
// threaded-code trace executor (cpu/fastmode.cpp) needs byte-identical
// semantics for every ALU edge case (MULL's unsigned 32-bit product, DIVQ
// INT64_MIN/-1 wrap, the 2.0/0.0 FP compare encoding, CVTTQ saturation), so
// the definitions are hoisted here and both dispatch paths include them.
// There must be exactly one source of truth for instruction semantics: any
// divergence is a lockstep-suite failure, not a tolerable drift.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "cpu/trap.hpp"
#include "isa/opcodes.hpp"

namespace gemfi::cpu::alu {

constexpr std::uint64_t sext32(std::uint64_t v) noexcept {
  return std::uint64_t(std::int64_t(std::int32_t(v)));
}

constexpr double as_f64(std::uint64_t bits) noexcept { return std::bit_cast<double>(bits); }
constexpr std::uint64_t as_bits(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }

inline std::uint64_t exec_inta(unsigned func, std::uint64_t a, std::uint64_t b) noexcept {
  using isa::IntaFunc;
  const auto sa = std::int64_t(a);
  const auto sb = std::int64_t(b);
  switch (static_cast<IntaFunc>(func)) {
    case IntaFunc::ADDL: return sext32(a + b);
    case IntaFunc::SUBL: return sext32(a - b);
    case IntaFunc::ADDQ: return a + b;
    case IntaFunc::SUBQ: return a - b;
    case IntaFunc::S4ADDQ: return a * 4 + b;
    case IntaFunc::S8ADDQ: return a * 8 + b;
    case IntaFunc::CMPEQ: return a == b ? 1 : 0;
    case IntaFunc::CMPLT: return sa < sb ? 1 : 0;
    case IntaFunc::CMPLE: return sa <= sb ? 1 : 0;
    case IntaFunc::CMPULT: return a < b ? 1 : 0;
    case IntaFunc::CMPULE: return a <= b ? 1 : 0;
  }
  return 0;
}

inline std::uint64_t exec_intl(unsigned func, std::uint64_t a, std::uint64_t b,
                               std::uint64_t old_dst) noexcept {
  using isa::IntlFunc;
  const auto sa = std::int64_t(a);
  switch (static_cast<IntlFunc>(func)) {
    case IntlFunc::AND: return a & b;
    case IntlFunc::BIC: return a & ~b;
    case IntlFunc::BIS: return a | b;
    case IntlFunc::ORNOT: return a | ~b;
    case IntlFunc::XOR: return a ^ b;
    case IntlFunc::EQV: return a ^ ~b;
    case IntlFunc::CMOVEQ: return a == 0 ? b : old_dst;
    case IntlFunc::CMOVNE: return a != 0 ? b : old_dst;
    case IntlFunc::CMOVLT: return sa < 0 ? b : old_dst;
    case IntlFunc::CMOVGE: return sa >= 0 ? b : old_dst;
    case IntlFunc::CMOVLE: return sa <= 0 ? b : old_dst;
    case IntlFunc::CMOVGT: return sa > 0 ? b : old_dst;
    case IntlFunc::CMOVLBS: return (a & 1) != 0 ? b : old_dst;
    case IntlFunc::CMOVLBC: return (a & 1) == 0 ? b : old_dst;
  }
  return 0;
}

inline std::uint64_t exec_ints(unsigned func, std::uint64_t a, std::uint64_t b) noexcept {
  using isa::IntsFunc;
  const unsigned sh = unsigned(b & 63);
  switch (static_cast<IntsFunc>(func)) {
    case IntsFunc::SLL: return a << sh;
    case IntsFunc::SRL: return a >> sh;
    case IntsFunc::SRA: return std::uint64_t(std::int64_t(a) >> sh);
  }
  return 0;
}

inline std::uint64_t exec_intm(unsigned func, std::uint64_t a, std::uint64_t b,
                               TrapInfo& trap) noexcept {
  using isa::IntmFunc;
  switch (static_cast<IntmFunc>(func)) {
    case IntmFunc::MULL: return sext32(std::uint64_t(std::uint32_t(a) * std::uint32_t(b)));
    case IntmFunc::MULQ: return a * b;
    case IntmFunc::UMULH:
      return std::uint64_t((unsigned __int128)(a) * (unsigned __int128)(b) >> 64);
    case IntmFunc::DIVQ:
    case IntmFunc::REMQ: {
      if (b == 0) {
        trap.kind = TrapKind::Arithmetic;
        return 0;
      }
      const auto sa = std::int64_t(a);
      const auto sb = std::int64_t(b);
      if (sa == INT64_MIN && sb == -1)  // overflow: wrap like hardware would
        return func == unsigned(IntmFunc::DIVQ) ? std::uint64_t(INT64_MIN) : 0;
      return std::uint64_t(func == unsigned(IntmFunc::DIVQ) ? sa / sb : sa % sb);
    }
  }
  return 0;
}

inline std::uint64_t exec_flti(unsigned func, std::uint64_t abits, std::uint64_t bbits) noexcept {
  using isa::FltiFunc;
  const double a = as_f64(abits);
  const double b = as_f64(bbits);
  constexpr double kTrue = 2.0;  // Alpha FP compares write 2.0 / +0.0
  switch (static_cast<FltiFunc>(func)) {
    case FltiFunc::ADDT: return as_bits(a + b);
    case FltiFunc::SUBT: return as_bits(a - b);
    case FltiFunc::MULT: return as_bits(a * b);
    case FltiFunc::DIVT: return as_bits(a / b);
    case FltiFunc::CMPTUN: return as_bits(std::isnan(a) || std::isnan(b) ? kTrue : 0.0);
    case FltiFunc::CMPTEQ: return as_bits(a == b ? kTrue : 0.0);
    case FltiFunc::CMPTLT: return as_bits(a < b ? kTrue : 0.0);
    case FltiFunc::CMPTLE: return as_bits(a <= b ? kTrue : 0.0);
    case FltiFunc::SQRTT: return as_bits(std::sqrt(b));
    case FltiFunc::CVTTQ: {
      // double -> int64, truncating; out-of-range and NaN produce INT64_MIN
      // (a defined result: fault-corrupted FP values must not be host UB).
      if (std::isnan(b) || b >= 9.2233720368547758e18 || b <= -9.2233720368547758e18)
        return std::uint64_t(INT64_MIN);
      return std::uint64_t(std::int64_t(b));
    }
    case FltiFunc::CVTQT: return as_bits(double(std::int64_t(bbits)));
  }
  return 0;
}

inline std::uint64_t exec_fltl(unsigned func, std::uint64_t abits, std::uint64_t bbits,
                               std::uint64_t old_dst) noexcept {
  using isa::FltlFunc;
  constexpr std::uint64_t kSign = 0x8000000000000000ull;
  switch (static_cast<FltlFunc>(func)) {
    case FltlFunc::CPYS: return (abits & kSign) | (bbits & ~kSign);
    case FltlFunc::CPYSN: return (~abits & kSign) | (bbits & ~kSign);
    case FltlFunc::FCMOVEQ: return as_f64(abits) == 0.0 ? bbits : old_dst;
    case FltlFunc::FCMOVNE: return as_f64(abits) != 0.0 ? bbits : old_dst;
  }
  return 0;
}

inline bool branch_cond(isa::Opcode op, std::uint64_t s1) noexcept {
  using isa::Opcode;
  const auto sv = std::int64_t(s1);
  const double fv = as_f64(s1);
  switch (op) {
    case Opcode::BEQ: return s1 == 0;
    case Opcode::BNE: return s1 != 0;
    case Opcode::BLT: return sv < 0;
    case Opcode::BLE: return sv <= 0;
    case Opcode::BGT: return sv > 0;
    case Opcode::BGE: return sv >= 0;
    case Opcode::BLBS: return (s1 & 1) != 0;
    case Opcode::BLBC: return (s1 & 1) == 0;
    case Opcode::FBEQ: return fv == 0.0;
    case Opcode::FBNE: return fv != 0.0;
    case Opcode::FBLT: return fv < 0.0;
    case Opcode::FBLE: return fv <= 0.0;
    case Opcode::FBGE: return fv >= 0.0;
    case Opcode::FBGT: return fv > 0.0;
    default: return false;
  }
}

}  // namespace gemfi::cpu::alu
