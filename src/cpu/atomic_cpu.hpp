// AtomicSimpleCpu and TimingSimpleCpu: one instruction at a time through the
// full fetch/decode/execute/memory/writeback sequence.
//
// Atomic ignores memory timing (1 IPC); TimingSimple charges L1I/L1D/L2/DRAM
// latencies by idling for the appropriate number of ticks before committing —
// the same behavioral distinction gem5 draws between its AtomicSimple and
// TimingSimple models.
#pragma once

#include "cpu/cpu_model.hpp"

namespace gemfi::cpu {

/// Result of one SimpleCpu::run_atomic_batch() call.
struct BatchResult {
  std::uint64_t ticks = 0;    // instruction attempts (commits, +1 if trapped)
  std::uint64_t commits = 0;  // instructions that architecturally committed
  bool stopped = false;       // the out-param event holds a trap or pseudo-op
};

class SimpleCpu final : public CpuModel {
 public:
  /// `timing` selects TimingSimple behavior (charge memory latencies).
  SimpleCpu(mem::MemSystem& ms, bool timing) : CpuModel(ms), timing_(timing) {}

  CycleResult cycle() override;

  /// Fast dispatch loop of the predecode fast path: execute up to
  /// `max_ticks` instructions back-to-back, serving Decoded entries straight
  /// from the predecode cache, without materializing a CycleResult per tick.
  /// Only engages in atomic mode with no stage hooks attached (the FI
  /// machinery needs the per-instruction event flow); otherwise returns an
  /// empty result and the caller falls back to cycle(). Stops early at a
  /// trap or pseudo-op, describing it in `ev` (stopped == true); a trapping
  /// instruction consumes a tick but does not commit, exactly like cycle().
  BatchResult run_atomic_batch(std::uint64_t max_ticks, CommitEvent& ev);

  /// TimingSimple counterpart of run_atomic_batch: retire instructions
  /// back-to-back, folding each instruction's charged I-/D-cache latency
  /// into one per-instruction accumulation instead of per-tick busy_
  /// decrements. Batch-boundary rules mirror the per-tick loop exactly:
  /// `max_ticks` bounds simulated ticks consumed (a budget expiring
  /// mid-stall leaves busy_/pending_ exactly as the slow path would at that
  /// tick, with the commit not yet surfaced), `max_commits` bounds surfaced
  /// commits (the scheduler's preemption boundary), and a trap or pseudo-op
  /// stops the batch with the event in `ev`. Only engages in timing mode
  /// with no stage hooks and fetch enabled; otherwise returns an empty
  /// result and the caller falls back to cycle().
  BatchResult run_timing_batch(std::uint64_t max_ticks, std::uint64_t max_commits,
                               CommitEvent& ev);

  /// Superblock (threaded-code) tier above run_atomic_batch: execute up to
  /// `max_ticks` instructions through lowered straight-line traces served by
  /// the MemSystem's superblock cache, falling back to single interpreter
  /// steps (atomic_batch_step) for untraceable entries. Tick/commit/trap
  /// accounting is bit-identical to run_atomic_batch — each instruction is
  /// one tick, a trapping instruction consumes its tick without committing
  /// and leaves the architectural PC at the trapping instruction.
  ///
  /// The tier itself never calls stage hooks: the caller (Simulation::run)
  /// may only dispatch here while the fault manager is provably quiescent
  /// and owns the bulk FI fetch-window accounting for the batch. Only
  /// engages in atomic mode with fetch enabled; otherwise returns an empty
  /// result.
  BatchResult run_trace_batch(std::uint64_t max_ticks, CommitEvent& ev);

  /// Timing mode spends busy_ ticks idling per instruction; all but the
  /// last (which surfaces the queued commit) are warpable.
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept override {
    return timing_ && busy_ > 1 ? busy_ - 1 : 0;
  }
  void warp(std::uint64_t k) noexcept override {
    stats_.ticks += k;
    busy_ -= std::uint32_t(k);
  }

  void flush_and_redirect(std::uint64_t new_pc) override;
  void set_fetch_enabled(bool enabled) override { fetch_enabled_ = enabled; }
  [[nodiscard]] bool quiesced() const override { return busy_ == 0; }
  [[nodiscard]] const char* name() const noexcept override {
    return timing_ ? "timing-simple" : "atomic-simple";
  }

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

 private:
  CommitEvent step_one();
  void exec_one(CommitEvent& ev);

  /// Shared batch-exit boundary: materialize the stop event every batch
  /// flavor (atomic, timing, trace) hands back to the simulation loop for
  /// its trap / pseudo-op / preemption / watchdog handling.
  static void make_stop_event(CommitEvent& ev, const isa::Decoded* d, std::uint64_t pc,
                              const TrapInfo& trap, bool is_pseudo) noexcept;
  /// One hookless interpreter step inside a batch: counts the tick and the
  /// commit in `br`, and on a trap/pseudo-op fills `ev`, sets br.stopped and
  /// returns false.
  bool atomic_batch_step(BatchResult& br, CommitEvent& ev);

  bool timing_;
  bool fetch_enabled_ = true;
  std::uint32_t busy_ = 0;          // remaining stall ticks (timing mode)
  std::optional<CommitEvent> pending_;  // commit delayed until busy_ drains
};

}  // namespace gemfi::cpu
