// AtomicSimpleCpu and TimingSimpleCpu: one instruction at a time through the
// full fetch/decode/execute/memory/writeback sequence.
//
// Atomic ignores memory timing (1 IPC); TimingSimple charges L1I/L1D/L2/DRAM
// latencies by idling for the appropriate number of ticks before committing —
// the same behavioral distinction gem5 draws between its AtomicSimple and
// TimingSimple models.
#pragma once

#include "cpu/cpu_model.hpp"

namespace gemfi::cpu {

class SimpleCpu final : public CpuModel {
 public:
  /// `timing` selects TimingSimple behavior (charge memory latencies).
  SimpleCpu(mem::MemSystem& ms, bool timing) : CpuModel(ms), timing_(timing) {}

  CycleResult cycle() override;
  void flush_and_redirect(std::uint64_t new_pc) override;
  void set_fetch_enabled(bool enabled) override { fetch_enabled_ = enabled; }
  [[nodiscard]] bool quiesced() const override { return busy_ == 0; }
  [[nodiscard]] const char* name() const noexcept override {
    return timing_ ? "timing-simple" : "atomic-simple";
  }

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

 private:
  CommitEvent step_one();

  bool timing_;
  bool fetch_enabled_ = true;
  std::uint32_t busy_ = 0;          // remaining stall ticks (timing mode)
  std::optional<CommitEvent> pending_;  // commit delayed until busy_ drains
};

}  // namespace gemfi::cpu
