#include "cpu/exec.hpp"

#include <bit>

#include "cpu/exec_units.hpp"

namespace gemfi::cpu {

namespace {

using isa::Decoded;
using isa::InstClass;
using isa::Opcode;

using alu::as_bits;
using alu::as_f64;
using alu::sext32;

}  // namespace

Operands read_operands(const Decoded& d, const ArchState& st) noexcept {
  Operands ops;
  if (d.src1 < 32) ops.s1 = d.src1_fp ? st.freg_bits(d.src1) : st.ireg(d.src1);
  if (d.src2 < 32) ops.s2 = d.src2_fp ? st.freg_bits(d.src2) : st.ireg(d.src2);
  if (d.dst < 32) ops.old_dst = d.dst_fp ? st.freg_bits(d.dst) : st.ireg(d.dst);
  return ops;
}

ExecOut execute(const Decoded& d, const Operands& ops, std::uint64_t pc) noexcept {
  ExecOut out;
  out.next_pc = pc + 4;

  if (!d.valid) {
    out.trap.kind = TrapKind::IllegalInstruction;
    out.trap.addr = pc;
    return out;
  }

  const std::uint64_t s2 = d.is_literal ? d.literal : ops.s2;

  switch (d.klass) {
    case InstClass::IntOp:
      out.writes_dst = true;
      switch (d.opcode) {
        case Opcode::INTA: out.value = alu::exec_inta(d.func, ops.s1, s2); break;
        case Opcode::INTL: out.value = alu::exec_intl(d.func, ops.s1, s2, ops.old_dst); break;
        case Opcode::INTS: out.value = alu::exec_ints(d.func, ops.s1, s2); break;
        case Opcode::INTM: out.value = alu::exec_intm(d.func, ops.s1, s2, out.trap); break;
        default: break;
      }
      break;

    case InstClass::FpOp:
      out.writes_dst = true;
      if (d.opcode == Opcode::FLTI)
        out.value = alu::exec_flti(d.func, ops.s1, ops.s2);
      else
        out.value = alu::exec_fltl(d.func, ops.s1, ops.s2, ops.old_dst);
      break;

    case InstClass::FpMove:
      out.writes_dst = true;
      out.value = ops.s1;  // pure bit transfer in both directions
      break;

    case InstClass::Lda:
      out.writes_dst = true;
      out.value = d.opcode == Opcode::LDA
                      ? ops.s1 + std::uint64_t(std::int64_t(d.disp))
                      : ops.s1 + (std::uint64_t(std::int64_t(d.disp)) << 16);
      break;

    case InstClass::Load:
    case InstClass::FpLoad:
      out.writes_dst = true;  // value filled by do_mem
      out.mem_addr = ops.s1 + std::uint64_t(std::int64_t(d.disp));
      break;

    case InstClass::Store:
    case InstClass::FpStore:
      out.mem_addr = ops.s1 + std::uint64_t(std::int64_t(d.disp));
      out.store_value = s2;
      break;

    case InstClass::CondBranch:
      out.branch_taken = alu::branch_cond(d.opcode, ops.s1);
      if (out.branch_taken) out.next_pc = pc + 4 + 4 * std::uint64_t(std::int64_t(d.disp));
      break;

    case InstClass::Br:
      out.branch_taken = true;
      out.writes_dst = d.dst < 32;
      out.value = pc + 4;
      out.next_pc = pc + 4 + 4 * std::uint64_t(std::int64_t(d.disp));
      break;

    case InstClass::Jump:
      out.branch_taken = true;
      out.writes_dst = d.dst < 32;
      out.value = pc + 4;
      out.next_pc = ops.s1 & ~3ull;
      break;

    case InstClass::Pal:
      if (d.palcode == std::uint32_t(isa::PalFunc::HALT)) {
        out.trap.kind = TrapKind::Halt;
        out.trap.addr = pc;
      } else {
        out.is_pseudo = true;  // CALLSYS: dispatched by the OS layer
      }
      break;

    case InstClass::Pseudo:
      out.is_pseudo = true;
      break;

    case InstClass::Illegal:
      out.trap.kind = TrapKind::IllegalInstruction;
      out.trap.addr = pc;
      break;
  }
  return out;
}

TrapInfo do_mem(const Decoded& d, ExecOut& out, mem::MemSystem& ms, MemHooks* hooks) {
  TrapInfo trap;
  const unsigned bytes = d.mem_bytes();
  if (bytes == 0) return trap;

  if (d.is_load()) {
    std::uint64_t raw = 0;
    const mem::AccessError e = ms.read(out.mem_addr, bytes, raw);
    if (e != mem::AccessError::None) {
      trap.kind = TrapKind::MemFault;
      trap.mem_error = e;
      trap.addr = out.mem_addr;
      return trap;
    }
    if (hooks != nullptr) raw = hooks->on_load(out.mem_addr, raw, bytes);
    switch (d.opcode) {
      case Opcode::LDL: out.value = sext32(raw); break;
      case Opcode::LDQ: out.value = raw; break;
      case Opcode::LDS: out.value = as_bits(double(std::bit_cast<float>(std::uint32_t(raw)))); break;
      case Opcode::LDT: out.value = raw; break;
      default: break;
    }
  } else {
    std::uint64_t raw = out.store_value;
    if (d.opcode == Opcode::STS) raw = std::bit_cast<std::uint32_t>(float(as_f64(raw)));
    if (d.opcode == Opcode::STL) raw = std::uint32_t(raw);
    if (hooks != nullptr) raw = hooks->on_store(out.mem_addr, raw, bytes);
    const mem::AccessError e = ms.write(out.mem_addr, bytes, raw);
    if (e != mem::AccessError::None) {
      trap.kind = TrapKind::MemFault;
      trap.mem_error = e;
      trap.addr = out.mem_addr;
      return trap;
    }
  }
  return trap;
}

void writeback(const Decoded& d, const ExecOut& out, ArchState& st) noexcept {
  if (out.writes_dst && d.dst < 32) {
    if (d.dst_fp)
      st.set_freg_bits(d.dst, out.value);
    else
      st.set_ireg(d.dst, out.value);
  }
  st.set_pc(out.next_pc);
}

}  // namespace gemfi::cpu
