#include "cpu/exec.hpp"

#include <bit>
#include <cmath>

namespace gemfi::cpu {

namespace {

using isa::Decoded;
using isa::InstClass;
using isa::Opcode;

constexpr std::uint64_t sext32(std::uint64_t v) noexcept {
  return std::uint64_t(std::int64_t(std::int32_t(v)));
}

constexpr double as_f64(std::uint64_t bits) noexcept { return std::bit_cast<double>(bits); }
constexpr std::uint64_t as_bits(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }

std::uint64_t exec_inta(unsigned func, std::uint64_t a, std::uint64_t b) noexcept {
  using isa::IntaFunc;
  const auto sa = std::int64_t(a);
  const auto sb = std::int64_t(b);
  switch (static_cast<IntaFunc>(func)) {
    case IntaFunc::ADDL: return sext32(a + b);
    case IntaFunc::SUBL: return sext32(a - b);
    case IntaFunc::ADDQ: return a + b;
    case IntaFunc::SUBQ: return a - b;
    case IntaFunc::S4ADDQ: return a * 4 + b;
    case IntaFunc::S8ADDQ: return a * 8 + b;
    case IntaFunc::CMPEQ: return a == b ? 1 : 0;
    case IntaFunc::CMPLT: return sa < sb ? 1 : 0;
    case IntaFunc::CMPLE: return sa <= sb ? 1 : 0;
    case IntaFunc::CMPULT: return a < b ? 1 : 0;
    case IntaFunc::CMPULE: return a <= b ? 1 : 0;
  }
  return 0;
}

std::uint64_t exec_intl(unsigned func, std::uint64_t a, std::uint64_t b,
                        std::uint64_t old_dst) noexcept {
  using isa::IntlFunc;
  const auto sa = std::int64_t(a);
  switch (static_cast<IntlFunc>(func)) {
    case IntlFunc::AND: return a & b;
    case IntlFunc::BIC: return a & ~b;
    case IntlFunc::BIS: return a | b;
    case IntlFunc::ORNOT: return a | ~b;
    case IntlFunc::XOR: return a ^ b;
    case IntlFunc::EQV: return a ^ ~b;
    case IntlFunc::CMOVEQ: return a == 0 ? b : old_dst;
    case IntlFunc::CMOVNE: return a != 0 ? b : old_dst;
    case IntlFunc::CMOVLT: return sa < 0 ? b : old_dst;
    case IntlFunc::CMOVGE: return sa >= 0 ? b : old_dst;
    case IntlFunc::CMOVLE: return sa <= 0 ? b : old_dst;
    case IntlFunc::CMOVGT: return sa > 0 ? b : old_dst;
    case IntlFunc::CMOVLBS: return (a & 1) != 0 ? b : old_dst;
    case IntlFunc::CMOVLBC: return (a & 1) == 0 ? b : old_dst;
  }
  return 0;
}

std::uint64_t exec_ints(unsigned func, std::uint64_t a, std::uint64_t b) noexcept {
  using isa::IntsFunc;
  const unsigned sh = unsigned(b & 63);
  switch (static_cast<IntsFunc>(func)) {
    case IntsFunc::SLL: return a << sh;
    case IntsFunc::SRL: return a >> sh;
    case IntsFunc::SRA: return std::uint64_t(std::int64_t(a) >> sh);
  }
  return 0;
}

std::uint64_t exec_intm(unsigned func, std::uint64_t a, std::uint64_t b,
                        TrapInfo& trap) noexcept {
  using isa::IntmFunc;
  switch (static_cast<IntmFunc>(func)) {
    case IntmFunc::MULL: return sext32(std::uint64_t(std::uint32_t(a) * std::uint32_t(b)));
    case IntmFunc::MULQ: return a * b;
    case IntmFunc::UMULH:
      return std::uint64_t((unsigned __int128)(a) * (unsigned __int128)(b) >> 64);
    case IntmFunc::DIVQ:
    case IntmFunc::REMQ: {
      if (b == 0) {
        trap.kind = TrapKind::Arithmetic;
        return 0;
      }
      const auto sa = std::int64_t(a);
      const auto sb = std::int64_t(b);
      if (sa == INT64_MIN && sb == -1)  // overflow: wrap like hardware would
        return func == unsigned(IntmFunc::DIVQ) ? std::uint64_t(INT64_MIN) : 0;
      return std::uint64_t(func == unsigned(IntmFunc::DIVQ) ? sa / sb : sa % sb);
    }
  }
  return 0;
}

std::uint64_t exec_flti(unsigned func, std::uint64_t abits, std::uint64_t bbits) noexcept {
  using isa::FltiFunc;
  const double a = as_f64(abits);
  const double b = as_f64(bbits);
  constexpr double kTrue = 2.0;  // Alpha FP compares write 2.0 / +0.0
  switch (static_cast<FltiFunc>(func)) {
    case FltiFunc::ADDT: return as_bits(a + b);
    case FltiFunc::SUBT: return as_bits(a - b);
    case FltiFunc::MULT: return as_bits(a * b);
    case FltiFunc::DIVT: return as_bits(a / b);
    case FltiFunc::CMPTUN: return as_bits(std::isnan(a) || std::isnan(b) ? kTrue : 0.0);
    case FltiFunc::CMPTEQ: return as_bits(a == b ? kTrue : 0.0);
    case FltiFunc::CMPTLT: return as_bits(a < b ? kTrue : 0.0);
    case FltiFunc::CMPTLE: return as_bits(a <= b ? kTrue : 0.0);
    case FltiFunc::SQRTT: return as_bits(std::sqrt(b));
    case FltiFunc::CVTTQ: {
      // double -> int64, truncating; out-of-range and NaN produce INT64_MIN
      // (a defined result: fault-corrupted FP values must not be host UB).
      if (std::isnan(b) || b >= 9.2233720368547758e18 || b <= -9.2233720368547758e18)
        return std::uint64_t(INT64_MIN);
      return std::uint64_t(std::int64_t(b));
    }
    case FltiFunc::CVTQT: return as_bits(double(std::int64_t(bbits)));
  }
  return 0;
}

std::uint64_t exec_fltl(unsigned func, std::uint64_t abits, std::uint64_t bbits,
                        std::uint64_t old_dst) noexcept {
  using isa::FltlFunc;
  constexpr std::uint64_t kSign = 0x8000000000000000ull;
  switch (static_cast<FltlFunc>(func)) {
    case FltlFunc::CPYS: return (abits & kSign) | (bbits & ~kSign);
    case FltlFunc::CPYSN: return (~abits & kSign) | (bbits & ~kSign);
    case FltlFunc::FCMOVEQ: return as_f64(abits) == 0.0 ? bbits : old_dst;
    case FltlFunc::FCMOVNE: return as_f64(abits) != 0.0 ? bbits : old_dst;
  }
  return 0;
}

bool branch_cond(Opcode op, std::uint64_t s1) noexcept {
  const auto sv = std::int64_t(s1);
  const double fv = as_f64(s1);
  switch (op) {
    case Opcode::BEQ: return s1 == 0;
    case Opcode::BNE: return s1 != 0;
    case Opcode::BLT: return sv < 0;
    case Opcode::BLE: return sv <= 0;
    case Opcode::BGT: return sv > 0;
    case Opcode::BGE: return sv >= 0;
    case Opcode::BLBS: return (s1 & 1) != 0;
    case Opcode::BLBC: return (s1 & 1) == 0;
    case Opcode::FBEQ: return fv == 0.0;
    case Opcode::FBNE: return fv != 0.0;
    case Opcode::FBLT: return fv < 0.0;
    case Opcode::FBLE: return fv <= 0.0;
    case Opcode::FBGE: return fv >= 0.0;
    case Opcode::FBGT: return fv > 0.0;
    default: return false;
  }
}

}  // namespace

Operands read_operands(const Decoded& d, const ArchState& st) noexcept {
  Operands ops;
  if (d.src1 < 32) ops.s1 = d.src1_fp ? st.freg_bits(d.src1) : st.ireg(d.src1);
  if (d.src2 < 32) ops.s2 = d.src2_fp ? st.freg_bits(d.src2) : st.ireg(d.src2);
  if (d.dst < 32) ops.old_dst = d.dst_fp ? st.freg_bits(d.dst) : st.ireg(d.dst);
  return ops;
}

ExecOut execute(const Decoded& d, const Operands& ops, std::uint64_t pc) noexcept {
  ExecOut out;
  out.next_pc = pc + 4;

  if (!d.valid) {
    out.trap.kind = TrapKind::IllegalInstruction;
    out.trap.addr = pc;
    return out;
  }

  const std::uint64_t s2 = d.is_literal ? d.literal : ops.s2;

  switch (d.klass) {
    case InstClass::IntOp:
      out.writes_dst = true;
      switch (d.opcode) {
        case Opcode::INTA: out.value = exec_inta(d.func, ops.s1, s2); break;
        case Opcode::INTL: out.value = exec_intl(d.func, ops.s1, s2, ops.old_dst); break;
        case Opcode::INTS: out.value = exec_ints(d.func, ops.s1, s2); break;
        case Opcode::INTM: out.value = exec_intm(d.func, ops.s1, s2, out.trap); break;
        default: break;
      }
      break;

    case InstClass::FpOp:
      out.writes_dst = true;
      if (d.opcode == Opcode::FLTI)
        out.value = exec_flti(d.func, ops.s1, ops.s2);
      else
        out.value = exec_fltl(d.func, ops.s1, ops.s2, ops.old_dst);
      break;

    case InstClass::FpMove:
      out.writes_dst = true;
      out.value = ops.s1;  // pure bit transfer in both directions
      break;

    case InstClass::Lda:
      out.writes_dst = true;
      out.value = d.opcode == Opcode::LDA
                      ? ops.s1 + std::uint64_t(std::int64_t(d.disp))
                      : ops.s1 + (std::uint64_t(std::int64_t(d.disp)) << 16);
      break;

    case InstClass::Load:
    case InstClass::FpLoad:
      out.writes_dst = true;  // value filled by do_mem
      out.mem_addr = ops.s1 + std::uint64_t(std::int64_t(d.disp));
      break;

    case InstClass::Store:
    case InstClass::FpStore:
      out.mem_addr = ops.s1 + std::uint64_t(std::int64_t(d.disp));
      out.store_value = s2;
      break;

    case InstClass::CondBranch:
      out.branch_taken = branch_cond(d.opcode, ops.s1);
      if (out.branch_taken) out.next_pc = pc + 4 + 4 * std::uint64_t(std::int64_t(d.disp));
      break;

    case InstClass::Br:
      out.branch_taken = true;
      out.writes_dst = d.dst < 32;
      out.value = pc + 4;
      out.next_pc = pc + 4 + 4 * std::uint64_t(std::int64_t(d.disp));
      break;

    case InstClass::Jump:
      out.branch_taken = true;
      out.writes_dst = d.dst < 32;
      out.value = pc + 4;
      out.next_pc = ops.s1 & ~3ull;
      break;

    case InstClass::Pal:
      if (d.palcode == std::uint32_t(isa::PalFunc::HALT)) {
        out.trap.kind = TrapKind::Halt;
        out.trap.addr = pc;
      } else {
        out.is_pseudo = true;  // CALLSYS: dispatched by the OS layer
      }
      break;

    case InstClass::Pseudo:
      out.is_pseudo = true;
      break;

    case InstClass::Illegal:
      out.trap.kind = TrapKind::IllegalInstruction;
      out.trap.addr = pc;
      break;
  }
  return out;
}

TrapInfo do_mem(const Decoded& d, ExecOut& out, mem::MemSystem& ms, MemHooks* hooks) {
  TrapInfo trap;
  const unsigned bytes = d.mem_bytes();
  if (bytes == 0) return trap;

  if (d.is_load()) {
    std::uint64_t raw = 0;
    const mem::AccessError e = ms.read(out.mem_addr, bytes, raw);
    if (e != mem::AccessError::None) {
      trap.kind = TrapKind::MemFault;
      trap.mem_error = e;
      trap.addr = out.mem_addr;
      return trap;
    }
    if (hooks != nullptr) raw = hooks->on_load(out.mem_addr, raw, bytes);
    switch (d.opcode) {
      case Opcode::LDL: out.value = sext32(raw); break;
      case Opcode::LDQ: out.value = raw; break;
      case Opcode::LDS: out.value = as_bits(double(std::bit_cast<float>(std::uint32_t(raw)))); break;
      case Opcode::LDT: out.value = raw; break;
      default: break;
    }
  } else {
    std::uint64_t raw = out.store_value;
    if (d.opcode == Opcode::STS) raw = std::bit_cast<std::uint32_t>(float(as_f64(raw)));
    if (d.opcode == Opcode::STL) raw = std::uint32_t(raw);
    if (hooks != nullptr) raw = hooks->on_store(out.mem_addr, raw, bytes);
    const mem::AccessError e = ms.write(out.mem_addr, bytes, raw);
    if (e != mem::AccessError::None) {
      trap.kind = TrapKind::MemFault;
      trap.mem_error = e;
      trap.addr = out.mem_addr;
      return trap;
    }
  }
  return trap;
}

void writeback(const Decoded& d, const ExecOut& out, ArchState& st) noexcept {
  if (out.writes_dst && d.dst < 32) {
    if (d.dst_fp)
      st.set_freg_bits(d.dst, out.value);
    else
      st.set_ireg(d.dst, out.value);
  }
  st.set_pc(out.next_pc);
}

}  // namespace gemfi::cpu
