#include "cpu/pipelined_cpu.hpp"

#include <algorithm>
#include <stdexcept>

namespace gemfi::cpu {

namespace {
class PipeMemHooks final : public MemHooks {
 public:
  PipeMemHooks(StageHooks* hooks, std::uint64_t fi_seq) : hooks_(hooks), fi_seq_(fi_seq) {}
  std::uint64_t on_load(std::uint64_t addr, std::uint64_t raw, unsigned bytes) override {
    return hooks_ != nullptr ? hooks_->on_load(addr, raw, bytes, fi_seq_) : raw;
  }
  std::uint64_t on_store(std::uint64_t addr, std::uint64_t raw, unsigned bytes) override {
    return hooks_ != nullptr ? hooks_->on_store(addr, raw, bytes, fi_seq_) : raw;
  }

 private:
  StageHooks* hooks_;
  std::uint64_t fi_seq_;
};
}  // namespace

CycleResult PipelinedCpu::cycle() {
  ++stats_.ticks;
  CycleResult result;
  // Back-to-front so an instruction can move into the slot freed this cycle.
  stage_wb(result);
  stage_mem();
  stage_ex();
  stage_id();
  stage_if();
  return result;
}

std::uint64_t PipelinedCpu::stall_cycles() const noexcept {
  // A cycle is a pure stall iff every stage either is a no-op or only
  // decrements its wait counter. Stage occupancy is constant across such a
  // window — a latch can only free via the MEM counter reaching zero, which
  // by construction lies outside the window — so this one-shot analysis
  // covers every cycle in it.
  if (mem_wb_) return 0;            // WB commits next cycle
  if (id_ex_ && !ex_mem_) return 0;  // EX executes next cycle
  if (if_id_ && !id_ex_) {
    // ID would act — except a serializing pseudo/PAL op waiting for the
    // back end to drain, which stays put while the MEM stall below bounds
    // the window. With hooks attached ID re-fires the decode hook every
    // waiting cycle, so that state is not warpable under FI.
    const bool serial_wait =
        hooks_ == nullptr && !if_id_->trap.pending() &&
        (if_id_->d.klass == isa::InstClass::Pseudo ||
         if_id_->d.klass == isa::InstClass::Pal) &&
        ex_mem_;
    if (!serial_wait) return 0;
  }
  std::uint64_t w = ~0ull;
  if (ex_mem_) {
    // Counter 0 => MEM issues the access next cycle; 1 => it moves the
    // instruction to WB. Both are events, so the window is counter - 1.
    if (mem_cycles_left_ < 2) return 0;
    w = mem_cycles_left_ - 1;
  }
  if (fetch_inflight_) {
    if (!if_id_) {
      // The fetched instruction moves into the free IF/ID latch when the
      // I-cache completes. With IF/ID occupied the counter just drains to
      // zero and the move waits on the MEM stall, imposing no bound.
      if (fetch_cycles_left_ < 2) return 0;
      w = std::min<std::uint64_t>(w, std::uint64_t(fetch_cycles_left_) - 1);
    }
  } else if (fetch_enabled_ && fetch_pc_valid_ && !halt_fetch_after_trap_) {
    return 0;  // IF issues a new fetch next cycle
  }
  return w == ~0ull ? 0 : w;  // no bounded counter active: nothing to warp
}

void PipelinedCpu::warp(std::uint64_t k) noexcept {
  stats_.ticks += k;
  // k <= stall_cycles() guarantees k < mem_cycles_left_ when it is armed;
  // the fetch counter clamps at zero exactly as the per-cycle decrement does
  // (it keeps draining while the IF/ID latch stays occupied).
  if (mem_cycles_left_ != 0) mem_cycles_left_ -= std::uint32_t(k);
  if (fetch_cycles_left_ != 0)
    fetch_cycles_left_ -= std::uint32_t(std::min<std::uint64_t>(k, fetch_cycles_left_));
}

void PipelinedCpu::stage_wb(CycleResult& result) {
  if (!mem_wb_) return;
  InFlight& f = *mem_wb_;
  CommitEvent ev;
  ev.d = f.d;
  ev.pc = f.pc;
  ev.fi_seq = f.fi_seq;
  if (f.trap.pending()) {
    ev.trap = f.trap;  // faulting instruction: no architectural effects
  } else {
    writeback(f.d, f.out, arch_);
    ev.is_pseudo = f.out.is_pseudo;
    if (hooks_ != nullptr) hooks_->on_commit(f.d, f.pc, f.fi_seq);
    ++stats_.committed;
  }
  result.commit = std::move(ev);
  mem_wb_.reset();
}

void PipelinedCpu::stage_mem() {
  if (mem_cycles_left_ > 0) {
    --mem_cycles_left_;
    if (mem_cycles_left_ == 0 && ex_mem_ && !mem_wb_) {
      mem_wb_ = std::move(ex_mem_);
      ex_mem_.reset();
    }
    return;
  }
  if (!ex_mem_ || mem_wb_) return;
  InFlight& f = *ex_mem_;
  if (!f.trap.pending() && f.d.is_mem_access()) {
    const std::uint32_t latency = ms_.data_latency(f.out.mem_addr, f.d.is_store());
    PipeMemHooks mh(hooks_, f.fi_seq);
    const TrapInfo mt = do_mem(f.d, f.out, ms_, &mh);
    if (mt.pending()) {
      f.trap = mt;
      squash_younger_than_ex();
      halt_fetch_after_trap_ = true;
    }
    if (latency > 1) {
      mem_cycles_left_ = latency - 1;
      return;  // hold in MEM while the cache/DRAM access completes
    }
  }
  mem_wb_ = std::move(ex_mem_);
  ex_mem_.reset();
}

void PipelinedCpu::stage_ex() {
  if (!id_ex_ || ex_mem_) return;
  InFlight& f = *id_ex_;
  if (!f.trap.pending() && !f.executed) {
    // Operand read with forwarding from the MEM/WB latch; anything older has
    // already been written back to the architectural file.
    const auto read_reg = [&](unsigned idx, bool fp) -> std::uint64_t {
      if (mem_wb_ && !mem_wb_->trap.pending() && mem_wb_->out.writes_dst &&
          mem_wb_->d.dst == idx && mem_wb_->d.dst_fp == fp)
        return mem_wb_->out.value;
      return fp ? arch_.freg_bits(idx) : arch_.ireg(idx);
    };
    Operands ops;
    if (f.d.src1 < 32) ops.s1 = read_reg(f.d.src1, f.d.src1_fp);
    if (f.d.src2 < 32) ops.s2 = read_reg(f.d.src2, f.d.src2_fp);
    if (f.d.dst < 32) ops.old_dst = read_reg(f.d.dst, f.d.dst_fp);

    f.out = execute(f.d, ops, f.pc);
    if (hooks_ != nullptr) hooks_->on_execute(f.out, f.d, f.pc, f.fi_seq);
    f.executed = true;

    if (f.out.trap.pending()) {
      f.trap = f.out.trap;
      squash_younger_than_ex();
      halt_fetch_after_trap_ = true;
    } else {
      const bool mispredicted = f.out.next_pc != f.pred_next;
      if (f.d.is_control())
        pred_.update(f.pc, f.out.branch_taken, f.out.next_pc, mispredicted);
      if (mispredicted) {
        squash_younger_than_ex();
        fetch_pc_ = f.out.next_pc;
        fetch_pc_valid_ = true;
      }
    }
  }
  ex_mem_ = std::move(id_ex_);
  id_ex_.reset();
}

void PipelinedCpu::stage_id() {
  if (!if_id_ || id_ex_) return;
  InFlight& f = *if_id_;
  if (!f.trap.pending()) {
    // f.d was decoded in IF (predecode cache or live); ID only applies the
    // decode-stage fault hook, which re-decodes from f.d.raw if it fires.
    if (hooks_ != nullptr) hooks_->on_decode(f.d, f.pc, f.fi_seq);
    // GemFI intrinsics and PAL calls serialize: wait until the back end is
    // empty so they execute on a quiesced machine (checkpoint correctness).
    if (f.d.klass == isa::InstClass::Pseudo || f.d.klass == isa::InstClass::Pal) {
      if (ex_mem_ || mem_wb_) return;
    }
  }
  id_ex_ = std::move(if_id_);
  if_id_.reset();
}

std::uint64_t PipelinedCpu::predict_next(std::uint64_t pc, const isa::Decoded& d,
                                         bool& is_branch) {
  // Next-PC selection from the decode of the (possibly fault-corrupted)
  // word IF actually saw — the same Decoded record ID will serve to EX.
  is_branch = false;
  switch (d.klass) {
    case isa::InstClass::CondBranch: {
      is_branch = true;
      const Prediction p = pred_.predict(pc);
      return p.taken ? pc + 4 + 4 * std::uint64_t(std::int64_t(d.disp)) : pc + 4;
    }
    case isa::InstClass::Br:
      is_branch = true;
      if (d.opcode == isa::Opcode::BSR) pred_.ras_push(pc + 4);
      return pc + 4 + 4 * std::uint64_t(std::int64_t(d.disp));
    case isa::InstClass::Jump: {
      is_branch = true;
      const auto kind = static_cast<isa::JumpKind>((d.disp >> 14) & 3);
      if (kind == isa::JumpKind::RET || kind == isa::JumpKind::JSR_COROUTINE) {
        const std::uint64_t t = pred_.ras_pop();
        return t != 0 ? t : pc + 4;
      }
      if (kind == isa::JumpKind::JSR) pred_.ras_push(pc + 4);
      const Prediction p = pred_.predict(pc);
      return p.btb_hit ? p.target : pc + 4;
    }
    default:
      return pc + 4;
  }
}

void PipelinedCpu::stage_if() {
  if (fetch_inflight_) {
    if (fetch_cycles_left_ > 0) --fetch_cycles_left_;
    if (fetch_cycles_left_ == 0 && !if_id_) {
      if_id_ = std::move(fetch_inflight_);
      fetch_inflight_.reset();
    }
    return;
  }
  if (!fetch_enabled_ || halt_fetch_after_trap_ || !fetch_pc_valid_) return;

  InFlight f;
  f.pc = fetch_pc_;
  ++stats_.fetched;
  const isa::Decoded* pre = ms_.predecode(fetch_pc_);
  std::uint32_t word = 0;
  mem::AccessError fe = mem::AccessError::None;
  if (pre != nullptr)
    word = pre->raw;
  else
    fe = ms_.fetch(fetch_pc_, word);
  const std::uint32_t latency = ms_.fetch_latency(fetch_pc_);
  if (fe != mem::AccessError::None) {
    f.trap = {TrapKind::FetchFault, fe, fetch_pc_};
    fetch_pc_valid_ = false;  // nowhere sensible to fetch from
  } else {
    f.raw = word;
    if (hooks_ != nullptr) {
      const auto fr = hooks_->on_fetch(fetch_pc_, word);
      f.raw = fr.word;
      f.fi_seq = fr.fi_seq;
    }
    if (pre != nullptr && f.raw == word) {
      f.d = *pre;
    } else {
      if (pre != nullptr) ms_.note_predecode_bypass();  // FI-corrupted word
      f.d = isa::decode(f.raw);
    }
    f.pred_next = predict_next(fetch_pc_, f.d, f.is_branch_pred);
    fetch_pc_ = f.pred_next;
  }
  fetch_cycles_left_ = latency > 0 ? latency - 1 : 0;
  if (fetch_cycles_left_ == 0 && !if_id_) {
    if_id_ = std::move(f);
  } else {
    fetch_inflight_ = std::move(f);
  }
}

void PipelinedCpu::squash_younger_than_ex() {
  const auto squash = [&](std::optional<InFlight>& latch) {
    if (!latch) return;
    if (hooks_ != nullptr) hooks_->on_squash(latch->fi_seq);
    ++stats_.squashed;
    latch.reset();
  };
  squash(if_id_);
  squash(fetch_inflight_);
  fetch_cycles_left_ = 0;
}

void PipelinedCpu::flush_and_redirect(std::uint64_t new_pc) {
  const auto squash = [&](std::optional<InFlight>& latch) {
    if (!latch) return;
    if (hooks_ != nullptr) hooks_->on_squash(latch->fi_seq);
    ++stats_.squashed;
    latch.reset();
  };
  squash(fetch_inflight_);
  squash(if_id_);
  squash(id_ex_);
  squash(ex_mem_);
  squash(mem_wb_);
  fetch_cycles_left_ = 0;
  mem_cycles_left_ = 0;
  halt_fetch_after_trap_ = false;
  arch_.set_pc(new_pc);
  fetch_pc_ = new_pc;
  fetch_pc_valid_ = true;
}

void PipelinedCpu::serialize(util::ByteWriter& w) const {
  if (!quiesced()) throw std::logic_error("PipelinedCpu checkpoint requires a quiesced pipeline");
  arch_.serialize(w);
  w.put_u64(fetch_pc_);
  w.put_bool(fetch_pc_valid_);
  w.put_bool(fetch_enabled_);
  pred_.serialize(w);
  w.put_u64(stats_.ticks);
  w.put_u64(stats_.committed);
  w.put_u64(stats_.fetched);
  w.put_u64(stats_.squashed);
}

void PipelinedCpu::deserialize(util::ByteReader& r) {
  arch_.deserialize(r);
  fetch_pc_ = r.get_u64();
  fetch_pc_valid_ = r.get_bool();
  fetch_enabled_ = r.get_bool();
  pred_.deserialize(r);
  stats_.ticks = r.get_u64();
  stats_.committed = r.get_u64();
  stats_.fetched = r.get_u64();
  stats_.squashed = r.get_u64();
  fetch_inflight_.reset();
  if_id_.reset();
  id_ex_.reset();
  ex_mem_.reset();
  mem_wb_.reset();
  fetch_cycles_left_ = 0;
  mem_cycles_left_ = 0;
  halt_fetch_after_trap_ = false;
}

}  // namespace gemfi::cpu
