#include "cpu/arch_state.hpp"

namespace gemfi::cpu {

void ArchState::serialize(util::ByteWriter& w) const {
  for (const auto r : iregs_) w.put_u64(r);
  for (const auto r : fregs_) w.put_u64(r);
  w.put_u64(pc_);
}

void ArchState::deserialize(util::ByteReader& r) {
  for (auto& reg : iregs_) reg = r.get_u64();
  for (auto& reg : fregs_) reg = r.get_u64();
  pc_ = r.get_u64();
  // A corrupt checkpoint must not break the raw-file invariant the
  // superblock executor relies on (slot 31 == 0); the accessors already
  // read these slots as zero, so this changes no observable state.
  iregs_[isa::kZeroReg] = 0;
  fregs_[isa::kFpZeroReg] = 0;
}

}  // namespace gemfi::cpu
