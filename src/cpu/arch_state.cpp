#include "cpu/arch_state.hpp"

namespace gemfi::cpu {

void ArchState::serialize(util::ByteWriter& w) const {
  for (const auto r : iregs_) w.put_u64(r);
  for (const auto r : fregs_) w.put_u64(r);
  w.put_u64(pc_);
}

void ArchState::deserialize(util::ByteReader& r) {
  for (auto& reg : iregs_) reg = r.get_u64();
  for (auto& reg : fregs_) reg = r.get_u64();
  pc_ = r.get_u64();
}

}  // namespace gemfi::cpu
