// Golden-path fast mode: the superblock (threaded-code) execution tier.
//
// run_trace_batch() drives the atomic model through lowered straight-line
// traces from the MemSystem's superblock cache. Per instruction it pays one
// switch dispatch over a flat SbOp — no predecode lookup, no Operands /
// ExecOut materialization, no accessor indirection — while staying
// bit-identical to run_atomic_batch in every architectural observable:
// each op is one tick and one commit, a trapping op consumes its tick
// without committing and leaves the PC at the trapping instruction, and
// memory accesses flow through the same checked MemSystem calls.
//
// ALU semantics are alu::* from exec_units.hpp — the same definitions the
// interpreter executes — invoked with compile-time function codes so the
// per-kind switch folds down to the bare operation.
//
// Exits:
//   * trap            -> stop event via make_stop_event (shared boundary)
//   * pseudo/PAL      -> never lowered; the interpreter fallback step stops
//   * budget          -> PC parked at the first unexecuted op
//   * store into a    -> side exit after the store commits (the trace just
//     guard page         invalidated itself; the outer loop rebuilds)
//   * taken branch    -> loop back to the entry without re-lookup, or
//                        re-dispatch at the target
#include <bit>

#include "cpu/atomic_cpu.hpp"
#include "cpu/exec_units.hpp"
#include "isa/superblock_cache.hpp"

namespace gemfi::cpu {

BatchResult SimpleCpu::run_trace_batch(std::uint64_t max_ticks, CommitEvent& ev) {
  using isa::SbKind;
  using isa::SbOp;
  namespace A = alu;

  BatchResult br;
  if (timing_ || !fetch_enabled_ || busy_ != 0 || pending_) return br;

  std::uint64_t* const R = arch_.iregs_raw();
  std::uint64_t* const F = arch_.fregs_raw();
  const auto ib = [&](const SbOp& op) noexcept -> std::uint64_t {
    return (op.flags & isa::kSbLitB) != 0 ? op.lit : R[op.b];
  };
  const auto wri = [&](std::uint8_t dst, std::uint64_t v) noexcept {
    if (dst != 31) R[dst] = v;  // slot 31 is the pinned zero register
  };
  const auto wrf = [&](std::uint8_t dst, std::uint64_t v) noexcept {
    if (dst != 31) F[dst] = v;
  };
  std::uint64_t traced = 0;

  while (br.ticks < max_ticks && !br.stopped) {
    const std::uint64_t entry = arch_.pc();
    const isa::Superblock* sb = ms_.superblock(entry);
    if (sb == nullptr || sb->ops.empty()) {
      // Entry not traceable (pseudo-op, PAL, illegal word, bad PC, tier
      // disabled): one interpreter step through the shared batch-step path,
      // which owns the exact trap/pseudo stop semantics.
      if (!atomic_batch_step(br, ev)) break;
      continue;
    }

    const SbOp* const ops = sb->ops.data();
    const std::size_t nops = sb->ops.size();
    const std::uint64_t commits_in = br.commits;
    std::uint64_t pc = entry;
    std::size_t i = 0;
    bool leave = false;  // side exit: stop this trace but keep batching
    while (!leave && i < nops && br.ticks < max_ticks) {
      const SbOp& op = ops[i];
      ++br.ticks;
      std::uint64_t next = pc + 4;
      bool term = false;
      TrapInfo trap;
      switch (op.kind) {
        // --- integer arithmetic ---
        case SbKind::AddL:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::ADDL), R[op.a], ib(op)));
          break;
        case SbKind::SubL:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::SUBL), R[op.a], ib(op)));
          break;
        case SbKind::AddQ:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::ADDQ), R[op.a], ib(op)));
          break;
        case SbKind::SubQ:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::SUBQ), R[op.a], ib(op)));
          break;
        case SbKind::S4AddQ:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::S4ADDQ), R[op.a], ib(op)));
          break;
        case SbKind::S8AddQ:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::S8ADDQ), R[op.a], ib(op)));
          break;
        case SbKind::CmpEq:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::CMPEQ), R[op.a], ib(op)));
          break;
        case SbKind::CmpLt:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::CMPLT), R[op.a], ib(op)));
          break;
        case SbKind::CmpLe:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::CMPLE), R[op.a], ib(op)));
          break;
        case SbKind::CmpULt:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::CMPULT), R[op.a], ib(op)));
          break;
        case SbKind::CmpULe:
          wri(op.dst, A::exec_inta(unsigned(isa::IntaFunc::CMPULE), R[op.a], ib(op)));
          break;

        // --- logical / conditional moves ---
        case SbKind::And:
          wri(op.dst, A::exec_intl(unsigned(isa::IntlFunc::AND), R[op.a], ib(op), 0));
          break;
        case SbKind::Bic:
          wri(op.dst, A::exec_intl(unsigned(isa::IntlFunc::BIC), R[op.a], ib(op), 0));
          break;
        case SbKind::Bis:
          wri(op.dst, A::exec_intl(unsigned(isa::IntlFunc::BIS), R[op.a], ib(op), 0));
          break;
        case SbKind::OrNot:
          wri(op.dst, A::exec_intl(unsigned(isa::IntlFunc::ORNOT), R[op.a], ib(op), 0));
          break;
        case SbKind::Xor:
          wri(op.dst, A::exec_intl(unsigned(isa::IntlFunc::XOR), R[op.a], ib(op), 0));
          break;
        case SbKind::Eqv:
          wri(op.dst, A::exec_intl(unsigned(isa::IntlFunc::EQV), R[op.a], ib(op), 0));
          break;
        case SbKind::CmovEq:
          wri(op.dst,
              A::exec_intl(unsigned(isa::IntlFunc::CMOVEQ), R[op.a], ib(op), R[op.dst]));
          break;
        case SbKind::CmovNe:
          wri(op.dst,
              A::exec_intl(unsigned(isa::IntlFunc::CMOVNE), R[op.a], ib(op), R[op.dst]));
          break;
        case SbKind::CmovLt:
          wri(op.dst,
              A::exec_intl(unsigned(isa::IntlFunc::CMOVLT), R[op.a], ib(op), R[op.dst]));
          break;
        case SbKind::CmovGe:
          wri(op.dst,
              A::exec_intl(unsigned(isa::IntlFunc::CMOVGE), R[op.a], ib(op), R[op.dst]));
          break;
        case SbKind::CmovLe:
          wri(op.dst,
              A::exec_intl(unsigned(isa::IntlFunc::CMOVLE), R[op.a], ib(op), R[op.dst]));
          break;
        case SbKind::CmovGt:
          wri(op.dst,
              A::exec_intl(unsigned(isa::IntlFunc::CMOVGT), R[op.a], ib(op), R[op.dst]));
          break;
        case SbKind::CmovLbs:
          wri(op.dst,
              A::exec_intl(unsigned(isa::IntlFunc::CMOVLBS), R[op.a], ib(op), R[op.dst]));
          break;
        case SbKind::CmovLbc:
          wri(op.dst,
              A::exec_intl(unsigned(isa::IntlFunc::CMOVLBC), R[op.a], ib(op), R[op.dst]));
          break;

        // --- shifts ---
        case SbKind::Sll:
          wri(op.dst, A::exec_ints(unsigned(isa::IntsFunc::SLL), R[op.a], ib(op)));
          break;
        case SbKind::Srl:
          wri(op.dst, A::exec_ints(unsigned(isa::IntsFunc::SRL), R[op.a], ib(op)));
          break;
        case SbKind::Sra:
          wri(op.dst, A::exec_ints(unsigned(isa::IntsFunc::SRA), R[op.a], ib(op)));
          break;

        // --- multiply / divide ---
        case SbKind::MulL:
          wri(op.dst, A::exec_intm(unsigned(isa::IntmFunc::MULL), R[op.a], ib(op), trap));
          break;
        case SbKind::MulQ:
          wri(op.dst, A::exec_intm(unsigned(isa::IntmFunc::MULQ), R[op.a], ib(op), trap));
          break;
        case SbKind::UMulH:
          wri(op.dst, A::exec_intm(unsigned(isa::IntmFunc::UMULH), R[op.a], ib(op), trap));
          break;
        case SbKind::DivQ: {
          const std::uint64_t v =
              A::exec_intm(unsigned(isa::IntmFunc::DIVQ), R[op.a], ib(op), trap);
          if (!trap.pending()) wri(op.dst, v);
          break;
        }
        case SbKind::RemQ: {
          const std::uint64_t v =
              A::exec_intm(unsigned(isa::IntmFunc::REMQ), R[op.a], ib(op), trap);
          if (!trap.pending()) wri(op.dst, v);
          break;
        }

        // --- FP operate ---
        case SbKind::AddT:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::ADDT), F[op.a], F[op.b]));
          break;
        case SbKind::SubT:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::SUBT), F[op.a], F[op.b]));
          break;
        case SbKind::MulT:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::MULT), F[op.a], F[op.b]));
          break;
        case SbKind::DivT:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::DIVT), F[op.a], F[op.b]));
          break;
        case SbKind::CmpTUn:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::CMPTUN), F[op.a], F[op.b]));
          break;
        case SbKind::CmpTEq:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::CMPTEQ), F[op.a], F[op.b]));
          break;
        case SbKind::CmpTLt:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::CMPTLT), F[op.a], F[op.b]));
          break;
        case SbKind::CmpTLe:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::CMPTLE), F[op.a], F[op.b]));
          break;
        case SbKind::SqrtT:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::SQRTT), F[op.a], F[op.b]));
          break;
        case SbKind::CvtTQ:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::CVTTQ), F[op.a], F[op.b]));
          break;
        case SbKind::CvtQT:
          wrf(op.dst, A::exec_flti(unsigned(isa::FltiFunc::CVTQT), F[op.a], F[op.b]));
          break;
        case SbKind::CpyS:
          wrf(op.dst,
              A::exec_fltl(unsigned(isa::FltlFunc::CPYS), F[op.a], F[op.b], F[op.dst]));
          break;
        case SbKind::CpySN:
          wrf(op.dst,
              A::exec_fltl(unsigned(isa::FltlFunc::CPYSN), F[op.a], F[op.b], F[op.dst]));
          break;
        case SbKind::FCmovEq:
          wrf(op.dst,
              A::exec_fltl(unsigned(isa::FltlFunc::FCMOVEQ), F[op.a], F[op.b], F[op.dst]));
          break;
        case SbKind::FCmovNe:
          wrf(op.dst,
              A::exec_fltl(unsigned(isa::FltlFunc::FCMOVNE), F[op.a], F[op.b], F[op.dst]));
          break;

        // --- register-file transfers ---
        case SbKind::Itof:
          wrf(op.dst, R[op.a]);
          break;
        case SbKind::Ftoi:
          wri(op.dst, F[op.a]);
          break;

        // --- address arithmetic ---
        case SbKind::Lda:
          wri(op.dst, R[op.a] + std::uint64_t(op.disp));
          break;

        // --- loads ---
        case SbKind::LdL: {
          const std::uint64_t addr = R[op.a] + std::uint64_t(op.disp);
          std::uint64_t raw = 0;
          if (const mem::AccessError e = ms_.read(addr, 4, raw); e != mem::AccessError::None)
            trap = {TrapKind::MemFault, e, addr};
          else
            wri(op.dst, A::sext32(raw));
          break;
        }
        case SbKind::LdQ: {
          const std::uint64_t addr = R[op.a] + std::uint64_t(op.disp);
          std::uint64_t raw = 0;
          if (const mem::AccessError e = ms_.read(addr, 8, raw); e != mem::AccessError::None)
            trap = {TrapKind::MemFault, e, addr};
          else
            wri(op.dst, raw);
          break;
        }
        case SbKind::LdS: {
          const std::uint64_t addr = R[op.a] + std::uint64_t(op.disp);
          std::uint64_t raw = 0;
          if (const mem::AccessError e = ms_.read(addr, 4, raw); e != mem::AccessError::None)
            trap = {TrapKind::MemFault, e, addr};
          else
            wrf(op.dst,
                A::as_bits(double(std::bit_cast<float>(std::uint32_t(raw)))));
          break;
        }
        case SbKind::LdT: {
          const std::uint64_t addr = R[op.a] + std::uint64_t(op.disp);
          std::uint64_t raw = 0;
          if (const mem::AccessError e = ms_.read(addr, 8, raw); e != mem::AccessError::None)
            trap = {TrapKind::MemFault, e, addr};
          else
            wrf(op.dst, raw);
          break;
        }

        // --- stores (a successful store into one of this trace's guard
        // pages just invalidated the trace: side-exit after committing) ---
        case SbKind::StL: {
          const std::uint64_t addr = R[op.a] + std::uint64_t(op.disp);
          const std::uint64_t raw = std::uint32_t(R[op.b]);
          if (const mem::AccessError e = ms_.write(addr, 4, raw); e != mem::AccessError::None)
            trap = {TrapKind::MemFault, e, addr};
          else if (sb->covers_page(addr >> mem::PhysMem::kPageShift))
            leave = true;
          break;
        }
        case SbKind::StQ: {
          const std::uint64_t addr = R[op.a] + std::uint64_t(op.disp);
          if (const mem::AccessError e = ms_.write(addr, 8, R[op.b]);
              e != mem::AccessError::None)
            trap = {TrapKind::MemFault, e, addr};
          else if (sb->covers_page(addr >> mem::PhysMem::kPageShift))
            leave = true;
          break;
        }
        case SbKind::StS: {
          const std::uint64_t addr = R[op.a] + std::uint64_t(op.disp);
          const std::uint64_t raw = std::bit_cast<std::uint32_t>(float(A::as_f64(F[op.b])));
          if (const mem::AccessError e = ms_.write(addr, 4, raw); e != mem::AccessError::None)
            trap = {TrapKind::MemFault, e, addr};
          else if (sb->covers_page(addr >> mem::PhysMem::kPageShift))
            leave = true;
          break;
        }
        case SbKind::StT: {
          const std::uint64_t addr = R[op.a] + std::uint64_t(op.disp);
          if (const mem::AccessError e = ms_.write(addr, 8, F[op.b]);
              e != mem::AccessError::None)
            trap = {TrapKind::MemFault, e, addr};
          else if (sb->covers_page(addr >> mem::PhysMem::kPageShift))
            leave = true;
          break;
        }

        // --- terminals ---
        case SbKind::CondBrI:
          if (A::branch_cond(isa::Opcode(op.func), R[op.a]))
            next = pc + std::uint64_t(op.disp);
          term = true;
          break;
        case SbKind::CondBrF:
          if (A::branch_cond(isa::Opcode(op.func), F[op.a]))
            next = pc + std::uint64_t(op.disp);
          term = true;
          break;
        case SbKind::Br:
          wri(op.dst, pc + 4);
          next = pc + std::uint64_t(op.disp);
          term = true;
          break;
        case SbKind::Jump:
          // Read the target before writing the link: dst may alias a.
          next = R[op.a] & ~3ull;
          wri(op.dst, pc + 4);
          term = true;
          break;
      }

      if (trap.pending()) {
        // The trapping op consumed its tick but did not commit; the PC stays
        // at the trapping instruction, exactly like the interpreter.
        make_stop_event(ev, nullptr, pc, trap, false);
        br.stopped = true;
        break;
      }
      ++br.commits;
      pc = next;
      if (term) {
        // Hot-loop fast path: a taken branch back to the entry re-enters
        // the trace without a cache lookup. Safe because any store into the
        // trace's own pages side-exits above and nothing else can mutate
        // code mid-batch (no hooks, single thread between boundaries).
        if (!leave && pc == entry && br.ticks < max_ticks) {
          i = 0;
          continue;
        }
        break;
      }
      ++i;
    }
    traced += br.commits - commits_in;
    arch_.set_pc(pc);
  }

  stats_.ticks += br.ticks;
  stats_.fetched += br.ticks;
  stats_.committed += br.commits;
  if (traced != 0) ms_.note_superblock_exec(traced);
  return br;
}

}  // namespace gemfi::cpu
