// Common interface of the CPU models, and the stage-hook surface the fault
// injector plugs into.
//
// Three models are provided, mirroring gem5's speed/accuracy ladder that the
// paper leans on (Sec. II and the Sec. IV methodology of running detailed
// until the fault commits/squashes, then switching to atomic):
//   * AtomicSimpleCpu   — 1 instruction per tick, no memory timing;
//   * TimingSimpleCpu   — same, but charges I-/D-cache latencies;
//   * PipelinedCpu      — 5-stage in-order pipeline with a tournament branch
//                         predictor, speculative fetch and squash.
//
// Every simulated instruction flows through the StageHooks exactly as in
// Fig. 2 of the paper: fetch -> decode -> execute -> memory -> commit, with
// a squash path for wrong-path and post-trap instructions.
#pragma once

#include <cstdint>
#include <optional>

#include "cpu/arch_state.hpp"
#include "cpu/exec.hpp"
#include "isa/decoder.hpp"
#include "mem/memsys.hpp"

namespace gemfi::cpu {

/// Per-stage interception points (implemented by fi::FaultManager; a null
/// hooks pointer reproduces the vanilla-gem5 baseline of Fig. 7).
class StageHooks {
 public:
  virtual ~StageHooks() = default;

  struct FetchResult {
    std::uint32_t word = 0;
    std::uint64_t fi_seq = 0;  // per-thread fetch index; 0 = FI inactive for thread
  };

  /// Called once per instruction fetch with the raw word; may corrupt it.
  virtual FetchResult on_fetch(std::uint64_t pc, std::uint32_t word) = 0;
  /// Called at decode; may corrupt the register-selection fields.
  virtual void on_decode(isa::Decoded& d, std::uint64_t pc, std::uint64_t fi_seq) = 0;
  /// Called after execute; may corrupt the result / effective address.
  virtual void on_execute(ExecOut& out, const isa::Decoded& d, std::uint64_t pc,
                          std::uint64_t fi_seq) = 0;
  /// Called on the raw memory bus value of loads / stores; may corrupt it.
  virtual std::uint64_t on_load(std::uint64_t addr, std::uint64_t raw, unsigned bytes,
                                std::uint64_t fi_seq) = 0;
  virtual std::uint64_t on_store(std::uint64_t addr, std::uint64_t raw, unsigned bytes,
                                 std::uint64_t fi_seq) = 0;
  /// Instruction architecturally completed (propagation tracking).
  virtual void on_commit(const isa::Decoded& d, std::uint64_t pc, std::uint64_t fi_seq) = 0;
  /// Instruction squashed (wrong path / behind a trap).
  virtual void on_squash(std::uint64_t fi_seq) = 0;
};

/// One committed instruction, surfaced to the simulation loop.
struct CommitEvent {
  isa::Decoded d;
  std::uint64_t pc = 0;
  std::uint64_t fi_seq = 0;
  TrapInfo trap;          // pending() => the program faulted at this instruction
  bool is_pseudo = false; // PSEUDO/CALLSYS: OS layer dispatches it
};

struct CycleResult {
  std::optional<CommitEvent> commit;
};

struct CpuStats {
  std::uint64_t ticks = 0;
  std::uint64_t committed = 0;
  std::uint64_t fetched = 0;
  std::uint64_t squashed = 0;
};

class CpuModel {
 public:
  explicit CpuModel(mem::MemSystem& ms) : ms_(ms) {}
  virtual ~CpuModel() = default;

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  [[nodiscard]] ArchState& arch() noexcept { return arch_; }
  [[nodiscard]] const ArchState& arch() const noexcept { return arch_; }
  void set_hooks(StageHooks* hooks) noexcept { hooks_ = hooks; }

  /// Advance one tick.
  virtual CycleResult cycle() = 0;

  /// Discard all in-flight work and restart fetching at `new_pc`
  /// (context switch, PC-fault injection, post-pseudo resynchronization).
  virtual void flush_and_redirect(std::uint64_t new_pc) = 0;

  /// Gate instruction fetch (used to drain before a context switch).
  virtual void set_fetch_enabled(bool enabled) = 0;

  /// True when no instruction is in flight.
  [[nodiscard]] virtual bool quiesced() const = 0;

  /// Stall-warp query: how many upcoming cycle() calls are guaranteed to be
  /// pure stall-counter decrements — no commit, latch movement, memory or
  /// predictor access, stat change (beyond ticks), or hook call. The caller
  /// may replace that many cycle() calls with one warp(), after bounding the
  /// window by its own external events (FI tick triggers, watchdog deadline,
  /// wall-clock sampling). 0 means the next cycle may do work. Only bounded
  /// waits (counter-driven stalls) are reported; idle states with no
  /// in-flight work return 0 so the per-tick loop keeps owning drain and
  /// context-switch edges.
  [[nodiscard]] virtual std::uint64_t stall_cycles() const noexcept { return 0; }

  /// Advance the clock by `k` cycles in one step. Only legal for
  /// k <= stall_cycles(); observably identical to k cycle() calls.
  virtual void warp(std::uint64_t k) noexcept { stats_.ticks += k; }

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  [[nodiscard]] const CpuStats& stats() const noexcept { return stats_; }

  /// Checkpoint support; only legal while quiesced().
  virtual void serialize(util::ByteWriter& w) const = 0;
  virtual void deserialize(util::ByteReader& r) = 0;

 protected:
  mem::MemSystem& ms_;
  ArchState arch_;
  StageHooks* hooks_ = nullptr;
  CpuStats stats_;
};

}  // namespace gemfi::cpu
