#include "isa/predecode_cache.hpp"

#include <cstring>

namespace gemfi::isa {

const Decoded* PredecodeCache::fill(std::uint64_t pc, std::uint64_t version,
                                    std::span<const std::uint8_t> page_bytes) {
  const std::uint64_t page = pc >> kPageShift;
  if (page >= pages_.size()) pages_.resize(std::size_t(page) + 1);
  Page& p = pages_[page];
  const std::size_t words = page_bytes.size() / sizeof(Word);
  p.entries.resize(words);
  for (std::size_t i = 0; i < words; ++i) {
    Word w;
    std::memcpy(&w, page_bytes.data() + i * sizeof(Word), sizeof(Word));
    p.entries[i] = decode(w);  // little-endian, same as PhysMem::load
  }
  p.version = version;
  p.valid = true;
  ++stats_.fills;
  const std::uint64_t idx = (pc & (kPageBytes - 1)) / sizeof(Word);
  return idx < p.entries.size() ? &p.entries[idx] : nullptr;
}

void PredecodeCache::invalidate_all() noexcept {
  for (Page& p : pages_) p.valid = false;
}

std::size_t PredecodeCache::cached_pages() const noexcept {
  std::size_t n = 0;
  for (const Page& p : pages_)
    if (p.valid) ++n;
  return n;
}

}  // namespace gemfi::isa
