// Opcode and function-code assignments of the uAlpha ISA.
//
// Numbering follows the real DEC Alpha AXP architecture wherever we implement
// the same instruction (so the fetch-stage fault analysis of the paper's
// Sec. IV-B — which reasons about opcode/function/Ra/displacement bit fields —
// carries over unchanged). Two documented deviations:
//   * DIVQ/REMQ (INTM func 0x40/0x41): Alpha has no integer divide; guest
//     kernels need one and emulating it in software would distort the
//     instruction mix.
//   * Opcode 0x01 hosts the GemFI/m5 pseudo-instruction space (fi_activate,
//     fi_read_init_all, exit, prints), mirroring gem5's m5op mechanism.
#pragma once

#include <cstdint>

namespace gemfi::isa {

enum class Opcode : std::uint8_t {
  CALL_PAL = 0x00,
  PSEUDO = 0x01,  // GemFI / m5 pseudo-instruction space (PALcode format)
  LDA = 0x08,
  LDAH = 0x09,
  INTA = 0x10,  // integer arithmetic group
  INTL = 0x11,  // integer logical group
  INTS = 0x12,  // integer shift group
  INTM = 0x13,  // integer multiply (+ divide extension) group
  ITOF = 0x14,  // integer -> FP register transfer group
  FLTI = 0x16,  // IEEE floating-point operate group
  FLTL = 0x17,  // FP copy-sign / datatype-independent group
  JMP = 0x1A,   // memory-format jumps: JMP/JSR/RET/JSR_COROUTINE
  FTOI = 0x1C,  // FP -> integer register transfer group
  LDS = 0x22,
  LDT = 0x23,
  STS = 0x26,
  STT = 0x27,
  LDL = 0x28,
  LDQ = 0x29,
  STL = 0x2C,
  STQ = 0x2D,
  BR = 0x30,
  FBEQ = 0x31,
  FBLT = 0x32,
  FBLE = 0x33,
  BSR = 0x34,
  FBNE = 0x35,
  FBGE = 0x36,
  FBGT = 0x37,
  BLBC = 0x38,
  BEQ = 0x39,
  BLT = 0x3A,
  BLE = 0x3B,
  BLBS = 0x3C,
  BNE = 0x3D,
  BGE = 0x3E,
  BGT = 0x3F,
};

// --- Function codes per operate group (7-bit for integer, 11-bit for FP) ---

enum class IntaFunc : std::uint8_t {
  ADDL = 0x00,
  S4ADDQ = 0x22,
  SUBL = 0x09,
  S8ADDQ = 0x32,
  ADDQ = 0x20,
  SUBQ = 0x29,
  CMPULT = 0x1D,
  CMPEQ = 0x2D,
  CMPULE = 0x3D,
  CMPLT = 0x4D,
  CMPLE = 0x6D,
};

enum class IntlFunc : std::uint8_t {
  AND = 0x00,
  BIC = 0x08,
  CMOVLBS = 0x14,
  CMOVLBC = 0x16,
  BIS = 0x20,
  CMOVEQ = 0x24,
  CMOVNE = 0x26,
  ORNOT = 0x28,
  XOR = 0x40,
  CMOVLT = 0x44,
  CMOVGE = 0x46,
  EQV = 0x48,
  CMOVLE = 0x64,
  CMOVGT = 0x66,
};

enum class IntsFunc : std::uint8_t {
  SRL = 0x34,
  SLL = 0x39,
  SRA = 0x3C,
};

enum class IntmFunc : std::uint8_t {
  MULL = 0x00,
  MULQ = 0x20,
  UMULH = 0x30,
  DIVQ = 0x40,  // uAlpha extension (see header comment)
  REMQ = 0x41,  // uAlpha extension
};

enum class FltiFunc : std::uint16_t {
  ADDT = 0x0A0,
  SUBT = 0x0A1,
  MULT = 0x0A2,
  DIVT = 0x0A3,
  CMPTUN = 0x0A4,
  CMPTEQ = 0x0A5,
  CMPTLT = 0x0A6,
  CMPTLE = 0x0A7,
  SQRTT = 0x0AB,
  CVTTQ = 0x0AF,  // double -> signed 64-bit integer (round toward zero)
  CVTQT = 0x0BE,  // signed 64-bit integer -> double
};

enum class FltlFunc : std::uint16_t {
  CPYS = 0x020,   // Fc = sign(Fa) | magnitude(Fb)
  CPYSN = 0x021,  // Fc = ~sign(Fa) | magnitude(Fb)
  FCMOVEQ = 0x02A,
  FCMOVNE = 0x02B,
};

enum class ItofFunc : std::uint16_t {
  ITOFT = 0x024,  // Fc = bit pattern of Ra
};

enum class FtoiFunc : std::uint16_t {
  FTOIT = 0x070,  // Rc = bit pattern of Fa
};

/// Memory-format jump variants, selected by disp[15:14] as on real Alpha.
enum class JumpKind : std::uint8_t {
  JMP = 0,
  JSR = 1,
  RET = 2,
  JSR_COROUTINE = 3,
};

/// CALL_PAL numbers (subset).
enum class PalFunc : std::uint32_t {
  HALT = 0x0000,
  CALLSYS = 0x0083,
};

/// GemFI/m5 pseudo-instruction numbers, carried in the PALcode number field
/// of opcode 0x01. These are the guest-visible API of the tool (Sec. III-A).
enum class PseudoFunc : std::uint32_t {
  FI_ACTIVATE = 0,    // fi_activate_inst(id): toggle FI for this thread; id in a0
  FI_READ_INIT = 1,   // fi_read_init_all(): checkpoint + reset FI bookkeeping
  EXIT = 2,           // m5_exit(code): terminate thread; code in a0
  PRINT_CHAR = 3,     // emit low byte of a0 to the thread's output stream
  PRINT_INT = 4,      // emit a0 as signed decimal
  PRINT_FP = 5,       // emit f16 as %.17g
  GET_INSTRET = 6,    // v0 = committed instruction count of this thread
  YIELD = 7,          // voluntarily end the thread's scheduling quantum
  SYSCALL = 8,        // kernel syscall: number in v0, args a0..a2, result v0
};

}  // namespace gemfi::isa
