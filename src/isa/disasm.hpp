// Disassembler. GemFI prints the affected assembly instruction whenever it
// injects a fault (used post-mortem to correlate faults with outcomes,
// Sec. IV-B); this module provides that rendering.
#pragma once

#include <string>

#include "isa/decoder.hpp"

namespace gemfi::isa {

/// Mnemonic of a decoded instruction ("addq", "ldq", "beq", ...).
std::string mnemonic(const Decoded& d);

/// Full rendering, e.g. "addq t0, 0x8, t1" or "ldq a0, 16(sp)".
/// `pc` is used to render branch targets as absolute addresses.
std::string disassemble(const Decoded& d, std::uint64_t pc = 0);

}  // namespace gemfi::isa
