#include "isa/disasm.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "isa/registers.hpp"

namespace gemfi::isa {

namespace {

std::string fmt(const char* f, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* f, ...) {
  char buf[128];
  va_list args;
  va_start(args, f);
  std::vsnprintf(buf, sizeof buf, f, args);
  va_end(args);
  return buf;
}

const char* inta_name(unsigned f) {
  switch (static_cast<IntaFunc>(f)) {
    case IntaFunc::ADDL: return "addl";
    case IntaFunc::S4ADDQ: return "s4addq";
    case IntaFunc::SUBL: return "subl";
    case IntaFunc::S8ADDQ: return "s8addq";
    case IntaFunc::ADDQ: return "addq";
    case IntaFunc::SUBQ: return "subq";
    case IntaFunc::CMPULT: return "cmpult";
    case IntaFunc::CMPEQ: return "cmpeq";
    case IntaFunc::CMPULE: return "cmpule";
    case IntaFunc::CMPLT: return "cmplt";
    case IntaFunc::CMPLE: return "cmple";
  }
  return "inta?";
}

const char* intl_name(unsigned f) {
  switch (static_cast<IntlFunc>(f)) {
    case IntlFunc::AND: return "and";
    case IntlFunc::BIC: return "bic";
    case IntlFunc::CMOVLBS: return "cmovlbs";
    case IntlFunc::CMOVLBC: return "cmovlbc";
    case IntlFunc::BIS: return "bis";
    case IntlFunc::CMOVEQ: return "cmoveq";
    case IntlFunc::CMOVNE: return "cmovne";
    case IntlFunc::ORNOT: return "ornot";
    case IntlFunc::XOR: return "xor";
    case IntlFunc::CMOVLT: return "cmovlt";
    case IntlFunc::CMOVGE: return "cmovge";
    case IntlFunc::EQV: return "eqv";
    case IntlFunc::CMOVLE: return "cmovle";
    case IntlFunc::CMOVGT: return "cmovgt";
  }
  return "intl?";
}

const char* ints_name(unsigned f) {
  switch (static_cast<IntsFunc>(f)) {
    case IntsFunc::SRL: return "srl";
    case IntsFunc::SLL: return "sll";
    case IntsFunc::SRA: return "sra";
  }
  return "ints?";
}

const char* intm_name(unsigned f) {
  switch (static_cast<IntmFunc>(f)) {
    case IntmFunc::MULL: return "mull";
    case IntmFunc::MULQ: return "mulq";
    case IntmFunc::UMULH: return "umulh";
    case IntmFunc::DIVQ: return "divq";
    case IntmFunc::REMQ: return "remq";
  }
  return "intm?";
}

const char* flti_name(unsigned f) {
  switch (static_cast<FltiFunc>(f)) {
    case FltiFunc::ADDT: return "addt";
    case FltiFunc::SUBT: return "subt";
    case FltiFunc::MULT: return "mult";
    case FltiFunc::DIVT: return "divt";
    case FltiFunc::CMPTUN: return "cmptun";
    case FltiFunc::CMPTEQ: return "cmpteq";
    case FltiFunc::CMPTLT: return "cmptlt";
    case FltiFunc::CMPTLE: return "cmptle";
    case FltiFunc::SQRTT: return "sqrtt";
    case FltiFunc::CVTTQ: return "cvttq";
    case FltiFunc::CVTQT: return "cvtqt";
  }
  return "flti?";
}

const char* fltl_name(unsigned f) {
  switch (static_cast<FltlFunc>(f)) {
    case FltlFunc::CPYS: return "cpys";
    case FltlFunc::CPYSN: return "cpysn";
    case FltlFunc::FCMOVEQ: return "fcmoveq";
    case FltlFunc::FCMOVNE: return "fcmovne";
  }
  return "fltl?";
}

const char* branch_name(Opcode op) {
  switch (op) {
    case Opcode::BR: return "br";
    case Opcode::BSR: return "bsr";
    case Opcode::FBEQ: return "fbeq";
    case Opcode::FBLT: return "fblt";
    case Opcode::FBLE: return "fble";
    case Opcode::FBNE: return "fbne";
    case Opcode::FBGE: return "fbge";
    case Opcode::FBGT: return "fbgt";
    case Opcode::BLBC: return "blbc";
    case Opcode::BEQ: return "beq";
    case Opcode::BLT: return "blt";
    case Opcode::BLE: return "ble";
    case Opcode::BLBS: return "blbs";
    case Opcode::BNE: return "bne";
    case Opcode::BGE: return "bge";
    case Opcode::BGT: return "bgt";
    default: return "b?";
  }
}

const char* mem_name(Opcode op) {
  switch (op) {
    case Opcode::LDA: return "lda";
    case Opcode::LDAH: return "ldah";
    case Opcode::LDL: return "ldl";
    case Opcode::LDQ: return "ldq";
    case Opcode::STL: return "stl";
    case Opcode::STQ: return "stq";
    case Opcode::LDS: return "lds";
    case Opcode::LDT: return "ldt";
    case Opcode::STS: return "sts";
    case Opcode::STT: return "stt";
    default: return "m?";
  }
}

const char* pseudo_name(std::uint32_t n) {
  switch (static_cast<PseudoFunc>(n)) {
    case PseudoFunc::FI_ACTIVATE: return "fi_activate_inst";
    case PseudoFunc::FI_READ_INIT: return "fi_read_init_all";
    case PseudoFunc::EXIT: return "m5_exit";
    case PseudoFunc::PRINT_CHAR: return "m5_print_char";
    case PseudoFunc::PRINT_INT: return "m5_print_int";
    case PseudoFunc::PRINT_FP: return "m5_print_fp";
    case PseudoFunc::GET_INSTRET: return "m5_instret";
    case PseudoFunc::YIELD: return "m5_yield";
    case PseudoFunc::SYSCALL: return "sys_call";
  }
  return "pseudo?";
}

}  // namespace

std::string mnemonic(const Decoded& d) {
  if (!d.valid) return "<illegal>";
  switch (d.format) {
    case Format::PalCode:
      if (d.opcode == Opcode::CALL_PAL)
        return d.palcode == std::uint32_t(PalFunc::HALT) ? "call_pal halt" : "call_pal callsys";
      return pseudo_name(d.palcode);
    case Format::Branch:
      return branch_name(d.opcode);
    case Format::Memory:
      if (d.opcode == Opcode::JMP) {
        switch (static_cast<JumpKind>((d.disp >> 14) & 3)) {
          case JumpKind::JMP: return "jmp";
          case JumpKind::JSR: return "jsr";
          case JumpKind::RET: return "ret";
          case JumpKind::JSR_COROUTINE: return "jsr_coroutine";
        }
      }
      return mem_name(d.opcode);
    case Format::Operate:
      switch (d.opcode) {
        case Opcode::INTA: return inta_name(d.func);
        case Opcode::INTL: return intl_name(d.func);
        case Opcode::INTS: return ints_name(d.func);
        case Opcode::INTM: return intm_name(d.func);
        default: return "op?";
      }
    case Format::FpOperate:
      switch (d.opcode) {
        case Opcode::FLTI: return flti_name(d.func);
        case Opcode::FLTL: return fltl_name(d.func);
        case Opcode::ITOF: return "itoft";
        case Opcode::FTOI: return "ftoit";
        default: return "fop?";
      }
    case Format::Unknown:
      break;
  }
  return "<illegal>";
}

std::string disassemble(const Decoded& d, std::uint64_t pc) {
  if (!d.valid) return fmt("<illegal 0x%08x>", d.raw);
  const std::string m = mnemonic(d);
  switch (d.format) {
    case Format::PalCode:
      return m;
    case Format::Branch: {
      const std::uint64_t target = pc + 4 + 4 * std::int64_t(d.disp);
      if (d.opcode == Opcode::BR || d.opcode == Opcode::BSR)
        return fmt("%s %s, 0x%" PRIx64, m.c_str(), int_reg_name(d.ra).data(), target);
      const bool fp = d.src1_fp;
      return fmt("%s %s, 0x%" PRIx64, m.c_str(),
                 fp ? fp_reg_name(d.ra).data() : int_reg_name(d.ra).data(), target);
    }
    case Format::Memory: {
      if (d.opcode == Opcode::JMP)
        return fmt("%s %s, (%s)", m.c_str(), int_reg_name(d.ra).data(),
                   int_reg_name(d.rb).data());
      const bool fp = d.klass == InstClass::FpLoad || d.klass == InstClass::FpStore;
      return fmt("%s %s, %d(%s)", m.c_str(),
                 fp ? fp_reg_name(d.ra).data() : int_reg_name(d.ra).data(), d.disp,
                 int_reg_name(d.rb).data());
    }
    case Format::Operate:
      if (d.is_literal)
        return fmt("%s %s, 0x%x, %s", m.c_str(), int_reg_name(d.ra).data(), d.literal,
                   int_reg_name(d.rc).data());
      return fmt("%s %s, %s, %s", m.c_str(), int_reg_name(d.ra).data(),
                 int_reg_name(d.rb).data(), int_reg_name(d.rc).data());
    case Format::FpOperate:
      if (d.opcode == Opcode::ITOF)
        return fmt("%s %s, %s", m.c_str(), int_reg_name(d.ra).data(), fp_reg_name(d.rc).data());
      if (d.opcode == Opcode::FTOI)
        return fmt("%s %s, %s", m.c_str(), fp_reg_name(d.ra).data(), int_reg_name(d.rc).data());
      return fmt("%s %s, %s, %s", m.c_str(), fp_reg_name(d.ra).data(),
                 fp_reg_name(d.rb).data(), fp_reg_name(d.rc).data());
    case Format::Unknown:
      break;
  }
  return fmt("<illegal 0x%08x>", d.raw);
}

}  // namespace gemfi::isa
