#include "isa/superblock_cache.hpp"

namespace gemfi::isa {

namespace {

// Map a Decoded register index (32 = "none") onto the executor's raw-array
// convention, where slot 31 of each file is pinned to zero.
constexpr std::uint8_t map_reg(std::uint8_t r) noexcept { return r >= 32 ? 31 : r; }

Lowered lower_intop(const Decoded& d, SbOp& op) noexcept {
  switch (d.opcode) {
    case Opcode::INTA:
      switch (static_cast<IntaFunc>(d.func)) {
        case IntaFunc::ADDL: op.kind = SbKind::AddL; return Lowered::Mid;
        case IntaFunc::SUBL: op.kind = SbKind::SubL; return Lowered::Mid;
        case IntaFunc::ADDQ: op.kind = SbKind::AddQ; return Lowered::Mid;
        case IntaFunc::SUBQ: op.kind = SbKind::SubQ; return Lowered::Mid;
        case IntaFunc::S4ADDQ: op.kind = SbKind::S4AddQ; return Lowered::Mid;
        case IntaFunc::S8ADDQ: op.kind = SbKind::S8AddQ; return Lowered::Mid;
        case IntaFunc::CMPEQ: op.kind = SbKind::CmpEq; return Lowered::Mid;
        case IntaFunc::CMPLT: op.kind = SbKind::CmpLt; return Lowered::Mid;
        case IntaFunc::CMPLE: op.kind = SbKind::CmpLe; return Lowered::Mid;
        case IntaFunc::CMPULT: op.kind = SbKind::CmpULt; return Lowered::Mid;
        case IntaFunc::CMPULE: op.kind = SbKind::CmpULe; return Lowered::Mid;
      }
      return Lowered::No;
    case Opcode::INTL:
      switch (static_cast<IntlFunc>(d.func)) {
        case IntlFunc::AND: op.kind = SbKind::And; return Lowered::Mid;
        case IntlFunc::BIC: op.kind = SbKind::Bic; return Lowered::Mid;
        case IntlFunc::BIS: op.kind = SbKind::Bis; return Lowered::Mid;
        case IntlFunc::ORNOT: op.kind = SbKind::OrNot; return Lowered::Mid;
        case IntlFunc::XOR: op.kind = SbKind::Xor; return Lowered::Mid;
        case IntlFunc::EQV: op.kind = SbKind::Eqv; return Lowered::Mid;
        case IntlFunc::CMOVEQ: op.kind = SbKind::CmovEq; return Lowered::Mid;
        case IntlFunc::CMOVNE: op.kind = SbKind::CmovNe; return Lowered::Mid;
        case IntlFunc::CMOVLT: op.kind = SbKind::CmovLt; return Lowered::Mid;
        case IntlFunc::CMOVGE: op.kind = SbKind::CmovGe; return Lowered::Mid;
        case IntlFunc::CMOVLE: op.kind = SbKind::CmovLe; return Lowered::Mid;
        case IntlFunc::CMOVGT: op.kind = SbKind::CmovGt; return Lowered::Mid;
        case IntlFunc::CMOVLBS: op.kind = SbKind::CmovLbs; return Lowered::Mid;
        case IntlFunc::CMOVLBC: op.kind = SbKind::CmovLbc; return Lowered::Mid;
      }
      return Lowered::No;
    case Opcode::INTS:
      switch (static_cast<IntsFunc>(d.func)) {
        case IntsFunc::SLL: op.kind = SbKind::Sll; return Lowered::Mid;
        case IntsFunc::SRL: op.kind = SbKind::Srl; return Lowered::Mid;
        case IntsFunc::SRA: op.kind = SbKind::Sra; return Lowered::Mid;
      }
      return Lowered::No;
    case Opcode::INTM:
      switch (static_cast<IntmFunc>(d.func)) {
        case IntmFunc::MULL: op.kind = SbKind::MulL; return Lowered::Mid;
        case IntmFunc::MULQ: op.kind = SbKind::MulQ; return Lowered::Mid;
        case IntmFunc::UMULH: op.kind = SbKind::UMulH; return Lowered::Mid;
        case IntmFunc::DIVQ: op.kind = SbKind::DivQ; return Lowered::Mid;
        case IntmFunc::REMQ: op.kind = SbKind::RemQ; return Lowered::Mid;
      }
      return Lowered::No;
    default:
      return Lowered::No;
  }
}

Lowered lower_fpop(const Decoded& d, SbOp& op) noexcept {
  if (d.opcode == Opcode::FLTI) {
    switch (static_cast<FltiFunc>(d.func)) {
      case FltiFunc::ADDT: op.kind = SbKind::AddT; return Lowered::Mid;
      case FltiFunc::SUBT: op.kind = SbKind::SubT; return Lowered::Mid;
      case FltiFunc::MULT: op.kind = SbKind::MulT; return Lowered::Mid;
      case FltiFunc::DIVT: op.kind = SbKind::DivT; return Lowered::Mid;
      case FltiFunc::CMPTUN: op.kind = SbKind::CmpTUn; return Lowered::Mid;
      case FltiFunc::CMPTEQ: op.kind = SbKind::CmpTEq; return Lowered::Mid;
      case FltiFunc::CMPTLT: op.kind = SbKind::CmpTLt; return Lowered::Mid;
      case FltiFunc::CMPTLE: op.kind = SbKind::CmpTLe; return Lowered::Mid;
      case FltiFunc::SQRTT: op.kind = SbKind::SqrtT; return Lowered::Mid;
      case FltiFunc::CVTTQ: op.kind = SbKind::CvtTQ; return Lowered::Mid;
      case FltiFunc::CVTQT: op.kind = SbKind::CvtQT; return Lowered::Mid;
    }
    return Lowered::No;
  }
  switch (static_cast<FltlFunc>(d.func)) {
    case FltlFunc::CPYS: op.kind = SbKind::CpyS; return Lowered::Mid;
    case FltlFunc::CPYSN: op.kind = SbKind::CpySN; return Lowered::Mid;
    case FltlFunc::FCMOVEQ: op.kind = SbKind::FCmovEq; return Lowered::Mid;
    case FltlFunc::FCMOVNE: op.kind = SbKind::FCmovNe; return Lowered::Mid;
  }
  return Lowered::No;
}

}  // namespace

Lowered lower_to_sbop(const Decoded& d, SbOp& op) noexcept {
  if (!d.valid) return Lowered::No;
  op = SbOp{};
  op.a = map_reg(d.src1);
  op.dst = map_reg(d.dst);
  if (d.is_literal) {
    op.lit = d.literal;
    op.flags |= kSbLitB;
  } else {
    op.b = map_reg(d.src2);
  }

  switch (d.klass) {
    case InstClass::IntOp:
      return lower_intop(d, op);

    case InstClass::FpOp:
      return lower_fpop(d, op);

    case InstClass::FpMove:
      op.kind = d.opcode == Opcode::ITOF ? SbKind::Itof : SbKind::Ftoi;
      return Lowered::Mid;

    case InstClass::Lda:
      op.kind = SbKind::Lda;
      op.disp = d.opcode == Opcode::LDA ? std::int64_t(d.disp)
                                        : std::int64_t(d.disp) << 16;
      return Lowered::Mid;

    case InstClass::Load:
    case InstClass::FpLoad:
      switch (d.opcode) {
        case Opcode::LDL: op.kind = SbKind::LdL; break;
        case Opcode::LDQ: op.kind = SbKind::LdQ; break;
        case Opcode::LDS: op.kind = SbKind::LdS; break;
        case Opcode::LDT: op.kind = SbKind::LdT; break;
        default: return Lowered::No;
      }
      op.disp = std::int64_t(d.disp);
      return Lowered::Mid;

    case InstClass::Store:
    case InstClass::FpStore:
      switch (d.opcode) {
        case Opcode::STL: op.kind = SbKind::StL; break;
        case Opcode::STQ: op.kind = SbKind::StQ; break;
        case Opcode::STS: op.kind = SbKind::StS; break;
        case Opcode::STT: op.kind = SbKind::StT; break;
        default: return Lowered::No;
      }
      // Store data travels in b (Decoded::src2); a is the address base.
      op.disp = std::int64_t(d.disp);
      return Lowered::Mid;

    case InstClass::CondBranch:
      op.kind = d.src1_fp ? SbKind::CondBrF : SbKind::CondBrI;
      op.func = std::uint16_t(d.opcode);  // branch_cond dispatches on this
      op.disp = 4 + 4 * std::int64_t(d.disp);
      return Lowered::Terminal;

    case InstClass::Br:
      op.kind = SbKind::Br;
      op.disp = 4 + 4 * std::int64_t(d.disp);
      return Lowered::Terminal;

    case InstClass::Jump:
      op.kind = SbKind::Jump;
      return Lowered::Terminal;

    case InstClass::Pal:
    case InstClass::Pseudo:
    case InstClass::Illegal:
      // Traps, syscalls and FI pseudo-boundaries belong to the interpreter.
      return Lowered::No;
  }
  return Lowered::No;
}

const Superblock& SuperblockCache::insert(Superblock&& sb) {
  ++stats_.builds;
  if (traces_.size() >= kMaxTraces && traces_.find(sb.entry_pc) == traces_.end()) {
    stats_.evictions += traces_.size();
    traces_.clear();
  }
  auto [it, inserted] = traces_.insert_or_assign(sb.entry_pc, std::move(sb));
  (void)inserted;
  return it->second;
}

void SuperblockCache::invalidate_all() noexcept {
  stats_.evictions += traces_.size();
  traces_.clear();
}

}  // namespace gemfi::isa
