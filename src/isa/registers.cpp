#include "isa/registers.hpp"

#include <array>

namespace gemfi::isa {

namespace {
constexpr std::array<std::string_view, kNumIntRegs> kIntNames = {
    "v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "s0", "s1",
    "s2", "s3", "s4", "s5", "fp", "a0", "a1", "a2", "a3", "a4", "a5",
    "t8", "t9", "t10", "t11", "ra", "pv", "at", "gp", "sp", "zero"};

constexpr std::array<std::string_view, kNumFpRegs> kFpNames = {
    "f0",  "f1",  "f2",  "f3",  "f4",  "f5",  "f6",  "f7",
    "f8",  "f9",  "f10", "f11", "f12", "f13", "f14", "f15",
    "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
    "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31"};
}  // namespace

std::string_view int_reg_name(unsigned r) noexcept {
  return r < kNumIntRegs ? kIntNames[r] : "r?";
}

std::string_view fp_reg_name(unsigned r) noexcept {
  return r < kNumFpRegs ? kFpNames[r] : "f?";
}

}  // namespace gemfi::isa
