// Instruction decoder: raw 32-bit word -> Decoded record.
//
// The decoder is the single source of truth for (a) which encodings are
// architecturally valid (anything else traps as an illegal instruction —
// the paper observes exactly this for fetch-stage faults that land on
// unimplemented opcode/function values) and (b) which register fields an
// instruction reads and writes, which the decode-stage fault injector
// corrupts and the propagation tracker consumes.
#pragma once

#include <cstdint>

#include "isa/encoding.hpp"
#include "isa/opcodes.hpp"

namespace gemfi::isa {

/// Coarse behavioral class of a decoded instruction.
enum class InstClass : std::uint8_t {
  IntOp,     // integer operate (INTA/INTL/INTS/INTM)
  FpOp,      // FP operate (FLTI/FLTL), incl. compares and converts
  FpMove,    // ITOF/FTOI register-file transfers
  Load,      // integer loads (LDL/LDQ)
  Store,     // integer stores (STL/STQ)
  FpLoad,    // LDS/LDT
  FpStore,   // STS/STT
  Lda,       // LDA/LDAH address arithmetic (memory format, no access)
  CondBranch,// BEQ/BNE/... and FP branches
  Br,        // unconditional BR/BSR
  Jump,      // memory-format JMP/JSR/RET
  Pal,       // CALL_PAL
  Pseudo,    // GemFI/m5 pseudo ops
  Illegal,
};

struct Decoded {
  Word raw = 0;
  Opcode opcode{};
  Format format = Format::Unknown;
  InstClass klass = InstClass::Illegal;
  std::uint8_t ra = 31, rb = 31, rc = 31;
  bool is_literal = false;
  std::uint8_t literal = 0;
  std::int32_t disp = 0;       // memory (bytes) or branch (instructions)
  std::uint16_t func = 0;      // 7-bit integer / 11-bit FP function code
  std::uint32_t palcode = 0;   // 26-bit PAL / pseudo number
  bool valid = false;          // false => illegal-instruction trap

  // --- register usage, from the decoded fields ---
  // Indices refer to the integer file unless the *_fp flag is set; index 32
  // means "none". R31/F31 still count as "none" for dependency purposes.
  std::uint8_t src1 = 32, src2 = 32, dst = 32;
  bool src1_fp = false, src2_fp = false, dst_fp = false;

  [[nodiscard]] bool is_mem_access() const noexcept {
    return klass == InstClass::Load || klass == InstClass::Store ||
           klass == InstClass::FpLoad || klass == InstClass::FpStore;
  }
  [[nodiscard]] bool is_store() const noexcept {
    return klass == InstClass::Store || klass == InstClass::FpStore;
  }
  [[nodiscard]] bool is_load() const noexcept {
    return klass == InstClass::Load || klass == InstClass::FpLoad;
  }
  [[nodiscard]] bool is_control() const noexcept {
    return klass == InstClass::CondBranch || klass == InstClass::Br ||
           klass == InstClass::Jump;
  }
  /// Byte width of the memory access (4 or 8); 0 for non-memory instructions.
  [[nodiscard]] unsigned mem_bytes() const noexcept;
};

/// Decode one instruction word. Never throws; inspect `.valid`.
Decoded decode(Word w) noexcept;

}  // namespace gemfi::isa
