// Page-granular predecoded-instruction cache.
//
// decode() is a pure function of the 32-bit instruction word, yet every CPU
// model used to re-run it on every fetch, making it the hot path of all
// campaign benches (gem5 ships a decode cache for exactly this reason). This
// cache decodes each 4 KiB code page once into a flat array of Decoded
// entries; a fetch from a cached page is an index plus a version compare.
//
// Coherence is version-based rather than hook-based: the owner (MemSystem)
// tags each fill with the backing page's mutation version and passes the
// current version on every lookup. Any store into the page, a checkpoint
// restore, or a full image swap bumps the version, so stale entries can
// never be served — there is no invalidation callback to forget. The cache
// itself is never serialized; after a restore the version mismatch makes
// every page refill on first fetch.
//
// Fault-injection contract: entries describe the word *as it sits in
// memory*. A fetch-stage fault corrupts the word after it leaves memory, so
// CPU models must bypass the cached entry (and decode live) whenever the
// post-hook word differs from the cached raw word; note_bypass() keeps count
// of those for the stats report.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/decoder.hpp"

namespace gemfi::isa {

struct PredecodeStats {
  std::uint64_t hits = 0;      // fetches served from a cached page
  std::uint64_t fills = 0;     // page decodes (cold or re-validated)
  std::uint64_t stale = 0;     // lookups that found an outdated page
  std::uint64_t bypasses = 0;  // FI-corrupted fetches decoded live
};

class PredecodeCache {
 public:
  static constexpr unsigned kPageShift = 12;
  static constexpr std::uint64_t kPageBytes = 1ull << kPageShift;
  static constexpr std::uint64_t kWordsPerPage = kPageBytes / sizeof(Word);

  /// Cached entry for `pc`, iff its page is cached at exactly `version`.
  /// `pc` must be 4-byte aligned. The pointer is valid until the next fill
  /// of the same page (callers copy the entry, never hold it across ticks).
  /// Defined inline below: this is the per-instruction hot path of the
  /// atomic model's fast dispatch loop.
  [[nodiscard]] const Decoded* lookup(std::uint64_t pc, std::uint64_t version) noexcept;

  /// Decode `page_bytes` (the current content of pc's page, possibly a
  /// partial last page) and cache it under `version`; returns the entry for
  /// `pc`, or nullptr if pc's word is beyond the page's content.
  const Decoded* fill(std::uint64_t pc, std::uint64_t version,
                      std::span<const std::uint8_t> page_bytes);

  /// Drop every cached page (checkpoint restore hygiene; correctness never
  /// depends on this — version mismatches already force refills).
  void invalidate_all() noexcept;

  void note_bypass() noexcept { ++stats_.bypasses; }
  /// Zero the counters (per-experiment stat windows); cached pages stay.
  void reset_stats() noexcept { stats_ = {}; }
  [[nodiscard]] const PredecodeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t cached_pages() const noexcept;

 private:
  struct Page {
    std::uint64_t version = 0;
    bool valid = false;
    std::vector<Decoded> entries;  // one per aligned word in the page
  };

  std::vector<Page> pages_;  // indexed by page number, grown on demand
  PredecodeStats stats_;
};

inline const Decoded* PredecodeCache::lookup(std::uint64_t pc,
                                             std::uint64_t version) noexcept {
  const std::uint64_t page = pc >> kPageShift;
  if (page >= pages_.size()) return nullptr;
  Page& p = pages_[page];
  if (!p.valid) return nullptr;
  if (p.version != version) {
    ++stats_.stale;
    p.valid = false;  // outdated content; next fetch refills
    return nullptr;
  }
  const std::uint64_t idx = (pc & (kPageBytes - 1)) / sizeof(Word);
  if (idx >= p.entries.size()) return nullptr;
  ++stats_.hits;
  return &p.entries[idx];
}

}  // namespace gemfi::isa
