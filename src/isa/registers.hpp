// Register file layout and software conventions of the uAlpha ISA.
//
// Mirrors the DEC Alpha: 32 x 64-bit integer registers with R31 hardwired to
// zero, 32 x 64-bit floating-point registers with F31 hardwired to +0.0, and
// the standard OSF/1 calling convention roles (the paper's crash analysis in
// Sec. IV-B leans on exactly these roles: gp/sp/ra corruption => crash).
#pragma once

#include <cstdint>
#include <string_view>

namespace gemfi::isa {

inline constexpr unsigned kNumIntRegs = 32;
inline constexpr unsigned kNumFpRegs = 32;
inline constexpr unsigned kZeroReg = 31;   // R31 reads as 0, writes discarded
inline constexpr unsigned kFpZeroReg = 31; // F31 reads as +0.0

// Software conventions (OSF/1 Alpha ABI).
inline constexpr unsigned kRegV0 = 0;    // function return value
inline constexpr unsigned kRegT0 = 1;    // first temporary (t0..t7 = R1..R8)
inline constexpr unsigned kRegS0 = 9;    // first callee-saved (s0..s5 = R9..R14)
inline constexpr unsigned kRegFP = 15;   // frame pointer (s6)
inline constexpr unsigned kRegA0 = 16;   // first argument (a0..a5 = R16..R21)
inline constexpr unsigned kRegT8 = 22;   // t8..t11 = R22..R25
inline constexpr unsigned kRegRA = 26;   // return address
inline constexpr unsigned kRegPV = 27;   // procedure value / t12
inline constexpr unsigned kRegAT = 28;   // assembler temporary
inline constexpr unsigned kRegGP = 29;   // global pointer
inline constexpr unsigned kRegSP = 30;   // stack pointer

/// Symbolic name of integer register r, e.g. "v0", "sp", "zero".
std::string_view int_reg_name(unsigned r) noexcept;

/// Symbolic name of FP register r, e.g. "f0", "f31".
std::string_view fp_reg_name(unsigned r) noexcept;

}  // namespace gemfi::isa
