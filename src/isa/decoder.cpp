#include "isa/decoder.hpp"

#include "isa/registers.hpp"

namespace gemfi::isa {

namespace {

bool valid_inta(unsigned f) {
  switch (static_cast<IntaFunc>(f)) {
    case IntaFunc::ADDL:
    case IntaFunc::S4ADDQ:
    case IntaFunc::SUBL:
    case IntaFunc::S8ADDQ:
    case IntaFunc::ADDQ:
    case IntaFunc::SUBQ:
    case IntaFunc::CMPULT:
    case IntaFunc::CMPEQ:
    case IntaFunc::CMPULE:
    case IntaFunc::CMPLT:
    case IntaFunc::CMPLE:
      return true;
  }
  return false;
}

bool valid_intl(unsigned f) {
  switch (static_cast<IntlFunc>(f)) {
    case IntlFunc::AND:
    case IntlFunc::BIC:
    case IntlFunc::CMOVLBS:
    case IntlFunc::CMOVLBC:
    case IntlFunc::BIS:
    case IntlFunc::CMOVEQ:
    case IntlFunc::CMOVNE:
    case IntlFunc::ORNOT:
    case IntlFunc::XOR:
    case IntlFunc::CMOVLT:
    case IntlFunc::CMOVGE:
    case IntlFunc::EQV:
    case IntlFunc::CMOVLE:
    case IntlFunc::CMOVGT:
      return true;
  }
  return false;
}

bool valid_ints(unsigned f) {
  switch (static_cast<IntsFunc>(f)) {
    case IntsFunc::SRL:
    case IntsFunc::SLL:
    case IntsFunc::SRA:
      return true;
  }
  return false;
}

bool valid_intm(unsigned f) {
  switch (static_cast<IntmFunc>(f)) {
    case IntmFunc::MULL:
    case IntmFunc::MULQ:
    case IntmFunc::UMULH:
    case IntmFunc::DIVQ:
    case IntmFunc::REMQ:
      return true;
  }
  return false;
}

bool valid_flti(unsigned f) {
  switch (static_cast<FltiFunc>(f)) {
    case FltiFunc::ADDT:
    case FltiFunc::SUBT:
    case FltiFunc::MULT:
    case FltiFunc::DIVT:
    case FltiFunc::CMPTUN:
    case FltiFunc::CMPTEQ:
    case FltiFunc::CMPTLT:
    case FltiFunc::CMPTLE:
    case FltiFunc::SQRTT:
    case FltiFunc::CVTTQ:
    case FltiFunc::CVTQT:
      return true;
  }
  return false;
}

bool valid_fltl(unsigned f) {
  switch (static_cast<FltlFunc>(f)) {
    case FltlFunc::CPYS:
    case FltlFunc::CPYSN:
    case FltlFunc::FCMOVEQ:
    case FltlFunc::FCMOVNE:
      return true;
  }
  return false;
}

bool is_cmov(unsigned f) {
  switch (static_cast<IntlFunc>(f)) {
    case IntlFunc::CMOVLBS:
    case IntlFunc::CMOVLBC:
    case IntlFunc::CMOVEQ:
    case IntlFunc::CMOVNE:
    case IntlFunc::CMOVLT:
    case IntlFunc::CMOVGE:
    case IntlFunc::CMOVLE:
    case IntlFunc::CMOVGT:
      return true;
    default:
      return false;
  }
}

}  // namespace

Format format_of(Opcode op) noexcept {
  switch (op) {
    case Opcode::CALL_PAL:
    case Opcode::PSEUDO:
      return Format::PalCode;
    case Opcode::LDA:
    case Opcode::LDAH:
    case Opcode::JMP:
    case Opcode::LDS:
    case Opcode::LDT:
    case Opcode::STS:
    case Opcode::STT:
    case Opcode::LDL:
    case Opcode::LDQ:
    case Opcode::STL:
    case Opcode::STQ:
      return Format::Memory;
    case Opcode::INTA:
    case Opcode::INTL:
    case Opcode::INTS:
    case Opcode::INTM:
      return Format::Operate;
    case Opcode::ITOF:
    case Opcode::FLTI:
    case Opcode::FLTL:
    case Opcode::FTOI:
      return Format::FpOperate;
    case Opcode::BR:
    case Opcode::FBEQ:
    case Opcode::FBLT:
    case Opcode::FBLE:
    case Opcode::BSR:
    case Opcode::FBNE:
    case Opcode::FBGE:
    case Opcode::FBGT:
    case Opcode::BLBC:
    case Opcode::BEQ:
    case Opcode::BLT:
    case Opcode::BLE:
    case Opcode::BLBS:
    case Opcode::BNE:
    case Opcode::BGE:
    case Opcode::BGT:
      return Format::Branch;
  }
  return Format::Unknown;
}

unsigned Decoded::mem_bytes() const noexcept {
  switch (opcode) {
    case Opcode::LDL:
    case Opcode::STL:
    case Opcode::LDS:
    case Opcode::STS:
      return 4;
    case Opcode::LDQ:
    case Opcode::STQ:
    case Opcode::LDT:
    case Opcode::STT:
      return 8;
    default:
      return 0;
  }
}

Decoded decode(Word w) noexcept {
  Decoded d;
  d.raw = w;
  const unsigned opnum = field_opcode(w);
  d.opcode = static_cast<Opcode>(opnum);
  d.format = format_of(d.opcode);
  d.ra = std::uint8_t(field_ra(w));
  d.rb = std::uint8_t(field_rb(w));
  d.rc = std::uint8_t(field_rc(w));

  switch (d.format) {
    case Format::PalCode: {
      d.palcode = field_palcode(w);
      if (d.opcode == Opcode::CALL_PAL) {
        d.klass = InstClass::Pal;
        d.valid = d.palcode == std::uint32_t(PalFunc::HALT) ||
                  d.palcode == std::uint32_t(PalFunc::CALLSYS);
      } else {  // PSEUDO
        d.klass = InstClass::Pseudo;
        d.valid = d.palcode <= std::uint32_t(PseudoFunc::SYSCALL);
        // Pseudo-ops consume a0 (and f16 for PRINT_FP) and some write v0.
        d.src1 = kRegA0;
        if (d.palcode == std::uint32_t(PseudoFunc::GET_INSTRET)) d.dst = kRegV0;
        // SYSCALL reads the call number from v0 and writes the result there.
        if (d.palcode == std::uint32_t(PseudoFunc::SYSCALL)) {
          d.src2 = kRegV0;
          d.dst = kRegV0;
        }
      }
      break;
    }

    case Format::Branch: {
      d.disp = field_branch_disp(w);
      const bool fp_branch = d.opcode == Opcode::FBEQ || d.opcode == Opcode::FBLT ||
                             d.opcode == Opcode::FBLE || d.opcode == Opcode::FBNE ||
                             d.opcode == Opcode::FBGE || d.opcode == Opcode::FBGT;
      if (d.opcode == Opcode::BR || d.opcode == Opcode::BSR) {
        d.klass = InstClass::Br;
        d.dst = d.ra;  // Ra <- PC + 4 (link); BR conventionally uses Ra = R31
      } else {
        d.klass = InstClass::CondBranch;
        d.src1 = d.ra;
        d.src1_fp = fp_branch;
      }
      d.valid = true;
      break;
    }

    case Format::Memory: {
      d.disp = field_mem_disp(w);
      d.valid = true;
      switch (d.opcode) {
        case Opcode::LDA:
        case Opcode::LDAH:
          d.klass = InstClass::Lda;
          d.dst = d.ra;
          d.src1 = d.rb;
          break;
        case Opcode::JMP:
          d.klass = InstClass::Jump;
          d.dst = d.ra;   // link register
          d.src1 = d.rb;  // target
          break;
        case Opcode::LDL:
        case Opcode::LDQ:
          d.klass = InstClass::Load;
          d.dst = d.ra;
          d.src1 = d.rb;
          break;
        case Opcode::LDS:
        case Opcode::LDT:
          d.klass = InstClass::FpLoad;
          d.dst = d.ra;
          d.dst_fp = true;
          d.src1 = d.rb;
          break;
        case Opcode::STL:
        case Opcode::STQ:
          d.klass = InstClass::Store;
          d.src1 = d.rb;  // base
          d.src2 = d.ra;  // value
          break;
        case Opcode::STS:
        case Opcode::STT:
          d.klass = InstClass::FpStore;
          d.src1 = d.rb;
          d.src2 = d.ra;
          d.src2_fp = true;
          break;
        default:
          d.valid = false;
          d.klass = InstClass::Illegal;
      }
      break;
    }

    case Format::Operate: {
      d.is_literal = field_is_literal(w);
      d.literal = std::uint8_t(field_literal(w));
      d.func = std::uint16_t(field_int_func(w));
      d.klass = InstClass::IntOp;
      d.src1 = d.ra;
      if (!d.is_literal) d.src2 = d.rb;
      d.dst = d.rc;
      switch (d.opcode) {
        case Opcode::INTA: d.valid = valid_inta(d.func); break;
        case Opcode::INTL:
          d.valid = valid_intl(d.func);
          // CMOV also reads the old destination value.
          break;
        case Opcode::INTS: d.valid = valid_ints(d.func); break;
        case Opcode::INTM: d.valid = valid_intm(d.func); break;
        default: d.valid = false;
      }
      if (!d.valid) d.klass = InstClass::Illegal;
      (void)is_cmov;  // CMOV dst-read handled in the execution engine
      break;
    }

    case Format::FpOperate: {
      d.func = std::uint16_t(field_fp_func(w));
      switch (d.opcode) {
        case Opcode::FLTI:
          d.valid = valid_flti(d.func);
          d.klass = InstClass::FpOp;
          d.src1 = d.ra;
          d.src1_fp = true;
          d.src2 = d.rb;
          d.src2_fp = true;
          d.dst = d.rc;
          d.dst_fp = true;
          break;
        case Opcode::FLTL:
          d.valid = valid_fltl(d.func);
          d.klass = InstClass::FpOp;
          d.src1 = d.ra;
          d.src1_fp = true;
          d.src2 = d.rb;
          d.src2_fp = true;
          d.dst = d.rc;
          d.dst_fp = true;
          break;
        case Opcode::ITOF:
          d.valid = d.func == std::uint16_t(ItofFunc::ITOFT);
          d.klass = InstClass::FpMove;
          d.src1 = d.ra;  // integer source
          d.dst = d.rc;
          d.dst_fp = true;
          break;
        case Opcode::FTOI:
          d.valid = d.func == std::uint16_t(FtoiFunc::FTOIT);
          d.klass = InstClass::FpMove;
          d.src1 = d.ra;
          d.src1_fp = true;
          d.dst = d.rc;
          break;
        default:
          d.valid = false;
      }
      if (!d.valid) d.klass = InstClass::Illegal;
      break;
    }

    case Format::Unknown:
      d.valid = false;
      d.klass = InstClass::Illegal;
      break;
  }

  // Normalize "reads/writes the hardwired zero register" to "none" so the
  // hazard logic and propagation tracker never see false dependencies.
  if (d.src1 == kZeroReg && !d.src1_fp) d.src1 = 32;
  if (d.src1 == kFpZeroReg && d.src1_fp) d.src1 = 32;
  if (d.src2 == kZeroReg && !d.src2_fp) d.src2 = 32;
  if (d.src2 == kFpZeroReg && d.src2_fp) d.src2 = 32;
  if (d.dst == kZeroReg && !d.dst_fp) d.dst = 32;
  if (d.dst == kFpZeroReg && d.dst_fp) d.dst = 32;

  return d;
}

}  // namespace gemfi::isa
