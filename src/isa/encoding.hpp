// Instruction encodings — the five formats of the paper's Table I.
//
//   PALcode:  opcode[31:26] | palcode number[25:0]
//   Branch:   opcode[31:26] | Ra[25:21] | branch displacement[20:0]
//   Memory:   opcode[31:26] | Ra[25:21] | Rb[20:16] | displacement[15:0]
//   Operate:  opcode[31:26] | Ra[25:21] | Rb[20:16] | SBZ[15:13] | 0[12] |
//             function[11:5] | Rc[4:0]
//   Operate/l:opcode[31:26] | Ra[25:21] | LIT[20:13] | 1[12] |
//             function[11:5] | Rc[4:0]
//   FP op:    opcode[31:26] | Fa[25:21] | Fb[20:16] | function[15:5] | Fc[4:0]
//
// Branch displacements are in instructions relative to the updated PC
// (PC + 4 + 4*disp); memory displacements are in bytes.
#pragma once

#include <cstdint>

#include "isa/opcodes.hpp"
#include "util/bits.hpp"

namespace gemfi::isa {

using Word = std::uint32_t;  // all instructions are 32 bits

inline constexpr unsigned kInstBytes = 4;

enum class Format : std::uint8_t {
  PalCode,
  Branch,
  Memory,
  Operate,
  FpOperate,
  Unknown,
};

/// Which of Table I's formats a given opcode uses.
Format format_of(Opcode op) noexcept;

// ---- Field extraction (shared by decoder and fetch-fault analysis) ----

constexpr unsigned field_opcode(Word w) noexcept { return unsigned(util::bits(w, 26, 6)); }
constexpr unsigned field_ra(Word w) noexcept { return unsigned(util::bits(w, 21, 5)); }
constexpr unsigned field_rb(Word w) noexcept { return unsigned(util::bits(w, 16, 5)); }
constexpr unsigned field_rc(Word w) noexcept { return unsigned(util::bits(w, 0, 5)); }
constexpr bool field_is_literal(Word w) noexcept { return util::get_bit(w, 12); }
constexpr unsigned field_literal(Word w) noexcept { return unsigned(util::bits(w, 13, 8)); }
constexpr unsigned field_int_func(Word w) noexcept { return unsigned(util::bits(w, 5, 7)); }
constexpr unsigned field_fp_func(Word w) noexcept { return unsigned(util::bits(w, 5, 11)); }
constexpr std::int32_t field_mem_disp(Word w) noexcept {
  return std::int32_t(util::sign_extend(util::bits(w, 0, 16), 16));
}
constexpr std::int32_t field_branch_disp(Word w) noexcept {
  return std::int32_t(util::sign_extend(util::bits(w, 0, 21), 21));
}
constexpr std::uint32_t field_palcode(Word w) noexcept { return std::uint32_t(util::bits(w, 0, 26)); }

// ---- Encoders (used by the assembler and by encode/decode round-trip tests) ----

constexpr Word encode_pal(Opcode op, std::uint32_t number) noexcept {
  return (Word(op) << 26) | (number & 0x03ffffffu);
}

constexpr Word encode_branch(Opcode op, unsigned ra, std::int32_t disp) noexcept {
  return (Word(op) << 26) | ((ra & 31u) << 21) | (std::uint32_t(disp) & 0x001fffffu);
}

constexpr Word encode_mem(Opcode op, unsigned ra, unsigned rb, std::int32_t disp) noexcept {
  return (Word(op) << 26) | ((ra & 31u) << 21) | ((rb & 31u) << 16) |
         (std::uint32_t(disp) & 0xffffu);
}

constexpr Word encode_operate(Opcode op, unsigned func, unsigned ra, unsigned rb,
                              unsigned rc) noexcept {
  return (Word(op) << 26) | ((ra & 31u) << 21) | ((rb & 31u) << 16) |
         ((func & 0x7fu) << 5) | (rc & 31u);
}

constexpr Word encode_operate_lit(Opcode op, unsigned func, unsigned ra, unsigned lit,
                                  unsigned rc) noexcept {
  return (Word(op) << 26) | ((ra & 31u) << 21) | ((lit & 0xffu) << 13) | (1u << 12) |
         ((func & 0x7fu) << 5) | (rc & 31u);
}

constexpr Word encode_fp(Opcode op, unsigned func, unsigned fa, unsigned fb,
                         unsigned fc) noexcept {
  return (Word(op) << 26) | ((fa & 31u) << 21) | ((fb & 31u) << 16) |
         ((func & 0x7ffu) << 5) | (fc & 31u);
}

constexpr Word encode_jump(JumpKind kind, unsigned ra, unsigned rb) noexcept {
  return encode_mem(Opcode::JMP, ra, rb, std::int32_t(unsigned(kind) << 14));
}

}  // namespace gemfi::isa
