// Superblock translation cache: the threaded-code tier above the interpreter.
//
// A superblock is a straight-line run of predecoded instructions starting at
// an entry PC and ending at the first control transfer (or at kMaxOps / an
// unlowerable instruction / the third code page). Each instruction is
// lowered once into a flat SbOp — opcode+function collapsed into a dense
// SbKind, register indices resolved, literals and displacements folded — so
// the fast executor (cpu/fastmode.cpp) dispatches one switch per op over raw
// register arrays instead of re-running the full read-operands / execute /
// writeback machinery of the interpreter.
//
// Coherence mirrors the predecode cache: every trace records (page, version)
// guards for the up-to-two code pages it was lowered from, stamped from
// PhysMem's per-page mutation counters. The owner (MemSystem) revalidates
// the guards on every lookup, so self-modifying code or a checkpoint restore
// can never execute a stale trace — there is no invalidation callback to
// forget. Traces are never serialized.
//
// Fault-injection contract: the tier carries no FI hooks at all. The caller
// (Simulation::run) may only dispatch into trace execution while the fault
// manager is provably quiescent — no armed fault can observe or perturb an
// instruction in the batch — and must fall back to the interpreter
// otherwise. Lowered semantics are shared with the interpreter via
// cpu/exec_units.hpp, keeping one source of truth.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/decoder.hpp"

namespace gemfi::isa {

/// Dense flattened operation kinds. One switch case each in the executor;
/// opcode/function sub-dispatch is resolved at lowering time.
enum class SbKind : std::uint8_t {
  // integer arithmetic (INTA)
  AddL, SubL, AddQ, SubQ, S4AddQ, S8AddQ,
  CmpEq, CmpLt, CmpLe, CmpULt, CmpULe,
  // logical + conditional moves (INTL)
  And, Bic, Bis, OrNot, Xor, Eqv,
  CmovEq, CmovNe, CmovLt, CmovGe, CmovLe, CmovGt, CmovLbs, CmovLbc,
  // shifts (INTS)
  Sll, Srl, Sra,
  // multiply/divide (INTM); DivQ/RemQ can raise the arithmetic trap
  MulL, MulQ, UMulH, DivQ, RemQ,
  // FP operate (FLTI/FLTL), operands are raw double bits
  AddT, SubT, MulT, DivT, CmpTUn, CmpTEq, CmpTLt, CmpTLe, SqrtT, CvtTQ, CvtQT,
  CpyS, CpySN, FCmovEq, FCmovNe,
  // register-file transfers
  Itof,  // integer reg -> FP reg, pure bit copy
  Ftoi,  // FP reg -> integer reg, pure bit copy
  // address arithmetic (LDA/LDAH share one kind; disp is pre-shifted)
  Lda,
  // memory (disp pre-sign-extended to bytes)
  LdL, LdQ, LdS, LdT, StL, StQ, StS, StT,
  // terminals — always the last op of a trace
  CondBrI,  // integer conditional branch; func = raw Opcode for branch_cond
  CondBrF,  // FP conditional branch; a indexes the FP file
  Br,       // unconditional, optional link to dst
  Jump,     // indirect through a, optional link to dst
};

/// b-operand is the 8-bit literal in `lit` instead of a register.
inline constexpr std::uint8_t kSbLitB = 1;

/// One lowered instruction. Register indices are already mapped so that 31
/// is the zero register of the consuming file ("none" becomes 31); the
/// executor runs over raw 32-slot arrays whose slot 31 is pinned to zero.
struct SbOp {
  SbKind kind{};
  std::uint8_t a = 31;    // first source register
  std::uint8_t b = 31;    // second source register (unless kSbLitB)
  std::uint8_t dst = 31;  // destination (31 = discard)
  std::uint8_t lit = 0;   // literal value when kSbLitB is set
  std::uint8_t flags = 0;
  std::uint16_t func = 0;  // raw Opcode for CondBrI/CondBrF
  std::int64_t disp = 0;   // Lda/memory byte displacement, or the
                           // taken-branch offset (next = pc + disp)
};

/// How an instruction lowers.
enum class Lowered : std::uint8_t {
  No,        // not representable (pseudo/PAL/illegal): trace must stop before it
  Mid,       // straight-line op
  Terminal,  // control transfer: trace ends with it
};

/// Lower one decoded instruction into `op`. Pure; never throws.
Lowered lower_to_sbop(const Decoded& d, SbOp& op) noexcept;

struct SuperblockStats {
  std::uint64_t hits = 0;        // lookups served by a version-fresh trace
  std::uint64_t builds = 0;      // traces lowered (cold or rebuilt)
  std::uint64_t stale = 0;       // lookups that found an outdated trace
  std::uint64_t evictions = 0;   // traces dropped by capacity clears
  std::uint64_t exec_insts = 0;  // instructions retired through traces
};

/// A lowered trace plus its coherence guards.
struct Superblock {
  std::uint64_t entry_pc = 0;
  std::vector<SbOp> ops;  // empty => negative entry: entry not traceable
  std::uint64_t pages[2] = {0, 0};
  std::uint64_t versions[2] = {0, 0};
  unsigned npages = 0;

  [[nodiscard]] bool covers_page(std::uint64_t page) const noexcept {
    for (unsigned i = 0; i < npages; ++i)
      if (pages[i] == page) return true;
    return false;
  }
};

class SuperblockCache {
 public:
  /// Trace length cap. Also bounds how far a mid-trace side exit can be from
  /// the entry, keeping worst-case reconciliation cost flat.
  static constexpr std::size_t kMaxOps = 64;
  /// Capacity cap; crossing it clears the whole table (traces are cheap to
  /// rebuild and the working set of real guests is far below this).
  static constexpr std::size_t kMaxTraces = 4096;

  /// Cached trace for `entry_pc`, or nullptr. The caller owns version
  /// revalidation (it has the PhysMem) and counts hits/stale via note_*.
  [[nodiscard]] Superblock* find(std::uint64_t entry_pc) noexcept {
    auto it = traces_.find(entry_pc);
    return it == traces_.end() ? nullptr : &it->second;
  }

  /// Insert (or replace) the trace for sb.entry_pc; returns the stored copy.
  const Superblock& insert(Superblock&& sb);

  /// Drop every trace (checkpoint-restore hygiene; guards already guarantee
  /// staleness is never executed).
  void invalidate_all() noexcept;

  void note_hit() noexcept { ++stats_.hits; }
  void note_stale() noexcept { ++stats_.stale; }
  void note_exec(std::uint64_t insts) noexcept { stats_.exec_insts += insts; }
  /// Zero the counters (per-experiment stat windows); cached traces stay.
  void reset_stats() noexcept { stats_ = {}; }
  [[nodiscard]] const SuperblockStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t cached_traces() const noexcept { return traces_.size(); }

 private:
  std::unordered_map<std::uint64_t, Superblock> traces_;
  SuperblockStats stats_;
};

}  // namespace gemfi::isa
