#include "assembler/text_asm.hpp"

#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "assembler/assembler.hpp"
#include "isa/encoding.hpp"

namespace gemfi::assembler {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& line, const std::string& why) {
  throw AsmError("line " + std::to_string(line_no) + ": " + why + " in \"" + line + "\"");
}

std::string strip(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Split on commas that are outside parentheses and double quotes.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  bool quoted = false;
  for (const char ch : s) {
    if (ch == '"') quoted = !quoted;
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    if (ch == ',' && depth == 0 && !quoted) {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!strip(cur).empty()) out.push_back(strip(cur));
  return out;
}

const std::map<std::string, unsigned>& int_reg_table() {
  static const std::map<std::string, unsigned> table = [] {
    std::map<std::string, unsigned> t;
    const char* names[] = {"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
                           "t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
                           "a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
                           "t10", "t11", "ra", "pv", "at", "gp", "sp", "zero"};
    for (unsigned i = 0; i < 32; ++i) t[names[i]] = i;
    for (unsigned i = 0; i < 32; ++i) t["r" + std::to_string(i)] = i;
    return t;
  }();
  return table;
}

std::optional<unsigned> parse_ireg(const std::string& tok) {
  const auto it = int_reg_table().find(tok);
  if (it == int_reg_table().end()) return std::nullopt;
  return it->second;
}

std::optional<unsigned> parse_freg(const std::string& tok) {
  if (tok.size() < 2 || tok[0] != 'f') return std::nullopt;
  if (tok == "fp") return std::nullopt;  // the integer frame pointer
  for (std::size_t i = 1; i < tok.size(); ++i)
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
  const unsigned n = unsigned(std::stoul(tok.substr(1)));
  return n < 32 ? std::optional<unsigned>(n) : std::nullopt;
}

std::optional<std::int64_t> parse_int(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(tok, &pos, 0);
    if (pos != tok.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct IntOpInfo {
  isa::Opcode op;
  unsigned func;
};

const std::map<std::string, IntOpInfo>& int_op_table() {
  static const std::map<std::string, IntOpInfo> t = {
      {"addl", {isa::Opcode::INTA, 0x00}},   {"addq", {isa::Opcode::INTA, 0x20}},
      {"s4addq", {isa::Opcode::INTA, 0x22}}, {"s8addq", {isa::Opcode::INTA, 0x32}},
      {"subl", {isa::Opcode::INTA, 0x09}},   {"subq", {isa::Opcode::INTA, 0x29}},
      {"cmpult", {isa::Opcode::INTA, 0x1D}}, {"cmpeq", {isa::Opcode::INTA, 0x2D}},
      {"cmpule", {isa::Opcode::INTA, 0x3D}}, {"cmplt", {isa::Opcode::INTA, 0x4D}},
      {"cmple", {isa::Opcode::INTA, 0x6D}},  {"and", {isa::Opcode::INTL, 0x00}},
      {"bic", {isa::Opcode::INTL, 0x08}},    {"cmovlbs", {isa::Opcode::INTL, 0x14}},
      {"cmovlbc", {isa::Opcode::INTL, 0x16}},{"bis", {isa::Opcode::INTL, 0x20}},
      {"cmoveq", {isa::Opcode::INTL, 0x24}}, {"cmovne", {isa::Opcode::INTL, 0x26}},
      {"ornot", {isa::Opcode::INTL, 0x28}},  {"xor", {isa::Opcode::INTL, 0x40}},
      {"cmovlt", {isa::Opcode::INTL, 0x44}}, {"cmovge", {isa::Opcode::INTL, 0x46}},
      {"eqv", {isa::Opcode::INTL, 0x48}},    {"cmovle", {isa::Opcode::INTL, 0x64}},
      {"cmovgt", {isa::Opcode::INTL, 0x66}}, {"srl", {isa::Opcode::INTS, 0x34}},
      {"sll", {isa::Opcode::INTS, 0x39}},    {"sra", {isa::Opcode::INTS, 0x3C}},
      {"mull", {isa::Opcode::INTM, 0x00}},   {"mulq", {isa::Opcode::INTM, 0x20}},
      {"umulh", {isa::Opcode::INTM, 0x30}},  {"divq", {isa::Opcode::INTM, 0x40}},
      {"remq", {isa::Opcode::INTM, 0x41}},
  };
  return t;
}

const std::map<std::string, IntOpInfo>& fp_op_table() {
  static const std::map<std::string, IntOpInfo> t = {
      {"addt", {isa::Opcode::FLTI, 0x0A0}},   {"subt", {isa::Opcode::FLTI, 0x0A1}},
      {"mult", {isa::Opcode::FLTI, 0x0A2}},   {"divt", {isa::Opcode::FLTI, 0x0A3}},
      {"cmptun", {isa::Opcode::FLTI, 0x0A4}}, {"cmpteq", {isa::Opcode::FLTI, 0x0A5}},
      {"cmptlt", {isa::Opcode::FLTI, 0x0A6}}, {"cmptle", {isa::Opcode::FLTI, 0x0A7}},
      {"cpys", {isa::Opcode::FLTL, 0x020}},   {"cpysn", {isa::Opcode::FLTL, 0x021}},
      {"fcmoveq", {isa::Opcode::FLTL, 0x02A}},{"fcmovne", {isa::Opcode::FLTL, 0x02B}},
  };
  return t;
}

const std::map<std::string, isa::Opcode>& mem_op_table() {
  static const std::map<std::string, isa::Opcode> t = {
      {"lda", isa::Opcode::LDA},  {"ldah", isa::Opcode::LDAH},
      {"ldl", isa::Opcode::LDL},  {"ldq", isa::Opcode::LDQ},
      {"stl", isa::Opcode::STL},  {"stq", isa::Opcode::STQ},
      {"lds", isa::Opcode::LDS},  {"ldt", isa::Opcode::LDT},
      {"sts", isa::Opcode::STS},  {"stt", isa::Opcode::STT},
  };
  return t;
}

const std::map<std::string, isa::Opcode>& branch_op_table() {
  static const std::map<std::string, isa::Opcode> t = {
      {"beq", isa::Opcode::BEQ},   {"bne", isa::Opcode::BNE},
      {"blt", isa::Opcode::BLT},   {"ble", isa::Opcode::BLE},
      {"bge", isa::Opcode::BGE},   {"bgt", isa::Opcode::BGT},
      {"blbs", isa::Opcode::BLBS}, {"blbc", isa::Opcode::BLBC},
      {"fbeq", isa::Opcode::FBEQ}, {"fbne", isa::Opcode::FBNE},
      {"fblt", isa::Opcode::FBLT}, {"fble", isa::Opcode::FBLE},
      {"fbge", isa::Opcode::FBGE}, {"fbgt", isa::Opcode::FBGT},
  };
  return t;
}

const std::map<std::string, std::function<void(Assembler&)>>& noarg_table() {
  static const std::map<std::string, std::function<void(Assembler&)>> t = {
      {"fi_activate", [](Assembler& a) { a.fi_activate(); }},
      {"fi_read_init", [](Assembler& a) { a.fi_read_init(); }},
      {"exit", [](Assembler& a) { a.exit_(); }},
      {"print_char", [](Assembler& a) { a.print_char(); }},
      {"print_int", [](Assembler& a) { a.print_int(); }},
      {"print_fp", [](Assembler& a) { a.print_fp(); }},
      {"instret", [](Assembler& a) { a.instret(); }},
      {"yield", [](Assembler& a) { a.yield(); }},
      {"syscall", [](Assembler& a) { a.syscall_(); }},
      {"halt", [](Assembler& a) { a.halt(); }},
      {"ret", [](Assembler& a) { a.ret(); }},
  };
  return t;
}

struct Parser {
  Assembler as;
  std::map<std::string, Label> labels;
  std::map<std::string, DataRef> data_syms;
  bool in_text = false;
  std::optional<Label> entry;

  Label label_for(const std::string& name) {
    const auto it = labels.find(name);
    if (it != labels.end()) return it->second;
    const Label l = as.make_label(name);
    labels.emplace(name, l);
    return l;
  }
};

void handle_data_directive(Parser& p, const std::string& label, const std::string& dir,
                           const std::string& rest, std::size_t ln, const std::string& raw) {
  DataRef ref{};
  if (dir == ".zero") {
    const auto n = parse_int(strip(rest));
    if (!n || *n < 0) fail(ln, raw, ".zero needs a non-negative size");
    ref = p.as.data_zeros(std::uint64_t(*n));
  } else if (dir == ".quad") {
    std::vector<std::int64_t> vals;
    for (const auto& tok : split_operands(rest)) {
      const auto v = parse_int(tok);
      if (!v) fail(ln, raw, "bad integer '" + tok + "'");
      vals.push_back(*v);
    }
    if (vals.empty()) fail(ln, raw, ".quad needs at least one value");
    ref = p.as.data_i64(vals);
  } else if (dir == ".double") {
    std::vector<double> vals;
    for (const auto& tok : split_operands(rest)) {
      try {
        vals.push_back(std::stod(tok));
      } catch (const std::exception&) {
        fail(ln, raw, "bad double '" + tok + "'");
      }
    }
    if (vals.empty()) fail(ln, raw, ".double needs at least one value");
    ref = p.as.data_f64(vals);
  } else {
    fail(ln, raw, "unknown data directive '" + dir + "'");
  }
  if (!label.empty()) {
    p.data_syms[label] = ref;
    p.as.name_data(label, ref);
  }
}

void handle_instruction(Parser& p, const std::string& mnem, const std::string& rest,
                        std::size_t ln, const std::string& raw) {
  Assembler& as = p.as;
  const std::vector<std::string> ops = split_operands(rest);
  const auto need = [&](std::size_t n) {
    if (ops.size() != n)
      fail(ln, raw, "expected " + std::to_string(n) + " operands, got " +
                        std::to_string(ops.size()));
  };
  const auto ireg = [&](const std::string& tok) {
    const auto r = parse_ireg(tok);
    if (!r) fail(ln, raw, "bad integer register '" + tok + "'");
    return *r;
  };
  const auto freg = [&](const std::string& tok) {
    const auto r = parse_freg(tok);
    if (!r) fail(ln, raw, "bad FP register '" + tok + "'");
    return *r;
  };

  // --- no-operand ops ---
  if (const auto it = noarg_table().find(mnem); it != noarg_table().end()) {
    if (!ops.empty()) fail(ln, raw, "'" + mnem + "' takes no operands");
    it->second(as);
    return;
  }

  // --- integer operate (register or literal second operand) ---
  if (const auto it = int_op_table().find(mnem); it != int_op_table().end()) {
    need(3);
    const unsigned a = ireg(ops[0]);
    const unsigned c = ireg(ops[2]);
    if (const auto rb = parse_ireg(ops[1])) {
      as.emit(isa::encode_operate(it->second.op, it->second.func, a, *rb, c));
    } else if (const auto lit = parse_int(ops[1])) {
      if (*lit < 0 || *lit > 255) fail(ln, raw, "literal must be in [0,255]");
      as.emit(isa::encode_operate_lit(it->second.op, it->second.func, a,
                                      unsigned(*lit), c));
    } else {
      fail(ln, raw, "second operand must be a register or 8-bit literal");
    }
    return;
  }

  // --- FP operate ---
  if (const auto it = fp_op_table().find(mnem); it != fp_op_table().end()) {
    need(3);
    as.emit(isa::encode_fp(it->second.op, it->second.func, freg(ops[0]), freg(ops[1]),
                           freg(ops[2])));
    return;
  }
  if (mnem == "sqrtt" || mnem == "cvttq" || mnem == "cvtqt") {
    need(2);
    const unsigned func = mnem == "sqrtt" ? 0x0AB : mnem == "cvttq" ? 0x0AF : 0x0BE;
    as.emit(isa::encode_fp(isa::Opcode::FLTI, func, 31, freg(ops[0]), freg(ops[1])));
    return;
  }
  if (mnem == "fmov" || mnem == "fneg" || mnem == "fabs") {
    need(2);
    const unsigned b = freg(ops[0]);
    const unsigned c = freg(ops[1]);
    if (mnem == "fmov") as.fmov(b, c);
    else if (mnem == "fneg") as.fneg(b, c);
    else as.fabs_(b, c);
    return;
  }
  if (mnem == "itoft") {
    need(2);
    as.itoft(ireg(ops[0]), freg(ops[1]));
    return;
  }
  if (mnem == "ftoit") {
    need(2);
    as.ftoit(freg(ops[0]), ireg(ops[1]));
    return;
  }

  // --- memory: "reg, disp(base)" ---
  if (const auto it = mem_op_table().find(mnem); it != mem_op_table().end()) {
    need(2);
    const bool fp = mnem == "ldt" || mnem == "stt" || mnem == "lds" || mnem == "sts";
    const unsigned r = fp ? freg(ops[0]) : ireg(ops[0]);
    const std::string& addr = ops[1];
    const auto open = addr.find('(');
    const auto close = addr.find(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      fail(ln, raw, "memory operand must be disp(base)");
    const std::string disp_s = strip(addr.substr(0, open));
    const std::string base_s = strip(addr.substr(open + 1, close - open - 1));
    std::int64_t disp = 0;
    if (!disp_s.empty()) {
      const auto d = parse_int(disp_s);
      if (!d || *d < -32768 || *d > 32767) fail(ln, raw, "displacement out of range");
      disp = *d;
    }
    as.emit(isa::encode_mem(it->second, r, ireg(base_s), std::int32_t(disp)));
    return;
  }

  // --- branches / jumps ---
  if (mnem == "br") {
    need(1);
    as.br(p.label_for(ops[0]));
    return;
  }
  if (mnem == "bsr") {
    need(2);
    as.bsr(ireg(ops[0]), p.label_for(ops[1]));
    return;
  }
  if (mnem == "call") {
    need(1);
    as.call(p.label_for(ops[0]));
    return;
  }
  if (const auto it = branch_op_table().find(mnem); it != branch_op_table().end()) {
    need(2);
    const bool fp = mnem[0] == 'f';
    const unsigned r = fp ? freg(ops[0]) : ireg(ops[0]);
    const Label target = p.label_for(ops[1]);
    // Route through the Assembler so the fixup machinery applies.
    switch (it->second) {
      case isa::Opcode::BEQ: as.beq(r, target); break;
      case isa::Opcode::BNE: as.bne(r, target); break;
      case isa::Opcode::BLT: as.blt(r, target); break;
      case isa::Opcode::BLE: as.ble(r, target); break;
      case isa::Opcode::BGE: as.bge(r, target); break;
      case isa::Opcode::BGT: as.bgt(r, target); break;
      case isa::Opcode::BLBS: as.blbs(r, target); break;
      case isa::Opcode::BLBC: as.blbc(r, target); break;
      case isa::Opcode::FBEQ: as.fbeq(r, target); break;
      case isa::Opcode::FBNE: as.fbne(r, target); break;
      case isa::Opcode::FBLT: as.fblt(r, target); break;
      case isa::Opcode::FBLE: as.fble(r, target); break;
      case isa::Opcode::FBGE: as.fbge(r, target); break;
      case isa::Opcode::FBGT: as.fbgt(r, target); break;
      default: fail(ln, raw, "internal branch table error");
    }
    return;
  }
  if (mnem == "jmp" || mnem == "jsr") {
    need(2);
    const unsigned link = ireg(ops[0]);
    std::string target = ops[1];
    if (target.size() >= 2 && target.front() == '(' && target.back() == ')')
      target = strip(target.substr(1, target.size() - 2));
    if (mnem == "jmp") as.jmp(link, ireg(target));
    else as.jsr(link, ireg(target));
    return;
  }

  // --- pseudo instructions ---
  if (mnem == "li") {
    need(2);
    const auto v = parse_int(ops[1]);
    if (!v) fail(ln, raw, "bad immediate '" + ops[1] + "'");
    as.li(ireg(ops[0]), *v);
    return;
  }
  if (mnem == "la") {
    need(2);
    const auto it = p.data_syms.find(ops[1]);
    if (it == p.data_syms.end()) fail(ln, raw, "unknown data symbol '" + ops[1] + "'");
    as.la(ireg(ops[0]), it->second);
    return;
  }
  if (mnem == "fli") {
    need(2);
    try {
      as.fli(freg(ops[0]), std::stod(ops[1]));
    } catch (const std::exception&) {
      fail(ln, raw, "bad FP immediate '" + ops[1] + "'");
    }
    return;
  }
  if (mnem == "mov") {
    need(2);
    as.mov(ireg(ops[0]), ireg(ops[1]));
    return;
  }
  if (mnem == "print_str") {
    need(1);
    const std::string& s = ops[0];
    if (s.size() < 2 || s.front() != '"' || s.back() != '"')
      fail(ln, raw, "print_str needs a quoted string");
    std::string text;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      if (s[i] == '\\' && i + 2 < s.size() && s[i + 1] == 'n') {
        text.push_back('\n');
        ++i;
      } else {
        text.push_back(s[i]);
      }
    }
    as.print_str(text);
    return;
  }

  fail(ln, raw, "unknown mnemonic '" + mnem + "'");
}

}  // namespace

Program assemble_text(const std::string& source) {
  Parser p;
  std::istringstream in(source);
  std::string raw;
  std::size_t ln = 0;
  while (std::getline(in, raw)) {
    ++ln;
    std::string line = raw;
    // Strip comments (';' or '#') outside string literals.
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') quoted = !quoted;
      if (!quoted && (line[i] == ';' || line[i] == '#')) {
        line = line.substr(0, i);
        break;
      }
    }
    line = strip(line);
    if (line.empty()) continue;

    // Leading label?
    std::string label;
    const auto colon = line.find(':');
    if (colon != std::string::npos) {
      const std::string candidate = strip(line.substr(0, colon));
      bool is_ident = !candidate.empty();
      for (const char ch : candidate)
        if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_') is_ident = false;
      if (is_ident) {
        label = candidate;
        line = strip(line.substr(colon + 1));
      }
    }

    if (line == ".data") {
      if (!label.empty()) fail(ln, raw, "label on a section directive");
      p.in_text = false;
      continue;
    }
    if (line == ".text") {
      if (!label.empty()) fail(ln, raw, "label on a section directive");
      p.in_text = true;
      continue;
    }

    if (!p.in_text) {
      if (line.empty()) {
        if (!label.empty()) fail(ln, raw, "data label needs a directive");
        continue;
      }
      const auto sp = line.find_first_of(" \t");
      const std::string dir = sp == std::string::npos ? line : line.substr(0, sp);
      const std::string rest = sp == std::string::npos ? "" : strip(line.substr(sp));
      handle_data_directive(p, label, dir, rest, ln, raw);
      continue;
    }

    // Text section: bind label (if any), then parse the instruction.
    if (!label.empty()) {
      const Label l = p.label_for(label);
      p.as.bind(l);
      // First .text label is the entry unless a later `main` claims it.
      if (!p.entry || label == "main") p.entry = l;
    }
    if (line.empty()) continue;
    const auto sp = line.find_first_of(" \t");
    const std::string mnem = sp == std::string::npos ? line : line.substr(0, sp);
    const std::string rest = sp == std::string::npos ? "" : strip(line.substr(sp));
    handle_instruction(p, mnem, rest, ln, raw);
  }

  if (!p.entry) throw AsmError("no .text label to use as the entry point");
  return p.as.finalize(*p.entry);
}

Program assemble_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw AsmError("cannot open assembly file: " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return assemble_text(body.str());
}

}  // namespace gemfi::assembler
