#include "assembler/program.hpp"

#include <cstring>
#include <stdexcept>

namespace gemfi::assembler {

namespace {
constexpr std::uint64_t align_up(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) & ~(a - 1);
}
}  // namespace

std::uint64_t Program::data_base() const noexcept { return align_up(code_end(), 4096); }

std::uint64_t Program::data_end() const noexcept {
  return data_base() + pool.size() * 8 + data.size();
}

std::uint64_t Program::heap_base() const noexcept { return align_up(data_end(), 4096); }

std::uint64_t Program::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) throw std::out_of_range("unknown symbol: " + name);
  return it->second;
}

void Program::load_into(mem::MemSystem& ms) const {
  if (data_end() > ms.phys().size())
    throw std::runtime_error("program image does not fit in guest memory");
  std::vector<std::uint8_t> code_bytes(code.size() * isa::kInstBytes);
  if (!code.empty()) std::memcpy(code_bytes.data(), code.data(), code_bytes.size());
  ms.phys().write_block(code_base, code_bytes);

  std::vector<std::uint8_t> pool_bytes(pool.size() * 8);
  if (!pool.empty()) std::memcpy(pool_bytes.data(), pool.data(), pool_bytes.size());
  ms.phys().write_block(data_base(), pool_bytes);
  if (!data.empty()) ms.phys().write_block(data_base() + pool_bytes.size(), data);

  ms.set_code_region(code_base, code_end());
}

}  // namespace gemfi::assembler
