// Text assembler: parse uAlpha assembly source into a Program, so guest
// code can live in .s files (the paper's workflow has users cross-compile
// programs and drop the binaries into GemFI's disk image; our equivalent is
// assembling a source file and loading the image).
//
// Syntax (semicolon or '#' comments; labels end with ':'):
//
//         .data
//   buf:  .zero  64              ; 64 zero bytes (8-aligned)
//   tab:  .quad  1, 2, -3        ; 64-bit integers
//   pi:   .double 3.14159        ; 64-bit floats
//         .text
//   main: li     t0, 100         ; pseudo: materialize any 64-bit constant
//         la     t1, buf         ; pseudo: address of a data object
//         fli    f2, 0.5         ; pseudo: FP constant via the literal pool
//   loop: addq   t0, 1, t0       ; literal operand auto-selects the
//         subq   t0, t3, t0      ;   operate-literal form
//         ldq    a0, 8(t1)       ; memory: disp(base)
//         stt    f2, 0(t1)
//         beq    t0, loop        ; branches take labels
//         jsr    ra, (t1)        ; jumps take (register)
//         print_int               ; pseudo-ops take no operands
//         exit
//
// The first label of the .text section (or `main` if present) is the entry.
#pragma once

#include <stdexcept>
#include <string>

#include "assembler/program.hpp"

namespace gemfi::assembler {

/// Thrown on any syntax or semantic error; the message carries the line
/// number and offending text.
class AsmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Assemble a full source text into a linked Program.
Program assemble_text(const std::string& source);

/// Assemble the contents of a file (convenience wrapper).
Program assemble_file(const std::string& path);

}  // namespace gemfi::assembler
