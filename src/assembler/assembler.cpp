#include "assembler/assembler.hpp"

#include <cstring>
#include <stdexcept>

namespace gemfi::assembler {

namespace {
constexpr bool fits_i16(std::int64_t v) { return v >= -32768 && v <= 32767; }
constexpr bool fits_lit8(std::int64_t v) { return v >= 0 && v <= 255; }
}  // namespace

Label Assembler::make_label(std::string name) {
  const Label l{std::uint32_t(label_pos_.size())};
  label_pos_.push_back(-1);
  label_name_.push_back(std::move(name));
  return l;
}

void Assembler::bind(Label l) {
  if (!l.valid() || l.id >= label_pos_.size()) throw std::invalid_argument("bad label");
  if (label_pos_[l.id] >= 0) throw std::logic_error("label bound twice: " + label_name_[l.id]);
  label_pos_[l.id] = std::int64_t(code_.size());
}

Label Assembler::here(std::string name) {
  Label l = make_label(std::move(name));
  bind(l);
  return l;
}

void Assembler::align_data(unsigned align) {
  while (data_.size() % align != 0) data_.push_back(0);
}

DataRef Assembler::data_bytes(std::span<const std::uint8_t> bytes, unsigned align) {
  align_data(align);
  const DataRef ref{data_.size()};
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  return ref;
}

DataRef Assembler::data_zeros(std::uint64_t count, unsigned align) {
  align_data(align);
  const DataRef ref{data_.size()};
  data_.insert(data_.end(), count, 0);
  return ref;
}

DataRef Assembler::data_u64(std::span<const std::uint64_t> words) {
  return data_bytes({reinterpret_cast<const std::uint8_t*>(words.data()), words.size() * 8});
}

DataRef Assembler::data_i64(std::span<const std::int64_t> words) {
  return data_bytes({reinterpret_cast<const std::uint8_t*>(words.data()), words.size() * 8});
}

DataRef Assembler::data_f64(std::span<const double> vals) {
  return data_bytes({reinterpret_cast<const std::uint8_t*>(vals.data()), vals.size() * 8});
}

void Assembler::name_data(const std::string& name, DataRef ref) {
  named_data_[name] = ref.offset;
}

void Assembler::op_(isa::Opcode op, unsigned func, unsigned a, unsigned b, unsigned c) {
  emit(isa::encode_operate(op, func, a, b, c));
}

void Assembler::opl_(isa::Opcode op, unsigned func, unsigned a, unsigned lit, unsigned c) {
  if (lit > 255) throw std::invalid_argument("literal out of range");
  emit(isa::encode_operate_lit(op, func, a, lit, c));
}

void Assembler::fop_(isa::Opcode op, unsigned func, unsigned fa, unsigned fb, unsigned fc) {
  emit(isa::encode_fp(op, func, fa, fb, fc));
}

void Assembler::mem_(isa::Opcode op, unsigned ra_, unsigned rb, std::int32_t disp) {
  if (!fits_i16(disp)) throw std::invalid_argument("memory displacement out of range");
  emit(isa::encode_mem(op, ra_, rb, disp));
}

void Assembler::branch_(isa::Opcode op, unsigned ra_, Label l) {
  if (!l.valid() || l.id >= label_pos_.size()) throw std::invalid_argument("bad label");
  fixups_.push_back({FixupKind::Branch, code_.size(), l.id, 0});
  emit(isa::encode_branch(op, ra_, 0));
}

void Assembler::pal_(isa::Opcode op, std::uint32_t number) {
  emit(isa::encode_pal(op, number));
}

std::uint32_t Assembler::pool_index(std::uint64_t bits) {
  if (const auto it = pool_intern_.find(bits); it != pool_intern_.end()) return it->second;
  const auto idx = std::uint32_t(pool_.size());
  if (idx >= 4096) throw std::runtime_error("literal pool exceeds gp-relative range");
  pool_.push_back(bits);
  pool_intern_.emplace(bits, idx);
  return idx;
}

void Assembler::li(unsigned r, std::int64_t value) {
  if (fits_lit8(value)) {
    bis_i(reg::zero, unsigned(value), r);
    return;
  }
  if (fits_i16(value)) {
    lda(r, std::int32_t(value), reg::zero);
    return;
  }
  const std::int64_t low = std::int64_t(std::int16_t(value & 0xffff));
  // Wrapping subtraction: value - low overflows for INT64_MAX (low == -1);
  // the wrapped hi fails fits_i16 and falls through to the literal pool.
  const std::int64_t hi = std::int64_t(std::uint64_t(value) - std::uint64_t(low)) >> 16;
  if (fits_i16(hi)) {
    ldah(r, std::int32_t(hi), reg::zero);
    if (low != 0) lda(r, std::int32_t(low), r);
    return;
  }
  // Out of 32-bit range: gp-relative literal pool.
  const std::uint32_t idx = pool_index(std::uint64_t(value));
  ldq(r, std::int32_t(idx * 8), reg::gp);
}

void Assembler::la(unsigned r, DataRef ref) {
  fixups_.push_back({FixupKind::DataAddrPair, code_.size(), 0, ref.offset});
  ldah(r, 0, reg::zero);
  lda(r, 0, r);
}

void Assembler::fli(unsigned f, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  const std::uint32_t idx = pool_index(bits);
  ldt(f, std::int32_t(idx * 8), reg::gp);
}

Program Assembler::finalize(Label entry) {
  Program prog;
  prog.code_base = code_base_;
  prog.code = code_;
  prog.pool = pool_;
  prog.data = data_;

  const std::uint64_t data_abs = prog.data_base() + prog.pool.size() * 8;

  for (const Fixup& fx : fixups_) {
    switch (fx.kind) {
      case FixupKind::Branch: {
        const std::int64_t target = label_pos_[fx.label_id];
        if (target < 0)
          throw std::logic_error("unbound label: " + label_name_[fx.label_id]);
        const std::int64_t disp = target - std::int64_t(fx.inst_index) - 1;
        if (disp < -(1 << 20) || disp >= (1 << 20))
          throw std::runtime_error("branch displacement out of 21-bit range");
        isa::Word& w = prog.code[fx.inst_index];
        w = (w & ~0x001fffffu) | (std::uint32_t(disp) & 0x001fffffu);
        break;
      }
      case FixupKind::DataAddrPair:
      case FixupKind::CodeAddrPair: {
        std::uint64_t addr;
        if (fx.kind == FixupKind::DataAddrPair) {
          addr = data_abs + fx.data_offset;
        } else {
          const std::int64_t target = label_pos_[fx.label_id];
          if (target < 0)
            throw std::logic_error("unbound label: " + label_name_[fx.label_id]);
          addr = prog.code_base + std::uint64_t(target) * isa::kInstBytes;
        }
        if (addr >= (1ull << 31)) throw std::runtime_error("address beyond LDAH/LDA range");
        const std::int64_t low = std::int64_t(std::int16_t(addr & 0xffff));
        const std::int64_t hi = (std::int64_t(addr) - low) >> 16;
        isa::Word& w_hi = prog.code[fx.inst_index];
        isa::Word& w_lo = prog.code[fx.inst_index + 1];
        w_hi = (w_hi & ~0xffffu) | (std::uint32_t(hi) & 0xffffu);
        w_lo = (w_lo & ~0xffffu) | (std::uint32_t(low) & 0xffffu);
        break;
      }
    }
  }

  if (!entry.valid() || label_pos_[entry.id] < 0) throw std::logic_error("entry label unbound");
  prog.entry = prog.code_base + std::uint64_t(label_pos_[entry.id]) * isa::kInstBytes;

  for (std::size_t i = 0; i < label_pos_.size(); ++i) {
    if (label_pos_[i] >= 0 && !label_name_[i].empty())
      prog.symbols[label_name_[i]] =
          prog.code_base + std::uint64_t(label_pos_[i]) * isa::kInstBytes;
  }
  for (const auto& [name, off] : named_data_) prog.symbols[name] = data_abs + off;

  return prog;
}

}  // namespace gemfi::assembler
