#include <span>
#include <unordered_map>
// Macro-assembler for the uAlpha ISA.
//
// Guest benchmark programs (src/apps) are written against this API: emit
// methods map 1:1 to instructions, labels resolve branch displacements,
// `li/la/fli` materialize 64-bit constants and addresses (via LDAH/LDA pairs
// or a gp-relative literal pool, exactly as Alpha compilers do), and
// `finalize()` links everything into a loadable Program image.
//
// Conventions produced by this assembler (and assumed by the loader):
//   * gp (R29) points at the literal pool (== Program::data_base()),
//   * sp (R30) is set by the loader to the thread's stack top,
//   * functions are entered via bsr/jsr with the return address in ra (R26).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/program.hpp"
#include "isa/encoding.hpp"
#include "isa/registers.hpp"

namespace gemfi::assembler {

/// Terse register aliases for guest code (OSF/1 Alpha names).
namespace reg {
inline constexpr unsigned v0 = 0;
inline constexpr unsigned t0 = 1, t1 = 2, t2 = 3, t3 = 4, t4 = 5, t5 = 6, t6 = 7, t7 = 8;
inline constexpr unsigned s0 = 9, s1 = 10, s2 = 11, s3 = 12, s4 = 13, s5 = 14;
inline constexpr unsigned fp = 15;
inline constexpr unsigned a0 = 16, a1 = 17, a2 = 18, a3 = 19, a4 = 20, a5 = 21;
inline constexpr unsigned t8 = 22, t9 = 23, t10 = 24, t11 = 25;
inline constexpr unsigned ra = 26, pv = 27, at = 28, gp = 29, sp = 30, zero = 31;
}  // namespace reg

struct Label {
  std::uint32_t id = ~0u;
  [[nodiscard]] bool valid() const noexcept { return id != ~0u; }
};

/// Offset into the application data section (resolved to an absolute
/// address at finalize time; obtain one from the data_* emitters).
struct DataRef {
  std::uint64_t offset = 0;
};

class Assembler {
 public:
  explicit Assembler(std::uint64_t code_base = 0x2000) : code_base_(code_base) {}

  // ---- labels ----
  Label make_label(std::string name = {});
  void bind(Label l);
  Label here(std::string name = {});  // make + bind at current position

  // ---- data section ----
  DataRef data_bytes(std::span<const std::uint8_t> bytes, unsigned align = 8);
  DataRef data_zeros(std::uint64_t count, unsigned align = 8);
  DataRef data_u64(std::span<const std::uint64_t> words);
  DataRef data_u64(std::uint64_t v) { return data_u64(std::span(&v, 1)); }
  DataRef data_i64(std::span<const std::int64_t> words);
  DataRef data_f64(std::span<const double> vals);
  DataRef data_f64(double v) { return data_f64(std::span(&v, 1)); }
  /// Define `name` as an absolute symbol for the given data offset.
  void name_data(const std::string& name, DataRef ref);

  // ---- raw emission ----
  void emit(isa::Word w) { code_.push_back(w); }
  [[nodiscard]] std::size_t pc_index() const noexcept { return code_.size(); }

  // ---- integer operate group ----
  void addl(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x00, a, b, c); }
  void addq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x20, a, b, c); }
  void addq_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTA, 0x20, a, lit, c); }
  void s4addq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x22, a, b, c); }
  void s8addq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x32, a, b, c); }
  void subl(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x09, a, b, c); }
  void subq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x29, a, b, c); }
  void subq_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTA, 0x29, a, lit, c); }
  void cmpeq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x2D, a, b, c); }
  void cmpeq_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTA, 0x2D, a, lit, c); }
  void cmplt(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x4D, a, b, c); }
  void cmplt_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTA, 0x4D, a, lit, c); }
  void cmple(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x6D, a, b, c); }
  void cmple_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTA, 0x6D, a, lit, c); }
  void cmpult(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x1D, a, b, c); }
  void cmpult_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTA, 0x1D, a, lit, c); }
  void cmpule(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTA, 0x3D, a, b, c); }

  void and_(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x00, a, b, c); }
  void and_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTL, 0x00, a, lit, c); }
  void bic(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x08, a, b, c); }
  void bis(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x20, a, b, c); }
  void bis_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTL, 0x20, a, lit, c); }
  void ornot(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x28, a, b, c); }
  void xor_(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x40, a, b, c); }
  void xor_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTL, 0x40, a, lit, c); }
  void eqv(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x48, a, b, c); }
  void cmoveq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x24, a, b, c); }
  void cmovne(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x26, a, b, c); }
  void cmovlt(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x44, a, b, c); }
  void cmovge(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x46, a, b, c); }
  void cmovle(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x64, a, b, c); }
  void cmovgt(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x66, a, b, c); }
  void cmovlbs(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x14, a, b, c); }
  void cmovlbc(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTL, 0x16, a, b, c); }

  void sll(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTS, 0x39, a, b, c); }
  void sll_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTS, 0x39, a, lit, c); }
  void srl(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTS, 0x34, a, b, c); }
  void srl_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTS, 0x34, a, lit, c); }
  void sra(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTS, 0x3C, a, b, c); }
  void sra_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTS, 0x3C, a, lit, c); }

  void mull(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTM, 0x00, a, b, c); }
  void mulq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTM, 0x20, a, b, c); }
  void mulq_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTM, 0x20, a, lit, c); }
  void umulh(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTM, 0x30, a, b, c); }
  void divq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTM, 0x40, a, b, c); }
  void divq_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTM, 0x40, a, lit, c); }
  void remq(unsigned a, unsigned b, unsigned c) { op_(isa::Opcode::INTM, 0x41, a, b, c); }
  void remq_i(unsigned a, unsigned lit, unsigned c) { opl_(isa::Opcode::INTM, 0x41, a, lit, c); }

  /// mov rb -> rc (BIS zero, b, c).
  void mov(unsigned b, unsigned c) { bis(reg::zero, b, c); }
  void mov_i(unsigned lit, unsigned c) { bis_i(reg::zero, lit, c); }

  // ---- floating point ----
  void addt(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0A0, fa, fb, fc); }
  void subt(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0A1, fa, fb, fc); }
  void mult(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0A2, fa, fb, fc); }
  void divt(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0A3, fa, fb, fc); }
  void cmptun(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0A4, fa, fb, fc); }
  void cmpteq(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0A5, fa, fb, fc); }
  void cmptlt(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0A6, fa, fb, fc); }
  void cmptle(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0A7, fa, fb, fc); }
  void sqrtt(unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0AB, 31, fb, fc); }
  void cvttq(unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0AF, 31, fb, fc); }
  void cvtqt(unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTI, 0x0BE, 31, fb, fc); }
  void cpys(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTL, 0x020, fa, fb, fc); }
  void cpysn(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTL, 0x021, fa, fb, fc); }
  void fcmoveq(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTL, 0x02A, fa, fb, fc); }
  void fcmovne(unsigned fa, unsigned fb, unsigned fc) { fop_(isa::Opcode::FLTL, 0x02B, fa, fb, fc); }
  void fmov(unsigned fb, unsigned fc) { cpys(fb, fb, fc); }
  void fneg(unsigned fb, unsigned fc) { cpysn(fb, fb, fc); }
  void fabs_(unsigned fb, unsigned fc) { cpys(31, fb, fc); }
  void itoft(unsigned ra_, unsigned fc) { fop_(isa::Opcode::ITOF, 0x024, ra_, 31, fc); }
  void ftoit(unsigned fa, unsigned rc) { fop_(isa::Opcode::FTOI, 0x070, fa, 31, rc); }

  // ---- memory ----
  void lda(unsigned ra_, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::LDA, ra_, rb, disp); }
  void ldah(unsigned ra_, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::LDAH, ra_, rb, disp); }
  void ldl(unsigned ra_, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::LDL, ra_, rb, disp); }
  void ldq(unsigned ra_, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::LDQ, ra_, rb, disp); }
  void stl(unsigned ra_, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::STL, ra_, rb, disp); }
  void stq(unsigned ra_, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::STQ, ra_, rb, disp); }
  void lds(unsigned fa, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::LDS, fa, rb, disp); }
  void ldt(unsigned fa, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::LDT, fa, rb, disp); }
  void sts(unsigned fa, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::STS, fa, rb, disp); }
  void stt(unsigned fa, std::int32_t disp, unsigned rb) { mem_(isa::Opcode::STT, fa, rb, disp); }

  // ---- control flow ----
  void br(Label l) { branch_(isa::Opcode::BR, reg::zero, l); }
  void bsr(unsigned link, Label l) { branch_(isa::Opcode::BSR, link, l); }
  void beq(unsigned a, Label l) { branch_(isa::Opcode::BEQ, a, l); }
  void bne(unsigned a, Label l) { branch_(isa::Opcode::BNE, a, l); }
  void blt(unsigned a, Label l) { branch_(isa::Opcode::BLT, a, l); }
  void ble(unsigned a, Label l) { branch_(isa::Opcode::BLE, a, l); }
  void bge(unsigned a, Label l) { branch_(isa::Opcode::BGE, a, l); }
  void bgt(unsigned a, Label l) { branch_(isa::Opcode::BGT, a, l); }
  void blbs(unsigned a, Label l) { branch_(isa::Opcode::BLBS, a, l); }
  void blbc(unsigned a, Label l) { branch_(isa::Opcode::BLBC, a, l); }
  void fbeq(unsigned fa, Label l) { branch_(isa::Opcode::FBEQ, fa, l); }
  void fbne(unsigned fa, Label l) { branch_(isa::Opcode::FBNE, fa, l); }
  void fblt(unsigned fa, Label l) { branch_(isa::Opcode::FBLT, fa, l); }
  void fble(unsigned fa, Label l) { branch_(isa::Opcode::FBLE, fa, l); }
  void fbge(unsigned fa, Label l) { branch_(isa::Opcode::FBGE, fa, l); }
  void fbgt(unsigned fa, Label l) { branch_(isa::Opcode::FBGT, fa, l); }
  void jmp(unsigned link, unsigned rb) { emit(isa::encode_jump(isa::JumpKind::JMP, link, rb)); }
  void jsr(unsigned link, unsigned rb) { emit(isa::encode_jump(isa::JumpKind::JSR, link, rb)); }
  void ret() { emit(isa::encode_jump(isa::JumpKind::RET, reg::zero, reg::ra)); }
  /// Call a function label (clobbers ra).
  void call(Label f) { bsr(reg::ra, f); }

  // ---- pseudo / GemFI intrinsics (ids & args in a0 by convention) ----
  void fi_activate() { pal_(isa::Opcode::PSEUDO, 0); }
  void fi_read_init() { pal_(isa::Opcode::PSEUDO, 1); }
  void exit_() { pal_(isa::Opcode::PSEUDO, 2); }
  void print_char() { pal_(isa::Opcode::PSEUDO, 3); }
  void print_int() { pal_(isa::Opcode::PSEUDO, 4); }
  void print_fp() { pal_(isa::Opcode::PSEUDO, 5); }
  void instret() { pal_(isa::Opcode::PSEUDO, 6); }
  void yield() { pal_(isa::Opcode::PSEUDO, 7); }
  void syscall_() { pal_(isa::Opcode::PSEUDO, 8); }
  void halt() { pal_(isa::Opcode::CALL_PAL, std::uint32_t(isa::PalFunc::HALT)); }

  // ---- constant / address materialization ----
  /// Load a 64-bit signed constant into r (1-2 instructions, or a
  /// gp-relative literal-pool LDQ for values outside the 32-bit range).
  void li(unsigned r, std::int64_t value);
  void li_u(unsigned r, std::uint64_t value) { li(r, std::int64_t(value)); }
  /// Load the absolute address of a data-section object (LDAH/LDA pair,
  /// patched at finalize).
  void la(unsigned r, DataRef ref);
  /// Load a double constant via the literal pool.
  void fli(unsigned f, double value);

  // ---- convenience ----
  /// Print the low byte of `r` as a character (clobbers a0 unless r==a0).
  void print_char_r(unsigned r) {
    if (r != reg::a0) mov(r, reg::a0);
    print_char();
  }
  void print_int_r(unsigned r) {
    if (r != reg::a0) mov(r, reg::a0);
    print_int();
  }
  /// Print a literal string (clobbers a0).
  void print_str(std::string_view s) {
    for (char ch : s) {
      mov_i(static_cast<unsigned char>(ch), reg::a0);
      print_char();
    }
  }
  void push(unsigned r) {
    lda(reg::sp, -8, reg::sp);
    stq(r, 0, reg::sp);
  }
  void pop(unsigned r) {
    ldq(r, 0, reg::sp);
    lda(reg::sp, 8, reg::sp);
  }

  /// Resolve all fixups and produce the linked image. `entry` must be bound.
  Program finalize(Label entry);

 private:
  enum class FixupKind : std::uint8_t { Branch, DataAddrPair, CodeAddrPair };

  struct Fixup {
    FixupKind kind;
    std::size_t inst_index;   // first instruction of the pair for *Pair kinds
    std::uint32_t label_id = 0;
    std::uint64_t data_offset = 0;
  };

  void op_(isa::Opcode op, unsigned func, unsigned a, unsigned b, unsigned c);
  void opl_(isa::Opcode op, unsigned func, unsigned a, unsigned lit, unsigned c);
  void fop_(isa::Opcode op, unsigned func, unsigned fa, unsigned fb, unsigned fc);
  void mem_(isa::Opcode op, unsigned ra_, unsigned rb, std::int32_t disp);
  void branch_(isa::Opcode op, unsigned ra_, Label l);
  void pal_(isa::Opcode op, std::uint32_t number);
  std::uint32_t pool_index(std::uint64_t bits);
  void align_data(unsigned align);

  std::uint64_t code_base_;
  std::vector<isa::Word> code_;
  std::vector<std::uint64_t> pool_;
  std::vector<std::uint8_t> data_;
  std::vector<std::int64_t> label_pos_;  // instruction index or -1
  std::vector<std::string> label_name_;
  std::vector<Fixup> fixups_;
  std::unordered_map<std::uint64_t, std::uint32_t> pool_intern_;
  std::unordered_map<std::string, std::uint64_t> named_data_;
};

}  // namespace gemfi::assembler
