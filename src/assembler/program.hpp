// A linked guest program image and its address-space layout.
//
// Layout (see mem/memsys.hpp for the policy enforced at run time):
//   code_base           : first instruction (entry point is a named symbol)
//   pool_base = data_base: 64-bit literal pool, addressed gp-relative
//   pool_base + 8*pool  : application data
//   heap_base           : first free byte after data (4 KiB aligned)
//   stack_top           : per-thread, assigned by the loader
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/encoding.hpp"
#include "mem/memsys.hpp"

namespace gemfi::assembler {

struct Program {
  std::vector<isa::Word> code;
  std::vector<std::uint64_t> pool;   // literal pool (gp-relative)
  std::vector<std::uint8_t> data;    // application data section
  std::uint64_t code_base = 0x2000;
  std::uint64_t entry = 0;           // absolute address of the entry label
  std::unordered_map<std::string, std::uint64_t> symbols;  // absolute addresses

  [[nodiscard]] std::uint64_t code_end() const noexcept {
    return code_base + code.size() * isa::kInstBytes;
  }
  [[nodiscard]] std::uint64_t data_base() const noexcept;   // == gp value
  [[nodiscard]] std::uint64_t data_end() const noexcept;
  [[nodiscard]] std::uint64_t heap_base() const noexcept;   // 4 KiB aligned

  /// Absolute address of a named symbol; throws std::out_of_range if absent.
  [[nodiscard]] std::uint64_t symbol(const std::string& name) const;

  /// Copy code+pool+data into guest memory and mark the code region
  /// read-only. Throws if the image does not fit.
  void load_into(mem::MemSystem& ms) const;
};

}  // namespace gemfi::assembler
