// Length-prefixed message framing for the campaign dispatch protocol.
//
// TCP is a byte stream; the dispatch protocol is message-oriented. Each
// frame is
//
//   magic  u32  'GFNW' (0x47464e57)
//   type   u8   message discriminator (dispatch.hpp's MsgType)
//   length u32  payload byte count
//   crc    u32  CRC32 of the payload (util::crc32, same polynomial as the
//               checkpoint format)
//   payload length bytes (a util/bytesio stream)
//
// FrameReader reassembles frames from arbitrary read chunks and rejects
// damage *before* any payload is interpreted: a bad magic, an oversized
// length or a CRC mismatch throws ProtocolError, and the dispatch layer
// drops the peer instead of crashing the campaign — the chaos tests feed
// garbage and truncated frames straight into this path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

namespace gemfi::net {

/// Thrown on malformed frames (bad magic, oversized payload, CRC mismatch).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kFrameMagic = 0x47464e57;  // "GFNW"
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4 + 4;

struct Frame {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Serialize one frame (header + CRC-guarded payload).
std::vector<std::uint8_t> encode_frame(std::uint8_t type,
                                       std::span<const std::uint8_t> payload);

/// Incremental frame reassembler. feed() appends raw bytes; next() yields
/// complete frames in order. Both throw ProtocolError the moment the buffered
/// prefix cannot be a valid frame; the reader is unusable afterwards (the
/// peer is compromised — drop the connection).
class FrameReader {
 public:
  /// `max_payload` bounds a single frame (memory-exhaustion guard): a control
  /// endpoint (the master) keeps this small, a worker expecting a checkpoint
  /// image raises it.
  explicit FrameReader(std::size_t max_payload) : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> data);
  std::optional<Frame> next();

  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
};

}  // namespace gemfi::net
