// Length-prefixed message framing for the campaign dispatch protocol.
//
// TCP is a byte stream; the dispatch protocol is message-oriented. Each
// frame is
//
//   magic  u32  'GFNW' (0x47464e57)
//   type   u8   message discriminator (dispatch.hpp's MsgType)
//   length u32  payload byte count
//   crc    u32  CRC32 of the payload (util::crc32, same polynomial as the
//               checkpoint format)
//   payload length bytes (a util/bytesio stream)
//
// FrameReader reassembles frames from arbitrary read chunks and rejects
// damage *before* any payload is interpreted: a bad magic, an oversized
// length or a CRC mismatch throws ProtocolError, and the dispatch layer
// drops the peer instead of crashing the campaign — the chaos tests feed
// garbage and truncated frames straight into this path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

namespace gemfi::net {

/// Thrown on malformed frames (bad magic, oversized payload, CRC mismatch).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kFrameMagic = 0x47464e57;  // "GFNW"
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4 + 4;

struct Frame {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Serialize one frame (header + CRC-guarded payload).
std::vector<std::uint8_t> encode_frame(std::uint8_t type,
                                       std::span<const std::uint8_t> payload);

/// Liveness accounting for a framed peer. The naive rule — "any received
/// byte proves the peer alive" — lets a hostile peer drip-feed one byte per
/// heartbeat interval and never be timed out; the opposite rule — "only a
/// complete frame counts" — falsely kills a slow worker in the middle of one
/// large frame. This tracker keeps both deadlines: idleness is measured from
/// the last *complete* frame, and a partial frame in the reassembly buffer
/// buys at most `frame_grace` seconds from the moment it started arriving.
struct FrameLiveness {
  double last_frame = 0.0;     // time of the last complete frame (or connect)
  double partial_since = 0.0;  // start of the pending partial frame; 0 = none

  void reset(double now) noexcept {
    last_frame = now;
    partial_since = 0.0;
  }

  /// Call after feeding received bytes and draining complete frames.
  /// `frame_completed` = at least one frame was produced by this read;
  /// `buffered` = bytes of partial frame still in the reassembly buffer.
  void on_read(double now, bool frame_completed, std::size_t buffered) noexcept {
    if (frame_completed) last_frame = now;
    if (buffered == 0)
      partial_since = 0.0;
    else if (frame_completed || partial_since == 0.0)
      partial_since = now;
  }

  /// Dead if idle past `idle_timeout` since the last complete frame, unless
  /// a partial frame is in flight and still within its `frame_grace` budget.
  [[nodiscard]] bool expired(double now, double idle_timeout,
                             double frame_grace) const noexcept {
    if (now - last_frame <= idle_timeout) return false;
    return partial_since == 0.0 || now - partial_since > frame_grace;
  }
};

/// Incremental frame reassembler. feed() appends raw bytes; next() yields
/// complete frames in order. Both throw ProtocolError the moment the buffered
/// prefix cannot be a valid frame; the reader is unusable afterwards (the
/// peer is compromised — drop the connection).
class FrameReader {
 public:
  /// `max_payload` bounds a single frame (memory-exhaustion guard): a control
  /// endpoint (the master) keeps this small, a worker expecting a checkpoint
  /// image raises it.
  explicit FrameReader(std::size_t max_payload) : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> data);
  std::optional<Frame> next();

  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
};

}  // namespace gemfi::net
