#include "net/frame.hpp"

#include <cstring>

#include "util/bytesio.hpp"

namespace gemfi::net {

std::vector<std::uint8_t> encode_frame(std::uint8_t type,
                                       std::span<const std::uint8_t> payload) {
  util::ByteWriter w;
  w.reserve(kFrameHeaderBytes + payload.size());
  w.put_u32(kFrameMagic);
  w.put_u8(type);
  w.put_u32(std::uint32_t(payload.size()));
  w.put_u32(util::crc32(payload));
  w.put_bytes(payload);
  return w.take();
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + std::ptrdiff_t(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Frame> FrameReader::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) {
    // Even a partial header can prove the stream is garbage: check whatever
    // magic prefix has arrived so a junk peer is rejected at the first read.
    for (std::size_t i = 0; i < std::min(avail, std::size_t(4)); ++i) {
      const std::uint8_t expect = std::uint8_t(kFrameMagic >> (8 * i));
      if (buf_[pos_ + i] != expect) throw ProtocolError("bad frame magic");
    }
    return std::nullopt;
  }

  std::uint32_t magic = 0, length = 0, crc = 0;
  std::memcpy(&magic, buf_.data() + pos_, 4);
  std::memcpy(&length, buf_.data() + pos_ + 5, 4);
  std::memcpy(&crc, buf_.data() + pos_ + 9, 4);
  if (magic != kFrameMagic) throw ProtocolError("bad frame magic");
  if (length > max_payload_)
    throw ProtocolError("frame payload of " + std::to_string(length) +
                        " bytes exceeds the " + std::to_string(max_payload_) +
                        "-byte limit");
  if (avail < kFrameHeaderBytes + length) return std::nullopt;

  Frame f;
  f.type = buf_[pos_ + 4];
  const std::uint8_t* body = buf_.data() + pos_ + kFrameHeaderBytes;
  f.payload.assign(body, body + length);
  if (util::crc32(f.payload) != crc) throw ProtocolError("frame CRC mismatch");
  pos_ += kFrameHeaderBytes + length;
  return f;
}

}  // namespace gemfi::net
