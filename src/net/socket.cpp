#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace gemfi::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

sockaddr_in resolve_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr)
    throw SocketError("cannot resolve host '" + host + "': " + ::gai_strerror(rc));
  addr.sin_addr = reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

}  // namespace

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Fd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

TcpConn TcpConn::connect(const std::string& host, std::uint16_t port,
                         unsigned attempts, double backoff_s) {
  const sockaddr_in addr = resolve_ipv4(host, port);
  std::string last_error = "no attempts made";
  for (unsigned attempt = 0; attempt < std::max(attempts, 1u); ++attempt) {
    if (attempt != 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      backoff_s = std::min(backoff_s * 2.0, 2.0);
    }
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      set_nonblocking(fd.get());
      return TcpConn(std::move(fd));
    }
    last_error = std::strerror(errno);
  }
  throw SocketError("cannot connect to " + host + ":" + std::to_string(port) + ": " +
                    last_error);
}

namespace {

sockaddr_un resolve_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path)
    throw SocketError("unix socket path too long or empty: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

TcpConn TcpConn::connect_unix(const std::string& path, unsigned attempts,
                              double backoff_s) {
  const sockaddr_un addr = resolve_unix(path);
  std::string last_error = "no attempts made";
  for (unsigned attempt = 0; attempt < std::max(attempts, 1u); ++attempt) {
    if (attempt != 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      backoff_s = std::min(backoff_s * 2.0, 2.0);
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket(AF_UNIX)");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      set_nonblocking(fd.get());
      return TcpConn(std::move(fd));
    }
    last_error = std::strerror(errno);
  }
  throw SocketError("cannot connect to unix socket " + path + ": " + last_error);
}

void TcpConn::send_all(std::span<const std::uint8_t> data, double timeout_s) {
  const double deadline = mono_seconds() + timeout_s;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += std::size_t(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      throw_errno("send");
    const double remaining = deadline - mono_seconds();
    if (remaining <= 0.0) throw SocketError("send timed out (peer not reading)");
    pollfd pfd{fd_.get(), POLLOUT, 0};
    ::poll(&pfd, 1, int(std::min(remaining, 0.25) * 1000.0) + 1);
  }
}

std::optional<std::size_t> TcpConn::recv_some(std::span<std::uint8_t> out) {
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), out.data(), out.size(), 0);
    if (n > 0) return std::size_t(n);
    if (n == 0) return std::nullopt;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::size_t(0);
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

bool TcpConn::wait_readable(double timeout_s) const {
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, int(timeout_s * 1000.0));
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

TcpListener TcpListener::bind_listen(const std::string& host, std::uint16_t port,
                                     int backlog) {
  sockaddr_in addr = resolve_ipv4(host, port);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0)
    throw_errno("bind " + host + ":" + std::to_string(port));
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
  set_nonblocking(fd.get());

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    throw_errno("getsockname");

  TcpListener l;
  l.fd_ = std::move(fd);
  l.port_ = ntohs(bound.sin_port);
  return l;
}

std::optional<TcpConn> TcpListener::accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return std::nullopt;
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  Fd owned(fd);
  set_nonblocking(owned.get());
  return TcpConn(std::move(owned));
}

UnixListener::UnixListener(UnixListener&& o) noexcept
    : fd_(std::move(o.fd_)), path_(std::move(o.path_)) {
  o.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::move(o.fd_);
    path_ = std::move(o.path_);
    o.path_.clear();
  }
  return *this;
}

UnixListener UnixListener::bind_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = resolve_unix(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  // A previous master that crashed leaves the socket file behind; binding
  // over it needs the unlink (there is no SO_REUSEADDR for AF_UNIX).
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0)
    throw_errno("bind unix socket " + path);
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
  set_nonblocking(fd.get());

  UnixListener l;
  l.fd_ = std::move(fd);
  l.path_ = path;
  return l;
}

std::optional<TcpConn> UnixListener::accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return std::nullopt;
    throw_errno("accept(unix)");
  }
  Fd owned(fd);
  set_nonblocking(owned.get());
  return TcpConn(std::move(owned));
}

void UnixListener::close() noexcept {
  fd_.reset();
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

SelfPipe::SelfPipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  rd_ = Fd(fds[0]);
  wr_ = Fd(fds[1]);
  set_nonblocking(rd_.get());
  set_nonblocking(wr_.get());
}

void SelfPipe::notify() noexcept {
  const std::uint8_t byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wr_.get(), &byte, 1);
}

void SelfPipe::drain() noexcept {
  std::uint8_t buf[64];
  while (::read(rd_.get(), buf, sizeof buf) > 0) {
  }
}

}  // namespace gemfi::net
