#include "net/sigint.hpp"

#include <signal.h>

#include <atomic>
#include <mutex>
#include <stdexcept>

namespace gemfi::net {

namespace {

// The handler walks this table, so entries are atomics; registration and
// deregistration (normal, non-signal context) serialize on the mutex, which
// also guards the install/restore of the previous disposition.
constexpr int kMaxSlots = 16;
std::atomic<SelfPipe*> g_slots[kMaxSlots] = {};
std::mutex g_mutex;
int g_registered = 0;
struct sigaction g_previous {};

void sigint_handler(int) {
  for (auto& slot : g_slots)
    if (SelfPipe* pipe = slot.load(std::memory_order_acquire)) pipe->notify();
}

}  // namespace

ScopedSigint::ScopedSigint(SelfPipe* pipe, bool enabled) {
  if (!enabled || pipe == nullptr) return;
  std::lock_guard lock(g_mutex);
  for (int i = 0; i < kMaxSlots; ++i) {
    if (g_slots[i].load(std::memory_order_relaxed) != nullptr) continue;
    slot_ = i;
    g_slots[i].store(pipe, std::memory_order_release);
    break;
  }
  if (slot_ < 0)
    throw std::runtime_error("ScopedSigint: all " + std::to_string(kMaxSlots) +
                             " SIGINT registration slots in use");
  if (g_registered++ == 0) {
    struct sigaction sa {};
    sa.sa_handler = sigint_handler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, &g_previous);
  }
}

ScopedSigint::~ScopedSigint() {
  if (slot_ < 0) return;
  std::lock_guard lock(g_mutex);
  g_slots[slot_].store(nullptr, std::memory_order_release);
  if (--g_registered == 0) ::sigaction(SIGINT, &g_previous, nullptr);
}

}  // namespace gemfi::net
