// Minimal POSIX TCP layer for the distributed NoW campaign service.
//
// The paper ran its 27-workstation campaigns over an NFS share; the service
// replaces that with an explicit master/worker protocol over TCP. This header
// is the only place raw socket syscalls live: RAII descriptors, a listener, a
// connection with bounded-backoff connect and timeout-guarded blocking I/O on
// non-blocking fds, and a self-pipe so a signal can wake the master's poll
// loop. Everything above it (framing, dispatch) is byte-level and testable
// without a network.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

namespace gemfi::net {

/// Thrown on socket-level failures (connect/bind/send/recv). Protocol-level
/// damage (bad frames) is frame.hpp's ProtocolError instead.
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Monotonic host seconds (the clock every timeout in this layer uses).
double mono_seconds();

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream. The fd is non-blocking; send_all/recv_some layer
/// poll-based waits on top so callers get bounded blocking semantics.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(Fd fd) : fd_(std::move(fd)) {}

  /// Connect to host:port (IPv4; numeric or resolvable name). Retries up to
  /// `attempts` times with exponential backoff starting at `backoff_s`
  /// (doubling, capped at 2 s). Throws SocketError when the budget runs out.
  static TcpConn connect(const std::string& host, std::uint16_t port,
                         unsigned attempts = 1, double backoff_s = 0.1);

  /// Connect to a UNIX-domain stream socket at `path` (same retry/backoff
  /// contract as connect()). A connected AF_UNIX stream behaves exactly like
  /// a connected TCP stream at this layer, so the result is a TcpConn and
  /// everything above (framing, dispatch) is transport-agnostic; same-host
  /// workers use this to skip the loopback TCP stack.
  static TcpConn connect_unix(const std::string& path, unsigned attempts = 1,
                              double backoff_s = 0.1);

  /// Write the whole span, waiting (poll POLLOUT) as needed; throws
  /// SocketError on a connection error or if `timeout_s` elapses while the
  /// peer accepts no bytes (a dead or wedged reader).
  void send_all(std::span<const std::uint8_t> data, double timeout_s = 30.0);

  /// Read whatever is available into `out`. Returns the byte count, 0 if the
  /// socket would block (no data), and nullopt on EOF. Throws on errors.
  std::optional<std::size_t> recv_some(std::span<std::uint8_t> out);

  /// Block (poll) until readable, EOF, or timeout. True if readable/EOF.
  [[nodiscard]] bool wait_readable(double timeout_s) const;

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  void close() noexcept { fd_.reset(); }

 private:
  Fd fd_;
};

/// A listening IPv4 socket (non-blocking, SO_REUSEADDR). port 0 binds an
/// ephemeral port; port() reports the actual one.
class TcpListener {
 public:
  TcpListener() = default;
  static TcpListener bind_listen(const std::string& host, std::uint16_t port,
                                 int backlog = 16);

  /// Accept one pending connection; nullopt if none is queued.
  std::optional<TcpConn> accept();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  void close() noexcept { fd_.reset(); }

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// A listening UNIX-domain stream socket (non-blocking). Binds `path`,
/// unlinking any stale socket file first; the destructor (or close())
/// unlinks it again. Accepted connections are plain TcpConn streams.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener() { close(); }
  UnixListener(UnixListener&& o) noexcept;
  UnixListener& operator=(UnixListener&& o) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Throws SocketError if `path` exceeds sockaddr_un's limit (~107 bytes)
  /// or the bind/listen fails.
  static UnixListener bind_listen(const std::string& path, int backlog = 16);

  /// Accept one pending connection; nullopt if none is queued.
  std::optional<TcpConn> accept();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  void close() noexcept;

 private:
  Fd fd_;
  std::string path_;
};

/// Classic self-pipe: an async-signal-safe notify() end and a pollable read
/// end, so a SIGINT handler can wake the master's poll loop for a graceful
/// drain instead of killing the campaign mid-experiment.
class SelfPipe {
 public:
  SelfPipe();

  void notify() noexcept;      // async-signal-safe
  void drain() noexcept;       // consume pending notifications
  [[nodiscard]] int read_fd() const noexcept { return rd_.get(); }

 private:
  Fd rd_;
  Fd wr_;
};

}  // namespace gemfi::net
