// Nesting-safe SIGINT -> SelfPipe fan-out for the campaign masters/service.
//
// The dispatch layer used to keep a single global `SelfPipe*` for its SIGINT
// handler: two Master instances in one process (e.g. a `--now-local` run
// under test next to another master, or the campaign service hosting a
// one-shot master) would overwrite each other's registration and restore the
// wrong previous disposition on exit. This replaces that with a small slot
// table: every registered pipe is notified on SIGINT (the signal is
// process-wide, so every drain-capable loop should drain), the handler is
// installed on the first registration only, and the original disposition is
// restored when the last registrant leaves. Registration beyond the slot
// capacity fails loudly instead of clobbering an earlier registrant.
#pragma once

#include "net/socket.hpp"

namespace gemfi::net {

/// RAII registration of a SelfPipe to be notified on SIGINT. Safe to nest
/// and to hold from several threads' loops at once. With enabled == false
/// the object does nothing (so callers can keep one unconditional member).
/// Throws std::runtime_error if all registration slots are taken.
class ScopedSigint {
 public:
  ScopedSigint(SelfPipe* pipe, bool enabled);
  ~ScopedSigint();

  ScopedSigint(const ScopedSigint&) = delete;
  ScopedSigint& operator=(const ScopedSigint&) = delete;

 private:
  int slot_ = -1;  // -1: not registered (disabled)
};

}  // namespace gemfi::net
