// Statistics helpers used by the evaluation benches.
//
// Two paper-facing pieces live here:
//  * Student-t 95% confidence intervals for Fig. 7 (overhead error bars);
//  * the statistical fault-injection sample-size formula of
//    Leveugle et al., "Statistical fault injection: quantified error and
//    confidence" (DATE 2009), which the paper uses to size every campaign at
//    2501-2504 runs for 99% confidence / 1% margin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gemfi::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;   // sample variance (n-1 denominator)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One-pass summary of a sample. Empty input yields a zeroed Summary.
Summary summarize(std::span<const double> sample);

/// Half-width of the two-sided confidence interval around the sample mean,
/// i.e. mean +/- ci_half_width(). Uses a Student-t quantile table with
/// graceful fallback to the normal quantile for large samples.
double ci_half_width(const Summary& s, double confidence = 0.95);

/// Two-sided Student-t critical value for `df` degrees of freedom.
double student_t_critical(std::size_t df, double confidence);

/// Two-sided standard-normal critical value, e.g. 1.96 for 95%, 2.576 for 99%.
double normal_critical(double confidence);

/// Leveugle et al. (DATE'09) sample size for a fault population of size N,
/// error margin e (e.g. 0.01) and confidence from the cut-off t (e.g. 2.576
/// for 99%), with worst-case p = 0.5:
///     n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))
/// With N -> infinity this tends to (t/2e)^2, e.g. ~16590 for 99%/1%;
/// for the finite populations of the paper's kernels it lands near 2500.
std::size_t required_sample_size(std::uint64_t population, double error_margin,
                                 double confidence, double p = 0.5);

/// Relative overhead (a vs b) in percent: 100 * (a - b) / b.
double percent_overhead(double a, double b);

/// Two-sided binomial confidence interval [lo, hi] for a proportion, from
/// `successes` out of `trials`. Both bounds are clamped to [0, 1].
struct ProportionInterval {
  double lo = 0.0;
  double hi = 1.0;
  [[nodiscard]] double half_width() const noexcept { return (hi - lo) / 2.0; }
};

/// Wilson score interval (Wilson 1927): the default for streaming campaign
/// analytics — closed-form, well-behaved at p near 0/1 and small n, and the
/// interval every sequential stop rule in the campaign layer evaluates.
/// trials == 0 yields the vacuous [0, 1].
ProportionInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                   double confidence);

/// Clopper-Pearson "exact" interval (1934), inverted from the Beta
/// distribution. Strictly conservative (coverage >= confidence); used to
/// cross-check Wilson in analytics summaries. trials == 0 yields [0, 1].
ProportionInterval clopper_pearson_interval(std::uint64_t successes,
                                            std::uint64_t trials, double confidence);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and x in
/// [0, 1], via the Lentz continued fraction. Exposed for tests.
double regularized_incomplete_beta(double a, double b, double x);

/// Online (Welford-style) mean for streaming telemetry: campaign observers
/// feed per-experiment wall times in as they complete and read the running
/// mean for ETA estimates without storing the sample.
class RunningMean {
 public:
  void add(double x) noexcept {
    ++count_;
    mean_ += (x - mean_) / double(count_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Expected seconds to finish `remaining` more items at the current mean,
  /// spread over `parallelism` workers.
  [[nodiscard]] double eta_seconds(std::size_t remaining, unsigned parallelism = 1) const noexcept {
    if (count_ == 0 || parallelism == 0) return 0.0;
    return mean_ * double(remaining) / double(parallelism);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
};

}  // namespace gemfi::util
