#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gemfi::util {

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  s.min = sample[0];
  s.max = sample[0];
  double sum = 0.0;
  for (double v : sample) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double sq = 0.0;
    for (double v : sample) {
      const double d = v - s.mean;
      sq += d * d;
    }
    s.variance = sq / static_cast<double>(s.count - 1);
    s.stddev = std::sqrt(s.variance);
  }
  return s;
}

namespace {

// Inverse CDF of the standard normal (Acklam's rational approximation).
double normal_quantile(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p <= 0.0) return -HUGE_VAL;
  if (p >= 1.0) return HUGE_VAL;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

double normal_critical(double confidence) {
  return normal_quantile(0.5 + confidence / 2.0);
}

double student_t_critical(std::size_t df, double confidence) {
  if (df == 0) return HUGE_VAL;
  // Cornish-Fisher style expansion of the t quantile around the normal one;
  // accurate to ~1e-3 for df >= 3 which is ample for CI error bars.
  const double z = normal_critical(confidence);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double n = static_cast<double>(df);
  double t = z + (z3 + z) / (4 * n) + (5 * z5 + 16 * z3 + 3 * z) / (96 * n * n) +
             (3 * z7 + 19 * z5 + 17 * z3 - 15 * z) / (384 * n * n * n);
  // Exact small-df corrections where the expansion is weakest (95% / 99%).
  if (df == 1) t = confidence >= 0.99 ? 63.657 : 12.706;
  if (df == 2) t = confidence >= 0.99 ? 9.925 : 4.303;
  return t;
}

double ci_half_width(const Summary& s, double confidence) {
  if (s.count < 2) return 0.0;
  const double t = student_t_critical(s.count - 1, confidence);
  return t * s.stddev / std::sqrt(static_cast<double>(s.count));
}

std::size_t required_sample_size(std::uint64_t population, double error_margin,
                                 double confidence, double p) {
  if (population == 0) return 0;
  const double t = normal_critical(confidence);
  const double N = static_cast<double>(population);
  const double e = error_margin;
  const double n = N / (1.0 + e * e * (N - 1.0) / (t * t * p * (1.0 - p)));
  const double rounded = std::ceil(n);
  return rounded >= N ? static_cast<std::size_t>(population)
                      : static_cast<std::size_t>(rounded);
}

double percent_overhead(double a, double b) {
  if (b == 0.0) return 0.0;
  return 100.0 * (a - b) / b;
}

ProportionInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                   double confidence) {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z = normal_critical(confidence);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double margin = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  ProportionInterval ci;
  ci.lo = std::max(0.0, (center - margin) / denom);
  ci.hi = std::min(1.0, (center + margin) / denom);
  return ci;
}

namespace {

double ln_gamma(double x) { return std::lgamma(x); }

// Continued-fraction core of I_x(a, b) (modified Lentz), valid for
// x < (a + 1) / (a + b + 2); callers use the symmetry relation otherwise.
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

// Smallest p in [0, 1] with I_p(a, b) >= target, by bisection. The beta CDF
// is monotone in p, so 90 halvings pin the root to ~1e-27 — far below the
// 1e-12 the interval tests compare against.
double beta_cdf_inverse(double a, double b, double target) {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 90; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_incomplete_beta(a, b, mid) < target) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) return front * beta_cf(a, b, x) / a;
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

ProportionInterval clopper_pearson_interval(std::uint64_t successes,
                                            std::uint64_t trials, double confidence) {
  if (trials == 0) return {};
  const double alpha = 1.0 - confidence;
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  ProportionInterval ci;
  // Lower bound: Beta(k, n - k + 1) quantile at alpha/2; exactly 0 when k = 0.
  ci.lo = successes == 0 ? 0.0 : beta_cdf_inverse(k, n - k + 1.0, alpha / 2.0);
  // Upper bound: Beta(k + 1, n - k) quantile at 1 - alpha/2; exactly 1 at k = n.
  ci.hi = successes == trials ? 1.0
                              : beta_cdf_inverse(k + 1.0, n - k, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace gemfi::util
