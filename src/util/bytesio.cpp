#include "util/bytesio.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace gemfi::util {

namespace {
// Slice-by-8 CRC-32 (polynomial 0xEDB88320): checkpoints carry multi-MiB
// memory images, so the integrity pass must run at memory speed, not at
// one table lookup per byte.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (unsigned t = 1; t < 8; ++t)
      tables[t][i] = tables[0][tables[t - 1][i] & 0xffu] ^ (tables[t - 1][i] >> 8);
  return tables;
}
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const auto tables = make_crc_tables();
  std::uint32_t c = seed ^ 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tables[7][lo & 0xff] ^ tables[6][(lo >> 8) & 0xff] ^
        tables[5][(lo >> 16) & 0xff] ^ tables[4][lo >> 24] ^
        tables[3][hi & 0xff] ^ tables[2][(hi >> 8) & 0xff] ^
        tables[1][(hi >> 16) & 0xff] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) c = tables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::vector<std::uint8_t> rle_compress(std::span<const std::uint8_t> data) {
  constexpr std::size_t kMaxRepeat = 0x7f + 3;   // 130
  constexpr std::size_t kMaxLiteral = 0x7f + 1;  // 128
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 4 + 8);
  std::size_t i = 0;
  std::size_t lit_start = 0;  // start of the pending literal run
  const auto flush_literals = [&](std::size_t end) {
    while (lit_start < end) {
      const std::size_t n = std::min(end - lit_start, kMaxLiteral);
      out.push_back(std::uint8_t(n - 1));
      out.insert(out.end(), data.begin() + std::ptrdiff_t(lit_start),
                 data.begin() + std::ptrdiff_t(lit_start + n));
      lit_start += n;
    }
  };
  while (i < data.size()) {
    std::size_t run = 1;
    while (i + run < data.size() && data[i + run] == data[i] && run < kMaxRepeat) ++run;
    if (run >= 3) {
      flush_literals(i);
      out.push_back(std::uint8_t(0x80 + (run - 3)));
      out.push_back(data[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(data.size());
  return out;
}

void rle_decompress(std::span<const std::uint8_t> data, std::span<std::uint8_t> out) {
  std::size_t in = 0;
  std::size_t pos = 0;
  while (in < data.size()) {
    const std::uint8_t c = data[in++];
    if (c < 0x80) {
      const std::size_t n = std::size_t(c) + 1;
      if (in + n > data.size()) throw DeserializeError("RLE literal run truncated");
      if (pos + n > out.size()) throw DeserializeError("RLE stream overruns page");
      std::memcpy(out.data() + pos, data.data() + in, n);
      in += n;
      pos += n;
    } else {
      const std::size_t n = std::size_t(c - 0x80) + 3;
      if (in >= data.size()) throw DeserializeError("RLE repeat run truncated");
      if (pos + n > out.size()) throw DeserializeError("RLE stream overruns page");
      std::memset(out.data() + pos, data[in++], n);
      pos += n;
    }
  }
  if (pos != out.size()) throw DeserializeError("RLE stream shorter than page");
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::put_blob(std::span<const std::uint8_t> data) {
  put_u64(data.size());
  put_bytes(data);
}

void ByteWriter::put_string(const std::string& s) {
  put_blob({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw DeserializeError("checkpoint stream truncated");
}

void ByteReader::get_bytes(std::span<std::uint8_t> out) {
  need(out.size());
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
}

std::vector<std::uint8_t> ByteReader::get_blob() {
  const std::uint64_t n = get_u64();
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::get_string() {
  const auto blob = get_blob();
  return std::string(blob.begin(), blob.end());
}

}  // namespace gemfi::util
