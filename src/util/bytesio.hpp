// Little-endian byte stream writer/reader used by the checkpoint subsystem.
//
// The paper checkpoints the whole simulator process via DMTCP; our substitute
// serializes the simulation object graph through these primitives. The format
// is deliberately simple (fixed-width little-endian scalars, length-prefixed
// blobs) and guarded by a CRC32 so a truncated or corrupted checkpoint is
// detected on restore instead of silently desynchronizing a campaign.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace gemfi::util {

/// Thrown by ByteReader on malformed input (truncation, bad magic, bad CRC).
class DeserializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

/// PackBits-style byte RLE used for v2 checkpoint page payloads. A control
/// byte c < 0x80 introduces a literal run of c+1 bytes; c >= 0x80 repeats
/// the following byte (c - 0x80 + 3) times, so runs shorter than 3 are never
/// "compressed" and incompressible input grows by at most 1/128.
std::vector<std::uint8_t> rle_compress(std::span<const std::uint8_t> data);

/// Decode an rle_compress() stream into exactly out.size() bytes. Throws
/// DeserializeError if the stream is truncated, overruns the output, or
/// decodes to fewer bytes than expected.
void rle_decompress(std::span<const std::uint8_t> data, std::span<std::uint8_t> out);

// The stream format is little-endian; on little-endian hosts (the only kind
// we target; enforced here) scalars can be appended with a plain memcpy.
static_assert(std::endian::native == std::endian::little,
              "gemfi checkpoint streams require a little-endian host");

class ByteWriter {
 public:
  void reserve(std::size_t n) { buf_.reserve(n); }
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { append_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { append_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { append_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) { append_raw(&v, sizeof v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed blob.
  void put_blob(std::span<const std::uint8_t> data);
  void put_string(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void append_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t get_u8() { return read_raw<std::uint8_t>(); }
  std::uint16_t get_u16() { return read_raw<std::uint16_t>(); }
  std::uint32_t get_u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t get_u64() { return read_raw<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64() { return read_raw<double>(); }
  bool get_bool() { return get_u8() != 0; }
  void get_bytes(std::span<std::uint8_t> out);
  std::vector<std::uint8_t> get_blob();
  std::string get_string();
  /// Consume n bytes and return a view into the underlying buffer (valid as
  /// long as the buffer the reader was constructed over lives).
  std::span<const std::uint8_t> get_span(std::size_t n) {
    need(n);
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t n) const;

  template <typename T>
  T read_raw() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace gemfi::util
