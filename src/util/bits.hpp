// Bit-manipulation helpers shared by the ISA encoder/decoder and the fault
// injector (which corrupts values at specific bit positions).
#pragma once

#include <cstdint>

namespace gemfi::util {

/// Extract bits [lo, lo+width) of x (width <= 64).
constexpr std::uint64_t bits(std::uint64_t x, unsigned lo, unsigned width) noexcept {
  const std::uint64_t mask = width >= 64 ? ~0ull : ((1ull << width) - 1);
  return (x >> lo) & mask;
}

/// Insert `value`'s low `width` bits into x at position lo.
constexpr std::uint64_t insert_bits(std::uint64_t x, unsigned lo, unsigned width,
                                    std::uint64_t value) noexcept {
  const std::uint64_t mask = (width >= 64 ? ~0ull : ((1ull << width) - 1)) << lo;
  return (x & ~mask) | ((value << lo) & mask);
}

/// Sign-extend the low `width` bits of x to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t x, unsigned width) noexcept {
  if (width == 0 || width >= 64) return static_cast<std::int64_t>(x);
  const std::uint64_t sign_bit = 1ull << (width - 1);
  const std::uint64_t mask = (1ull << width) - 1;
  x &= mask;
  return static_cast<std::int64_t>((x ^ sign_bit) - sign_bit);
}

constexpr std::uint64_t flip_bit(std::uint64_t x, unsigned bit) noexcept {
  return bit >= 64 ? x : x ^ (1ull << bit);
}

constexpr bool get_bit(std::uint64_t x, unsigned bit) noexcept {
  return bit < 64 && ((x >> bit) & 1ull) != 0;
}

}  // namespace gemfi::util
