// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (fault-campaign sampling,
// guest-program inputs, scheduler jitter in tests) draws from an explicitly
// seeded generator so that experiments are replayable bit-for-bit. We use
// SplitMix64 for seeding and xoshiro256** as the workhorse; both are public
// domain algorithms (Blackman & Vigna).
#pragma once

#include <cstdint>

namespace gemfi::util {

/// SplitMix64 step: good for expanding one 64-bit seed into many.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Debiased via rejection sampling on the top of the range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace gemfi::util
