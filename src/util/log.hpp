// Minimal leveled logger for the GemFI reproduction.
//
// The simulator is deterministic and single-threaded per Simulation instance,
// but campaigns run many simulations concurrently, so the sink is guarded by
// a mutex. Logging defaults to Warn so benches and tests stay quiet; flip to
// Debug when chasing a guest program or injector bug.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace gemfi::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold. Messages below this level are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// printf-style logging entry point; prefer the GEMFI_LOG_* macros.
void log_message(LogLevel level, const char* module, const std::string& text);

namespace detail {
std::string format_args(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace gemfi::util

#define GEMFI_LOG(level, module, ...)                                        \
  do {                                                                       \
    if (static_cast<int>(level) >= static_cast<int>(::gemfi::util::log_level())) \
      ::gemfi::util::log_message(level, module,                              \
                                 ::gemfi::util::detail::format_args(__VA_ARGS__)); \
  } while (0)

#define GEMFI_DEBUG(module, ...) GEMFI_LOG(::gemfi::util::LogLevel::Debug, module, __VA_ARGS__)
#define GEMFI_INFO(module, ...) GEMFI_LOG(::gemfi::util::LogLevel::Info, module, __VA_ARGS__)
#define GEMFI_WARN(module, ...) GEMFI_LOG(::gemfi::util::LogLevel::Warn, module, __VA_ARGS__)
#define GEMFI_ERROR(module, ...) GEMFI_LOG(::gemfi::util::LogLevel::Error, module, __VA_ARGS__)
