#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <vector>

namespace gemfi::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

void log_message(LogLevel level, const char* module, const std::string& text) {
  std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), module, text.c_str());
}

namespace detail {
std::string format_args(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}
}  // namespace detail

}  // namespace gemfi::util
