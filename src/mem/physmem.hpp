// Flat, byte-addressable physical memory with checked accesses.
//
// Functional data lives here; the caches in cache.hpp model timing only
// (a common and exactly-reproducible split also used by gem5's "classic"
// memory system in atomic mode). All multi-byte accesses are little-endian.
//
// Every guest access is bounds- and alignment-checked: fault injection
// produces wild addresses by design, and the simulator must convert them
// into clean guest crashes (the paper's "Crashed" outcome class), never into
// host UB.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bytesio.hpp"

namespace gemfi::mem {

enum class AccessError : std::uint8_t {
  None = 0,
  OutOfBounds,   // beyond physical memory
  Misaligned,    // natural alignment violated
  NullPage,      // access inside the unmapped guard page at address 0
  ReadOnly,      // store into the code segment
};

const char* access_error_name(AccessError e) noexcept;

class PhysMem {
 public:
  /// Granularity of checkpoint serialization and dirty tracking.
  static constexpr std::uint64_t kPageBytes = 4096;
  static constexpr unsigned kPageShift = 12;

  explicit PhysMem(std::uint64_t size_bytes)
      : bytes_(size_bytes, 0),
        dirty_((page_count_of(size_bytes) + 63) / 64, 0),
        versions_(page_count_of(size_bytes), 0) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return bytes_.size(); }

  /// Raw unchecked view for loaders and checkpointing. Writes through the
  /// mutable span bypass dirty tracking; callers must clear_dirty() or
  /// mark_all_dirty() afterwards as appropriate (the checkpoint restore
  /// paths do).
  [[nodiscard]] std::span<const std::uint8_t> raw() const noexcept { return bytes_; }
  [[nodiscard]] std::span<std::uint8_t> raw() noexcept { return bytes_; }

  // --- page-granular view (4 KiB; the last page may be partial) ---
  [[nodiscard]] std::uint64_t page_count() const noexcept {
    return page_count_of(bytes_.size());
  }
  [[nodiscard]] std::span<const std::uint8_t> page(std::uint64_t i) const noexcept {
    const std::uint64_t base = i << kPageShift;
    return {bytes_.data() + base, std::size_t(std::min(kPageBytes, bytes_.size() - base))};
  }

  // --- dirty-page bitmap (pages mutated since the last clear_dirty()) ---
  // One bit per page, packed into u64 words; maintained by store() and
  // write_block(), consumed by the checkpoint shared-baseline restore path.
  [[nodiscard]] bool page_dirty(std::uint64_t i) const noexcept {
    return (dirty_[i >> 6] >> (i & 63)) & 1;
  }
  [[nodiscard]] std::span<const std::uint64_t> dirty_words() const noexcept { return dirty_; }
  [[nodiscard]] std::uint64_t dirty_page_count() const noexcept;
  void clear_dirty() noexcept { std::fill(dirty_.begin(), dirty_.end(), 0); }
  void mark_all_dirty() noexcept;

  /// Replace the whole image (sizes must match) and clear the dirty bitmap:
  /// memory is now exactly the image it was copied from.
  void copy_from(std::span<const std::uint8_t> image);

  // --- page mutation versions (predecode-cache coherence) ---
  // A monotonic per-page counter bumped by every mutation of the page:
  // store(), write_block(), copy_from(), deserialize(), mark_all_dirty().
  // Consumers (the predecoded-instruction cache) tag derived state with the
  // version it was computed at and treat any mismatch as stale, so code
  // rewritten by a store or a checkpoint restore is never served from a
  // stale decode. Unlike the dirty bitmap, versions are never cleared.
  [[nodiscard]] std::uint64_t page_version(std::uint64_t i) const noexcept {
    return versions_[i];
  }
  /// Record an out-of-band mutation of [addr, addr+n) performed through the
  /// mutable raw() span (checkpoint dirty-page restore does this).
  void bump_page_versions(std::uint64_t addr, std::uint64_t n) noexcept {
    if (n != 0) bump_versions(addr, n);
  }

  [[nodiscard]] bool in_bounds(std::uint64_t addr, std::uint64_t n) const noexcept {
    return addr <= bytes_.size() && n <= bytes_.size() - addr;
  }

  // Checked typed accessors. On error the out-parameter is untouched and the
  // error is returned; the CPU turns it into a trap.
  AccessError load(std::uint64_t addr, unsigned n, std::uint64_t& out) const noexcept;
  AccessError store(std::uint64_t addr, unsigned n, std::uint64_t value) noexcept;

  /// Bulk copy used by program loading; caller guarantees bounds.
  void write_block(std::uint64_t addr, std::span<const std::uint8_t> data);
  void read_block(std::uint64_t addr, std::span<std::uint8_t> out) const;

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

 private:
  static constexpr std::uint64_t page_count_of(std::uint64_t bytes) noexcept {
    return (bytes + kPageBytes - 1) >> kPageShift;
  }
  void mark_dirty(std::uint64_t addr, std::uint64_t n) noexcept {
    const std::uint64_t first = addr >> kPageShift;
    const std::uint64_t last = (addr + n - 1) >> kPageShift;
    for (std::uint64_t p = first; p <= last; ++p) {
      dirty_[p >> 6] |= 1ull << (p & 63);
      ++versions_[p];
    }
  }
  void bump_versions(std::uint64_t addr, std::uint64_t n) noexcept {
    const std::uint64_t first = addr >> kPageShift;
    const std::uint64_t last = (addr + n - 1) >> kPageShift;
    for (std::uint64_t p = first; p <= last; ++p) ++versions_[p];
  }
  void bump_all_versions() noexcept {
    for (std::uint64_t& v : versions_) ++v;
  }

  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint64_t> dirty_;  // bit per page, see page_dirty()
  std::vector<std::uint64_t> versions_;  // per-page mutation counters
};

}  // namespace gemfi::mem
