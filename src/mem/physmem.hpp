// Flat, byte-addressable physical memory with checked accesses.
//
// Functional data lives here; the caches in cache.hpp model timing only
// (a common and exactly-reproducible split also used by gem5's "classic"
// memory system in atomic mode). All multi-byte accesses are little-endian.
//
// Every guest access is bounds- and alignment-checked: fault injection
// produces wild addresses by design, and the simulator must convert them
// into clean guest crashes (the paper's "Crashed" outcome class), never into
// host UB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytesio.hpp"

namespace gemfi::mem {

enum class AccessError : std::uint8_t {
  None = 0,
  OutOfBounds,   // beyond physical memory
  Misaligned,    // natural alignment violated
  NullPage,      // access inside the unmapped guard page at address 0
  ReadOnly,      // store into the code segment
};

const char* access_error_name(AccessError e) noexcept;

class PhysMem {
 public:
  explicit PhysMem(std::uint64_t size_bytes) : bytes_(size_bytes, 0) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return bytes_.size(); }

  /// Raw unchecked view for loaders and checkpointing.
  [[nodiscard]] std::span<const std::uint8_t> raw() const noexcept { return bytes_; }
  [[nodiscard]] std::span<std::uint8_t> raw() noexcept { return bytes_; }

  [[nodiscard]] bool in_bounds(std::uint64_t addr, std::uint64_t n) const noexcept {
    return addr <= bytes_.size() && n <= bytes_.size() - addr;
  }

  // Checked typed accessors. On error the out-parameter is untouched and the
  // error is returned; the CPU turns it into a trap.
  AccessError load(std::uint64_t addr, unsigned n, std::uint64_t& out) const noexcept;
  AccessError store(std::uint64_t addr, unsigned n, std::uint64_t value) noexcept;

  /// Bulk copy used by program loading; caller guarantees bounds.
  void write_block(std::uint64_t addr, std::span<const std::uint8_t> data);
  void read_block(std::uint64_t addr, std::span<std::uint8_t> out) const;

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace gemfi::mem
