#include "mem/cache.hpp"

#include <bit>
#include <stdexcept>

namespace gemfi::mem {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

CacheGeometry CacheGeometry::from_config(const CacheConfig& cfg) {
  if (!is_pow2(cfg.line_bytes) || cfg.ways == 0 || cfg.size_bytes == 0 ||
      cfg.size_bytes % (std::uint64_t(cfg.line_bytes) * cfg.ways) != 0)
    throw std::invalid_argument("invalid cache geometry");
  CacheGeometry g;
  g.num_sets = cfg.size_bytes / (std::uint64_t(cfg.line_bytes) * cfg.ways);
  if (!is_pow2(g.num_sets))
    throw std::invalid_argument("cache sets must be a power of two");
  g.line_bytes = cfg.line_bytes;
  g.set_shift = unsigned(std::countr_zero(g.num_sets));
  return g;
}

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg), geom_(CacheGeometry::from_config(cfg)) {
  lines_.resize(std::size_t(geom_.num_sets) * cfg.ways);
  mru_.assign(std::size_t(geom_.num_sets), 0);
}

Cache::AccessResult Cache::access_scan(std::uint64_t addr, bool is_write) {
  const std::uint64_t set = geom_.set_of(addr);
  const std::uint64_t tag = geom_.tag_of(addr);
  Line* base = &lines_[std::size_t(set) * cfg_.ways];

  Line* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++use_clock_;
      line.dirty = line.dirty || is_write;
      ++stats_.hits;
      mru_[set] = w;
      return {.hit = true, .writeback = false};
    }
    if (!line.valid) {
      victim = &line;  // prefer an invalid way
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }

  ++stats_.misses;
  const bool writeback = victim->valid && victim->dirty;
  if (writeback) ++stats_.writebacks;
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->lru = ++use_clock_;
  mru_[set] = std::uint32_t(victim - base);
  return {.hit = false, .writeback = writeback};
}

bool Cache::probe(std::uint64_t addr) const noexcept {
  const std::uint64_t set = geom_.set_of(addr);
  const std::uint64_t tag = geom_.tag_of(addr);
  const Line* base = &lines_[std::size_t(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::flush() {
  for (Line& line : lines_) {
    if (line.valid && line.dirty) ++stats_.writebacks;
    line = {};
  }
  mru_.assign(mru_.size(), 0);
}

void Cache::rebuild_mru() noexcept {
  for (std::uint64_t set = 0; set < geom_.num_sets; ++set) {
    const Line* base = &lines_[std::size_t(set) * cfg_.ways];
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < cfg_.ways; ++w)
      if (base[w].valid && (!base[best].valid || base[w].lru > base[best].lru)) best = w;
    mru_[set] = best;
  }
}

void Cache::serialize(util::ByteWriter& w) const {
  w.put_u64(use_clock_);
  w.put_u64(lines_.size());
  for (const Line& line : lines_) {
    w.put_u64(line.tag);
    w.put_bool(line.valid);
    w.put_bool(line.dirty);
    w.put_u64(line.lru);
  }
  w.put_u64(stats_.hits);
  w.put_u64(stats_.misses);
  w.put_u64(stats_.writebacks);
}

void Cache::deserialize(util::ByteReader& r) {
  use_clock_ = r.get_u64();
  const std::uint64_t n = r.get_u64();
  if (n != lines_.size()) throw util::DeserializeError("cache geometry mismatch");
  for (Line& line : lines_) {
    line.tag = r.get_u64();
    line.valid = r.get_bool();
    line.dirty = r.get_bool();
    line.lru = r.get_u64();
  }
  stats_.hits = r.get_u64();
  stats_.misses = r.get_u64();
  stats_.writebacks = r.get_u64();
  rebuild_mru();
}

}  // namespace gemfi::mem
