#include "mem/memsys.hpp"

#include <bit>

namespace gemfi::mem {

MemSystem::MemSystem(const MemSysConfig& cfg)
    : cfg_(cfg), phys_(cfg.phys_bytes), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2) {
  fetch_line_shift_ = unsigned(std::countr_zero(std::uint64_t(cfg.l1i.line_bytes)));
}

void MemSystem::set_fastpath_enabled(bool enabled) noexcept {
  fastpath_enabled_ = enabled;
  fetch_line_ = ~0ull;
  l1i_.set_mru_enabled(enabled);
  l1d_.set_mru_enabled(enabled);
  l2_.set_mru_enabled(enabled);
}

AccessError MemSystem::check(std::uint64_t addr, unsigned n, bool is_store) const noexcept {
  if (addr < cfg_.null_guard) return AccessError::NullPage;
  if (!phys_.in_bounds(addr, n)) return AccessError::OutOfBounds;
  if (n != 1 && (addr & (n - 1)) != 0) return AccessError::Misaligned;
  if (is_store && addr >= code_base_ && addr < code_end_) return AccessError::ReadOnly;
  return AccessError::None;
}

AccessError MemSystem::read(std::uint64_t addr, unsigned n, std::uint64_t& out) const noexcept {
  if (const AccessError e = check(addr, n, false); e != AccessError::None) return e;
  return phys_.load(addr, n, out);
}

AccessError MemSystem::write(std::uint64_t addr, unsigned n, std::uint64_t value) noexcept {
  if (const AccessError e = check(addr, n, true); e != AccessError::None) return e;
  return phys_.store(addr, n, value);
}

AccessError MemSystem::fetch(std::uint64_t addr, std::uint32_t& word) const noexcept {
  if (addr < cfg_.null_guard) return AccessError::NullPage;
  std::uint64_t v = 0;
  const AccessError e = phys_.load(addr, 4, v);
  if (e != AccessError::None) return e;
  word = std::uint32_t(v);
  return AccessError::None;
}

const isa::Decoded* MemSystem::predecode_fill(std::uint64_t pc, std::uint64_t page,
                                              std::uint64_t version) {
  return pdc_.fill(pc, version, phys_.page(page));
}

const isa::Superblock* MemSystem::superblock(std::uint64_t pc) {
  // Same gate as predecode(): anything fetch() would reject belongs to the
  // interpreter slow path, which owns the precise AccessError.
  if (!predecode_enabled_) return nullptr;
  if ((pc & 3) != 0 || pc < cfg_.null_guard || !phys_.in_bounds(pc, 4)) return nullptr;

  if (isa::Superblock* sb = sbc_.find(pc)) {
    bool fresh = true;
    for (unsigned i = 0; i < sb->npages; ++i)
      if (phys_.page_version(sb->pages[i]) != sb->versions[i]) {
        fresh = false;
        break;
      }
    if (fresh) {
      sbc_.note_hit();
      return sb;
    }
    sbc_.note_stale();  // fall through: rebuild replaces the stale entry
  }

  isa::Superblock nsb;
  nsb.entry_pc = pc;
  std::uint64_t p = pc;
  while (nsb.ops.size() < isa::SuperblockCache::kMaxOps) {
    if (!phys_.in_bounds(p, 4)) break;
    const std::uint64_t page = p >> PhysMem::kPageShift;
    if (!nsb.covers_page(page)) {
      if (nsb.npages == 2) break;  // traces span at most two guard pages
      // Stamp the guard before reading the page so a mutation racing the
      // build can only make the trace look stale, never fresh.
      nsb.pages[nsb.npages] = page;
      nsb.versions[nsb.npages] = phys_.page_version(page);
      ++nsb.npages;
    }
    const isa::Decoded* d = predecode(p);
    if (d == nullptr) break;
    isa::SbOp op;
    const isa::Lowered l = isa::lower_to_sbop(*d, op);
    if (l == isa::Lowered::No) break;
    nsb.ops.push_back(op);
    if (l == isa::Lowered::Terminal) break;
    p += 4;
  }
  // Empty ops => cached negative entry: the guard on pc's page keeps us from
  // re-walking an untraceable entry every dispatch, and any store into the
  // page invalidates the negative result along with everything else.
  return &sbc_.insert(std::move(nsb));
}

std::uint32_t MemSystem::fetch_latency_fill(std::uint64_t addr, std::uint64_t line) {
  fetch_line_ = fastpath_enabled_ ? line : ~0ull;
  std::uint32_t cycles = cfg_.l1i.hit_latency;
  if (!l1i_.access(addr, false).hit) {
    cycles += cfg_.l2.hit_latency;
    if (!l2_.access(addr, false).hit) cycles += cfg_.dram_latency;
  }
  return cycles;
}

std::uint32_t MemSystem::data_latency_miss(std::uint64_t addr, bool is_write) {
  std::uint32_t cycles = cfg_.l1d.hit_latency + cfg_.l2.hit_latency;
  if (!l2_.access(addr, is_write).hit) cycles += cfg_.dram_latency;
  return cycles;
}

void MemSystem::reset_stats() noexcept {
  l1i_.reset_stats();
  l1d_.reset_stats();
  l2_.reset_stats();
  pdc_.reset_stats();
  sbc_.reset_stats();
}

void MemSystem::serialize(util::ByteWriter& w) const {
  phys_.serialize(w);
  serialize_timing(w);
}

void MemSystem::deserialize(util::ByteReader& r) {
  phys_.deserialize(r);
  deserialize_timing(r);
  // The predecode and superblock caches are deliberately not serialized:
  // drop them wholesale (the version bumps from phys_.deserialize already
  // make every cached page and trace unservable).
  pdc_.invalidate_all();
  sbc_.invalidate_all();
}

void MemSystem::serialize_timing(util::ByteWriter& w) const {
  l1i_.serialize(w);
  l1d_.serialize(w);
  l2_.serialize(w);
  w.put_u64(code_base_);
  w.put_u64(code_end_);
}

void MemSystem::deserialize_timing(util::ByteReader& r) {
  fetch_line_ = ~0ull;  // the restored L1I need not hold the buffered line
  l1i_.deserialize(r);
  l1d_.deserialize(r);
  l2_.deserialize(r);
  code_base_ = r.get_u64();
  code_end_ = r.get_u64();
}

}  // namespace gemfi::mem
