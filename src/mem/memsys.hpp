// The simulated machine's memory system: guest address-space policy +
// PhysMem functional storage + L1I/L1D/L2 timing hierarchy.
//
// Address-space layout (set up by the program loader):
//   [0, null_guard)            unmapped guard page  -> NullPage fault
//   [code_base, code_end)      code, read/execute   -> ReadOnly on store
//   [code_end, phys size)      data / heap / stack  -> read/write
//
// Timing: every instruction fetch probes L1I (then L2, then DRAM); every data
// access probes L1D likewise. Atomic CPUs ignore the returned latencies but
// still exercise the functional checks, matching gem5's atomic mode.
#pragma once

#include <cstdint>
#include <memory>

#include "isa/predecode_cache.hpp"
#include "isa/superblock_cache.hpp"
#include "mem/cache.hpp"
#include "mem/physmem.hpp"

namespace gemfi::mem {

struct MemSysConfig {
  std::uint64_t phys_bytes = 4ull * 1024 * 1024;
  std::uint64_t null_guard = 0x1000;
  CacheConfig l1i{.size_bytes = 16 * 1024, .line_bytes = 64, .ways = 2, .hit_latency = 1, .name = "l1i"};
  CacheConfig l1d{.size_bytes = 16 * 1024, .line_bytes = 64, .ways = 2, .hit_latency = 2, .name = "l1d"};
  CacheConfig l2{.size_bytes = 256 * 1024, .line_bytes = 64, .ways = 8, .hit_latency = 10, .name = "l2"};
  std::uint32_t dram_latency = 60;  // cycles
};

class MemSystem {
 public:
  explicit MemSystem(const MemSysConfig& cfg = {});

  PhysMem& phys() noexcept { return phys_; }
  const PhysMem& phys() const noexcept { return phys_; }
  const MemSysConfig& config() const noexcept { return cfg_; }

  /// Mark the executable image region (stores there fault as ReadOnly).
  void set_code_region(std::uint64_t base, std::uint64_t end) noexcept {
    code_base_ = base;
    code_end_ = end;
  }
  [[nodiscard]] std::uint64_t code_base() const noexcept { return code_base_; }
  [[nodiscard]] std::uint64_t code_end() const noexcept { return code_end_; }

  /// Address-space policy check shared by all access paths.
  [[nodiscard]] AccessError check(std::uint64_t addr, unsigned n, bool is_store) const noexcept;

  // --- Functional accesses (policy-checked) ---
  AccessError read(std::uint64_t addr, unsigned n, std::uint64_t& out) const noexcept;
  AccessError write(std::uint64_t addr, unsigned n, std::uint64_t value) noexcept;
  /// Instruction fetch (32-bit), checked against bounds and alignment only.
  AccessError fetch(std::uint64_t addr, std::uint32_t& word) const noexcept;

  // --- Timing (cycles) for the timing/pipelined CPU models ---
  /// Both are header-inline: the L1-hit cases resolve via the caches' MRU
  /// fast path, and fetch_latency additionally short-circuits sequential
  /// fetches within the current I-line through a one-entry line buffer
  /// (fetch_line_). Latencies and cache stats are identical to the layered
  /// miss path, which handles everything else out of line.
  std::uint32_t fetch_latency(std::uint64_t addr);
  std::uint32_t data_latency(std::uint64_t addr, bool is_write);
  /// Miss/disabled tail of fetch_latency (also re-arms the line buffer).
  std::uint32_t fetch_latency_fill(std::uint64_t addr, std::uint64_t line);
  /// L1D-miss tail of data_latency.
  std::uint32_t data_latency_miss(std::uint64_t addr, bool is_write);

  /// Gate for the timing fast lane's memory-side pieces (MRU hit paths in
  /// all three caches + the fetch line buffer). Off = `--no-fastpath`
  /// baseline; simulated timing and stats are identical either way.
  void set_fastpath_enabled(bool enabled) noexcept;

  // --- predecoded-instruction fast path ---
  /// Cached Decoded for the instruction word at `pc`, filling pc's page on
  /// demand. Returns nullptr when the fast path does not apply — predecode
  /// disabled, pc misaligned, in the null guard, or out of bounds — and the
  /// caller must fall back to fetch() + isa::decode() (which reproduces the
  /// precise AccessError). Entries reflect the word currently in memory:
  /// stores and checkpoint restores bump the backing page's version, so the
  /// next fetch refills. Fetch-stage fault corruption happens downstream of
  /// memory; CPU models bypass the entry when the hook changes the word.
  /// Defined inline below (the atomic fast dispatch loop calls this once
  /// per instruction).
  [[nodiscard]] const isa::Decoded* predecode(std::uint64_t pc) noexcept;
  /// Out-of-line page decode behind predecode()'s miss path.
  const isa::Decoded* predecode_fill(std::uint64_t pc, std::uint64_t page,
                                     std::uint64_t version);
  void set_predecode_enabled(bool enabled) noexcept { predecode_enabled_ = enabled; }
  [[nodiscard]] bool predecode_enabled() const noexcept { return predecode_enabled_; }
  [[nodiscard]] const isa::PredecodeStats& predecode_stats() const noexcept {
    return pdc_.stats();
  }
  /// Count a fetch that had to re-decode live because fault injection
  /// corrupted the word between memory and decode.
  void note_predecode_bypass() noexcept { pdc_.note_bypass(); }
  /// Drop all predecoded pages (checkpoint-restore hygiene; versions already
  /// guarantee staleness is never served).
  void invalidate_predecode() noexcept {
    pdc_.invalidate_all();
    sbc_.invalidate_all();
  }

  // --- superblock (threaded-code) tier ---
  /// Version-fresh lowered trace entered at `pc`, building (or rebuilding)
  /// it on demand from predecoded instructions. Returns nullptr when the
  /// tier does not apply at all (predecode disabled, pc misaligned, in the
  /// null guard, or out of bounds); returns a trace with empty ops — a
  /// cached negative entry — when pc's instruction itself cannot be lowered.
  /// Either way the caller falls back to the interpreter for that pc.
  [[nodiscard]] const isa::Superblock* superblock(std::uint64_t pc);
  void note_superblock_exec(std::uint64_t insts) noexcept { sbc_.note_exec(insts); }
  [[nodiscard]] const isa::SuperblockStats& superblock_stats() const noexcept {
    return sbc_.stats();
  }
  [[nodiscard]] std::size_t superblock_traces() const noexcept {
    return sbc_.cached_traces();
  }

  [[nodiscard]] const CacheStats& l1i_stats() const noexcept { return l1i_.stats(); }
  [[nodiscard]] const CacheStats& l1d_stats() const noexcept { return l1d_.stats(); }
  [[nodiscard]] const CacheStats& l2_stats() const noexcept { return l2_.stats(); }
  void reset_stats() noexcept;

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

  /// Timing + policy state only (caches and the code-region bounds), without
  /// the physical-memory image. The v2 checkpoint path serializes memory
  /// page-granular on its own and stores this beside it.
  void serialize_timing(util::ByteWriter& w) const;
  void deserialize_timing(util::ByteReader& r);

 private:
  MemSysConfig cfg_;
  PhysMem phys_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  isa::PredecodeCache pdc_;
  isa::SuperblockCache sbc_;
  bool predecode_enabled_ = true;
  bool fastpath_enabled_ = true;
  // One-entry fetch line buffer: the I-line (addr / l1i.line_bytes) of the
  // most recent fetch. While fetches stay in this line, the L1I lookup is a
  // single compare plus an MRU touch. ~0 = empty; invalidated on
  // deserialize_timing and while the fast path is disabled.
  std::uint64_t fetch_line_ = ~0ull;
  unsigned fetch_line_shift_ = 6;  // log2(l1i.line_bytes), set by the ctor
  std::uint64_t code_base_ = 0;
  std::uint64_t code_end_ = 0;
};

inline const isa::Decoded* MemSystem::predecode(std::uint64_t pc) noexcept {
  static_assert(isa::PredecodeCache::kPageShift == PhysMem::kPageShift,
                "predecode pages must match PhysMem's version granularity");
  if (!predecode_enabled_) return nullptr;
  // Bail to the slow path for anything fetch() would reject; the slow path
  // owns the exact AccessError the trap carries.
  if ((pc & 3) != 0 || pc < cfg_.null_guard || !phys_.in_bounds(pc, 4)) return nullptr;
  const std::uint64_t page = pc >> PhysMem::kPageShift;
  const std::uint64_t version = phys_.page_version(page);
  if (const isa::Decoded* d = pdc_.lookup(pc, version)) return d;
  return predecode_fill(pc, page, version);
}

inline std::uint32_t MemSystem::fetch_latency(std::uint64_t addr) {
  const std::uint64_t line = addr >> fetch_line_shift_;
  if (line == fetch_line_ && l1i_.touch_read(addr)) return cfg_.l1i.hit_latency;
  return fetch_latency_fill(addr, line);
}

inline std::uint32_t MemSystem::data_latency(std::uint64_t addr, bool is_write) {
  const auto l1 = l1d_.access(addr, is_write);
  if (l1.hit) return cfg_.l1d.hit_latency;
  return data_latency_miss(addr, is_write);
}

}  // namespace gemfi::mem
