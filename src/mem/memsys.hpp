// The simulated machine's memory system: guest address-space policy +
// PhysMem functional storage + L1I/L1D/L2 timing hierarchy.
//
// Address-space layout (set up by the program loader):
//   [0, null_guard)            unmapped guard page  -> NullPage fault
//   [code_base, code_end)      code, read/execute   -> ReadOnly on store
//   [code_end, phys size)      data / heap / stack  -> read/write
//
// Timing: every instruction fetch probes L1I (then L2, then DRAM); every data
// access probes L1D likewise. Atomic CPUs ignore the returned latencies but
// still exercise the functional checks, matching gem5's atomic mode.
#pragma once

#include <cstdint>
#include <memory>

#include "mem/cache.hpp"
#include "mem/physmem.hpp"

namespace gemfi::mem {

struct MemSysConfig {
  std::uint64_t phys_bytes = 4ull * 1024 * 1024;
  std::uint64_t null_guard = 0x1000;
  CacheConfig l1i{.size_bytes = 16 * 1024, .line_bytes = 64, .ways = 2, .hit_latency = 1, .name = "l1i"};
  CacheConfig l1d{.size_bytes = 16 * 1024, .line_bytes = 64, .ways = 2, .hit_latency = 2, .name = "l1d"};
  CacheConfig l2{.size_bytes = 256 * 1024, .line_bytes = 64, .ways = 8, .hit_latency = 10, .name = "l2"};
  std::uint32_t dram_latency = 60;  // cycles
};

class MemSystem {
 public:
  explicit MemSystem(const MemSysConfig& cfg = {});

  PhysMem& phys() noexcept { return phys_; }
  const PhysMem& phys() const noexcept { return phys_; }
  const MemSysConfig& config() const noexcept { return cfg_; }

  /// Mark the executable image region (stores there fault as ReadOnly).
  void set_code_region(std::uint64_t base, std::uint64_t end) noexcept {
    code_base_ = base;
    code_end_ = end;
  }
  [[nodiscard]] std::uint64_t code_base() const noexcept { return code_base_; }
  [[nodiscard]] std::uint64_t code_end() const noexcept { return code_end_; }

  /// Address-space policy check shared by all access paths.
  [[nodiscard]] AccessError check(std::uint64_t addr, unsigned n, bool is_store) const noexcept;

  // --- Functional accesses (policy-checked) ---
  AccessError read(std::uint64_t addr, unsigned n, std::uint64_t& out) const noexcept;
  AccessError write(std::uint64_t addr, unsigned n, std::uint64_t value) noexcept;
  /// Instruction fetch (32-bit), checked against bounds and alignment only.
  AccessError fetch(std::uint64_t addr, std::uint32_t& word) const noexcept;

  // --- Timing (cycles) for the timing/pipelined CPU models ---
  std::uint32_t fetch_latency(std::uint64_t addr);
  std::uint32_t data_latency(std::uint64_t addr, bool is_write);

  [[nodiscard]] const CacheStats& l1i_stats() const noexcept { return l1i_.stats(); }
  [[nodiscard]] const CacheStats& l1d_stats() const noexcept { return l1d_.stats(); }
  [[nodiscard]] const CacheStats& l2_stats() const noexcept { return l2_.stats(); }
  void reset_stats() noexcept;

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

  /// Timing + policy state only (caches and the code-region bounds), without
  /// the physical-memory image. The v2 checkpoint path serializes memory
  /// page-granular on its own and stores this beside it.
  void serialize_timing(util::ByteWriter& w) const;
  void deserialize_timing(util::ByteReader& r);

 private:
  MemSysConfig cfg_;
  PhysMem phys_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  std::uint64_t code_base_ = 0;
  std::uint64_t code_end_ = 0;
};

}  // namespace gemfi::mem
