// Set-associative write-back, write-allocate cache timing model with true-LRU
// replacement.
//
// The validation platform of the paper (Sec. IV) is a single-core Alpha with
// split L1 I/D caches and a unified L2; this model provides those levels.
// Caches here are *timing-only*: they track which lines are resident and
// dirty and charge latencies, while data always lives in PhysMem. This keeps
// fault injection on memory transactions exact (values are corrupted at the
// CPU/memory boundary, not inside a cache data array we would then have to
// keep coherent).
//
// Hot-path layout: access() is header-inline and resolves the common case —
// a hit in the set's most-recently-used way — with one tag compare, falling
// back to the out-of-line ways-wide scan for non-MRU hits and misses. The
// MRU index is a pure accelerator: every observable (hit/miss/writeback
// counts, LRU ordering, the serialized image) is bit-identical to the scan
// path, which is what the lockstep fast-lane suite asserts. set_mru_enabled
// exists solely for `--no-fastpath` A/B measurement.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytesio.hpp"

namespace gemfi::mem {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
  std::uint32_t hit_latency = 2;  // cycles charged on a hit
  const char* name = "cache";
};

/// Address-mapping math for a set-associative cache, kept separate from the
/// line array so very large set counts (> 2^32) are validated and testable
/// without allocating the array. The set shift is precomputed with
/// std::countr_zero on the full 64-bit set count; the previous
/// __builtin_ctz(num_sets) truncated the operand to unsigned int.
struct CacheGeometry {
  std::uint64_t num_sets = 1;
  std::uint32_t line_bytes = 64;
  unsigned set_shift = 0;  // log2(num_sets)

  /// Validates the geometry (power-of-two lines and sets, nonzero ways,
  /// divisible size); throws std::invalid_argument otherwise.
  static CacheGeometry from_config(const CacheConfig& cfg);

  [[nodiscard]] std::uint64_t line_addr(std::uint64_t addr) const noexcept {
    return addr / line_bytes;
  }
  [[nodiscard]] std::uint64_t set_of(std::uint64_t addr) const noexcept {
    return line_addr(addr) & (num_sets - 1);
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept {
    return line_addr(addr) >> set_shift;
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept { return hits + misses; }
  [[nodiscard]] double miss_rate() const noexcept {
    return accesses() == 0 ? 0.0 : double(misses) / double(accesses());
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  // a dirty victim was evicted
  };

  /// Look up `addr`; on miss, allocate the line (evicting LRU). `is_write`
  /// marks the line dirty. Purely a timing/state operation. Inline MRU hit
  /// path; non-MRU hits and misses take the out-of-line scan.
  AccessResult access(std::uint64_t addr, bool is_write) {
    if (mru_enabled_) {
      const std::uint64_t set = geom_.set_of(addr);
      Line& m = lines_[std::size_t(set) * cfg_.ways + mru_[set]];
      if (m.valid && m.tag == geom_.tag_of(addr)) {
        m.lru = ++use_clock_;
        m.dirty = m.dirty || is_write;
        ++stats_.hits;
        return {.hit = true, .writeback = false};
      }
    }
    return access_scan(addr, is_write);
  }

  /// Caller-hinted read hit: bump and count a hit on the MRU way iff it
  /// still holds `addr`'s line, with no fallback allocation. Returns false
  /// (no state change, nothing counted) otherwise — the caller then goes
  /// through access(). Backs MemSystem's one-entry fetch line buffer.
  bool touch_read(std::uint64_t addr) {
    const std::uint64_t set = geom_.set_of(addr);
    Line& m = lines_[std::size_t(set) * cfg_.ways + mru_[set]];
    if (!m.valid || m.tag != geom_.tag_of(addr)) return false;
    m.lru = ++use_clock_;
    ++stats_.hits;
    return true;
  }

  /// True if the line containing addr is resident (no state change).
  [[nodiscard]] bool probe(std::uint64_t addr) const noexcept;

  /// Drop all lines (counts dirty lines as writebacks).
  void flush();

  /// Disable the inline MRU hit path (`--no-fastpath` A/B baseline): every
  /// access takes the ways-wide scan, reproducing the pre-fast-lane host
  /// cost. Observables are identical either way.
  void set_mru_enabled(bool enabled) noexcept { mru_enabled_ = enabled; }

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // larger == more recently used
  };

  AccessResult access_scan(std::uint64_t addr, bool is_write);
  void rebuild_mru() noexcept;

  CacheConfig cfg_;
  CacheGeometry geom_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  // Per-set index of the most-recently-used way — the way with the largest
  // `lru` among the set's valid lines (0 for an empty set). Derived state:
  // never serialized, rebuilt from the lru fields on deserialize, so the
  // checkpoint format is unchanged and v1 images still load.
  std::vector<std::uint32_t> mru_;
  bool mru_enabled_ = true;
  std::uint64_t use_clock_ = 0;
  CacheStats stats_;
};

}  // namespace gemfi::mem
