#include "mem/physmem.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace gemfi::mem {

const char* access_error_name(AccessError e) noexcept {
  switch (e) {
    case AccessError::None: return "none";
    case AccessError::OutOfBounds: return "out-of-bounds";
    case AccessError::Misaligned: return "misaligned";
    case AccessError::NullPage: return "null-page";
    case AccessError::ReadOnly: return "read-only";
  }
  return "?";
}

AccessError PhysMem::load(std::uint64_t addr, unsigned n, std::uint64_t& out) const noexcept {
  if (!in_bounds(addr, n)) return AccessError::OutOfBounds;
  if (n != 1 && (addr & (n - 1)) != 0) return AccessError::Misaligned;
  std::uint64_t v = 0;
  std::memcpy(&v, bytes_.data() + addr, n);  // little-endian host assumed (tested)
  out = v;
  return AccessError::None;
}

AccessError PhysMem::store(std::uint64_t addr, unsigned n, std::uint64_t value) noexcept {
  if (!in_bounds(addr, n)) return AccessError::OutOfBounds;
  if (n != 1 && (addr & (n - 1)) != 0) return AccessError::Misaligned;
  std::memcpy(bytes_.data() + addr, &value, n);
  mark_dirty(addr, n);  // aligned stores never straddle a page
  return AccessError::None;
}

void PhysMem::write_block(std::uint64_t addr, std::span<const std::uint8_t> data) {
  if (!in_bounds(addr, data.size()))
    throw std::out_of_range("PhysMem::write_block beyond memory");
  if (data.empty()) return;
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
  mark_dirty(addr, data.size());
}

std::uint64_t PhysMem::dirty_page_count() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t w : dirty_) n += std::uint64_t(std::popcount(w));
  return n;
}

void PhysMem::mark_all_dirty() noexcept {
  std::fill(dirty_.begin(), dirty_.end(), ~0ull);
  // Mask off bits beyond the last page so dirty_page_count() stays exact.
  const std::uint64_t used = page_count() & 63;
  if (used != 0 && !dirty_.empty()) dirty_.back() = (1ull << used) - 1;
  bump_all_versions();  // callers use this after raw() writes: all bets off
}

void PhysMem::copy_from(std::span<const std::uint8_t> image) {
  if (image.size() != bytes_.size())
    throw util::DeserializeError("checkpoint memory size mismatch");
  std::memcpy(bytes_.data(), image.data(), image.size());
  clear_dirty();
  bump_all_versions();  // content changed even though the bitmap says clean
}

void PhysMem::read_block(std::uint64_t addr, std::span<std::uint8_t> out) const {
  if (!in_bounds(addr, out.size()))
    throw std::out_of_range("PhysMem::read_block beyond memory");
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void PhysMem::serialize(util::ByteWriter& w) const { w.put_blob(bytes_); }

void PhysMem::deserialize(util::ByteReader& r) {
  auto blob = r.get_blob();
  if (blob.size() != bytes_.size())
    throw util::DeserializeError("checkpoint memory size mismatch");
  bytes_ = std::move(blob);
  // The whole image changed relative to whatever baseline the caller tracked;
  // only copy_from() (a full baseline write) may clear the bitmap.
  mark_all_dirty();
}

}  // namespace gemfi::mem
