#include "mem/physmem.hpp"

#include <cstring>
#include <stdexcept>

namespace gemfi::mem {

const char* access_error_name(AccessError e) noexcept {
  switch (e) {
    case AccessError::None: return "none";
    case AccessError::OutOfBounds: return "out-of-bounds";
    case AccessError::Misaligned: return "misaligned";
    case AccessError::NullPage: return "null-page";
    case AccessError::ReadOnly: return "read-only";
  }
  return "?";
}

AccessError PhysMem::load(std::uint64_t addr, unsigned n, std::uint64_t& out) const noexcept {
  if (!in_bounds(addr, n)) return AccessError::OutOfBounds;
  if (n != 1 && (addr & (n - 1)) != 0) return AccessError::Misaligned;
  std::uint64_t v = 0;
  std::memcpy(&v, bytes_.data() + addr, n);  // little-endian host assumed (tested)
  out = v;
  return AccessError::None;
}

AccessError PhysMem::store(std::uint64_t addr, unsigned n, std::uint64_t value) noexcept {
  if (!in_bounds(addr, n)) return AccessError::OutOfBounds;
  if (n != 1 && (addr & (n - 1)) != 0) return AccessError::Misaligned;
  std::memcpy(bytes_.data() + addr, &value, n);
  return AccessError::None;
}

void PhysMem::write_block(std::uint64_t addr, std::span<const std::uint8_t> data) {
  if (!in_bounds(addr, data.size()))
    throw std::out_of_range("PhysMem::write_block beyond memory");
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

void PhysMem::read_block(std::uint64_t addr, std::span<std::uint8_t> out) const {
  if (!in_bounds(addr, out.size()))
    throw std::out_of_range("PhysMem::read_block beyond memory");
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void PhysMem::serialize(util::ByteWriter& w) const { w.put_blob(bytes_); }

void PhysMem::deserialize(util::ByteReader& r) {
  auto blob = r.get_blob();
  if (blob.size() != bytes_.size())
    throw util::DeserializeError("checkpoint memory size mismatch");
  bytes_ = std::move(blob);
}

}  // namespace gemfi::mem
