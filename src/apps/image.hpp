// Host-side image / output-parsing utilities shared by the DCT and
// Deblocking quality metrics (the paper's PSNR criteria, Sec. IV-B-1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gemfi::apps {

/// Peak signal-to-noise ratio between two equally sized 8-bit images, in dB.
/// Identical images yield +infinity.
double psnr(const std::vector<int>& a, const std::vector<int>& b);

/// Parse a whitespace/newline-separated list of decimal integers; returns
/// nullopt on any non-numeric token (corrupted output).
std::optional<std::vector<int>> parse_int_list(const std::string& text);

/// Parse doubles printed with %.17g, one per line after a "name=" prefix is
/// stripped; tolerant of the exact format our guests emit.
std::optional<std::vector<double>> parse_double_list(const std::string& text);

/// Generate a deterministic pseudo-random 8-bit image with the shared guest
/// LCG (the host twin of the guests' init loops).
std::vector<int> generate_image(unsigned width, unsigned height, std::uint64_t seed);

}  // namespace gemfi::apps
