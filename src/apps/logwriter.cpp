// Log-structured record writer: the syscall-fault taxonomy workload.
//
// The app is built around the OS surface (Sysno table) rather than around
// arithmetic: it appends fixed-size checksummed records to a capacity-bounded
// in-memory file through sys_write, re-opens and scans the log back through
// sys_read validating each record, and round-trips a summary through a
// message channel (sys_send/sys_recv). Every syscall result is checked and
// has a recovery policy:
//   * a short or failed record write is retried up to twice, then the record
//     is dropped (and counted) — the error-masking path that turns a single
//     injected errno into "masked-by-handler";
//   * an injected partial write leaves torn bytes in the log, so the tail
//     records no longer fit: their writes fail naturally (short write, then
//     ENOSPC on the retries) — the failure chain the campaign classifier
//     measures as cascade(N);
//   * the read-back scan treats anything that fails its checksum as data
//     loss, not as a crash, and reports honest degradation counts.
//
// Output (one counter per line, fixed order):
//   written=W dropped=D valid=V sum=S echo=E
// Acceptability: well-formed output with written+dropped == R and echo==sum
// (the app never lies about what it persisted); metric = fraction of records
// lost. Fault-free runs are bit-exact against the host twin.
#include "apps/app.hpp"

#include <cstdio>
#include <string>

namespace gemfi::apps {

namespace {

constexpr std::uint64_t kMagic = 0x4c4f475245437631ull;  // "LOGRECv1"
constexpr unsigned kRecordBytes = 32;  // magic, seq, payload, xor-checksum

struct LogwriterParams {
  unsigned records = 0;
  std::uint64_t seed = 0;
};

/// Host twin of the fault-free guest: every write lands in full (callers
/// must give the simulation a file capacity >= records * 32 bytes), every
/// record validates on read-back and the channel echoes the sum.
std::string golden_logwriter(const LogwriterParams& p) {
  std::uint64_t state = p.seed;
  std::uint64_t sum = 0;
  for (unsigned i = 0; i < p.records; ++i) sum += lcg_next(state);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "written=%u\ndropped=0\nvalid=%u\nsum=%lld\necho=%lld\n",
                p.records, p.records, static_cast<long long>(sum),
                static_cast<long long>(sum));
  return buf;
}

/// Parse "key=<int>\n" lines in the fixed output order; false on any
/// malformation (missing line, junk, wrong order).
bool parse_counters(const std::string& out, long long v[5]) {
  static const char* keys[5] = {"written=", "dropped=", "valid=", "sum=", "echo="};
  std::size_t pos = 0;
  for (int i = 0; i < 5; ++i) {
    const std::string key = keys[i];
    if (out.compare(pos, key.size(), key) != 0) return false;
    pos += key.size();
    const std::size_t nl = out.find('\n', pos);
    if (nl == std::string::npos || nl == pos) return false;
    try {
      std::size_t used = 0;
      v[i] = std::stoll(out.substr(pos, nl - pos), &used);
      if (used != nl - pos) return false;
    } catch (...) {
      return false;
    }
    pos = nl + 1;
  }
  return pos == out.size();
}

}  // namespace

App build_logwriter(const AppScale& scale) {
  using namespace assembler;
  LogwriterParams p;
  p.records = scale.paper ? 200 : 48;
  p.seed = scale.seed ^ 0x10f;

  Assembler as;
  const Label entry = as.here("main");
  emit_boot(as);

  const Label sys_fail = as.make_label("sys_fail");
  const auto sys = [&](std::uint64_t no) {
    as.li(reg::v0, std::int64_t(no));
    as.syscall_();
  };

  // ---------------- init phase (pre-checkpoint) ----------------
  sys(10);  // sys_version
  as.li(reg::t0, 1);
  as.cmpeq(reg::v0, reg::t0, reg::t0);
  as.beq(reg::t0, sys_fail);

  as.li(reg::a0, kRecordBytes);
  sys(1);  // sys_alloc: record staging buffer
  as.blt(reg::v0, sys_fail);
  as.mov(reg::v0, reg::s2);

  as.li(reg::a0, 0);  // file id 0
  as.li(reg::a1, 1 | 2 | 4);  // write|create|trunc
  sys(3);  // sys_open
  as.blt(reg::v0, sys_fail);
  as.mov(reg::v0, reg::s0);  // fd

  as.fi_read_init();  // checkpoint boundary
  as.mov_i(0, reg::a0);
  as.fi_activate();

  // ---------------- kernel: append phase ----------------
  // s0=fd s1=LCG state s2=&record s3=written s4=dropped s5=seq t10=attempts
  as.li_u(reg::s1, p.seed);
  as.li(reg::s3, 0);
  as.li(reg::s4, 0);
  as.li(reg::s5, 0);
  const Label rec_loop = as.here("rec");
  {
    emit_lcg_step(as, reg::s1, reg::t0);  // payload = next LCG value
    as.li_u(reg::t0, kMagic);
    as.stq(reg::t0, 0, reg::s2);
    as.stq(reg::s5, 8, reg::s2);
    as.stq(reg::s1, 16, reg::s2);
    as.xor_(reg::t0, reg::s5, reg::t1);  // checksum = magic ^ seq ^ payload
    as.xor_(reg::t1, reg::s1, reg::t1);
    as.stq(reg::t1, 24, reg::s2);

    as.li(reg::t10, 0);  // attempts
    const Label wr = as.here("wr");
    as.mov(reg::s0, reg::a0);
    as.mov(reg::s2, reg::a1);
    as.li(reg::a2, kRecordBytes);
    sys(5);  // sys_write
    const Label wr_ok = as.make_label("wr_ok");
    const Label rec_next = as.make_label("rec_next");
    as.cmpeq_i(reg::v0, kRecordBytes, reg::t0);
    as.bne(reg::t0, wr_ok);
    // Short write or error: retry the whole record up to twice, then drop.
    as.addq_i(reg::t10, 1, reg::t10);
    as.cmplt_i(reg::t10, 3, reg::t0);
    as.bne(reg::t0, wr);
    as.addq_i(reg::s4, 1, reg::s4);  // dropped
    as.br(rec_next);
    as.bind(wr_ok);
    as.addq_i(reg::s3, 1, reg::s3);  // written
    as.bind(rec_next);
    as.addq_i(reg::s5, 1, reg::s5);
    as.li(reg::t0, std::int64_t(p.records));
    as.cmplt(reg::s5, reg::t0, reg::t0);
    as.bne(reg::t0, rec_loop);
  }
  as.mov(reg::s0, reg::a0);
  sys(6);  // sys_close (result deliberately ignored: nothing left to undo)

  // ---------------- kernel: read-back scan ----------------
  // Re-open read-only and scan quadword by quadword for record headers; a
  // record counts as valid only if its checksum matches. Torn bytes from a
  // partial write simply fail the scan at that point — data loss, not UB.
  as.li(reg::a0, 0);
  as.li(reg::a1, 0);
  sys(3);  // sys_open (read)
  as.blt(reg::v0, sys_fail);
  as.mov(reg::v0, reg::s0);

  as.li(reg::s1, 0);   // valid records
  as.li(reg::fp, 0);   // payload sum
  as.li(reg::t9, 0);   // read retries
  const Label rd = as.here("rd");
  const Label rd_done = as.make_label("rd_done");
  {
    as.mov(reg::s0, reg::a0);
    as.mov(reg::s2, reg::a1);
    as.li(reg::a2, 8);
    sys(4);  // sys_read: next header quadword
    const Label got = as.make_label("got");
    as.cmpeq_i(reg::v0, 8, reg::t0);
    as.bne(reg::t0, got);
    as.bge(reg::v0, rd_done);  // 0..7 bytes: end of log / torn tail
    as.addq_i(reg::t9, 1, reg::t9);  // negative: transient error, retry
    as.cmplt_i(reg::t9, 3, reg::t0);
    as.bne(reg::t0, rd);
    as.br(rd_done);
    as.bind(got);
    as.li(reg::t9, 0);
    as.ldq(reg::t0, 0, reg::s2);
    as.li_u(reg::t1, kMagic);
    as.cmpeq(reg::t0, reg::t1, reg::t0);
    as.beq(reg::t0, rd);  // not a record header: keep scanning
    // Header found: pull the remaining three quadwords in one read.
    as.mov(reg::s0, reg::a0);
    as.lda(reg::a1, 8, reg::s2);  // a1 = &buf[8]
    as.li(reg::a2, 24);
    sys(4);
    as.cmpeq_i(reg::v0, 24, reg::t0);
    as.beq(reg::t0, rd_done);  // truncated record at end of log
    as.ldq(reg::t3, 8, reg::s2);   // seq
    as.ldq(reg::t4, 16, reg::s2);  // payload
    as.ldq(reg::t5, 24, reg::s2);  // stored checksum
    as.li_u(reg::t1, kMagic);
    as.xor_(reg::t1, reg::t3, reg::t6);
    as.xor_(reg::t6, reg::t4, reg::t6);
    as.cmpeq(reg::t6, reg::t5, reg::t0);
    as.beq(reg::t0, rd);  // checksum mismatch: corrupted record, skip
    as.addq_i(reg::s1, 1, reg::s1);
    as.addq(reg::fp, reg::t4, reg::fp);
    as.br(rd);
  }
  as.bind(rd_done);
  as.mov(reg::s0, reg::a0);
  sys(6);  // sys_close

  // ---------------- kernel: channel round-trip ----------------
  // Send the payload sum through channel 0 and receive it back; EAGAIN is
  // retried a bounded number of times, any terminal failure reports -1.
  as.stq(reg::fp, 0, reg::s2);
  as.li(reg::s5, -1);  // echo value (stays -1 on terminal failure)
  as.li(reg::t10, 0);
  const Label snd = as.here("snd");
  const Label echo_done = as.make_label("echo_done");
  {
    as.li(reg::a0, 0);
    as.mov(reg::s2, reg::a1);
    as.li(reg::a2, 8);
    sys(7);  // sys_send
    const Label snd_ok = as.make_label("snd_ok");
    as.bge(reg::v0, snd_ok);
    as.addq_i(reg::t10, 1, reg::t10);
    as.cmplt_i(reg::t10, 3, reg::t0);
    as.bne(reg::t0, snd);
    as.br(echo_done);
    as.bind(snd_ok);
    as.li(reg::t10, 0);
    const Label rcv = as.here("rcv");
    as.li(reg::a0, 0);
    as.mov(reg::s2, reg::a1);
    as.li(reg::a2, 8);
    sys(8);  // sys_recv
    const Label rcv_ok = as.make_label("rcv_ok");
    as.bge(reg::v0, rcv_ok);
    as.addq_i(reg::t10, 1, reg::t10);
    as.cmplt_i(reg::t10, 3, reg::t0);
    as.bne(reg::t0, rcv);
    as.br(echo_done);
    as.bind(rcv_ok);
    as.ldq(reg::s5, 0, reg::s2);  // echoed sum
  }
  as.bind(echo_done);

  as.mov_i(0, reg::a0);
  as.fi_activate();  // FI off

  // ---------------- output ----------------
  const auto line = [&](const char* key, unsigned r) {
    as.print_str(key);
    as.print_int_r(r);
    emit_newline(as);
  };
  line("written=", reg::s3);
  line("dropped=", reg::s4);
  line("valid=", reg::s1);
  line("sum=", reg::fp);
  line("echo=", reg::s5);
  as.mov_i(0, reg::a0);
  as.exit_();

  as.bind(sys_fail);
  as.print_str("E:sys\n");
  as.mov_i(1, reg::a0);
  as.exit_();

  App app;
  app.name = "logwriter";
  app.program = as.finalize(entry);
  app.golden_output = golden_logwriter(p);

  const unsigned records = p.records;
  // Correct: the app may lose records under faults, but it must terminate
  // with a well-formed, internally consistent report — every record either
  // written or accounted as dropped, read-back no better than what was
  // written, and the channel echo matching the sum it sent. The metric is
  // the fraction of records lost.
  app.acceptable = [records](const std::string& out, double& metric) {
    long long v[5];
    if (!parse_counters(out, v)) return false;
    const long long written = v[0], dropped = v[1], valid = v[2], sum = v[3],
                    echo = v[4];
    if (written < 0 || dropped < 0 || valid < 0) return false;
    if (written + dropped != static_cast<long long>(records)) return false;
    if (valid > written) return false;
    if (echo != sum) return false;
    metric = 1.0 - double(valid) / double(records);
    return true;
  };
  return app;
}

}  // namespace gemfi::apps
