// DCT: the JPEG-style 8x8 block transform kernel (forward DCT, quantization,
// dequantization, inverse DCT) applied to a grayscale image — the paper's
// image compression/decompression workload (Sec. IV, Fig. 4).
//
// Acceptability (paper Sec. IV-B-1): the reconstructed image is compared
// against the *input* image; PSNR above 30 dB is "correct" (typical lossy
// compression quality), bit-identical output is "strictly correct".
//
// The guest is structured as real code: three 8x8 matrix-multiply
// subroutines called via bsr/ret (so return-address and stack corruption
// behave as in real programs), block copy loops, and a quantization pass.
#include "apps/app.hpp"
#include "apps/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace gemfi::apps {

namespace {

constexpr int kQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

// The paper compresses a natural photograph; our procedurally generated
// input is white noise, which is the worst case for transform coding. A
// quality-scaled quantizer (Q/4, floor 1) keeps the fault-free
// reconstruction comfortably above the paper's 30 dB acceptance bar
// (~35 dB) while severe corruptions still fall below it.
int quant_value(int k) { return std::max(1, kQuant[k] / 4); }

std::vector<double> dct_matrix() {
  std::vector<double> m(64);
  for (int u = 0; u < 8; ++u)
    for (int x = 0; x < 8; ++x) {
      const double c = u == 0 ? std::sqrt(0.5) : 1.0;
      m[std::size_t(u) * 8 + x] = 0.5 * c * std::cos((2 * x + 1) * u * M_PI / 16.0);
    }
  return m;
}

struct DctGolden {
  std::string output;
  std::vector<int> input_block_order;  // input pixels in block-scan order
};

/// Host twin of the guest kernel: identical arithmetic and ordering.
DctGolden golden_dct(unsigned w, unsigned h, std::uint64_t seed) {
  const std::vector<int> img = generate_image(w, h, seed);
  const std::vector<double> m = dct_matrix();
  DctGolden g;
  std::string& out = g.output;

  const auto mm = [](const double* a, const double* b, double* c, int mode) {
    // mode 0: C=A*B, 1: C=A*B^T, 2: C=A^T*B — accumulation order matches the
    // guest subroutines exactly.
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j) {
        double acc = 0.0;
        for (int k = 0; k < 8; ++k) {
          const double av = mode == 2 ? a[k * 8 + i] : a[i * 8 + k];
          const double bv = mode == 1 ? b[j * 8 + k] : b[k * 8 + j];
          acc = acc + av * bv;
        }
        c[i * 8 + j] = acc;
      }
  };

  double p[64], t1[64], f[64], r[64];
  for (unsigned by = 0; by < h / 8; ++by)
    for (unsigned bx = 0; bx < w / 8; ++bx) {
      for (unsigned y = 0; y < 8; ++y)
        for (unsigned x = 0; x < 8; ++x) {
          const int pix = img[(by * 8 + y) * w + bx * 8 + x];
          g.input_block_order.push_back(pix);
          p[y * 8 + x] = double(std::int64_t(pix));
        }
      mm(m.data(), p, t1, 0);   // t1 = M*P
      mm(t1, m.data(), f, 1);   // F = t1*M^T
      for (int k = 0; k < 64; ++k) {
        const double q = double(std::int64_t(quant_value(k)));
        const double t = f[k] / q;
        const double adj = std::copysign(0.5, t);
        const double rounded = double(std::int64_t(t + adj));
        f[k] = rounded * q;
      }
      mm(m.data(), f, t1, 2);   // t1 = M^T*F
      mm(t1, m.data(), r, 0);   // R = t1*M
      for (int k = 0; k < 64; ++k) {
        const double v = r[k];
        const double adj = std::copysign(0.5, v);
        std::int64_t iv = std::int64_t(v + adj);
        if (iv < 0) iv = 0;
        if (iv > 255) iv = 255;
        char buf[16];
        std::snprintf(buf, sizeof buf, "%lld\n", static_cast<long long>(iv));
        out += buf;
      }
    }
  return g;
}

}  // namespace

App build_dct(const AppScale& scale) {
  using namespace assembler;
  const unsigned w = scale.paper ? 64 : 16;
  const unsigned h = scale.paper ? 64 : 16;
  const std::uint64_t seed = scale.seed ^ 0xdc7;
  const unsigned blocks_x = w / 8;
  const unsigned blocks_y = h / 8;

  Assembler as;
  const std::vector<double> m = dct_matrix();
  std::vector<double> quant_d(64);
  for (int k = 0; k < 64; ++k) quant_d[std::size_t(k)] = double(quant_value(k));

  const DataRef m_ref = as.data_f64(m);
  const DataRef q_ref = as.data_f64(quant_d);
  const DataRef img_ref = as.data_zeros(std::size_t(w) * h * 8);   // doubles
  const DataRef out_ref = as.data_zeros(std::size_t(w) * h * 8);   // int64 results
  const DataRef p_ref = as.data_zeros(64 * 8);
  const DataRef t1_ref = as.data_zeros(64 * 8);
  const DataRef f_ref = as.data_zeros(64 * 8);
  const DataRef r_ref = as.data_zeros(64 * 8);

  const Label entry = as.make_label("main");
  const Label mm_ab = as.make_label("mm_ab");
  const Label mm_abt = as.make_label("mm_abt");
  const Label mm_atb = as.make_label("mm_atb");

  // ---- 8x8 matmul subroutines: a0=C, a1=A, a2=B; clobber t0-t3,t8-t10,f1-f3
  const auto emit_mm8 = [&](Label fn, int mode) {
    as.bind(fn);
    as.li(reg::t8, 0);  // i
    const Label li_ = as.here();
    {
      as.li(reg::t9, 0);  // j
      const Label lj = as.here();
      {
        as.fli(1, 0.0);     // acc
        as.li(reg::t10, 0);  // k
        const Label lk = as.here();
        {
          // av
          if (mode == 2) {  // A^T: a[k*8+i]
            as.sll_i(reg::t10, 3, reg::t0);
            as.addq(reg::t0, reg::t8, reg::t0);
          } else {  // a[i*8+k]
            as.sll_i(reg::t8, 3, reg::t0);
            as.addq(reg::t0, reg::t10, reg::t0);
          }
          as.s8addq(reg::t0, reg::a1, reg::t0);
          as.ldt(2, 0, reg::t0);
          // bv
          if (mode == 1) {  // B^T: b[j*8+k]
            as.sll_i(reg::t9, 3, reg::t1);
            as.addq(reg::t1, reg::t10, reg::t1);
          } else {  // b[k*8+j]
            as.sll_i(reg::t10, 3, reg::t1);
            as.addq(reg::t1, reg::t9, reg::t1);
          }
          as.s8addq(reg::t1, reg::a2, reg::t1);
          as.ldt(3, 0, reg::t1);
          as.mult(2, 3, 2);
          as.addt(1, 2, 1);
          as.addq_i(reg::t10, 1, reg::t10);
          as.cmplt_i(reg::t10, 8, reg::t0);
          as.bne(reg::t0, lk);
        }
        // C[i*8+j] = acc
        as.sll_i(reg::t8, 3, reg::t0);
        as.addq(reg::t0, reg::t9, reg::t0);
        as.s8addq(reg::t0, reg::a0, reg::t0);
        as.stt(1, 0, reg::t0);
        as.addq_i(reg::t9, 1, reg::t9);
        as.cmplt_i(reg::t9, 8, reg::t0);
        as.bne(reg::t0, lj);
      }
      as.addq_i(reg::t8, 1, reg::t8);
      as.cmplt_i(reg::t8, 8, reg::t0);
      as.bne(reg::t0, li_);
    }
    as.ret();
  };
  emit_mm8(mm_ab, 0);
  emit_mm8(mm_abt, 1);
  emit_mm8(mm_atb, 2);

  // ---------------- main ----------------
  as.bind(entry);
  emit_boot(as);

  // init: img[i] = double(LCG byte)
  as.li_u(reg::s1, seed);
  as.la(reg::s2, img_ref);
  as.li(reg::s0, 0);
  const Label gen = as.here("gen");
  {
    emit_lcg_step(as, reg::s1, reg::t0);
    as.srl_i(reg::s1, 33, reg::t1);
    as.and_i(reg::t1, 0xff, reg::t1);
    as.itoft(reg::t1, 1);
    as.cvtqt(1, 1);
    as.s8addq(reg::s0, reg::s2, reg::t3);
    as.stt(1, 0, reg::t3);
    as.addq_i(reg::s0, 1, reg::s0);
    as.li(reg::t2, std::int64_t(std::uint64_t(w) * h));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, gen);
  }

  as.fi_read_init();
  as.mov_i(0, reg::a0);
  as.fi_activate();

  // kernel: for by, bx: copy block -> P; F = M P M^T; quant+dequant;
  // R = M^T F M; round/clamp -> out[]
  as.li(reg::s0, 0);  // by
  const Label lby = as.here("by");
  {
    as.li(reg::s1, 0);  // bx
    const Label lbx = as.here("bx");
    {
      // copy block into P
      as.li(reg::s3, 0);  // y
      const Label cy = as.here("cy");
      {
        as.li(reg::s4, 0);  // x
        const Label cx = as.here("cx");
        {
          // src index = (by*8+y)*w + bx*8+x
          as.sll_i(reg::s0, 3, reg::t0);
          as.addq(reg::t0, reg::s3, reg::t0);
          as.li(reg::t2, std::int64_t(w));
          as.mulq(reg::t0, reg::t2, reg::t0);
          as.sll_i(reg::s1, 3, reg::t1);
          as.addq(reg::t0, reg::t1, reg::t0);
          as.addq(reg::t0, reg::s4, reg::t0);
          as.la(reg::t2, img_ref);
          as.s8addq(reg::t0, reg::t2, reg::t0);
          as.ldt(1, 0, reg::t0);
          // dst index = y*8+x
          as.sll_i(reg::s3, 3, reg::t1);
          as.addq(reg::t1, reg::s4, reg::t1);
          as.la(reg::t2, p_ref);
          as.s8addq(reg::t1, reg::t2, reg::t1);
          as.stt(1, 0, reg::t1);
          as.addq_i(reg::s4, 1, reg::s4);
          as.cmplt_i(reg::s4, 8, reg::t0);
          as.bne(reg::t0, cx);
        }
        as.addq_i(reg::s3, 1, reg::s3);
        as.cmplt_i(reg::s3, 8, reg::t0);
        as.bne(reg::t0, cy);
      }
      // t1 = M*P
      as.la(reg::a0, t1_ref);
      as.la(reg::a1, m_ref);
      as.la(reg::a2, p_ref);
      as.call(mm_ab);
      // F = t1*M^T
      as.la(reg::a0, f_ref);
      as.la(reg::a1, t1_ref);
      as.la(reg::a2, m_ref);
      as.call(mm_abt);
      // quantize + dequantize in place
      as.li(reg::s3, 0);
      const Label qk = as.here("qk");
      {
        as.la(reg::t2, f_ref);
        as.s8addq(reg::s3, reg::t2, reg::t0);
        as.ldt(1, 0, reg::t0);
        as.la(reg::t2, q_ref);
        as.s8addq(reg::s3, reg::t2, reg::t1);
        as.ldt(2, 0, reg::t1);
        as.divt(1, 2, 3);      // t = F/Q
        as.fli(4, 0.5);
        as.cpys(3, 4, 4);      // adj = copysign(0.5, t)
        as.addt(3, 4, 3);
        as.cvttq(3, 3);        // int64
        as.cvtqt(3, 3);        // back to double
        as.mult(3, 2, 3);      // dequant
        as.stt(3, 0, reg::t0);
        as.addq_i(reg::s3, 1, reg::s3);
        as.cmplt_i(reg::s3, 64, reg::t0);
        as.bne(reg::t0, qk);
      }
      // t1 = M^T*F ; R = t1*M
      as.la(reg::a0, t1_ref);
      as.la(reg::a1, m_ref);
      as.la(reg::a2, f_ref);
      as.call(mm_atb);
      as.la(reg::a0, r_ref);
      as.la(reg::a1, t1_ref);
      as.la(reg::a2, m_ref);
      as.call(mm_ab);
      // round/clamp into out[] (block-scan order)
      as.li(reg::s3, 0);
      const Label ok_ = as.here("okl");
      {
        as.la(reg::t2, r_ref);
        as.s8addq(reg::s3, reg::t2, reg::t0);
        as.ldt(1, 0, reg::t0);
        as.fli(4, 0.5);
        as.cpys(1, 4, 4);
        as.addt(1, 4, 1);
        as.cvttq(1, 1);
        as.ftoit(1, reg::t0);  // integer pixel
        // clamp 0..255
        as.cmplt(reg::t0, reg::zero, reg::t1);
        as.cmovne(reg::t1, reg::zero, reg::t0);
        as.li(reg::t2, 255);
        as.cmplt(reg::t2, reg::t0, reg::t1);
        as.cmovne(reg::t1, reg::t2, reg::t0);
        // out[((by*bx block #)*64) + k] = pixel
        as.li(reg::t2, std::int64_t(blocks_x));
        as.mulq(reg::s0, reg::t2, reg::t1);
        as.addq(reg::t1, reg::s1, reg::t1);
        as.sll_i(reg::t1, 6, reg::t1);
        as.addq(reg::t1, reg::s3, reg::t1);
        as.la(reg::t2, out_ref);
        as.s8addq(reg::t1, reg::t2, reg::t1);
        as.stq(reg::t0, 0, reg::t1);
        as.addq_i(reg::s3, 1, reg::s3);
        as.cmplt_i(reg::s3, 64, reg::t0);
        as.bne(reg::t0, ok_);
      }
      as.addq_i(reg::s1, 1, reg::s1);
      as.cmplt_i(reg::s1, blocks_x, reg::t0);
      as.bne(reg::t0, lbx);
    }
    as.addq_i(reg::s0, 1, reg::s0);
    as.cmplt_i(reg::s0, blocks_y, reg::t0);
    as.bne(reg::t0, lby);
  }

  as.mov_i(0, reg::a0);
  as.fi_activate();  // FI off

  // output
  as.li(reg::s0, 0);
  const Label pout = as.here("pout");
  {
    as.la(reg::t2, out_ref);
    as.s8addq(reg::s0, reg::t2, reg::t0);
    as.ldq(reg::a0, 0, reg::t0);
    as.print_int();
    emit_newline(as);
    as.addq_i(reg::s0, 1, reg::s0);
    as.li(reg::t2, std::int64_t(std::uint64_t(w) * h));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, pout);
  }
  as.mov_i(0, reg::a0);
  as.exit_();

  App app;
  app.name = "dct";
  app.program = as.finalize(entry);

  DctGolden golden = golden_dct(w, h, seed);
  app.golden_output = golden.output;
  const std::vector<int> input = std::move(golden.input_block_order);
  app.acceptable = [input](const std::string& out, double& metric) {
    const auto pixels = parse_int_list(out);
    if (!pixels || pixels->size() != input.size()) return false;
    for (const int p : *pixels)
      if (p < 0 || p > 255) return false;
    metric = psnr(input, *pixels);
    return metric > 30.0;  // paper: PSNR > 30 dB vs the input image
  };
  return app;
}

}  // namespace gemfi::apps
