// Guest benchmark applications (the paper's validation workloads, Sec. IV):
// DCT, Jacobi, Monte Carlo PI, Knapsack (genetic algorithm), AVS Deblocking
// and Canneal (simulated annealing), each written in uAlpha assembly against
// the macro-assembler and paired with a C++ golden model plus the paper's
// per-application acceptability criterion.
//
// Every guest follows the Listing-2 structure:
//     <initialize input data>        (pre-checkpoint phase)
//     fi_read_init_all()             (checkpoint request)
//     fi_activate_inst(0)            (FI on)
//     <kernel>
//     fi_activate_inst(0)            (FI off)
//     <print results>
//     m5_exit(0)
// so checkpoint fast-forwarding skips exactly the initialization the paper's
// Fig. 8 skips, and fault timing is sampled over the kernel only.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"

namespace gemfi::apps {

/// Paper's outcome classes (Sec. IV-B-1), plus Timeout: an experiment cut
/// off by the tick watchdog or the wall-clock deadline. The paper folds
/// these into "Crashed"; we keep them separate so fault-induced livelocks
/// are distinguishable from genuine traps in campaign statistics.
/// AttackEffective covers deliberate-fault experiments (instruction skip,
/// opcode corruption): the attack landed and the program ran to completion
/// with an altered output — the adversary's success case, which would
/// otherwise be indistinguishable from an accidental SDC.
enum class Outcome : std::uint8_t {
  Crashed,
  NonPropagated,
  StrictlyCorrect,
  Correct,
  SDC,
  Timeout,
  AttackEffective,
};
inline constexpr unsigned kNumOutcomes = 7;

const char* outcome_name(Outcome o) noexcept;

/// Scale knob shared by every app so campaigns can trade fidelity for time.
/// `paper` selects the input sizes reported in the paper where feasible.
struct AppScale {
  bool paper = false;
  std::uint64_t seed = 0x5eed0001;
};

struct App {
  std::string name;
  assembler::Program program;

  /// Decide whether a *non-bitwise-identical* terminating output is within
  /// the application's acceptable quality margin ("Correct" vs "SDC").
  /// `metric` reports the quality figure used (PSNR dB, |pi error|, ...).
  std::function<bool(const std::string& output, double& metric)> acceptable;

  /// Optional looser equality for "StrictlyCorrect" (e.g. Jacobi ignores the
  /// iteration-count line; null means plain string equality).
  std::function<bool(const std::string& output, const std::string& golden)> strict_equal;

  /// Golden (fault-free) output; filled by calibrate().
  std::string golden_output;
  /// Fault-free run costs, used for watchdogs and uniform time sampling.
  std::uint64_t golden_insts = 0;       // committed instructions (kernel+init)
  std::uint64_t golden_kernel_insts = 0;  // fetched while FI active
  std::uint64_t golden_ticks = 0;

  [[nodiscard]] bool outputs_strictly_equal(const std::string& out) const {
    if (strict_equal) return strict_equal(out, golden_output);
    return out == golden_output;
  }
};

// --- builders (one per benchmark) ---
App build_pi(const AppScale& scale = {});
App build_jacobi(const AppScale& scale = {});
App build_dct(const AppScale& scale = {});
App build_knapsack(const AppScale& scale = {});
App build_deblock(const AppScale& scale = {});
App build_canneal(const AppScale& scale = {});
App build_aes(const AppScale& scale = {});
App build_logwriter(const AppScale& scale = {});

/// All apps, in the paper's presentation order.
std::vector<std::string> app_names();
App build_app(const std::string& name, const AppScale& scale = {});

// --- shared guest/host PRNG (identical sequences on both sides) ---
inline constexpr std::uint64_t kLcgMul = 6364136223846793005ull;
inline constexpr std::uint64_t kLcgAdd = 1442695040888963407ull;

inline std::uint64_t lcg_next(std::uint64_t& state) noexcept {
  state = state * kLcgMul + kLcgAdd;
  return state;
}

/// Emit the same step for a guest register: state = state*mul + add.
/// Clobbers `tmp`.
void emit_lcg_step(assembler::Assembler& as, unsigned state_reg, unsigned tmp);

/// Emit the "system boot" stand-in executed before application init.
/// The paper's campaigns run on gem5 full-system, where every experiment
/// without checkpoint fast-forwarding re-simulates OS boot; our substitute
/// is a kernel-style boot sequence (clear a 256 KiB heap arena, build a
/// page-frame list, checksum it) so Fig. 8's pre-/post-checkpoint time
/// ratio exists to be skipped. Clobbers t0-t3; ~330k instructions.
void emit_boot(assembler::Assembler& as);

/// Emit: print a0-clobbering newline.
void emit_newline(assembler::Assembler& as);

}  // namespace gemfi::apps
