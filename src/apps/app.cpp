#include "apps/app.hpp"

#include <stdexcept>

namespace gemfi::apps {

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Crashed: return "crashed";
    case Outcome::NonPropagated: return "non-propagated";
    case Outcome::StrictlyCorrect: return "strictly-correct";
    case Outcome::Correct: return "correct";
    case Outcome::SDC: return "SDC";
    case Outcome::Timeout: return "timeout";
    case Outcome::AttackEffective: return "attack-effective";
  }
  return "?";
}

void emit_lcg_step(assembler::Assembler& as, unsigned state_reg, unsigned tmp) {
  as.li_u(tmp, kLcgMul);
  as.mulq(state_reg, tmp, state_reg);
  as.li_u(tmp, kLcgAdd);
  as.addq(state_reg, tmp, state_reg);
}

void emit_boot(assembler::Assembler& as) {
  using namespace assembler;
  // "Boot": zero the arena (a kernel clearing pages)...
  const DataRef arena = as.data_zeros(256 * 1024);
  const std::int64_t words = 256 * 1024 / 8;
  as.la(reg::t2, arena);
  as.li(reg::t0, words);
  const Label clear = as.here();
  as.stq(reg::zero, 0, reg::t2);
  as.lda(reg::t2, 8, reg::t2);
  as.subq_i(reg::t0, 1, reg::t0);
  as.bne(reg::t0, clear);
  // ...then build the page-frame list (one descriptor per 4 KiB page)...
  as.la(reg::t2, arena);
  as.li(reg::t0, 0);
  as.li(reg::t3, words / 512);  // pages
  const Label frames = as.here();
  as.sll_i(reg::t0, 12, reg::t1);   // frame address
  as.bis_i(reg::t1, 1, reg::t1);    // present bit
  as.stq(reg::t1, 0, reg::t2);
  as.lda(reg::t2, 8, reg::t2);
  as.addq_i(reg::t0, 1, reg::t0);
  as.cmplt(reg::t0, reg::t3, reg::t1);
  as.bne(reg::t1, frames);
  // ...and checksum the whole arena (an integrity pass over "kernel" data).
  as.la(reg::t2, arena);
  as.li(reg::t0, words);
  as.li(reg::t3, 0);
  const Label sum = as.here();
  as.ldq(reg::t1, 0, reg::t2);
  as.addq(reg::t3, reg::t1, reg::t3);
  as.lda(reg::t2, 8, reg::t2);
  as.subq_i(reg::t0, 1, reg::t0);
  as.bne(reg::t0, sum);
}

void emit_newline(assembler::Assembler& as) {
  as.mov_i('\n', assembler::reg::a0);
  as.print_char();
}

std::vector<std::string> app_names() {
  return {"dct", "jacobi", "pi", "knapsack", "deblock", "canneal", "aes", "logwriter"};
}

App build_app(const std::string& name, const AppScale& scale) {
  if (name == "dct") return build_dct(scale);
  if (name == "jacobi") return build_jacobi(scale);
  if (name == "pi") return build_pi(scale);
  if (name == "knapsack") return build_knapsack(scale);
  if (name == "deblock") return build_deblock(scale);
  if (name == "canneal") return build_canneal(scale);
  if (name == "aes") return build_aes(scale);
  if (name == "logwriter") return build_logwriter(scale);
  throw std::invalid_argument("unknown app: " + name);
}

}  // namespace gemfi::apps
