// Canneal: simulated-annealing minimization of netlist routing cost
// (paper Sec. IV: the PARSEC benchmark, applied to 100 nets with up to 100
// swaps per step).
//
// Elements live on a 16x16 grid; the cost is the sum of Manhattan distances
// of all directed net connections. Annealing swaps two random element
// locations and accepts the move when the cost delta is below a linearly
// decreasing threshold (a deterministic, exp-free acceptance rule so the
// guest and its host twin stay bit-identical).
//
// Acceptability (paper Sec. IV-B-1): a "correct" run reduces the total
// routing cost and produces a correct chip — here: all element positions
// valid and mutually distinct, the printed final cost consistent with the
// printed placement, and lower than the initial cost.
#include "apps/app.hpp"
#include "apps/image.hpp"

#include <cstdio>
#include <set>
#include <vector>

namespace gemfi::apps {

namespace {

constexpr unsigned kElems = 64;     // netlist elements
constexpr unsigned kFanout = 4;     // connections per element
constexpr unsigned kGridMask = 255; // 16x16 grid cells
constexpr std::int64_t kT0 = 16;    // initial acceptance threshold

std::int64_t manhattan(std::int64_t c, std::int64_t d) {
  std::int64_t dx = (c & 15) - (d & 15);
  if (dx < 0) dx = -dx;
  std::int64_t dy = (c >> 4) - (d >> 4);
  if (dy < 0) dy = -dy;
  return dx + dy;
}

std::int64_t total_cost(const std::vector<std::int64_t>& pos,
                        const std::vector<unsigned>& net) {
  std::int64_t sum = 0;
  for (unsigned i = 0; i < kElems; ++i)
    for (unsigned k = 0; k < kFanout; ++k)
      sum += manhattan(pos[i], pos[net[std::size_t(i) * kFanout + k]]);
  return sum;
}

struct CannealGolden {
  std::string output;
  std::vector<unsigned> net;
  std::int64_t initial_cost = 0;
  std::int64_t final_cost = 0;
};

/// Host twin of the guest kernel (identical LCG draw order).
CannealGolden golden_canneal(std::uint64_t seed, unsigned outer, unsigned inner) {
  std::uint64_t state = seed;
  CannealGolden g;

  std::vector<std::int64_t> pos(kElems);
  for (unsigned i = 0; i < kElems; ++i) pos[i] = (i * 37 + 13) & kGridMask;
  g.net.resize(std::size_t(kElems) * kFanout);
  for (auto& n : g.net) {
    lcg_next(state);
    n = unsigned(state >> 30) & (kElems - 1);
  }

  std::int64_t cur = total_cost(pos, g.net);
  g.initial_cost = cur;
  for (unsigned s = 0; s < outer; ++s) {
    const std::int64_t temp = std::int64_t((outer - s)) * kT0 / std::int64_t(outer);
    for (unsigned it = 0; it < inner; ++it) {
      lcg_next(state);
      const unsigned a = unsigned(state >> 30) & (kElems - 1);
      lcg_next(state);
      const unsigned b = unsigned(state >> 30) & (kElems - 1);
      std::swap(pos[a], pos[b]);
      const std::int64_t next = total_cost(pos, g.net);
      if (next - cur < temp) {
        cur = next;
      } else {
        std::swap(pos[a], pos[b]);
      }
    }
  }
  g.final_cost = cur;

  char buf[64];
  std::snprintf(buf, sizeof buf, "cost0=%lld\ncost=%lld\n",
                static_cast<long long>(g.initial_cost),
                static_cast<long long>(g.final_cost));
  g.output = buf;
  for (unsigned i = 0; i < kElems; ++i) {
    std::snprintf(buf, sizeof buf, "%lld\n", static_cast<long long>(pos[i]));
    g.output += buf;
  }
  return g;
}

}  // namespace

App build_canneal(const AppScale& scale) {
  using namespace assembler;
  const unsigned outer = scale.paper ? 100 : 20;
  const unsigned inner = scale.paper ? 100 : 20;
  const std::uint64_t seed = scale.seed ^ 0xca22ea1;

  Assembler as;
  const DataRef pos_ref = as.data_zeros(kElems * 8);
  const DataRef net_ref = as.data_zeros(std::size_t(kElems) * kFanout * 8);

  const Label entry = as.make_label("main");
  const Label fn_cost = as.make_label("total_cost");

  // ---- total_cost() -> v0. Clobbers t0-t9.
  {
    as.bind(fn_cost);
    as.li(reg::v0, 0);
    as.li(reg::t8, 0);  // i
    const Label li_ = as.here();
    {
      as.li(reg::t9, 0);  // k
      const Label lk = as.here();
      {
        // c = pos[i]
        as.la(reg::t2, pos_ref);
        as.s8addq(reg::t8, reg::t2, reg::t0);
        as.ldq(reg::t0, 0, reg::t0);
        // d = pos[net[i*K+k]]
        as.sll_i(reg::t8, 2, reg::t1);
        as.addq(reg::t1, reg::t9, reg::t1);
        as.la(reg::t2, net_ref);
        as.s8addq(reg::t1, reg::t2, reg::t1);
        as.ldq(reg::t1, 0, reg::t1);
        as.la(reg::t2, pos_ref);
        as.s8addq(reg::t1, reg::t2, reg::t1);
        as.ldq(reg::t1, 0, reg::t1);
        // dx = |(c&15)-(d&15)|
        as.and_i(reg::t0, 15, reg::t3);
        as.and_i(reg::t1, 15, reg::t4);
        as.subq(reg::t3, reg::t4, reg::t3);
        as.subq(reg::zero, reg::t3, reg::t4);
        as.cmplt(reg::t3, reg::zero, reg::t5);
        as.cmovne(reg::t5, reg::t4, reg::t3);
        as.addq(reg::v0, reg::t3, reg::v0);
        // dy = |(c>>4)-(d>>4)|
        as.sra_i(reg::t0, 4, reg::t3);
        as.sra_i(reg::t1, 4, reg::t4);
        as.subq(reg::t3, reg::t4, reg::t3);
        as.subq(reg::zero, reg::t3, reg::t4);
        as.cmplt(reg::t3, reg::zero, reg::t5);
        as.cmovne(reg::t5, reg::t4, reg::t3);
        as.addq(reg::v0, reg::t3, reg::v0);
        as.addq_i(reg::t9, 1, reg::t9);
        as.cmplt_i(reg::t9, kFanout, reg::t0);
        as.bne(reg::t0, lk);
      }
      as.addq_i(reg::t8, 1, reg::t8);
      as.cmplt_i(reg::t8, kElems, reg::t0);
      as.bne(reg::t0, li_);
    }
    as.ret();
  }

  as.bind(entry);
  emit_boot(as);

  // ---------------- init ----------------
  // pos[i] = (i*37+13) & 255 — a collision-free scatter (gcd(37,256)=1)
  as.li(reg::s0, 0);
  const Label ip = as.here("init_pos");
  {
    as.mulq_i(reg::s0, 37, reg::t0);
    as.addq_i(reg::t0, 13, reg::t0);
    as.and_i(reg::t0, kGridMask, reg::t0);
    as.la(reg::t2, pos_ref);
    as.s8addq(reg::s0, reg::t2, reg::t1);
    as.stq(reg::t0, 0, reg::t1);
    as.addq_i(reg::s0, 1, reg::s0);
    as.cmplt_i(reg::s0, kElems, reg::t0);
    as.bne(reg::t0, ip);
  }
  // net[j] = LCG & (E-1)
  as.li_u(reg::s1, seed);
  as.li(reg::s0, 0);
  const Label in_ = as.here("init_net");
  {
    emit_lcg_step(as, reg::s1, reg::t0);
    as.srl_i(reg::s1, 30, reg::t1);
    as.and_i(reg::t1, kElems - 1, reg::t1);
    as.la(reg::t2, net_ref);
    as.s8addq(reg::s0, reg::t2, reg::t3);
    as.stq(reg::t1, 0, reg::t3);
    as.addq_i(reg::s0, 1, reg::s0);
    as.li(reg::t2, std::int64_t(std::uint64_t(kElems) * kFanout));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, in_);
  }

  as.fi_read_init();
  as.mov_i(0, reg::a0);
  as.fi_activate();

  // ---------------- kernel ----------------
  as.call(fn_cost);
  as.mov(reg::v0, reg::s2);  // cur cost
  as.mov(reg::v0, reg::s5);  // initial cost (saved for output)

  as.li(reg::s0, 0);  // s (outer)
  const Label ls = as.here("ls");
  {
    // temp = (outer - s) * T0 / outer
    as.li(reg::t0, std::int64_t(outer));
    as.subq(reg::t0, reg::s0, reg::t1);
    as.mulq_i(reg::t1, unsigned(kT0), reg::t1);
    as.divq_i(reg::t1, outer, reg::t1);  // outer <= 255 always holds here
    as.mov(reg::t1, reg::fp);  // fp = temp
    as.li(reg::s3, 0);         // inner counter
    const Label lin = as.here("lin");
    {
      // a, b
      emit_lcg_step(as, reg::s1, reg::t0);
      as.srl_i(reg::s1, 30, reg::t1);
      as.and_i(reg::t1, kElems - 1, reg::s4);  // a
      emit_lcg_step(as, reg::s1, reg::t0);
      as.srl_i(reg::s1, 30, reg::t1);
      as.and_i(reg::t1, kElems - 1, reg::t10); // b
      // swap pos[a], pos[b]
      as.la(reg::t2, pos_ref);
      as.s8addq(reg::s4, reg::t2, reg::t8);
      as.s8addq(reg::t10, reg::t2, reg::t9);
      as.ldq(reg::t0, 0, reg::t8);
      as.ldq(reg::t1, 0, reg::t9);
      as.stq(reg::t1, 0, reg::t8);
      as.stq(reg::t0, 0, reg::t9);
      as.push(reg::s4);
      as.push(reg::t10);
      as.call(fn_cost);
      as.pop(reg::t10);
      as.pop(reg::s4);
      // delta < temp ? accept : revert
      as.subq(reg::v0, reg::s2, reg::t0);
      as.cmplt(reg::t0, reg::fp, reg::t1);
      const Label accept = as.make_label("accept");
      as.bne(reg::t1, accept);
      // revert
      as.la(reg::t2, pos_ref);
      as.s8addq(reg::s4, reg::t2, reg::t8);
      as.s8addq(reg::t10, reg::t2, reg::t9);
      as.ldq(reg::t0, 0, reg::t8);
      as.ldq(reg::t1, 0, reg::t9);
      as.stq(reg::t1, 0, reg::t8);
      as.stq(reg::t0, 0, reg::t9);
      const Label cont = as.make_label("cont");
      as.br(cont);
      as.bind(accept);
      as.mov(reg::v0, reg::s2);
      as.bind(cont);
      as.addq_i(reg::s3, 1, reg::s3);
      as.cmplt_i(reg::s3, inner, reg::t0);
      as.bne(reg::t0, lin);
    }
    as.addq_i(reg::s0, 1, reg::s0);
    as.cmplt_i(reg::s0, outer, reg::t0);
    as.bne(reg::t0, ls);
  }

  as.mov_i(0, reg::a0);
  as.fi_activate();  // FI off

  // ---------------- output ----------------
  as.print_str("cost0=");
  as.print_int_r(reg::s5);
  emit_newline(as);
  as.print_str("cost=");
  as.print_int_r(reg::s2);
  emit_newline(as);
  as.li(reg::s0, 0);
  const Label pout = as.here("pout");
  {
    as.la(reg::t2, pos_ref);
    as.s8addq(reg::s0, reg::t2, reg::t0);
    as.ldq(reg::a0, 0, reg::t0);
    as.print_int();
    emit_newline(as);
    as.addq_i(reg::s0, 1, reg::s0);
    as.cmplt_i(reg::s0, kElems, reg::t0);
    as.bne(reg::t0, pout);
  }
  as.mov_i(0, reg::a0);
  as.exit_();

  App app;
  app.name = "canneal";
  app.program = as.finalize(entry);

  CannealGolden golden = golden_canneal(seed, outer, inner);
  app.golden_output = golden.output;
  const std::vector<unsigned> net = std::move(golden.net);
  const std::int64_t initial = golden.initial_cost;
  const std::int64_t golden_final = golden.final_cost;
  app.acceptable = [net, initial, golden_final](const std::string& out, double& metric) {
    const auto ints = parse_int_list(out);
    if (!ints || ints->size() != 2 + kElems) return false;
    const std::int64_t cost0 = (*ints)[0];
    const std::int64_t cost = (*ints)[1];
    std::vector<std::int64_t> pos(ints->begin() + 2, ints->end());
    std::set<std::int64_t> distinct(pos.begin(), pos.end());
    if (distinct.size() != kElems) return false;  // elements collided: broken chip
    for (const std::int64_t p : pos)
      if (p < 0 || p > kGridMask) return false;
    if (total_cost(pos, net) != cost) return false;  // inconsistent report
    if (cost0 != initial) return false;
    metric = double(cost) / double(golden_final);
    return cost < initial;  // paper: cost reduced and the chip is correct
  };
  return app;
}

}  // namespace gemfi::apps
