// Jacobi iterative solver on a diagonally dominant system (paper: 64x64).
//
// Characteristics: multi-level loop nests and many memory accesses (the
// paper singles Jacobi and DCT out for ~2x crash rates under integer
// register faults), and self-healing iterations: corrupted intermediate data
// is repaired by further iterations at the cost of extra work, which is why
// late faults trade "strictly correct" for "correct" outcomes (Fig. 6).
//
// Acceptability (paper Sec. IV-B-1): bit-exact solution vector compared with
// the golden model, converging after a potentially different number of
// iterations — so the iteration count line is excluded from the strict
// comparison and the solution lines must match exactly.
#include "apps/app.hpp"
#include "apps/image.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

namespace gemfi::apps {

namespace {

struct JacobiGolden {
  std::string output;
  std::vector<double> solution;
};

/// Host twin of the guest kernel (same arithmetic, same order).
JacobiGolden golden_jacobi(unsigned n, std::uint64_t seed, unsigned max_iters,
                           double eps) {
  std::vector<double> a(std::size_t(n) * n), b(n), x(n, 0.0), xn(n, 0.0);
  std::uint64_t state = seed;
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < n; ++j) {
      lcg_next(state);
      a[std::size_t(i) * n + j] = double(std::int64_t((state >> 33) & 0xff));
    }
    lcg_next(state);
    b[i] = double(std::int64_t((state >> 33) & 0xffff));
    // Diagonal dominance: diag = 1 + sum of |row|.
    double sum = 0.0;
    for (unsigned j = 0; j < n; ++j)
      if (j != i) sum = sum + a[std::size_t(i) * n + j];
    a[std::size_t(i) * n + i] = sum + 256.0;
  }

  unsigned iters = 0;
  for (; iters < max_iters; ++iters) {
    double maxdiff = 0.0;
    for (unsigned i = 0; i < n; ++i) {
      double s = b[i];
      for (unsigned j = 0; j < n; ++j)
        if (j != i) s = s - a[std::size_t(i) * n + j] * x[j];
      xn[i] = s / a[std::size_t(i) * n + i];
      double d = xn[i] - x[i];
      if (d < 0.0) d = -d;
      if (d > maxdiff) maxdiff = d;
    }
    for (unsigned i = 0; i < n; ++i) x[i] = xn[i];
    if (maxdiff <= eps) {
      ++iters;
      break;
    }
  }

  std::string out = "iters=" + std::to_string(iters) + "\n";
  for (unsigned i = 0; i < n; ++i) {
    const double t = x[i] * 1e8;
    const auto q = std::int64_t(t + std::copysign(0.5, t));
    char buf[48];
    std::snprintf(buf, sizeof buf, "x=%lld\n", static_cast<long long>(q));
    out += buf;
  }
  return {out, x};
}

/// Strip the leading "iters=K" line (convergence may legitimately take a
/// different number of iterations under faults).
std::string solution_lines(const std::string& out) {
  const std::size_t nl = out.find('\n');
  if (nl == std::string::npos || out.rfind("iters=", 0) != 0) return out;
  return out.substr(nl + 1);
}

}  // namespace

App build_jacobi(const AppScale& scale) {
  using namespace assembler;
  const unsigned n = scale.paper ? 64 : 16;
  const unsigned max_iters = 400;
  // Converge until one sweep changes no component by more than eps, then
  // print the solution quantized to 1e-8 (scaled 64-bit integers). The
  // quantization step is ~100x wider than the convergence ball, so every
  // run that converges — including runs whose intermediate data was
  // corrupted and then healed by extra sweeps — prints the identical
  // solution: the paper's "correct after a different number of iterations"
  // class for Jacobi (Sec. IV-B-1).
  const double eps = 1e-10;
  const std::uint64_t seed = scale.seed ^ 0x1acb;

  Assembler as;

  const Label entry = as.here("main");
  emit_boot(as);

  // ---------------- init phase (pre-checkpoint) ----------------
  // The work buffers live on the kernel heap (sys_alloc) instead of the
  // static data section, with the error paths a real program would have:
  // an ABI-version mismatch or a failed allocation prints a diagnostic and
  // exits nonzero rather than scribbling through a -errno "pointer".
  const Label sys_fail = as.make_label("sys_fail");
  const auto sys = [&](std::uint64_t no) {
    as.li(reg::v0, std::int64_t(no));
    as.syscall_();
  };
  sys(10);  // sys_version
  as.li(reg::t0, 1);
  as.cmpeq(reg::v0, reg::t0, reg::t0);
  as.beq(reg::t0, sys_fail);
  const auto alloc_into = [&](std::uint64_t bytes, unsigned dst) {
    as.li(reg::a0, std::int64_t(bytes));
    sys(1);  // sys_alloc
    as.blt(reg::v0, sys_fail);
    as.mov(reg::v0, dst);
  };
  alloc_into(std::size_t(n) * n * 8, reg::s2);  // A
  alloc_into(n * 8, reg::s3);                   // b

  // Generates A, b with the shared LCG and establishes diagonal dominance.
  as.li_u(reg::s1, seed);  // LCG state
  as.li(reg::s0, 0);       // i

  const Label init_i = as.here("init_i");
  {
    as.li(reg::s4, 0);  // j
    const Label init_j = as.here("init_j");
    emit_lcg_step(as, reg::s1, reg::t0);
    as.srl_i(reg::s1, 33, reg::t1);
    as.and_i(reg::t1, 0xff, reg::t1);
    as.itoft(reg::t1, 1);
    as.cvtqt(1, 1);                       // f1 = value
    // A[i*n + j] = f1
    as.li(reg::t2, std::int64_t(n));
    as.mulq(reg::s0, reg::t2, reg::t3);
    as.addq(reg::t3, reg::s4, reg::t3);
    as.s8addq(reg::t3, reg::s2, reg::t3);
    as.stt(1, 0, reg::t3);
    as.addq_i(reg::s4, 1, reg::s4);
    as.li(reg::t2, std::int64_t(n));
    as.cmplt(reg::s4, reg::t2, reg::t0);
    as.bne(reg::t0, init_j);

    // b[i] = 16-bit random
    emit_lcg_step(as, reg::s1, reg::t0);
    as.srl_i(reg::s1, 33, reg::t1);
    as.li(reg::t2, 0xffff);
    as.and_(reg::t1, reg::t2, reg::t1);
    as.itoft(reg::t1, 1);
    as.cvtqt(1, 1);
    as.s8addq(reg::s0, reg::s3, reg::t3);
    as.stt(1, 0, reg::t3);

    // Diagonal: A[i][i] = 256 + sum_{j!=i} A[i][j]
    as.fli(2, 0.0);  // sum
    as.li(reg::s4, 0);
    const Label diag_j = as.here("diag_j");
    {
      const Label skip = as.make_label("diag_skip");
      as.cmpeq(reg::s4, reg::s0, reg::t0);
      as.bne(reg::t0, skip);
      as.li(reg::t2, std::int64_t(n));
      as.mulq(reg::s0, reg::t2, reg::t3);
      as.addq(reg::t3, reg::s4, reg::t3);
      as.s8addq(reg::t3, reg::s2, reg::t3);
      as.ldt(3, 0, reg::t3);
      as.addt(2, 3, 2);
      as.bind(skip);
      as.addq_i(reg::s4, 1, reg::s4);
      as.li(reg::t2, std::int64_t(n));
      as.cmplt(reg::s4, reg::t2, reg::t0);
      as.bne(reg::t0, diag_j);
    }
    as.fli(3, 256.0);
    as.addt(2, 3, 2);
    as.li(reg::t2, std::int64_t(n));
    as.mulq(reg::s0, reg::t2, reg::t3);
    as.addq(reg::t3, reg::s0, reg::t3);
    as.s8addq(reg::t3, reg::s2, reg::t3);
    as.stt(2, 0, reg::t3);

    as.addq_i(reg::s0, 1, reg::s0);
    as.li(reg::t2, std::int64_t(n));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, init_i);
  }

  // x and xn are allocated after the init loops (which use s4 as a loop
  // counter) and zeroed explicitly: the data section was implicitly zeroed,
  // the heap is not guaranteed to be.
  alloc_into(n * 8, reg::s4);  // x
  alloc_into(n * 8, reg::s5);  // xn
  as.mov(reg::s4, reg::t2);
  as.mov(reg::s5, reg::t3);
  as.li(reg::t0, std::int64_t(n));
  const Label zero_loop = as.here("zero_x");
  as.stq(reg::zero, 0, reg::t2);
  as.stq(reg::zero, 0, reg::t3);
  as.lda(reg::t2, 8, reg::t2);
  as.lda(reg::t3, 8, reg::t3);
  as.subq_i(reg::t0, 1, reg::t0);
  as.bne(reg::t0, zero_loop);

  as.fi_read_init();  // checkpoint boundary
  as.mov_i(0, reg::a0);
  as.fi_activate();

  // ---------------- kernel ----------------
  // s0=iter, s2=&A, s3=&b, s4=&x, s5=&xn (heap pointers from init), f10=eps
  as.fli(10, eps);
  as.li(reg::s0, 0);  // iteration counter

  const Label iter_loop = as.here("iter");
  {
    as.fli(4, 0.0);     // f4 = maxdiff
    as.li(reg::t8, 0);  // i
    const Label row = as.here("row");
    {
      // f1 = b[i]
      as.s8addq(reg::t8, reg::s3, reg::t3);
      as.ldt(1, 0, reg::t3);
      // Pointer induction, as a compiler would emit it: t4 walks A's row i,
      // t5 walks x. These long-lived address registers are exactly the kind
      // of state whose corruption the paper blames for Jacobi's elevated
      // integer-register crash rate.
      as.li(reg::t2, std::int64_t(n));
      as.mulq(reg::t8, reg::t2, reg::t4);
      as.s8addq(reg::t4, reg::s2, reg::t4);  // t4 = &A[i][0]
      as.mov(reg::s4, reg::t5);              // t5 = &x[0]
      as.li(reg::t9, 0);  // j
      const Label col = as.here("col");
      {
        const Label skip = as.make_label("col_skip");
        as.cmpeq(reg::t9, reg::t8, reg::t0);
        as.bne(reg::t0, skip);
        as.ldt(2, 0, reg::t4);             // A[i][j]
        as.ldt(3, 0, reg::t5);             // x[j]
        as.mult(2, 3, 2);
        as.subt(1, 2, 1);                  // s -= A[i][j]*x[j]
        as.bind(skip);
        as.lda(reg::t4, 8, reg::t4);
        as.lda(reg::t5, 8, reg::t5);
        as.addq_i(reg::t9, 1, reg::t9);
        as.li(reg::t2, std::int64_t(n));
        as.cmplt(reg::t9, reg::t2, reg::t0);
        as.bne(reg::t0, col);
      }
      // xn[i] = s / A[i][i]
      as.li(reg::t2, std::int64_t(n));
      as.mulq(reg::t8, reg::t2, reg::t3);
      as.addq(reg::t3, reg::t8, reg::t3);
      as.s8addq(reg::t3, reg::s2, reg::t3);
      as.ldt(2, 0, reg::t3);
      as.divt(1, 2, 1);
      as.s8addq(reg::t8, reg::s5, reg::t3);
      as.stt(1, 0, reg::t3);
      // d = |xn[i] - x[i]|; maxdiff = max(maxdiff, d)
      as.s8addq(reg::t8, reg::s4, reg::t3);
      as.ldt(3, 0, reg::t3);
      as.subt(1, 3, 3);
      as.fabs_(3, 3);
      as.cmptlt(4, 3, 5);  // f5 = 2.0 if maxdiff < d
      const Label no_upd = as.make_label("no_upd");
      as.fbeq(5, no_upd);
      as.fmov(3, 4);
      as.bind(no_upd);
      as.addq_i(reg::t8, 1, reg::t8);
      as.li(reg::t2, std::int64_t(n));
      as.cmplt(reg::t8, reg::t2, reg::t0);
      as.bne(reg::t0, row);
    }
    // x = xn
    as.li(reg::t8, 0);
    const Label copy = as.here("copy");
    {
      as.s8addq(reg::t8, reg::s5, reg::t3);
      as.ldt(1, 0, reg::t3);
      as.s8addq(reg::t8, reg::s4, reg::t3);
      as.stt(1, 0, reg::t3);
      as.addq_i(reg::t8, 1, reg::t8);
      as.li(reg::t2, std::int64_t(n));
      as.cmplt(reg::t8, reg::t2, reg::t0);
      as.bne(reg::t0, copy);
    }
    as.addq_i(reg::s0, 1, reg::s0);
    // Converged?
    as.cmptle(4, 10, 5);
    const Label done = as.make_label("done");
    as.fbne(5, done);
    as.li(reg::t2, std::int64_t(max_iters));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, iter_loop);
    as.bind(done);
  }

  as.mov_i(0, reg::a0);
  as.fi_activate();  // FI off

  // ---------------- output ----------------
  as.print_str("iters=");
  as.print_int_r(reg::s0);
  emit_newline(as);
  as.li(reg::t8, 0);
  const Label out_loop = as.here("out");
  {
    as.print_str("x=");
    as.s8addq(reg::t8, reg::s4, reg::t3);
    as.ldt(1, 0, reg::t3);
    as.fli(2, 1e8);
    as.mult(1, 2, 1);       // t = x * 1e8
    as.fli(2, 0.5);
    as.cpys(1, 2, 2);       // copysign(0.5, t)
    as.addt(1, 2, 1);
    as.cvttq(1, 1);         // quantized int64
    as.ftoit(1, reg::a0);
    as.print_int();
    emit_newline(as);
    as.addq_i(reg::t8, 1, reg::t8);
    as.li(reg::t2, std::int64_t(n));
    as.cmplt(reg::t8, reg::t2, reg::t0);
    as.bne(reg::t0, out_loop);
  }
  as.mov_i(0, reg::a0);
  as.exit_();

  // Syscall error path: never reached fault-free; under injected alloc or
  // version failures the run ends here with a distinct output and exit code.
  as.bind(sys_fail);
  as.print_str("E:sys\n");
  as.mov_i(1, reg::a0);
  as.exit_();

  App app;
  app.name = "jacobi";
  app.program = as.finalize(entry);

  const JacobiGolden golden = golden_jacobi(n, seed, max_iters, eps);
  app.golden_output = golden.output;
  const std::string golden_solution = solution_lines(golden.output);
  app.strict_equal = [](const std::string& out, const std::string& gold) {
    return out == gold;
  };
  // Correct: bit-exact solution, possibly after a different iteration count.
  app.acceptable = [golden_solution](const std::string& out, double& metric) {
    metric = 0.0;
    return solution_lines(out) == golden_solution;
  };
  return app;
}

}  // namespace gemfi::apps
