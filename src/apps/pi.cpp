// Monte Carlo PI estimation (paper Sec. IV: 1e5 points in a unit square,
// counting hits inside the inscribed quarter circle).
//
// Characteristics the paper's analysis relies on: almost no data memory
// accesses (everything lives in registers), FP-heavy, and every iteration
// contributes equally to the result — so fault timing should be
// uncorrelated with outcome (Fig. 6, left).
#include "apps/app.hpp"
#include "apps/image.hpp"

#include <cmath>
#include <cstdio>

namespace gemfi::apps {

namespace {

/// Host twin of the guest kernel: must match operation-for-operation.
std::string golden_pi(std::uint64_t points, std::uint64_t seed, double& pi_out) {
  std::uint64_t state = seed;
  std::uint64_t inside = 0;
  const double scale = 0x1.0p-53;
  for (std::uint64_t i = 0; i < points; ++i) {
    lcg_next(state);
    const double x = double(state >> 11) * scale;
    lcg_next(state);
    const double y = double(state >> 11) * scale;
    if (x * x + y * y <= 1.0) ++inside;
  }
  const double pi = double(std::int64_t(inside)) * 4.0 / double(std::int64_t(points));
  pi_out = pi;
  char buf[64];
  std::snprintf(buf, sizeof buf, "pi=%.17g\n", pi);
  return buf;
}

}  // namespace

App build_pi(const AppScale& scale) {
  using namespace assembler;
  const std::uint64_t points = scale.paper ? 100000 : 8000;
  const std::uint64_t seed = scale.seed;

  Assembler as;
  const Label entry = as.here("main");
  emit_boot(as);

  // --- init phase (pre-checkpoint): just seeds; PI has a trivial init ---
  as.li_u(reg::s1, seed);       // LCG state
  as.li(reg::s2, 0);            // inside counter
  as.li(reg::s0, std::int64_t(points));  // remaining points
  as.fli(10, 0x1.0p-53);        // f10 = 2^-53
  as.fli(11, 1.0);              // f11 = 1.0
  as.fli(12, 4.0);              // f12 = 4.0
  // Hoist the LCG constants into registers: the paper's PI "performs almost
  // no data accesses from memory", so the kernel must not reload them from
  // the literal pool on every iteration.
  as.li_u(reg::s3, kLcgMul);
  as.li_u(reg::s4, kLcgAdd);

  as.fi_read_init();            // checkpoint boundary
  as.mov_i(0, reg::a0);
  as.fi_activate();             // FI on, thread id 0

  const Label loop = as.here("loop");
  // x = rand01()
  as.mulq(reg::s1, reg::s3, reg::s1);
  as.addq(reg::s1, reg::s4, reg::s1);
  as.srl_i(reg::s1, 11, reg::t1);
  as.itoft(reg::t1, 1);
  as.cvtqt(1, 1);
  as.mult(1, 10, 1);            // f1 = x
  // y = rand01()
  as.mulq(reg::s1, reg::s3, reg::s1);
  as.addq(reg::s1, reg::s4, reg::s1);
  as.srl_i(reg::s1, 11, reg::t1);
  as.itoft(reg::t1, 2);
  as.cvtqt(2, 2);
  as.mult(2, 10, 2);            // f2 = y
  // inside if x*x + y*y <= 1.0
  as.mult(1, 1, 3);
  as.mult(2, 2, 4);
  as.addt(3, 4, 3);
  as.cmptle(3, 11, 4);          // f4 = 2.0 if inside
  const Label not_inside = as.make_label("not_inside");
  as.fbeq(4, not_inside);
  as.addq_i(reg::s2, 1, reg::s2);
  as.bind(not_inside);
  as.subq_i(reg::s0, 1, reg::s0);
  as.bne(reg::s0, loop);

  // pi = 4 * inside / points
  as.itoft(reg::s2, 5);
  as.cvtqt(5, 5);
  as.mult(5, 12, 5);
  as.li(reg::t0, std::int64_t(points));
  as.itoft(reg::t0, 6);
  as.cvtqt(6, 6);
  as.divt(5, 6, 5);             // f5 = pi

  as.mov_i(0, reg::a0);
  as.fi_activate();             // FI off

  as.print_str("pi=");
  as.fmov(5, 16);               // f16 = argument of print_fp
  as.print_fp();
  emit_newline(as);

  as.mov_i(0, reg::a0);
  as.exit_();

  App app;
  app.name = "pi";
  app.program = as.finalize(entry);

  double golden_pi_value = 0.0;
  const std::string golden = golden_pi(points, seed, golden_pi_value);
  // Paper criterion: the first two decimal points must match the accuracy
  // the error-free execution achieves for this sample count.
  app.acceptable = [golden_pi_value](const std::string& out, double& metric) {
    const auto vals = parse_double_list(out);
    if (!vals || vals->size() != 1) return false;
    metric = std::fabs(vals->front() - golden_pi_value);
    return std::isfinite(vals->front()) && metric < 0.005;
  };
  app.golden_output = golden;  // provisional; calibrate() overwrites with a real run
  return app;
}

}  // namespace gemfi::apps
