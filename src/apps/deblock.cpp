// AVS-style deblocking filter (paper Sec. IV: a kernel of AVS video
// decoding applied to one luma plane).
//
// Characteristics: the only benchmark with *no floating-point operations* —
// the paper uses it to show 100% strict correctness under FP-register
// faults (Fig. 5). Pure integer edge filtering across 8x8 block boundaries.
//
// Acceptability (paper Sec. IV-B-1): outputs with PSNR above 80 dB compared
// with the error-free execution are "correct".
#include "apps/app.hpp"
#include "apps/image.hpp"

#include <cstdio>
#include <vector>

namespace gemfi::apps {

namespace {

constexpr int kAlpha = 28;
constexpr int kBeta = 14;

struct DeblockGolden {
  std::string output;
  std::vector<int> filtered;
};

/// Host twin of the guest kernel (in-place, vertical then horizontal edges).
DeblockGolden golden_deblock(unsigned w, unsigned h, std::uint64_t seed) {
  std::vector<int> img = generate_image(w, h, seed);
  const auto abs_ = [](int v) { return v < 0 ? -v : v; };
  const auto filter = [&](std::size_t p1i, std::size_t p0i, std::size_t q0i,
                          std::size_t q1i) {
    const int p1 = img[p1i], p0 = img[p0i], q0 = img[q0i], q1 = img[q1i];
    if (abs_(p0 - q0) < kAlpha && abs_(p1 - p0) < kBeta && abs_(q1 - q0) < kBeta) {
      img[p0i] = (p1 + 2 * p0 + q0 + 2) >> 2;
      img[q0i] = (q1 + 2 * q0 + p0 + 2) >> 2;
    }
  };
  for (unsigned x = 8; x < w; x += 8)
    for (unsigned y = 0; y < h; ++y)
      filter(std::size_t(y) * w + x - 2, std::size_t(y) * w + x - 1,
             std::size_t(y) * w + x, std::size_t(y) * w + x + 1);
  for (unsigned y = 8; y < h; y += 8)
    for (unsigned x = 0; x < w; ++x)
      filter(std::size_t(y - 2) * w + x, std::size_t(y - 1) * w + x,
             std::size_t(y) * w + x, std::size_t(y + 1) * w + x);

  DeblockGolden g;
  g.filtered = img;
  for (const int v : img) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%d\n", v);
    g.output += buf;
  }
  return g;
}

}  // namespace

App build_deblock(const AppScale& scale) {
  using namespace assembler;
  const unsigned w = scale.paper ? 96 : 32;
  const unsigned h = scale.paper ? 32 : 16;
  const std::uint64_t seed = scale.seed ^ 0xdeb10c;

  Assembler as;
  const DataRef img_ref = as.data_zeros(std::size_t(w) * h * 8);

  const Label entry = as.make_label("main");
  const Label fn_filter = as.make_label("filter_edge");

  // ---- filter_edge(a0=&p1, a1=&p0, a2=&q0, a3=&q1): conditionally smooth.
  // Clobbers t0-t9.
  {
    as.bind(fn_filter);
    as.ldq(reg::t0, 0, reg::a0);  // p1
    as.ldq(reg::t1, 0, reg::a1);  // p0
    as.ldq(reg::t2, 0, reg::a2);  // q0
    as.ldq(reg::t3, 0, reg::a3);  // q1
    const Label skip = as.make_label("fe_skip");
    const auto abs_diff = [&](unsigned a, unsigned b, unsigned dst) {
      as.subq(a, b, dst);
      as.subq(reg::zero, dst, reg::t9);
      as.cmplt(dst, reg::zero, reg::t8);
      as.cmovne(reg::t8, reg::t9, dst);
    };
    abs_diff(reg::t1, reg::t2, reg::t4);  // |p0-q0|
    as.cmplt_i(reg::t4, kAlpha, reg::t8);
    as.beq(reg::t8, skip);
    abs_diff(reg::t0, reg::t1, reg::t4);  // |p1-p0|
    as.cmplt_i(reg::t4, kBeta, reg::t8);
    as.beq(reg::t8, skip);
    abs_diff(reg::t3, reg::t2, reg::t4);  // |q1-q0|
    as.cmplt_i(reg::t4, kBeta, reg::t8);
    as.beq(reg::t8, skip);
    // p0' = (p1 + 2*p0 + q0 + 2) >> 2
    as.sll_i(reg::t1, 1, reg::t4);
    as.addq(reg::t4, reg::t0, reg::t4);
    as.addq(reg::t4, reg::t2, reg::t4);
    as.addq_i(reg::t4, 2, reg::t4);
    as.sra_i(reg::t4, 2, reg::t4);
    // q0' = (q1 + 2*q0 + p0 + 2) >> 2
    as.sll_i(reg::t2, 1, reg::t5);
    as.addq(reg::t5, reg::t3, reg::t5);
    as.addq(reg::t5, reg::t1, reg::t5);
    as.addq_i(reg::t5, 2, reg::t5);
    as.sra_i(reg::t5, 2, reg::t5);
    as.stq(reg::t4, 0, reg::a1);
    as.stq(reg::t5, 0, reg::a2);
    as.bind(skip);
    as.ret();
  }

  as.bind(entry);
  emit_boot(as);

  // ---------------- init: LCG image ----------------
  as.li_u(reg::s1, seed);
  as.la(reg::s2, img_ref);
  as.li(reg::s0, 0);
  const Label gen = as.here("gen");
  {
    emit_lcg_step(as, reg::s1, reg::t0);
    as.srl_i(reg::s1, 33, reg::t1);
    as.and_i(reg::t1, 0xff, reg::t1);
    as.s8addq(reg::s0, reg::s2, reg::t3);
    as.stq(reg::t1, 0, reg::t3);
    as.addq_i(reg::s0, 1, reg::s0);
    as.li(reg::t2, std::int64_t(std::uint64_t(w) * h));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, gen);
  }

  as.fi_read_init();
  as.mov_i(0, reg::a0);
  as.fi_activate();

  // ---------------- kernel ----------------
  // vertical edges: x = 8,16,... ; for each y
  as.li(reg::s0, 8);  // x
  const Label vx = as.here("vx");
  {
    as.li(reg::s3, 0);  // y
    const Label vy = as.here("vy");
    {
      // base index = y*w + x
      as.li(reg::t2, std::int64_t(w));
      as.mulq(reg::s3, reg::t2, reg::t0);
      as.addq(reg::t0, reg::s0, reg::t0);
      as.s8addq(reg::t0, reg::s2, reg::t0);  // &q0
      as.lda(reg::a0, -16, reg::t0);         // &p1
      as.lda(reg::a1, -8, reg::t0);          // &p0
      as.mov(reg::t0, reg::a2);              // &q0
      as.lda(reg::a3, 8, reg::t0);           // &q1
      as.call(fn_filter);
      as.addq_i(reg::s3, 1, reg::s3);
      as.li(reg::t2, std::int64_t(h));
      as.cmplt(reg::s3, reg::t2, reg::t0);
      as.bne(reg::t0, vy);
    }
    as.addq_i(reg::s0, 8, reg::s0);
    as.li(reg::t2, std::int64_t(w));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, vx);
  }
  // horizontal edges: y = 8,16,...; for each x
  as.li(reg::s0, 8);  // y
  const Label hy = as.here("hy");
  {
    as.li(reg::s3, 0);  // x
    const Label hx = as.here("hx");
    {
      as.li(reg::t2, std::int64_t(w));
      as.mulq(reg::s0, reg::t2, reg::t0);
      as.addq(reg::t0, reg::s3, reg::t0);
      as.s8addq(reg::t0, reg::s2, reg::t0);  // &q0 = &img[y][x]
      const std::int32_t row = std::int32_t(w) * 8;
      as.lda(reg::a0, -2 * row, reg::t0);  // &p1 = &img[y-2][x]
      as.lda(reg::a1, -row, reg::t0);      // &p0
      as.mov(reg::t0, reg::a2);
      as.lda(reg::a3, row, reg::t0);       // &q1
      as.call(fn_filter);
      as.addq_i(reg::s3, 1, reg::s3);
      as.li(reg::t2, std::int64_t(w));
      as.cmplt(reg::s3, reg::t2, reg::t0);
      as.bne(reg::t0, hx);
    }
    as.addq_i(reg::s0, 8, reg::s0);
    as.li(reg::t2, std::int64_t(h));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, hy);
  }

  as.mov_i(0, reg::a0);
  as.fi_activate();  // FI off

  // output
  as.li(reg::s0, 0);
  const Label pout = as.here("pout");
  {
    as.s8addq(reg::s0, reg::s2, reg::t0);
    as.ldq(reg::a0, 0, reg::t0);
    as.print_int();
    emit_newline(as);
    as.addq_i(reg::s0, 1, reg::s0);
    as.li(reg::t2, std::int64_t(std::uint64_t(w) * h));
    as.cmplt(reg::s0, reg::t2, reg::t0);
    as.bne(reg::t0, pout);
  }
  as.mov_i(0, reg::a0);
  as.exit_();

  App app;
  app.name = "deblock";
  app.program = as.finalize(entry);

  DeblockGolden golden = golden_deblock(w, h, seed);
  app.golden_output = golden.output;
  const std::vector<int> reference = std::move(golden.filtered);
  app.acceptable = [reference](const std::string& out, double& metric) {
    const auto pixels = parse_int_list(out);
    if (!pixels || pixels->size() != reference.size()) return false;
    for (const int p : *pixels)
      if (p < 0 || p > 255) return false;
    metric = psnr(reference, *pixels);
    return metric > 80.0;  // paper: PSNR > 80 dB vs the error-free output
  };
  return app;
}

}  // namespace gemfi::apps
