#include "apps/image.hpp"

#include <cmath>
#include <sstream>

namespace gemfi::apps {

double psnr(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double mse = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = double(a[i]) - double(b[i]);
    mse += d * d;
  }
  mse /= double(a.size());
  if (mse == 0.0) return HUGE_VAL;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

std::optional<std::vector<int>> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) {
    const std::size_t eq = tok.find('=');
    const std::string num = eq == std::string::npos ? tok : tok.substr(eq + 1);
    try {
      std::size_t pos = 0;
      const long v = std::stol(num, &pos, 10);
      if (pos != num.size()) return std::nullopt;
      out.push_back(int(v));
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return out;
}

std::optional<std::vector<double>> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) {
    const std::size_t eq = tok.find('=');
    const std::string num = eq == std::string::npos ? tok : tok.substr(eq + 1);
    try {
      std::size_t pos = 0;
      const double v = std::stod(num, &pos);
      if (pos != num.size()) return std::nullopt;
      out.push_back(v);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return out;
}

std::vector<int> generate_image(unsigned width, unsigned height, std::uint64_t seed) {
  std::vector<int> img;
  img.reserve(std::size_t(width) * height);
  std::uint64_t state = seed;
  for (unsigned i = 0; i < width * height; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    img.push_back(int((state >> 33) & 0xff));
  }
  return img;
}

}  // namespace gemfi::apps
